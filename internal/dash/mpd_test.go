package dash

import (
	"context"
	"encoding/xml"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bba/internal/abr"
	"bba/internal/media"
	"bba/internal/units"
)

func TestMPDRoundTrip(t *testing.T) {
	video := testVideo(t, 30, media.DefaultChunkDuration)
	m := MPDFor(video)
	raw, err := xml.MarshalIndent(m, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	var back MPD
	if err := xml.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	ladder := back.Ladder()
	if err := ladder.Validate(); err != nil {
		t.Fatalf("round-tripped ladder invalid: %v", err)
	}
	if len(ladder) != len(video.Ladder) || ladder.Min() != video.Ladder.Min() || ladder.Max() != video.Ladder.Max() {
		t.Errorf("ladder mismatch: %v", ladder)
	}
	if back.ChunkDuration() != video.ChunkDuration {
		t.Errorf("chunk duration %v, want %v", back.ChunkDuration(), video.ChunkDuration)
	}
	dur, err := back.Duration()
	if err != nil {
		t.Fatal(err)
	}
	if dur != video.Duration() {
		t.Errorf("duration %v, want %v", dur, video.Duration())
	}
}

func TestMPDShape(t *testing.T) {
	video := testVideo(t, 10, media.DefaultChunkDuration)
	m := MPDFor(video)
	if m.Type != "static" {
		t.Errorf("type = %q", m.Type)
	}
	if m.XMLNS != "urn:mpeg:dash:schema:mpd:2011" {
		t.Errorf("xmlns = %q", m.XMLNS)
	}
	st := m.Period.AdaptationSet.SegmentTemplate
	if !strings.Contains(st.Media, "$RepresentationID$") || !strings.Contains(st.Media, "$Number$") {
		t.Errorf("segment template %q missing substitution variables", st.Media)
	}
	if st.StartNumber != 0 {
		t.Errorf("startNumber = %d; chunks are zero-indexed here", st.StartNumber)
	}
	for i, r := range m.Period.AdaptationSet.Representations {
		if r.Bandwidth != int64(video.Ladder[i]) {
			t.Errorf("representation %d bandwidth %d, want %d", i, r.Bandwidth, int64(video.Ladder[i]))
		}
	}
}

func TestServerServesMPD(t *testing.T) {
	video := testVideo(t, 12, media.DefaultChunkDuration)
	srv, err := NewServer(video)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/manifest.mpd")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != "application/dash+xml" {
		t.Errorf("content type %q", got)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(raw), xml.Header) {
		t.Error("MPD missing XML declaration")
	}
	var m MPD
	if err := xml.Unmarshal(raw, &m); err != nil {
		t.Fatalf("served MPD does not parse: %v", err)
	}
	// The segment template and a real chunk URL must agree: fetch the
	// chunk the template would address for representation 3, segment 5.
	url := ts.URL + strings.NewReplacer("$RepresentationID$", "3", "$Number$", "5").Replace(m.Period.AdaptationSet.SegmentTemplate.Media)
	chunkResp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	n, _ := io.Copy(io.Discard, chunkResp.Body)
	chunkResp.Body.Close()
	if chunkResp.StatusCode != http.StatusOK {
		t.Fatalf("template-addressed chunk returned %s", chunkResp.Status)
	}
	if n != video.ChunkSize(3, 5) {
		t.Errorf("template-addressed chunk has %d bytes, want %d", n, video.ChunkSize(3, 5))
	}
}

func TestParseXSDuration(t *testing.T) {
	d, err := parseXSDuration("PT123.456S")
	if err != nil {
		t.Fatal(err)
	}
	if d != 123456*time.Millisecond {
		t.Errorf("parsed %v", d)
	}
	if _, err := parseXSDuration("123s"); err == nil {
		t.Error("bad duration accepted")
	}
}

func TestMPDLadderUnits(t *testing.T) {
	video := testVideo(t, 10, media.DefaultChunkDuration)
	m := MPDFor(video)
	if got := m.Ladder().Min(); got != 235*units.Kbps {
		t.Errorf("min rung %v", got)
	}
}

func TestStreamViaMPD(t *testing.T) {
	// A standards-only client: builds its model from the MPD (nominal
	// chunk sizes), streams the same chunks, still completes cleanly.
	video := testVideo(t, 20, 500*time.Millisecond)
	srv, err := NewServer(video)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	res, err := Stream(context.Background(), ClientConfig{
		BaseURL:   ts.URL,
		Algorithm: abr.NewBBA2(),
		UseMPD:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Chunks) != 20 {
		t.Fatalf("downloaded %d chunks, want 20", len(res.Chunks))
	}
	if res.Rebuffers != 0 {
		t.Errorf("rebuffers = %d", res.Rebuffers)
	}
	// The client's model used nominal sizes, but the wire carried the
	// real VBR bytes — the recorded byte counts must match the encode,
	// not the model.
	for _, c := range res.Chunks {
		if c.Bytes != video.ChunkSize(c.RateIndex, c.Index) {
			t.Fatalf("chunk %d recorded %d bytes, encode has %d", c.Index, c.Bytes, video.ChunkSize(c.RateIndex, c.Index))
		}
	}
}
