package simclock

import (
	"testing"
	"time"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	var c Clock
	var order []int
	c.Schedule(3*time.Second, func() { order = append(order, 3) })
	c.Schedule(1*time.Second, func() { order = append(order, 1) })
	c.Schedule(2*time.Second, func() { order = append(order, 2) })
	if n := c.Run(0); n != 3 {
		t.Fatalf("ran %d events", n)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if c.Now() != 3*time.Second {
		t.Errorf("clock = %v", c.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	var c Clock
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		c.Schedule(time.Second, func() { order = append(order, i) })
	}
	c.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
}

func TestAfterAndNestedScheduling(t *testing.T) {
	var c Clock
	var fired []time.Duration
	c.After(time.Second, func() {
		fired = append(fired, c.Now())
		c.After(2*time.Second, func() {
			fired = append(fired, c.Now())
		})
	})
	c.Run(0)
	if len(fired) != 2 || fired[0] != time.Second || fired[1] != 3*time.Second {
		t.Errorf("fired = %v", fired)
	}
}

func TestScheduleInPastClamps(t *testing.T) {
	var c Clock
	c.Schedule(5*time.Second, func() {
		c.Schedule(time.Second, func() {}) // in the past: runs at now
	})
	c.Run(0)
	if c.Now() != 5*time.Second {
		t.Errorf("clock = %v, want 5s", c.Now())
	}
}

func TestCancel(t *testing.T) {
	var c Clock
	ran := false
	ev := c.Schedule(time.Second, func() { ran = true })
	c.Cancel(ev)
	c.Run(0)
	if ran {
		t.Error("cancelled event ran")
	}
	// Double-cancel and cancel-after-fire are no-ops.
	c.Cancel(ev)
	ev2 := c.Schedule(time.Second, func() {})
	c.Run(0)
	c.Cancel(ev2)
	c.Cancel(nil)
}

func TestRunDeadline(t *testing.T) {
	var c Clock
	ran := 0
	c.Schedule(1*time.Second, func() { ran++ })
	c.Schedule(10*time.Second, func() { ran++ })
	n := c.Run(5 * time.Second)
	if n != 1 || ran != 1 {
		t.Errorf("ran %d events (%d callbacks)", n, ran)
	}
	if c.Now() != 5*time.Second {
		t.Errorf("clock stopped at %v, want the deadline", c.Now())
	}
	if c.Pending() != 1 {
		t.Errorf("pending = %d", c.Pending())
	}
	// Resuming past the deadline runs the rest.
	c.Run(0)
	if ran != 2 {
		t.Errorf("second Run left callbacks unrun")
	}
}

func TestStepOnEmptyQueue(t *testing.T) {
	var c Clock
	if c.Step() {
		t.Error("Step on empty queue reported work")
	}
}
