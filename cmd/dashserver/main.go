// Command dashserver serves a synthetic VBR title over HTTP for the
// bbaplay client (or any HTTP client): a JSON manifest at /manifest.json,
// chunk bodies at /chunk/{rate}/{index}, Prometheus-text metrics at
// /metrics and a liveness probe at /healthz. It shuts down gracefully on
// SIGINT/SIGTERM, draining in-flight chunk downloads.
//
// Example:
//
//	dashserver -addr 127.0.0.1:8404 -chunks 900 &
//	bbaplay -url http://127.0.0.1:8404 -alg BBA-2 -watch 30s
//	curl http://127.0.0.1:8404/metrics
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bba/internal/dash"
	"bba/internal/faults"
	"bba/internal/media"
	"bba/internal/telemetry"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8404", "listen address")
		chunks    = flag.Int("chunks", 900, "title length in chunks")
		chunkMS   = flag.Int("chunk-ms", 4000, "chunk duration in milliseconds")
		seed      = flag.Int64("seed", 1, "seed for the synthetic title")
		latency   = flag.Duration("latency", 0, "added first-byte latency per chunk")
		withFault = flag.Bool("faults", false, "serve in fault-injecting mode (seeded 5xx bursts, stalled bodies, resets, latency spikes)")
		faultSeed = flag.Int64("fault-seed", 1, "seed for the fault schedule and per-request decisions")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *addr, *chunks, *chunkMS, *seed, *latency, *withFault, *faultSeed); err != nil {
		fmt.Fprintln(os.Stderr, "dashserver:", err)
		os.Exit(1)
	}
}

// shutdownGrace bounds how long a draining server waits for in-flight
// chunk downloads before closing their connections.
const shutdownGrace = 5 * time.Second

// run serves until ctx is cancelled (SIGINT/SIGTERM in main), then shuts
// the HTTP server down gracefully.
func run(ctx context.Context, addr string, chunks, chunkMS int, seed int64, latency time.Duration, withFaults bool, faultSeed int64) error {
	srv, video, err := buildServer(chunks, chunkMS, seed, latency)
	if err != nil {
		return err
	}
	prom := telemetry.NewProm("bba")
	srv.Observer = prom
	if withFaults {
		// The HTTP-path kinds only: blackouts and collapses are capacity
		// faults, which belong to the network between client and server
		// (shape the client's transport with internal/netem), not to the
		// origin.
		cfg := faults.DefaultScheduleConfig()
		cfg.Horizon = 24 * time.Hour
		cfg.Blackouts = faults.EpisodeConfig{}
		cfg.Collapses = faults.EpisodeConfig{}
		sched := faults.GenerateSeeded(cfg, faultSeed)
		srv.Injector = &faults.HTTPInjector{Schedule: sched, Seed: faultSeed}
		srv.Injector.Start(time.Now())
		fmt.Printf("fault mode: %d episodes scheduled over 24h (seed %d)\n", sched.Len(), faultSeed)
	}

	hs := &http.Server{Addr: addr, Handler: buildMux(srv, prom, video)}
	fmt.Printf("serving %q (%d chunks of %v, ladder %v–%v) on http://%s (/metrics, /healthz)\n",
		video.Title, video.NumChunks(), video.ChunkDuration,
		video.Ladder.Min(), video.Ladder.Max(), addr)

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		fmt.Println("dashserver: shutting down")
		shctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		return hs.Shutdown(shctx)
	}
}

// buildMux mounts the chunk server alongside the observability endpoints.
func buildMux(srv *dash.Server, prom *telemetry.Prom, video *media.Video) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/", srv)
	mux.Handle("/metrics", prom)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"status":   "ok",
			"title":    video.Title,
			"chunks":   video.NumChunks(),
			"requests": srv.Requests(),
		})
	})
	return mux
}

// buildServer constructs the synthetic title and its HTTP handler.
func buildServer(chunks, chunkMS int, seed int64, latency time.Duration) (*dash.Server, *media.Video, error) {
	video, err := media.NewVBR(media.VBRConfig{
		Title:         "dashserver",
		Ladder:        media.DefaultLadder(),
		ChunkDuration: time.Duration(chunkMS) * time.Millisecond,
		NumChunks:     chunks,
	}, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, nil, err
	}
	srv, err := dash.NewServer(video)
	if err != nil {
		return nil, nil, err
	}
	srv.Latency = latency
	return srv, video, nil
}
