package media

import (
	"testing"
	"testing/quick"

	"bba/internal/units"
)

func TestDefaultLadder(t *testing.T) {
	l := DefaultLadder()
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if l.Min() != 235*units.Kbps {
		t.Errorf("Rmin = %v, want 235kb/s", l.Min())
	}
	if l.Max() != 5000*units.Kbps {
		t.Errorf("Rmax = %v, want 5Mb/s", l.Max())
	}
	if len(l) != 10 {
		t.Errorf("ladder has %d rates, want 10", len(l))
	}
}

func TestLadderValidate(t *testing.T) {
	cases := []struct {
		name string
		l    Ladder
		ok   bool
	}{
		{"empty", Ladder{}, false},
		{"single", Ladder{units.Mbps}, true},
		{"descending", Ladder{2 * units.Mbps, units.Mbps}, false},
		{"duplicate", Ladder{units.Mbps, units.Mbps}, false},
		{"zero rate", Ladder{0, units.Mbps}, false},
		{"negative", Ladder{-units.Mbps, units.Mbps}, false},
		{"good", DefaultLadder(), true},
	}
	for _, c := range cases {
		err := c.l.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestLadderNavigation(t *testing.T) {
	l := DefaultLadder()
	if l.NextUp(0) != 1 || l.NextDown(1) != 0 {
		t.Error("basic navigation broken")
	}
	top := len(l) - 1
	if l.NextUp(top) != top {
		t.Error("NextUp should saturate at the top (Rate+ = Rmax)")
	}
	if l.NextDown(0) != 0 {
		t.Error("NextDown should saturate at the bottom (Rate− = Rmin)")
	}
	if l.Clamp(-3) != 0 || l.Clamp(99) != top {
		t.Error("Clamp broken")
	}
}

func TestHighestBelowLowestAbove(t *testing.T) {
	l := Ladder{235 * units.Kbps, 560 * units.Kbps, 1050 * units.Kbps}
	cases := []struct {
		r           units.BitRate
		below, abov int
	}{
		{100 * units.Kbps, 0, 0},  // below everything
		{235 * units.Kbps, 0, 1},  // exactly Rmin: nothing strictly below
		{400 * units.Kbps, 0, 1},  // between 235 and 560
		{560 * units.Kbps, 0, 2},  // exactly mid
		{600 * units.Kbps, 1, 2},  //
		{1050 * units.Kbps, 1, 2}, // exactly Rmax: nothing strictly above
		{9 * units.Mbps, 2, 2},    // above everything
	}
	for _, c := range cases {
		if got := l.HighestBelow(c.r); got != c.below {
			t.Errorf("HighestBelow(%v) = %d, want %d", c.r, got, c.below)
		}
		if got := l.LowestAbove(c.r); got != c.abov {
			t.Errorf("LowestAbove(%v) = %d, want %d", c.r, got, c.abov)
		}
	}
}

func TestHighestAtMost(t *testing.T) {
	l := Ladder{235 * units.Kbps, 560 * units.Kbps, 1050 * units.Kbps}
	cases := []struct {
		r    units.BitRate
		want int
	}{
		{100 * units.Kbps, 0},
		{235 * units.Kbps, 0},
		{559 * units.Kbps, 0},
		{560 * units.Kbps, 1},
		{2 * units.Mbps, 2},
	}
	for _, c := range cases {
		if got := l.HighestAtMost(c.r); got != c.want {
			t.Errorf("HighestAtMost(%v) = %d, want %d", c.r, got, c.want)
		}
	}
}

func TestIndexOf(t *testing.T) {
	l := DefaultLadder()
	if got := l.IndexOf(560 * units.Kbps); got != 2 {
		t.Errorf("IndexOf(560kb/s) = %d, want 2", got)
	}
	if got := l.IndexOf(999 * units.Kbps); got != -1 {
		t.Errorf("IndexOf(unknown) = %d, want -1", got)
	}
}

func TestFromMin(t *testing.T) {
	l := DefaultLadder()
	// The paper's footnote-3 promotion: Rmin becomes 560 kb/s.
	sub := l.FromMin(560 * units.Kbps)
	if sub.Min() != 560*units.Kbps {
		t.Errorf("promoted Rmin = %v", sub.Min())
	}
	if sub.Max() != l.Max() {
		t.Errorf("Rmax changed: %v", sub.Max())
	}
	if len(sub) != len(l)-2 {
		t.Errorf("sub-ladder length = %d", len(sub))
	}
	// Rmin between rungs rounds up.
	if got := l.FromMin(300 * units.Kbps).Min(); got != 375*units.Kbps {
		t.Errorf("FromMin(300k) starts at %v", got)
	}
	// Absurd Rmin keeps at least the top rung.
	if got := l.FromMin(100 * units.Mbps); len(got) != 1 || got.Min() != l.Max() {
		t.Errorf("FromMin above ladder = %v", got)
	}
}

// Property: for any r, HighestBelow(r) is strictly below r unless r ≤ Rmin,
// and LowestAbove(r) is strictly above r unless r ≥ Rmax.
func TestQuickLadderBounds(t *testing.T) {
	l := DefaultLadder()
	f := func(kbps uint16) bool {
		r := units.BitRate(kbps) * units.Kbps
		hb, la := l.HighestBelow(r), l.LowestAbove(r)
		if r > l.Min() && l[hb] >= r {
			return false
		}
		if r < l.Max() && l[la] <= r {
			return false
		}
		return hb >= 0 && hb < len(l) && la >= 0 && la < len(l)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseLadder(t *testing.T) {
	l, err := ParseLadder("235, 560,1750")
	if err != nil {
		t.Fatal(err)
	}
	if len(l) != 3 || l[0] != 235*units.Kbps || l[2] != 1750*units.Kbps {
		t.Errorf("parsed %v", l)
	}
	if got := l.String(); got != "235,560,1750" {
		t.Errorf("String() = %q", got)
	}
	for _, bad := range []string{"", "abc", "560,235", "0,100", "235,235"} {
		if _, err := ParseLadder(bad); err == nil {
			t.Errorf("ladder %q accepted", bad)
		}
	}
	// Round trip of the default ladder.
	back, err := ParseLadder(DefaultLadder().String())
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(DefaultLadder()) {
		t.Error("default ladder did not round trip")
	}
}
