// Package player is the chunk-granularity playback engine: it drives an
// ABR algorithm against a capacity trace and a video title, reproducing the
// client model of the paper's Figures 2 and 11.
//
// The engine runs in virtual time. The client requests one chunk at a time
// (it "cannot cancel an ongoing video chunk download"), observes how long
// the download took, lets the playback buffer drain meanwhile, and asks the
// algorithm for the next rate only when the chunk completes. When the
// buffer fills, the client idles until there is space before requesting
// again — the ON-OFF pattern discussed in Section 8. When it empties
// mid-download, playback freezes: a rebuffer event.
//
// Because everything is driven by download-completion arithmetic over the
// trace integral, thousands of multi-hour sessions simulate in milliseconds
// while remaining observationally identical to a wall-clock player.
package player

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"bba/internal/abr"
	"bba/internal/telemetry"
	"bba/internal/trace"
	"bba/internal/units"
)

// Config describes one streaming session.
type Config struct {
	// Algorithm is the rate-selection algorithm; a fresh per-session
	// instance (algorithms are stateful).
	Algorithm abr.Algorithm
	// Stream is the session's view of the title (possibly with a
	// promoted R_min).
	Stream abr.Stream
	// Trace is the capacity process the downloads run against.
	Trace *trace.Trace
	// BufferMax is the playback buffer capacity; 0 means the paper's
	// 240 s browser-player buffer.
	BufferMax time.Duration
	// WatchLimit stops the session after this much video has been
	// delivered to the viewer; 0 watches the whole title.
	WatchLimit time.Duration
	// ResumeThreshold is the occupancy a stalled player waits for before
	// restarting playback; 0 means buffer.DefaultResume, negative means
	// resume on the first chunk.
	ResumeThreshold time.Duration
	// Seeks are viewer seeks, in ascending AfterPlayed order: once that
	// much video has been delivered, the buffer is flushed and the next
	// request jumps to ToChunk. Startup-capable algorithms re-enter
	// their startup phase (abr.SeekAware).
	Seeks []Seek
	// Observer, when non-nil, receives the session's telemetry events
	// in session-clock order. A nil observer costs nothing: no event
	// values are built and no buffer state is polled.
	Observer telemetry.Observer
	// Injector, when non-nil, subjects each chunk download attempt to
	// injected faults. Failed attempts are retried with deterministic
	// capped-exponential backoff; when the per-rate budget runs out the
	// session degrades to the lowest rate and shrinks the request instead
	// of aborting. A nil injector costs nothing: the download path is the
	// uninstrumented one.
	Injector FaultInjector
	// Retry tunes the retry/degradation policy; the zero value means
	// defaults (budget 3, backoff 200 ms doubling to a 5 s cap).
	Retry RetryPolicy
	// SkipChunkRecords drops the per-chunk Result.Chunks log, recording
	// only a compact per-chunk rate index instead. Every Result metric
	// method still returns bit-identical values; only Chunks itself (and
	// WriteChunkCSV, which reads it) comes back empty. Campaign-scale
	// runs that never read the per-chunk log use this to avoid the
	// dominant allocation of the session hot path.
	SkipChunkRecords bool
}

// FaultInjector decides per-attempt chunk failures and per-request latency
// for a session under injected faults. *faults.SessionInjector satisfies
// it. Implementations must be pure functions of their arguments so
// sessions stay deterministic and replayable.
type FaultInjector interface {
	// ChunkFault reports whether this attempt (0-based) at chunk fails at
	// session time now, the telemetry label of the fault, and the virtual
	// time the failed attempt costs.
	ChunkFault(now time.Duration, chunk, attempt int) (label string, delay time.Duration, failed bool)
	// RequestLatency is the extra first-byte delay a request issued at
	// session time now pays (latency spikes).
	RequestLatency(now time.Duration) time.Duration
}

// RetryPolicy bounds the player's chunk-retry behaviour under faults.
type RetryPolicy struct {
	// Budget is how many failed attempts at the current rate trigger
	// degradation to the lowest rate (default 3). At the lowest rate the
	// player keeps retrying: every attempt advances the session clock, so
	// it always outlives a finite fault episode.
	Budget int
	// BackoffBase and BackoffCap bound the exponential backoff between
	// attempts (defaults 200 ms and 5 s).
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// Seed drives the deterministic backoff jitter.
	Seed int64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Budget <= 0 {
		p.Budget = 3
	}
	if p.BackoffBase <= 0 {
		p.BackoffBase = 200 * time.Millisecond
	}
	if p.BackoffCap <= 0 {
		p.BackoffCap = 5 * time.Second
	}
	return p
}

// Seek is one viewer seek.
type Seek struct {
	// AfterPlayed triggers the seek once this much video has played.
	AfterPlayed time.Duration
	// ToChunk is the chunk index playback jumps to.
	ToChunk int
}

// SeekRecord logs an executed seek.
type SeekRecord struct {
	// At is the session clock when the seek happened.
	At time.Duration
	// ToChunk is where playback jumped.
	ToChunk int
	// JoinDelay is the wait for the first post-seek chunk.
	JoinDelay time.Duration
}

// ChunkRecord logs one downloaded chunk.
type ChunkRecord struct {
	Index       int           // chunk index within the title
	RateIndex   int           // session-ladder index it was fetched at
	Rate        units.BitRate // nominal rate of that ladder entry
	Bytes       int64         // actual chunk size
	Start       time.Duration // session clock when the request was issued
	Download    time.Duration // transfer duration
	Throughput  units.BitRate // measured capacity during the transfer
	BufferAfter time.Duration // buffer occupancy right after arrival
}

// Result is the complete outcome of one session.
type Result struct {
	Algorithm string
	Chunks    []ChunkRecord

	// JoinDelay is the time to the first chunk (excluded from playback
	// metrics, as in the paper).
	JoinDelay time.Duration
	// Played is total video time delivered to the viewer.
	Played time.Duration
	// Rebuffers is the number of rebuffer events.
	Rebuffers int
	// StallTime is the total time playback was frozen.
	StallTime time.Duration
	// Switches is the number of video-rate changes between consecutive
	// chunks.
	Switches int
	// Incomplete marks a session whose download could never finish
	// (the trace ended in a permanent outage).
	Incomplete bool
	// Faults counts injected faults that hit chunk attempts.
	Faults int
	// Retries counts chunk re-attempts after injected failures.
	Retries int
	// Degradations counts drops to the lowest rate under repeated failure.
	Degradations int
	// Failovers counts endpoint switches (HTTP client sessions only).
	Failovers int
	// Seeks logs the viewer seeks that executed.
	Seeks []SeekRecord
	// End is the session clock when the session finished.
	End time.Duration

	// Compact recording, used when Config.SkipChunkRecords is set: one
	// session-ladder index per downloaded chunk plus the ladder's kb/s
	// values. Together with the two Start-time boundary counters below,
	// this reproduces every rate-derived metric bit-identically without
	// per-chunk records: chunk start times are monotone non-decreasing,
	// so "chunks starting before the cutoff" is a prefix count.
	rateIdx    []uint8
	ladderKbps []float64
	// startupChunks counts chunks whose Start is < 1 minute, steadySkip
	// those with Start < 2 minutes.
	startupChunks int
	steadySkip    int
}

// reset clears r for reuse, retaining record storage so a long-lived
// Session re-running sessions allocates nothing here in steady state.
func (r *Result) reset(alg string) {
	chunks := r.Chunks[:0]
	rates := r.rateIdx[:0]
	kbps := r.ladderKbps[:0]
	seeks := r.Seeks[:0]
	*r = Result{Algorithm: alg, Chunks: chunks, rateIdx: rates, ladderKbps: kbps, Seeks: seeks}
}

// ChunkCount returns the number of downloaded chunks, whether or not
// per-chunk records were kept.
func (r *Result) ChunkCount() int {
	if len(r.Chunks) > 0 {
		return len(r.Chunks)
	}
	return len(r.rateIdx)
}

// ChunkRateKbps returns chunk i's nominal video rate in kb/s, in download
// order, in either recording mode. Metric consumers (QoE scoring, the
// average-rate methods) use this instead of reading Chunks directly so
// they work on compact results too.
func (r *Result) ChunkRateKbps(i int) float64 {
	if len(r.Chunks) > 0 {
		return r.Chunks[i].Rate.Kilobits()
	}
	return r.ladderKbps[r.rateIdx[i]]
}

// ErrNoProgress is returned when the first chunk can never download (the
// trace is a dead link from the start).
var ErrNoProgress = errors.New("player: download cannot make progress")

// Run simulates the session to completion and returns its Result.
func Run(cfg Config) (*Result, error) { return run(nil, cfg) }

// RunContext is Run with cancellation: the context is checked once per
// chunk, so multi-hour (or million-session) simulations stop promptly when
// the caller cancels. A nil context behaves like Run.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	return run(ctx, cfg)
}

// run drives a Session step by step — the one-shot form of the reusable
// engine. The Session owns its Result, so hand ownership to the caller by
// detaching it before returning.
func run(ctx context.Context, cfg Config) (*Result, error) {
	var ss Session
	if err := ss.Start(cfg); err != nil {
		return nil, err
	}
	for {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		done, err := ss.Step()
		if err != nil {
			return nil, err
		}
		if done {
			res := ss.res
			ss.res = nil
			return res, nil
		}
	}
}

// chunkCapacity sizes the Result.Chunks preallocation: the title length,
// tightened by the watch limit when one applies. A couple of extra slots
// absorb the chunks a stall-truncated or seek-shifted session downloads
// beyond the limit; the hint only avoids growth reallocations, correctness
// never depends on it.
func chunkCapacity(s abr.Stream, v time.Duration, watchLimit time.Duration) int {
	n := s.NumChunks()
	if watchLimit > 0 && v > 0 {
		if byLimit := int(watchLimit/v) + 2; byLimit < n {
			n = byLimit
		}
	}
	return n
}

// WriteChunkCSV emits the per-chunk log as CSV
// ("start_s,index,rate_kbps,bytes,download_s,throughput_kbps,buffer_s"),
// the raw series behind the time-series figures. It needs full per-chunk
// records: a Config.SkipChunkRecords session has none and emits only the
// header.
func (r *Result) WriteChunkCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "start_s,index,rate_kbps,bytes,download_s,throughput_kbps,buffer_s"); err != nil {
		return err
	}
	for _, c := range r.Chunks {
		if _, err := fmt.Fprintf(bw, "%.3f,%d,%.0f,%d,%.3f,%.0f,%.3f\n",
			c.Start.Seconds(), c.Index, c.Rate.Kilobits(), c.Bytes,
			c.Download.Seconds(), c.Throughput.Kilobits(), c.BufferAfter.Seconds()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// PlayHours returns the played time in hours.
func (r *Result) PlayHours() float64 { return r.Played.Hours() }

// RebuffersPerPlayhour is the paper's headline metric.
func (r *Result) RebuffersPerPlayhour() float64 {
	h := r.PlayHours()
	if h == 0 {
		return 0
	}
	return float64(r.Rebuffers) / h
}

// SwitchesPerPlayhour is the video-switching-rate metric of Figures 9, 20
// and 22.
func (r *Result) SwitchesPerPlayhour() float64 {
	h := r.PlayHours()
	if h == 0 {
		return 0
	}
	return float64(r.Switches) / h
}

// AvgRateKbps is the delivered average video rate: each chunk contributes
// its nominal rate weighted by its fixed playback duration.
func (r *Result) AvgRateKbps() float64 {
	n := r.ChunkCount()
	if n == 0 {
		return 0
	}
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.ChunkRateKbps(i)
	}
	return sum / float64(n)
}

// SteadyAvgRateKbps is the average video rate excluding the session's first
// two minutes — the paper's Figure 18 approximation of steady state. It
// returns 0 when the session never reaches steady state.
func (r *Result) SteadyAvgRateKbps() float64 {
	if len(r.Chunks) == 0 && len(r.rateIdx) > 0 {
		// Compact mode: chunk starts are monotone, so "Start >= 2 min"
		// is exactly the suffix beyond the boundary counter.
		return r.avgRateRange(r.steadySkip, len(r.rateIdx))
	}
	var sum float64
	n := 0
	for _, c := range r.Chunks {
		if c.Start < 2*time.Minute {
			continue
		}
		sum += c.Rate.Kilobits()
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// StartupAvgRateKbps is the average rate over the first minute, the metric
// behind "the BBA-1 algorithm achieves 700kb/s less than the Control" in
// the first 60 seconds.
func (r *Result) StartupAvgRateKbps() float64 {
	if len(r.Chunks) == 0 && len(r.rateIdx) > 0 {
		return r.avgRateRange(0, r.startupChunks)
	}
	var sum float64
	n := 0
	for _, c := range r.Chunks {
		if c.Start >= time.Minute {
			break
		}
		sum += c.Rate.Kilobits()
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// avgRateRange averages the compact rate records over [from, to). The sum
// runs in the same chunk order with the same per-chunk values as the
// record-walking loops, so the result is bit-identical to full mode.
func (r *Result) avgRateRange(from, to int) float64 {
	if to <= from {
		return 0
	}
	var sum float64
	for i := from; i < to; i++ {
		sum += r.ladderKbps[r.rateIdx[i]]
	}
	return sum / float64(to-from)
}
