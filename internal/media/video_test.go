package media

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"bba/internal/units"
)

func TestNewCBR(t *testing.T) {
	v, err := NewCBR("cbr", DefaultLadder(), DefaultChunkDuration, 100)
	if err != nil {
		t.Fatal(err)
	}
	if v.NumChunks() != 100 {
		t.Errorf("NumChunks = %d", v.NumChunks())
	}
	if v.Duration() != 400*time.Second {
		t.Errorf("Duration = %v", v.Duration())
	}
	// Every chunk equals the nominal size; 3 Mb/s chunks are 1.5 MB.
	ri := v.Ladder.IndexOf(3000 * units.Kbps)
	for k := 0; k < v.NumChunks(); k++ {
		if got := v.ChunkSize(ri, k); got != 1_500_000 {
			t.Fatalf("chunk %d = %d bytes, want 1500000", k, got)
		}
	}
	if v.MaxToAvgRatio(ri) != 1 {
		t.Errorf("CBR max/avg = %v, want 1", v.MaxToAvgRatio(ri))
	}
}

func TestNewCBRValidation(t *testing.T) {
	if _, err := NewCBR("x", Ladder{}, time.Second, 10); err == nil {
		t.Error("empty ladder accepted")
	}
	if _, err := NewCBR("x", DefaultLadder(), 0, 10); err == nil {
		t.Error("zero chunk duration accepted")
	}
	if _, err := NewCBR("x", DefaultLadder(), time.Second, 0); err == nil {
		t.Error("zero chunks accepted")
	}
}

func TestChunkSizePanics(t *testing.T) {
	v, _ := NewCBR("x", DefaultLadder(), DefaultChunkDuration, 10)
	for _, c := range []struct{ rate, k int }{{-1, 0}, {99, 0}, {0, -1}, {0, 10}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ChunkSize(%d,%d) did not panic", c.rate, c.k)
				}
			}()
			v.ChunkSize(c.rate, c.k)
		}()
	}
}

func TestNewVBRFigure10Statistics(t *testing.T) {
	// Figure 10: 4-second chunks of a 3 Mb/s encode average 1.5 MB with a
	// max-to-average ratio around 2.
	rng := rand.New(rand.NewSource(10))
	v, err := NewVBR(VBRConfig{Title: "black-hawk-down", Ladder: DefaultLadder(), NumChunks: 1800}, rng)
	if err != nil {
		t.Fatal(err)
	}
	ri := v.Ladder.IndexOf(3000 * units.Kbps)
	nominal := v.NominalChunkSize(ri)
	if nominal != 1_500_000 {
		t.Fatalf("nominal = %d", nominal)
	}
	avg := v.MeasuredAvgChunkSize(ri)
	if ratio := float64(avg) / float64(nominal); ratio < 0.95 || ratio > 1.05 {
		t.Errorf("measured avg %d deviates from nominal %d by %.1f%%", avg, nominal, 100*(ratio-1))
	}
	e := v.MaxToAvgRatio(ri)
	if e < 1.5 || e > 2.05 {
		t.Errorf("max/avg ratio e = %v, want ≈2 (paper's measured value)", e)
	}
	// Some chunks should be well below average (static scenes / credits).
	var min int64 = 1 << 62
	for _, s := range v.ChunkSizes(ri) {
		if s < min {
			min = s
		}
	}
	if float64(min)/float64(nominal) > 0.6 {
		t.Errorf("smallest chunk only %.2f of nominal; VBR spread too narrow", float64(min)/float64(nominal))
	}
}

func TestNewVBRSharedScenes(t *testing.T) {
	// The activity factor is shared across rates: the size ratio between
	// two encodes of the same chunk must equal the nominal rate ratio.
	rng := rand.New(rand.NewSource(3))
	v, err := NewVBR(VBRConfig{Title: "x", Ladder: DefaultLadder(), NumChunks: 200}, rng)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := 0, len(v.Ladder)-1
	want := float64(v.Ladder[hi]) / float64(v.Ladder[lo])
	for k := 0; k < v.NumChunks(); k++ {
		got := float64(v.ChunkSize(hi, k)) / float64(v.ChunkSize(lo, k))
		if got < want*0.99 || got > want*1.01 {
			t.Fatalf("chunk %d cross-rate ratio %.3f, want %.3f", k, got, want)
		}
	}
}

func TestNewVBRDeterministic(t *testing.T) {
	cfg := VBRConfig{Title: "x", Ladder: DefaultLadder(), NumChunks: 300}
	a, err := NewVBR(cfg, rand.New(rand.NewSource(77)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewVBR(cfg, rand.New(rand.NewSource(77)))
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < a.NumChunks(); k++ {
		if a.ChunkSize(0, k) != b.ChunkSize(0, k) {
			t.Fatalf("chunk %d differs between same-seed builds", k)
		}
	}
}

func TestNewVBRDefaults(t *testing.T) {
	v, err := NewVBR(VBRConfig{Ladder: DefaultLadder()}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if v.ChunkDuration != DefaultChunkDuration {
		t.Errorf("chunk duration = %v", v.ChunkDuration)
	}
	if v.NumChunks() != 1800 {
		t.Errorf("num chunks = %d", v.NumChunks())
	}
	if v.Duration() != 2*time.Hour {
		t.Errorf("duration = %v", v.Duration())
	}
}

func TestNewVBRBadLadder(t *testing.T) {
	if _, err := NewVBR(VBRConfig{}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("empty ladder accepted")
	}
}

func TestCatalog(t *testing.T) {
	c, err := NewCatalog(5, DefaultLadder(), 99)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 5 {
		t.Errorf("Len = %d", c.Len())
	}
	// Pick wraps and accepts negatives.
	if c.Pick(0) != c.Pick(5) {
		t.Error("Pick should wrap modulo the catalogue size")
	}
	if c.Pick(-3) == nil {
		t.Error("negative pick should still return a title")
	}
	// Titles have sane durations.
	for i := 0; i < c.Len(); i++ {
		d := c.Pick(i).Duration()
		if d < 20*time.Minute || d > 2*time.Hour {
			t.Errorf("title %d duration %v outside [20m, 2h]", i, d)
		}
	}
	// Determinism.
	c2, err := NewCatalog(5, DefaultLadder(), 99)
	if err != nil {
		t.Fatal(err)
	}
	if c.Pick(2).NumChunks() != c2.Pick(2).NumChunks() {
		t.Error("same-seed catalogues differ")
	}
	if _, err := NewCatalog(0, DefaultLadder(), 1); err == nil {
		t.Error("empty catalogue accepted")
	}
}

// Property: every VBR chunk size stays within the configured envelope of the
// nominal size, at every rate.
func TestQuickVBREnvelope(t *testing.T) {
	f := func(seed int64) bool {
		v, err := NewVBR(VBRConfig{Ladder: DefaultLadder(), NumChunks: 120}, rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		for ri := range v.Ladder {
			nominal := float64(v.NominalChunkSize(ri))
			for k := 0; k < v.NumChunks(); k++ {
				f := float64(v.ChunkSize(ri, k)) / nominal
				if f < 0.2 || f > 2.1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
