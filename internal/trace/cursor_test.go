package trace

import (
	"math/rand"
	"testing"
	"time"

	"bba/internal/units"
)

// randomTrace builds a Markov trace with randomized shape parameters so the
// equivalence tests sweep short/long segments and calm/wild rates.
func randomTrace(rng *rand.Rand) *Trace {
	cfg := MarkovConfig{
		Base:      units.BitRate(rng.Intn(9)+1) * units.Mbps,
		Sigma:     rng.Float64() * 1.5,
		MeanDwell: time.Duration(rng.Intn(20)+1) * time.Second,
		Duration:  time.Duration(rng.Intn(40)+5) * time.Minute,
	}
	return Markov(cfg, rng)
}

// TestCursorMatchesStatelessAPI is the contract of the Cursor: on randomized
// traces and randomized query sequences — mostly monotone, as the engine
// issues them, but with occasional backward jumps — every Cursor result is
// bit-identical to the stateless Trace method.
func TestCursorMatchesStatelessAPI(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTrace(rng)
		cur := tr.Cursor()
		now := time.Duration(0)
		for q := 0; q < 400; q++ {
			// Mostly advance; sometimes jump backwards or far past the end.
			switch rng.Intn(10) {
			case 0:
				now = time.Duration(rng.Int63n(int64(tr.Total() + time.Minute)))
			default:
				now += time.Duration(rng.Int63n(int64(5 * time.Second)))
			}
			switch rng.Intn(3) {
			case 0:
				want := tr.RateAt(now)
				if got := cur.RateAt(now); got != want {
					t.Fatalf("seed %d query %d: Cursor.RateAt(%v) = %v, stateless %v", seed, q, now, got, want)
				}
			case 1:
				to := now + time.Duration(rng.Int63n(int64(30*time.Second)))
				want := tr.BytesBetween(now, to)
				if got := cur.BytesBetween(now, to); got != want {
					t.Fatalf("seed %d query %d: Cursor.BytesBetween(%v, %v) = %d, stateless %d", seed, q, now, to, got, want)
				}
			default:
				n := rng.Int63n(4 << 20)
				wantD, wantOK := tr.DownloadTime(now, n)
				gotD, gotOK := cur.DownloadTime(now, n)
				if gotD != wantD || gotOK != wantOK {
					t.Fatalf("seed %d query %d: Cursor.DownloadTime(%v, %d) = (%v, %v), stateless (%v, %v)",
						seed, q, now, n, gotD, gotOK, wantD, wantOK)
				}
				if wantOK {
					now += wantD
				}
			}
		}
	}
}

// TestCursorDeadLink pins the incomplete-transfer path: a trace ending in a
// permanent outage reports (0, false) identically through the cursor, and
// the cursor stays usable afterwards.
func TestCursorDeadLink(t *testing.T) {
	tr := MustNew([]Segment{
		{Duration: 10 * time.Second, Rate: 2 * units.Mbps},
		{Duration: 5 * time.Second, Rate: 0},
	})
	cur := tr.Cursor()
	if d, ok := cur.DownloadTime(0, 1<<20); !ok || d <= 0 {
		t.Fatalf("in-capacity transfer = (%v, %v)", d, ok)
	}
	if _, ok := cur.DownloadTime(12*time.Second, 1<<20); ok {
		t.Error("transfer in the permanent outage completed")
	}
	if got, want := cur.RateAt(3*time.Second), 2*units.Mbps; got != want {
		t.Errorf("post-failure backward RateAt = %v, want %v", got, want)
	}
}

// TestCursorZeroAllocs pins the hot path: a monotone download sweep through
// the cursor must not allocate.
func TestCursorZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tr := randomTrace(rng)
	cur := tr.Cursor()
	now := time.Duration(0)
	allocs := testing.AllocsPerRun(100, func() {
		d, ok := cur.DownloadTime(now, 512<<10)
		if ok {
			now += d + time.Second
		} else {
			now = 0
		}
	})
	if allocs != 0 {
		t.Errorf("cursor download sweep allocates %.1f times per op, want 0", allocs)
	}
}

// benchSweep drives a monotone per-chunk download pattern, the exact access
// pattern of player.run.
func benchSweep(b *testing.B, download func(time.Duration, int64) (time.Duration, bool), total time.Duration) {
	now := time.Duration(0)
	for i := 0; i < b.N; i++ {
		d, ok := download(now, 1<<20)
		if !ok {
			b.Fatal("transfer failed")
		}
		now += d
		if now > total {
			now = 0
		}
	}
}

func BenchmarkDownloadTimeStateless(b *testing.B) {
	tr := Markov(MarkovConfig{Duration: time.Hour, MeanDwell: 5 * time.Second, Sigma: 1.2}, rand.New(rand.NewSource(7)))
	b.ReportAllocs()
	benchSweep(b, tr.DownloadTime, tr.Total())
}

func BenchmarkDownloadTimeCursor(b *testing.B) {
	tr := Markov(MarkovConfig{Duration: time.Hour, MeanDwell: 5 * time.Second, Sigma: 1.2}, rand.New(rand.NewSource(7)))
	cur := tr.Cursor()
	b.ReportAllocs()
	benchSweep(b, cur.DownloadTime, tr.Total())
}
