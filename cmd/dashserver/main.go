// Command dashserver serves a synthetic VBR title over HTTP for the
// bbaplay client (or any HTTP client): a JSON manifest at /manifest.json,
// chunk bodies at /chunk/{rate}/{index}, Prometheus-text metrics at
// /metrics and a liveness probe at /healthz. It shuts down gracefully on
// SIGINT/SIGTERM, draining in-flight chunk downloads.
//
// Pass "-addr :0" to bind a free port; the bound address is printed on the
// first line of output, so scripted harnesses (and the soak rig) can run
// parallel instances without port races.
//
// Example:
//
//	dashserver -addr 127.0.0.1:8404 -chunks 900 &
//	bbaplay -url http://127.0.0.1:8404 -alg BBA-2 -watch 30s
//	curl http://127.0.0.1:8404/metrics
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bba/internal/dash"
	"bba/internal/faults"
	"bba/internal/media"
	"bba/internal/telemetry"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8404", "listen address (\":0\" binds a free port and prints it)")
		chunks    = flag.Int("chunks", 900, "title length in chunks")
		chunkMS   = flag.Int("chunk-ms", 4000, "chunk duration in milliseconds")
		seed      = flag.Int64("seed", 1, "seed for the synthetic title")
		latency   = flag.Duration("latency", 0, "added first-byte latency per chunk")
		maxConns  = flag.Int("max-conns", 0, "cap on concurrently served connections (0 = unbounded)")
		withFault = flag.Bool("faults", false, "serve in fault-injecting mode (seeded 5xx bursts, stalled bodies, resets, latency spikes)")
		faultSeed = flag.Int64("fault-seed", 1, "seed for the fault schedule and per-request decisions")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cfg := serverConfig{
		addr: *addr, chunks: *chunks, chunkMS: *chunkMS, seed: *seed,
		latency: *latency, maxConns: *maxConns,
		withFaults: *withFault, faultSeed: *faultSeed,
	}
	if err := run(ctx, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "dashserver:", err)
		os.Exit(1)
	}
}

// serverConfig carries the flag set; onReady is the test seam announcing
// the bound address.
type serverConfig struct {
	addr       string
	chunks     int
	chunkMS    int
	seed       int64
	latency    time.Duration
	maxConns   int
	withFaults bool
	faultSeed  int64
	onReady    func(addr string)
}

// run serves until ctx is cancelled (SIGINT/SIGTERM in main), then shuts
// the origin down gracefully.
func run(ctx context.Context, cfg serverConfig) error {
	srv, video, err := buildServer(cfg.chunks, cfg.chunkMS, cfg.seed, cfg.latency)
	if err != nil {
		return err
	}
	prom := telemetry.NewProm("bba")
	srv.Observer = prom
	if cfg.withFaults {
		// The HTTP-path kinds only: blackouts and collapses are capacity
		// faults, which belong to the network between client and server
		// (shape the client's transport with internal/netem), not to the
		// origin.
		fc := faults.DefaultScheduleConfig()
		fc.Horizon = 24 * time.Hour
		fc.Blackouts = faults.EpisodeConfig{}
		fc.Collapses = faults.EpisodeConfig{}
		sched := faults.GenerateSeeded(fc, cfg.faultSeed)
		srv.Injector = &faults.HTTPInjector{Schedule: sched, Seed: cfg.faultSeed}
		srv.Injector.Start(time.Now())
		fmt.Printf("fault mode: %d episodes scheduled over 24h (seed %d)\n", sched.Len(), cfg.faultSeed)
	}

	o, err := dash.StartOrigin(cfg.addr, srv, dash.OriginConfig{
		Metrics:       prom,
		MaxConns:      cfg.maxConns,
		ShutdownGrace: shutdownGrace,
	})
	if err != nil {
		return err
	}
	fmt.Printf("serving %q (%d chunks of %v, ladder %v–%v) on http://%s (/metrics, /healthz)\n",
		video.Title, video.NumChunks(), video.ChunkDuration,
		video.Ladder.Min(), video.Ladder.Max(), o.Addr())
	if cfg.onReady != nil {
		cfg.onReady(o.Addr())
	}

	select {
	case <-o.Done():
		return o.Err()
	case <-ctx.Done():
		fmt.Println("dashserver: shutting down")
		return o.Close(context.Background())
	}
}

// shutdownGrace bounds how long a draining server waits for in-flight
// chunk downloads before closing their connections.
const shutdownGrace = 5 * time.Second

// buildServer constructs the synthetic title and its HTTP handler.
func buildServer(chunks, chunkMS int, seed int64, latency time.Duration) (*dash.Server, *media.Video, error) {
	video, err := media.NewVBR(media.VBRConfig{
		Title:         "dashserver",
		Ladder:        media.DefaultLadder(),
		ChunkDuration: time.Duration(chunkMS) * time.Millisecond,
		NumChunks:     chunks,
	}, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, nil, err
	}
	srv, err := dash.NewServer(video)
	if err != nil {
		return nil, nil, err
	}
	srv.Latency = latency
	return srv, video, nil
}
