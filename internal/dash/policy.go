package dash

import (
	"time"
)

// FetchPolicy bounds how hard the client tries to land one chunk over real
// HTTP: per-attempt timeout, capped exponential backoff with deterministic
// jitter between attempts, and a total attempt budget shared across
// endpoints. The zero value means defaults.
type FetchPolicy struct {
	// ChunkTimeout caps each attempt (connection + full body); it is what
	// turns a stalled (slowloris) body into a retryable failure. Default
	// 8 s.
	ChunkTimeout time.Duration
	// MaxAttempts is the per-chunk attempt budget, across endpoints
	// (default 4). When both MaxAttempts and the legacy ClientConfig
	// MaxRetries are set, MaxAttempts wins; MaxRetries only fills in when
	// MaxAttempts is unset (<= 0).
	MaxAttempts int
	// BackoffBase and BackoffCap bound the exponential backoff between
	// attempts (defaults 200 ms and 5 s).
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// JitterSeed drives the deterministic backoff jitter, so a replayed
	// session retries on the same schedule.
	JitterSeed int64
}

func (p FetchPolicy) withDefaults(legacyRetries int) FetchPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = legacyRetries
	}
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.ChunkTimeout <= 0 {
		p.ChunkTimeout = 8 * time.Second
	}
	if p.BackoffBase <= 0 {
		p.BackoffBase = 200 * time.Millisecond
	}
	if p.BackoffCap <= 0 {
		p.BackoffCap = 5 * time.Second
	}
	return p
}

// Endpoint-health scoring constants: a failure costs one point (floored),
// a success earns one back (capped), and the client abandons an endpoint
// at switchScore.
const (
	scoreFloor  = -4
	scoreCap    = 2
	switchScore = -2
)

// FailBackAfter is how many consecutive successful requests a session must
// complete on a non-primary endpoint before it fails back to the primary.
// It is exported so harnesses that judge failover convergence (the soak
// daemon's failover_converges invariant) can decide whether a session's
// fault-free tail even had room for a full fail-back streak.
const FailBackAfter = 8

// endpointSet tracks per-endpoint health and picks which server root the
// next request uses. The ordered list expresses preference: index 0 is the
// primary, and the set fails back toward it once the current endpoint has
// proven itself for a while. All state is driven by the caller's
// success/failure reports, never the clock, so failover decisions replay
// deterministically.
type endpointSet struct {
	urls   []string
	scores []int
	active int
	streak int // consecutive successes while away from the primary
}

func newEndpointSet(urls []string) *endpointSet {
	return &endpointSet{urls: urls, scores: make([]int, len(urls))}
}

// current returns the active endpoint's index and URL.
func (es *endpointSet) current() (int, string) { return es.active, es.urls[es.active] }

// success credits the active endpoint. After FailBackAfter consecutive
// successes on a non-primary endpoint it fails back to the most-preferred
// one, giving it a clean score; the switch is reported so the caller can
// emit telemetry.
func (es *endpointSet) success() (switched bool, from, to int) {
	if es.scores[es.active] < scoreCap {
		es.scores[es.active]++
	}
	if es.active == 0 {
		return false, es.active, es.active
	}
	es.streak++
	if es.streak < FailBackAfter {
		return false, es.active, es.active
	}
	from = es.active
	es.active = 0
	es.scores[0] = 0
	es.streak = 0
	return true, from, 0
}

// failure debits the active endpoint and, once it hits the switch
// threshold, moves to the healthiest alternative (lowest index on ties).
func (es *endpointSet) failure() (switched bool, from, to int) {
	if es.scores[es.active] > scoreFloor {
		es.scores[es.active]--
	}
	es.streak = 0
	if len(es.urls) == 1 || es.scores[es.active] > switchScore {
		return false, es.active, es.active
	}
	best := -1
	for i := range es.urls {
		if i == es.active {
			continue
		}
		if best == -1 || es.scores[i] > es.scores[best] {
			best = i
		}
	}
	if best == -1 || es.scores[best] <= es.scores[es.active] {
		// Nowhere healthier to go; stay and keep retrying.
		return false, es.active, es.active
	}
	from = es.active
	es.active = best
	return true, from, best
}
