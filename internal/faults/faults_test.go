package faults

import (
	"reflect"
	"testing"
	"time"

	"bba/internal/trace"
	"bba/internal/units"
)

func TestScheduleValidation(t *testing.T) {
	cases := []struct {
		name string
		fs   []Fault
		ok   bool
	}{
		{"empty", nil, true},
		{"blackout", []Fault{{Kind: Blackout, Start: 10 * time.Second, Duration: 5 * time.Second}}, true},
		{"zero duration", []Fault{{Kind: Blackout, Start: 0, Duration: 0}}, false},
		{"negative start", []Fault{{Kind: Blackout, Start: -time.Second, Duration: time.Second}}, false},
		{"unknown kind", []Fault{{Kind: 0, Start: 0, Duration: time.Second}}, false},
		{"collapse without factor", []Fault{{Kind: Collapse, Start: 0, Duration: time.Second}}, false},
		{"collapse factor 1", []Fault{{Kind: Collapse, Start: 0, Duration: time.Second, Factor: 1}}, false},
		{"collapse ok", []Fault{{Kind: Collapse, Start: 0, Duration: time.Second, Factor: 0.2}}, true},
		{"spike without latency", []Fault{{Kind: LatencySpike, Start: 0, Duration: time.Second}}, false},
		{"same-kind overlap", []Fault{
			{Kind: Blackout, Start: 0, Duration: 10 * time.Second},
			{Kind: Blackout, Start: 5 * time.Second, Duration: 10 * time.Second},
		}, false},
		{"cross-kind overlap", []Fault{
			{Kind: Blackout, Start: 0, Duration: 10 * time.Second},
			{Kind: ServerError, Start: 5 * time.Second, Duration: 10 * time.Second},
		}, true},
	}
	for _, tc := range cases {
		_, err := NewSchedule(tc.fs)
		if (err == nil) != tc.ok {
			t.Errorf("%s: NewSchedule err=%v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestScheduleActive(t *testing.T) {
	s := MustSchedule([]Fault{
		{Kind: Blackout, Start: 10 * time.Second, Duration: 5 * time.Second},
		{Kind: ServerError, Start: 20 * time.Second, Duration: 10 * time.Second},
		{Kind: StallBody, Start: 25 * time.Second, Duration: 10 * time.Second},
	})
	if _, ok := s.Active(Blackout, 9*time.Second); ok {
		t.Error("blackout active before start")
	}
	if _, ok := s.Active(Blackout, 10*time.Second); !ok {
		t.Error("blackout inactive at start")
	}
	if _, ok := s.Active(Blackout, 15*time.Second); ok {
		t.Error("blackout active at end (episodes are half-open)")
	}
	// ActiveHTTP prefers the earliest-starting episode when two overlap.
	f, ok := s.ActiveHTTP(26 * time.Second)
	if !ok || f.Kind != ServerError {
		t.Errorf("ActiveHTTP(26s) = %v, %v; want the server_error episode", f.Kind, ok)
	}
	f, ok = s.ActiveHTTP(31 * time.Second)
	if !ok || f.Kind != StallBody {
		t.Errorf("ActiveHTTP(31s) = %v, %v; want the stall_body episode", f.Kind, ok)
	}
	if _, ok := s.ActiveHTTP(12 * time.Second); ok {
		t.Error("ActiveHTTP matched a capacity fault")
	}
}

func TestTotalOutage(t *testing.T) {
	s := MustSchedule([]Fault{
		{Kind: Blackout, Start: 10 * time.Second, Duration: 20 * time.Second},
		{Kind: Blackout, Start: 100 * time.Second, Duration: 30 * time.Second},
		{Kind: Collapse, Start: 40 * time.Second, Duration: 20 * time.Second, Factor: 0.1},
	})
	if got := s.TotalOutage(time.Hour); got != 50*time.Second {
		t.Errorf("TotalOutage(1h) = %v, want 50s", got)
	}
	// Truncated at the horizon.
	if got := s.TotalOutage(110 * time.Second); got != 30*time.Second {
		t.Errorf("TotalOutage(110s) = %v, want 30s", got)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultScheduleConfig()
	a := GenerateSeeded(cfg, 42)
	b := GenerateSeeded(cfg, 42)
	if !reflect.DeepEqual(a.Faults(), b.Faults()) {
		t.Fatal("same seed produced different schedules")
	}
	c := GenerateSeeded(cfg, 43)
	if reflect.DeepEqual(a.Faults(), c.Faults()) {
		t.Fatal("different seeds produced identical schedules")
	}
	if a.Empty() {
		t.Fatal("default config over an hour produced no faults")
	}
	// Episodes respect the config's duration bounds and kind parameters.
	for _, f := range a.Faults() {
		if f.Start >= cfg.withDefaults().Horizon {
			t.Errorf("episode starts at %v, past the horizon", f.Start)
		}
		switch f.Kind {
		case Collapse:
			if f.Factor < 0.05 || f.Factor > 0.25 {
				t.Errorf("collapse factor %v outside configured [0.05, 0.25]", f.Factor)
			}
		case LatencySpike:
			if f.Latency < 500*time.Millisecond || f.Latency > 2*time.Second {
				t.Errorf("spike latency %v outside configured [500ms, 2s]", f.Latency)
			}
		}
	}
}

func TestGenerateRespectsDisabledKinds(t *testing.T) {
	cfg := ScheduleConfig{
		Horizon:   time.Hour,
		Blackouts: EpisodeConfig{PerHour: 10, MinDuration: 10 * time.Second},
	}
	s := GenerateSeeded(cfg, 7)
	for _, f := range s.Faults() {
		if f.Kind != Blackout {
			t.Fatalf("disabled kind %v generated", f.Kind)
		}
	}
	if s.Empty() {
		t.Fatal("10/hour blackouts generated nothing")
	}
}

func TestApplyToTrace(t *testing.T) {
	base := trace.MustNew([]trace.Segment{
		{Duration: 60 * time.Second, Rate: 4 * units.Mbps},
		{Duration: 60 * time.Second, Rate: 8 * units.Mbps},
	})
	s := MustSchedule([]Fault{
		{Kind: Blackout, Start: 10 * time.Second, Duration: 10 * time.Second},
		// Collapse crossing the 60 s base boundary: must stay proportional
		// to the underlying rate on each side.
		{Kind: Collapse, Start: 50 * time.Second, Duration: 20 * time.Second, Factor: 0.5},
		// HTTP faults must not perturb the trace.
		{Kind: ServerError, Start: 30 * time.Second, Duration: 10 * time.Second},
	})
	got, err := s.ApplyToTrace(base)
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		at   time.Duration
		want units.BitRate
	}{
		{5 * time.Second, 4 * units.Mbps},
		{15 * time.Second, 0},
		{25 * time.Second, 4 * units.Mbps},
		{35 * time.Second, 4 * units.Mbps}, // server_error episode: trace untouched
		{55 * time.Second, 2 * units.Mbps}, // collapse over the 4 Mb/s side
		{65 * time.Second, 4 * units.Mbps}, // collapse over the 8 Mb/s side
		{75 * time.Second, 8 * units.Mbps},
	}
	for _, c := range checks {
		if r := got.RateAt(c.at); r != c.want {
			t.Errorf("RateAt(%v) = %v, want %v", c.at, r, c.want)
		}
	}
}

func TestApplyToTraceBlackoutWinsOverCollapse(t *testing.T) {
	base := trace.Constant(4*units.Mbps, 120*time.Second)
	s := MustSchedule([]Fault{
		{Kind: Collapse, Start: 10 * time.Second, Duration: 40 * time.Second, Factor: 0.5},
		{Kind: Blackout, Start: 20 * time.Second, Duration: 10 * time.Second},
	})
	got, err := s.ApplyToTrace(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		at   time.Duration
		want units.BitRate
	}{
		{15 * time.Second, 2 * units.Mbps},
		{25 * time.Second, 0},
		{35 * time.Second, 2 * units.Mbps},
		{55 * time.Second, 4 * units.Mbps},
	} {
		if r := got.RateAt(c.at); r != c.want {
			t.Errorf("RateAt(%v) = %v, want %v", c.at, r, c.want)
		}
	}
	if s.capacityAt(25*time.Second) != 0 || s.capacityAt(15*time.Second) != 0.5 || s.capacityAt(55*time.Second) != 1 {
		t.Error("capacityAt disagrees with the applied trace")
	}
}

func TestApplyToTraceExtendsBase(t *testing.T) {
	base := trace.Constant(4*units.Mbps, 30*time.Second)
	s := MustSchedule([]Fault{
		{Kind: Blackout, Start: 50 * time.Second, Duration: 10 * time.Second},
	})
	got, err := s.ApplyToTrace(base)
	if err != nil {
		t.Fatal(err)
	}
	if got.Total() < 60*time.Second {
		t.Fatalf("trace not extended: total %v", got.Total())
	}
	if r := got.RateAt(55 * time.Second); r != 0 {
		t.Errorf("RateAt(55s) = %v, want 0 (blackout past base end)", r)
	}
	if r := got.RateAt(65 * time.Second); r != 4*units.Mbps {
		t.Errorf("RateAt(65s) = %v, want the persisted base rate", r)
	}
}

func TestApplyToTraceEmptySchedule(t *testing.T) {
	base := trace.Constant(4*units.Mbps, 30*time.Second)
	var s *Schedule
	got, err := s.ApplyToTrace(base)
	if err != nil || got != base {
		t.Fatalf("nil schedule: got %v, %v; want base unchanged", got, err)
	}
	onlyHTTP := MustSchedule([]Fault{{Kind: ServerError, Start: 0, Duration: time.Second}})
	got, err = onlyHTTP.ApplyToTrace(base)
	if err != nil || got != base {
		t.Fatalf("HTTP-only schedule: got %v, %v; want base unchanged", got, err)
	}
}

func TestBackoff(t *testing.T) {
	base, cap := 200*time.Millisecond, 5*time.Second
	// Deterministic: same coordinates, same delay.
	if a, b := Backoff(base, cap, 1, 3, 2), Backoff(base, cap, 1, 3, 2); a != b {
		t.Fatalf("same coordinates gave %v and %v", a, b)
	}
	// Jitter bounded by ±25% of the capped exponential value.
	for attempt := 1; attempt <= 10; attempt++ {
		d := Backoff(base, cap, 9, 0, attempt)
		ideal := base << (attempt - 1)
		if ideal > cap {
			ideal = cap
		}
		lo := time.Duration(float64(ideal) * 0.75)
		hi := time.Duration(float64(ideal) * 1.25)
		if d < lo || d > hi {
			t.Errorf("attempt %d: backoff %v outside [%v, %v]", attempt, d, lo, hi)
		}
	}
	if Backoff(base, cap, 1, 0, 0) != 0 {
		t.Error("attempt 0 should cost nothing")
	}
}

func TestSessionInjectorDeterministicAndScoped(t *testing.T) {
	s := MustSchedule([]Fault{
		{Kind: ServerError, Start: 10 * time.Second, Duration: 20 * time.Second},
		{Kind: LatencySpike, Start: 40 * time.Second, Duration: 10 * time.Second, Latency: time.Second},
	})
	a := NewSessionInjector(s, 11)
	b := NewSessionInjector(s, 11)
	sawFailure := false
	for chunk := 0; chunk < 16; chunk++ {
		for attempt := 0; attempt < 4; attempt++ {
			l1, d1, f1 := a.ChunkFault(15*time.Second, chunk, attempt)
			l2, d2, f2 := b.ChunkFault(15*time.Second, chunk, attempt)
			if l1 != l2 || d1 != d2 || f1 != f2 {
				t.Fatal("same injector seed disagreed with itself")
			}
			if f1 {
				sawFailure = true
				if l1 != "server_error" || d1 != a.ErrorDelay {
					t.Fatalf("failure label %q delay %v; want server_error/%v", l1, d1, a.ErrorDelay)
				}
			}
		}
	}
	if !sawFailure {
		t.Fatal("no failure in 64 attempts during a server_error episode (p=0.9)")
	}
	// Outside every episode the injector is silent.
	if _, _, failed := a.ChunkFault(5*time.Second, 0, 0); failed {
		t.Error("failure outside any episode")
	}
	if d := a.RequestLatency(45 * time.Second); d != time.Second {
		t.Errorf("RequestLatency in spike = %v, want 1s", d)
	}
	if d := a.RequestLatency(5 * time.Second); d != 0 {
		t.Errorf("RequestLatency outside spike = %v, want 0", d)
	}
	// A nil injector is valid and inert, so the player's hot path can hold
	// a typed nil.
	var nilInj *SessionInjector
	if _, _, failed := nilInj.ChunkFault(15*time.Second, 0, 0); failed {
		t.Error("nil injector injected a fault")
	}
	if nilInj.RequestLatency(45*time.Second) != 0 {
		t.Error("nil injector charged latency")
	}
}
