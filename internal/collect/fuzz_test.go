package collect

import (
	"bytes"
	"testing"
)

// FuzzFrameDecode pins the decoder's safety properties: arbitrary input —
// truncated, corrupt, duplicated, adversarial length fields — never
// panics, and any input that does decode is canonical: re-encoding the
// decoded frame reproduces exactly the bytes consumed. Canonicality is
// what "never double-count" rests on — the dedup key (run, session, seq)
// of a frame is a pure function of its bytes, so a replayed frame can
// never decode to a different key and sneak past the window.
func FuzzFrameDecode(f *testing.F) {
	f.Add(AppendFrame(nil, Frame{Run: "r", Session: 1, Seq: 2, Kind: PayloadEvents, Payload: []byte("line\n")}))
	f.Add(AppendFrame(nil, Frame{Run: "campaign-42", Session: 9, Seq: 0, Kind: PayloadShard, Payload: []byte(`{"shard":1}`)}))
	f.Add(AppendFrame(nil, Frame{Run: "x", Session: 0, Seq: 0, Kind: PayloadRunEnd, Payload: nil}))
	// A doubled frame: the decoder must consume exactly one.
	one := AppendFrame(nil, Frame{Run: "d", Session: 3, Seq: 4, Kind: PayloadRunStart, Payload: []byte("{}")})
	f.Add(append(append([]byte(nil), one...), one...))
	f.Add([]byte{0xB3, 0xAC, 1, 1, 0})
	f.Add([]byte{0xB3, 0xAC})
	f.Add([]byte(nil))
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, b []byte) {
		fr, n, err := DecodeFrame(b)
		if err != nil {
			if n != 0 {
				t.Fatalf("error %v consumed %d bytes", err, n)
			}
			return
		}
		if n <= 0 || n > len(b) {
			t.Fatalf("consumed %d of %d", n, len(b))
		}
		re := AppendFrame(nil, fr)
		if !bytes.Equal(re, b[:n]) {
			t.Fatalf("decode/re-encode is not canonical:\nin:  %x\nout: %x", b[:n], re)
		}
		// Decoding the re-encoding yields the same frame — the dedup key
		// is stable under replay.
		fr2, n2, err2 := DecodeFrame(re)
		if err2 != nil || n2 != n {
			t.Fatalf("re-decode: %v (%d vs %d)", err2, n2, n)
		}
		if fr2.Run != fr.Run || fr2.Session != fr.Session || fr2.Seq != fr.Seq || fr2.Kind != fr.Kind || !bytes.Equal(fr2.Payload, fr.Payload) {
			t.Fatalf("re-decode differs: %+v vs %+v", fr2, fr)
		}
	})
}
