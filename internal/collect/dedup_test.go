package collect

import (
	"errors"
	"testing"
)

func TestStreamAdmitInOrder(t *testing.T) {
	var s stream
	for seq := uint64(0); seq < 10; seq++ {
		fresh, err := s.admit(seq, 4)
		if err != nil || !fresh {
			t.Fatalf("seq %d: fresh=%v err=%v", seq, fresh, err)
		}
	}
	for seq := uint64(0); seq < 10; seq++ {
		if fresh, err := s.admit(seq, 4); err != nil || fresh {
			t.Fatalf("replay %d admitted: fresh=%v err=%v", seq, fresh, err)
		}
	}
	if s.pending() != 0 {
		t.Fatalf("pending %d after contiguous run", s.pending())
	}
}

func TestStreamAdmitOutOfOrder(t *testing.T) {
	var s stream
	// Arrivals 2, 1, 0 — the reordered case — then replays of each.
	for _, seq := range []uint64{2, 1, 0} {
		if fresh, err := s.admit(seq, 4); err != nil || !fresh {
			t.Fatalf("seq %d: fresh=%v err=%v", seq, fresh, err)
		}
	}
	if s.next != 3 || s.pending() != 0 {
		t.Fatalf("next=%d pending=%d, want 3/0", s.next, s.pending())
	}
	for _, seq := range []uint64{0, 1, 2} {
		if fresh, _ := s.admit(seq, 4); fresh {
			t.Fatalf("replay %d admitted fresh", seq)
		}
	}
}

func TestStreamAdmitWindow(t *testing.T) {
	var s stream
	// Park seqs 1, 2 with window 2; seq 3 must be refused, not admitted —
	// forgetting it later would allow a double count.
	for _, seq := range []uint64{1, 2} {
		if fresh, err := s.admit(seq, 2); err != nil || !fresh {
			t.Fatalf("seq %d: fresh=%v err=%v", seq, fresh, err)
		}
	}
	if _, err := s.admit(3, 2); !errors.Is(err, ErrDedupWindow) {
		t.Fatalf("seq 3 beyond window: %v", err)
	}
	// Parked duplicates are still recognized at the full window.
	if fresh, err := s.admit(2, 2); err != nil || fresh {
		t.Fatalf("parked replay: fresh=%v err=%v", fresh, err)
	}
	// The missing seq 0 arrives: the whole run folds and 3 is admittable.
	if fresh, err := s.admit(0, 2); err != nil || !fresh {
		t.Fatalf("seq 0: fresh=%v err=%v", fresh, err)
	}
	if s.next != 3 || s.pending() != 0 {
		t.Fatalf("next=%d pending=%d after fold", s.next, s.pending())
	}
	if fresh, err := s.admit(3, 2); err != nil || !fresh {
		t.Fatalf("seq 3 after fold: fresh=%v err=%v", fresh, err)
	}
}

func TestStreamAdmitSlide(t *testing.T) {
	var s stream
	// Seq 5 is lost. 0–4 fold normally; 6, 7, 8 park; 9 overflows the
	// window and slides past the gap.
	for seq := uint64(0); seq < 5; seq++ {
		if !s.admitSlide(seq, 3) {
			t.Fatalf("seq %d refused", seq)
		}
	}
	for _, seq := range []uint64{6, 7, 8} {
		if !s.admitSlide(seq, 3) {
			t.Fatalf("seq %d refused", seq)
		}
	}
	if s.pending() != 3 {
		t.Fatalf("pending %d, want 3", s.pending())
	}
	if !s.admitSlide(9, 3) {
		t.Fatalf("seq 9 refused")
	}
	if s.next != 10 || s.pending() != 0 {
		t.Fatalf("next=%d pending=%d after slide, want 10/0", s.next, s.pending())
	}
	// The lost seq finally arrives — conceded, counted as a duplicate.
	if s.admitSlide(5, 3) {
		t.Fatalf("conceded seq 5 re-admitted: double count")
	}
	// Duplicates of delivered frames stay recognized.
	for _, seq := range []uint64{6, 9} {
		if s.admitSlide(seq, 3) {
			t.Fatalf("replay %d admitted", seq)
		}
	}
	if !s.admitSlide(10, 3) {
		t.Fatalf("seq 10 refused after slide")
	}
}

func TestStreamAdmitSlideParkedDup(t *testing.T) {
	var s stream
	if !s.admitSlide(4, 8) {
		t.Fatalf("seq 4 refused")
	}
	if s.admitSlide(4, 8) {
		t.Fatalf("parked replay admitted")
	}
	if s.pending() != 1 {
		t.Fatalf("pending %d, want 1", s.pending())
	}
}
