package dash

import (
	"encoding/xml"
	"fmt"
	"time"

	"bba/internal/media"
	"bba/internal/units"
)

// This file renders the served title as a standard MPEG-DASH Media
// Presentation Description (MPD), the manifest format every off-the-shelf
// DASH player consumes. The MPD carries the rate ladder (one
// Representation per rung) and a SegmentTemplate addressing the same
// /chunk/{rate}/{index} URLs the native client uses; what it cannot carry
// is the per-chunk size matrix, which is why BBA-1's reservoir and chunk
// map use the richer JSON manifest. The pairing mirrors the paper's
// deployment: a standards-shaped transport with a side channel of encoding
// metadata for the algorithm.

// MPD is the root of a Media Presentation Description (static profile).
type MPD struct {
	XMLName                   xml.Name `xml:"MPD"`
	XMLNS                     string   `xml:"xmlns,attr"`
	Profiles                  string   `xml:"profiles,attr"`
	Type                      string   `xml:"type,attr"`
	MediaPresentationDuration string   `xml:"mediaPresentationDuration,attr"`
	MinBufferTime             string   `xml:"minBufferTime,attr"`
	Period                    Period   `xml:"Period"`
}

// Period is the single playback period of a static presentation.
type Period struct {
	ID            string        `xml:"id,attr"`
	Duration      string        `xml:"duration,attr"`
	AdaptationSet AdaptationSet `xml:"AdaptationSet"`
}

// AdaptationSet groups the video representations.
type AdaptationSet struct {
	ContentType     string           `xml:"contentType,attr"`
	SegmentAligned  bool             `xml:"segmentAlignment,attr"`
	SegmentTemplate SegmentTemplate  `xml:"SegmentTemplate"`
	Representations []Representation `xml:"Representation"`
}

// SegmentTemplate addresses chunks by representation id and number.
type SegmentTemplate struct {
	Media       string `xml:"media,attr"`
	StartNumber int    `xml:"startNumber,attr"`
	Duration    int64  `xml:"duration,attr"`
	Timescale   int64  `xml:"timescale,attr"`
}

// Representation is one ladder rung.
type Representation struct {
	ID        string `xml:"id,attr"`
	Bandwidth int64  `xml:"bandwidth,attr"`
	Codecs    string `xml:"codecs,attr"`
	MimeType  string `xml:"mimeType,attr"`
}

// MPDFor renders the DASH manifest describing v.
func MPDFor(v *media.Video) MPD {
	const timescale = 1000 // milliseconds
	m := MPD{
		XMLNS:                     "urn:mpeg:dash:schema:mpd:2011",
		Profiles:                  "urn:mpeg:dash:profile:isoff-on-demand:2011",
		Type:                      "static",
		MediaPresentationDuration: xsDuration(v.Duration()),
		MinBufferTime:             xsDuration(v.ChunkDuration),
		Period: Period{
			ID:       "0",
			Duration: xsDuration(v.Duration()),
			AdaptationSet: AdaptationSet{
				ContentType:    "video",
				SegmentAligned: true,
				SegmentTemplate: SegmentTemplate{
					Media:       "/chunk/$RepresentationID$/$Number$",
					StartNumber: 0,
					Duration:    v.ChunkDuration.Milliseconds(),
					Timescale:   timescale,
				},
			},
		},
	}
	for i, r := range v.Ladder {
		m.Period.AdaptationSet.Representations = append(m.Period.AdaptationSet.Representations, Representation{
			ID:        fmt.Sprint(i),
			Bandwidth: int64(r),
			Codecs:    "avc1.4d401f",
			MimeType:  "video/mp4",
		})
	}
	return m
}

// Ladder extracts the rate ladder the MPD advertises.
func (m MPD) Ladder() media.Ladder {
	var l media.Ladder
	for _, r := range m.Period.AdaptationSet.Representations {
		l = append(l, units.BitRate(r.Bandwidth))
	}
	return l
}

// ChunkDuration extracts the segment duration.
func (m MPD) ChunkDuration() time.Duration {
	st := m.Period.AdaptationSet.SegmentTemplate
	if st.Timescale <= 0 {
		return 0
	}
	return time.Duration(st.Duration) * time.Second / time.Duration(st.Timescale)
}

// xsDuration renders an xs:duration ("PT123.456S") as MPDs use.
func xsDuration(d time.Duration) string {
	return fmt.Sprintf("PT%.3fS", d.Seconds())
}

// parseXSDuration reads the "PTxx.xxxS" subset this package emits.
func parseXSDuration(s string) (time.Duration, error) {
	var secs float64
	if _, err := fmt.Sscanf(s, "PT%fS", &secs); err != nil {
		return 0, fmt.Errorf("dash: bad xs:duration %q: %w", s, err)
	}
	return time.Duration(secs * float64(time.Second)), nil
}

// Duration extracts the presentation duration.
func (m MPD) Duration() (time.Duration, error) {
	return parseXSDuration(m.MediaPresentationDuration)
}
