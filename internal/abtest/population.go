// Package abtest reproduces the structure of the paper's production A/B
// experiments: randomly drawn user groups, distributed identically across
// network environments and viewing behaviour, streaming over a weekend with
// only the rate-selection algorithm differing between groups.
//
// Since we cannot run half a million real households, the population is
// synthetic but calibrated to the paper's published statistics:
//
//   - Within-session throughput variability matches Section 1–2: roughly
//     10% of sessions see a 75th/25th percentile ratio at the Figure 1
//     level (≈5.6) and roughly 10% have median throughput below half their
//     95th percentile.
//   - Load and congestion follow the two-hour GMT windows of every figure:
//     the US evening peak (0:00–5:00 GMT) is the most congested; the
//     6:00–12:00 GMT window is quiet and stable.
//   - R_min promotion follows footnote 3: users whose connections
//     historically sustain 560 kb/s stream with R_min = 560 kb/s, the rest
//     with 235 kb/s, identically across groups.
//
// Groups are paired by common random numbers: every group streams the very
// same sessions (same user, same title, same capacity trace, same watch
// duration); only the algorithm differs. This is a stronger variance
// reduction than the paper's independent groups could achieve and lets a
// much smaller population reproduce the same comparisons.
package abtest

import (
	"math"
	"math/rand"
	"sort"
	"time"

	"bba/internal/media"
	"bba/internal/trace"
	"bba/internal/units"
)

// User is one synthetic household-session draw: everything about a session
// except the algorithm.
type User struct {
	// BaseCapacity is the household's median downstream capacity.
	BaseCapacity units.BitRate
	// Sigma is the log-stddev of the session's capacity process.
	Sigma float64
	// Rmin is the session's promoted minimum rate (235 or 560 kb/s).
	Rmin units.BitRate
	// History is the player's stored throughput estimate, used to seed
	// estimator-based algorithms exactly as a production client would.
	History units.BitRate
	// WatchTime is how long the viewer watches.
	WatchTime time.Duration
	// TitleIndex selects the title from the catalogue.
	TitleIndex int
	// Trace is the session's capacity process, shared across groups.
	Trace *trace.Trace
	// Window and Day locate the session in the experiment calendar.
	Window, Day int
}

// DiurnalHarshness maps a two-hour GMT window to a 0–1 congestion level.
// Windows 0–2 cover the US evening peak the paper highlights in yellow;
// windows 3–5 are the quiet overnight/morning period where "the network
// capacity for individual sessions does not change much".
func DiurnalHarshness(window int) float64 {
	h := [...]float64{0.90, 0.85, 0.70, 0.25, 0.20, 0.25, 0.35, 0.45, 0.55, 0.60, 0.70, 0.80}
	if window < 0 || window >= len(h) {
		return 0.5
	}
	return h[window]
}

// PopulationConfig tunes the synthetic population. The zero value gets
// sensible defaults via applyDefaults.
type PopulationConfig struct {
	// MedianCapacity is the population's median household capacity.
	MedianCapacity units.BitRate
	// CapacitySigma is the across-household log-spread of capacity.
	CapacitySigma float64
	// MeanWatch is the median session watch time.
	MeanWatch time.Duration
	// OutageProb is the probability a session contains one 10–40 s
	// complete outage (DSL retrain / WiFi interference, §7.1).
	OutageProb float64
	// FadesPerHour is the peak-hour rate of sustained congestion
	// episodes (45 s – 4 min at a few hundred kb/s). These are the
	// events that separate the algorithms: a client with a drained
	// buffer or a too-high in-flight chunk rebuffers, a conservative
	// one rides them out. The realized per-session rate scales with the
	// window's harshness.
	FadesPerHour float64
	// PromotionThreshold is the historical capacity above which R_min is
	// promoted to 560 kb/s (footnote 3: "most customers").
	PromotionThreshold units.BitRate
}

func (c *PopulationConfig) applyDefaults() {
	if c.MedianCapacity <= 0 {
		c.MedianCapacity = 3500 * units.Kbps
	}
	if c.CapacitySigma <= 0 {
		c.CapacitySigma = 0.75
	}
	if c.MeanWatch <= 0 {
		c.MeanWatch = 18 * time.Minute
	}
	if c.OutageProb <= 0 {
		c.OutageProb = 0.05
	}
	if c.FadesPerHour <= 0 {
		c.FadesPerHour = 1.2
	}
	if c.PromotionThreshold <= 0 {
		c.PromotionThreshold = 1500 * units.Kbps
	}
}

// DrawUser draws one session's user and capacity trace, deterministically
// from rng. The harshness of the session's window shifts both the
// congestion discount on capacity and the variability mixture.
func DrawUser(cfg PopulationConfig, window, day int, rng *rand.Rand) User {
	cfg.applyDefaults()
	h := DiurnalHarshness(window)

	// Household capacity: log-normal across the population, discounted by
	// up to 35% at peak congestion.
	base := cfg.MedianCapacity.Scale(math.Exp(cfg.CapacitySigma * rng.NormFloat64()))
	base = base.Scale(1 - 0.35*h)
	base = base.Clamp(500*units.Kbps, 60*units.Mbps)

	// Variability mixture: most sessions are stable; a harsh-window-
	// dependent tail is as variable as the paper's Figure 1 session.
	var sigma float64
	switch p := rng.Float64(); {
	case p < 0.04+0.30*h:
		sigma = 0.9 + 0.7*rng.Float64() // "highly variable": 75/25 up to ≈5.6+
	case p < 0.16+0.65*h:
		sigma = 0.4 + 0.4*rng.Float64() // moderate
	default:
		sigma = 0.05 + 0.25*rng.Float64() // stable
	}

	// Session watch time: log-normal, between 5 minutes and 3 hours.
	watchSecs := cfg.MeanWatch.Seconds() * math.Exp(0.5*rng.NormFloat64())
	watch := units.SecondsToDuration(watchSecs)
	if watch < 5*time.Minute {
		watch = 5 * time.Minute
	}
	if watch > 3*time.Hour {
		watch = 3 * time.Hour
	}

	// History: what the client remembers of past throughput — the base
	// capacity seen through noise.
	history := base.Scale(math.Exp(0.2 * rng.NormFloat64()))

	rmin := 235 * units.Kbps
	if history >= cfg.PromotionThreshold {
		rmin = 560 * units.Kbps
	}

	// Capacity process: Markov-modulated around the household base, with
	// occasional deep fades (floor well below R_min, so even the R_min
	// Always group rebuffers occasionally — the nonzero lower bound in
	// Figure 7).
	tr := trace.Markov(trace.MarkovConfig{
		Base:      base,
		Sigma:     sigma,
		MeanDwell: 8 * time.Second,
		Duration:  watch + 15*time.Minute,
		Floor:     64 * units.Kbps,
	}, rng)

	// Overlay sustained congestion fades and the occasional hard outage.
	var overrides []trace.Override
	meanFades := cfg.FadesPerHour * (0.25 + 0.75*h) * watch.Hours()
	for n := poisson(meanFades, rng); n > 0; n-- {
		// Durations are log-spread from ~30 s bursts to multi-minute
		// congestion episodes; depth is relative to the household's own
		// capacity, so a healthy connection fades to a few hundred kb/s
		// while an already-poor one can dip below R_min.
		dur := units.SecondsToDuration((0.4 + 0.6*h) * 30 * math.Exp(0.9*math.Abs(rng.NormFloat64())))
		if dur > 6*time.Minute {
			dur = 6 * time.Minute
		}
		depth := base.Scale(0.04+0.16*rng.Float64()).Clamp(80*units.Kbps, 2*units.Mbps)
		overrides = append(overrides, trace.Override{
			Start:    units.SecondsToDuration(rng.Float64() * watch.Seconds()),
			Duration: dur,
			Rate:     depth,
		})
	}
	if rng.Float64() < cfg.OutageProb {
		overrides = append(overrides, trace.Override{
			Start:    units.SecondsToDuration(rng.Float64() * watch.Seconds()),
			Duration: time.Duration(10+rng.Intn(31)) * time.Second,
			Rate:     0,
		})
	}
	tr = applyOverrides(tr, overrides)

	return User{
		BaseCapacity: base,
		Sigma:        sigma,
		Rmin:         rmin,
		History:      history,
		WatchTime:    watch,
		TitleIndex:   rng.Intn(1 << 30),
		Trace:        tr,
		Window:       window,
		Day:          day,
	}
}

// Pick returns the user's title from the catalogue.
func (u User) Pick(c *media.Catalog) *media.Video { return c.Pick(u.TitleIndex) }

// applyOverrides overlays the given spans on tr, dropping overrides that
// overlap an earlier one or start beyond the trace (random draws may
// collide; losing a colliding fade keeps the draw simple and unbiased).
func applyOverrides(tr *trace.Trace, overrides []trace.Override) *trace.Trace {
	if len(overrides) == 0 {
		return tr
	}
	sort.Slice(overrides, func(i, j int) bool { return overrides[i].Start < overrides[j].Start })
	kept := overrides[:0]
	cursor := time.Duration(0)
	for _, o := range overrides {
		if o.Start < cursor || o.Start > tr.Total() {
			continue
		}
		kept = append(kept, o)
		cursor = o.Start + o.Duration
	}
	out, err := trace.WithOverrides(tr, kept)
	if err != nil {
		return tr
	}
	return out
}

// poisson draws a Poisson variate by Knuth's method; fine for small means.
func poisson(mean float64, rng *rand.Rand) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1000 {
			return k
		}
	}
}
