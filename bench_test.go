package bba

// The benchmark harness regenerates every figure of the paper's evaluation
// plus the design-choice ablations. Each benchmark runs its figure
// generator and, once per process, prints the reproduced table with its
// paper-comparison notes, so
//
//	go test -bench=. -benchmem
//
// both times the generators and emits the full reproduction report. A
// single figure:
//
//	go test -bench=BenchmarkFig16StartupRamp -benchtime=1x
//
// The A/B figures share one cached weekend experiment (the first of them
// pays its cost), mirroring how the paper's figures all read from the same
// deployment weekend. Scale is controlled with -bba-scale=full (default
// quick).
import (
	"context"
	"flag"
	"os"
	"sync"
	"testing"

	"bba/internal/figures"
)

var fullScale = flag.Bool("bba-scale-full", false, "run figure benchmarks at full weekend scale")

func benchScale() figures.Scale {
	if *fullScale {
		return figures.Full
	}
	return figures.Quick
}

var printedMu sync.Mutex
var printed = map[string]bool{}

// benchFigure runs one figure generator b.N times and prints its table the
// first time.
func benchFigure(b *testing.B, name string) {
	entry, ok := figures.Lookup(name)
	if !ok {
		b.Fatalf("unknown figure %q", name)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fig, err := entry.Gen(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		printedMu.Lock()
		if !printed[name] {
			printed[name] = true
			b.StopTimer()
			fig.WriteTable(os.Stdout)
			os.Stdout.WriteString("\n")
			b.StartTimer()
		}
		printedMu.Unlock()
	}
}

func BenchmarkFig01ThroughputVariability(b *testing.B) {
	benchFigure(b, "Fig01ThroughputVariability")
}

func BenchmarkSec2SessionVariability(b *testing.B) {
	benchFigure(b, "Sec2SessionVariability")
}

func BenchmarkFig04AggressiveRebuffer(b *testing.B) {
	benchFigure(b, "Fig04AggressiveRebuffer")
}

func BenchmarkFig07RebufferRateBBA0(b *testing.B) {
	benchFigure(b, "Fig07RebufferRateBBA0")
}

func BenchmarkFig08VideoRateBBA0(b *testing.B) {
	benchFigure(b, "Fig08VideoRateBBA0")
}

func BenchmarkFig09SwitchRateBBA0(b *testing.B) {
	benchFigure(b, "Fig09SwitchRateBBA0")
}

func BenchmarkFig10VBRChunkSizes(b *testing.B) {
	benchFigure(b, "Fig10VBRChunkSizes")
}

func BenchmarkFig12ReservoirCalculation(b *testing.B) {
	benchFigure(b, "Fig12ReservoirCalculation")
}

func BenchmarkFig14RebufferRateBBA1(b *testing.B) {
	benchFigure(b, "Fig14RebufferRateBBA1")
}

func BenchmarkFig15VideoRateBBA1(b *testing.B) {
	benchFigure(b, "Fig15VideoRateBBA1")
}

func BenchmarkFig16StartupRamp(b *testing.B) {
	benchFigure(b, "Fig16StartupRamp")
}

func BenchmarkFig17VideoRateBBA2(b *testing.B) {
	benchFigure(b, "Fig17VideoRateBBA2")
}

func BenchmarkFig18SteadyStateRate(b *testing.B) {
	benchFigure(b, "Fig18SteadyStateRate")
}

func BenchmarkFig19RebufferRateBBA2(b *testing.B) {
	benchFigure(b, "Fig19RebufferRateBBA2")
}

func BenchmarkFig20SwitchRateChunkMap(b *testing.B) {
	benchFigure(b, "Fig20SwitchRateChunkMap")
}

func BenchmarkFig21ChunkMapCrossings(b *testing.B) {
	benchFigure(b, "Fig21ChunkMapCrossings")
}

func BenchmarkFig22SwitchRateBBAOthers(b *testing.B) {
	benchFigure(b, "Fig22SwitchRateBBAOthers")
}

func BenchmarkFig23VideoRateBBAOthers(b *testing.B) {
	benchFigure(b, "Fig23VideoRateBBAOthers")
}

func BenchmarkFig24RebufferRateBBAOthers(b *testing.B) {
	benchFigure(b, "Fig24RebufferRateBBAOthers")
}

func BenchmarkSec4Significance(b *testing.B) {
	benchFigure(b, "Sec4Significance")
}

func BenchmarkAblationReservoir(b *testing.B) {
	benchFigure(b, "AblationReservoir")
}

func BenchmarkAblationOutageProtection(b *testing.B) {
	benchFigure(b, "AblationOutageProtection")
}

func BenchmarkAblationStartupThreshold(b *testing.B) {
	benchFigure(b, "AblationStartupThreshold")
}

func BenchmarkAblationLookahead(b *testing.B) {
	benchFigure(b, "AblationLookahead")
}

func BenchmarkSharedLinkFairness(b *testing.B) {
	benchFigure(b, "SharedLinkFairness")
}

// BenchmarkSessionSimulation measures the core engine's raw speed: one
// 18-minute BBA-2 session over a variable trace per iteration.
func BenchmarkSessionSimulation(b *testing.B) {
	video, err := NewVBRTitle("bench", 450, 1)
	if err != nil {
		b.Fatal(err)
	}
	tr := VariableTrace(4*Mbps, 3, 30*60e9, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunSession(SessionConfig{
			Algorithm:  NewBBA2(),
			Video:      video,
			Trace:      tr,
			WatchLimit: 18 * 60e9,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionSimulationObserved is the telemetry overhead guard: the
// same session as BenchmarkSessionSimulation with a minimal (counting)
// observer attached. BenchmarkSessionSimulation above is the nil-observer
// fast path — no event values are built and no buffer state is polled —
// and the acceptance bar is that its time stays within 2% of the
// uninstrumented engine. Compare the two benchmarks to read off the cost
// of full instrumentation (event construction + one dynamic dispatch per
// event, typically a few percent).
func BenchmarkSessionSimulationObserved(b *testing.B) {
	video, err := NewVBRTitle("bench", 450, 1)
	if err != nil {
		b.Fatal(err)
	}
	tr := VariableTrace(4*Mbps, 3, 30*60e9, 2)
	var events int
	obs := ObserverFunc(func(Event) { events++ })
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunSession(SessionConfig{
			Algorithm:  NewBBA2(),
			Video:      video,
			Trace:      tr,
			WatchLimit: 18 * 60e9,
			Observer:   obs,
		}); err != nil {
			b.Fatal(err)
		}
	}
	if events == 0 {
		b.Fatal("observer saw no events")
	}
}

// TestSessionSimulationAllocs pins the hot path's allocation count. The
// engine currently runs a full 18-minute session in 5 heap allocations
// (Result.Chunks preallocated, trace cursor and reservoir plan allocation-
// free per chunk); the ceiling leaves slack for benign churn while still
// catching a per-chunk allocation slipping back in (which would add
// hundreds).
func TestSessionSimulationAllocs(t *testing.T) {
	video, err := NewVBRTitle("bench", 450, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr := VariableTrace(4*Mbps, 3, 30*60e9, 2)
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := RunSession(SessionConfig{
			Algorithm:  NewBBA2(),
			Video:      video,
			Trace:      tr,
			WatchLimit: 18 * 60e9,
		}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 10 {
		t.Errorf("session simulation made %.0f allocations, ceiling is 10", allocs)
	}
}

// BenchmarkGenerateAllFigures times the parallel figure fan-out: every
// registered generator across the available cores, the shared weekend
// experiment computed once (single-flight) and amortized across iterations.
func BenchmarkGenerateAllFigures(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, g := range figures.GenerateAll(context.Background(), benchScale()) {
			if g.Err != nil {
				b.Fatal(g.Err)
			}
		}
	}
}

func BenchmarkShortVideoSessions(b *testing.B) {
	benchFigure(b, "ShortVideoSessions")
}

func BenchmarkSeekStartup(b *testing.B) {
	benchFigure(b, "SeekStartup")
}

func BenchmarkRelatedWorkComparison(b *testing.B) {
	benchFigure(b, "RelatedWorkComparison")
}

func BenchmarkQoERanking(b *testing.B) {
	benchFigure(b, "QoERanking")
}

func BenchmarkBufferOccupancy(b *testing.B) {
	benchFigure(b, "BufferOccupancy")
}

func BenchmarkOutageRobustness(b *testing.B) {
	benchFigure(b, "OutageRobustness")
}

func BenchmarkArenaMatrix(b *testing.B) {
	benchFigure(b, "ArenaMatrix")
}
