package campaign

import (
	"context"
	"fmt"
	"sync/atomic"

	"bba/internal/batch"
	"bba/internal/media"
)

// engineName maps the Batch flag to the label RunStats and the CLI report.
func engineName(batchOn bool) string {
	if batchOn {
		return "batch"
	}
	return "scalar"
}

// ShardRunner executes individual shards of a campaign outside RunContext —
// the worker half of the distributed control plane. A lease-holding worker
// builds one ShardRunner per goroutine from the coordinator's campaign spec
// and runs whatever shard indices it is granted; because a shard's result
// depends only on (identity, shard), the accumulators it returns are
// bit-identical to the ones a local run computes, and the coordinator's
// in-order checkpoint fold reassembles the byte-identical report.
//
// A ShardRunner is not safe for concurrent use: the batch engine reuses
// lane arenas and per-title plan caches across shards. Create one per
// worker goroutine.
type ShardRunner struct {
	cfg     Config
	id      Identity
	catalog *media.Catalog
	runner  *batch.Runner // non-nil when cfg.Batch
	retired atomic.Int64
}

// NewShardRunner validates the config and prepares the catalog and (with
// cfg.Batch) the batch kernel. Orchestration fields — Stripe/Stripes,
// Resume, CheckpointPath, NewExtra, OnShard, Progress — are ignored: the
// caller owns scheduling and folding.
func NewShardRunner(cfg Config) (*ShardRunner, error) {
	cfg.applyDefaults()
	catalog, err := media.NewCatalog(cfg.CatalogSize, cfg.Ladder, cfg.Seed)
	if err != nil {
		return nil, err
	}
	r := &ShardRunner{cfg: cfg, id: cfg.identity(), catalog: catalog}
	if cfg.Batch {
		r.runner = batch.NewRunner(batch.Config{
			Groups:   cfg.Groups,
			Faults:   cfg.Faults,
			Width:    cfg.BatchWidth,
			OnRetire: func() { r.retired.Add(1) },
		})
	}
	return r, nil
}

// Identity returns the campaign identity the runner executes under.
func (r *ShardRunner) Identity() Identity { return r.id }

// Engine names the execution path: "scalar" or "batch".
func (r *ShardRunner) Engine() string { return engineName(r.cfg.Batch) }

// ShardSessions returns how many paired sessions shard s covers.
func (r *ShardRunner) ShardSessions(s int) int { return r.id.shardSessions(s) }

// Retired returns the player sessions finished so far across every shard
// this runner executed — the live throughput counter.
func (r *ShardRunner) Retired() int64 { return r.retired.Load() }

// RunShard executes one shard and returns its per-group accumulators —
// bit-identical to the same shard of a local run. The caller takes
// ownership of the returned accums (typically handing them straight to
// Checkpoint.Record or a coordinator completion POST).
func (r *ShardRunner) RunShard(ctx context.Context, shard int) ([]*GroupAccum, error) {
	if shard < 0 || shard >= r.id.Shards() {
		return nil, fmt.Errorf("campaign: shard %d outside [0,%d)", shard, r.id.Shards())
	}
	if r.cfg.Batch {
		accums, _, err := runShardBatch(ctx, &r.cfg, r.catalog, shard, r.runner)
		return accums, err
	}
	accums, _, err := runShard(ctx, &r.cfg, r.catalog, shard, &r.retired)
	return accums, err
}
