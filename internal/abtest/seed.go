package abtest

import (
	"math/rand"
)

// SessionRNG derives a deterministic, well-separated RNG for one session
// from the experiment seed and the session's calendar coordinates. It is
// exported so custom experiments (the figure generators, for instance) can
// draw the exact population the main harness would.
func SessionRNG(seed int64, day, window, i int) *rand.Rand {
	return sessionRNG(seed, day, window, i)
}

// sessionRNG mixes the coordinates SplitMix64-style so neighbouring
// coordinates produce unrelated streams regardless of worker scheduling.
func sessionRNG(seed int64, day, window, i int) *rand.Rand {
	x := uint64(seed)
	for _, v := range [...]uint64{uint64(day) + 1, uint64(window) + 1, uint64(i) + 1} {
		x += v * 0x9E3779B97F4A7C15
		x = mix64(x)
	}
	return rand.New(rand.NewSource(int64(x)))
}

// sessionFaultSeed derives the per-session fault-schedule seed. It folds
// an extra constant into the sessionRNG mix so the fault weather stays
// decorrelated from the population draw even when FaultSeed equals the
// experiment Seed.
func sessionFaultSeed(seed int64, day, window, i int) int64 {
	x := uint64(seed)
	for _, v := range [...]uint64{uint64(day) + 1, uint64(window) + 1, uint64(i) + 1, 0xFA5E1} {
		x += v * 0x9E3779B97F4A7C15
		x = mix64(x)
	}
	return int64(x)
}

func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
