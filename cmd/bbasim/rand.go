package main

import "math/rand"

// newRand returns a seeded PRNG; isolated here so main.go reads cleanly.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
