package qoe

import (
	"math"
	"testing"
	"time"

	"bba/internal/player"
	"bba/internal/units"
)

func session(rates []units.BitRate, stall time.Duration, played time.Duration) *player.Result {
	res := &player.Result{Played: played, StallTime: stall}
	for i, r := range rates {
		res.Chunks = append(res.Chunks, player.ChunkRecord{Index: i, Rate: r})
	}
	return res
}

func TestScoreComponents(t *testing.T) {
	res := session([]units.BitRate{1000 * units.Kbps, 3000 * units.Kbps, 3000 * units.Kbps},
		2*time.Second, time.Minute)
	b := Score(res, Default())
	// Linear quality: 1 + 3 + 3 = 7.
	if !almost(b.QualityTotal, 7, 1e-9) {
		t.Errorf("quality = %v, want 7", b.QualityTotal)
	}
	// One switch of |3−1| = 2.
	if !almost(b.SwitchTotal, 2, 1e-9) {
		t.Errorf("switch = %v, want 2", b.SwitchTotal)
	}
	if b.StallTotal != 2 {
		t.Errorf("stall = %v", b.StallTotal)
	}
	// QoE = 7 − 5·2 − 1·2 = −5.
	if !almost(b.QoE, -5, 1e-9) {
		t.Errorf("QoE = %v, want -5", b.QoE)
	}
}

func TestScoreOrdersObviousCases(t *testing.T) {
	w := Default()
	steadyHigh := Score(session([]units.BitRate{3000 * units.Kbps, 3000 * units.Kbps, 3000 * units.Kbps}, 0, time.Minute), w)
	steadyLow := Score(session([]units.BitRate{500 * units.Kbps, 500 * units.Kbps, 500 * units.Kbps}, 0, time.Minute), w)
	flappy := Score(session([]units.BitRate{3000 * units.Kbps, 500 * units.Kbps, 3000 * units.Kbps}, 0, time.Minute), w)
	stalled := Score(session([]units.BitRate{3000 * units.Kbps, 3000 * units.Kbps, 3000 * units.Kbps}, 10*time.Second, time.Minute), w)

	if steadyHigh.QoE <= steadyLow.QoE {
		t.Error("higher rate should score higher")
	}
	if flappy.QoE >= steadyHigh.QoE {
		t.Error("flapping should cost quality")
	}
	if stalled.QoE >= steadyHigh.QoE {
		t.Error("stalling should cost quality")
	}
}

func TestLogQuality(t *testing.T) {
	if LogQuality(235) != 0 {
		t.Errorf("log quality at R_min = %v", LogQuality(235))
	}
	// Diminishing returns: the first doubling is worth as much as the
	// second doubling (log), i.e. strictly less per kb/s.
	d1 := LogQuality(470) - LogQuality(235)
	d2 := LogQuality(940) - LogQuality(470)
	if !almost(d1, d2, 1e-9) {
		t.Errorf("doublings differ: %v vs %v", d1, d2)
	}
	if LogQuality(0) != 0 || LogQuality(-5) != 0 {
		t.Error("non-positive rates should score 0")
	}
}

func TestNilQualityDefaults(t *testing.T) {
	res := session([]units.BitRate{1000 * units.Kbps}, 0, time.Minute)
	b := Score(res, Weights{RebufferPenalty: 1})
	if !almost(b.QualityTotal, 1, 1e-9) {
		t.Errorf("default quality = %v", b.QualityTotal)
	}
}

func TestPerHour(t *testing.T) {
	res := session([]units.BitRate{1000 * units.Kbps}, 0, 30*time.Minute)
	b := Score(res, Default())
	if !almost(b.PerHour(res), b.QoE*2, 1e-9) {
		t.Errorf("per hour = %v, want %v", b.PerHour(res), b.QoE*2)
	}
	empty := &player.Result{}
	if Score(empty, Default()).PerHour(empty) != 0 {
		t.Error("zero-play session should score 0 per hour")
	}
}

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
