package dash

import (
	"bytes"
	"encoding/xml"
	"math"
	"reflect"
	"testing"
	"time"

	"bba/internal/media"
	"bba/internal/units"
)

// The fuzz targets exercise the manifest parsers with the round-trip
// property: any input the parser accepts must serialize back into a form
// the parser accepts again, with the semantic fields (ladder, durations,
// segment counts) preserved. Inputs the parser rejects are uninteresting —
// rejection IS the correct handling of hostile data.

func fuzzVideo(f *testing.F) *media.Video {
	f.Helper()
	v, err := media.NewCBR("fuzz-seed", media.DefaultLadder(), 4*time.Second, 6)
	if err != nil {
		f.Fatal(err)
	}
	return v
}

func FuzzMPDRoundTrip(f *testing.F) {
	mpd, err := xml.MarshalIndent(MPDFor(fuzzVideo(f)), "", "  ")
	if err != nil {
		f.Fatal(err)
	}
	f.Add(mpd)
	f.Add([]byte(`<MPD mediaPresentationDuration="PT24S"></MPD>`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var m MPD
		if xml.Unmarshal(data, &m) != nil {
			return
		}
		out, err := xml.Marshal(m)
		if err != nil {
			// Accepted input that cannot re-serialize (e.g. attribute
			// values with invalid code points) is tolerable; the round
			// trip only applies to serializable documents.
			return
		}
		var m2 MPD
		if err := xml.Unmarshal(out, &m2); err != nil {
			t.Fatalf("re-parse of serialized MPD failed: %v\n%s", err, out)
		}
		if !reflect.DeepEqual(m.Ladder(), m2.Ladder()) {
			t.Fatalf("ladder changed across round trip: %v -> %v", m.Ladder(), m2.Ladder())
		}
		d1, err1 := m.Duration()
		d2, err2 := m2.Duration()
		if (err1 == nil) != (err2 == nil) || d1 != d2 {
			t.Fatalf("duration changed across round trip: %v/%v -> %v/%v", d1, err1, d2, err2)
		}
	})
}

func FuzzMasterPlaylistRoundTrip(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteMasterPlaylist(&seed, fuzzVideo(f)); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("#EXTM3U\n#EXT-X-STREAM-INF:BANDWIDTH=1000000\n/playlist/0.m3u8\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ParseMasterPlaylist(bytes.NewReader(data))
		if err != nil {
			return
		}
		ladder := m.Ladder()
		// Serialization goes through a Video, which requires a strictly
		// ascending positive ladder; parsed playlists outside that space
		// have no writer to round-trip through.
		v, err := media.NewCBR("fuzz", ladder, time.Second, 1)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteMasterPlaylist(&buf, v); err != nil {
			t.Fatal(err)
		}
		m2, err := ParseMasterPlaylist(&buf)
		if err != nil {
			t.Fatalf("re-parse of serialized master playlist failed: %v\n%s", err, buf.Bytes())
		}
		if !reflect.DeepEqual(m2.Ladder(), ladder) {
			t.Fatalf("ladder changed across round trip: %v -> %v", ladder, m2.Ladder())
		}
	})
}

func FuzzMediaPlaylistRoundTrip(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteMediaPlaylist(&seed, fuzzVideo(f), 0); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("#EXTM3U\n#EXTINF:4.000,\n/chunk/0/0\n#EXT-X-ENDLIST\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		pl, err := ParseMediaPlaylist(bytes.NewReader(data))
		if err != nil {
			return
		}
		n := len(pl.SegmentURIs)
		if n == 0 || n > 4096 || len(pl.SegmentSecs) != n {
			return
		}
		// The writer emits uniform segment durations, so only uniform
		// parses round-trip structurally.
		secs := pl.SegmentSecs[0]
		if secs <= 0 || secs > 3600 || math.IsNaN(secs) || math.IsInf(secs, 0) {
			return
		}
		for _, s := range pl.SegmentSecs {
			if s != secs {
				return
			}
		}
		v, err := media.NewCBR("fuzz", media.DefaultLadder(), units.SecondsToDuration(secs), n)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteMediaPlaylist(&buf, v, 0); err != nil {
			t.Fatal(err)
		}
		pl2, err := ParseMediaPlaylist(&buf)
		if err != nil {
			t.Fatalf("re-parse of serialized media playlist failed: %v\n%s", err, buf.Bytes())
		}
		if len(pl2.SegmentURIs) != n {
			t.Fatalf("segment count changed across round trip: %d -> %d", n, len(pl2.SegmentURIs))
		}
		if !pl2.Ended {
			t.Fatal("serialized playlist lost its ENDLIST marker")
		}
		// The writer prints durations at millisecond precision.
		if len(pl2.SegmentSecs) > 0 && math.Abs(pl2.SegmentSecs[0]-secs) > 0.001 {
			t.Fatalf("segment duration drifted across round trip: %v -> %v", secs, pl2.SegmentSecs[0])
		}
	})
}
