// Package bba is a production-quality Go reproduction of
//
//	Huang, Johari, McKeown, Trunnell, Watson.
//	"A Buffer-Based Approach to Rate Adaptation:
//	 Evidence from a Large Video Streaming Service". SIGCOMM 2014.
//
// It provides the paper's buffer-based ABR algorithms (BBA-0, BBA-1,
// BBA-2, BBA-Others), the capacity-estimation Control and degenerate
// baselines they are evaluated against, and every substrate that
// evaluation needs: VBR video modelling, capacity traces, a virtual-time
// player, an HTTP streaming path, a shared-bottleneck simulator and a
// weekend-scale A/B experiment harness.
//
// This file is the facade: the handful of entry points a downstream user
// needs. The full API lives in the internal packages and is exercised by
// the examples under examples/ and the figure benchmarks in bench_test.go.
//
// Quick start — simulate one session:
//
//	video, _ := bba.NewVBRTitle("movie", 1800, 1)
//	result, _ := bba.RunSession(bba.SessionConfig{
//		Algorithm: bba.NewBBA2(),
//		Video:     video,
//		Trace:     bba.ConstantTrace(4*bba.Mbps, time.Hour),
//	})
//	fmt.Println(result.RebuffersPerPlayhour(), result.AvgRateKbps())
package bba

import (
	"context"
	"io"
	"math/rand"
	"time"

	"bba/internal/abr"
	"bba/internal/abtest"
	"bba/internal/media"
	"bba/internal/player"
	"bba/internal/replay"
	"bba/internal/telemetry"
	"bba/internal/trace"
	"bba/internal/units"
)

// BitRate is a bit rate in bits per second.
type BitRate = units.BitRate

// Bit-rate units.
const (
	Kbps = units.Kbps
	Mbps = units.Mbps
)

// Algorithm selects the video rate for each chunk of a session. Fresh
// instances are per-session state machines.
type Algorithm = abr.Algorithm

// Factory builds a fresh single-session Algorithm instance. Batch runners
// (the A/B harness, campaigns, the arena) take factories rather than
// instances so every session gets its own state machine.
type Factory = abr.Factory

// Result is the complete outcome of one streaming session.
type Result = player.Result

// Video is a title encoded at every ladder rate.
type Video = media.Video

// Trace is a piecewise-constant network-capacity process.
type Trace = trace.Trace

// Event is one structured session-telemetry event (chunk request/complete,
// rate switch, rebuffer start/end, buffer sample, reservoir update, seek).
type Event = telemetry.Event

// EventKind identifies the type of a telemetry Event.
type EventKind = telemetry.Kind

// Observer receives a session's telemetry events; set it on SessionConfig
// (or abtest/dash configs) to instrument a session. Nil disables telemetry
// at zero cost.
type Observer = telemetry.Observer

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc = telemetry.Func

// The telemetry event taxonomy, re-exported from internal/telemetry.
const (
	EventSessionStart    = telemetry.SessionStart
	EventChunkRequest    = telemetry.ChunkRequest
	EventChunkComplete   = telemetry.ChunkComplete
	EventRateSwitch      = telemetry.RateSwitch
	EventRebufferStart   = telemetry.RebufferStart
	EventRebufferEnd     = telemetry.RebufferEnd
	EventBufferSample    = telemetry.BufferSample
	EventReservoirUpdate = telemetry.ReservoirUpdate
	EventSeek            = telemetry.Seek
	EventSessionEnd      = telemetry.SessionEnd
)

// NewJournal returns an observer writing deterministic JSONL (one event
// per line) to w; call Flush when the session set completes.
func NewJournal(w io.Writer) *telemetry.Journal { return telemetry.NewJournal(w) }

// NewRing returns a bounded in-memory observer retaining the last
// capacity events.
func NewRing(capacity int) *telemetry.Ring { return telemetry.NewRing(capacity) }

// NewProm returns an observer aggregating events into Prometheus-text
// counters and histograms; it doubles as an http.Handler for /metrics.
func NewProm() *telemetry.Prom { return telemetry.NewProm("bba") }

// MultiObserver fans events out to every non-nil observer.
func MultiObserver(obs ...Observer) Observer { return telemetry.Multi(obs...) }

// NewBBA0 returns the paper's Section 4 baseline buffer-based algorithm:
// fixed 90 s reservoir, linear rate map, Algorithm 1 hysteresis.
func NewBBA0() Algorithm { return abr.NewBBA0() }

// NewBBA1 returns the Section 5 algorithm: dynamic reservoir and chunk map
// for VBR encodes, with the deployed outage-protection accrual.
func NewBBA1() Algorithm { return abr.NewBBA1() }

// NewBBA2 returns the Section 6 algorithm — the paper's headline design:
// a ΔB capacity-assisted startup ramp over the BBA-1 steady state.
func NewBBA2() Algorithm { return abr.NewBBA2() }

// NewBBAOthers returns the Section 7 algorithm: BBA-2 plus lookahead
// switch smoothing and a right-shift-only reservoir whose excess acts as
// outage protection.
func NewBBAOthers() Algorithm { return abr.NewBBAOthers() }

// NewControl returns a representative capacity-estimation algorithm in the
// style of the paper's production default (estimate-primary, buffer-
// adjusted), the comparison point of every figure.
func NewControl() Algorithm { return abr.NewControl() }

// NewRminAlways returns the degenerate lower-bound policy: always stream
// the lowest rate.
func NewRminAlways() Algorithm { return abr.RminAlways{} }

// NewBOLA returns the BOLA rival (Spiteri et al., arXiv:1601.06748): the
// Lyapunov buffer-based controller the arena pits against the BBA family.
func NewBOLA() Algorithm { return abr.NewBOLA() }

// NewSmoothThroughput returns the harmonic-mean capacity-rule rival.
func NewSmoothThroughput() Algorithm { return abr.NewSmoothThroughput() }

// NewHybrid returns the throughput/buffer hybrid rival (dash.js DYNAMIC
// style): throughput rule below 10 s of buffer, BOLA above.
func NewHybrid() Algorithm { return abr.NewHybrid() }

// NewAlgorithm builds an algorithm from its registered name; see
// AlgorithmNames for the registry. Unknown names return an error that
// enumerates everything registered.
func NewAlgorithm(name string) (Algorithm, error) { return abr.New(name) }

// AlgorithmNames returns every registered algorithm name in registration
// order — the valid inputs to NewAlgorithm and the -algo flags of the
// commands.
func AlgorithmNames() []string { return abr.Names() }

// RegisterAlgorithm adds a named algorithm factory to the registry, making
// it selectable by name everywhere (NewAlgorithm, experiment groups, arena
// entrants, command flags). Duplicate names panic; register from init.
func RegisterAlgorithm(name string, f Factory) { abr.Register(name, f) }

// DefaultLadder returns the 235 kb/s – 5 Mb/s encoding ladder used
// throughout the experiments.
func DefaultLadder() media.Ladder { return media.DefaultLadder() }

// NewVBRTitle generates a VBR title of the given length (in 4-second
// chunks) on the default ladder, deterministically from seed. The chunk
// sizes reproduce the paper's Figure 10 statistics (max-to-average ≈ 2).
func NewVBRTitle(title string, chunks int, seed int64) (*Video, error) {
	return media.NewVBR(media.VBRConfig{
		Title:     title,
		Ladder:    media.DefaultLadder(),
		NumChunks: chunks,
	}, rand.New(rand.NewSource(seed)))
}

// NewCBRTitle generates a constant-bitrate title on the default ladder.
func NewCBRTitle(title string, chunks int) (*Video, error) {
	return media.NewCBR(title, media.DefaultLadder(), media.DefaultChunkDuration, chunks)
}

// ConstantTrace returns a fixed-capacity trace.
func ConstantTrace(rate BitRate, d time.Duration) *Trace {
	return trace.Constant(rate, d)
}

// StepTrace returns a trace that switches from before to after at time at —
// the paper's Figure 4 scenario shape.
func StepTrace(before, after BitRate, at, total time.Duration) *Trace {
	return trace.Step(before, after, at, total)
}

// VariableTrace returns a Markov-modulated capacity trace around base whose
// 75th/25th percentile throughput ratio is approximately quartileRatio
// (the paper's Figure 1 session: 5.6), deterministically from seed.
func VariableTrace(base BitRate, quartileRatio float64, d time.Duration, seed int64) *Trace {
	return trace.Markov(trace.MarkovConfig{
		Base:     base,
		Sigma:    trace.SigmaForQuartileRatio(quartileRatio),
		Duration: d,
	}, rand.New(rand.NewSource(seed)))
}

// SessionConfig describes one simulated streaming session.
type SessionConfig struct {
	// Algorithm picks the rate for every chunk. Exactly one of Algorithm
	// and AlgorithmFactory is normally set; when both are set the factory
	// takes precedence, because a factory guarantees a fresh state machine
	// while an instance may carry state from an earlier run.
	Algorithm Algorithm
	// AlgorithmFactory, when non-nil, builds the session's algorithm,
	// overriding Algorithm. Use it when reusing one SessionConfig across
	// runs (or handing it to a batch runner) so each session starts fresh.
	AlgorithmFactory Factory
	// Video is the title to stream.
	Video *Video
	// Trace is the network capacity over the session.
	Trace *Trace
	// Rmin, when non-zero, applies the paper's footnote-3 promotion: the
	// session ladder starts at the lowest rate ≥ Rmin.
	Rmin BitRate
	// BufferMax is the playback buffer size (default: the paper's 240 s).
	BufferMax time.Duration
	// WatchLimit stops after this much delivered video (default: the
	// whole title).
	WatchLimit time.Duration
	// Observer, when non-nil, receives the session's telemetry events in
	// session-clock order (see Event). Nil disables telemetry at zero
	// cost.
	Observer Observer
}

// RunSession simulates the session in virtual time and returns its result.
// Multi-hour sessions simulate in microseconds to milliseconds.
func RunSession(cfg SessionConfig) (*Result, error) {
	return RunSessionContext(context.Background(), cfg)
}

// RunSessionContext is RunSession with cancellation: the context is
// checked once per chunk, so long simulations (or batches of them) stop
// promptly when the caller cancels or a deadline passes.
func RunSessionContext(ctx context.Context, cfg SessionConfig) (*Result, error) {
	alg := cfg.Algorithm
	if cfg.AlgorithmFactory != nil {
		alg = cfg.AlgorithmFactory()
	}
	return player.RunContext(ctx, player.Config{
		Algorithm:  alg,
		Stream:     abr.NewStream(cfg.Video, cfg.Rmin),
		Trace:      cfg.Trace,
		BufferMax:  cfg.BufferMax,
		WatchLimit: cfg.WatchLimit,
		Observer:   cfg.Observer,
	})
}

// ObservedTrace reconstructs the capacity process a finished session
// experienced, from its per-chunk throughput observations. Feed it back
// into RunSession with a different algorithm for a counterfactual — the
// paper's Figure 4 question ("this rebuffer was entirely unnecessary").
func ObservedTrace(res *Result) (*Trace, error) {
	return replay.TraceFromResult(res)
}

// Experiment runs a weekend-scale paired A/B test across the paper's six
// groups (Control, Rmin Always, BBA-0/1/2/Others) over a synthetic
// population calibrated to the paper's variability statistics. days and
// sessionsPerWindow size the population; the result is deterministic in
// seed.
func Experiment(seed int64, days, sessionsPerWindow int) (*abtest.Outcome, error) {
	return abtest.Run(abtest.Config{
		Seed:              seed,
		Days:              days,
		SessionsPerWindow: sessionsPerWindow,
	})
}
