package abtest

import (
	"fmt"

	"bba/internal/abr"
	"bba/internal/faults"
	"bba/internal/media"
	"bba/internal/player"
	"bba/internal/trace"
)

// SessionEnv is the per-draw environment of one paired session: the
// stream view, the (possibly fault-reshaped) trace, and the shared fault
// injector — everything the paired common-random-numbers design shares
// across groups. PlayUser builds one and streams the groups sequentially;
// the batch kernel builds the same env and advances the groups' sessions
// as concurrent lanes. Either way each group sees identical inputs, so
// results are identical.
type SessionEnv struct {
	// User is the drawn viewer (trace, title pick, watch time, R_min).
	User User
	// Stream is the session's view of the title with the user's R_min.
	Stream abr.Stream
	// Trace is the capacity process, reshaped by fault weather when the
	// draw has any.
	Trace *trace.Trace
	// Injector is the shared per-draw fault injector; nil on clean draws.
	// It is stateless, so concurrently advancing lanes may share it.
	Injector *faults.SessionInjector
	// FaultSeed keyed the schedule and seeds the retry backoff jitter.
	FaultSeed int64
}

// NewSessionEnv builds the environment for one paired draw. When fcfg is
// non-nil the fault schedule drawn from (fcfg, fseed) reshapes the trace
// and arms the injector, exactly as PlayUser always did.
func NewSessionEnv(u User, video *media.Video, fcfg *faults.ScheduleConfig, fseed int64) (SessionEnv, error) {
	env := SessionEnv{
		User:      u,
		Stream:    abr.NewStream(video, u.Rmin),
		Trace:     u.Trace,
		FaultSeed: fseed,
	}
	if fcfg != nil {
		sched := faults.GenerateSeeded(*fcfg, fseed)
		tr, err := sched.ApplyToTrace(u.Trace)
		if err != nil {
			return SessionEnv{}, fmt.Errorf("fault trace: %w", err)
		}
		env.Trace = tr
		env.Injector = faults.NewSessionInjector(sched, fseed)
	}
	return env, nil
}

// PlayerConfig assembles the player configuration for one group's session
// of this draw, constructing the group's fresh per-session algorithm.
func (e *SessionEnv) PlayerConfig(g Group) player.Config {
	pc := player.Config{
		Algorithm:  g.New(e.User),
		Stream:     e.Stream,
		Trace:      e.Trace,
		WatchLimit: e.User.WatchTime,
	}
	if e.Injector != nil {
		pc.Injector = e.Injector
		pc.Retry = player.RetryPolicy{Seed: e.FaultSeed}
	}
	return pc
}
