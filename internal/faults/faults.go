// Package faults is the deterministic fault-injection subsystem: a
// seed-driven generator of fault schedules — link blackouts, throughput
// collapse, latency spikes, HTTP 5xx bursts, stalled (slowloris) chunk
// bodies and mid-download connection resets — plus the injectors that
// apply a schedule at every layer of the stack.
//
// The paper's core resilience claim (§4, §6, and the companion tech
// report "Using the Buffer to Avoid Rebuffers", arXiv:1401.2209) is that
// buffer-based adaptation rides out capacity collapse and transient
// outages that capacity-estimation controllers mishandle; Arye et al.
// (arXiv:1901.00038) show real-world QoE losses are dominated by exactly
// these transport-level pathologies. Until now the repo could only express
// outages as hand-built zero-rate trace segments; this package makes the
// fault process a first-class, seeded model the A/B harness can treat
// like any other experimental variable.
//
// Layer mapping. Each fault kind is injected where it is observable:
//
//   - Blackout, Collapse, LatencySpike are capacity faults: they compose
//     with trace.Trace via Schedule.ApplyToTrace, which both the
//     virtual-time player and the netem.Shaper-shaped real HTTP path
//     consume.
//   - ServerError, StallBody, ConnReset are HTTP-path pathologies: on the
//     simulated path a SessionInjector turns them into per-chunk attempt
//     failures the player retries through; on the real path a Transport
//     (client side) or HTTPInjector (dash server side) applies them to
//     live requests.
//
// Determinism. Every decision is a pure function of a seed and discrete
// coordinates (chunk index, attempt number, request sequence) — never the
// wall clock — so the same experiment seed and fault seed reproduce the
// same fault history at any harness parallelism, and the telemetry
// journal of a fault run is byte-identical across worker counts.
package faults

import (
	"fmt"
	"sort"
	"time"
)

// Kind identifies a fault type.
type Kind uint8

// The fault taxonomy.
const (
	// Blackout forces link capacity to zero for the episode — a DSL
	// retrain, a WiFi interference burst, a transit outage.
	Blackout Kind = iota + 1
	// Collapse multiplies link capacity by Factor (0 < Factor < 1) — the
	// sustained congestion episodes behind Figure 1's deep fades.
	Collapse
	// LatencySpike adds Latency of first-byte delay to every request in
	// the episode (bufferbloat, rerouting). The virtual player charges it
	// per chunk via the SessionInjector; the real path pays it per request
	// via Transport.
	LatencySpike
	// ServerError makes chunk requests fail with HTTP 503 for the episode
	// — an overloaded or misconfigured edge.
	ServerError
	// StallBody starts the response then stops delivering mid-body
	// (slowloris): the client sees progress, then nothing, until its
	// per-chunk timeout fires.
	StallBody
	// ConnReset drops the connection mid-download, after part of the body
	// has arrived.
	ConnReset
)

var kindNames = [...]string{
	Blackout:     "blackout",
	Collapse:     "collapse",
	LatencySpike: "latency_spike",
	ServerError:  "server_error",
	StallBody:    "stall_body",
	ConnReset:    "conn_reset",
}

// String returns the snake_case name used in telemetry labels.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return "unknown"
}

// IsCapacity reports whether the kind is a capacity fault (applied through
// the trace) rather than an HTTP-path pathology.
func (k Kind) IsCapacity() bool {
	return k == Blackout || k == Collapse || k == LatencySpike
}

// Fault is one scheduled fault episode on the session clock.
type Fault struct {
	Kind  Kind
	Start time.Duration
	// Duration is the episode length.
	Duration time.Duration
	// Factor is the capacity multiplier of a Collapse (0 < Factor < 1).
	Factor float64
	// Latency is the added first-byte delay of a LatencySpike.
	Latency time.Duration
}

// End returns the episode's end on the session clock.
func (f Fault) End() time.Duration { return f.Start + f.Duration }

func (f Fault) validate(i int) error {
	if f.Kind < Blackout || f.Kind > ConnReset {
		return fmt.Errorf("faults: episode %d has unknown kind %d", i, f.Kind)
	}
	if f.Start < 0 {
		return fmt.Errorf("faults: episode %d starts before zero", i)
	}
	if f.Duration <= 0 {
		return fmt.Errorf("faults: episode %d has non-positive duration %v", i, f.Duration)
	}
	if f.Kind == Collapse && (f.Factor <= 0 || f.Factor >= 1) {
		return fmt.Errorf("faults: episode %d collapse factor %v outside (0,1)", i, f.Factor)
	}
	if f.Kind == LatencySpike && f.Latency <= 0 {
		return fmt.Errorf("faults: episode %d latency spike without latency", i)
	}
	return nil
}

// Schedule is an immutable, start-ordered set of fault episodes. Episodes
// of different kinds may overlap; episodes of the same kind may not.
type Schedule struct {
	faults []Fault
}

// NewSchedule validates and sorts the episodes into a Schedule.
func NewSchedule(fs []Fault) (*Schedule, error) {
	s := &Schedule{faults: make([]Fault, len(fs))}
	copy(s.faults, fs)
	sort.SliceStable(s.faults, func(i, j int) bool { return s.faults[i].Start < s.faults[j].Start })
	lastEnd := map[Kind]time.Duration{}
	for i, f := range s.faults {
		if err := f.validate(i); err != nil {
			return nil, err
		}
		if end, ok := lastEnd[f.Kind]; ok && f.Start < end {
			return nil, fmt.Errorf("faults: episode %d overlaps a previous %s episode", i, f.Kind)
		}
		lastEnd[f.Kind] = f.End()
	}
	return s, nil
}

// MustSchedule is NewSchedule but panics on error, for tests and literals.
func MustSchedule(fs []Fault) *Schedule {
	s, err := NewSchedule(fs)
	if err != nil {
		panic(err)
	}
	return s
}

// Faults returns a copy of the episodes in start order.
func (s *Schedule) Faults() []Fault {
	out := make([]Fault, len(s.faults))
	copy(out, s.faults)
	return out
}

// Len returns the number of episodes.
func (s *Schedule) Len() int { return len(s.faults) }

// Empty reports whether the schedule has no episodes.
func (s *Schedule) Empty() bool { return s == nil || len(s.faults) == 0 }

// Active returns the episode of the given kind covering time at, if any.
func (s *Schedule) Active(kind Kind, at time.Duration) (Fault, bool) {
	if s == nil {
		return Fault{}, false
	}
	// Episodes are start-ordered; the set is small (a handful per hour),
	// so a linear scan with an early exit beats maintaining per-kind
	// indices.
	for _, f := range s.faults {
		if f.Start > at {
			break
		}
		if f.Kind == kind && at < f.End() {
			return f, true
		}
	}
	return Fault{}, false
}

// ActiveHTTP returns the HTTP-path episode (ServerError, StallBody or
// ConnReset) covering time at, preferring the earliest-starting one.
func (s *Schedule) ActiveHTTP(at time.Duration) (Fault, bool) {
	if s == nil {
		return Fault{}, false
	}
	for _, f := range s.faults {
		if f.Start > at {
			break
		}
		if !f.Kind.IsCapacity() && at < f.End() {
			return f, true
		}
	}
	return Fault{}, false
}

// TotalOutage sums the blackout time scheduled before horizon — the
// protection budget a resilient session must be able to ride out.
func (s *Schedule) TotalOutage(horizon time.Duration) time.Duration {
	if s == nil {
		return 0
	}
	var total time.Duration
	for _, f := range s.faults {
		if f.Kind != Blackout || f.Start >= horizon {
			continue
		}
		end := f.End()
		if end > horizon {
			end = horizon
		}
		total += end - f.Start
	}
	return total
}

// capacityAt returns the multiplicative capacity factor the schedule's
// capacity faults impose at time at: 0 during a blackout, Factor during a
// collapse, 1 otherwise. Latency spikes are charged per request by the
// injectors, not through the trace.
func (s *Schedule) capacityAt(at time.Duration) float64 {
	if _, ok := s.Active(Blackout, at); ok {
		return 0
	}
	if f, ok := s.Active(Collapse, at); ok {
		return f.Factor
	}
	return 1
}
