package figures

import (
	"fmt"
	"math/rand"
	"time"

	"bba/internal/abr"
	"bba/internal/abtest"
	"bba/internal/media"
	"bba/internal/player"
	"bba/internal/stats"
	"bba/internal/trace"
	"bba/internal/units"
)

// referenceVideo is the shared VBR title used by single-session figures.
func referenceVideo(chunks int) (*media.Video, error) {
	return media.NewVBR(media.VBRConfig{
		Title:     "black-hawk-down",
		Ladder:    media.DefaultLadder(),
		NumChunks: chunks,
	}, rand.New(rand.NewSource(10)))
}

// Fig01ThroughputVariability reproduces Figure 1: the per-chunk throughput
// a single client observes over a highly variable session, with the
// quartile-ratio statistic the paper quotes (5.6 for its sample trace).
func Fig01ThroughputVariability() (*Figure, error) {
	video, err := referenceVideo(900)
	if err != nil {
		return nil, err
	}
	// A harsh session: Sigma calibrated for the paper's 75/25 ratio.
	tr := trace.Markov(trace.MarkovConfig{
		Base:      4 * units.Mbps,
		Sigma:     trace.SigmaForQuartileRatio(5.6),
		MeanDwell: 10 * time.Second,
		Duration:  time.Hour,
		Floor:     300 * units.Kbps,
		Ceiling:   20 * units.Mbps,
	}, rand.New(rand.NewSource(16)))
	res, err := player.Run(player.Config{
		Algorithm:  abr.NewBBA2(),
		Stream:     abr.NewStream(video, 0),
		Trace:      tr,
		WatchLimit: 40 * time.Minute,
	})
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "fig01",
		Title:  "Measured per-chunk throughput of one session",
		XLabel: "session time",
		YLabel: "throughput (kb/s)",
	}
	series := Series{Name: "throughput"}
	var samples []float64
	for i, c := range res.Chunks {
		samples = append(samples, c.Throughput.Kilobits())
		if i%8 == 0 { // thin the plotted series; stats use every chunk
			series.Points = append(series.Points, Point{
				X: fmt.Sprintf("%4.0fs", c.Start.Seconds()),
				Y: c.Throughput.Kilobits(),
			})
		}
	}
	fig.Series = []Series{series}
	summary, err := stats.Summarize(samples)
	if err != nil {
		return nil, err
	}
	ratio, _ := stats.QuartileRatio(samples)
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("throughput range %.0f–%.0f kb/s (paper: ~500 kb/s to 17 Mb/s)", summary.Min, summary.Max),
		fmt.Sprintf("75th/25th percentile ratio = %.1f (paper's trace: 5.6)", ratio),
	)
	return fig, nil
}

// Fig04AggressiveRebuffer reproduces Figure 4: a capacity-estimating
// algorithm that is not conservative enough rides a 3 Mb/s stream into a
// long rebuffer after capacity collapses to 350 kb/s — even though capacity
// never drops below R_min, so the rebuffer is entirely unnecessary. The
// same scenario under BBA-0 stays rebuffer-free.
func Fig04AggressiveRebuffer() (*Figure, error) {
	video, err := media.NewCBR("fig4", media.DefaultLadder(), media.DefaultChunkDuration, 450)
	if err != nil {
		return nil, err
	}
	// "A video starts streaming at 3Mb/s over a 5Mb/s network. After 25s
	// the available capacity drops to 350 kb/s."
	tr := trace.Step(5*units.Mbps, 350*units.Kbps, 25*time.Second, time.Hour)
	stream := abr.NewStream(video, 0)

	aggressive := abr.NewAggressiveControl()
	aggressive.InitialEstimate = 5 * units.Mbps
	bad, err := player.Run(player.Config{
		Algorithm:  aggressive,
		Stream:     stream,
		Trace:      tr,
		WatchLimit: 10 * time.Minute,
	})
	if err != nil {
		return nil, err
	}
	good, err := player.Run(player.Config{
		Algorithm:  abr.NewBBA0(),
		Stream:     stream,
		Trace:      tr,
		WatchLimit: 10 * time.Minute,
	})
	if err != nil {
		return nil, err
	}

	fig := &Figure{
		ID:     "fig04",
		Title:  "Being too aggressive: rate and buffer under a capacity collapse",
		XLabel: "session time",
		YLabel: "video rate (kb/s) / buffer (s)",
	}
	var rate, buffer Series
	rate.Name = "agg. video rate"
	buffer.Name = "agg. buffer"
	for _, c := range bad.Chunks {
		x := fmt.Sprintf("%4.0fs", c.Start.Seconds())
		rate.Points = append(rate.Points, Point{X: x, Y: c.Rate.Kilobits()})
		buffer.Points = append(buffer.Points, Point{X: x, Y: c.BufferAfter.Seconds()})
	}
	fig.Series = []Series{rate, buffer}
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("aggressive estimator: playback frozen %.0f s in total across %d event(s) (paper: a single 200 s freeze)",
			bad.StallTime.Seconds(), bad.Rebuffers),
		"capacity ≥ 350 kb/s > R_min at all times, so every second of that freeze is unnecessary",
		fmt.Sprintf("BBA-0 on the identical scenario: %d rebuffers, %.0f s frozen", good.Rebuffers, good.StallTime.Seconds()),
	)
	return fig, nil
}

// Fig10VBRChunkSizes reproduces Figure 10: the size of 4-second chunks of a
// VBR title encoded at a nominal 3 Mb/s; the average is 1.5 MB and the
// max-to-average ratio e is about 2.
func Fig10VBRChunkSizes() (*Figure, error) {
	video, err := referenceVideo(1800)
	if err != nil {
		return nil, err
	}
	ri := video.Ladder.IndexOf(3000 * units.Kbps)
	fig := &Figure{
		ID:     "fig10",
		Title:  "Chunk sizes of a VBR title encoded at 3 Mb/s",
		XLabel: "playback position",
		YLabel: "chunk size (MB)",
	}
	s := Series{Name: "chunk size"}
	sizes := video.ChunkSizes(ri)
	for k := 0; k < len(sizes); k += 15 {
		s.Points = append(s.Points, Point{
			X: fmt.Sprintf("%5.0fs", (time.Duration(k) * video.ChunkDuration).Seconds()),
			Y: float64(sizes[k]) / 1e6,
		})
	}
	fig.Series = []Series{s}
	sizesF := make([]float64, len(sizes))
	for i, v := range sizes {
		sizesF[i] = float64(v)
	}
	acf1, _ := stats.Autocorrelation(sizesF, 1)
	acf60, _ := stats.Autocorrelation(sizesF, 60)
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("average chunk size %.2f MB (paper: 1.5 MB = 4 s × 3 Mb/s)",
			float64(video.MeasuredAvgChunkSize(ri))/1e6),
		fmt.Sprintf("max-to-average ratio e = %.2f (paper: ≈2)", video.MaxToAvgRatio(ri)),
		fmt.Sprintf("scene structure: lag-1 autocorrelation %.2f (adjacent chunks share a scene), lag-60 %.2f (4 minutes apart, decorrelated)", acf1, acf60),
	)
	return fig, nil
}

// Fig12Reservoir reproduces the Figure 12 calculation: the dynamic
// reservoir along a title, shrinking through quiet scenes and expanding
// ahead of heavy ones, clamped to the paper's [8 s, 140 s].
func Fig12Reservoir() (*Figure, error) {
	video, err := referenceVideo(1800)
	if err != nil {
		return nil, err
	}
	stream := abr.NewStream(video, 0)
	fig := &Figure{
		ID:     "fig12",
		Title:  "Dynamic reservoir along the title (X = 480 s window)",
		XLabel: "playback position",
		YLabel: "reservoir (s)",
	}
	s := Series{Name: "reservoir"}
	var min, max float64 = 1e9, 0
	for k := 0; k < video.NumChunks(); k += 15 {
		r := abr.DynamicReservoir(stream, k, 0).Seconds()
		if r < min {
			min = r
		}
		if r > max {
			max = r
		}
		s.Points = append(s.Points, Point{
			X: fmt.Sprintf("%5.0fs", (time.Duration(k) * video.ChunkDuration).Seconds()),
			Y: r,
		})
	}
	fig.Series = []Series{s}
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("reservoir spans %.0f–%.0f s across the title (paper clamp: 8–140 s)", min, max),
		"quiet scenes pin the reservoir at the lower clamp; sustained action sequences grow it",
	)
	return fig, nil
}

// Fig16StartupRamp reproduces Figure 16: the startup time series of BBA-1
// (follows the chunk map, ramps slowly) against BBA-2 (ΔB ramp, reaches the
// steady-state rate much sooner) on the same constant-capacity session.
func Fig16StartupRamp() (*Figure, error) {
	// The figure's regime: the network can sustain far more than the
	// title's top rate (a 3 Mb/s-capped ladder, as in the paper's
	// figure), so the steady-state rate is R_max. BBA-1 must climb the
	// whole cushion — the buffer has to grow to 90% of 240 s before the
	// chunk map reaches R_max — while BBA-2's ΔB rule steps up as fast as
	// the downloads prove the capacity. CBR isolates the ramp dynamics:
	// with VBR a run of tiny opening chunks can legitimately carry a high
	// nominal rate through the chunk map, obscuring the buffer-driven
	// climb the figure is about.
	ladder := media.DefaultLadder()[:8] // 235 kb/s … 3 Mb/s
	video, err := media.NewCBR("fig16", ladder, media.DefaultChunkDuration, 450)
	if err != nil {
		return nil, err
	}
	stream := abr.NewStream(video, 0)
	tr := trace.Constant(30*units.Mbps, time.Hour)
	steadyRung := 3000 * units.Kbps

	fig := &Figure{
		ID:     "fig16",
		Title:  "Startup ramp: video rate over the first minutes (fast link, 3 Mb/s title)",
		XLabel: "session time",
		YLabel: "video rate (kb/s)",
	}
	type run struct {
		name string
		alg  abr.Algorithm
	}
	reach := map[string]float64{}
	for _, r := range []run{{"BBA-1", abr.NewBBA1()}, {"BBA-2", abr.NewBBA2()}} {
		res, err := player.Run(player.Config{
			Algorithm:  r.alg,
			Stream:     stream,
			Trace:      tr,
			WatchLimit: 10 * time.Minute,
		})
		if err != nil {
			return nil, err
		}
		s := Series{Name: r.name}
		for _, c := range res.Chunks {
			if c.Start > 6*time.Minute {
				break
			}
			s.Points = append(s.Points, Point{
				X: fmt.Sprintf("%4.0fs", c.Start.Seconds()),
				Y: c.Rate.Kilobits(),
			})
		}
		reach[r.name] = sustainTime(res, steadyRung, 3)
		fig.Series = append(fig.Series, s)
	}
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("time to sustain the steady-state rate (≥%v for 3+ chunks): BBA-2 %s, BBA-1 %s",
			steadyRung, timeOrNever(reach["BBA-2"]), timeOrNever(reach["BBA-1"])),
		"paper: BBA-1 follows the chunk map and ramps slowly; BBA-2 ramps faster and reaches the steady-state rate sooner",
	)
	return fig, nil
}

// sustainTime returns the first time the session held rate ≥ target for at
// least run consecutive chunks, or -1.
func sustainTime(res *player.Result, target units.BitRate, run int) float64 {
	streak := 0
	for _, c := range res.Chunks {
		if c.Rate >= target {
			streak++
			if streak >= run {
				return c.Start.Seconds()
			}
		} else {
			streak = 0
		}
	}
	return -1
}

func timeOrNever(v float64) string {
	if v < 0 {
		return "not within the session"
	}
	return fmt.Sprintf("%.0f s", v)
}

// Fig21ChunkMapCrossings reproduces Figure 21: with a constant buffer level
// (hence a fixed chunk-map value), the chunk-size variation across adjacent
// rates alone flips the selected rate over time.
func Fig21ChunkMapCrossings() (*Figure, error) {
	video, err := referenceVideo(450)
	if err != nil {
		return nil, err
	}
	stream := abr.NewStream(video, 0)
	b := 150 * time.Second // constant mid-cushion buffer
	m := abr.ChunkMap{
		ChunkMin:  stream.Ladder().Min().BytesIn(stream.ChunkDuration()),
		ChunkMax:  stream.Ladder().Max().BytesIn(stream.ChunkDuration()),
		Reservoir: 90 * time.Second,
		Cushion:   126 * time.Second,
	}
	cap := m.MaxChunk(b)

	fig := &Figure{
		ID:     "fig21",
		Title:  "Chunk-map crossings at a constant buffer level",
		XLabel: "chunk index",
		YLabel: "chunk size (MB) / selected ladder index",
	}
	// Plot three adjacent rate curves around the map value plus the
	// decision sequence.
	decisions := Series{Name: "selected idx"}
	curves := make([]Series, 3)
	base := 4 // rates R5..R7 straddle the mid-cushion map value
	for i := range curves {
		curves[i].Name = fmt.Sprintf("size@%v", stream.Ladder()[base+i])
	}
	cur := base + 1
	switches := 0
	for k := 0; k < 120; k++ {
		x := fmt.Sprintf("%3d", k)
		for i := range curves {
			curves[i].Points = append(curves[i].Points, Point{X: x, Y: float64(stream.ChunkSize(base+i, k)) / 1e6})
		}
		next := abr.Algorithm1Chunk(m, stream, cur, k, b)
		if next != cur {
			switches++
			cur = next
		}
		decisions.Points = append(decisions.Points, Point{X: x, Y: float64(cur)})
	}
	fig.Series = append(curves, decisions)
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("%d rate switches over 120 chunks at a constant %.0f s buffer — VBR chunk variation alone flips the chunk map", switches, b.Seconds()),
		fmt.Sprintf("chunk-map value at this buffer: %.2f MB", float64(cap)/1e6),
	)
	return fig, nil
}

// Sec2SessionVariability reproduces the Section 1–2 population statistics:
// the fraction of sessions whose median throughput is below half their 95th
// percentile, and the quartile-ratio distribution.
func Sec2SessionVariability() (*Figure, error) {
	rng := rand.New(rand.NewSource(22))
	var ratios, m95s []float64
	const n = 600
	for i := 0; i < n; i++ {
		u := abtest.DrawUser(abtest.PopulationConfig{}, i%12, 0, rng)
		rates := u.Trace.Rates(time.Second)
		if qr, err := stats.QuartileRatio(rates); err == nil {
			ratios = append(ratios, qr)
		}
		if m, err := stats.MedianTo95Ratio(rates); err == nil {
			m95s = append(m95s, m)
		}
	}
	var below float64
	for _, m := range m95s {
		if m < 0.5 {
			below++
		}
	}
	fracBelow := below / float64(len(m95s))
	fig := &Figure{
		ID:     "sec2",
		Title:  "Population throughput-variability statistics",
		XLabel: "percentile",
		YLabel: "75/25 throughput ratio",
	}
	s := Series{Name: "quartile ratio"}
	for _, p := range []float64{10, 25, 50, 75, 90, 95, 99} {
		v, err := stats.Percentile(ratios, p)
		if err != nil {
			return nil, err
		}
		s.Points = append(s.Points, Point{X: fmt.Sprintf("p%02.0f", p), Y: v})
	}
	fig.Series = []Series{s}
	p90, _ := stats.Percentile(ratios, 90)
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("%.0f%% of sessions have median < ½·p95 throughput (paper §2.2: roughly 10%%, all-day)", 100*fracBelow),
		fmt.Sprintf("90th-percentile quartile ratio = %.1f (paper's Figure 1 session: 5.6, top ~10%%)", p90),
	)
	return fig, nil
}
