package collect

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"

	"bba/internal/campaign"
)

// DefaultDedupWindow bounds per-stream out-of-order admission state.
const DefaultDedupWindow = 4096

// ErrUnknownRun reports a shard or run-end frame for a run the collector
// has not seen a RunStart for. It is retryable: under reordering the
// RunStart may simply not have landed yet, so the collector NACKs and the
// shipper's retry delivers the frame after it has.
var ErrUnknownRun = errors.New("collect: unknown run")

// ErrRunIncomplete reports a run whose report cannot be rendered yet:
// shards are still outstanding. Pollers treat it as "come back later"
// (HTTP 409), distinct from a run the collector never heard of (404).
var ErrRunIncomplete = errors.New("collect: run incomplete")

// ErrArchive reports an event frame NACKed because the archive could not
// persist its batch. It is retryable in protocol terms (the shipper keeps
// the frame and retries), but the failure is sticky: once one write
// fails, the collector refuses every later event frame without attempting
// the write, so the archive stays a clean prefix of the admitted stream
// until an operator restarts the collector with a healthy archive.
var ErrArchive = errors.New("collect: archive unavailable")

// CollectorConfig configures a Collector.
type CollectorConfig struct {
	// DedupWindow bounds each stream's out-of-order admission state
	// (default DefaultDedupWindow). Reliable frames beyond it are NACKed
	// for retry; event frames slide the window instead.
	DedupWindow int
	// Archive, when non-nil, persists every admitted event batch. Batches
	// are telemetry journal JSONL (telemetry.AppendJSONL) in admission
	// order. Persistence gates acknowledgement: a fresh event frame is
	// archived BEFORE its sequence number is spent, and a failed Append
	// NACKs the frame — the collector never acknowledges an event frame it
	// did not persist. The first failure is sticky (see ErrArchive):
	// subsequent event frames are refused outright, /healthz degrades, and
	// bba_collect_archive_errors_total counts the refusals.
	Archive Archiver
}

// CollectorStats is a snapshot of collector activity.
type CollectorStats struct {
	// Frames counts admitted frames by kind name; FramesDup counts
	// duplicate deliveries recognized and discarded — the at-least-once
	// overhead the dedup layer absorbs.
	Frames      map[string]int64
	FramesDup   int64
	FramesBad   int64 // undecodable or invalid: permanently rejected
	FramesRetry int64 // NACKed retryable (window overflow, unknown run)
	Events      int64 // events admitted across all event frames
	Runs        int64 // runs started
	RunsEnded   int64
	Streams     int64 // distinct (run, session) streams seen
	Shards      int64 // shard frames folded into checkpoints
	ShardsDup   int64 // shard frames for already-recorded shards
	// ArchiveErrors counts event frames NACKed because the archive could
	// not persist them: the first failed write plus every sticky refusal
	// after it.
	ArchiveErrors int64
}

// Collector is the server half of the pipeline: it ingests frames from any
// transport, verifies and dedups them, and folds shard aggregates into
// per-run campaign checkpoints. Ingest is safe for concurrent use; all
// state lives behind one mutex, which loopback benchmarks show is nowhere
// near the bottleneck at the target ingest rate.
type Collector struct {
	cfg CollectorConfig

	mu      sync.Mutex
	streams map[streamKey]*stream
	runs    map[string]*runState
	stats   CollectorStats
	// archiveErr is the sticky first archive failure; once set, event
	// frames are NACKed without touching the archive.
	archiveErr error
	subs       map[int]chan TailMsg
	nextSub    int
}

type streamKey struct {
	run     string
	session uint64
}

// runState is one run's aggregation state.
type runState struct {
	id    campaign.Identity
	cp    *campaign.Checkpoint
	ended bool
}

// NewCollector returns a Collector with the config's defaults applied.
func NewCollector(cfg CollectorConfig) *Collector {
	if cfg.DedupWindow <= 0 {
		cfg.DedupWindow = DefaultDedupWindow
	}
	return &Collector{
		cfg:     cfg,
		streams: make(map[streamKey]*stream),
		runs:    make(map[string]*runState),
		stats:   CollectorStats{Frames: make(map[string]int64)},
	}
}

// Ingest processes one encoded frame. A nil return acknowledges the frame
// (including recognized duplicates — re-acknowledging a duplicate is what
// stops retry loops). Errors matching ErrDedupWindow or ErrUnknownRun are
// retryable NACKs; anything else is a permanent rejection.
//
// Validation runs before admission: an admitted (run, session, seq) is
// spent forever, so a frame must be fully applicable before its seq is
// consumed — otherwise a retry of a failed frame would be discarded as a
// duplicate and its payload lost.
func (c *Collector) Ingest(b []byte) error {
	f, _, err := DecodeFrame(b)
	if err != nil {
		c.mu.Lock()
		c.stats.FramesBad++
		c.mu.Unlock()
		return err
	}
	return c.ingestFrame(f)
}

func (c *Collector) ingestFrame(f Frame) error {
	c.mu.Lock()
	defer c.mu.Unlock()

	key := streamKey{run: f.Run, session: f.Session}

	// Validate the payload and stage the state change before admitting.
	var apply func()
	switch f.Kind {
	case PayloadEvents:
		// The archive lane is sticky-failed: refuse before any other work,
		// so the archive stays a clean prefix of the acknowledged stream.
		if c.cfg.Archive != nil && c.archiveErr != nil {
			c.stats.ArchiveErrors++
			c.stats.FramesRetry++
			return fmt.Errorf("%w: %v", ErrArchive, c.archiveErr)
		}
		payload := f.Payload
		// The payload outlives this call (archive, tail subscribers); copy
		// out of the caller's buffer.
		if c.cfg.Archive != nil || len(c.subs) > 0 {
			payload = append([]byte(nil), f.Payload...)
		}
		if c.cfg.Archive != nil {
			// Persist BEFORE the seq is spent: an admitted seq is consumed
			// forever, so archiving after admission turns a failed write
			// into silent loss — the shipper's retry would be discarded as
			// a duplicate. Freshness is checked first so re-deliveries of
			// already-archived frames are re-ACKed without a second write.
			if st, ok := c.streams[key]; !ok || st.freshSlide(f.Seq) {
				if err := c.cfg.Archive.Append(f.Run, payload); err != nil {
					c.archiveErr = err
					c.stats.ArchiveErrors++
					c.stats.FramesRetry++
					return fmt.Errorf("%w: %v", ErrArchive, err)
				}
			}
		}
		apply = func() {
			c.stats.Events += int64(bytes.Count(payload, []byte{'\n'}))
			c.publish(f.Run, payload)
		}
	case PayloadRunStart:
		var id campaign.Identity
		if err := json.Unmarshal(f.Payload, &id); err != nil {
			c.stats.FramesBad++
			return fmt.Errorf("%w: run_start identity: %v", ErrBadFrame, err)
		}
		if id.Shards() == 0 {
			c.stats.FramesBad++
			return fmt.Errorf("%w: run_start identity has no shards", ErrBadFrame)
		}
		run := f.Run
		if r, ok := c.runs[run]; ok {
			ra, _ := json.Marshal(r.id)
			rb, _ := json.Marshal(id)
			if !bytes.Equal(ra, rb) {
				c.stats.FramesBad++
				return fmt.Errorf("%w: run %q restarted with a different identity", ErrBadFrame, run)
			}
			apply = func() {} // idempotent re-announce from another session
		} else {
			apply = func() {
				c.runs[run] = &runState{id: id, cp: campaign.NewCheckpoint(id)}
				c.stats.Runs++
			}
		}
	case PayloadShard:
		r, ok := c.runs[f.Run]
		if !ok {
			c.stats.FramesRetry++
			return fmt.Errorf("%w: %q (shard frame before run_start)", ErrUnknownRun, f.Run)
		}
		var sa campaign.ShardAccums
		if err := json.Unmarshal(f.Payload, &sa); err != nil {
			c.stats.FramesBad++
			return fmt.Errorf("%w: shard payload: %v", ErrBadFrame, err)
		}
		if sa.Shard < 0 || sa.Shard >= r.id.Shards() || len(sa.Groups) != len(r.id.Groups) {
			c.stats.FramesBad++
			return fmt.Errorf("%w: shard %d outside run %q", ErrBadFrame, sa.Shard, f.Run)
		}
		if r.cp.Has(sa.Shard) {
			// Another session already delivered this shard; the frame is
			// valid, its seq must still be spent below.
			apply = func() { c.stats.ShardsDup++ }
		} else {
			apply = func() {
				if err := r.cp.Record(sa.Shard, sa.Groups); err == nil {
					c.stats.Shards++
				} else {
					c.stats.ShardsDup++
				}
			}
		}
	case PayloadRunEnd:
		r, ok := c.runs[f.Run]
		if !ok {
			c.stats.FramesRetry++
			return fmt.Errorf("%w: %q (run_end before run_start)", ErrUnknownRun, f.Run)
		}
		apply = func() {
			if !r.ended {
				r.ended = true
				c.stats.RunsEnded++
			}
		}
	default:
		c.stats.FramesBad++
		return fmt.Errorf("%w: kind %d", ErrBadFrame, f.Kind)
	}

	st, ok := c.streams[key]
	if !ok {
		st = &stream{}
		c.streams[key] = st
		c.stats.Streams++
	}
	if f.Kind.Reliable() {
		fresh, err := st.admit(f.Seq, c.cfg.DedupWindow)
		if err != nil {
			c.stats.FramesRetry++
			return err
		}
		if !fresh {
			c.stats.FramesDup++
			return nil
		}
	} else if !st.admitSlide(f.Seq, c.cfg.DedupWindow) {
		c.stats.FramesDup++
		return nil
	}
	apply()
	c.stats.Frames[f.Kind.String()]++
	return nil
}

// Report renders run's canonical campaign report — the byte-identical
// aggregate a local run of the same identity produces. The error
// distinguishes the caller's situations: ErrUnknownRun for a run never
// announced, ErrRunIncomplete while shards are outstanding, anything else
// a render failure.
func (c *Collector) Report(run string) ([]byte, error) {
	c.mu.Lock()
	r, ok := c.runs[run]
	if !ok {
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrUnknownRun, run)
	}
	if !r.cp.Complete() {
		done, total := r.cp.CompletedShards(), r.id.Shards()
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: %q has %d of %d shards", ErrRunIncomplete, run, done, total)
	}
	rep, err := campaign.FinalReport(r.cp)
	c.mu.Unlock()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Stats returns a snapshot of the collector counters.
func (c *Collector) Stats() CollectorStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Frames = make(map[string]int64, len(c.stats.Frames))
	for k, v := range c.stats.Frames {
		s.Frames[k] = v
	}
	return s
}

// ArchiveError returns the sticky archive failure, nil while healthy.
func (c *Collector) ArchiveError() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.archiveErr
}

// TailMsg is one admitted event batch, as delivered to Subscribe
// channels: the run it belongs to and the journal JSONL payload. The
// payload is shared between subscribers — treat it as read-only.
type TailMsg struct {
	Run     string
	Payload []byte
}

// Subscribe registers a live tail of admitted event batches. Delivery is
// best-effort: a subscriber whose buffer (default 64) is full misses
// batches rather than stalling ingest. cancel unregisters and closes the
// channel; it is safe to call more than once.
func (c *Collector) Subscribe(buf int) (ch <-chan TailMsg, cancel func()) {
	if buf <= 0 {
		buf = 64
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.nextSub
	c.nextSub++
	sub := make(chan TailMsg, buf)
	if c.subs == nil {
		c.subs = make(map[int]chan TailMsg)
	}
	c.subs[id] = sub
	return sub, func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		if s, ok := c.subs[id]; ok {
			delete(c.subs, id)
			close(s)
		}
	}
}

// publish fans an admitted batch out to subscribers. Caller holds mu.
func (c *Collector) publish(run string, payload []byte) {
	for _, sub := range c.subs {
		select {
		case sub <- TailMsg{Run: run, Payload: payload}:
		default: // slow subscriber: drop, never stall ingest
		}
	}
}

// retryable reports whether err is a NACK the shipper should retry.
func retryable(err error) bool {
	return errors.Is(err, ErrDedupWindow) || errors.Is(err, ErrUnknownRun) || errors.Is(err, ErrArchive)
}

// Handler returns the collector's HTTP interface:
//
//	POST /ingest        one frame per request body; 204 acknowledges,
//	                    503 asks for retry, 400 rejects permanently
//	GET  /report/{run}  the finalized campaign report (404 until complete)
//	GET  /metrics       Prometheus text exposition
//	GET  /healthz       liveness JSON
func (c *Collector) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/ingest", c.handleIngest)
	mux.HandleFunc("/report/", c.handleReport)
	mux.HandleFunc("/metrics", c.handleMetrics)
	mux.HandleFunc("/healthz", c.handleHealthz)
	return mux
}

func (c *Collector) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, MaxFrame+1))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if len(body) > MaxFrame {
		http.Error(w, "frame too large", http.StatusBadRequest)
		return
	}
	switch err := c.Ingest(body); {
	case err == nil:
		w.WriteHeader(http.StatusNoContent)
	case retryable(err):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}

func (c *Collector) handleReport(w http.ResponseWriter, r *http.Request) {
	run := strings.TrimPrefix(r.URL.Path, "/report/")
	if run == "" {
		http.Error(w, "missing run id", http.StatusBadRequest)
		return
	}
	body, err := c.Report(run)
	switch {
	case err == nil:
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
	case errors.Is(err, ErrUnknownRun):
		// The collector never heard of the run: the caller's mistake.
		http.Error(w, err.Error(), http.StatusNotFound)
	case errors.Is(err, ErrRunIncomplete):
		// Shards still outstanding: poll again (matches bbacoord's /report).
		http.Error(w, err.Error(), http.StatusConflict)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (c *Collector) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s := c.Stats()
	body := map[string]any{
		"status":  "ok",
		"runs":    s.Runs,
		"streams": s.Streams,
		"events":  s.Events,
	}
	status := http.StatusOK
	if err := c.ArchiveError(); err != nil {
		// A sticky archive failure means the collector is refusing event
		// frames: alive, but not healthy.
		body["status"] = "degraded"
		body["archive_error"] = err.Error()
		status = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

// handleMetrics writes Prometheus text exposition by hand, the same
// stdlib-only approach as telemetry.Prom.
func (c *Collector) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s := c.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b bytes.Buffer
	b.WriteString("# HELP bba_collect_frames_total Frames admitted, by payload kind.\n")
	b.WriteString("# TYPE bba_collect_frames_total counter\n")
	kinds := make([]string, 0, len(s.Frames))
	for k := range s.Frames {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(&b, "bba_collect_frames_total{kind=%q} %d\n", k, s.Frames[k])
	}
	scalar := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	scalar("bba_collect_frames_duplicate_total", "Duplicate frames recognized and discarded.", s.FramesDup)
	scalar("bba_collect_frames_bad_total", "Frames permanently rejected (decode, checksum or payload).", s.FramesBad)
	scalar("bba_collect_frames_retry_total", "Frames NACKed for retry (dedup window, unknown run).", s.FramesRetry)
	scalar("bba_collect_events_total", "Telemetry events admitted.", s.Events)
	scalar("bba_collect_runs_total", "Campaign runs announced.", s.Runs)
	scalar("bba_collect_runs_ended_total", "Campaign runs marked ended.", s.RunsEnded)
	scalar("bba_collect_streams_total", "Distinct (run, session) sender streams seen.", s.Streams)
	scalar("bba_collect_shards_total", "Shard aggregates folded into checkpoints.", s.Shards)
	scalar("bba_collect_shards_duplicate_total", "Shard aggregates already recorded.", s.ShardsDup)
	scalar("bba_collect_archive_errors_total", "Event frames NACKed because the archive could not persist them.", s.ArchiveErrors)
	w.Write(b.Bytes())
}

// ServeUDP ingests datagrams (one frame each) from conn until it is
// closed. Decode or dedup failures are counted, never replied to — UDP is
// the fire-and-forget lane.
func (c *Collector) ServeUDP(conn net.PacketConn) {
	buf := make([]byte, 64<<10)
	for {
		n, _, err := conn.ReadFrom(buf)
		if err != nil {
			return
		}
		c.Ingest(buf[:n])
	}
}
