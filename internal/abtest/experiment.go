package abtest

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"bba/internal/abr"
	"bba/internal/faults"
	"bba/internal/media"
	"bba/internal/metrics"
	"bba/internal/player"
	"bba/internal/stats"
	"bba/internal/telemetry"
)

// Group is one experiment arm: a name and a per-session algorithm factory.
// The factory receives the session's user so estimator-based algorithms can
// be seeded with the user's stored throughput history, as in production.
type Group struct {
	Name string
	New  func(u User) abr.Algorithm
}

// StandardGroups returns the arms used across the paper's three
// experiments: the production Control, the R_min Always lower bound, and
// the four buffer-based algorithms. They come out of the registry via the
// same FactoryGroup path every other arm uses; Control is CapacitySeeded,
// so it (and only it, among these six) is primed with the user's history.
func StandardGroups() []Group {
	gs, err := Groups("Control", "Rmin Always", "BBA-0", "BBA-1", "BBA-2", "BBA-Others")
	if err != nil {
		panic(err) // the built-in names are always registered
	}
	return gs
}

// Config describes one experiment run.
type Config struct {
	// Seed makes the whole experiment deterministic.
	Seed int64
	// Days of simulated viewing (the paper's weekends span 3–4 days).
	Days int
	// SessionsPerWindow is the number of paired sessions per two-hour
	// window per day (each session is streamed once per group).
	SessionsPerWindow int
	// Groups are the experiment arms; empty means StandardGroups.
	Groups []Group
	// Population tunes the synthetic user population.
	Population PopulationConfig
	// CatalogSize is the number of titles (default 24).
	CatalogSize int
	// Ladder is the encoding ladder (default media.DefaultLadder).
	Ladder media.Ladder
	// Parallelism bounds worker goroutines (default GOMAXPROCS).
	Parallelism int
	// Faults, when non-nil, draws a per-session fault schedule from this
	// config (seeded by FaultSeed and the session's calendar coordinates)
	// and runs every group of the paired session under the identical
	// schedule: capacity faults reshape the session's trace, request-path
	// faults drive the player's retry/degradation loop. Nil keeps the
	// clean harness.
	Faults *faults.ScheduleConfig
	// FaultSeed seeds the fault schedules independently of Seed, so the
	// same population can be replayed under different fault weather.
	FaultSeed int64
	// Observer, when non-nil, receives every session's telemetry events.
	// Each worker-owned session records into its own telemetry.Capture
	// (stamped "d<day>.w<window>.s<index>.<group>"), and the merger
	// replays each capture into Observer as soon as it is the next in
	// deterministic (session, group) order — so the merged stream is
	// identical regardless of Parallelism, and captures are released
	// incrementally instead of being held until the run ends. Nil
	// disables capture entirely.
	Observer telemetry.Observer
	// OnSession, when non-nil, switches the run to streaming aggregation:
	// every merged session is handed to the callback in the same
	// deterministic (session, group) order the Observer stream uses, and
	// Outcome.Sessions is left empty — memory stays O(Parallelism) instead
	// of O(sessions). Outcome.Windows is still computed (incrementally).
	// The callback runs on the merger goroutine; it must not block.
	OnSession func(group string, s metrics.Session)
	// RetainSessions forces the raw per-session retention even when
	// OnSession is set — the opt-in for figure-sized runs that need
	// significance tests or bootstrap CIs on top of the stream.
	RetainSessions bool
}

func (c *Config) applyDefaults() {
	if c.Days <= 0 {
		c.Days = 3
	}
	if c.SessionsPerWindow <= 0 {
		c.SessionsPerWindow = 40
	}
	if len(c.Groups) == 0 {
		c.Groups = StandardGroups()
	}
	if c.CatalogSize <= 0 {
		c.CatalogSize = 24
	}
	if c.Ladder == nil {
		c.Ladder = media.DefaultLadder()
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
}

// Outcome is the aggregated result of an experiment.
type Outcome struct {
	// Windows holds each group's per-two-hour-window aggregates.
	Windows map[string][]metrics.Window
	// Sessions holds each group's raw per-session metrics, for
	// significance testing. It is empty when the run streamed sessions to
	// Config.OnSession without Config.RetainSessions.
	Sessions map[string][]metrics.Session
	// Stats describes the run's execution: wall-clock time and simulated
	// session throughput.
	Stats RunStats
}

// RunStats reports how fast the harness executed an experiment.
type RunStats struct {
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
	// Sessions is the number of player sessions simulated (paired jobs ×
	// groups).
	Sessions int
	// Parallelism is the worker count the run used.
	Parallelism int
	// Faults, Retries, Degradations and Failovers total the fault-
	// injection activity across every session (all zero on clean runs).
	Faults       int
	Retries      int
	Degradations int
	Failovers    int
}

// SessionsPerSecond returns the simulated-session throughput.
func (s RunStats) SessionsPerSecond() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Sessions) / s.Elapsed.Seconds()
}

// Run executes the experiment: for every day × window × session draw one
// user (with trace and title) and stream that identical session once per
// group. It is deterministic given cfg.Seed and parallelises across
// sessions.
func Run(cfg Config) (*Outcome, error) { return RunContext(context.Background(), cfg) }

// RunContext is Run with cancellation: the context reaches every worker's
// player.RunContext, so even mid-session work stops promptly when the
// caller cancels, and the run returns the context's error.
//
// The harness is a fixed pool of Parallelism workers pulling jobs from a
// channel, with a single in-order merger that folds each paired session's
// metrics into the outcome — and replays its captured telemetry into
// cfg.Observer — as soon as it is the next in deterministic (job, group)
// order. A bounded merge window keeps workers from running more than
// 2×Parallelism jobs ahead of the merger, so peak memory is O(Parallelism)
// regardless of total job count, while the merged stream stays
// byte-identical across worker counts. A worker error cancels the run
// immediately instead of completing the remaining jobs.
func RunContext(ctx context.Context, cfg Config) (*Outcome, error) {
	cfg.applyDefaults()
	start := time.Now()
	catalog, err := media.NewCatalog(cfg.CatalogSize, cfg.Ladder, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type job struct {
		idx, day, window, i int
	}
	type sessionSet struct {
		idx     int // global session index for deterministic assembly
		metrics []metrics.Session
		events  [][]telemetry.Event // per group, when cfg.Observer != nil
		err     error
	}

	total := cfg.Days * metrics.WindowsPerDay * cfg.SessionsPerWindow
	// The merge window: the producer acquires a token per job and the
	// merger releases it once that job is folded in, bounding how far
	// completed-but-unmerged results can accumulate.
	window := 2 * cfg.Parallelism
	tokens := make(chan struct{}, window)
	jobs := make(chan job)
	results := make(chan sessionSet, window)

	go func() { // producer
		defer close(jobs)
		idx := 0
		for day := 0; day < cfg.Days; day++ {
			for w := 0; w < metrics.WindowsPerDay; w++ {
				for i := 0; i < cfg.SessionsPerWindow; i++ {
					select {
					case tokens <- struct{}{}:
					case <-ctx.Done():
						return
					}
					select {
					case jobs <- job{idx, day, w, i}:
					case <-ctx.Done():
						return
					}
					idx++
				}
			}
		}
	}()

	var wg sync.WaitGroup
	for n := 0; n < cfg.Parallelism; n++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				ms, evs, err := runPairedSession(ctx, cfg, catalog, j.day, j.window, j.i)
				select {
				case results <- sessionSet{idx: j.idx, metrics: ms, events: evs, err: err}:
				case <-ctx.Done():
					return
				}
				if err != nil {
					// Fail fast: stop the producer and the other workers
					// rather than finishing the remaining jobs.
					cancel()
					return
				}
			}
		}()
	}
	go func() { wg.Wait(); close(results) }()

	out := &Outcome{
		Windows:  make(map[string][]metrics.Window, len(cfg.Groups)),
		Sessions: make(map[string][]metrics.Session, len(cfg.Groups)),
	}
	// Streaming aggregation: with an OnSession sink (and no retention
	// opt-in) raw sessions are handed off instead of accumulated, and the
	// window aggregates build incrementally — identical float operations in
	// identical order to the batch Aggregate, so Windows is bit-identical
	// either way.
	retain := cfg.OnSession == nil || cfg.RetainSessions
	winAccums := make([]*metrics.WindowAccum, len(cfg.Groups))
	for gi, g := range cfg.Groups {
		if retain {
			out.Sessions[g.Name] = make([]metrics.Session, 0, total)
		} else {
			out.Sessions[g.Name] = nil
		}
		winAccums[gi] = metrics.NewWindowAccum()
	}

	// In-order streaming merge. Out-of-order arrivals park in pending
	// (bounded by the merge window) until the next expected job lands.
	pending := make(map[int]sessionSet, window)
	next := 0
	var firstErr error
	for r := range results {
		if r.err != nil && firstErr == nil {
			firstErr = r.err
			cancel()
		}
		pending[r.idx] = r
		for {
			rs, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			<-tokens
			if rs.err != nil {
				continue
			}
			for gi, g := range cfg.Groups {
				s := rs.metrics[gi]
				if retain {
					out.Sessions[g.Name] = append(out.Sessions[g.Name], s)
				}
				if err := winAccums[gi].Add(s); err != nil && firstErr == nil {
					firstErr = err
					cancel()
				}
				if cfg.OnSession != nil {
					cfg.OnSession(g.Name, s)
				}
				out.Stats.Faults += s.Faults
				out.Stats.Retries += s.Retries
				out.Stats.Degradations += s.Degradations
				out.Stats.Failovers += s.Failovers
			}
			// Replay captured telemetry in job order, group order: the
			// merged stream is byte-for-byte independent of worker
			// scheduling.
			for _, groupEvents := range rs.events {
				for _, e := range groupEvents {
					cfg.Observer.OnEvent(e)
				}
			}
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for gi, g := range cfg.Groups {
		out.Windows[g.Name] = winAccums[gi].Windows()
	}
	out.Stats.Elapsed = time.Since(start)
	out.Stats.Sessions = total * len(cfg.Groups)
	out.Stats.Parallelism = cfg.Parallelism
	return out, nil
}

// runPairedSession draws one user and streams the identical session once
// per group, returning one metrics.Session per group in group order, plus
// per-group captured telemetry when the experiment carries an observer.
func runPairedSession(ctx context.Context, cfg Config, catalog *media.Catalog, day, window, i int) ([]metrics.Session, [][]telemetry.Event, error) {
	rng := sessionRNG(cfg.Seed, day, window, i)
	u := DrawUser(cfg.Population, window, day, rng)
	var fseed int64
	if cfg.Faults != nil {
		fseed = sessionFaultSeed(cfg.FaultSeed, day, window, i)
	}
	var captures []*telemetry.Capture
	var observer func(gi int) telemetry.Observer
	if cfg.Observer != nil {
		captures = make([]*telemetry.Capture, len(cfg.Groups))
		observer = func(gi int) telemetry.Observer {
			captures[gi] = &telemetry.Capture{Session: fmt.Sprintf("d%d.w%02d.s%03d.%s", day, window, i, cfg.Groups[gi].Name)}
			return captures[gi]
		}
	}
	ms, err := PlayUser(ctx, u, u.Pick(catalog), cfg.Groups, cfg.Faults, fseed, observer)
	if err != nil {
		return nil, nil, fmt.Errorf("abtest: day %d window %d session %d %w", day, window, i, err)
	}
	var evs [][]telemetry.Event
	if captures != nil {
		evs = make([][]telemetry.Event, len(captures))
		for gi, rec := range captures {
			evs[gi] = rec.Events
		}
	}
	return ms, evs, nil
}

// PlayUser streams the drawn user u's identical session once per group —
// the paired common-random-numbers design at the heart of the harness —
// returning one metrics.Session per group in group order. When fcfg is
// non-nil every group runs under the identical fault schedule drawn from
// (fcfg, fseed): capacity faults reshape the shared trace, request-path
// faults drive the player's retry/degradation loop. observer, when non-nil,
// supplies each group's telemetry observer by group index (it may return
// nil for groups that need none). The campaign layer drives this same
// paired core shard by shard.
func PlayUser(ctx context.Context, u User, video *media.Video, groups []Group, fcfg *faults.ScheduleConfig, fseed int64, observer func(gi int) telemetry.Observer) ([]metrics.Session, error) {
	// Under fault weather every group runs the identical schedule against
	// the identical reshaped trace — the paired design extends to faults.
	env, err := NewSessionEnv(u, video, fcfg, fseed)
	if err != nil {
		return nil, err
	}

	ms := make([]metrics.Session, len(groups))
	for gi, g := range groups {
		pc := env.PlayerConfig(g)
		if observer != nil {
			pc.Observer = observer(gi)
		}
		res, err := player.RunContext(ctx, pc)
		if err != nil {
			return nil, fmt.Errorf("group %s: %w", g.Name, err)
		}
		ms[gi] = metrics.FromResult(res, u.Window, u.Day)
	}
	return ms, nil
}

// WriteCSV emits every group's per-window aggregates as CSV, one row per
// (group, window), for external plotting:
//
//	group,window,sessions,playhours,rebuffers_per_playhour,avg_rate_kbps,
//	steady_rate_kbps,switches_per_playhour,rebuffer_stddev_across_days,
//	qoe_per_playhour
func (o *Outcome) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "group,window,sessions,playhours,rebuffers_per_playhour,avg_rate_kbps,steady_rate_kbps,switches_per_playhour,rebuffer_stddev_across_days,qoe_per_playhour"); err != nil {
		return err
	}
	groups := make([]string, 0, len(o.Windows))
	for g := range o.Windows {
		groups = append(groups, g)
	}
	sort.Strings(groups)
	for _, g := range groups {
		for _, win := range o.Windows[g] {
			if _, err := fmt.Fprintf(bw, "%s,%d,%d,%.3f,%.4f,%.1f,%.1f,%.2f,%.4f,%.1f\n",
				g, win.Index, win.Sessions, win.PlayHours,
				win.RebuffersPerPlayhour, win.AvgRateKbps, win.SteadyRateKbps,
				win.SwitchesPerPlayhour, win.RebufferRateStdDev, win.QoEPerPlayhour); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// RebufferSamples returns a group's per-session rebuffers-per-playhour
// samples, optionally restricted to a window set (nil = all windows).
func (o *Outcome) RebufferSamples(group string, windows map[int]bool) []float64 {
	var xs []float64
	for _, s := range o.Sessions[group] {
		if windows != nil && !windows[s.Window] {
			continue
		}
		if s.PlayHours > 0 {
			xs = append(xs, float64(s.Rebuffers)/s.PlayHours)
		}
	}
	return xs
}

// SignificanceRebuffers runs a Welch t-test on per-session rebuffer rates
// of two groups restricted to a window set — the test behind the paper's
// footnotes 4 and 5 ("the hypothesis ... is not rejected at the 95%
// confidence level").
func (o *Outcome) SignificanceRebuffers(groupA, groupB string, windows map[int]bool) (stats.TTestResult, error) {
	collect := func(name string) []float64 {
		var xs []float64
		for _, s := range o.Sessions[name] {
			if windows != nil && !windows[s.Window] {
				continue
			}
			if s.PlayHours > 0 {
				xs = append(xs, float64(s.Rebuffers)/s.PlayHours)
			}
		}
		return xs
	}
	return stats.WelchTTest(collect(groupA), collect(groupB))
}
