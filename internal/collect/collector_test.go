package collect

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bba/internal/campaign"
	"bba/internal/telemetry"
)

// eventsPayload renders n telemetry events as a journal JSONL batch.
func eventsPayload(n int) []byte {
	var b []byte
	for i := 0; i < n; i++ {
		b = telemetry.AppendJSONL(b, telemetry.Event{
			Kind: telemetry.BufferSample, Session: "s", Chunk: i,
			RateIndex: -1, PrevRateIndex: -1, Buffer: 3 * time.Second,
		})
	}
	return b
}

func TestCollectorIngestEvents(t *testing.T) {
	var archive bytes.Buffer
	c := NewCollector(CollectorConfig{Archive: &archive})
	f1 := AppendFrame(nil, Frame{Run: "r", Session: 1, Seq: 0, Kind: PayloadEvents, Payload: eventsPayload(3)})
	f2 := AppendFrame(nil, Frame{Run: "r", Session: 1, Seq: 1, Kind: PayloadEvents, Payload: eventsPayload(2)})
	for _, f := range [][]byte{f1, f2, f1, f2, f1} {
		if err := c.Ingest(f); err != nil {
			t.Fatalf("ingest: %v", err)
		}
	}
	s := c.Stats()
	if s.Events != 5 || s.Frames["events"] != 2 || s.FramesDup != 3 {
		t.Fatalf("stats %+v: duplicates must not double-count", s)
	}
	// The archive holds each admitted batch exactly once, and is valid
	// journal JSONL.
	want := append(eventsPayload(3), eventsPayload(2)...)
	if !bytes.Equal(archive.Bytes(), want) {
		t.Fatalf("archive:\n%q\nwant:\n%q", archive.Bytes(), want)
	}
}

func TestCollectorIngestBad(t *testing.T) {
	c := NewCollector(CollectorConfig{})
	if err := c.Ingest([]byte("not a frame at all")); err == nil {
		t.Fatalf("garbage ingested")
	}
	bad := AppendFrame(nil, Frame{Run: "r", Session: 1, Seq: 0, Kind: PayloadRunStart, Payload: []byte("{not json")})
	if err := c.Ingest(bad); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("bad run_start payload: %v", err)
	}
	unk := AppendFrame(nil, Frame{Run: "r", Session: 1, Seq: 0, Kind: PayloadKind(77), Payload: nil})
	if err := c.Ingest(unk); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("unknown kind: %v", err)
	}
	if s := c.Stats(); s.FramesBad != 3 {
		t.Fatalf("stats %+v", s)
	}
}

// runLocalCampaign runs cfg locally, capturing the shipped artifacts: the
// identity payload, each shard's JSON, and the canonical report bytes.
func runLocalCampaign(t *testing.T, cfg campaign.Config) (idJSON []byte, shardJSON map[int][]byte, report []byte) {
	t.Helper()
	shardJSON = make(map[int][]byte)
	cfg.OnShard = func(shard int, accums []*campaign.GroupAccum) error {
		p, err := json.Marshal(campaign.ShardAccums{Shard: shard, Groups: accums})
		if err != nil {
			return err
		}
		shardJSON[shard] = p
		return nil
	}
	out, err := campaign.Run(cfg)
	if err != nil {
		t.Fatalf("local campaign: %v", err)
	}
	if out.Report == nil {
		t.Fatalf("local campaign produced no report")
	}
	var buf bytes.Buffer
	if err := out.Report.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	idJSON, err = json.Marshal(cfg.Identity())
	if err != nil {
		t.Fatal(err)
	}
	return idJSON, shardJSON, buf.Bytes()
}

func testCampaignConfig() campaign.Config {
	return campaign.Config{
		Name: "collect-test", Seed: 11, Sessions: 24, ShardSize: 8,
		Parallelism: 2, SketchSize: 64, CatalogSize: 6,
	}
}

func TestCollectorExactlyOnceAggregation(t *testing.T) {
	idJSON, shards, localReport := runLocalCampaign(t, testCampaignConfig())
	if len(shards) != 3 {
		t.Fatalf("campaign produced %d shards, want 3", len(shards))
	}

	c := NewCollector(CollectorConfig{})
	frame := func(seq uint64, kind PayloadKind, payload []byte) []byte {
		return AppendFrame(nil, Frame{Run: "run-11", Session: 1, Seq: seq, Kind: kind, Payload: payload})
	}
	start := frame(0, PayloadRunStart, idJSON)
	sh1 := frame(1, PayloadShard, shards[0])
	sh2 := frame(2, PayloadShard, shards[1])
	sh3 := frame(3, PayloadShard, shards[2])
	end := frame(4, PayloadRunEnd, nil)

	// A shard arriving before its run_start is a retryable NACK, not a loss.
	if err := c.Ingest(sh2); !errors.Is(err, ErrUnknownRun) {
		t.Fatalf("shard before run_start: %v", err)
	}
	// Delivery is then reordered and duplicated: every frame twice, shards
	// in reverse. The aggregate must not care.
	for _, f := range [][]byte{start, sh3, sh3, sh2, start, sh1, end, sh2, sh1, end} {
		if err := c.Ingest(f); err != nil {
			t.Fatalf("ingest: %v", err)
		}
	}

	remote, err := c.Report("run-11")
	if err != nil {
		t.Fatalf("report: %v", err)
	}
	if !bytes.Equal(remote, localReport) {
		t.Fatalf("remote report differs from local:\nremote: %s\nlocal:  %s", remote, localReport)
	}
	s := c.Stats()
	if s.Shards != 3 || s.ShardsDup != 0 || s.FramesDup != 5 || s.Runs != 1 || s.RunsEnded != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestCollectorCrossSessionShardDup(t *testing.T) {
	idJSON, shards, _ := runLocalCampaign(t, testCampaignConfig())
	c := NewCollector(CollectorConfig{})
	// Two sessions ship overlapping shards (a re-run after a lost process):
	// the second delivery of a shard is recognized and discarded even
	// though its (session, seq) key is fresh.
	mk := func(session, seq uint64, kind PayloadKind, payload []byte) []byte {
		return AppendFrame(nil, Frame{Run: "r", Session: session, Seq: seq, Kind: kind, Payload: payload})
	}
	for _, f := range [][]byte{
		mk(1, 0, PayloadRunStart, idJSON),
		mk(1, 1, PayloadShard, shards[0]),
		mk(2, 0, PayloadRunStart, idJSON),
		mk(2, 1, PayloadShard, shards[0]), // same shard, different session
		mk(2, 2, PayloadShard, shards[1]),
		mk(1, 2, PayloadShard, shards[2]),
		mk(1, 3, PayloadRunEnd, nil),
	} {
		if err := c.Ingest(f); err != nil {
			t.Fatalf("ingest: %v", err)
		}
	}
	if s := c.Stats(); s.Shards != 3 || s.ShardsDup != 1 || s.Streams != 2 {
		t.Fatalf("stats %+v", s)
	}
	if _, err := c.Report("r"); err != nil {
		t.Fatalf("report: %v", err)
	}
}

func TestCollectorRunRestartIdentityMismatch(t *testing.T) {
	c := NewCollector(CollectorConfig{})
	id1, _ := json.Marshal(campaign.Identity{Seed: 1, Sessions: 8, ShardSize: 8, Days: 1, CatalogSize: 1, SketchSize: 8, Groups: []string{"a"}})
	id2, _ := json.Marshal(campaign.Identity{Seed: 2, Sessions: 8, ShardSize: 8, Days: 1, CatalogSize: 1, SketchSize: 8, Groups: []string{"a"}})
	if err := c.Ingest(AppendFrame(nil, Frame{Run: "r", Session: 1, Seq: 0, Kind: PayloadRunStart, Payload: id1})); err != nil {
		t.Fatal(err)
	}
	err := c.Ingest(AppendFrame(nil, Frame{Run: "r", Session: 2, Seq: 0, Kind: PayloadRunStart, Payload: id2}))
	if !errors.Is(err, ErrBadFrame) {
		t.Fatalf("conflicting identity accepted: %v", err)
	}
}

func TestCollectorHandler(t *testing.T) {
	idJSON, shards, localReport := runLocalCampaign(t, testCampaignConfig())
	c := NewCollector(CollectorConfig{})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	post := func(body []byte) int {
		t.Helper()
		resp, err := http.Post(srv.URL+"/ingest", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post([]byte("garbage")); code != http.StatusBadRequest {
		t.Fatalf("garbage: %d", code)
	}
	orphan := AppendFrame(nil, Frame{Run: "h", Session: 1, Seq: 1, Kind: PayloadShard, Payload: shards[0]})
	if code := post(orphan); code != http.StatusServiceUnavailable {
		t.Fatalf("orphan shard must be retryable: %d", code)
	}
	if resp, err := http.Get(srv.URL + "/report/h"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("report before run: %v %v", err, resp.Status)
	}

	frames := [][]byte{
		AppendFrame(nil, Frame{Run: "h", Session: 1, Seq: 0, Kind: PayloadRunStart, Payload: idJSON}),
		orphan,
		AppendFrame(nil, Frame{Run: "h", Session: 1, Seq: 2, Kind: PayloadShard, Payload: shards[1]}),
		AppendFrame(nil, Frame{Run: "h", Session: 1, Seq: 3, Kind: PayloadShard, Payload: shards[2]}),
		AppendFrame(nil, Frame{Run: "h", Session: 1, Seq: 4, Kind: PayloadRunEnd, Payload: nil}),
	}
	for i, f := range frames {
		if code := post(f); code != http.StatusNoContent {
			t.Fatalf("frame %d: %d", i, code)
		}
	}

	resp, err := http.Get(srv.URL + "/report/h")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("report: %v %v", err, resp.Status)
	}
	var got bytes.Buffer
	got.ReadFrom(resp.Body)
	resp.Body.Close()
	if !bytes.Equal(got.Bytes(), localReport) {
		t.Fatalf("remote report differs from local")
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil || mresp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %v", err)
	}
	var metrics bytes.Buffer
	metrics.ReadFrom(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		`bba_collect_frames_total{kind="shard"} 3`,
		"bba_collect_shards_total 3",
		"bba_collect_runs_ended_total 1",
	} {
		if !strings.Contains(metrics.String(), want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics.String())
		}
	}

	hresp, err := http.Get(srv.URL + "/healthz")
	if err != nil || hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v", err)
	}
	hresp.Body.Close()
}
