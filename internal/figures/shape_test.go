package figures

// The shape suite locks in the paper's qualitative claims against the
// cached Quick-scale experiment. If a change to the algorithms, the
// population model or the player moves a headline relationship out of
// band, one of these tests fails — the reproduction's calibration is a
// tested artifact, not a hope.

import (
	"strings"
	"testing"

	"bba/internal/metrics"
)

func quickOutcome(t *testing.T) map[string][]metrics.Window {
	t.Helper()
	out, err := ExperimentOutcome(Quick)
	if err != nil {
		t.Fatal(err)
	}
	return out.Windows
}

func peakRebuf(ws []metrics.Window) float64 {
	return peakAvg(ws, func(w metrics.Window) float64 { return w.RebuffersPerPlayhour })
}

func peakRate(ws []metrics.Window) float64 {
	return peakAvg(ws, func(w metrics.Window) float64 { return w.AvgRateKbps })
}

func peakSwitch(ws []metrics.Window) float64 {
	return peakAvg(ws, func(w metrics.Window) float64 { return w.SwitchesPerPlayhour })
}

// Figure 7: bound < BBA-0 < Control at peak, with BBA-0's reduction in a
// plausible band around the paper's 10–30%.
func TestShapeFig07(t *testing.T) {
	if testing.Short() {
		t.Skip("weekend experiment")
	}
	w := quickOutcome(t)
	bound, bba0, ctl := peakRebuf(w["Rmin Always"]), peakRebuf(w["BBA-0"]), peakRebuf(w["Control"])
	if !(bound < bba0 && bba0 < ctl) {
		t.Fatalf("ordering broken: bound %.3f, BBA-0 %.3f, Control %.3f", bound, bba0, ctl)
	}
	reduction := 1 - bba0/ctl
	if reduction < 0.05 || reduction > 0.65 {
		t.Errorf("BBA-0 peak reduction %.0f%%, want within the calibrated 5–65%% band (paper: 10–30%%)", 100*reduction)
	}
}

// Figure 8: Control delivers more average rate than BBA-0 at peak and
// off-peak (the fixed reservoir + slow startup cost).
func TestShapeFig08(t *testing.T) {
	if testing.Short() {
		t.Skip("weekend experiment")
	}
	w := quickOutcome(t)
	if d := peakRate(w["Control"]) - peakRate(w["BBA-0"]); d <= 0 {
		t.Errorf("Control − BBA-0 at peak = %.0f kb/s, want positive (paper: ≈100)", d)
	}
	off := offPeakAvg(w["Control"], func(x metrics.Window) float64 { return x.AvgRateKbps }) -
		offPeakAvg(w["BBA-0"], func(x metrics.Window) float64 { return x.AvgRateKbps })
	if off <= 0 {
		t.Errorf("Control − BBA-0 off-peak = %.0f kb/s, want positive (paper: ≈175)", off)
	}
}

// Figure 9: BBA-0 switches far less than Control.
func TestShapeFig09(t *testing.T) {
	if testing.Short() {
		t.Skip("weekend experiment")
	}
	w := quickOutcome(t)
	ratio := peakSwitch(w["BBA-0"]) / peakSwitch(w["Control"])
	if ratio > 0.6 {
		t.Errorf("BBA-0/Control switch ratio %.2f, want ≤0.6 (paper: ≈0.4)", ratio)
	}
}

// Figure 14: BBA-1 beats BBA-0 and sits between the bound and Control.
func TestShapeFig14(t *testing.T) {
	if testing.Short() {
		t.Skip("weekend experiment")
	}
	w := quickOutcome(t)
	bound, bba1, bba0, ctl := peakRebuf(w["Rmin Always"]), peakRebuf(w["BBA-1"]), peakRebuf(w["BBA-0"]), peakRebuf(w["Control"])
	if bba1 >= ctl {
		t.Errorf("BBA-1 %.3f not below Control %.3f", bba1, ctl)
	}
	if bba1 < bound*0.7 {
		t.Errorf("BBA-1 %.3f implausibly below the bound %.3f", bba1, bound)
	}
	// The paper: BBA-1 performs better than BBA-0. Allow parity noise.
	if bba1 > bba0*1.25 {
		t.Errorf("BBA-1 %.3f well above BBA-0 %.3f; Figure 14 ordering lost", bba1, bba0)
	}
}

// Figures 15/17: BBA-2 gains rate over BBA-1 (the startup ramp), and both
// stay within a few hundred kb/s of Control.
func TestShapeFig15And17(t *testing.T) {
	if testing.Short() {
		t.Skip("weekend experiment")
	}
	w := quickOutcome(t)
	bba1, bba2, ctl := peakRate(w["BBA-1"]), peakRate(w["BBA-2"]), peakRate(w["Control"])
	if bba2 <= bba1 {
		t.Errorf("BBA-2 rate %.0f not above BBA-1 %.0f (the startup ramp must pay)", bba2, bba1)
	}
	// Known deviation band: |BBA-2 − Control| within 300 kb/s.
	if d := bba2 - ctl; d < -300 || d > 300 {
		t.Errorf("BBA-2 − Control = %.0f kb/s, want within ±300 (paper: ≈0)", d)
	}
}

// Figure 18: BBA-2's steady-state rate beats Control's.
func TestShapeFig18(t *testing.T) {
	if testing.Short() {
		t.Skip("weekend experiment")
	}
	w := quickOutcome(t)
	steady := func(ws []metrics.Window) float64 {
		return peakAvg(ws, func(x metrics.Window) float64 { return x.SteadyRateKbps })
	}
	if d := steady(w["BBA-2"]) - steady(w["Control"]); d <= 0 {
		t.Errorf("BBA-2 − Control steady-state = %.0f kb/s, want positive", d)
	}
}

// Figure 19: BBA-2 rebuffers a little more than BBA-1 (risky startup) but
// still beats Control.
func TestShapeFig19(t *testing.T) {
	if testing.Short() {
		t.Skip("weekend experiment")
	}
	w := quickOutcome(t)
	bba1, bba2, ctl := peakRebuf(w["BBA-1"]), peakRebuf(w["BBA-2"]), peakRebuf(w["Control"])
	if bba2 >= ctl {
		t.Errorf("BBA-2 %.3f not below Control %.3f", bba2, ctl)
	}
	if bba2 < bba1*0.8 {
		t.Errorf("BBA-2 %.3f well below BBA-1 %.3f; the risky startup should cost a little", bba2, bba1)
	}
}

// Figures 20/22: the chunk map raises BBA-1/BBA-2 switching above Control;
// BBA-Others brings it back to Control's neighbourhood.
func TestShapeFig20And22(t *testing.T) {
	if testing.Short() {
		t.Skip("weekend experiment")
	}
	w := quickOutcome(t)
	ctl := peakSwitch(w["Control"])
	if r := peakSwitch(w["BBA-1"]) / ctl; r <= 1.0 {
		t.Errorf("BBA-1/Control switch ratio %.2f, want > 1", r)
	}
	if r := peakSwitch(w["BBA-Others"]) / ctl; r < 0.5 || r > 1.3 {
		t.Errorf("BBA-Others/Control switch ratio %.2f, want ≈1 (0.5–1.3)", r)
	}
	if peakSwitch(w["BBA-Others"]) >= peakSwitch(w["BBA-1"]) {
		t.Error("smoothing did not reduce switching below BBA-1")
	}
}

// Figure 24: BBA-Others improves the rebuffer rate against Control.
func TestShapeFig24(t *testing.T) {
	if testing.Short() {
		t.Skip("weekend experiment")
	}
	w := quickOutcome(t)
	if peakRebuf(w["BBA-Others"]) >= peakRebuf(w["Control"]) {
		t.Error("BBA-Others not below Control at peak")
	}
}

// Off-peak, the buffer-based algorithms sit statistically at the bound
// (paper footnotes 4–5).
func TestShapeOffPeakAtTheBound(t *testing.T) {
	if testing.Short() {
		t.Skip("weekend experiment")
	}
	out, err := ExperimentOutcome(Quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []string{"BBA-0", "BBA-1"} {
		res, err := out.SignificanceRebuffers(g, "Rmin Always", metrics.OffPeakWindows())
		if err != nil {
			t.Fatal(err)
		}
		if res.P < 0.05 {
			t.Errorf("%s vs bound off-peak: p = %.3f — distinguishable, but the paper finds parity", g, res.P)
		}
	}
}

// The Figure 16 ramp metric: BBA-2 sustains the steady rate sooner.
func TestShapeFig16(t *testing.T) {
	fig, err := Fig16StartupRamp()
	if err != nil {
		t.Fatal(err)
	}
	// The computed note carries both times; parse-free check: the figure
	// must state BBA-2's time and it must appear before BBA-1's larger
	// one in the series data instead. Compare series directly: the first
	// chunk index where each series reaches 3000.
	reach := map[string]int{}
	for _, s := range fig.Series {
		for i, p := range s.Points {
			if p.Y >= 3000 {
				reach[s.Name] = i
				break
			}
		}
	}
	if reach["BBA-2"] >= reach["BBA-1"] {
		t.Errorf("BBA-2 reached the steady rate at point %d, BBA-1 at %d; want sooner", reach["BBA-2"], reach["BBA-1"])
	}
	if len(fig.Notes) == 0 || !strings.Contains(fig.Notes[0], "BBA-2") {
		t.Error("ramp note missing")
	}
}
