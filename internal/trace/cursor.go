package trace

import (
	"time"

	"bba/internal/units"
)

// Cursor is a stateful sequential reader over a Trace. It remembers the
// segment the previous query landed in, so a caller whose query times are
// monotonically non-decreasing — the playback engine's session clock —
// advances in amortized O(1) per query instead of paying the stateless
// API's O(log n) binary search on every chunk.
//
// Results are bit-identical to the stateless Trace methods: both run the
// same integration cores, and the cursor only changes how the starting
// segment is found. Queries that jump backwards are legal and correct;
// they fall back to the binary search.
//
// A Cursor is not safe for concurrent use; sessions each hold their own.
type Cursor struct {
	t   *Trace
	idx int // segment the last query finished in
}

// Cursor returns a new sequential reader positioned at the start of t.
func (t *Trace) Cursor() *Cursor { return &Cursor{t: t} }

// Bind points the cursor at the start of t, reusing the cursor's storage.
// It is the allocation-free form of Trace.Cursor for callers — the batch
// session kernel — that keep cursors in flat per-lane arrays and rebind
// them to a new session's trace instead of allocating one per session.
func (c *Cursor) Bind(t *Trace) { c.t, c.idx = t, 0 }

// seek positions idx at the segment containing at. Forward motion walks
// segment by segment (amortized O(1) for monotone queries); a backward
// jump — a seek before the current segment — rebinds with binary search.
func (c *Cursor) seek(at time.Duration) int {
	t := c.t
	if at < 0 {
		c.idx = 0
		return 0
	}
	if at < t.starts[c.idx] {
		c.idx = t.index(at)
		return c.idx
	}
	for c.idx+1 < len(t.starts) && t.starts[c.idx+1] <= at {
		c.idx++
	}
	return c.idx
}

// RateAt returns the capacity at time at, like Trace.RateAt.
func (c *Cursor) RateAt(at time.Duration) units.BitRate {
	return c.t.segments[c.seek(at)].Rate
}

// BytesBetween integrates capacity over [from, to], like
// Trace.BytesBetween.
func (c *Cursor) BytesBetween(from, to time.Duration) int64 {
	if to <= from {
		return 0
	}
	if from < 0 {
		from = 0
	}
	n, i := c.t.bytesBetweenFrom(c.seek(from), from, to)
	c.idx = i
	return n
}

// DownloadTime returns how long a transfer of n bytes starting at start
// takes, like Trace.DownloadTime. The cursor advances to the segment the
// transfer completes in, so the engine's next request — issued at or after
// the completion time — resumes without searching.
func (c *Cursor) DownloadTime(start time.Duration, n int64) (time.Duration, bool) {
	if n <= 0 {
		return 0, true
	}
	if start < 0 {
		start = 0
	}
	d, i, ok := c.t.downloadTimeFrom(c.seek(start), start, n)
	if ok {
		c.idx = i
	}
	return d, ok
}
