// A/B experiment: run a reduced version of the paper's weekend deployment —
// six algorithm groups over a paired synthetic population — and print the
// peak-hour comparison behind Figures 7, 17 and 24.
//
//	go run ./examples/abtest
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"bba"
	"bba/internal/metrics"
)

func main() {
	// One simulated day, 30 paired sessions per two-hour window per
	// group: a couple of seconds of compute.
	outcome, err := bba.Experiment(42, 1, 30)
	if err != nil {
		log.Fatal(err)
	}

	peak := func(ws []metrics.Window, f func(metrics.Window) float64) float64 {
		var sum, hours float64
		for _, w := range ws {
			if !metrics.PeakWindows()[w.Index] {
				continue
			}
			sum += f(w) * w.PlayHours
			hours += w.PlayHours
		}
		if hours == 0 {
			return 0
		}
		return sum / hours
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "group\trebuf/h (peak)\tavg rate kb/s\tsteady kb/s\tswitches/h")
	for _, g := range []string{"Control", "Rmin Always", "BBA-0", "BBA-1", "BBA-2", "BBA-Others"} {
		ws := outcome.Windows[g]
		fmt.Fprintf(w, "%s\t%.3f\t%.0f\t%.0f\t%.1f\n", g,
			peak(ws, func(x metrics.Window) float64 { return x.RebuffersPerPlayhour }),
			peak(ws, func(x metrics.Window) float64 { return x.AvgRateKbps }),
			peak(ws, func(x metrics.Window) float64 { return x.SteadyRateKbps }),
			peak(ws, func(x metrics.Window) float64 { return x.SwitchesPerPlayhour }),
		)
	}
	w.Flush()

	// The paper's footnote-style significance check: off-peak, is BBA-1
	// distinguishable from the Rmin Always lower bound?
	res, err := outcome.SignificanceRebuffers("BBA-1", "Rmin Always", metrics.OffPeakWindows())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nBBA-1 vs Rmin Always off-peak: p = %.2f ", res.P)
	if res.P >= 0.05 {
		fmt.Println("(same-distribution hypothesis not rejected — as in the paper)")
	} else {
		fmt.Println("(distinguishable at 95%)")
	}
}
