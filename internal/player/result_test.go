package player

import (
	"testing"
	"time"

	"bba/internal/units"
)

// TestRateHelpersEmptySession pins the degenerate-session contract: a
// result with no chunks and no play time reports zero for every rate
// helper instead of NaN or a panic.
func TestRateHelpersEmptySession(t *testing.T) {
	r := &Result{}
	for name, got := range map[string]float64{
		"AvgRateKbps":          r.AvgRateKbps(),
		"SteadyAvgRateKbps":    r.SteadyAvgRateKbps(),
		"StartupAvgRateKbps":   r.StartupAvgRateKbps(),
		"RebuffersPerPlayhour": r.RebuffersPerPlayhour(),
		"SwitchesPerPlayhour":  r.SwitchesPerPlayhour(),
		"PlayHours":            r.PlayHours(),
	} {
		if got != 0 {
			t.Errorf("%s = %v on empty session, want 0", name, got)
		}
	}
}

// TestRateHelpersStartupOnly pins the window boundaries: a session whose
// chunks all land inside the first minute has a startup rate and an
// average rate but no steady-state rate (the paper's 2-minute cutoff was
// never reached).
func TestRateHelpersStartupOnly(t *testing.T) {
	r := &Result{
		Played: 45 * time.Second,
		Chunks: []ChunkRecord{
			{Index: 0, Start: 0, Rate: 1000 * units.Kbps},
			{Index: 1, Start: 20 * time.Second, Rate: 2000 * units.Kbps},
			{Index: 2, Start: 40 * time.Second, Rate: 3000 * units.Kbps},
		},
	}
	if got := r.SteadyAvgRateKbps(); got != 0 {
		t.Errorf("SteadyAvgRateKbps = %v for a sub-2-minute session, want 0", got)
	}
	if got := r.StartupAvgRateKbps(); got != 2000 {
		t.Errorf("StartupAvgRateKbps = %v, want 2000", got)
	}
	if got := r.AvgRateKbps(); got != 2000 {
		t.Errorf("AvgRateKbps = %v, want 2000", got)
	}
}

// TestRateHelpersWindowEdges pins the exact boundary semantics: a chunk
// starting exactly at 1 minute is excluded from startup, and one starting
// exactly at 2 minutes is included in steady state.
func TestRateHelpersWindowEdges(t *testing.T) {
	r := &Result{
		Chunks: []ChunkRecord{
			{Index: 0, Start: 0, Rate: 1000 * units.Kbps},
			{Index: 1, Start: time.Minute, Rate: 2000 * units.Kbps},
			{Index: 2, Start: 2 * time.Minute, Rate: 4000 * units.Kbps},
		},
	}
	if got := r.StartupAvgRateKbps(); got != 1000 {
		t.Errorf("StartupAvgRateKbps = %v, want 1000 (t=60s chunk excluded)", got)
	}
	if got := r.SteadyAvgRateKbps(); got != 4000 {
		t.Errorf("SteadyAvgRateKbps = %v, want 4000 (t=120s chunk included)", got)
	}
}
