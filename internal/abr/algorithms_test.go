package abr

import (
	"testing"
	"time"

	"bba/internal/units"
)

func stateAt(buf time.Duration, prev, k int) State {
	return State{
		Buffer:    buf,
		BufferMax: 240 * time.Second,
		PrevIndex: prev,
		NextChunk: k,
	}
}

func TestDegenerateBaselines(t *testing.T) {
	s := cbrStream(t)
	if got := (RminAlways{}).Next(stateAt(100*time.Second, 5, 3), s); got != 0 {
		t.Errorf("RminAlways chose %d", got)
	}
	if got := (RmaxAlways{}).Next(stateAt(0, -1, 0), s); got != len(s.Ladder())-1 {
		t.Errorf("RmaxAlways chose %d", got)
	}
}

func TestBBA0Lifecycle(t *testing.T) {
	s := cbrStream(t)
	a := NewBBA0()
	// Empty buffer: R_min.
	if got := a.Next(stateAt(0, -1, 0), s); got != 0 {
		t.Fatalf("first chunk at %d, want 0", got)
	}
	// Still inside the 90 s reservoir: stays at R_min.
	if got := a.Next(stateAt(60*time.Second, 0, 15), s); got != 0 {
		t.Errorf("inside reservoir: %d, want 0", got)
	}
	// Deep in the cushion the rate climbs, one barrier crossing at a
	// time as the buffer grows.
	prevRate := 0
	for b := 90 * time.Second; b <= 216*time.Second; b += 2 * time.Second {
		got := a.Next(stateAt(b, prevRate, int(b/(4*time.Second))), s)
		if got < prevRate {
			t.Fatalf("rate decreased while buffer grows: %d -> %d at B=%v", prevRate, got, b)
		}
		prevRate = got
	}
	if prevRate != len(s.Ladder())-1 {
		t.Errorf("rate at ramp end = %d, want top", prevRate)
	}
	// Above 90% of the buffer: R_max.
	if got := a.Next(stateAt(230*time.Second, prevRate, 100), s); got != len(s.Ladder())-1 {
		t.Errorf("upper reservoir: %d, want top", got)
	}
}

func TestBBA0MapGeometry(t *testing.T) {
	s := cbrStream(t)
	m := NewBBA0().Map(s, 240*time.Second)
	if m.Reservoir != 90*time.Second {
		t.Errorf("reservoir = %v", m.Reservoir)
	}
	if m.Cushion != 126*time.Second {
		t.Errorf("cushion = %v, want 126s (90%% of 240s minus 90s)", m.Cushion)
	}
	// Tiny buffers degrade gracefully to a minimal cushion.
	if m := NewBBA0().Map(s, 60*time.Second); m.Cushion < time.Second {
		t.Errorf("degenerate cushion = %v", m.Cushion)
	}
}

func TestBBA1UsesDynamicReservoir(t *testing.T) {
	s := vbrStream(t, 21)
	a := NewBBA1()
	m := a.Map(s, 0, 240*time.Second)
	want := DynamicReservoir(s, 0, DefaultReservoirWindow)
	if m.Reservoir != want {
		t.Errorf("map reservoir = %v, want dynamic %v", m.Reservoir, want)
	}
	// The map's endpoints are the nominal chunk sizes at R_min and R_max.
	if m.ChunkMin != s.Ladder().Min().BytesIn(s.ChunkDuration()) {
		t.Errorf("ChunkMin = %d", m.ChunkMin)
	}
	if m.ChunkMax != s.Ladder().Max().BytesIn(s.ChunkDuration()) {
		t.Errorf("ChunkMax = %d", m.ChunkMax)
	}
}

func TestBBA1Lifecycle(t *testing.T) {
	s := vbrStream(t, 22)
	a := NewBBA1()
	if got := a.Next(stateAt(0, -1, 0), s); got != 0 {
		t.Fatalf("first chunk at %d, want 0", got)
	}
	// Full buffer: top rate.
	if got := a.Next(stateAt(235*time.Second, 0, 10), s); got != len(s.Ladder())-1 {
		t.Errorf("full buffer: %d, want top", got)
	}
}

func TestBBA2StartupRampsOnFastDownloads(t *testing.T) {
	s := cbrStream(t)
	a := NewBBA2()
	v := s.ChunkDuration()

	if got := a.Next(stateAt(0, -1, 0), s); got != 0 {
		t.Fatalf("first chunk at %d, want 0", got)
	}
	if !a.InStartup() {
		t.Fatal("should begin in startup")
	}
	// Each chunk downloads 10× faster than real time (ΔB = 0.9·V >
	// 0.875·V): the rate steps up exactly one rung per decision.
	buf := v
	prev := 0
	for i := 1; i <= 4; i++ {
		st := stateAt(buf, prev, i)
		st.LastDownload = v / 10
		st.LastThroughput = 10 * units.Mbps
		got := a.Next(st, s)
		if got != prev+1 {
			t.Fatalf("decision %d: rate %d, want single step to %d", i, got, prev+1)
		}
		prev = got
		buf += v - v/10
	}
}

func TestBBA2StartupHoldsOnSlowDownloads(t *testing.T) {
	s := cbrStream(t)
	a := NewBBA2()
	v := s.ChunkDuration()
	a.Next(stateAt(0, -1, 0), s)
	// Download only 2× real time on a nearly empty buffer: below the
	// 0.875·V threshold, so no step.
	st := stateAt(v, 0, 1)
	st.LastDownload = v / 2
	if got := a.Next(st, s); got != 0 {
		t.Errorf("stepped up to %d on a slow download", got)
	}
	if !a.InStartup() {
		t.Error("still should be in startup")
	}
}

func TestBBA2ThresholdRelaxesAsBufferFills(t *testing.T) {
	// The ΔB threshold decays linearly from 0.875·V on an empty buffer
	// ("eight times faster than it is played") to 0.5·V at the top of the
	// cushion ("twice as fast"). Verify via the decision predicate.
	s := cbrStream(t)
	a := NewBBA2()
	v := s.ChunkDuration()
	a.Next(stateAt(0, -1, 0), s)
	m := a.steady.Map(s, 1, 240*time.Second)
	rampEnd := m.Reservoir + m.Cushion

	mk := func(buf time.Duration, download time.Duration) State {
		st := stateAt(buf, 0, 1)
		st.LastDownload = download
		return st
	}
	// 2× real time is not enough on an empty buffer...
	if a.stepUpAllowed(mk(0, v/2), s, m) {
		t.Error("ΔB = 0.5·V allowed a step on an empty buffer")
	}
	// ...but 8× is.
	if !a.stepUpAllowed(mk(0, v/8), s, m) {
		t.Error("ΔB = 0.875·V denied a step on an empty buffer")
	}
	// At the top of the cushion, just over 2× real time suffices.
	if !a.stepUpAllowed(mk(rampEnd, v*49/100), s, m) {
		t.Error("ΔB just above 0.5·V denied at a full cushion")
	}
	// Monotonicity of the threshold: a download speed that is allowed at
	// a low buffer is allowed at every higher buffer.
	for frac := 0.0; frac <= 1.0; frac += 0.1 {
		buf := time.Duration(frac * float64(rampEnd))
		if a.stepUpAllowed(mk(buf, v/8), s, m) != true {
			t.Errorf("8× download denied at buffer %v", buf)
		}
	}
	// A download at exactly real time never steps up.
	if a.stepUpAllowed(mk(rampEnd, v), s, m) {
		t.Error("ΔB = 0 allowed a step")
	}
}

func TestBBA2ExitsStartupOnBufferDecrease(t *testing.T) {
	s := cbrStream(t)
	a := NewBBA2()
	v := s.ChunkDuration()
	a.Next(stateAt(0, -1, 0), s)
	st := stateAt(8*time.Second, 0, 1)
	st.LastDownload = v / 10
	a.Next(st, s) // buffer grew: still startup
	if !a.InStartup() {
		t.Fatal("should still be in startup")
	}
	st = stateAt(4*time.Second, 1, 2) // buffer decreased
	st.LastDownload = v / 10
	a.Next(st, s)
	if a.InStartup() {
		t.Error("buffer decrease should end startup")
	}
}

func TestBBA2ExitsStartupWhenMapCatchesUp(t *testing.T) {
	s := cbrStream(t)
	a := NewBBA2()
	a.Next(stateAt(0, -1, 0), s)
	// A huge buffer makes the chunk map suggest the top rate, far above
	// the current rung: startup must end.
	st := stateAt(230*time.Second, 0, 1)
	st.LastDownload = time.Second
	got := a.Next(st, s)
	if a.InStartup() {
		t.Error("map suggestion above current rate should end startup")
	}
	if got != len(s.Ladder())-1 {
		t.Errorf("steady-state pick = %d, want top (upper reservoir)", got)
	}
}

func TestBBAOthersProtectionIsRatchetExcess(t *testing.T) {
	// Outage protection in BBA-Others is the excess of the ratcheted
	// reservoir over the instantaneous dynamic requirement: when the
	// upcoming scene quiets down, the reservoir keeps its high-water mark
	// and the difference protects against outages.
	s := vbrStream(t, 51)
	a := NewBBAOthers()
	v := s.ChunkDuration()
	a.Next(stateAt(0, -1, 0), s)
	buf := 40 * time.Second
	var sawProtection bool
	for k := 1; k < s.NumChunks(); k += 3 {
		st := stateAt(buf, 0, k)
		st.LastDownload = v
		a.Next(st, s)
		want := a.EffectiveReservoir() - DynamicReservoir(s, k, DefaultReservoirWindow)
		if want < 0 {
			want = 0
		}
		if got := a.Protection(); got != want {
			t.Fatalf("chunk %d: protection = %v, want ratchet excess %v", k, got, want)
		}
		if a.Protection() > 0 {
			sawProtection = true
		}
	}
	if !sawProtection {
		t.Error("no chunk ever produced ratchet excess; scene variation should create some")
	}
	// The ratchet (hence the map shift) is bounded by the reservoir clamp.
	if a.EffectiveReservoir() > MaxReservoir {
		t.Errorf("effective reservoir %v exceeds clamp %v", a.EffectiveReservoir(), MaxReservoir)
	}
}

func TestBBAOthersReservoirNeverShrinks(t *testing.T) {
	s := vbrStream(t, 31)
	a := NewBBAOthers()
	v := s.ChunkDuration()
	a.Next(stateAt(0, -1, 0), s)
	last := time.Duration(0)
	buf := 40 * time.Second
	for k := 1; k < 200; k++ {
		st := stateAt(buf, 0, k)
		st.LastDownload = v / 2
		a.Next(st, s)
		if r := a.EffectiveReservoir(); r < last {
			t.Fatalf("effective reservoir shrank at chunk %d: %v -> %v", k, last, r)
		} else {
			last = r
		}
	}
}

func TestBBAOthersSmoothsUpSwitches(t *testing.T) {
	s := vbrStream(t, 41)
	plain := NewBBA2()
	smooth := NewBBAOthers()
	v := s.ChunkDuration()

	countSwitches := func(a Algorithm) int {
		// Constant mid-cushion buffer, VBR chunk churn: count switches.
		prev := -1
		switches := 0
		for k := 0; k < 400; k++ {
			st := stateAt(150*time.Second, prev, k)
			st.LastDownload = v // neutral: not faster than real time
			st.LastThroughput = 2 * units.Mbps
			got := a.Next(st, s)
			if prev >= 0 && got != prev {
				switches++
			}
			prev = got
		}
		return switches
	}
	ps := countSwitches(plain)
	ss := countSwitches(smooth)
	if ss >= ps {
		t.Errorf("BBA-Others switches (%d) not fewer than BBA-2 (%d)", ss, ps)
	}
}

func TestControlSeedsFromFirstThroughput(t *testing.T) {
	s := cbrStream(t)
	c := NewControl()
	// No information at all: R_min.
	if got := c.Next(stateAt(0, -1, 0), s); got != 0 {
		t.Fatalf("uninformed pick = %d, want 0", got)
	}
	// Fast chunks follow: the estimate jumps, and once the up-switch
	// persists for UpPersistence decisions the rate follows.
	got := 0
	for i := 1; i <= c.UpPersistence+1; i++ {
		// Stay above the panic floor so the estimator path is exercised.
		st := stateAt(30*time.Second+time.Duration(4*i)*time.Second, got, i)
		st.LastThroughput = 10 * units.Mbps
		got = c.Next(st, s)
		if i == 1 && c.Estimate() != 10*units.Mbps {
			t.Errorf("estimate = %v, want seeded 10Mb/s", c.Estimate())
		}
	}
	if got <= 0 {
		t.Errorf("informed pick = %d, want above R_min", got)
	}
}

func TestControlInitialEstimate(t *testing.T) {
	s := cbrStream(t)
	c := NewControl()
	c.InitialEstimate = 6 * units.Mbps
	got := c.Next(stateAt(0, -1, 0), s)
	// F(0)·6Mb/s = 0.3·6 = 1.8 Mb/s → highest rate ≤ 1.8 Mb/s is 1750k.
	want := s.Ladder().HighestAtMost(units.BitRate(1.8 * float64(units.Mbps)))
	if got != want {
		t.Errorf("history-seeded pick = %d, want %d", got, want)
	}
}

func TestControlBufferAdjustment(t *testing.T) {
	s := cbrStream(t)
	c := NewControl()
	c.InitialEstimate = 4 * units.Mbps
	// Low buffer → F small → conservative pick.
	low := c.Next(stateAt(0, -1, 0), s)
	// Fresh instance with a big buffer → F = 0.9 → aggressive pick.
	c2 := NewControl()
	c2.InitialEstimate = 4 * units.Mbps
	high := c2.Next(State{Buffer: 200 * time.Second, BufferMax: 240 * time.Second, PrevIndex: -1}, s)
	if low >= high {
		t.Errorf("low-buffer pick %d not below high-buffer pick %d", low, high)
	}
}

func TestControlEWMATracksDrop(t *testing.T) {
	s := cbrStream(t)
	c := NewControl()
	st := stateAt(100*time.Second, 0, 0)
	st.LastThroughput = 5 * units.Mbps
	c.Next(st, s)
	first := c.Estimate()
	// Capacity collapses; estimate must lag (stay above actual) yet fall.
	for i := 1; i <= 3; i++ {
		st := stateAt(100*time.Second, 3, i)
		st.LastThroughput = 350 * units.Kbps
		c.Next(st, s)
	}
	if c.Estimate() >= first {
		t.Error("estimate did not fall after capacity drop")
	}
	if c.Estimate() <= 350*units.Kbps {
		t.Error("estimate should lag above the new capacity (that lag is the paper's point)")
	}
}

func TestControlUpMarginHysteresis(t *testing.T) {
	s := cbrStream(t)
	c := NewControl()
	c.InitialEstimate = 2 * units.Mbps
	first := c.Next(State{Buffer: 200 * time.Second, BufferMax: 240 * time.Second, PrevIndex: -1}, s)
	// Feed a throughput that would put the adjusted estimate only a hair
	// above the next rate: the 5% margin must block the up-switch.
	next := s.Ladder()[first+1]
	hair := units.BitRate(float64(next) * 1.02 / 0.9) // adjusted ≈ 1.02·next
	st := State{Buffer: 200 * time.Second, BufferMax: 240 * time.Second, PrevIndex: first, NextChunk: 1, LastThroughput: hair}
	c2 := NewControl()
	c2.est = c.est
	c2.prev = first
	if got := c2.Next(st, s); got != first {
		t.Errorf("up-switch through the margin: %d -> %d", first, got)
	}
}

func TestAggressiveControlRidesHighRate(t *testing.T) {
	// The Figure 4 reproduction at the algorithm level: after a capacity
	// collapse the aggressive estimator keeps the rate high for several
	// chunks even as the buffer drains.
	s := cbrStream(t)
	c := NewAggressiveControl()
	st := stateAt(20*time.Second, -1, 0)
	st.LastThroughput = 5 * units.Mbps
	first := c.Next(st, s)
	if first < 7 { // 3 Mb/s is index 7 on the default ladder
		t.Fatalf("aggressive first pick = %d, want high", first)
	}
	// Capacity drops to 350 kb/s; the buffer visibly drains, but the
	// estimator barely moves (alpha = 0.05) and F ≡ 1 ignores the buffer.
	cur := first
	for i := 1; i <= 3; i++ {
		st := stateAt(time.Duration(20-5*i)*time.Second, cur, i)
		st.LastThroughput = 350 * units.Kbps
		cur = c.Next(st, s)
	}
	if cur < 6 {
		t.Errorf("aggressive control dropped to %d within 3 chunks; too responsive for the Figure 4 scenario", cur)
	}
}
