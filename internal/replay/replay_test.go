package replay

import (
	"math/rand"
	"testing"
	"time"

	"bba/internal/abr"
	"bba/internal/media"
	"bba/internal/player"
	"bba/internal/trace"
	"bba/internal/units"
)

func session(t *testing.T, alg abr.Algorithm, tr *trace.Trace) (*player.Result, abr.Stream) {
	t.Helper()
	v, err := media.NewVBR(media.VBRConfig{Ladder: media.DefaultLadder(), NumChunks: 450}, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	s := abr.NewStream(v, 0)
	res, err := player.Run(player.Config{
		Algorithm:  alg,
		Stream:     s,
		Trace:      tr,
		WatchLimit: 10 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, s
}

func TestTraceFromResultValidation(t *testing.T) {
	if _, err := TraceFromResult(nil); err != ErrNoObservations {
		t.Errorf("nil result: %v", err)
	}
	if _, err := TraceFromResult(&player.Result{}); err != ErrNoObservations {
		t.Errorf("empty result: %v", err)
	}
}

func TestReconstructionMatchesConstantNetwork(t *testing.T) {
	// On a constant link every observation is the link rate, so the
	// reconstructed trace is flat at that rate.
	res, _ := session(t, abr.NewBBA2(), trace.Constant(3*units.Mbps, time.Hour))
	tr, err := TraceFromResult(res)
	if err != nil {
		t.Fatal(err)
	}
	for at := time.Duration(0); at < tr.Total(); at += 10 * time.Second {
		r := tr.RateAt(at)
		if r < 2990*units.Kbps || r > 3010*units.Kbps {
			t.Fatalf("reconstructed rate at %v = %v, want ≈3Mb/s", at, r)
		}
	}
}

func TestReconstructionSeesTheStep(t *testing.T) {
	// A Figure 4-style collapse must be visible in the reconstruction.
	step := trace.Step(5*units.Mbps, 350*units.Kbps, 25*time.Second, time.Hour)
	res, _ := session(t, abr.NewBBA2(), step)
	tr, err := TraceFromResult(res)
	if err != nil {
		t.Fatal(err)
	}
	early := tr.RateAt(5 * time.Second)
	late := tr.RateAt(2 * time.Minute)
	if early < 4*units.Mbps {
		t.Errorf("pre-collapse reconstruction %v, want ≈5Mb/s", early)
	}
	if late > 500*units.Kbps {
		t.Errorf("post-collapse reconstruction %v, want ≈350kb/s", late)
	}
}

func TestWhatIfCounterfactual(t *testing.T) {
	// Live an aggressive-estimator session through the Figure 4 collapse,
	// then ask what BBA-0 would have done on the same observed network:
	// the counterfactual must be stall-free, as the paper argues.
	step := trace.Step(5*units.Mbps, 350*units.Kbps, 25*time.Second, time.Hour)
	aggressive := abr.NewAggressiveControl()
	aggressive.InitialEstimate = 5 * units.Mbps
	original, stream := session(t, aggressive, step)
	if original.StallTime == 0 {
		t.Fatal("the original session should have frozen (it is the Figure 4 scenario)")
	}

	counterfactual, err := WhatIf(original, player.Config{
		Algorithm:  abr.NewBBA0(),
		Stream:     stream,
		WatchLimit: 10 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if counterfactual.Rebuffers != 0 {
		t.Errorf("BBA-0 on the observed network rebuffered %d times; the paper says this rebuffer was unnecessary", counterfactual.Rebuffers)
	}
	if counterfactual.Played == 0 {
		t.Error("counterfactual played nothing")
	}
}

func TestWhatIfSelfReplayIsCalm(t *testing.T) {
	// Replaying the ORIGINAL algorithm against its own reconstruction is
	// not bit-identical (idle gaps are interpolated) but must land in the
	// same regime: similar average rate, no catastrophic divergence.
	res, stream := session(t, abr.NewBBA2(), trace.Markov(trace.MarkovConfig{
		Base:     3 * units.Mbps,
		Sigma:    0.6,
		Duration: time.Hour,
		Floor:    300 * units.Kbps,
	}, rand.New(rand.NewSource(8))))
	again, err := WhatIf(res, player.Config{
		Algorithm:  abr.NewBBA2(),
		Stream:     stream,
		WatchLimit: 10 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, b := res.AvgRateKbps(), again.AvgRateKbps()
	if b < 0.6*a || b > 1.4*a {
		t.Errorf("self-replay diverged: %.0f vs %.0f kb/s", a, b)
	}
}
