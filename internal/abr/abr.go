// Package abr implements the paper's adaptive-bit-rate algorithms and the
// baselines they are evaluated against.
//
// The buffer-based algorithms (BBA) pick the video rate as a function of
// playback-buffer occupancy:
//
//   - BBA0 is the Section 4 baseline: a fixed 90-second reservoir, a linear
//     rate map reaching R_max at 90% of the buffer, and the hysteresis rule
//     of Algorithm 1.
//   - BBA1 (Section 5) handles VBR encodes: the reservoir is recomputed
//     from upcoming chunk sizes and the rate map generalizes to a chunk map
//     on the buffer–chunk-size plane.
//   - BBA2 (Section 6) adds the startup ramp: while the buffer is still
//     growing from empty it steps the rate up whenever the last chunk
//     downloaded sufficiently faster than real time (the ΔB rule), then
//     hands over to the BBA1 machinery for steady state.
//   - BBAOthers (Section 7) smooths switching with chunk lookahead, makes
//     the reservoir right-shift-only, and accrues outage protection.
//
// The baselines are Control — a representative capacity-estimation
// algorithm in the style of the paper's Figure 3, picking
// R = F(B)·Ĉ — and the degenerate RminAlways/RmaxAlways policies that
// bound the metric space from below and above.
//
// Algorithms are single-session state machines: construct a fresh instance
// per session (via New or a Factory) and call Next once per chunk request.
// They are not safe for concurrent use by multiple sessions.
package abr

import (
	"time"

	"bba/internal/media"
	"bba/internal/units"
)

// State is everything an algorithm may observe when choosing the rate for
// the next chunk. It corresponds to the observable inputs in the paper:
// buffer occupancy B(t) (the primary signal), the previous rate, and the
// throughput of the immediately preceding chunk download (the only capacity
// estimate BBA2's startup uses).
type State struct {
	// Now is the session clock at decision time.
	Now time.Duration
	// Buffer is the current playback-buffer occupancy B(t).
	Buffer time.Duration
	// BufferMax is the buffer capacity B_max (240 s in the paper).
	BufferMax time.Duration
	// PrevIndex is the ladder index of the previously requested chunk, or
	// -1 before the first request.
	PrevIndex int
	// NextChunk is the index of the chunk about to be requested.
	NextChunk int
	// LastThroughput is the measured average capacity c[k−1] while the
	// previous chunk downloaded; 0 before the first chunk completes.
	LastThroughput units.BitRate
	// LastDownload is how long the previous chunk took to download; 0
	// before the first chunk completes.
	LastDownload time.Duration
	// LastChunkBytes is the size of the previous chunk; 0 initially.
	LastChunkBytes int64
}

// Stream is a session's view of a video: the ladder may start above the
// video's lowest rate when the paper's R_min promotion applies (footnote 3:
// users who historically sustain 560 kb/s get R_min = 560 kb/s). Algorithms
// work in session index space; Stream translates to the underlying encode.
type Stream struct {
	video  *media.Video
	ladder media.Ladder
	offset int
}

// NewStream builds a session view of v whose lowest available rate is the
// smallest ladder rate ≥ rmin. A zero rmin keeps the full ladder.
func NewStream(v *media.Video, rmin units.BitRate) Stream {
	ladder := v.Ladder.FromMin(rmin)
	return Stream{video: v, ladder: ladder, offset: len(v.Ladder) - len(ladder)}
}

// Ladder returns the session's (possibly promoted) rate ladder.
func (s Stream) Ladder() media.Ladder { return s.ladder }

// Video returns the underlying title.
func (s Stream) Video() *media.Video { return s.video }

// VideoIndex translates a session ladder index to the encode's ladder index.
func (s Stream) VideoIndex(i int) int { return i + s.offset }

// ChunkSize returns the size of chunk k at session ladder index i.
func (s Stream) ChunkSize(i, k int) int64 {
	return s.video.ChunkSize(i+s.offset, k)
}

// NominalChunkSize returns the average (V·R) chunk size at session index i.
func (s Stream) NominalChunkSize(i int) int64 {
	return s.video.NominalChunkSize(i + s.offset)
}

// NumChunks returns the title's chunk count.
func (s Stream) NumChunks() int { return s.video.NumChunks() }

// ChunkDuration returns V, the fixed chunk playback duration.
func (s Stream) ChunkDuration() time.Duration { return s.video.ChunkDuration }

// Algorithm selects the rate for each chunk of one session.
type Algorithm interface {
	// Name identifies the algorithm in experiment output ("BBA-0",
	// "Control", ...).
	Name() string
	// Next returns the session-ladder index to request chunk
	// st.NextChunk at. Implementations must return an index within the
	// stream's ladder.
	Next(st State, s Stream) int
}

// Factory builds a fresh single-session Algorithm instance.
type Factory func() Algorithm

// SeekAware is implemented by algorithms that must react when the viewer
// seeks: the buffer is flushed and — as the paper notes, the startup phase
// applies "after starting a new video or seeking to a new point" — a
// startup-capable algorithm re-enters its startup phase.
type SeekAware interface {
	// Seeked notifies the algorithm that the buffer was flushed by a
	// seek and the next decision starts a fresh startup phase.
	Seeked()
}

// ReservoirReporter is implemented by algorithms whose decisions flow
// through a dynamic reservoir (BBA-1 and the algorithms built on it). The
// player's telemetry polls it after each decision to emit reservoir-update
// events — the series behind the paper's Figure 12 discussion — without
// the algorithms knowing about telemetry.
type ReservoirReporter interface {
	// LastReservoir returns the effective reservoir (including any
	// right-shift) and the accrued outage protection used by the most
	// recent decision. ok is false before the first decision computes a
	// chunk map.
	LastReservoir() (reservoir, protection time.Duration, ok bool)
}

// RminAlways streams at the lowest rate forever — the paper's Group 2,
// which "minimizes the chances of the buffer running dry, giving us a lower
// bound on the rebuffer rate".
type RminAlways struct{}

// Name implements Algorithm.
func (RminAlways) Name() string { return "Rmin Always" }

// Next implements Algorithm.
func (RminAlways) Next(State, Stream) int { return 0 }

// RmaxAlways streams at the highest rate forever — the opposite degenerate
// policy from the paper's introduction, maximizing quality at the cost of
// extensive rebuffering.
type RmaxAlways struct{}

// Name implements Algorithm.
func (RmaxAlways) Name() string { return "Rmax Always" }

// Next implements Algorithm.
func (RmaxAlways) Next(_ State, s Stream) int { return len(s.Ladder()) - 1 }
