package collect

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"bba/internal/campaign"
	"bba/internal/faults"
	"bba/internal/netem"
	"bba/internal/trace"
	"bba/internal/units"
)

// lossDupTransport sits above the fault injector and manufactures the two
// remaining at-least-once pathologies deterministically:
//
//   - every dupEvery-th acknowledged ingest is re-sent once (duplicate
//     delivery on the wire), and
//   - every loseAckEvery-th acknowledged ingest has its acknowledgement
//     replaced by a synthesized 503 — the server processed the frame but
//     the client must assume it didn't, so the retry is a duplicate too.
type lossDupTransport struct {
	base         http.RoundTripper
	dupEvery     int64
	loseAckEvery int64
	acked        atomic.Int64
}

func (t *lossDupTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := t.base.RoundTrip(req)
	if err != nil || resp.StatusCode >= 300 || req.URL.Path != "/ingest" {
		return resp, err
	}
	n := t.acked.Add(1)
	if n%t.dupEvery == 0 && req.GetBody != nil {
		if body, berr := req.GetBody(); berr == nil {
			dup := req.Clone(req.Context())
			dup.Body = body
			if dresp, derr := t.base.RoundTrip(dup); derr == nil {
				io.Copy(io.Discard, dresp.Body)
				dresp.Body.Close()
			}
		}
	}
	if n%t.loseAckEvery == 0 {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return &http.Response{
			Status: "503 Service Unavailable", StatusCode: http.StatusServiceUnavailable,
			Proto: "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header: http.Header{}, Body: io.NopCloser(bytes.NewReader(nil)),
			Request: req,
		}, nil
	}
	return resp, err
}

// shipCampaign runs cfg with its shards and progress events shipped
// through s, propagating the run protocol: run_start, shards via OnShard,
// flush, run_end, final flush.
func shipCampaign(ctx context.Context, cfg campaign.Config, s *Shipper) error {
	idJSON, err := json.Marshal(cfg.Identity())
	if err != nil {
		return err
	}
	if err := s.ShipRunStart(idJSON); err != nil {
		return err
	}
	cfg.Observer = s
	cfg.OnShard = func(shard int, accums []*campaign.GroupAccum) error {
		p, err := json.Marshal(campaign.ShardAccums{Shard: shard, Groups: accums})
		if err != nil {
			return err
		}
		return s.ShipShard(p)
	}
	if _, err := campaign.RunContext(ctx, cfg); err != nil {
		return err
	}
	if err := s.Flush(ctx); err != nil {
		return err
	}
	if err := s.ShipRunEnd(); err != nil {
		return err
	}
	return s.Flush(ctx)
}

// TestShipCollectDeterminism is the pipeline's acceptance test, pinned in
// CI under -race: a campaign shipped through a netem-shaped loopback path
// with injected loss (edge 503s), duplication (re-sent frames, lost acks)
// and reordering (three concurrent senders) must aggregate remotely to the
// byte-identical report a local run of the same seed produces.
func TestShipCollectDeterminism(t *testing.T) {
	cfg := campaign.Config{
		Name: "e2e", Seed: 42, Sessions: 48, ShardSize: 8,
		Parallelism: 4, SketchSize: 64, CatalogSize: 6,
	}

	// The ground truth: the same campaign aggregated in-process.
	local, err := campaign.Run(cfg)
	if err != nil {
		t.Fatalf("local campaign: %v", err)
	}
	var localBytes bytes.Buffer
	if err := local.Report.WriteJSON(&localBytes); err != nil {
		t.Fatal(err)
	}

	collector := NewCollector(CollectorConfig{})
	srv := httptest.NewServer(collector.Handler())
	defer srv.Close()

	// The collection path: every connection netem-shaped, a faults
	// schedule dropping ~90% of attempts at the edge for the whole run,
	// and the loss/dup layer above it.
	shapedTrace := trace.MustNew([]trace.Segment{{Duration: time.Hour, Rate: 20 * units.Mbps}})
	dialer := &net.Dialer{Timeout: 5 * time.Second}
	shaped := &http.Transport{
		DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
			c, err := dialer.DialContext(ctx, network, addr)
			if err != nil {
				return nil, err
			}
			return netem.NewConn(c, netem.NewShaper(shapedTrace)), nil
		},
	}
	defer shaped.CloseIdleConnections()
	faulty := &faults.Transport{
		Base:     shaped,
		Schedule: faults.MustSchedule([]faults.Fault{{Kind: faults.ServerError, Start: 0, Duration: time.Hour}}),
		Seed:     99,
	}
	client := &http.Client{
		Transport: &lossDupTransport{base: faulty, dupEvery: 2, loseAckEvery: 5},
		Timeout:   10 * time.Second,
	}

	shipper, err := NewShipper(ShipperConfig{
		Addr: srv.URL, Run: "e2e-42", Session: 1,
		BatchEvents: 4, FlushInterval: -1,
		Queue:      QueueConfig{MemFrames: 64, SpillDir: t.TempDir()},
		Senders:    3,
		Retry:      RetryPolicy{MaxAttempts: 400, Base: 200 * time.Microsecond, Cap: 2 * time.Millisecond, Seed: 7},
		HTTPClient: client,
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := shipCampaign(ctx, cfg, shipper); err != nil {
		t.Fatalf("shipped campaign: %v", err)
	}
	if err := shipper.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	resp, err := srv.Client().Get(srv.URL + "/report/e2e-42")
	if err != nil {
		t.Fatal(err)
	}
	remoteBytes, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report: %s: %s", resp.Status, remoteBytes)
	}
	if !bytes.Equal(remoteBytes, localBytes.Bytes()) {
		t.Fatalf("remote report differs from local run:\nremote: %s\nlocal:  %s", remoteBytes, localBytes.Bytes())
	}

	// The path must actually have been hostile: retries prove loss,
	// duplicate frames prove at-least-once delivery happened.
	ss := shipper.Stats()
	if ss.Retries == 0 {
		t.Fatalf("no retries — fault injection did not engage: %+v", ss)
	}
	if ss.FramesDropped != 0 || ss.EventsDropped != 0 {
		t.Fatalf("frames lost despite reliable retry budget: %+v", ss)
	}
	cs := collector.Stats()
	if cs.FramesDup == 0 {
		t.Fatalf("no duplicate deliveries — dup injection did not engage: %+v", cs)
	}
	if cs.Shards != 6 || cs.ShardsDup != 0 || cs.RunsEnded != 1 {
		t.Fatalf("collector stats %+v", cs)
	}
}

// TestShipCollectRepeatable re-runs the shipped campaign against a fresh
// collector and expects byte-identical remote reports — same seed, same
// bytes, arrival order notwithstanding.
func TestShipCollectRepeatable(t *testing.T) {
	cfg := campaign.Config{
		Name: "rep", Seed: 7, Sessions: 16, ShardSize: 4,
		Parallelism: 4, SketchSize: 32, CatalogSize: 4,
	}
	run := func() []byte {
		collector := NewCollector(CollectorConfig{})
		srv := httptest.NewServer(collector.Handler())
		defer srv.Close()
		shipper, err := NewShipper(ShipperConfig{
			Addr: srv.URL, Run: "rep", Session: 1, FlushInterval: -1,
			Senders: 2,
			Retry:   RetryPolicy{MaxAttempts: 10, Base: time.Millisecond, Cap: 4 * time.Millisecond},
		})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		if err := shipCampaign(ctx, cfg, shipper); err != nil {
			t.Fatalf("ship: %v", err)
		}
		shipper.Close()
		body, err := collector.Report("rep")
		if err != nil {
			t.Fatalf("report: %v", err)
		}
		return body
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("two shipped runs of the same seed differ:\n%s\n%s", a, b)
	}
}
