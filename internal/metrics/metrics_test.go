package metrics

import (
	"math"
	"testing"
	"time"

	"bba/internal/player"
	"bba/internal/units"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestFromResult(t *testing.T) {
	r := &player.Result{
		Algorithm: "BBA-2",
		Played:    30 * time.Minute,
		Rebuffers: 2,
		Switches:  7,
		Chunks: []player.ChunkRecord{
			{Start: 0, Rate: 235 * units.Kbps},
			{Start: 30 * time.Second, Rate: 1050 * units.Kbps},
			{Start: 3 * time.Minute, Rate: 3000 * units.Kbps},
			{Start: 4 * time.Minute, Rate: 3000 * units.Kbps},
		},
	}
	s := FromResult(r, 3, 1)
	if s.Window != 3 || s.Day != 1 {
		t.Errorf("window/day = %d/%d", s.Window, s.Day)
	}
	if !almost(s.PlayHours, 0.5, 1e-9) {
		t.Errorf("playhours = %v", s.PlayHours)
	}
	if s.Rebuffers != 2 || s.Switches != 7 {
		t.Error("counts not carried over")
	}
	if !s.SteadyReached || s.SteadyRateKbps != 3000 {
		t.Errorf("steady = %v (reached=%v), want 3000", s.SteadyRateKbps, s.SteadyReached)
	}
	if s.StartupRateKbps != (235.0+1050.0)/2 {
		t.Errorf("startup = %v", s.StartupRateKbps)
	}
}

func TestAggregateBasics(t *testing.T) {
	sessions := []Session{
		{Window: 0, Day: 0, PlayHours: 1, Rebuffers: 2, Switches: 10, AvgRateKbps: 1000, SteadyRateKbps: 1200, SteadyReached: true},
		{Window: 0, Day: 0, PlayHours: 3, Rebuffers: 0, Switches: 2, AvgRateKbps: 2000, SteadyRateKbps: 2200, SteadyReached: true},
		{Window: 5, Day: 0, PlayHours: 2, Rebuffers: 4, Switches: 0, AvgRateKbps: 500},
	}
	ws, err := Aggregate(sessions)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != WindowsPerDay {
		t.Fatalf("got %d windows", len(ws))
	}
	w0 := ws[0]
	if w0.Sessions != 2 || w0.PlayHours != 4 {
		t.Errorf("w0 sessions/playhours = %d/%v", w0.Sessions, w0.PlayHours)
	}
	if !almost(w0.RebuffersPerPlayhour, 0.5, 1e-9) {
		t.Errorf("w0 rebuffer rate = %v, want 0.5", w0.RebuffersPerPlayhour)
	}
	if !almost(w0.SwitchesPerPlayhour, 3, 1e-9) {
		t.Errorf("w0 switch rate = %v, want 3", w0.SwitchesPerPlayhour)
	}
	// Play-hour weighted: (1000·1 + 2000·3)/4 = 1750.
	if !almost(w0.AvgRateKbps, 1750, 1e-9) {
		t.Errorf("w0 avg rate = %v, want 1750", w0.AvgRateKbps)
	}
	// Steady weighted: (1200·1 + 2200·3)/4 = 1950.
	if !almost(w0.SteadyRateKbps, 1950, 1e-9) {
		t.Errorf("w0 steady rate = %v, want 1950", w0.SteadyRateKbps)
	}
	if ws[5].RebuffersPerPlayhour != 2 {
		t.Errorf("w5 rebuffer rate = %v", ws[5].RebuffersPerPlayhour)
	}
	// Empty windows stay zero.
	if ws[7].Sessions != 0 || ws[7].RebuffersPerPlayhour != 0 {
		t.Error("empty window not zero")
	}
}

func TestAggregatePerDayVariance(t *testing.T) {
	sessions := []Session{
		{Window: 2, Day: 0, PlayHours: 1, Rebuffers: 1},
		{Window: 2, Day: 1, PlayHours: 1, Rebuffers: 3},
		{Window: 2, Day: 2, PlayHours: 1, Rebuffers: 2},
	}
	ws, err := Aggregate(sessions)
	if err != nil {
		t.Fatal(err)
	}
	w := ws[2]
	if len(w.RebufferRateByDay) != 3 {
		t.Fatalf("byDay = %v", w.RebufferRateByDay)
	}
	// Days are ordered: 1, 3, 2 rebuffers/hour.
	if w.RebufferRateByDay[0] != 1 || w.RebufferRateByDay[1] != 3 || w.RebufferRateByDay[2] != 2 {
		t.Errorf("byDay = %v", w.RebufferRateByDay)
	}
	if !almost(w.RebufferRateStdDev, 1, 1e-9) {
		t.Errorf("stddev = %v, want 1", w.RebufferRateStdDev)
	}
}

func TestAggregateRejectsBadWindow(t *testing.T) {
	if _, err := Aggregate([]Session{{Window: 12}}); err == nil {
		t.Error("window 12 accepted")
	}
	if _, err := Aggregate([]Session{{Window: -1}}); err == nil {
		t.Error("window -1 accepted")
	}
}

func TestNormalization(t *testing.T) {
	control := make([]Window, WindowsPerDay)
	group := make([]Window, WindowsPerDay)
	for i := range control {
		control[i] = Window{RebuffersPerPlayhour: 2, SwitchesPerPlayhour: 10, AvgRateKbps: 2000, SteadyRateKbps: 2100}
		group[i] = Window{RebuffersPerPlayhour: 1.5, SwitchesPerPlayhour: 4, AvgRateKbps: 1900, SteadyRateKbps: 2200}
	}
	nr := NormalizeRebuffers(group, control)
	if !almost(nr[0], 0.75, 1e-9) {
		t.Errorf("normalized rebuffers = %v", nr[0])
	}
	ns := NormalizeSwitches(group, control)
	if !almost(ns[3], 0.4, 1e-9) {
		t.Errorf("normalized switches = %v", ns[3])
	}
	rd := RateDeltaKbps(control, group)
	if !almost(rd[5], 100, 1e-9) {
		t.Errorf("rate delta = %v", rd[5])
	}
	sd := SteadyRateDeltaKbps(control, group)
	if !almost(sd[5], -100, 1e-9) {
		t.Errorf("steady delta = %v", sd[5])
	}
	// Zero control denominators yield zero.
	if got := NormalizeRebuffers(group, make([]Window, WindowsPerDay)); got[0] != 0 {
		t.Errorf("zero control: %v", got[0])
	}
}

func TestWindowHelpers(t *testing.T) {
	if got := WindowLabel(0); got != "00-02 GMT" {
		t.Errorf("label = %q", got)
	}
	if got := WindowLabel(11); got != "22-24 GMT" {
		t.Errorf("label = %q", got)
	}
	if !PeakWindows()[0] || PeakWindows()[5] {
		t.Error("peak windows wrong")
	}
	if !OffPeakWindows()[4] || OffPeakWindows()[0] {
		t.Error("off-peak windows wrong")
	}
	if WindowStart(3) != 6*time.Hour {
		t.Errorf("WindowStart(3) = %v", WindowStart(3))
	}
}

func TestQoEAggregation(t *testing.T) {
	sessions := []Session{
		{Window: 1, PlayHours: 1, QoE: 100},
		{Window: 1, PlayHours: 3, QoE: 300},
	}
	ws, err := Aggregate(sessions)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(ws[1].QoEPerPlayhour, 100, 1e-9) {
		t.Errorf("QoE/h = %v, want (100+300)/4 = 100", ws[1].QoEPerPlayhour)
	}
}

func TestFromResultQoE(t *testing.T) {
	r := &player.Result{
		Played: time.Hour,
		Chunks: []player.ChunkRecord{
			{Rate: 3000 * units.Kbps},
			{Rate: 3000 * units.Kbps},
		},
	}
	s := FromResult(r, 0, 0)
	// Two 3 Mb/s chunks, no stalls, no switches: QoE = 6 under the
	// default linear weights.
	if !almost(s.QoE, 6, 1e-9) {
		t.Errorf("QoE = %v, want 6", s.QoE)
	}
}
