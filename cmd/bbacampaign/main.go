// Command bbacampaign runs a large-scale streaming campaign: the paired A/B
// population at million-session counts with constant memory, deterministic
// sharding and kill-resume checkpointing.
//
// A campaign is split into fixed shards (shard-size paired sessions each).
// One process can run the whole campaign, or the shard space can be striped
// across processes with -shards/-shard-of and the per-process checkpoints
// combined afterwards with -merge; either way the final report is
// byte-identical to a single-threaded run.
//
// Examples:
//
//	bbacampaign -sessions 170000 -faults -checkpoint cp.json -report report.json
//	bbacampaign -sessions 170000 -shards 4 -shard-of 2 -checkpoint cp2.json
//	bbacampaign -merge cp0.json,cp1.json,cp2.json,cp3.json -report report.json
//
// SIGINT saves a final checkpoint, emits a truncated report (marked
// "truncated": true) and exits non-zero; re-running with the same flags and
// -checkpoint resumes without re-running or double-counting any completed
// shard. Progress — sessions/s, ETA and live per-group deltas — streams to
// stderr.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"time"

	"bba/internal/campaign"
	"bba/internal/faults"
)

type options struct {
	sessions        int
	shardSize       int
	days            int
	seed            int64
	faultSeed       int64
	faultsOn        bool
	workers         int
	sketch          int
	stripes         int
	stripe          int
	checkpoint      string
	checkpointEvery int
	resume          bool
	merge           string
	report          string
	progressEvery   time.Duration
	// progressHook is a test seam: called with every progress snapshot in
	// addition to the stderr printer.
	progressHook func(campaign.Progress)
}

func main() {
	var o options
	flag.IntVar(&o.sessions, "sessions", 10000, "paired session draws (each streamed once per group)")
	flag.IntVar(&o.shardSize, "shard-size", 1024, "paired sessions per shard (part of the campaign identity)")
	flag.IntVar(&o.days, "days", 3, "simulated calendar days")
	flag.Int64Var(&o.seed, "seed", 2014, "campaign seed")
	flag.Int64Var(&o.faultSeed, "fault-seed", 2014, "fault-weather seed (with -faults)")
	flag.BoolVar(&o.faultsOn, "faults", false, "run every session under the standard fault schedule")
	flag.IntVar(&o.workers, "workers", 0, "worker goroutines (default GOMAXPROCS)")
	flag.IntVar(&o.sketch, "sketch", 512, "quantile-sketch size per metric (part of the campaign identity)")
	flag.IntVar(&o.stripes, "shards", 1, "total process stripes the campaign is split across")
	flag.IntVar(&o.stripe, "shard-of", 0, "this process's stripe index in [0,-shards)")
	flag.StringVar(&o.checkpoint, "checkpoint", "", "checkpoint file path (written periodically and on exit; resumed from when present)")
	flag.IntVar(&o.checkpointEvery, "checkpoint-every", 8, "completed shards between checkpoint writes")
	flag.StringVar(&o.merge, "merge", "", "comma-separated stripe checkpoints to merge into a final report (runs nothing)")
	flag.StringVar(&o.report, "report", "", "final report path (default stdout)")
	flag.DurationVar(&o.progressEvery, "progress-every", 2*time.Second, "progress line interval on stderr (0 disables)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if err := run(ctx, os.Stdout, os.Stderr, o); err != nil {
		fmt.Fprintln(os.Stderr, "bbacampaign:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, out io.Writer, errw io.Writer, o options) error {
	if o.merge != "" {
		return runMerge(out, o)
	}

	cfg := campaign.Config{
		Seed:            o.seed,
		Sessions:        o.sessions,
		ShardSize:       o.shardSize,
		Days:            o.days,
		Parallelism:     o.workers,
		SketchSize:      o.sketch,
		Stripe:          o.stripe,
		Stripes:         o.stripes,
		CheckpointPath:  o.checkpoint,
		CheckpointEvery: o.checkpointEvery,
	}
	if o.faultsOn {
		fc := faults.DefaultScheduleConfig()
		cfg.Faults = &fc
		cfg.FaultSeed = o.faultSeed
	}
	if o.checkpoint != "" {
		if cp, err := campaign.LoadCheckpoint(o.checkpoint); err == nil {
			cfg.Resume = cp
			fmt.Fprintf(errw, "resuming from %s: %d shards (%d sessions) already recorded\n",
				o.checkpoint, cp.CompletedShards(), cp.SessionsDone())
		} else if !errors.Is(err, os.ErrNotExist) {
			return err
		}
	}
	if o.progressEvery > 0 {
		cfg.Progress = progressPrinter(errw, o.progressEvery)
	}
	if o.progressHook != nil {
		printer := cfg.Progress
		cfg.Progress = func(p campaign.Progress) {
			if printer != nil {
				printer(p)
			}
			o.progressHook(p)
		}
	}

	res, runErr := campaign.RunContext(ctx, cfg)
	if res != nil {
		printStats(errw, res.Stats)
	}
	if runErr != nil {
		// A cancelled run still has a resumable checkpoint and a best-effort
		// truncated report; anything else is a hard failure.
		if errors.Is(runErr, context.Canceled) && res != nil && res.Checkpoint != nil {
			if trunc, err := campaign.TruncatedReport(res.Checkpoint); err == nil {
				if err := writeReport(out, o.report, trunc); err != nil {
					return err
				}
			}
			if o.checkpoint != "" {
				fmt.Fprintf(errw, "interrupted: checkpoint saved to %s; rerun the same command to resume\n", o.checkpoint)
			}
			return fmt.Errorf("interrupted after %d shards: %w", res.Checkpoint.CompletedShards(), runErr)
		}
		return runErr
	}

	if res.Report == nil {
		// A stripe subset: the checkpoint is the product; the report comes
		// from -merge once every stripe has run.
		fmt.Fprintf(errw, "stripe %d/%d complete: %d shards in checkpoint; merge all stripes with -merge for the final report\n",
			o.stripe, o.stripes, res.Checkpoint.CompletedShards())
		if o.checkpoint == "" {
			return fmt.Errorf("stripe run without -checkpoint produces no output; pass -checkpoint")
		}
		return nil
	}
	return writeReport(out, o.report, res.Report)
}

// runMerge combines stripe checkpoints into the final report.
func runMerge(out io.Writer, o options) error {
	var cps []*campaign.Checkpoint
	for _, path := range strings.Split(o.merge, ",") {
		cp, err := campaign.LoadCheckpoint(strings.TrimSpace(path))
		if err != nil {
			return err
		}
		cps = append(cps, cp)
	}
	merged, err := campaign.MergeCheckpoints(cps...)
	if err != nil {
		return err
	}
	rep, err := campaign.FinalReport(merged)
	if err != nil {
		return err
	}
	return writeReport(out, o.report, rep)
}

func writeReport(out io.Writer, path string, r *campaign.Report) error {
	if path == "" {
		return r.WriteJSON(out)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// progressPrinter returns a Progress callback that writes a throttled
// status line: shard and session counts, sessions/s, ETA and the live
// rebuffer-rate delta of each arm against the control.
func progressPrinter(w io.Writer, every time.Duration) func(campaign.Progress) {
	var last time.Duration
	return func(p campaign.Progress) {
		if p.Elapsed-last < every && p.SessionsDone < p.SessionsTotal {
			return
		}
		last = p.Elapsed
		fmt.Fprintf(w, "shard %d/%d  sessions %d/%d  %.0f/s  eta %v",
			p.ShardsDone, p.ShardsTotal, p.SessionsDone, p.SessionsTotal,
			p.SessionsPerSec, p.ETA.Round(time.Second))
		for i, g := range p.Groups {
			if i == 0 {
				fmt.Fprintf(w, "  [%s %.2f reb/hr", g.Name, g.RebufferRate)
				continue
			}
			fmt.Fprintf(w, " | %s %.2f", g.Name, g.RebufferRate)
			if g.VsControl > 0 {
				fmt.Fprintf(w, " (%.0f%%)", 100*g.VsControl)
			}
		}
		if len(p.Groups) > 0 {
			fmt.Fprint(w, "]")
		}
		fmt.Fprintln(w)
	}
}

func printStats(w io.Writer, s campaign.RunStats) {
	if s.PlayerSessions == 0 {
		return
	}
	fmt.Fprintf(w, "campaign: %d player sessions (%d paired) in %v (%.0f sessions/s, parallelism %d, peak pending %d shards)\n",
		s.PlayerSessions, s.SessionsRun, s.Elapsed.Round(time.Millisecond),
		s.SessionsPerSecond(), s.Parallelism, s.PeakPending)
	if s.Faults > 0 || s.Retries > 0 || s.Degradations > 0 || s.Failovers > 0 {
		fmt.Fprintf(w, "fault injection: %d faults, %d retries, %d degradations, %d failovers\n",
			s.Faults, s.Retries, s.Degradations, s.Failovers)
	}
}
