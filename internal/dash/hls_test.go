package dash

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bba/internal/abr"
	"bba/internal/media"
)

func TestMasterPlaylistRoundTrip(t *testing.T) {
	video := testVideo(t, 20, media.DefaultChunkDuration)
	var buf bytes.Buffer
	if err := WriteMasterPlaylist(&buf, video); err != nil {
		t.Fatal(err)
	}
	m, err := ParseMasterPlaylist(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Variants) != len(video.Ladder) {
		t.Fatalf("%d variants, want %d", len(m.Variants), len(video.Ladder))
	}
	ladder := m.Ladder()
	if err := ladder.Validate(); err != nil {
		t.Fatalf("parsed ladder invalid: %v", err)
	}
	for i, v := range m.Variants {
		if v.Bandwidth != video.Ladder[i] {
			t.Errorf("variant %d bandwidth %v, want %v", i, v.Bandwidth, video.Ladder[i])
		}
		if v.URI != fmt.Sprintf("/playlist/%d.m3u8", i) {
			t.Errorf("variant %d uri %q", i, v.URI)
		}
	}
}

func TestMediaPlaylistRoundTrip(t *testing.T) {
	video := testVideo(t, 12, media.DefaultChunkDuration)
	var buf bytes.Buffer
	if err := WriteMediaPlaylist(&buf, video, 3); err != nil {
		t.Fatal(err)
	}
	m, err := ParseMediaPlaylist(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.SegmentURIs) != 12 {
		t.Fatalf("%d segments, want 12", len(m.SegmentURIs))
	}
	if !m.Ended {
		t.Error("VOD playlist missing ENDLIST")
	}
	if m.TargetDuration != 4*time.Second {
		t.Errorf("target duration %v", m.TargetDuration)
	}
	for k, uri := range m.SegmentURIs {
		if uri != fmt.Sprintf("/chunk/3/%d", k) {
			t.Errorf("segment %d uri %q", k, uri)
		}
		if m.SegmentSecs[k] != 4 {
			t.Errorf("segment %d duration %v", k, m.SegmentSecs[k])
		}
	}
	if err := WriteMediaPlaylist(io.Discard, video, 99); err == nil {
		t.Error("out-of-range rate accepted")
	}
}

func TestParsePlaylistErrors(t *testing.T) {
	if _, err := ParseMasterPlaylist(strings.NewReader("not a playlist")); err == nil {
		t.Error("garbage master accepted")
	}
	if _, err := ParseMasterPlaylist(strings.NewReader("#EXTM3U\n")); err == nil {
		t.Error("variant-free master accepted")
	}
	if _, err := ParseMasterPlaylist(strings.NewReader("#EXTM3U\n#EXT-X-STREAM-INF:BANDWIDTH=oops\nx\n")); err == nil {
		t.Error("bad bandwidth accepted")
	}
	if _, err := ParseMediaPlaylist(strings.NewReader("nope")); err == nil {
		t.Error("garbage media accepted")
	}
	if _, err := ParseMediaPlaylist(strings.NewReader("#EXTM3U\n#EXT-X-ENDLIST\n")); err == nil {
		t.Error("segment-free media accepted")
	}
	if _, err := ParseMediaPlaylist(strings.NewReader("#EXTM3U\n#EXTINF:abc,\nseg\n")); err == nil {
		t.Error("bad EXTINF accepted")
	}
}

func TestServerServesHLS(t *testing.T) {
	video := testVideo(t, 10, media.DefaultChunkDuration)
	srv, err := NewServer(video)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/master.m3u8")
	if err != nil {
		t.Fatal(err)
	}
	master, err := ParseMasterPlaylist(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	// Follow variant 2's URI to its media playlist, then its first
	// segment to a chunk body.
	resp, err = http.Get(ts.URL + master.Variants[2].URI)
	if err != nil {
		t.Fatal(err)
	}
	mediaPl, err := ParseMediaPlaylist(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + mediaPl.SegmentURIs[0])
	if err != nil {
		t.Fatal(err)
	}
	n, _ := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if n != video.ChunkSize(2, 0) {
		t.Errorf("segment body %d bytes, want %d", n, video.ChunkSize(2, 0))
	}
	// Unknown variants 404.
	resp, err = http.Get(ts.URL + "/playlist/99.m3u8")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown variant returned %s", resp.Status)
	}
}

func TestSplitAttrs(t *testing.T) {
	got := splitAttrs(`BANDWIDTH=1000,CODECS="avc1,mp4a",RESOLUTION=1280x720`)
	if len(got) != 3 {
		t.Fatalf("split into %d parts: %v", len(got), got)
	}
	if got[1] != `CODECS="avc1,mp4a"` {
		t.Errorf("quoted comma split: %q", got[1])
	}
}

func TestStreamViaHLS(t *testing.T) {
	video := testVideo(t, 16, 500*time.Millisecond)
	srv, err := NewServer(video)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	res, err := Stream(context.Background(), ClientConfig{
		BaseURL:   ts.URL,
		Algorithm: abr.NewBBA2(),
		UseHLS:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Chunks) != 16 {
		t.Fatalf("downloaded %d chunks, want 16", len(res.Chunks))
	}
	if res.Rebuffers != 0 {
		t.Errorf("rebuffers = %d", res.Rebuffers)
	}
}

func TestStreamManifestModesExclusive(t *testing.T) {
	_, err := Stream(context.Background(), ClientConfig{
		BaseURL:   "http://127.0.0.1:1",
		Algorithm: abr.NewBBA0(),
		UseMPD:    true,
		UseHLS:    true,
	})
	if err == nil {
		t.Error("UseMPD+UseHLS accepted")
	}
}
