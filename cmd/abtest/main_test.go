package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"bba/internal/campaign"
)

func TestList(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), &out, "quick", "", "", true, false, false, false, false); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Fig07RebufferRateBBA0", "Figure 18", "SharedLinkFairness"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("list missing %q", want)
		}
	}
}

func TestSingleFigure(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), &out, "quick", "Fig10VBRChunkSizes", "", false, false, false, false, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "max-to-average ratio") {
		t.Error("figure notes missing")
	}
}

func TestBadInputs(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), &out, "enormous", "", "", false, false, false, false, false); err == nil {
		t.Error("unknown scale accepted")
	}
	if err := run(context.Background(), &out, "quick", "Fig99", "", false, false, false, false, false); err == nil {
		t.Error("unknown figure accepted")
	}
}

// TestStreamAgg pins the -stream-agg path: the weekend experiment routed
// through the campaign accumulators, emitting per-group JSON with no raw
// session retention.
func TestStreamAgg(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), &out, "quick", "", "", false, false, false, false, true); err != nil {
		t.Fatal(err)
	}
	var reports []campaign.GroupReport
	if err := json.Unmarshal(out.Bytes(), &reports); err != nil {
		t.Fatalf("stream-agg output is not a JSON group report: %v", err)
	}
	if len(reports) == 0 {
		t.Fatal("stream-agg emitted no groups")
	}
	seen := map[string]bool{}
	for _, r := range reports {
		seen[r.Name] = true
		if r.Sessions == 0 {
			t.Errorf("group %s aggregated zero sessions", r.Name)
		}
		if r.AvgRateKbps.N != r.Sessions {
			t.Errorf("group %s: avg-rate samples %d != sessions %d", r.Name, r.AvgRateKbps.N, r.Sessions)
		}
	}
	if !seen["Control"] || !seen["BBA-2"] {
		t.Errorf("stream-agg groups incomplete: %v", seen)
	}
}

// TestStreamAggCustomGroups pins the -groups flag: any registered
// algorithms can stand in as the experiment arms, and an unknown name is
// rejected with the registry's enumerating error.
func TestStreamAggCustomGroups(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), &out, "quick", "", "BBA-2, BOLA", false, false, false, false, true); err != nil {
		t.Fatal(err)
	}
	var reports []campaign.GroupReport
	if err := json.Unmarshal(out.Bytes(), &reports); err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 || reports[0].Name != "BBA-2" || reports[1].Name != "BOLA" {
		t.Errorf("custom arms: %+v", reports)
	}

	err := run(context.Background(), &out, "quick", "", "BBA-2,nope", false, false, false, false, true)
	if err == nil || !strings.Contains(err.Error(), "nope") {
		t.Errorf("unknown group: %v", err)
	}
}

// TestCanceledContext pins the SIGINT path: a canceled context must abort
// with a non-zero error even when the experiment cache can serve the
// outcome, and any output produced must carry the truncation marker — the
// regression was an interrupted run reporting exactly like a normal one.
func TestCanceledContext(t *testing.T) {
	// Populate the experiment cache first, so the canceled run below hits
	// the worst case: output fully available without touching the context.
	var warm bytes.Buffer
	if err := run(context.Background(), &warm, "quick", "", "", false, false, true, false, false); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out bytes.Buffer
	err := run(ctx, &out, "quick", "", "", false, false, true, false, false)
	if err == nil {
		t.Fatal("canceled run returned nil (would exit zero)")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if out.Len() > 0 && !strings.Contains(out.String(), "# TRUNCATED") {
		t.Error("canceled run produced output without the truncation marker")
	}

	// The uncached path — dispatch surfaces the cancellation itself (a
	// different scale misses the warmed cache) — must carry the marker too.
	var cold bytes.Buffer
	err = run(ctx, &cold, "full", "", "", false, false, true, false, false)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("uncached canceled run: err = %v, want context.Canceled", err)
	}
	if !strings.Contains(cold.String(), "# TRUNCATED") {
		t.Error("uncached canceled run lacks the truncation marker")
	}
}
