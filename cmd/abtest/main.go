// Command abtest runs the weekend-scale A/B experiment and regenerates the
// paper's figures as text tables. Figure generation fans out across cores
// with the shared weekend experiment computed once; SIGINT cancels a run in
// flight, marks any partial output "# TRUNCATED" and exits non-zero. After
// any path that runs the weekend experiment, the wall-clock time and
// simulated sessions/sec are reported on stderr.
//
// Examples:
//
//	abtest                       # every figure, quick scale
//	abtest -fig Fig18SteadyStateRate
//	abtest -scale full -experiments-md > EXPERIMENTS.md
//	abtest -stream-agg           # constant-memory accumulator report
//	abtest -list
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"time"

	"bba/internal/abr"
	"bba/internal/abtest"
	"bba/internal/campaign"
	"bba/internal/faults"
	"bba/internal/figures"
	"bba/internal/metrics"
)

func main() {
	var (
		scaleName = flag.String("scale", "quick", "experiment scale: quick or full")
		figName   = flag.String("fig", "", "regenerate a single figure by name (see -list)")
		list      = flag.Bool("list", false, "list every reproducible figure and exit")
		mdOut     = flag.Bool("experiments-md", false, "emit the EXPERIMENTS.md body to stdout")
		csvOut    = flag.Bool("csv", false, "emit the weekend experiment's per-window aggregates as CSV")
		faultsOn  = flag.Bool("faults", false, "replay the weekend experiment under the standard fault schedule and emit its CSV (fault counters go to stderr)")
		streamAgg = flag.Bool("stream-agg", false, "run the weekend experiment through the campaign accumulators (constant memory) and emit the per-group JSON report")
		groups    = flag.String("groups", "", "comma-separated experiment arms for -csv/-faults/-stream-agg (default the paper's standard groups); registered: "+strings.Join(abr.Names(), ", "))
	)
	flag.Parse()

	// SIGINT cancels the experiment and figure generation promptly: the
	// context reaches every harness worker's per-chunk check.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if err := run(ctx, os.Stdout, *scaleName, *figName, *groups, *list, *mdOut, *csvOut, *faultsOn, *streamAgg); err != nil {
		fmt.Fprintln(os.Stderr, "abtest:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, out io.Writer, scaleName, figName, groups string, list, mdOut, csvOut, faultsOn, streamAgg bool) error {
	var scale figures.Scale
	switch scaleName {
	case "quick":
		scale = figures.Quick
	case "full":
		scale = figures.Full
	default:
		return fmt.Errorf("unknown scale %q (want quick or full)", scaleName)
	}

	if list {
		for _, e := range figures.All() {
			fmt.Fprintf(out, "%-28s %s\n", e.Name, e.Paper)
		}
		return nil
	}

	err := dispatch(ctx, out, scale, figName, groups, mdOut, csvOut, faultsOn, streamAgg)
	// A canceled context can reach here two ways: dispatch surfaces the
	// cancellation itself, or — because the figure cache returns completed
	// outcomes regardless of ctx — dispatch succeeds with output written.
	// Either way an interrupted run must not masquerade as a normal one:
	// mark whatever was written truncated and exit non-zero.
	if ctxErr := ctx.Err(); ctxErr != nil {
		fmt.Fprintln(out, "# TRUNCATED: run interrupted; output above is incomplete")
		if err == nil {
			err = ctxErr
		}
		return fmt.Errorf("interrupted: %w", err)
	}
	return err
}

func dispatch(ctx context.Context, out io.Writer, scale figures.Scale, figName, groups string, mdOut, csvOut, faultsOn, streamAgg bool) error {
	defer reportExperimentStats(scale)

	// -groups swaps the experiment arms on the run-producing paths; any
	// registered algorithm can stand in for the paper's standard groups.
	arms, err := parseGroups(groups)
	if err != nil {
		return err
	}

	if streamAgg {
		return runStreamAgg(ctx, out, scale, arms)
	}

	if faultsOn {
		// The fault replay is the clean weekend population under the
		// standard fault weather; it is never cached, so its stats (and
		// the fault counters) are printed directly.
		cfg := figures.ExperimentConfig(scale)
		cfg.Groups = arms
		fc := faults.DefaultScheduleConfig()
		cfg.Faults = &fc
		cfg.FaultSeed = figures.ExperimentSeed
		o, err := abtest.RunContext(ctx, cfg)
		if err != nil {
			return err
		}
		printRunStats(o.Stats)
		return o.WriteCSV(out)
	}

	if mdOut {
		return figures.WriteMarkdownContext(ctx, out, scale)
	}

	if csvOut {
		if arms != nil {
			// Custom arms bypass the shared cached weekend experiment.
			cfg := figures.ExperimentConfig(scale)
			cfg.Groups = arms
			o, err := abtest.RunContext(ctx, cfg)
			if err != nil {
				return err
			}
			printRunStats(o.Stats)
			return o.WriteCSV(out)
		}
		o, err := figures.ExperimentOutcomeContext(ctx, scale)
		if err != nil {
			return err
		}
		return o.WriteCSV(out)
	}

	if figName != "" {
		entry, ok := figures.Lookup(figName)
		if !ok {
			return fmt.Errorf("unknown figure %q (try -list)", figName)
		}
		fig, err := entry.Gen(scale)
		if err != nil {
			return err
		}
		return fig.WriteTable(out)
	}

	for _, g := range figures.GenerateAll(ctx, scale) {
		if g.Err != nil {
			return fmt.Errorf("%s: %w", g.Entry.Name, g.Err)
		}
		if err := g.Fig.WriteTable(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	return nil
}

// runStreamAgg runs the weekend experiment in streaming-aggregation mode:
// no raw session retention; every merged session folds into the campaign
// layer's per-group constant-memory accumulators, and the per-group report
// is emitted as JSON. This is the -stream-agg path the campaign runner is
// built on, exposed at weekend scale.
func runStreamAgg(ctx context.Context, out io.Writer, scale figures.Scale, arms []abtest.Group) error {
	cfg := figures.ExperimentConfig(scale)
	cfg.Groups = arms
	if len(cfg.Groups) == 0 {
		cfg.Groups = abtest.StandardGroups()
	}
	index := make(map[string]int, len(cfg.Groups))
	counts := make([]uint64, len(cfg.Groups))
	accums := make([]*campaign.GroupAccum, len(cfg.Groups))
	for gi, g := range cfg.Groups {
		index[g.Name] = gi
		accums[gi] = campaign.NewGroupAccum(g.Name, 512)
	}
	var foldErr error
	cfg.OnSession = func(group string, s metrics.Session) {
		gi := index[group]
		// Key = (per-group ordinal, group): unique across the run, so the
		// sketches keep exact set-union semantics.
		key := counts[gi]<<8 | uint64(gi)
		counts[gi]++
		if err := accums[gi].AddSession(key, s); err != nil && foldErr == nil {
			foldErr = err
		}
	}
	o, err := abtest.RunContext(ctx, cfg)
	if err != nil {
		return err
	}
	if foldErr != nil {
		return foldErr
	}
	if n := len(o.Sessions[cfg.Groups[0].Name]); n != 0 {
		return fmt.Errorf("streaming run retained %d raw sessions", n)
	}
	printRunStats(o.Stats)
	reports := make([]campaign.GroupReport, len(accums))
	for gi, a := range accums {
		reports[gi] = a.Report()
	}
	return writeJSON(out, reports)
}

// parseGroups resolves a comma-separated -groups list against the
// algorithm registry; empty means "keep the path's default arms" (nil).
func parseGroups(groups string) ([]abtest.Group, error) {
	if groups == "" {
		return nil, nil
	}
	var names []string
	for _, name := range strings.Split(groups, ",") {
		if name = strings.TrimSpace(name); name != "" {
			names = append(names, name)
		}
	}
	return abtest.Groups(names...)
}

func writeJSON(out io.Writer, v any) error {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// reportExperimentStats prints the weekend experiment's wall-clock time and
// simulated-session throughput to stderr, when one ran. Full-scale runs
// read their speedup directly from this line.
func reportExperimentStats(scale figures.Scale) {
	stats, ok := figures.ExperimentStats(scale)
	if !ok {
		return
	}
	printRunStats(stats)
}

// printRunStats writes one run's wall-clock line, and — when any fault
// activity occurred — its fault-injection counters, to stderr.
func printRunStats(stats abtest.RunStats) {
	fmt.Fprintf(os.Stderr, "weekend experiment: %d sessions in %v (%.0f sessions/s, parallelism %d)\n",
		stats.Sessions, stats.Elapsed.Round(time.Millisecond), stats.SessionsPerSecond(), stats.Parallelism)
	if stats.Faults > 0 || stats.Retries > 0 || stats.Degradations > 0 || stats.Failovers > 0 {
		fmt.Fprintf(os.Stderr, "fault injection: %d faults, %d retries, %d degradations, %d failovers\n",
			stats.Faults, stats.Retries, stats.Degradations, stats.Failovers)
	}
}
