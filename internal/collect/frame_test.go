package collect

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	cases := []Frame{
		{Run: "r", Session: 0, Seq: 0, Kind: PayloadEvents, Payload: nil},
		{Run: "campaign-7", Session: 42, Seq: 9, Kind: PayloadShard, Payload: []byte(`{"shard":3}`)},
		{Run: strings.Repeat("x", 255), Session: ^uint64(0), Seq: ^uint64(0), Kind: PayloadRunEnd, Payload: bytes.Repeat([]byte{0xAB}, 4096)},
		{Run: "u", Session: 1, Seq: 2, Kind: PayloadRunStart, Payload: []byte("{}")},
	}
	for _, want := range cases {
		enc := AppendFrame(nil, want)
		if len(enc) != EncodedLen(len(want.Run), len(want.Payload)) {
			t.Fatalf("EncodedLen %d, encoded %d", EncodedLen(len(want.Run), len(want.Payload)), len(enc))
		}
		got, n, err := DecodeFrame(enc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if n != len(enc) {
			t.Fatalf("consumed %d of %d", n, len(enc))
		}
		if got.Run != want.Run || got.Session != want.Session || got.Seq != want.Seq || got.Kind != want.Kind || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("round trip mismatch: got %+v want %+v", got, want)
		}
		// Canonical: re-encoding the decoded frame reproduces the bytes.
		if re := AppendFrame(nil, got); !bytes.Equal(re, enc) {
			t.Fatalf("re-encode differs from original")
		}
	}
}

func TestDecodeFrameStream(t *testing.T) {
	a := AppendFrame(nil, Frame{Run: "r", Seq: 1, Kind: PayloadEvents, Payload: []byte("one\n")})
	b := AppendFrame(nil, Frame{Run: "r", Seq: 2, Kind: PayloadEvents, Payload: []byte("two\n")})
	stream := append(append([]byte(nil), a...), b...)
	f1, n1, err := DecodeFrame(stream)
	if err != nil || f1.Seq != 1 {
		t.Fatalf("first frame: %v %+v", err, f1)
	}
	f2, n2, err := DecodeFrame(stream[n1:])
	if err != nil || f2.Seq != 2 {
		t.Fatalf("second frame: %v %+v", err, f2)
	}
	if n1+n2 != len(stream) {
		t.Fatalf("consumed %d of %d", n1+n2, len(stream))
	}
}

func TestDecodeFrameTruncated(t *testing.T) {
	enc := AppendFrame(nil, Frame{Run: "run", Session: 5, Seq: 7, Kind: PayloadEvents, Payload: []byte("payload bytes")})
	for n := 0; n < len(enc); n++ {
		if _, _, err := DecodeFrame(enc[:n]); !errors.Is(err, ErrShortFrame) {
			t.Fatalf("prefix %d/%d: got %v, want ErrShortFrame", n, len(enc), err)
		}
	}
}

func TestDecodeFrameCorrupt(t *testing.T) {
	enc := AppendFrame(nil, Frame{Run: "run", Session: 5, Seq: 7, Kind: PayloadEvents, Payload: []byte("payload")})
	// Any single flipped bit must surface as an error, never a panic or a
	// silently different frame.
	for i := range enc {
		bad := append([]byte(nil), enc...)
		bad[i] ^= 0x01
		if _, _, err := DecodeFrame(bad); err == nil {
			t.Fatalf("flip at byte %d decoded cleanly", i)
		}
	}
}

func TestDecodeFrameBad(t *testing.T) {
	valid := AppendFrame(nil, Frame{Run: "r", Kind: PayloadEvents, Payload: []byte("x")})

	badMagic := append([]byte(nil), valid...)
	badMagic[0] = 0x00
	if _, _, err := DecodeFrame(badMagic); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("bad magic: %v", err)
	}

	badVersion := append([]byte(nil), valid...)
	badVersion[2] = 99
	if _, _, err := DecodeFrame(badVersion); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("bad version: %v", err)
	}

	emptyRun := append([]byte(nil), valid...)
	emptyRun[4] = 0
	if _, _, err := DecodeFrame(emptyRun); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("empty run: %v", err)
	}

	// An adversarial payload length must be rejected before any buffering,
	// not satisfied with ErrShortFrame forever by a stream reader.
	hugeLen := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(hugeLen[headerLen+1+16:], ^uint32(0))
	if _, _, err := DecodeFrame(hugeLen); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("huge payload length: %v", err)
	}

	checksum := append([]byte(nil), valid...)
	checksum[len(checksum)-1] ^= 0xFF
	if _, _, err := DecodeFrame(checksum); !errors.Is(err, ErrChecksum) {
		t.Fatalf("checksum: %v", err)
	}
}

func TestAppendFramePanics(t *testing.T) {
	mustPanic := func(name string, f Frame) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		AppendFrame(nil, f)
	}
	mustPanic("empty run", Frame{Run: "", Kind: PayloadEvents})
	mustPanic("long run", Frame{Run: strings.Repeat("x", 256), Kind: PayloadEvents})
	mustPanic("big payload", Frame{Run: "r", Kind: PayloadEvents, Payload: make([]byte, MaxPayload+1)})
}

func TestPayloadKindNames(t *testing.T) {
	for k := PayloadEvents; k <= PayloadRunEnd; k++ {
		if k.String() == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if PayloadKind(0).String() != "unknown" || PayloadKind(200).String() != "unknown" {
		t.Fatalf("out-of-range kinds must stringify as unknown")
	}
	if PayloadEvents.Reliable() {
		t.Fatalf("events must ride the best-effort lane")
	}
	for _, k := range []PayloadKind{PayloadRunStart, PayloadShard, PayloadRunEnd} {
		if !k.Reliable() {
			t.Fatalf("%v must be reliable", k)
		}
	}
}
