// Package fluid verifies the paper's Section 3.1 theorems in the idealized
// model they are stated for: infinitesimal chunks (the rate adjusts
// continuously), a continuum of available rates between R_min and R_max,
// CBR encoding, and an infinitely long video.
//
// In that model the buffer evolves by the ODE
//
//	dB/dt = C(t)/f(B) − 1
//
// (data arrives at C(t) and is consumed at the selected rate f(B); one
// second of video plays per second). The theorems, proved in the paper's
// technical report and checked numerically here for arbitrary admissible
// rate maps:
//
//  1. No unnecessary rebuffering: if C(t) ≥ R_min for all t and
//     f(B) → R_min as B → 0, the buffer never runs dry.
//  2. Rate maximization: if f is increasing and eventually reaches R_max,
//     the average selected rate converges to the average capacity whenever
//     R_min < C(t) < R_max for all t.
//
// The integrator is a fixed-step RK4 over the piecewise-constant capacity
// trace; admissible maps are supplied as ordinary functions and validated
// for the theorem's hypotheses (continuous, increasing, pinned ends).
package fluid

import (
	"errors"
	"fmt"
	"math"
	"time"

	"bba/internal/trace"
	"bba/internal/units"
)

// RateMapFunc is a continuous rate map f(B): buffer seconds → bit rate.
type RateMapFunc func(bufferSeconds float64) units.BitRate

// Linear returns the canonical admissible map: R_min through the reservoir,
// then linear to R_max at rampEnd.
func Linear(rmin, rmax units.BitRate, reservoir, rampEnd float64) RateMapFunc {
	return func(b float64) units.BitRate {
		switch {
		case b <= reservoir:
			return rmin
		case b >= rampEnd:
			return rmax
		default:
			frac := (b - reservoir) / (rampEnd - reservoir)
			return rmin + units.BitRate(frac*float64(rmax-rmin))
		}
	}
}

// Validate checks the Section 3.1 admissibility criteria on [0, maxBuffer]:
// f is within [rmin, rmax], non-decreasing, pinned at both ends, and
// without jumps larger than continuity tolerance at the probe resolution.
func Validate(f RateMapFunc, rmin, rmax units.BitRate, maxBuffer float64) error {
	const probes = 2048
	if f(0) != rmin {
		return fmt.Errorf("fluid: f(0) = %v, want pinned at R_min %v", f(0), rmin)
	}
	if f(maxBuffer) != rmax {
		return fmt.Errorf("fluid: f(maxBuffer) = %v, want pinned at R_max %v", f(maxBuffer), rmax)
	}
	// A jump bigger than a few times the expected per-step increment of a
	// monotone continuous function indicates a discontinuity.
	maxJump := 16 * float64(rmax-rmin) / probes
	if minJump := float64(rmax-rmin) / 100; maxJump < minJump {
		maxJump = minJump
	}
	prev := f(0)
	for i := 1; i <= probes; i++ {
		b := maxBuffer * float64(i) / probes
		cur := f(b)
		if cur < rmin || cur > rmax {
			return fmt.Errorf("fluid: f(%.2f) = %v outside [R_min, R_max]", b, cur)
		}
		if cur < prev {
			return fmt.Errorf("fluid: f decreasing at B = %.2f", b)
		}
		if float64(cur-prev) > maxJump {
			return fmt.Errorf("fluid: f jumps by %v near B = %.2f; not continuous", cur-prev, b)
		}
		prev = cur
	}
	return nil
}

// Result is the outcome of a fluid-limit integration.
type Result struct {
	// Rebuffered reports whether the buffer ever hit zero while capacity
	// was at or above R_min (an unnecessary rebuffer).
	Rebuffered bool
	// RebufferAt is the first such time.
	RebufferAt time.Duration
	// AvgSelectedKbps is the time-average of f(B(t)).
	AvgSelectedKbps float64
	// AvgCapacityKbps is the time-average of min(max(C, Rmin), Rmax) —
	// the capacity clipped to the feasible band, which is what theorem 2
	// compares against.
	AvgCapacityKbps float64
	// FinalBuffer is B(T).
	FinalBuffer float64
}

// Config drives one integration.
type Config struct {
	Map        RateMapFunc
	Rmin, Rmax units.BitRate
	Trace      *trace.Trace
	// Horizon is the integration span (default: the trace length).
	Horizon time.Duration
	// Step is the RK4 step (default 50 ms).
	Step time.Duration
	// InitialBuffer is B(0) in seconds (default 0).
	InitialBuffer float64
	// MaxBuffer caps B (the playback buffer size; default 240).
	MaxBuffer float64
}

// Integrate runs the fluid model.
func Integrate(cfg Config) (*Result, error) {
	if cfg.Map == nil {
		return nil, errors.New("fluid: nil rate map")
	}
	if cfg.Trace == nil {
		return nil, errors.New("fluid: nil trace")
	}
	horizon := cfg.Horizon
	if horizon <= 0 {
		horizon = cfg.Trace.Total()
	}
	step := cfg.Step
	if step <= 0 {
		step = 50 * time.Millisecond
	}
	maxBuffer := cfg.MaxBuffer
	if maxBuffer <= 0 {
		maxBuffer = 240
	}

	h := step.Seconds()
	b := cfg.InitialBuffer
	res := &Result{}
	var rateIntegral, capIntegral float64

	deriv := func(b float64, c units.BitRate) float64 {
		r := cfg.Map(clampF(b, 0, maxBuffer))
		if r <= 0 {
			return 0
		}
		return float64(c)/float64(r) - 1
	}

	steps := int(horizon / step)
	for i := 0; i < steps; i++ {
		t := time.Duration(i) * step
		c := cfg.Trace.RateAt(t)

		// Accumulate the theorem-2 averages at the step start.
		rateIntegral += cfg.Map(clampF(b, 0, maxBuffer)).Kilobits() * h
		capIntegral += c.Clamp(cfg.Rmin, cfg.Rmax).Kilobits() * h

		// Classic RK4 on dB/dt with capacity frozen within the step
		// (the trace is piecewise constant at this resolution).
		k1 := deriv(b, c)
		k2 := deriv(b+h/2*k1, c)
		k3 := deriv(b+h/2*k2, c)
		k4 := deriv(b+h*k3, c)
		b += h / 6 * (k1 + 2*k2 + 2*k3 + k4)

		if b > maxBuffer {
			b = maxBuffer
		}
		if b < 0 {
			// A strictly negative buffer is a playback deficit. An
			// empty-but-balanced buffer (C = R_min at B = 0) is not a
			// rebuffer: consumption exactly matches arrival.
			if b < -1e-9 && c >= cfg.Rmin && !res.Rebuffered {
				res.Rebuffered = true
				res.RebufferAt = t
			}
			b = 0
		}
	}
	span := (time.Duration(steps) * step).Seconds()
	if span > 0 {
		res.AvgSelectedKbps = rateIntegral / span
		res.AvgCapacityKbps = capIntegral / span
	}
	res.FinalBuffer = b
	return res, nil
}

func clampF(v, lo, hi float64) float64 {
	return math.Min(math.Max(v, lo), hi)
}
