package bba

import (
	"bytes"
	"context"
	"testing"
	"time"
)

// TestFacadeObserver covers the public telemetry surface: SessionConfig
// gains an Observer, and the re-exported sinks and event kinds are usable
// without importing internal packages.
func TestFacadeObserver(t *testing.T) {
	video, err := NewVBRTitle("facade", 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := SessionConfig{
		Algorithm: NewBBA2(),
		Video:     video,
		Trace:     VariableTrace(3*Mbps, 5.6, 2*time.Hour, 4),
	}

	ring := NewRing(1 << 14)
	var counted int
	cfg.Observer = MultiObserver(ring, ObserverFunc(func(Event) { counted++ }))
	res, err := RunSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	evs := ring.Events()
	if len(evs) == 0 || counted != len(evs)+int(ring.Dropped()) {
		t.Fatalf("fan-out mismatch: ring=%d dropped=%d func=%d", len(evs), ring.Dropped(), counted)
	}
	if evs[0].Kind != EventSessionStart || evs[len(evs)-1].Kind != EventSessionEnd {
		t.Error("session events not bracketed by start/end")
	}
	if n := ring.CountKind(EventRebufferStart); n != res.Rebuffers {
		t.Errorf("rebuffer_start events = %d, Result.Rebuffers = %d", n, res.Rebuffers)
	}
	if ring.CountKind(EventChunkComplete) != len(res.Chunks) {
		t.Error("chunk_complete events disagree with chunk log")
	}
}

// TestFacadeJournalDeterminism is the acceptance criterion at the facade:
// same seed ⇒ byte-identical JSONL journal.
func TestFacadeJournalDeterminism(t *testing.T) {
	journal := func() []byte {
		video, err := NewVBRTitle("det", 200, 9)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		j := NewJournal(&buf)
		_, err = RunSession(SessionConfig{
			Algorithm: NewBBA1(),
			Video:     video,
			Trace:     VariableTrace(2*Mbps, 5.6, time.Hour, 3),
			Observer:  j,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := journal(), journal()
	if len(a) == 0 {
		t.Fatal("journal is empty")
	}
	if !bytes.Equal(a, b) {
		t.Error("same-seed sessions produced different journals")
	}
}

func TestRunSessionContextCancel(t *testing.T) {
	video, err := NewVBRTitle("cancel", 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = RunSessionContext(ctx, SessionConfig{
		Algorithm: NewBBA0(),
		Video:     video,
		Trace:     ConstantTrace(4*Mbps, time.Hour),
	})
	if err != context.Canceled {
		t.Errorf("cancelled session returned %v, want context.Canceled", err)
	}
}
