package campaign

import "bba/internal/metrics"

// Extra is a campaign extension accumulator: per-shard state fed every
// paired draw, folded across shards under the campaign's determinism rule.
// The per-group GroupAccums see each arm's sessions independently; an Extra
// sees each paired draw whole — all arms of one (user, trace, fault-weather)
// draw together — which is what cross-arm statistics (the arena's pairwise
// deltas, win counts, head-to-head CIs) need.
//
// Contract: AddSessionSet is called once per paired draw, in offset order
// within a shard, with ms holding one metrics.Session per configured group
// in group order; global is the draw's campaign-wide index (unique, so it
// can key sketches). Merge folds another shard's accumulator of the same
// concrete type into the receiver; the campaign calls it in ascending
// shard-index order, so — like GroupAccum — any floating-point
// non-associativity is pinned and results are byte-identical at any worker
// count. Implementations need no locking: a shard's Extra is touched by one
// worker, and Merge runs on the collector goroutine.
type Extra interface {
	AddSessionSet(global int64, ms []metrics.Session) error
	Merge(o Extra) error
}
