// Command bbaquery queries the columnar fleet archive, either offline —
// straight off a block directory written by bbacollect -store, no daemon
// needed — or live, against a running collector's /query API.
//
// Offline (reads the directory read-only, safe beside a live daemon):
//
//	bbaquery -dir fleet.archive -runs
//	bbaquery -dir fleet.archive -run run-11 -group BBA-0 -agg
//	bbaquery -dir fleet.archive -run run-11 -kind rebuffer_start,rebuffer_end
//	bbaquery -dir fleet.archive -run run-11 -export > run-11.jsonl
//
// Live (HTTP against bbacollect):
//
//	bbaquery -url http://127.0.0.1:8406 -run run-11 -agg
//	bbaquery -url http://127.0.0.1:8406 -run run-11 -tail
//
// Events print as canonical journal JSONL — the same bytes bbaship
// journals locally — so output pipes into any existing journal tooling.
// Rollups and -runs print as JSON.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"bba/internal/archive"
	"bba/internal/telemetry"
)

type options struct {
	dir string // offline: block directory
	url string // live: collector base URL

	run     string
	kinds   string
	session string
	group   string
	fromNS  int64
	toNS    int64

	agg    bool
	export bool
	runs   bool
	tail   bool
	limit  int
}

func main() {
	var o options
	flag.StringVar(&o.dir, "dir", "", "query a columnar archive directory offline (bbacollect -store)")
	flag.StringVar(&o.url, "url", "", "query a live collector at this base URL instead")
	flag.StringVar(&o.run, "run", "", "run to query")
	flag.StringVar(&o.kinds, "kind", "", "comma-separated event kinds (chunk_complete,rebuffer_start,...)")
	flag.StringVar(&o.session, "session", "", "exact session label")
	flag.StringVar(&o.group, "group", "", "experiment group (session label suffix)")
	flag.Int64Var(&o.fromNS, "from", 0, "inclusive lower bound on the session clock, in ns")
	flag.Int64Var(&o.toNS, "to", 0, "inclusive upper bound in ns (0: unbounded)")
	flag.BoolVar(&o.agg, "agg", false, "print the per-group rollup instead of events")
	flag.BoolVar(&o.export, "export", false, "re-export the run's full admitted journal, byte-for-byte")
	flag.BoolVar(&o.runs, "runs", false, "list archived runs and storage stats")
	flag.BoolVar(&o.tail, "tail", false, "stream admitted batches live (-url only)")
	flag.IntVar(&o.limit, "limit", 100000, "cap on printed events")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Stdout, o); err != nil {
		fmt.Fprintln(os.Stderr, "bbaquery:", err)
		os.Exit(1)
	}
}

// run executes one query and writes the result to out.
func run(ctx context.Context, out io.Writer, o options) error {
	if (o.dir == "") == (o.url == "") {
		return errors.New("exactly one of -dir or -url is required")
	}
	if o.tail && o.url == "" {
		return errors.New("-tail needs a live collector (-url)")
	}
	if !o.runs && o.run == "" {
		return errors.New("-run is required (or -runs to list)")
	}
	if o.url != "" {
		return runLive(ctx, out, o)
	}
	return runOffline(out, o)
}

// query builds the archive query from the flags; kind names are validated
// here so both modes reject typos before touching the store.
func (o options) query() (archive.Query, error) {
	q := archive.Query{
		Run:     o.run,
		Session: o.session,
		Group:   o.group,
		From:    time.Duration(o.fromNS),
		To:      time.Duration(o.toNS),
	}
	if o.kinds != "" {
		for _, name := range strings.Split(o.kinds, ",") {
			k, ok := telemetry.ParseKind(strings.TrimSpace(name))
			if !ok {
				return q, fmt.Errorf("unknown kind %q", name)
			}
			q.Kinds = append(q.Kinds, k)
		}
	}
	return q, nil
}

// runOffline opens the block directory read-only and answers from it
// directly — pruning, scanning and aggregating exactly as the daemon does.
func runOffline(out io.Writer, o options) error {
	st, err := archive.OpenReadOnly(o.dir)
	if err != nil {
		return err
	}
	defer st.Close()
	switch {
	case o.runs:
		return printJSON(out, st.Stats())
	case o.export:
		return st.Export(o.run, out)
	}
	q, err := o.query()
	if err != nil {
		return err
	}
	if o.agg {
		rollup, err := st.Aggregate(q)
		if err != nil {
			return err
		}
		return printJSON(out, rollup)
	}
	var line []byte
	var werr error
	n := 0
	if err := st.Scan(q, func(e telemetry.Event) bool {
		line = telemetry.AppendJSONL(line[:0], e)
		if _, werr = out.Write(line); werr != nil {
			return false
		}
		n++
		return n < o.limit
	}); err != nil {
		return err
	}
	return werr
}

// runLive translates the flags into the collector's /runs, /query or
// /tail endpoints and streams the response body to out.
func runLive(ctx context.Context, out io.Writer, o options) error {
	if _, err := o.query(); err != nil { // validate kinds client-side
		return err
	}
	base := strings.TrimSuffix(o.url, "/")
	var target string
	switch {
	case o.runs:
		target = base + "/runs"
	case o.export:
		// The daemon streams canonical JSONL; an uncapped query is the
		// live equivalent of an export.
		target = base + "/query?" + o.params(1<<31-1).Encode()
	case o.tail:
		v := url.Values{}
		v.Set("run", o.run)
		target = base + "/tail?" + v.Encode()
	default:
		target = base + "/query?" + o.params(o.limit).Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("%s: %s: %s", target, resp.Status, strings.TrimSpace(string(body)))
	}
	_, err = io.Copy(out, resp.Body)
	if o.tail && (errors.Is(err, context.Canceled) || ctx.Err() != nil) {
		return nil // interrupted tail is a clean exit
	}
	return err
}

// params renders the query flags as /query URL parameters.
func (o options) params(limit int) url.Values {
	v := url.Values{}
	v.Set("run", o.run)
	if o.kinds != "" {
		v.Set("kind", o.kinds)
	}
	if o.session != "" {
		v.Set("session", o.session)
	}
	if o.group != "" {
		v.Set("group", o.group)
	}
	if o.fromNS > 0 {
		v.Set("from_ns", strconv.FormatInt(o.fromNS, 10))
	}
	if o.toNS > 0 {
		v.Set("to_ns", strconv.FormatInt(o.toNS, 10))
	}
	if o.agg {
		v.Set("agg", "1")
	} else {
		v.Set("limit", strconv.Itoa(limit))
	}
	return v
}

func printJSON(out io.Writer, v any) error {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
