// Command bbabench is the benchmark-regression runner: it executes a
// curated set of engine, harness and figure benchmarks through
// testing.Benchmark and writes the results as BENCH_sessions.json — one
// machine-readable datapoint of the repository's performance trajectory.
//
//	go run ./cmd/bbabench -quick                 # CI-sized run
//	go run ./cmd/bbabench -out BENCH_sessions.json
//	go run ./cmd/bbabench -ingest-out BENCH_ingest.json  # fleet-collection suite
//
// Compare two commits by running it on each and diffing the JSON; the
// committed BENCH_sessions.json holds the most recent reference datapoint
// together with the pre-optimization baseline it is measured against.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"
	"time"

	"bba/internal/abr"
	"bba/internal/abtest"
	"bba/internal/arena"
	"bba/internal/campaign"
	"bba/internal/faults"
	"bba/internal/figures"
	"bba/internal/media"
	"bba/internal/metrics"
	"bba/internal/netem"
	"bba/internal/player"
	"bba/internal/telemetry"
	"bba/internal/trace"
	"bba/internal/units"
)

// Result is one benchmark's measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations,omitempty"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// SessionsPerSec is reported by the campaign-throughput benchmarks:
	// player sessions per second on one worker (sessions/s/core).
	SessionsPerSec float64 `json:"sessions_per_sec,omitempty"`
}

// Report is the BENCH_sessions.json schema.
type Report struct {
	Schema    string `json:"schema"`
	Generated string `json:"generated,omitempty"`
	GoVersion string `json:"go_version"`
	NumCPU    int    `json:"num_cpu"`
	Scale     string `json:"scale"`
	// Baseline carries reference numbers from before the hot-path
	// optimisation PR, so the trajectory's first delta is visible in the
	// file itself.
	Baseline []Result `json:"baseline,omitempty"`
	Results  []Result `json:"results"`
}

// preOptimizationBaseline is BenchmarkSessionSimulation measured at the
// telemetry-subsystem commit, before the trace cursor, the reservoir plan
// and the chunk preallocation landed (go1.22, quick scale).
var preOptimizationBaseline = []Result{
	{Name: "SessionSimulation", NsPerOp: 324640, BytesPerOp: 65753, AllocsPerOp: 12},
}

// bench names one curated benchmark. Quick variants shrink the workload,
// not the measurement: every benchmark still runs to testing.Benchmark's
// steady state.
type bench struct {
	name  string
	run   func(quick bool) func(b *testing.B)
	heavy bool // skipped with -quick
}

// sessionWorkload builds the session fixture once and returns a closure
// that plays one BBA-2 session through it — the unit both sessionBench
// iterations and the smoke test execute.
func sessionWorkload(quick, observed bool) (func() error, error) {
	chunks, watch := 450, 18*time.Minute
	if quick {
		chunks, watch = 150, 6*time.Minute
	}
	video, err := media.NewVBR(media.VBRConfig{
		Title: "bench", Ladder: media.DefaultLadder(), NumChunks: chunks,
	}, rand.New(rand.NewSource(1)))
	if err != nil {
		return nil, err
	}
	tr := trace.Markov(trace.MarkovConfig{
		Base:     4 * units.Mbps,
		Sigma:    trace.SigmaForQuartileRatio(3),
		Duration: 30 * time.Minute,
	}, rand.New(rand.NewSource(2)))
	var events int
	return func() error {
		cfg := player.Config{
			Algorithm:  abr.NewBBA2(),
			Stream:     abr.NewStream(video, 0),
			Trace:      tr,
			WatchLimit: watch,
		}
		if observed {
			cfg.Observer = telemetry.Func(func(telemetry.Event) { events++ })
		}
		_, err := player.Run(cfg)
		return err
	}, nil
}

// sessionBench is the cmd-level twin of the repository root's
// BenchmarkSessionSimulation: one 18-minute BBA-2 session over a variable
// trace per iteration.
func sessionBench(observed bool) func(quick bool) func(b *testing.B) {
	return func(quick bool) func(b *testing.B) {
		return func(b *testing.B) {
			run, err := sessionWorkload(quick, observed)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := run(); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

func benches() []bench {
	return []bench{
		{name: "SessionSimulation", run: sessionBench(false)},
		{name: "SessionSimulationObserved", run: sessionBench(true)},
		{name: "TraceDownloadTimeStateless", run: traceBench(false)},
		{name: "TraceDownloadTimeCursor", run: traceBench(true)},
		{name: "NetemShaperTake", run: netemBench},
		{name: "ABHarness", run: harnessBench, heavy: false},
		{name: "ScalarSessions", run: campaignBench(false)},
		{name: "BatchSessions", run: campaignBench(true)},
		{name: "CoordThroughput", run: coordBench},
		{name: "CampaignAccumMerge", run: accumMergeBench},
		{name: "ArenaTournament", run: arenaBench},
		{name: "GenerateAllFigures", run: figuresBench, heavy: true},
	}
}

// benchCampaign is the campaign-throughput fixture: the standard six-arm
// paired campaign on a single worker, so ns/op and the derived sessions/s
// are per-core numbers.
func benchCampaign(sessions int, batch bool) campaign.Config {
	return campaign.Config{
		Seed:        17,
		Sessions:    sessions,
		ShardSize:   64,
		CatalogSize: 8,
		SketchSize:  256,
		Parallelism: 1,
		Batch:       batch,
	}
}

// campaignBench measures end-to-end campaign execution — draw, simulate,
// fold — through the scalar path or the batch kernel. The batch variant
// first verifies at reduced scale that the two paths produce byte-identical
// reports, so a CI smoke run of this benchmark doubles as a divergence
// check. Both variants report sessions/s (player sessions per second per
// core) alongside ns/op.
func campaignBench(batch bool) func(quick bool) func(b *testing.B) {
	return func(quick bool) func(b *testing.B) {
		sessions := 512
		if quick {
			sessions = 96
		}
		return func(b *testing.B) {
			if batch {
				scalar, err := campaign.Run(benchCampaign(48, false))
				if err != nil {
					b.Fatal(err)
				}
				batched, err := campaign.Run(benchCampaign(48, true))
				if err != nil {
					b.Fatal(err)
				}
				want, err := json.Marshal(scalar.Report)
				if err != nil {
					b.Fatal(err)
				}
				got, err := json.Marshal(batched.Report)
				if err != nil {
					b.Fatal(err)
				}
				if string(got) != string(want) {
					b.Fatal("batch campaign report diverges from scalar report")
				}
			}
			cfg := benchCampaign(sessions, batch)
			var players int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err := campaign.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				players = out.Stats.PlayerSessions
			}
			b.StopTimer()
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(players)*float64(b.N)/secs, "sessions/s")
			}
		}
	}
}

// arenaBench measures a 3-way paired tournament under fault weather —
// every draw streamed once per entrant plus the pairwise delta folds, the
// unit of work an arena report scales with.
func arenaBench(quick bool) func(b *testing.B) {
	sessions := 256
	if quick {
		sessions = 48
	}
	return func(b *testing.B) {
		fc := faults.DefaultScheduleConfig()
		cfg := arena.Config{
			Seed:       5,
			FaultSeed:  5,
			Faults:     &fc,
			Sessions:   sessions,
			ShardSize:  16,
			SketchSize: 256,
			Entrants:   []string{"BBA-2", "BOLA", "SmoothThroughput"},
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := arena.Run(cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// accumMergeBench measures the campaign's merge path in isolation: folding
// a fleet of populated shard accumulators into a prefix in shard order —
// the per-shard cost every checkpoint fold and stripe merge pays,
// independent of session simulation.
func accumMergeBench(quick bool) func(b *testing.B) {
	shards, perShard := 64, 1024
	if quick {
		shards, perShard = 16, 256
	}
	return func(b *testing.B) {
		rng := rand.New(rand.NewSource(3))
		fleet := make([][]*campaign.GroupAccum, shards)
		key := uint64(0)
		for s := range fleet {
			fleet[s] = campaign.NewGroupAccums([]string{"Control", "BBA-2"}, 512)
			for i := 0; i < perShard; i++ {
				sess := metrics.Session{
					PlayHours:       0.1 + rng.Float64(),
					Rebuffers:       rng.Intn(4),
					Switches:        rng.Intn(20),
					AvgRateKbps:     500 + 3000*rng.Float64(),
					SteadyRateKbps:  500 + 3000*rng.Float64(),
					SteadyReached:   true,
					StartupRateKbps: 300 + 2000*rng.Float64(),
					QoE:             rng.Float64(),
				}
				for _, a := range fleet[s] {
					if err := a.AddSession(key, sess); err != nil {
						b.Fatal(err)
					}
					key++
				}
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			prefix := campaign.NewGroupAccums([]string{"Control", "BBA-2"}, 512)
			for _, shard := range fleet {
				for gi, a := range shard {
					if err := prefix[gi].Merge(a); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	}
}

// traceBench sweeps monotone chunk downloads through the stateless API or
// a cursor — the isolated cost of the trace integral.
func traceBench(cursor bool) func(quick bool) func(b *testing.B) {
	return func(bool) func(b *testing.B) {
		return func(b *testing.B) {
			tr := trace.Markov(trace.MarkovConfig{
				Duration:  time.Hour,
				MeanDwell: 5 * time.Second,
				Sigma:     1.2,
			}, rand.New(rand.NewSource(7)))
			download := tr.DownloadTime
			if cursor {
				download = tr.Cursor().DownloadTime
			}
			b.ReportAllocs()
			now := time.Duration(0)
			for i := 0; i < b.N; i++ {
				d, ok := download(now, 1<<20)
				if !ok {
					b.Fatal("transfer failed")
				}
				now += d
				if now > tr.Total() {
					now = 0
				}
			}
		}
	}
}

// netemBench measures the shaper's per-packet accounting in isolation: an
// MTU-sized Take against a constant trace fast enough that the byte
// budget is always already covered, so no iteration ever sleeps — the
// number is the bookkeeping cost every shaped real-HTTP download pays per
// write, not the pacing itself.
func netemBench(bool) func(b *testing.B) {
	return func(b *testing.B) {
		s := netem.NewShaper(trace.Constant(1000*units.Gbps, time.Hour))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Take(1200)
		}
	}
}

// harnessBench runs a reduced weekend experiment through the streaming
// worker pool, journaling telemetry so the in-order merge is on the
// measured path.
func harnessBench(quick bool) func(b *testing.B) {
	sessions := 4
	if quick {
		sessions = 2
	}
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, err := abtest.Run(abtest.Config{
				Seed:              11,
				Days:              1,
				SessionsPerWindow: sessions,
				CatalogSize:       4,
				Observer:          telemetry.Func(func(telemetry.Event) {}),
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

// figuresBench regenerates the full figure suite; the shared weekend
// experiment is paid once (single-flight) and each iteration measures the
// fan-out regeneration on top of it.
func figuresBench(bool) func(b *testing.B) {
	return func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, g := range figures.GenerateAll(context.Background(), figures.Quick) {
				if g.Err != nil {
					b.Fatal(g.Err)
				}
			}
		}
	}
}

func main() {
	var (
		quick      = flag.Bool("quick", false, "shrink workloads and skip the heavy benchmarks (CI smoke)")
		out        = flag.String("out", "BENCH_sessions.json", "output path, '-' for stdout")
		noStamp    = flag.Bool("no-timestamp", false, "omit the generation timestamp (reproducible output)")
		ingestOut  = flag.String("ingest-out", "", "run only the fleet-collection ingest suite and write its datapoint (BENCH_ingest.json schema) to this path")
		loadOut    = flag.String("load-out", "", "run only the real-socket load suite (client ramp + serving-path micro-benchmarks) and write its datapoint (BENCH_load.json schema) to this path")
		only       = flag.String("only", "", "run only benchmarks whose name contains this substring")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the benchmark run to this file")
		memProfile = flag.String("memprofile", "", "write an allocation profile to this file at exit")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bbabench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "bbabench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bbabench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "bbabench: memprofile:", err)
			}
		}()
	}

	if *ingestOut != "" {
		if err := runIngest(*quick, !*noStamp, *ingestOut); err != nil {
			fmt.Fprintln(os.Stderr, "bbabench:", err)
			os.Exit(1)
		}
		return
	}
	if *loadOut != "" {
		if err := runLoadSuite(*quick, !*noStamp, *loadOut); err != nil {
			fmt.Fprintln(os.Stderr, "bbabench:", err)
			os.Exit(1)
		}
		return
	}

	report := Report{
		Schema:    "bba-bench/v1",
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Scale:     map[bool]string{true: "quick", false: "full"}[*quick],
		Baseline:  preOptimizationBaseline,
	}
	if !*noStamp {
		report.Generated = time.Now().UTC().Format(time.RFC3339)
	}
	for _, bn := range benches() {
		if *only != "" && !strings.Contains(bn.name, *only) {
			continue
		}
		if *quick && bn.heavy {
			fmt.Fprintf(os.Stderr, "skip  %s (heavy)\n", bn.name)
			continue
		}
		r := testing.Benchmark(bn.run(*quick))
		res := Result{
			Name:        bn.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if v, ok := r.Extra["sessions/s"]; ok {
			res.SessionsPerSec = v
		}
		report.Results = append(report.Results, res)
		fmt.Fprintf(os.Stderr, "bench %-28s %12.0f ns/op %10d B/op %6d allocs/op",
			bn.name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
		if res.SessionsPerSec > 0 {
			fmt.Fprintf(os.Stderr, " %10.0f sessions/s", res.SessionsPerSec)
		}
		fmt.Fprintln(os.Stderr)
	}

	if err := write(report, *out); err != nil {
		fmt.Fprintln(os.Stderr, "bbabench:", err)
		os.Exit(1)
	}
}

func write(report any, path string) error {
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
