package campaign

import (
	"errors"
	"fmt"

	"bba/internal/metrics"
	"bba/internal/stats"
)

// GroupAccum is one experiment arm's constant-memory aggregate: integer
// totals plus a streaming Dist (Welford moments + fixed-size mergeable
// quantile sketch) per paper metric. A shard folds its sessions into a
// fresh GroupAccum; the campaign folds shard accumulators in shard-index
// order, so the merged state is bit-identical at any worker count or
// process split. Its JSON form is the checkpoint serialization.
type GroupAccum struct {
	Name     string `json:"name"`
	Sessions int64  `json:"sessions"`
	// Rebuffers, Faults, Retries, Degradations and Failovers are exact
	// integer totals across every session folded in.
	Rebuffers    int64 `json:"rebuffers"`
	Faults       int64 `json:"faults,omitempty"`
	Retries      int64 `json:"retries,omitempty"`
	Degradations int64 `json:"degradations,omitempty"`
	Failovers    int64 `json:"failovers,omitempty"`
	// PlayHours accumulates per-session play hours (Sum() is the group's
	// total play time).
	PlayHours stats.Welford `json:"play_hours"`
	// RebufferRate is the per-session rebuffers-per-playhour distribution
	// (sessions with zero play time excluded, as in RebufferSamples).
	RebufferRate stats.Dist `json:"rebuffer_rate"`
	// AvgRate is the per-session delivered video rate in kb/s.
	AvgRate stats.Dist `json:"avg_rate_kbps"`
	// SteadyRate is the steady-state rate over sessions that reached
	// steady state (Figure 18's metric).
	SteadyRate stats.Dist `json:"steady_rate_kbps"`
	// SwitchRate is per-session switches per playhour.
	SwitchRate stats.Dist `json:"switch_rate"`
	// StartupRate is the first-minute average rate over sessions that
	// delivered any startup chunks.
	StartupRate stats.Dist `json:"startup_rate_kbps"`
	// QoERate is per-session QoE per playhour.
	QoERate stats.Dist `json:"qoe_per_playhour"`
}

// NewGroupAccum returns an empty accumulator whose sketches retain
// sketchSize samples each.
func NewGroupAccum(name string, sketchSize int) *GroupAccum {
	return &GroupAccum{
		Name:         name,
		RebufferRate: stats.NewDist(sketchSize),
		AvgRate:      stats.NewDist(sketchSize),
		SteadyRate:   stats.NewDist(sketchSize),
		SwitchRate:   stats.NewDist(sketchSize),
		StartupRate:  stats.NewDist(sketchSize),
		QoERate:      stats.NewDist(sketchSize),
	}
}

// NewGroupAccums returns one empty accumulator per group name, in order.
func NewGroupAccums(names []string, sketchSize int) []*GroupAccum {
	out := make([]*GroupAccum, len(names))
	for i, n := range names {
		out[i] = NewGroupAccum(n, sketchSize)
	}
	return out
}

// distAdd folds a sample in, tolerating the explicit non-finite filter
// (counted inside the Dist) but propagating real errors such as duplicate
// keys.
func distAdd(d *stats.Dist, x float64, key uint64) error {
	if err := d.Add(x, key); err != nil && !errors.Is(err, stats.ErrNonFinite) {
		return err
	}
	return nil
}

// AddSession folds one session in. key must be unique per (group, session)
// — the campaign uses the global paired-session index — so sketch retention
// stays an unbiased sample and shard merges stay exact set unions.
func (a *GroupAccum) AddSession(key uint64, s metrics.Session) error {
	a.Sessions++
	a.Rebuffers += int64(s.Rebuffers)
	a.Faults += int64(s.Faults)
	a.Retries += int64(s.Retries)
	a.Degradations += int64(s.Degradations)
	a.Failovers += int64(s.Failovers)
	if err := a.PlayHours.Add(s.PlayHours); err != nil {
		return fmt.Errorf("campaign: group %s play hours: %w", a.Name, err)
	}
	if s.PlayHours > 0 {
		if err := distAdd(&a.RebufferRate, float64(s.Rebuffers)/s.PlayHours, key); err != nil {
			return err
		}
		if err := distAdd(&a.SwitchRate, float64(s.Switches)/s.PlayHours, key); err != nil {
			return err
		}
		if err := distAdd(&a.QoERate, s.QoE/s.PlayHours, key); err != nil {
			return err
		}
	}
	if err := distAdd(&a.AvgRate, s.AvgRateKbps, key); err != nil {
		return err
	}
	if s.SteadyReached {
		if err := distAdd(&a.SteadyRate, s.SteadyRateKbps, key); err != nil {
			return err
		}
	}
	if s.StartupRateKbps > 0 {
		if err := distAdd(&a.StartupRate, s.StartupRateKbps, key); err != nil {
			return err
		}
	}
	return nil
}

// Merge folds another accumulator for the same group into a. Merges must
// run in shard-index order for bit-identical results.
func (a *GroupAccum) Merge(o *GroupAccum) error {
	if a.Name != o.Name {
		return fmt.Errorf("campaign: merging group %q into %q", o.Name, a.Name)
	}
	a.Sessions += o.Sessions
	a.Rebuffers += o.Rebuffers
	a.Faults += o.Faults
	a.Retries += o.Retries
	a.Degradations += o.Degradations
	a.Failovers += o.Failovers
	a.PlayHours.Merge(o.PlayHours)
	for _, m := range []struct {
		dst *stats.Dist
		src stats.Dist
	}{
		{&a.RebufferRate, o.RebufferRate},
		{&a.AvgRate, o.AvgRate},
		{&a.SteadyRate, o.SteadyRate},
		{&a.SwitchRate, o.SwitchRate},
		{&a.StartupRate, o.StartupRate},
		{&a.QoERate, o.QoERate},
	} {
		if err := m.dst.Merge(m.src); err != nil {
			return fmt.Errorf("campaign: group %s: %w", a.Name, err)
		}
	}
	return nil
}

// mergeAccumSets folds a shard's per-group accumulators into dst in group
// order.
func mergeAccumSets(dst, src []*GroupAccum) error {
	if len(dst) != len(src) {
		return fmt.Errorf("campaign: merging %d groups into %d", len(src), len(dst))
	}
	for i := range dst {
		if err := dst[i].Merge(src[i]); err != nil {
			return err
		}
	}
	return nil
}

// MetricSummary is one metric's reported aggregate: moments and extrema are
// exact; the quantiles come from the sketch and are exact whenever Exact is
// true (the population fit in the sketch), estimates with error O(1/√K)
// otherwise.
type MetricSummary struct {
	N         int64   `json:"n"`
	Mean      float64 `json:"mean"`
	StdDev    float64 `json:"stddev"`
	Min       float64 `json:"min"`
	P25       float64 `json:"p25"`
	P50       float64 `json:"p50"`
	P75       float64 `json:"p75"`
	P95       float64 `json:"p95"`
	Max       float64 `json:"max"`
	Exact     bool    `json:"exact"`
	NonFinite int64   `json:"non_finite,omitempty"`
}

// SummarizeDist reports a Dist in the campaign's summary form. Exported for
// extension accumulators (the arena's pairwise deltas) whose reports should
// read like the campaign's own.
func SummarizeDist(d stats.Dist) MetricSummary { return summarizeDist(d) }

func summarizeDist(d stats.Dist) MetricSummary {
	s := MetricSummary{
		N:         d.Moments.N,
		Mean:      d.Moments.Mean,
		StdDev:    d.Moments.StdDev(),
		Min:       d.Moments.Min,
		Max:       d.Moments.Max,
		Exact:     d.Sketch.Exact(),
		NonFinite: d.NonFinite,
	}
	if d.Moments.N == 0 {
		return s
	}
	s.P25, _ = d.Sketch.Quantile(25)
	s.P50, _ = d.Sketch.Quantile(50)
	s.P75, _ = d.Sketch.Quantile(75)
	s.P95, _ = d.Sketch.Quantile(95)
	return s
}

// GroupReport is one arm's final aggregates.
type GroupReport struct {
	Name         string  `json:"name"`
	Sessions     int64   `json:"sessions"`
	PlayHours    float64 `json:"play_hours"`
	Rebuffers    int64   `json:"rebuffers"`
	Faults       int64   `json:"faults,omitempty"`
	Retries      int64   `json:"retries,omitempty"`
	Degradations int64   `json:"degradations,omitempty"`
	Failovers    int64   `json:"failovers,omitempty"`
	// RebufferRatePooled is total rebuffers over total play hours — the
	// play-hour-weighted rate the paper's figures report, as opposed to the
	// unweighted per-session distribution below.
	RebufferRatePooled  float64       `json:"rebuffers_per_playhour_pooled"`
	RebufferRate        MetricSummary `json:"rebuffers_per_playhour"`
	AvgRateKbps         MetricSummary `json:"avg_rate_kbps"`
	SteadyRateKbps      MetricSummary `json:"steady_rate_kbps"`
	SwitchesPerPlayhour MetricSummary `json:"switches_per_playhour"`
	StartupRateKbps     MetricSummary `json:"startup_rate_kbps"`
	QoEPerPlayhour      MetricSummary `json:"qoe_per_playhour"`
}

// Report summarizes the accumulator into its reported aggregates.
func (a *GroupAccum) Report() GroupReport {
	r := GroupReport{
		Name:         a.Name,
		Sessions:     a.Sessions,
		PlayHours:    a.PlayHours.Sum(),
		Rebuffers:    a.Rebuffers,
		Faults:       a.Faults,
		Retries:      a.Retries,
		Degradations: a.Degradations,
		Failovers:    a.Failovers,

		RebufferRate:        summarizeDist(a.RebufferRate),
		AvgRateKbps:         summarizeDist(a.AvgRate),
		SteadyRateKbps:      summarizeDist(a.SteadyRate),
		SwitchesPerPlayhour: summarizeDist(a.SwitchRate),
		StartupRateKbps:     summarizeDist(a.StartupRate),
		QoEPerPlayhour:      summarizeDist(a.QoERate),
	}
	if h := a.PlayHours.Sum(); h > 0 {
		r.RebufferRatePooled = float64(a.Rebuffers) / h
	}
	return r
}
