package abr

import (
	"time"

	"bba/internal/units"
)

// Control is a representative capacity-estimation ABR algorithm in the
// mould of the paper's Figure 3 and its description of the production
// default: "it picks a video rate primarily based on capacity estimation,
// with buffer occupancy as a secondary signal".
//
// The estimator Ĉ is an exponentially weighted moving average of per-chunk
// throughput. The selected rate is the highest ladder rate no greater than
// F(B)·Ĉ, where the adjustment F(B) rises linearly from FMin on an empty
// buffer to FMax once the buffer exceeds AdjustmentSpan — conservative when
// the buffer is low, aggressive when it is high, exactly the pattern
// Section 2.2 describes. Because F is a fixed compromise, a sharp capacity
// drop leaves the lagging estimate too high and the adjustment "not small
// enough to offset the difference" (Figure 4): the client rides a too-high
// rate into an unnecessary rebuffer. That failure mode is intrinsic to this
// design and is what the buffer-based algorithms eliminate.
//
// An up-switch additionally requires the adjusted estimate to clear the
// candidate rate by UpMargin, a light hysteresis typical of deployed
// estimator-based players.
type Control struct {
	// Alpha is the EWMA weight given to each new throughput sample.
	Alpha float64
	// FMin and FMax bound the buffer adjustment F(B).
	FMin, FMax float64
	// AdjustmentSpan is the buffer level at which F reaches FMax.
	AdjustmentSpan time.Duration
	// UpMargin is the relative headroom required to switch up (0.05 =
	// the adjusted estimate must exceed the candidate rate by 5%).
	UpMargin float64
	// UpPersistence is how many consecutive decisions must agree before
	// an up-switch is taken; production estimator players debounce their
	// estimates this way. Zero or one switches immediately.
	UpPersistence int
	// PanicBuffer is the occupancy below which the algorithm abandons the
	// estimate and requests R_min outright — the strongest form of the
	// "conservative when the buffer is at risk" adjustment deployed
	// players use. It is what keeps Control's rebuffer rate within tens
	// of percent of the buffer-based algorithms rather than multiples;
	// the residual gap is the paper's "unnecessary rebuffers".
	PanicBuffer time.Duration
	// DropCap bounds the estimate at DropCap × the most recent sample —
	// the "fast down, slow up" asymmetry of tuned production estimators:
	// one collapsed chunk immediately drags the usable estimate down,
	// while recovery follows the slow EWMA. Zero disables the cap.
	DropCap float64
	// ProbeFraction enables full-buffer probing: a buffer above this
	// fraction of capacity means the client is in the ON-OFF pattern,
	// deliberately leaving capacity unused, so the tuned production
	// algorithm steps one rung above its estimate to claim it. Zero
	// disables probing.
	ProbeFraction float64
	// InitialEstimate seeds Ĉ before any chunk has been observed,
	// modelling the stored throughput history a production player uses
	// to pick its first rate. Zero means no history: start at R_min.
	InitialEstimate units.BitRate

	est     units.BitRate
	prev    int
	upVotes int
}

// NewControl returns a Control with parameters representative of the
// then-default production algorithm's behaviour.
func NewControl() *Control {
	return &Control{
		Alpha:          0.25,
		FMin:           0.3,
		FMax:           1.2,
		AdjustmentSpan: 120 * time.Second,
		UpMargin:       0.05,
		UpPersistence:  2,
		PanicBuffer:    20 * time.Second,
		DropCap:        1.35,
		ProbeFraction:  0.95,
		prev:           -1,
	}
}

// NewAggressiveControl returns the estimator configuration used to
// reproduce Figure 4: a very slow estimator with no buffer adjustment at
// all (F ≡ 1), which keeps requesting a too-high rate long after capacity
// has collapsed.
func NewAggressiveControl() *Control {
	return &Control{
		Alpha:          0.15,
		FMin:           1.0,
		FMax:           1.0,
		AdjustmentSpan: time.Second,
		UpMargin:       0,
		prev:           -1,
	}
}

// Name implements Algorithm.
func (c *Control) Name() string { return "Control" }

// SeedCapacity implements CapacitySeeded: the stored history primes Ĉ.
func (c *Control) SeedCapacity(r units.BitRate) { c.InitialEstimate = r }

// Estimate returns the current capacity estimate Ĉ.
func (c *Control) Estimate() units.BitRate { return c.est }

// Next implements Algorithm.
func (c *Control) Next(st State, s Stream) int {
	l := s.Ladder()
	if st.LastThroughput > 0 {
		if c.est == 0 {
			c.est = st.LastThroughput
		} else {
			c.est = units.BitRate(float64(c.est)*(1-c.Alpha) + float64(st.LastThroughput)*c.Alpha)
		}
	} else if c.est == 0 {
		c.est = c.InitialEstimate
	}

	if c.est == 0 {
		// No information at all: the only safe choice is R_min.
		c.prev = 0
		return 0
	}

	if st.PrevIndex >= 0 && st.Buffer < c.PanicBuffer {
		// Panic: the buffer is nearly dry; no estimate justifies
		// anything above R_min.
		c.prev = 0
		c.upVotes = 0
		return 0
	}

	// Collapse detection: the fast-down path engages only when the last
	// chunk's throughput could not sustain the rate currently streaming —
	// ordinary sample wobble above the current rate never drags the
	// estimate down.
	usable := c.est
	collapse := false
	if c.DropCap > 0 && st.LastThroughput > 0 &&
		c.prev >= 0 && st.LastThroughput < l[c.prev] {
		if cap := st.LastThroughput.Scale(c.DropCap); usable > cap {
			usable = cap
			collapse = true
		}
	}
	adjusted := usable.Scale(c.adjustment(st))
	target := l.HighestAtMost(adjusted)

	switch {
	case c.prev < 0:
		// First informed pick: no previous rate to be sticky about.
	case target > c.prev:
		// Up-switch hysteresis: clear the next rung by UpMargin, for
		// UpPersistence consecutive decisions. While the buffer is
		// still thin the persistence gate is waived — the production
		// algorithm's fast startup ramp (Figure 16's context: it is
		// BBA-1 that ramps slowly, not the Control).
		next := l.NextUp(c.prev)
		need := units.BitRate(float64(l[next]) * (1 + c.UpMargin))
		switch {
		case adjusted < need:
			target = c.prev
			c.upVotes = 0
		default:
			c.upVotes++
			if c.upVotes < c.UpPersistence {
				target = c.prev
			} else {
				c.upVotes = 0
			}
		}
	case target < c.prev:
		// Degrade gently — one rung at a time — unless the drop cap
		// detected a genuine collapse, in which case fall straight to
		// the capped target. Gentle drift keeps ordinary estimate
		// wobble from carving deep rate dips; the collapse path and
		// the panic floor handle the Figure 4 scenario.
		if !collapse {
			target = l.NextDown(c.prev)
		}
		c.upVotes = 0
	default:
		c.upVotes = 0
	}

	// Full-buffer probing: pinned at capacity with rate unchanged means
	// the ON-OFF pattern is leaving headroom unused; claim one rung.
	if c.ProbeFraction > 0 && st.BufferMax > 0 && target == c.prev && !collapse &&
		st.Buffer >= time.Duration(c.ProbeFraction*float64(st.BufferMax)) {
		target = l.NextUp(target)
	}

	c.prev = target
	return target
}

// adjustment evaluates F(B).
func (c *Control) adjustment(st State) float64 {
	if c.AdjustmentSpan <= 0 {
		return c.FMax
	}
	frac := float64(st.Buffer) / float64(c.AdjustmentSpan)
	if frac > 1 {
		frac = 1
	}
	return c.FMin + (c.FMax-c.FMin)*frac
}
