package sharedlink

import (
	"math/rand"
	"testing"
	"time"

	"bba/internal/abr"
	"bba/internal/media"
	"bba/internal/trace"
	"bba/internal/units"
)

func stream(t testing.TB, seed int64, chunks int) abr.Stream {
	t.Helper()
	v, err := media.NewVBR(media.VBRConfig{Ladder: media.DefaultLadder(), NumChunks: chunks}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return abr.NewStream(v, 0)
}

func TestValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := Run(Config{Trace: trace.Constant(units.Mbps, time.Hour)}); err == nil {
		t.Error("no players accepted")
	}
	if _, err := Run(Config{
		Trace:   trace.Constant(units.Mbps, time.Hour),
		Players: []PlayerConfig{{Stream: stream(t, 1, 10)}},
	}); err == nil {
		t.Error("nil algorithm accepted")
	}
}

func TestSinglePlayerMatchesCapacity(t *testing.T) {
	// One player alone on the link behaves like the single-session
	// engine: steady-state rate ≈ capacity, no rebuffers.
	s := stream(t, 2, 450)
	res, err := Run(Config{
		Trace: trace.Constant(2350*units.Kbps, 2*time.Hour),
		Players: []PlayerConfig{{
			Algorithm:  abr.NewBBA2(),
			Stream:     s,
			WatchLimit: 20 * time.Minute,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Players[0]
	if p.Rebuffers != 0 {
		t.Errorf("rebuffers = %d", p.Rebuffers)
	}
	if p.Played != 20*time.Minute {
		t.Errorf("played %v", p.Played)
	}
	steady := p.SteadyAvgRateKbps()
	if steady < 1600 || steady > 2450 {
		t.Errorf("steady rate %.0f, want ≈ capacity 2350", steady)
	}
}

func TestTwoIdenticalPlayersShareFairly(t *testing.T) {
	// Section 8: identical buffer-based players on a shared link split
	// capacity evenly.
	tr := trace.Constant(5*units.Mbps, 2*time.Hour)
	mk := func(seed int64) PlayerConfig {
		return PlayerConfig{
			Algorithm:  abr.NewBBA2(),
			Stream:     stream(t, seed, 450),
			WatchLimit: 15 * time.Minute,
		}
	}
	res, err := Run(Config{Trace: tr, Players: []PlayerConfig{mk(3), mk(4)}})
	if err != nil {
		t.Fatal(err)
	}
	if fi := res.FairnessIndex(); fi < 0.95 {
		t.Errorf("fairness index = %.3f, want ≥ 0.95", fi)
	}
	for i, p := range res.Players {
		if p.Rebuffers != 0 {
			t.Errorf("player %d rebuffered %d times on a 5Mb/s link", i, p.Rebuffers)
		}
		// Each should see roughly half the link in steady state.
		steady := p.SteadyAvgRateKbps()
		if steady < 1500 || steady > 3200 {
			t.Errorf("player %d steady rate %.0f, want ≈2500", i, steady)
		}
	}
}

func TestAbundantCapacityAllReachRmax(t *testing.T) {
	// With capacity far above 2·R_max both players buffer to full, go
	// ON-OFF, and stream R_max — "all players have reached Rmax, and so
	// the algorithm is fair".
	tr := trace.Constant(40*units.Mbps, 2*time.Hour)
	mk := func(seed int64) PlayerConfig {
		return PlayerConfig{
			Algorithm:  abr.NewBBA2(),
			Stream:     stream(t, seed, 450),
			WatchLimit: 15 * time.Minute,
		}
	}
	res, err := Run(Config{Trace: tr, Players: []PlayerConfig{mk(5), mk(6)}})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range res.Players {
		last := p.Chunks[len(p.Chunks)-1]
		if last.Rate != 5000*units.Kbps {
			t.Errorf("player %d ended at %v, want R_max", i, last.Rate)
		}
	}
	if fi := res.FairnessIndex(); fi < 0.98 {
		t.Errorf("fairness = %.3f", fi)
	}
}

func TestBulkFlowCompetition(t *testing.T) {
	// A BBA player sharing a 6 Mb/s link with one long-lived bulk flow
	// should hold roughly its fair half (≈3 Mb/s) in steady state, not
	// spiral downward. CBR keeps nominal and transferred rates equal so
	// the fair share is exact.
	cbr, err := media.NewCBR("cbr", media.DefaultLadder(), media.DefaultChunkDuration, 450)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Trace:     trace.Constant(6*units.Mbps, 2*time.Hour),
		BulkFlows: 1,
		Players: []PlayerConfig{{
			Algorithm:  abr.NewBBA2(),
			Stream:     abr.NewStream(cbr, 0),
			WatchLimit: 15 * time.Minute,
		}},
		Horizon: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Players[0]
	steady := p.SteadyAvgRateKbps()
	if steady < 2000 || steady > 3600 {
		t.Errorf("steady rate %.0f kb/s against a bulk flow on 6Mb/s, want ≈3000", steady)
	}
	if res.BulkBytes == 0 {
		t.Error("bulk flow moved no traffic")
	}
	// The bulk flow gets the whole link during the player's OFF periods,
	// so over the horizon it must move at least its fair half of what
	// the player's session window allows.
	if p.Rebuffers != 0 {
		t.Errorf("rebuffers = %d", p.Rebuffers)
	}
}

func TestStaggeredJoin(t *testing.T) {
	// The second player joins mid-session; both must still complete and
	// the first player's early chunks see the whole link.
	tr := trace.Constant(5*units.Mbps, 2*time.Hour)
	res, err := Run(Config{
		Trace: tr,
		Players: []PlayerConfig{
			{Algorithm: abr.NewBBA2(), Stream: stream(t, 8, 450), WatchLimit: 10 * time.Minute},
			{Algorithm: abr.NewBBA2(), Stream: stream(t, 9, 450), WatchLimit: 10 * time.Minute, StartAt: 3 * time.Minute},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Players[0].Played != 10*time.Minute || res.Players[1].Played != 10*time.Minute {
		t.Errorf("players played %v and %v", res.Players[0].Played, res.Players[1].Played)
	}
	first := res.Players[0].Chunks[0]
	if first.Throughput < 4*units.Mbps {
		t.Errorf("solo-phase chunk saw %v, want ≈5Mb/s", first.Throughput)
	}
	if res.Players[1].Chunks[0].Start < 3*time.Minute {
		t.Error("second player started early")
	}
}

func TestHorizonCutoff(t *testing.T) {
	res, err := Run(Config{
		Trace: trace.Constant(100*units.Kbps, time.Hour), // painfully slow
		Players: []PlayerConfig{{
			Algorithm: abr.RminAlways{},
			Stream:    stream(t, 10, 450),
		}},
		Horizon: 2 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Players[0].End > 2*time.Minute {
		t.Errorf("session ran past the horizon: %v", res.Players[0].End)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *Result {
		res, err := Run(Config{
			Trace: trace.Markov(trace.MarkovConfig{Base: 4 * units.Mbps, Sigma: 0.8, Duration: time.Hour}, rand.New(rand.NewSource(11))),
			Players: []PlayerConfig{
				{Algorithm: abr.NewBBA2(), Stream: stream(t, 12, 450), WatchLimit: 10 * time.Minute},
				{Algorithm: abr.NewControl(), Stream: stream(t, 13, 450), WatchLimit: 10 * time.Minute},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	for i := range a.Players {
		if a.Players[i].Rebuffers != b.Players[i].Rebuffers ||
			a.Players[i].AvgRateKbps() != b.Players[i].AvgRateKbps() ||
			len(a.Players[i].Chunks) != len(b.Players[i].Chunks) {
			t.Fatalf("player %d differs between identical runs", i)
		}
	}
}

// Byte conservation: over a window where the link is fully utilized (a
// bulk flow is always hungry), the bytes delivered to all flows must equal
// the trace integral. This pins the processor-sharing accounting — the
// settle-before-mutate discipline and integral charging — exactly.
func TestByteConservation(t *testing.T) {
	cbr, err := media.NewCBR("cbr", media.DefaultLadder(), media.DefaultChunkDuration, 450)
	if err != nil {
		t.Fatal(err)
	}
	horizon := 10 * time.Minute
	link := 6 * units.Mbps
	// A rate boundary mid-run exercises the integral charging too.
	tr := trace.MustNew([]trace.Segment{
		{Duration: 5 * time.Minute, Rate: link},
		{Duration: time.Hour, Rate: link / 2},
	})
	res, err := Run(Config{
		Trace:     tr,
		BulkFlows: 1,
		Players: []PlayerConfig{{
			Algorithm:  abr.NewBBA2(),
			Stream:     abr.NewStream(cbr, 0),
			WatchLimit: 8 * time.Minute,
		}},
		Horizon: horizon,
	})
	if err != nil {
		t.Fatal(err)
	}
	var playerBytes int64
	for _, c := range res.Players[0].Chunks {
		playerBytes += c.Bytes
	}
	delivered := float64(playerBytes + res.BulkBytes)
	capacity := float64(tr.BytesBetween(0, horizon))
	// The bulk flow's in-flight transfer at the horizon is uncounted
	// (≤ 4 MB), so delivered ∈ [capacity − 4 MB − slack, capacity].
	if delivered > capacity*1.01 {
		t.Errorf("delivered %.0f bytes exceeds link capacity %.0f — shares were over-credited", delivered, capacity)
	}
	if delivered < capacity-4.5e6 {
		t.Errorf("delivered %.0f bytes, want ≥ %.0f (capacity minus one in-flight bulk transfer)", delivered, capacity-4.5e6)
	}
}
