package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"time"

	"bba/internal/campaign"
)

// Client is the worker's view of a coordinator.
type Client struct {
	// URL is the coordinator's base URL (http://host:port).
	URL string
	// Worker is this worker's stable name.
	Worker string
	// HTTP is the transport (default http.DefaultClient).
	HTTP *http.Client
	// Retries bounds attempts per call (default 5); retries back off
	// linearly from RetryDelay (default 100ms).
	Retries    int
	RetryDelay time.Duration
}

// call POSTs a JSON request and decodes the JSON response, retrying
// transport errors and 5xx; a 4xx is a permanent protocol error.
func (c *Client) call(ctx context.Context, path string, req, resp any) error {
	httpc := c.HTTP
	if httpc == nil {
		httpc = http.DefaultClient
	}
	retries := c.Retries
	if retries <= 0 {
		retries = 5
	}
	delay := c.RetryDelay
	if delay <= 0 {
		delay = 100 * time.Millisecond
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	url := strings.TrimSuffix(c.URL, "/") + path
	var lastErr error
	for attempt := 0; attempt < retries; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(time.Duration(attempt) * delay):
			}
		}
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return err
		}
		hreq.Header.Set("Content-Type", "application/json")
		hresp, err := httpc.Do(hreq)
		if err != nil {
			lastErr = err
			continue
		}
		rbody, rerr := io.ReadAll(io.LimitReader(hresp.Body, maxBody))
		hresp.Body.Close()
		switch {
		case hresp.StatusCode == http.StatusOK && rerr == nil:
			return json.Unmarshal(rbody, resp)
		case hresp.StatusCode >= 500 || rerr != nil:
			lastErr = fmt.Errorf("coord: %s: %s: %s", path, hresp.Status, strings.TrimSpace(string(rbody)))
		default:
			return fmt.Errorf("coord: %s: %s: %s", path, hresp.Status, strings.TrimSpace(string(rbody)))
		}
	}
	return fmt.Errorf("coord: %s unreachable after %d attempts: %w", path, retries, lastErr)
}

// Join registers the worker.
func (c *Client) Join(ctx context.Context) (JoinResponse, error) {
	var resp JoinResponse
	err := c.call(ctx, "/join", JoinRequest{Worker: c.Worker}, &resp)
	return resp, err
}

// Acquire requests a lease.
func (c *Client) Acquire(ctx context.Context) (LeaseResponse, error) {
	var resp LeaseResponse
	err := c.call(ctx, "/lease", LeaseRequest{Worker: c.Worker}, &resp)
	return resp, err
}

// Heartbeat extends the given leases.
func (c *Client) Heartbeat(ctx context.Context, leases []uint64) (HeartbeatResponse, error) {
	var resp HeartbeatResponse
	err := c.call(ctx, "/heartbeat", HeartbeatRequest{Worker: c.Worker, Leases: leases}, &resp)
	return resp, err
}

// Complete delivers one finished shard under a lease.
func (c *Client) Complete(ctx context.Context, lease uint64, shard int, accums []*campaign.GroupAccum) (CompleteResponse, error) {
	var resp CompleteResponse
	err := c.call(ctx, "/complete", CompleteRequest{Worker: c.Worker, Lease: lease, Shard: shard, Groups: accums}, &resp)
	return resp, err
}

// Report fetches the finished campaign report bytes.
func (c *Client) Report(ctx context.Context) ([]byte, error) {
	httpc := c.HTTP
	if httpc == nil {
		httpc = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, strings.TrimSuffix(c.URL, "/")+"/report", nil)
	if err != nil {
		return nil, err
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxBody))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("coord: /report: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	return body, nil
}

// WorkerConfig configures one worker process.
type WorkerConfig struct {
	// URL is the coordinator's base URL. Required.
	URL string
	// Name is the worker's stable name (default "host-pid").
	Name string
	// Parallelism bounds shard-executing goroutines (default GOMAXPROCS).
	Parallelism int
	// Batch routes execution through the batch kernel; BatchWidth tunes it.
	// Per-worker choices — the report is byte-identical either way.
	Batch      bool
	BatchWidth int
	// Poll is the wait between empty lease responses (default TTL/4).
	Poll time.Duration
	// HTTP overrides the transport (tests inject httptest clients).
	HTTP *http.Client
	// OnJoin, when non-nil, is called with the coordinator's join response
	// before any lease is acquired; the collect shipper announces run_start
	// from here (the worker only learns the campaign identity at join).
	OnJoin func(JoinResponse) error
	// OnShard, when non-nil, is called after each shard completes locally,
	// before its accums are delivered; the collect shipper mirrors shard
	// aggregates to a bbacollect from here. Must not mutate accums.
	OnShard func(shard int, accums []*campaign.GroupAccum) error
	// BeforeShard is a test seam called with each shard index before it
	// executes; returning an error abandons the worker mid-lease (the
	// "worker killed" failure injection).
	BeforeShard func(shard int) error
	// Progress, when non-nil, receives a line-worthy note on joins, leases
	// and completions.
	Progress func(format string, args ...any)
}

// WorkerStats summarizes one RunWorker invocation.
type WorkerStats struct {
	// Identity is the campaign the coordinator assigned.
	Identity campaign.Identity
	// Engine is "scalar" or "batch".
	Engine string
	// Leases counts grants executed (Stolen of them work-stealing).
	Leases, Stolen int
	// ShardsRun counts shards executed and delivered; Duplicates counts
	// deliveries the coordinator had already folded from elsewhere.
	ShardsRun, Duplicates int
	// SessionsRun / PlayerSessions count this worker's executed sessions.
	SessionsRun, PlayerSessions int64
	// Elapsed is wall-clock time from join to exit.
	Elapsed time.Duration
}

// SessionsPerSecond returns this worker's player-session throughput.
func (s WorkerStats) SessionsPerSecond() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.PlayerSessions) / s.Elapsed.Seconds()
}

// RunWorker joins the coordinator and executes leases until the campaign
// completes, the context is cancelled, or the coordinator becomes
// unreachable. It returns stats even on error.
func RunWorker(ctx context.Context, cfg WorkerConfig) (stats WorkerStats, err error) {
	// Named returns: the deferred Elapsed stamp below must reach the copy
	// the caller receives on every exit path.
	if cfg.URL == "" {
		return stats, fmt.Errorf("coord: worker needs a coordinator URL")
	}
	if cfg.Name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		cfg.Name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = runtime.GOMAXPROCS(0)
	}
	stats.Engine = "scalar"
	if cfg.Batch {
		stats.Engine = "batch"
	}
	client := &Client{URL: cfg.URL, Worker: cfg.Name, HTTP: cfg.HTTP}
	progress := cfg.Progress
	if progress == nil {
		progress = func(string, ...any) {}
	}

	start := time.Now()
	defer func() { stats.Elapsed = time.Since(start) }()

	join, err := client.Join(ctx)
	if err != nil {
		return stats, err
	}
	stats.Identity = join.Identity
	if cfg.OnJoin != nil {
		if err := cfg.OnJoin(join); err != nil {
			return stats, err
		}
	}
	ccfg, err := join.Spec.CampaignConfig()
	if err != nil {
		return stats, fmt.Errorf("coord: coordinator spec: %w", err)
	}
	ccfg.Batch = cfg.Batch
	ccfg.BatchWidth = cfg.BatchWidth
	probe, err := campaign.NewShardRunner(ccfg)
	if err != nil {
		return stats, err
	}
	if !reflect.DeepEqual(probe.Identity(), join.Identity) {
		return stats, fmt.Errorf("coord: local identity diverges from coordinator's — version skew between worker and coordinator")
	}
	poll := cfg.Poll
	if poll <= 0 {
		poll = join.TTL() / 4
		if poll <= 0 || poll > time.Second {
			// Cap the idle poll so workers notice completion within the
			// coordinator's post-completion drain window.
			poll = time.Second
		}
	}
	progress("joined %s as %q: %d sessions in %d shards (engine=%s)",
		cfg.URL, cfg.Name, join.Identity.Sessions, join.Identity.Shards(), stats.Engine)

	// Heartbeat loop: extend every lease the executor currently holds at a
	// third of the TTL, so a healthy worker never expires mid-shard.
	var leaseMu sync.Mutex
	held := map[uint64]struct{}{}
	hbctx, stopHB := context.WithCancel(ctx)
	var hbWG sync.WaitGroup
	defer func() { stopHB(); hbWG.Wait() }()
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		tick := time.NewTicker(maxDuration(join.TTL()/3, 10*time.Millisecond))
		defer tick.Stop()
		for {
			select {
			case <-hbctx.Done():
				return
			case <-tick.C:
			}
			leaseMu.Lock()
			ids := make([]uint64, 0, len(held))
			for id := range held {
				ids = append(ids, id)
			}
			leaseMu.Unlock()
			if len(ids) == 0 {
				continue
			}
			// Best effort: a missed heartbeat only risks an expiry, which
			// the exactly-once fold absorbs.
			_, _ = client.Heartbeat(hbctx, ids)
		}
	}()

	// One ShardRunner per executor goroutine: the batch engine's lane
	// arenas and plan caches are per-runner state.
	runners := make(chan *campaign.ShardRunner, cfg.Parallelism)
	for i := 0; i < cfg.Parallelism; i++ {
		r, err := campaign.NewShardRunner(ccfg)
		if err != nil {
			return stats, err
		}
		runners <- r
	}

	for {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		grant, err := client.Acquire(ctx)
		if err != nil {
			return stats, err
		}
		if grant.Complete {
			progress("campaign complete: ran %d shards (%d duplicate deliveries) across %d leases",
				stats.ShardsRun, stats.Duplicates, stats.Leases)
			return stats, nil
		}
		if len(grant.Shards) == 0 {
			select {
			case <-ctx.Done():
				return stats, ctx.Err()
			case <-time.After(poll):
			}
			continue
		}
		stats.Leases++
		if grant.Stolen {
			stats.Stolen++
			progress("lease %d (stolen): shards %v", grant.Lease, grant.Shards)
		} else {
			progress("lease %d: shards %v", grant.Lease, grant.Shards)
		}
		leaseMu.Lock()
		held[grant.Lease] = struct{}{}
		leaseMu.Unlock()

		complete, err := runLease(ctx, cfg, client, runners, grant, &stats)

		leaseMu.Lock()
		delete(held, grant.Lease)
		leaseMu.Unlock()
		if err != nil {
			return stats, err
		}
		if complete {
			// A completion ack said the campaign is done — exit without
			// another poll; the coordinator may already be shutting down.
			progress("campaign complete: ran %d shards (%d duplicate deliveries) across %d leases",
				stats.ShardsRun, stats.Duplicates, stats.Leases)
			return stats, nil
		}
	}
}

// runLease executes one grant's shards with bounded parallelism, shipping
// each shard to the coordinator as soon as it finishes so a kill loses at
// most the shards in flight.
func runLease(ctx context.Context, cfg WorkerConfig, client *Client, runners chan *campaign.ShardRunner, grant LeaseResponse, stats *WorkerStats) (complete bool, _ error) {
	type result struct {
		shard    int
		sessions int64
		dup      bool
		done     bool
		err      error
	}
	shards := make(chan int, len(grant.Shards))
	for _, s := range grant.Shards {
		shards <- s
	}
	close(shards)
	width := cfg.Parallelism
	if width > len(grant.Shards) {
		width = len(grant.Shards)
	}
	results := make(chan result, len(grant.Shards))
	var wg sync.WaitGroup
	for i := 0; i < width; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := <-runners
			defer func() { runners <- r }()
			for s := range shards {
				res := result{shard: s, sessions: int64(r.ShardSessions(s))}
				if cfg.BeforeShard != nil {
					if err := cfg.BeforeShard(s); err != nil {
						res.err = err
						results <- res
						return
					}
				}
				accums, err := r.RunShard(ctx, s)
				if err != nil {
					res.err = err
					results <- res
					return
				}
				if cfg.OnShard != nil {
					if err := cfg.OnShard(s, accums); err != nil {
						res.err = err
						results <- res
						return
					}
				}
				ack, err := client.Complete(ctx, grant.Lease, s, accums)
				if err != nil {
					res.err = err
				}
				res.dup = ack.Duplicate
				res.done = ack.Complete
				results <- res
			}
		}()
	}
	wg.Wait()
	close(results)
	var firstErr error
	for res := range results {
		if res.err != nil {
			if firstErr == nil {
				firstErr = res.err
			}
			continue
		}
		stats.ShardsRun++
		stats.SessionsRun += res.sessions
		stats.PlayerSessions += res.sessions * int64(len(stats.Identity.Groups))
		if res.dup {
			stats.Duplicates++
		}
		if res.done {
			complete = true
		}
	}
	return complete, firstErr
}

func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
