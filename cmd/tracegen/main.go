// Command tracegen generates, transforms and inspects capacity traces in
// the CSV format the rest of the toolchain consumes
// ("duration_seconds,rate_bps" per line).
//
// Examples:
//
//	tracegen -kind markov -base 4000 -ratio 5.6 -duration 30m > harsh.csv
//	tracegen -kind step -base 5000 -after 350 -at 25s -duration 10m > fig4.csv
//	tracegen -stats harsh.csv
//	tracegen -kind markov -outage 120s:30s > with_outage.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"
	"time"

	"bba/internal/stats"
	"bba/internal/trace"
	"bba/internal/units"
)

func main() {
	var (
		kind     = flag.String("kind", "markov", "trace kind: constant, step, markov")
		baseKbps = flag.Int("base", 4000, "base capacity in kb/s")
		after    = flag.Int("after", 350, "post-step capacity in kb/s (step kind)")
		at       = flag.Duration("at", 25*time.Second, "step time (step kind)")
		ratio    = flag.Float64("ratio", 3.0, "75th/25th percentile throughput ratio (markov kind)")
		duration = flag.Duration("duration", 30*time.Minute, "trace duration")
		seed     = flag.Int64("seed", 1, "random seed")
		outage   = flag.String("outage", "", "overlay an outage, formatted start:length (e.g. 120s:30s)")
		statsIn  = flag.String("stats", "", "read a trace CSV and print its statistics instead of generating")
	)
	flag.Parse()

	if err := run(os.Stdout, *kind, *baseKbps, *after, *at, *ratio, *duration, *seed, *outage, *statsIn); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(out io.Writer, kind string, baseKbps, afterKbps int, at time.Duration, ratio float64, duration time.Duration, seed int64, outage, statsIn string) error {
	if statsIn != "" {
		return printStats(out, statsIn)
	}

	base := units.BitRate(baseKbps) * units.Kbps
	var tr *trace.Trace
	switch kind {
	case "constant":
		tr = trace.Constant(base, duration)
	case "step":
		tr = trace.Step(base, units.BitRate(afterKbps)*units.Kbps, at, duration)
	case "markov":
		tr = trace.Markov(trace.MarkovConfig{
			Base:     base,
			Sigma:    trace.SigmaForQuartileRatio(ratio),
			Duration: duration,
		}, rand.New(rand.NewSource(seed)))
	default:
		return fmt.Errorf("unknown kind %q", kind)
	}

	if outage != "" {
		parts := strings.Split(outage, ":")
		if len(parts) != 2 {
			return fmt.Errorf("outage wants start:length, got %q", outage)
		}
		start, err := time.ParseDuration(parts[0])
		if err != nil {
			return fmt.Errorf("outage start: %w", err)
		}
		length, err := time.ParseDuration(parts[1])
		if err != nil {
			return fmt.Errorf("outage length: %w", err)
		}
		tr, err = trace.WithOutages(tr, []trace.Outage{{Start: start, Duration: length}})
		if err != nil {
			return err
		}
	}
	return tr.WriteCSV(out)
}

func printStats(out io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.ReadCSV(f)
	if err != nil {
		return err
	}
	rates := tr.Rates(time.Second)
	summary, err := stats.Summarize(rates)
	if err != nil {
		return err
	}
	qr, _ := stats.QuartileRatio(rates)
	m95, _ := stats.MedianTo95Ratio(rates)
	fmt.Fprintf(out, "duration        %v\n", tr.Total().Round(time.Second))
	fmt.Fprintf(out, "segments        %d\n", len(tr.Segments()))
	fmt.Fprintf(out, "rate kb/s       min %.0f  p25 %.0f  median %.0f  p75 %.0f  p95 %.0f  max %.0f\n",
		summary.Min, summary.P25, summary.Median, summary.P75, summary.P95, summary.Max)
	fmt.Fprintf(out, "75/25 ratio     %.2f (the paper's Figure 1 trace: 5.6)\n", qr)
	fmt.Fprintf(out, "median/p95      %.2f (below 0.5 = a 'highly variable' session, §2.2)\n", m95)
	return nil
}
