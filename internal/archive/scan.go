package archive

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"time"

	"bba/internal/telemetry"
)

// Query selects archived events. Zero-valued fields match everything, so
// Query{Run: "r"} is "the whole run".
type Query struct {
	// Run is the run to query (required).
	Run string
	// Kinds restricts to these event kinds; empty matches all.
	Kinds []telemetry.Kind
	// Session restricts to one exact session label.
	Session string
	// Group restricts to sessions whose telemetry.GroupOfSession matches.
	Group string
	// From and To bound the session clock: events with From <= At are
	// matched, and — when To > 0 — only those with At <= To.
	From, To time.Duration
}

func errRunRequired() error { return fmt.Errorf("archive: Query.Run is required") }

// matchesWindow reports whether a [min, max] at_ns window can contain a
// matching event.
func (q Query) matchesWindow(minNS, maxNS int64) bool {
	if maxNS < int64(q.From) {
		return false
	}
	if q.To > 0 && minNS > int64(q.To) {
		return false
	}
	return true
}

// matchesAt reports whether one event time passes the window predicate.
func (q Query) matchesAt(atNS int64) bool {
	return atNS >= int64(q.From) && (q.To <= 0 || atNS <= int64(q.To))
}

// kindNames returns the queried kinds' journal names; nil means all.
func (q Query) kindNames() map[string]bool {
	if len(q.Kinds) == 0 {
		return nil
	}
	m := make(map[string]bool, len(q.Kinds))
	for _, k := range q.Kinds {
		m[k.String()] = true
	}
	return m
}

// pruneBlock reports whether the block's footer alone proves no row can
// match: disjoint time window, no queried kind present, or — for group
// queries — no session of that group.
func (q Query) pruneBlock(ft footer) bool {
	if ft.Rows == 0 || !q.matchesWindow(ft.MinAtNS, ft.MaxAtNS) {
		return true
	}
	if names := q.kindNames(); names != nil {
		any := false
		for _, k := range ft.Kinds {
			if names[k] {
				any = true
				break
			}
		}
		if !any {
			return true
		}
	}
	if q.Group != "" {
		any := false
		for _, g := range ft.Groups {
			if g == q.Group {
				any = true
				break
			}
		}
		if !any {
			return true
		}
	}
	return false
}

// matchesEvent is the row-at-a-time predicate the WAL tail and Scan's
// materialized path share.
func (q Query) matchesEvent(e *telemetry.Event) bool {
	if !q.matchesAt(int64(e.At)) {
		return false
	}
	if names := q.kindNames(); names != nil && !names[e.Kind.String()] {
		return false
	}
	if q.Session != "" && e.Session != q.Session {
		return false
	}
	if q.Group != "" && telemetry.GroupOfSession(e.Session) != q.Group {
		return false
	}
	return true
}

// Scan streams every matching event in admission order — sealed blocks
// first, then the live WAL tail — calling fn for each. fn returning false
// stops the scan early. Blocks whose footer excludes the query are pruned
// without reading a column page.
func (s *Store) Scan(q Query, fn func(telemetry.Event) bool) error {
	if q.Run == "" {
		return errRunRequired()
	}
	blocks, walLines, err := s.snapshot(q.Run)
	if err != nil {
		return err
	}
	kindNames := q.kindNames()
	for _, path := range blocks {
		ft, err := readFooter(path)
		if err != nil {
			return err
		}
		if q.pruneBlock(ft) {
			continue
		}
		blk, err := readBlock(path)
		if err != nil {
			return err
		}
		stop, err := scanBlock(blk, q, kindNames, fn)
		if err != nil {
			return err
		}
		if stop {
			return nil
		}
	}
	for _, line := range walLines {
		e, ok := telemetry.ParseJSONL(line)
		if !ok {
			e = parseLoose(line)
		}
		if q.matchesEvent(&e) && !fn(e) {
			return nil
		}
	}
	return nil
}

// scanBlock walks one block row-wise. It decodes the dictionary columns
// first and resolves the predicates to dictionary-index sets, so the
// per-row filter is integer compares; only rows that pass materialize an
// Event.
func scanBlock(b *Block, q Query, kindNames map[string]bool, fn func(telemetry.Event) bool) (stop bool, err error) {
	kindEntries, kindRows, err := b.Dict("kind")
	if err != nil {
		return false, err
	}
	sessEntries, sessRows, err := b.Dict("session")
	if err != nil {
		return false, err
	}
	kindOK := make([]bool, len(kindEntries))
	kinds := make([]telemetry.Kind, len(kindEntries))
	for i, name := range kindEntries {
		kindOK[i] = kindNames == nil || kindNames[name]
		kinds[i], _ = telemetry.ParseKind(name)
	}
	sessOK := make([]bool, len(sessEntries))
	for i, sess := range sessEntries {
		sessOK[i] = (q.Session == "" || sess == q.Session) &&
			(q.Group == "" || telemetry.GroupOfSession(sess) == q.Group)
	}
	var at []int64
	if q.From > 0 || q.To > 0 {
		if at, err = b.Ints("at_ns", nil); err != nil {
			return false, err
		}
	}
	// Lazily decode the remaining columns only once a row matches.
	var labelEntries []string
	var labelRows []uint32
	var ints [][]int64
	intCols := telemetry.IntColumns()
	materialize := func() error {
		if labelRows != nil {
			return nil
		}
		if labelEntries, labelRows, err = b.Dict("label"); err != nil {
			return err
		}
		ints = make([][]int64, len(intCols))
		for i, c := range intCols {
			if ints[i], err = b.Ints(c.Name, nil); err != nil {
				return err
			}
		}
		return nil
	}
	for i := 0; i < b.Rows(); i++ {
		if !kindOK[kindRows[i]] || !sessOK[sessRows[i]] {
			continue
		}
		if at != nil && !q.matchesAt(at[i]) {
			continue
		}
		if err := materialize(); err != nil {
			return false, err
		}
		e := telemetry.Event{
			Kind:    kinds[kindRows[i]],
			Session: sessEntries[sessRows[i]],
			Label:   labelEntries[labelRows[i]],
		}
		for ci, c := range intCols {
			c.Set(&e, ints[ci][i])
		}
		if !fn(e) {
			return true, nil
		}
	}
	return false, nil
}

// parseLoose is the lenient fallback for non-canonical WAL lines,
// mirroring what encodeBlock stores in the columns for raw rows.
func parseLoose(line []byte) telemetry.Event {
	var e telemetry.Event
	le, _ := unmarshalLoose(line)
	k, _ := telemetry.ParseKind(le.Kind)
	e.Kind = k
	e.Session = le.Session
	e.Label = le.Label
	loose := le.ints()
	for i, c := range telemetry.IntColumns() {
		c.Set(&e, loose[i])
	}
	return e
}

// readFooter reads only a block's tail — the 12-byte trailer plus the
// footer JSON — so pruning a block costs two small reads, not the file.
func readFooter(path string) (footer, error) {
	var ft footer
	f, err := os.Open(path)
	if err != nil {
		return ft, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return ft, err
	}
	size := fi.Size()
	if size < int64(len(blockMagic))+1+blockTailLen {
		return ft, fmt.Errorf("%w: %d bytes", ErrBadBlock, size)
	}
	var tail [blockTailLen]byte
	if _, err := f.ReadAt(tail[:], size-blockTailLen); err != nil {
		return ft, err
	}
	if string(tail[8:]) != string(blockEndMagic) {
		return ft, fmt.Errorf("%w: end magic", ErrBadBlock)
	}
	flen := int64(binary.LittleEndian.Uint32(tail[4:8]))
	if flen > maxFooterLen || size-blockTailLen < flen {
		return ft, fmt.Errorf("%w: footer length %d", ErrBadBlock, flen)
	}
	ftJSON := make([]byte, flen)
	if _, err := f.ReadAt(ftJSON, size-blockTailLen-flen); err != nil {
		return ft, err
	}
	if crc32.Checksum(ftJSON, blockCRCTable) != binary.LittleEndian.Uint32(tail[:4]) {
		return ft, fmt.Errorf("%w: footer checksum", ErrBadBlock)
	}
	if err := json.Unmarshal(ftJSON, &ft); err != nil {
		return ft, fmt.Errorf("%w: footer: %v", ErrBadBlock, err)
	}
	return ft, nil
}
