package main

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"bba/internal/collect"
	"bba/internal/telemetry"
)

// IngestReport is the BENCH_ingest.json schema: the fleet-collection
// pipeline's performance datapoint — collector admission throughput over
// real loopback HTTP, the shipper's player-visible hot-path cost, and a
// measured loss/duplication recovery run proving the exactly-once
// contract under injected failure.
type IngestReport struct {
	Schema    string       `json:"schema"`
	Generated string       `json:"generated,omitempty"`
	GoVersion string       `json:"go_version"`
	NumCPU    int          `json:"num_cpu"`
	Scale     string       `json:"scale"`
	Ingest    IngestResult `json:"ingest"`
	Shipper   Result       `json:"shipper"`
	Recovery  Recovery     `json:"recovery"`
}

// IngestResult extends the shared Result with throughput in the pipeline's
// native units.
type IngestResult struct {
	Result
	BatchEvents  int     `json:"batch_events"`
	FramesPerSec float64 `json:"frames_per_sec"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// Recovery is the loss/dup recovery measurement: every third ingest
// attempt is refused before processing (loss) and every fifth is processed
// but its acknowledgement replaced with a 503 (a lost ack, so the retry is
// a duplicate). ExactlyOnce records that the collector still admitted
// every event exactly once.
type Recovery struct {
	EventsSent      int64 `json:"events_sent"`
	EventsAdmitted  int64 `json:"events_admitted"`
	FramesShipped   int64 `json:"frames_shipped"`
	FramesDuplicate int64 `json:"frames_duplicate"`
	Retries         int64 `json:"retries"`
	ExactlyOnce     bool  `json:"exactly_once"`
}

// ingestBatchEvents is the events-per-frame the ingest benchmark ships —
// the shipper's default batch size.
const ingestBatchEvents = 64

// collectServer serves a collector over real loopback TCP (not an
// in-process handler): the measured path includes the HTTP stack the
// fleet actually traverses.
func collectServer(wrap func(http.Handler) http.Handler) (*collect.Collector, string, func(), error) {
	c := collect.NewCollector(collect.CollectorConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", nil, err
	}
	var h http.Handler = c.Handler()
	if wrap != nil {
		h = wrap(h)
	}
	hs := &http.Server{Handler: h}
	go hs.Serve(ln)
	return c, "http://" + ln.Addr().String(), func() { hs.Close() }, nil
}

// ingestTakeBench measures CollectorIngestTake: one POSTed frame of
// ingestBatchEvents events per iteration, decode + checksum + dedup +
// admission included, over loopback HTTP.
func ingestTakeBench(addr string, payload []byte) func(b *testing.B) {
	return func(b *testing.B) {
		client := &http.Client{}
		buf := make([]byte, 0, collect.EncodedLen(len("bench"), len(payload)))
		b.SetBytes(int64(collect.EncodedLen(len("bench"), len(payload))))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf = collect.AppendFrame(buf[:0], collect.Frame{
				Run: "bench", Session: 1, Seq: uint64(i),
				Kind: collect.PayloadEvents, Payload: payload,
			})
			resp, err := client.Post(addr+"/ingest", "application/octet-stream", bytes.NewReader(buf))
			if err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusNoContent {
				b.Fatalf("ingest: %s", resp.Status)
			}
		}
	}
}

// shipperOnEventBench measures the player-visible OnEvent hot path with
// queue capacity available; the contract is zero allocations.
func shipperOnEventBench(addr string) func(b *testing.B) {
	return func(b *testing.B) {
		s, err := collect.NewShipper(collect.ShipperConfig{
			Addr: addr, Run: "bench", Session: 2,
			BatchEvents: ingestBatchEvents, FlushInterval: -1,
			Queue: collect.QueueConfig{MemFrames: 1 << 16},
		})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		ev := telemetry.Event{
			Kind: telemetry.BufferSample, Session: "d0.w0.s0.bench", Chunk: 1,
			RateIndex: 2, PrevRateIndex: -1, Buffer: 12 * time.Second, Label: "BBA-0",
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.OnEvent(ev)
		}
	}
}

// recoveryRun ships a fixed event population through a deliberately lossy
// collector front and reports what the pipeline absorbed.
func recoveryRun(events int) (Recovery, error) {
	var n atomic.Int64
	c, addr, stop, err := collectServer(func(inner http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path != "/ingest" {
				inner.ServeHTTP(w, r)
				return
			}
			switch k := n.Add(1); {
			case k%3 == 0:
				// Loss: refused before the collector sees it.
				http.Error(w, "injected loss", http.StatusServiceUnavailable)
			case k%5 == 0:
				// Lost ack: processed, then the 204 is withheld — the
				// shipper's retry delivers a duplicate.
				inner.ServeHTTP(httptest.NewRecorder(), r)
				http.Error(w, "injected lost ack", http.StatusServiceUnavailable)
			default:
				inner.ServeHTTP(w, r)
			}
		})
	})
	if err != nil {
		return Recovery{}, err
	}
	defer stop()

	s, err := collect.NewShipper(collect.ShipperConfig{
		Addr: addr, Run: "recovery", Session: 1,
		BatchEvents: 16, FlushInterval: -1, Senders: 2,
		Queue: collect.QueueConfig{MemFrames: 1 << 12},
		Retry: collect.RetryPolicy{MaxAttempts: 1 << 10, Base: 100 * time.Microsecond, Cap: 2 * time.Millisecond, Seed: 1},
	})
	if err != nil {
		return Recovery{}, err
	}
	ev := telemetry.Event{Kind: telemetry.BufferSample, Session: "s", Chunk: 1, RateIndex: -1, PrevRateIndex: -1}
	for i := 0; i < events; i++ {
		// Re-offer any event the non-blocking hot path refuses while the
		// framer recycles batch buffers.
		for {
			before := s.Stats().Events
			s.OnEvent(ev)
			if s.Stats().Events > before {
				break
			}
			time.Sleep(50 * time.Microsecond)
		}
	}
	if err := s.Close(); err != nil {
		return Recovery{}, err
	}
	ss, cs := s.Stats(), c.Stats()
	return Recovery{
		EventsSent:      ss.Events,
		EventsAdmitted:  cs.Events,
		FramesShipped:   ss.FramesShipped,
		FramesDuplicate: cs.FramesDup,
		Retries:         ss.Retries,
		// Hot-path refusals were re-offered above, so EventsDropped does not
		// bear on delivery; a dropped frame would.
		ExactlyOnce: cs.Events == int64(events) && ss.FramesDropped == 0,
	}, nil
}

// runIngest executes the fleet-collection suite and writes BENCH_ingest.json.
func runIngest(quick, stamp bool, out string) error {
	report := IngestReport{
		Schema:    "bba-bench-ingest/v1",
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Scale:     map[bool]string{true: "quick", false: "full"}[quick],
	}
	if stamp {
		report.Generated = time.Now().UTC().Format(time.RFC3339)
	}

	var payload []byte
	for i := 0; i < ingestBatchEvents; i++ {
		payload = telemetry.AppendJSONL(payload, telemetry.Event{
			Kind: telemetry.BufferSample, Session: "bench", Chunk: i,
			RateIndex: 2, PrevRateIndex: -1, Buffer: 12 * time.Second,
		})
	}

	_, addr, stop, err := collectServer(nil)
	if err != nil {
		return err
	}
	r := testing.Benchmark(ingestTakeBench(addr, payload))
	stop()
	nsPerOp := float64(r.T.Nanoseconds()) / float64(r.N)
	report.Ingest = IngestResult{
		Result: Result{
			Name: "CollectorIngestTake", Iterations: r.N, NsPerOp: nsPerOp,
			BytesPerOp: r.AllocedBytesPerOp(), AllocsPerOp: r.AllocsPerOp(),
		},
		BatchEvents:  ingestBatchEvents,
		FramesPerSec: 1e9 / nsPerOp,
		EventsPerSec: ingestBatchEvents * 1e9 / nsPerOp,
	}
	fmt.Fprintf(os.Stderr, "bench %-28s %12.0f ns/op %14.0f events/s\n",
		report.Ingest.Name, report.Ingest.NsPerOp, report.Ingest.EventsPerSec)

	_, addr, stop, err = collectServer(nil)
	if err != nil {
		return err
	}
	r = testing.Benchmark(shipperOnEventBench(addr))
	stop()
	report.Shipper = Result{
		Name: "ShipperOnEvent", Iterations: r.N,
		NsPerOp:    float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp: r.AllocedBytesPerOp(), AllocsPerOp: r.AllocsPerOp(),
	}
	fmt.Fprintf(os.Stderr, "bench %-28s %12.1f ns/op %6d allocs/op\n",
		report.Shipper.Name, report.Shipper.NsPerOp, report.Shipper.AllocsPerOp)

	events := 20000
	if quick {
		events = 2000
	}
	rec, err := recoveryRun(events)
	if err != nil {
		return err
	}
	report.Recovery = rec
	fmt.Fprintf(os.Stderr, "recovery: %d/%d events exactly-once, %d dup frames absorbed, %d retries\n",
		rec.EventsAdmitted, rec.EventsSent, rec.FramesDuplicate, rec.Retries)
	if !rec.ExactlyOnce {
		return fmt.Errorf("recovery run violated exactly-once: %+v", rec)
	}

	return write(report, out)
}
