package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestBenchTableNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, b := range benches() {
		if b.name == "" {
			t.Error("benchmark with empty name")
		}
		if seen[b.name] {
			t.Errorf("duplicate benchmark name %q", b.name)
		}
		seen[b.name] = true
		if b.run == nil {
			t.Errorf("%s has no runner", b.name)
		}
	}
	if !seen["SessionSimulation"] {
		t.Error("the headline SessionSimulation benchmark is missing")
	}
}

func TestWriteReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_sessions.json")
	report := Report{
		Schema:    "bba-bench/v1",
		GoVersion: "go-test",
		Scale:     "quick",
		Baseline:  preOptimizationBaseline,
		Results: []Result{
			{Name: "SessionSimulation", Iterations: 100, NsPerOp: 1234.5, BytesPerOp: 64, AllocsPerOp: 2},
		},
	}
	if err := write(report, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if back.Schema != "bba-bench/v1" || len(back.Results) != 1 || back.Results[0].Name != "SessionSimulation" {
		t.Errorf("round-trip mismatch: %+v", back)
	}
	if len(back.Baseline) == 0 || back.Baseline[0].NsPerOp <= 0 {
		t.Error("baseline datapoint missing from the report")
	}
}

// TestAccumMergeWorkloadRuns smoke-tests the campaign merge benchmark body
// so a broken fixture fails here rather than in CI's timed run. Session
// keys must stay globally unique or the sketch merges reject the fold.
func TestAccumMergeWorkloadRuns(t *testing.T) {
	accumMergeBench(true)(&testing.B{N: 1})
}

// TestSessionWorkloadRuns smoke-tests the headline benchmark body with a
// single session — a broken workload fails here rather than in CI's timed
// run.
func TestSessionWorkloadRuns(t *testing.T) {
	for _, observed := range []bool{false, true} {
		run, err := sessionWorkload(true, observed)
		if err != nil {
			t.Fatal(err)
		}
		if err := run(); err != nil {
			t.Errorf("observed=%v: %v", observed, err)
		}
	}
}
