package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestBuildServer(t *testing.T) {
	srv, video, err := buildServer(30, 4000, 1, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if video.NumChunks() != 30 {
		t.Errorf("chunks = %d", video.NumChunks())
	}
	if srv.Latency != 5*time.Millisecond {
		t.Errorf("latency = %v", srv.Latency)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/manifest.json")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("manifest status %s", resp.Status)
	}
	// Zero chunks falls back to the VBR default title length.
	_, v2, err := buildServer(0, 4000, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v2.NumChunks() != 1800 {
		t.Errorf("defaulted chunks = %d, want 1800", v2.NumChunks())
	}
}

// startDaemon runs the daemon on ":0" and returns its bound address plus a
// shutdown func that waits for a clean exit.
func startDaemon(t *testing.T, cfg serverConfig) (addr string, shutdown func()) {
	t.Helper()
	ready := make(chan string, 1)
	cfg.addr = "127.0.0.1:0"
	cfg.onReady = func(a string) { ready <- a }
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- run(ctx, cfg) }()
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	return addr, func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("shutdown returned %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("server did not shut down")
		}
	}
}

func TestObservabilityEndpoints(t *testing.T) {
	addr, shutdown := startDaemon(t, serverConfig{chunks: 20, chunkMS: 4000, seed: 1})
	defer shutdown()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, _ := get("/chunk/0/0"); code != http.StatusOK {
		t.Fatalf("chunk status %d", code)
	}
	if code, _ := get("/chunk/0/1"); code != http.StatusOK {
		t.Fatalf("chunk status %d", code)
	}

	code, body := get("/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	var health struct {
		Status   string `json:"status"`
		Chunks   int    `json:"chunks"`
		Requests int64  `json:"requests"`
	}
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatalf("healthz not JSON: %v\n%s", err, body)
	}
	if health.Status != "ok" || health.Chunks != 20 || health.Requests != 2 {
		t.Errorf("healthz = %+v", health)
	}

	code, body = get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	for _, want := range []string{
		"bba_chunks_requested_total 2",
		"bba_chunks_completed_total 2",
		"# TYPE bba_chunk_download_seconds histogram",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q\n%s", want, body)
		}
	}
}

// TestParallelInstances pins the ":0" contract the soak rig depends on:
// several daemons started concurrently on port 0 bind distinct ports and
// all serve.
func TestParallelInstances(t *testing.T) {
	var addrs []string
	for i := 0; i < 3; i++ {
		addr, shutdown := startDaemon(t, serverConfig{chunks: 5, chunkMS: 4000, seed: int64(i + 1)})
		defer shutdown()
		addrs = append(addrs, addr)
	}
	seen := map[string]bool{}
	for _, a := range addrs {
		if seen[a] {
			t.Fatalf("duplicate bound address %s", a)
		}
		seen[a] = true
		resp, err := http.Get("http://" + a + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz on %s: %s", a, resp.Status)
		}
	}
}

func TestGracefulShutdown(t *testing.T) {
	addr, shutdown := startDaemon(t, serverConfig{chunks: 10, chunkMS: 4000, seed: 1})
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	shutdown()
}
