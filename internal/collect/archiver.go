package collect

import "io"

// Archiver persists admitted event batches. The collector calls Append
// once per fresh event frame, before the frame's sequence number is
// spent: a nil return means the batch is durably accepted and the frame
// will be acknowledged; a non-nil return means the batch was NOT
// persisted, the frame is NACKed for retry, and the collector's archive
// lane goes sticky-failed (see CollectorConfig.Archive). Batches are
// telemetry journal JSONL. Calls are serialized by the collector's lock;
// implementations must not retain the batch slice.
//
// archive.Store satisfies Archiver directly, giving the collector a
// queryable columnar archive; WriterArchiver adapts a flat io.Writer for
// the plain-JSONL file case.
type Archiver interface {
	Append(run string, batch []byte) error
}

// WriterArchiver adapts an io.Writer into an Archiver: every batch is
// appended to W verbatim, all runs interleaved, so W accumulates one
// valid journal JSONL stream in admission order. Because a nil Append
// return is what lets the collector acknowledge the frame — after which
// the shipper drops its only other copy — W must persist per Write (an
// *os.File, not a userspace-buffered writer) whenever the stream is the
// durable record rather than a test capture.
type WriterArchiver struct {
	W io.Writer
}

// Append writes the batch to the underlying writer. A short write is an
// error: the collector must not acknowledge a half-persisted batch.
func (a WriterArchiver) Append(run string, batch []byte) error {
	n, err := a.W.Write(batch)
	if err == nil && n != len(batch) {
		err = io.ErrShortWrite
	}
	return err
}
