package archive

import (
	"sort"

	"bba/internal/telemetry"
)

// GroupRollup aggregates one experiment group's archived events: the
// paper's primary outcome (time spent rebuffering), the engagement and
// quality proxies (play time, delivered rate), and switching behaviour.
// All fields are integers so the JSON form is deterministic.
type GroupRollup struct {
	Group string `json:"group"`
	// Sessions counts distinct session labels seen in the group.
	Sessions int `json:"sessions"`
	// Events counts matched events of any kind.
	Events int64 `json:"events"`
	// Chunks and Bytes total over chunk_complete events.
	Chunks int64 `json:"chunks"`
	Bytes  int64 `json:"bytes"`
	// RateSumBps sums the delivered rate over chunk_complete events;
	// RateSumBps/Chunks is the average delivered videorate.
	RateSumBps int64 `json:"rate_sum_bps"`
	// Rebuffers counts rebuffer_start events; RebufferNS totals the stall
	// time reported by rebuffer_end events.
	Rebuffers  int64 `json:"rebuffers"`
	RebufferNS int64 `json:"rebuffer_ns"`
	// Switches counts rate_switch events; SwitchUp those that raised the
	// rate index.
	Switches int64 `json:"switches"`
	SwitchUp int64 `json:"switch_up"`
	// PlayedNS totals play time reported by session_end events.
	PlayedNS int64 `json:"played_ns"`
}

// Rollup is the result of Aggregate: per-group rollups plus run totals.
type Rollup struct {
	Run    string        `json:"run"`
	Blocks int           `json:"blocks"`
	Rows   int64         `json:"rows"`
	Groups []GroupRollup `json:"groups"`
}

// kindClass is the rollup dispatch for one kind-dictionary entry.
type kindClass uint8

const (
	classOther kindClass = iota
	classChunk
	classRebufStart
	classRebufEnd
	classSwitch
	classSessionEnd
)

func classify(name string) kindClass {
	k, ok := telemetry.ParseKind(name)
	if !ok {
		return classOther
	}
	switch k {
	case telemetry.ChunkComplete:
		return classChunk
	case telemetry.RebufferStart:
		return classRebufStart
	case telemetry.RebufferEnd:
		return classRebufEnd
	case telemetry.RateSwitch:
		return classSwitch
	case telemetry.SessionEnd:
		return classSessionEnd
	default:
		return classOther
	}
}

// aggState accumulates a rollup across blocks and the WAL tail.
type aggState struct {
	groups map[string]*GroupRollup
	// seen holds distinct session labels per group, shared across blocks so
	// a session split over a block boundary counts once.
	seen map[string]map[string]bool
}

func newAggState() *aggState {
	return &aggState{groups: map[string]*GroupRollup{}, seen: map[string]map[string]bool{}}
}

func (a *aggState) group(g string) *GroupRollup {
	gr, ok := a.groups[g]
	if !ok {
		gr = &GroupRollup{Group: g}
		a.groups[g] = gr
		a.seen[g] = map[string]bool{}
	}
	return gr
}

func (a *aggState) session(g, session string) {
	gr := a.group(g)
	if !a.seen[g][session] {
		a.seen[g][session] = true
		gr.Sessions++
	}
}

// addEvent folds one materialized event — the WAL-tail path.
func (a *aggState) addEvent(e *telemetry.Event) {
	g := telemetry.GroupOfSession(e.Session)
	a.session(g, e.Session)
	gr := a.group(g)
	gr.Events++
	switch classify(e.Kind.String()) {
	case classChunk:
		gr.Chunks++
		gr.Bytes += e.Bytes
		gr.RateSumBps += int64(e.Rate)
	case classRebufStart:
		gr.Rebuffers++
	case classRebufEnd:
		gr.RebufferNS += int64(e.Duration)
	case classSwitch:
		gr.Switches++
		if e.RateIndex > e.PrevRateIndex {
			gr.SwitchUp++
		}
	case classSessionEnd:
		gr.PlayedNS += int64(e.Played)
	}
}

// addBlock folds one block column-wise: the kind and session dictionaries
// resolve to per-entry dispatch tables once, then the row loop is array
// indexing over the decoded integer slabs — no Event is ever built.
func (a *aggState) addBlock(b *Block, q Query) error {
	kindEntries, kindRows, err := b.Dict("kind")
	if err != nil {
		return err
	}
	sessEntries, sessRows, err := b.Dict("session")
	if err != nil {
		return err
	}
	classes := make([]kindClass, len(kindEntries))
	kindOK := make([]bool, len(kindEntries))
	names := q.kindNames()
	for i, name := range kindEntries {
		classes[i] = classify(name)
		kindOK[i] = names == nil || names[name]
	}
	sessGroup := make([]string, len(sessEntries))
	sessOK := make([]bool, len(sessEntries))
	for i, sess := range sessEntries {
		sessGroup[i] = telemetry.GroupOfSession(sess)
		sessOK[i] = (q.Session == "" || sess == q.Session) &&
			(q.Group == "" || sessGroup[i] == q.Group)
	}
	var at []int64
	if q.From > 0 || q.To > 0 {
		if at, err = b.Ints("at_ns", nil); err != nil {
			return err
		}
	}
	// Only the columns the rollup reads are decoded; which ones depends on
	// the kinds actually present in the block.
	need := map[string]bool{}
	for _, cl := range classes {
		switch cl {
		case classChunk:
			need["bytes"], need["rate_bps"] = true, true
		case classRebufEnd:
			need["duration_ns"] = true
		case classSwitch:
			need["rate_index"], need["prev_rate_index"] = true, true
		case classSessionEnd:
			need["played_ns"] = true
		}
	}
	cols := map[string][]int64{}
	for name := range need {
		if cols[name], err = b.Ints(name, nil); err != nil {
			return err
		}
	}
	bytesCol, rateCol := cols["bytes"], cols["rate_bps"]
	durCol := cols["duration_ns"]
	idxCol, prevCol := cols["rate_index"], cols["prev_rate_index"]
	playedCol := cols["played_ns"]

	for i := 0; i < b.Rows(); i++ {
		ki, si := kindRows[i], sessRows[i]
		if !kindOK[ki] || !sessOK[si] {
			continue
		}
		if at != nil && !q.matchesAt(at[i]) {
			continue
		}
		g := sessGroup[si]
		a.session(g, sessEntries[si])
		gr := a.group(g)
		gr.Events++
		switch classes[ki] {
		case classChunk:
			gr.Chunks++
			gr.Bytes += bytesCol[i]
			gr.RateSumBps += rateCol[i]
		case classRebufStart:
			gr.Rebuffers++
		case classRebufEnd:
			gr.RebufferNS += durCol[i]
		case classSwitch:
			gr.Switches++
			if idxCol[i] > prevCol[i] {
				gr.SwitchUp++
			}
		case classSessionEnd:
			gr.PlayedNS += playedCol[i]
		}
	}
	return nil
}

// Aggregate computes per-group rollups for q without materializing rows
// from blocks: footer pruning skips irrelevant blocks entirely, and
// surviving blocks fold column slabs directly. The WAL tail folds row-wise.
func (s *Store) Aggregate(q Query) (Rollup, error) {
	r := Rollup{Run: q.Run}
	if q.Run == "" {
		return r, errRunRequired()
	}
	blocks, walLines, err := s.snapshot(q.Run)
	if err != nil {
		return r, err
	}
	st := newAggState()
	for _, path := range blocks {
		ft, err := readFooter(path)
		if err != nil {
			return r, err
		}
		if q.pruneBlock(ft) {
			continue
		}
		blk, err := readBlock(path)
		if err != nil {
			return r, err
		}
		if err := st.addBlock(blk, q); err != nil {
			return r, err
		}
		r.Blocks++
		r.Rows += int64(blk.Rows())
	}
	for _, line := range walLines {
		e, ok := telemetry.ParseJSONL(line)
		if !ok {
			e = parseLoose(line)
		}
		r.Rows++
		if q.matchesEvent(&e) {
			st.addEvent(&e)
		}
	}
	r.Groups = make([]GroupRollup, 0, len(st.groups))
	for _, gr := range st.groups {
		r.Groups = append(r.Groups, *gr)
	}
	sort.Slice(r.Groups, func(i, j int) bool { return r.Groups[i].Group < r.Groups[j].Group })
	return r, nil
}
