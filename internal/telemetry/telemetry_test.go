package telemetry

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
	"time"

	"bba/internal/units"
)

func sampleEvents() []Event {
	return []Event{
		{Kind: SessionStart, Chunk: -1, RateIndex: -1, PrevRateIndex: -1, Label: "BBA-2"},
		{Kind: ChunkRequest, At: time.Second, Chunk: 0, RateIndex: 2, PrevRateIndex: -1,
			Rate: 1750 * units.Kbps, Bytes: 875000},
		{Kind: ChunkComplete, At: 2 * time.Second, Chunk: 0, RateIndex: 2, PrevRateIndex: -1,
			Rate: 1750 * units.Kbps, Bytes: 875000, Duration: time.Second,
			Throughput: 7 * units.Mbps, Buffer: 4 * time.Second},
		{Kind: RebufferStart, At: 3 * time.Second, Chunk: 1, RateIndex: -1, PrevRateIndex: -1},
		{Kind: RebufferEnd, At: 5 * time.Second, Chunk: 1, RateIndex: -1, PrevRateIndex: -1,
			Duration: 2 * time.Second},
		{Kind: SessionEnd, At: 10 * time.Second, Chunk: 2, RateIndex: -1, PrevRateIndex: -1,
			Played: 8 * time.Second, Duration: 2 * time.Second, Label: "BBA-2"},
	}
}

func TestKindString(t *testing.T) {
	for k := SessionStart; k <= SessionEnd; k++ {
		if k.String() == "unknown" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if Kind(0).String() != "unknown" || Kind(200).String() != "unknown" {
		t.Error("out-of-range kinds should stringify as unknown")
	}
}

func TestJournalDeterministicBytes(t *testing.T) {
	var a, b bytes.Buffer
	for _, buf := range []*bytes.Buffer{&a, &b} {
		j := NewJournal(buf)
		for _, e := range sampleEvents() {
			j.OnEvent(e)
		}
		if err := j.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("identical event streams produced different journals")
	}
	lines := strings.Split(strings.TrimRight(a.String(), "\n"), "\n")
	if len(lines) != len(sampleEvents()) {
		t.Fatalf("journal has %d lines, want %d", len(lines), len(sampleEvents()))
	}
	for i, l := range lines {
		if !strings.HasPrefix(l, `{"kind":"`) || !strings.HasSuffix(l, "}") {
			t.Errorf("line %d is not a JSON object: %s", i, l)
		}
	}
	if !strings.Contains(lines[0], `"label":"BBA-2"`) {
		t.Errorf("session_start line missing label: %s", lines[0])
	}
}

type failWriter struct{ after int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.after -= len(p)
	if f.after < 0 {
		return 0, errWrite
	}
	return len(p), nil
}

var errWrite = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "synthetic write failure" }

func TestJournalStickyError(t *testing.T) {
	j := NewJournal(&failWriter{after: 16})
	for i := 0; i < 100; i++ {
		j.OnEvent(Event{Kind: BufferSample, Chunk: i})
	}
	if j.Flush() == nil {
		t.Fatal("expected sticky write error")
	}
	if j.Err() == nil {
		t.Fatal("Err should report the sticky error")
	}
}

func TestRingBoundsAndOrder(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.OnEvent(Event{Kind: BufferSample, Chunk: i})
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if r.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", r.Dropped())
	}
	evs := r.Events()
	for i, e := range evs {
		if e.Chunk != 6+i {
			t.Fatalf("event %d has chunk %d, want %d (oldest-first)", i, e.Chunk, 6+i)
		}
	}
	if r.CountKind(BufferSample) != 4 || r.CountKind(Seek) != 0 {
		t.Error("CountKind miscounts")
	}
}

func TestMultiDropsNils(t *testing.T) {
	if Multi(nil, nil) != nil {
		t.Error("Multi of nils should be nil")
	}
	var n1, n2 int
	o := Multi(nil, Func(func(Event) { n1++ }), Func(func(Event) { n2++ }))
	o.OnEvent(Event{Kind: Seek})
	o.OnEvent(Event{Kind: Seek})
	if n1 != 2 || n2 != 2 {
		t.Errorf("fan-out counts = %d, %d; want 2, 2", n1, n2)
	}
	r := NewRing(1)
	if got := Multi(nil, r); got != Observer(r) {
		t.Error("Multi with one live observer should return it unwrapped")
	}
}

func TestCaptureStampsSession(t *testing.T) {
	c := &Capture{Session: "d0.w01.s002.BBA-2"}
	c.OnEvent(Event{Kind: SessionStart})
	c.OnEvent(Event{Kind: SessionEnd, Session: "explicit"})
	if c.Events[0].Session != "d0.w01.s002.BBA-2" {
		t.Error("empty session not stamped")
	}
	if c.Events[1].Session != "explicit" {
		t.Error("pre-labelled session overwritten")
	}
}

func TestPromExposition(t *testing.T) {
	p := NewProm("")
	for _, e := range sampleEvents() {
		p.OnEvent(e)
	}
	p.OnEvent(Event{Kind: BufferSample, Buffer: 45 * time.Second})
	var buf bytes.Buffer
	p.WriteTo(&buf)
	out := buf.String()
	for _, want := range []string{
		"bba_sessions_started_total 1",
		"bba_sessions_completed_total 1",
		"bba_chunks_completed_total 1",
		"bba_downloaded_bytes_total 875000",
		"bba_rebuffers_total 1",
		"bba_stall_seconds_total 2",
		`bba_chunk_download_seconds_bucket{le="1"} 1`,
		"bba_chunk_download_seconds_count 1",
		`bba_buffer_level_seconds_bucket{le="+Inf"} 1`,
		"# TYPE bba_chunk_download_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// Cumulative buckets must be non-decreasing.
	last := -1
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "bba_chunk_download_seconds_bucket") {
			n, err := strconv.Atoi(line[strings.LastIndexByte(line, ' ')+1:])
			if err != nil {
				t.Fatalf("bad bucket line %q: %v", line, err)
			}
			if n < last {
				t.Errorf("bucket counts decrease at %q", line)
			}
			last = n
		}
	}
}
