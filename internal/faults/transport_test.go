package faults

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// fixedClock steps a Transport/HTTPInjector through schedule time without
// wall-clock reads.
type fixedClock struct{ at time.Time }

func (c *fixedClock) now() time.Time             { return c.at }
func (c *fixedClock) advance(d time.Duration)    { c.at = c.at.Add(d) }
func epoch() time.Time                           { return time.Unix(1_700_000_000, 0) }
func newFixedClock(at time.Duration) *fixedClock { return &fixedClock{at: epoch().Add(at)} }

func newFaultTransport(t *testing.T, s *Schedule, at time.Duration) (*Transport, *httptest.Server, *[]Kind) {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(strings.Repeat("x", 4<<10)))
	}))
	t.Cleanup(srv.Close)
	clock := newFixedClock(at)
	var seen []Kind
	tr := &Transport{
		Base:     srv.Client().Transport,
		Schedule: s,
		Seed:     1,
		Now:      clock.now,
		Sleep:    func(time.Duration) {},
		OnFault:  func(k Kind, _ int64) { seen = append(seen, k) },
	}
	tr.Start(epoch())
	return tr, srv, &seen
}

// get issues requests through tr until one lands inside the fault window
// (injection is probabilistic per request at p=0.9).
func getFaulted(t *testing.T, tr *Transport, url string, want Kind, seen *[]Kind) *http.Response {
	t.Helper()
	for i := 0; i < 64; i++ {
		resp, err := tr.RoundTrip(mustReq(t, url))
		if err != nil {
			t.Fatal(err)
		}
		if n := len(*seen); n > 0 && (*seen)[n-1] == want {
			return resp
		}
		resp.Body.Close()
	}
	t.Fatalf("no %v injected in 64 requests at p=0.9", want)
	return nil
}

func mustReq(t *testing.T, url string) *http.Request {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	return req
}

func TestTransportServerError(t *testing.T) {
	s := MustSchedule([]Fault{{Kind: ServerError, Start: 10 * time.Second, Duration: 10 * time.Second}})
	tr, srv, seen := newFaultTransport(t, s, 15*time.Second)
	resp := getFaulted(t, tr, srv.URL, ServerError, seen)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
}

func TestTransportConnReset(t *testing.T) {
	s := MustSchedule([]Fault{{Kind: ConnReset, Start: 0, Duration: 10 * time.Second}})
	tr, srv, seen := newFaultTransport(t, s, 5*time.Second)
	resp := getFaulted(t, tr, srv.URL, ConnReset, seen)
	defer resp.Body.Close()
	_, err := io.ReadAll(resp.Body)
	if !errors.Is(err, ErrConnReset) {
		t.Fatalf("ReadAll err = %v, want ErrConnReset", err)
	}
}

func TestTransportStallBody(t *testing.T) {
	s := MustSchedule([]Fault{{Kind: StallBody, Start: 0, Duration: 10 * time.Second}})
	tr, srv, seen := newFaultTransport(t, s, 5*time.Second)
	var stalled bool
	tr.Sleep = func(time.Duration) { stalled = true }
	resp := getFaulted(t, tr, srv.URL, StallBody, seen)
	defer resp.Body.Close()
	buf := make([]byte, 8<<10)
	var total int
	for i := 0; i < 8 && !stalled; i++ {
		n, err := resp.Body.Read(buf)
		total += n
		if err != nil {
			t.Fatalf("read err %v before stall", err)
		}
	}
	if !stalled {
		t.Fatal("body never stalled")
	}
	if total > 1<<10 {
		t.Fatalf("delivered %d bytes before stalling, want ≤ 1KiB", total)
	}
}

func TestTransportLatencySpikeAndTransparency(t *testing.T) {
	s := MustSchedule([]Fault{{Kind: LatencySpike, Start: 10 * time.Second, Duration: 10 * time.Second, Latency: 750 * time.Millisecond}})
	tr, srv, _ := newFaultTransport(t, s, 15*time.Second)
	var slept time.Duration
	tr.Sleep = func(d time.Duration) { slept += d }
	resp, err := tr.RoundTrip(mustReq(t, srv.URL))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if slept != 750*time.Millisecond {
		t.Errorf("slept %v, want the spike's 750ms", slept)
	}
	if len(body) != 4<<10 {
		t.Errorf("body %d bytes, want full response (spikes delay, not corrupt)", len(body))
	}

	// Outside every episode the transport is transparent.
	clock := newFixedClock(25 * time.Second)
	tr.Now = clock.now
	slept = 0
	resp, err = tr.RoundTrip(mustReq(t, srv.URL))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if slept != 0 || len(body) != 4<<10 {
		t.Errorf("outside episodes: slept %v, body %d bytes; want 0 and full body", slept, len(body))
	}
}

func TestHTTPInjectorRequest(t *testing.T) {
	s := MustSchedule([]Fault{
		{Kind: LatencySpike, Start: 0, Duration: 10 * time.Second, Latency: time.Second},
		{Kind: ServerError, Start: 5 * time.Second, Duration: 5 * time.Second},
	})
	clock := newFixedClock(6 * time.Second)
	in := &HTTPInjector{Schedule: s, Seed: 3, Now: clock.now}
	in.Start(epoch())
	sawBoth := false
	for i := 0; i < 64 && !sawBoth; i++ {
		lat, kind, fault := in.Request()
		if lat != time.Second {
			t.Fatalf("latency %v, want the spike's 1s", lat)
		}
		if fault {
			if kind != ServerError {
				t.Fatalf("fault kind %v, want server_error", kind)
			}
			sawBoth = true
		}
	}
	if !sawBoth {
		t.Fatal("no server_error in 64 requests at p=0.9")
	}
	// Decisions replay identically for the same seed and sequence.
	rerun := &HTTPInjector{Schedule: s, Seed: 3, Now: clock.now}
	rerun.Start(epoch())
	a := &HTTPInjector{Schedule: s, Seed: 3, Now: clock.now}
	a.Start(epoch())
	for i := 0; i < 32; i++ {
		l1, k1, f1 := rerun.Request()
		l2, k2, f2 := a.Request()
		if l1 != l2 || k1 != k2 || f1 != f2 {
			t.Fatal("same seed and sequence disagreed")
		}
	}
	// Outside episodes: inert.
	clock.advance(20 * time.Second)
	if lat, _, fault := in.Request(); lat != 0 || fault {
		t.Error("injector fired outside every episode")
	}
	var nilInj *HTTPInjector
	if lat, _, fault := nilInj.Request(); lat != 0 || fault {
		t.Error("nil injector fired")
	}
}
