package archive

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"bba/internal/telemetry"
)

// benchStore builds a compacted store of n events in b.TempDir.
func benchStore(b *testing.B, n int) *Store {
	b.Helper()
	s, err := Open(Config{Dir: b.TempDir(), CompactEvents: 1 << 16})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	const batch = 512
	for i := 0; i < n; i += batch {
		end := i + batch
		if end > n {
			end = n
		}
		if err := s.Append("bench", batchOf(i, end)); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.CompactAll(); err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkAggregate is the columnar rollup path: footer pruning plus
// column-slab folds, no row materialization.
func BenchmarkAggregate(b *testing.B) {
	const n = 100_000
	s := benchStore(b, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := s.Aggregate(Query{Run: "bench"})
		if err != nil {
			b.Fatal(err)
		}
		if r.Rows != n {
			b.Fatalf("rows = %d, want %d", r.Rows, n)
		}
	}
	b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkJSONLAggregate is the equivalent row-wise baseline: read the
// exported JSONL journal and fold it line by line — what every analysis
// did before the columnar store existed.
func BenchmarkJSONLAggregate(b *testing.B) {
	const n = 100_000
	s := benchStore(b, n)
	path := filepath.Join(b.TempDir(), "journal.jsonl")
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Export("bench", f); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := os.ReadFile(path)
		if err != nil {
			b.Fatal(err)
		}
		st := newAggState()
		rows := 0
		for len(data) > 0 {
			nl := bytes.IndexByte(data, '\n')
			line := data[:nl+1]
			data = data[nl+1:]
			e, ok := telemetry.ParseJSONL(line)
			if !ok {
				e = parseLoose(line)
			}
			st.addEvent(&e)
			rows++
		}
		if rows != n {
			b.Fatalf("rows = %d, want %d", rows, n)
		}
	}
	b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkScanKind measures a selective scan: one kind out of eight, so
// dictionary-index filtering skips 7/8 rows before materializing.
func BenchmarkScanKind(b *testing.B) {
	const n = 100_000
	s := benchStore(b, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		err := s.Scan(Query{Run: "bench", Kinds: []telemetry.Kind{telemetry.RebufferStart}},
			func(telemetry.Event) bool { count++; return true })
		if err != nil {
			b.Fatal(err)
		}
		if count == 0 {
			b.Fatal("scan matched nothing")
		}
	}
}

// BenchmarkAppend measures the WAL ingest path the collector calls inline.
func BenchmarkAppend(b *testing.B) {
	s, err := Open(Config{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	batch := batchOf(0, 64)
	b.SetBytes(int64(len(batch)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Append("bench", batch); err != nil {
			b.Fatal(err)
		}
	}
}
