package soak

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"bba/internal/dash"
	"bba/internal/media"
)

func loadOrigin(t *testing.T) *dash.Origin {
	t.Helper()
	video, err := media.NewVBR(media.VBRConfig{
		Title:         "load",
		Ladder:        media.DefaultLadder(),
		ChunkDuration: 500 * time.Millisecond,
		NumChunks:     16,
	}, newRand(7))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := dash.NewServer(video)
	if err != nil {
		t.Fatal(err)
	}
	origin, err := dash.StartOrigin("127.0.0.1:0", srv, dash.OriginConfig{ShutdownGrace: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { origin.Close(context.Background()) })
	return origin
}

// TestRunLoadRamp drives a miniature two-step ramp of real-socket
// clients against a live origin and checks the measurements add up.
func TestRunLoadRamp(t *testing.T) {
	origin := loadOrigin(t)
	res, err := RunLoad(context.Background(), LoadConfig{
		URL:        origin.URL(),
		Target:     8,
		Step:       4,
		Dwell:      200 * time.Millisecond,
		KneeFactor: 1000, // loopback jitter must not fake a knee
		ChunkSpan:  16,
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if len(res.Steps) != 2 {
		t.Fatalf("got %d steps, want 2", len(res.Steps))
	}
	for i, want := range []int{4, 8} {
		step := res.Steps[i]
		if step.Clients != want {
			t.Errorf("step %d clients = %d, want %d", i, step.Clients, want)
		}
		if step.Requests == 0 {
			t.Errorf("step %d completed no requests", i)
		}
		if step.Bytes == 0 || step.RequestsPerSec == 0 {
			t.Errorf("step %d measured no volume: %+v", i, step)
		}
		if step.TTFBP50Ms <= 0 || step.TTFBP95Ms < step.TTFBP50Ms {
			t.Errorf("step %d TTFB quantiles out of order: %+v", i, step)
		}
		if step.ErrorRate > 0.05 {
			t.Errorf("step %d error rate %.3f on loopback", i, step.ErrorRate)
		}
	}
	if res.Aborted {
		t.Error("ramp aborted on a healthy origin")
	}
	if res.MaxClients != 8 {
		t.Errorf("MaxClients = %d, want 8", res.MaxClients)
	}
	if res.KneeClients != 0 {
		t.Errorf("KneeClients = %d with an unreachable knee factor", res.KneeClients)
	}
	if res.BaselineP95Ms != res.Steps[0].TTFBP95Ms {
		t.Error("baseline p95 is not the first step's p95")
	}
}

// TestRunLoadFindsKnee makes the knee trivially reachable and checks
// the locator: the first over-threshold step is the knee, and MaxClients
// freezes at the last healthy step.
func TestRunLoadFindsKnee(t *testing.T) {
	origin := loadOrigin(t)
	res, err := RunLoad(context.Background(), LoadConfig{
		URL:        origin.URL(),
		Target:     8,
		Step:       4,
		Dwell:      150 * time.Millisecond,
		KneeFactor: 1e-9, // any nonzero p95 beats factor x baseline
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if res.KneeClients != 8 {
		t.Errorf("KneeClients = %d, want 8 (first step is the baseline, second crosses)", res.KneeClients)
	}
	if res.MaxClients != 4 {
		t.Errorf("MaxClients = %d, want 4 (the last pre-knee step)", res.MaxClients)
	}
}

// TestRunLoadAbortsOnErrors points the ramp at an origin that only
// fails: the first step must trip the error-rate guard and abort.
func TestRunLoadAbortsOnErrors(t *testing.T) {
	failing := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "no", http.StatusInternalServerError)
	}))
	defer failing.Close()
	res, err := RunLoad(context.Background(), LoadConfig{
		URL:    failing.URL,
		Target: 8,
		Step:   4,
		Dwell:  100 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if !res.Aborted {
		t.Fatal("ramp did not abort against an all-500 origin")
	}
	if len(res.Steps) != 1 {
		t.Errorf("aborted ramp ran %d steps, want 1", len(res.Steps))
	}
	if res.MaxClients != 0 {
		t.Errorf("MaxClients = %d for an origin that served nothing", res.MaxClients)
	}
}

func TestRunLoadNeedsURL(t *testing.T) {
	if _, err := RunLoad(context.Background(), LoadConfig{}); err == nil {
		t.Fatal("RunLoad accepted an empty URL")
	}
}
