package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bba/internal/campaign"
	"bba/internal/collect"
)

func testOpts(sessions int) options {
	return options{
		sessions:        sessions,
		shardSize:       8,
		days:            3,
		seed:            11,
		workers:         2,
		sketch:          64,
		stripes:         1,
		checkpointEvery: 1,
		progressEvery:   time.Nanosecond, // print every shard
	}
}

// TestEndToEndReport runs a tiny campaign through the CLI path and checks
// the report and the progress stream.
func TestEndToEndReport(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run(context.Background(), &out, &errw, testOpts(24)); err != nil {
		t.Fatal(err)
	}
	var rep campaign.Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report is not JSON: %v", err)
	}
	if rep.Truncated {
		t.Error("complete run reported truncated")
	}
	if rep.Sessions != 24 {
		t.Errorf("report covers %d sessions, want 24", rep.Sessions)
	}
	if !strings.Contains(errw.String(), "eta") || !strings.Contains(errw.String(), "sessions/s") {
		t.Errorf("progress stream missing throughput/ETA: %q", errw.String())
	}
}

// TestCustomAlgos pins the -algos flag: any registered algorithms can form
// the campaign arms, and an unknown name fails with the registry's
// enumerating error before any session runs.
func TestCustomAlgos(t *testing.T) {
	o := testOpts(16)
	o.algos = "BBA-2, BOLA ,SmoothThroughput"
	var out, errw bytes.Buffer
	if err := run(context.Background(), &out, &errw, o); err != nil {
		t.Fatal(err)
	}
	var rep campaign.Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Groups) != 3 || rep.Groups[0].Name != "BBA-2" || rep.Groups[1].Name != "BOLA" {
		t.Errorf("arms: %+v", rep.Groups)
	}

	o.algos = "BBA-2,nope"
	err := run(context.Background(), &out, &errw, o)
	if err == nil || !strings.Contains(err.Error(), "nope") {
		t.Errorf("unknown algorithm: %v", err)
	}
}

// TestStripesAndMerge runs each stripe as its own CLI invocation, merges
// the checkpoints with -merge, and compares against the unsharded report.
func TestStripesAndMerge(t *testing.T) {
	var want bytes.Buffer
	o := testOpts(40)
	o.progressEvery = 0
	if err := run(context.Background(), &want, new(bytes.Buffer), o); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	var paths []string
	for stripe := 0; stripe < 2; stripe++ {
		so := o
		so.stripes, so.stripe = 2, stripe
		so.checkpoint = filepath.Join(dir, "cp"+string(rune('0'+stripe))+".json")
		paths = append(paths, so.checkpoint)
		var out, errw bytes.Buffer
		if err := run(context.Background(), &out, &errw, so); err != nil {
			t.Fatalf("stripe %d: %v", stripe, err)
		}
		if out.Len() != 0 {
			t.Errorf("stripe %d wrote a report on its own", stripe)
		}
	}

	var got bytes.Buffer
	mo := o
	mo.merge = strings.Join(paths, ",")
	if err := run(context.Background(), &got, new(bytes.Buffer), mo); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Error("merged stripe report differs from unsharded report")
	}
}

// TestShipRemoteAggregation runs the CLI with -ship against a live
// collector and checks the emitted report is the remote aggregation,
// byte-identical to a plain local run.
func TestShipRemoteAggregation(t *testing.T) {
	o := testOpts(24)
	o.progressEvery = 0

	var want bytes.Buffer
	if err := run(context.Background(), &want, new(bytes.Buffer), o); err != nil {
		t.Fatal(err)
	}

	c := collect.NewCollector(collect.CollectorConfig{})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	var out, errw bytes.Buffer
	so := o
	so.ship = srv.URL
	so.runID = "cli-ship"
	if err := run(context.Background(), &out, &errw, so); err != nil {
		t.Fatalf("shipped run: %v\nstderr: %s", err, errw.String())
	}
	if !bytes.Equal(out.Bytes(), want.Bytes()) {
		t.Error("shipped report differs from local report")
	}
	for _, s := range []string{"shipping run", "remote aggregation verified"} {
		if !strings.Contains(errw.String(), s) {
			t.Errorf("stderr missing %q: %q", s, errw.String())
		}
	}
	if cs := c.Stats(); cs.RunsEnded != 1 || cs.Shards == 0 {
		t.Errorf("collector stats %+v", cs)
	}
}

// TestShipFlagConflicts pins the modes -ship cannot combine with.
func TestShipFlagConflicts(t *testing.T) {
	base := testOpts(8)
	base.progressEvery = 0

	o := base
	o.ship = "http://127.0.0.1:1"
	o.merge = "x.json"
	if err := run(context.Background(), new(bytes.Buffer), new(bytes.Buffer), o); err == nil {
		t.Error("-ship with -merge accepted")
	}

	o = base
	o.ship = "http://127.0.0.1:1"
	o.stripes = 2
	if err := run(context.Background(), new(bytes.Buffer), new(bytes.Buffer), o); err == nil {
		t.Error("-ship with stripes accepted")
	}

	o = base
	o.ship = "udp://127.0.0.1:1"
	if err := run(context.Background(), new(bytes.Buffer), new(bytes.Buffer), o); err == nil {
		t.Error("-ship over udp accepted (report fetch needs HTTP)")
	}

	// A resumable checkpoint on disk conflicts with shipping: its shards
	// would never reach the collector.
	o = base
	o.checkpoint = filepath.Join(t.TempDir(), "cp.json")
	if err := run(context.Background(), new(bytes.Buffer), new(bytes.Buffer), o); err != nil {
		t.Fatal(err)
	}
	o.ship = "http://127.0.0.1:1"
	err := run(context.Background(), new(bytes.Buffer), new(bytes.Buffer), o)
	if err == nil || !strings.Contains(err.Error(), "resumed") {
		t.Errorf("-ship with a resumable checkpoint: %v", err)
	}
}

// TestInterruptResume cancels a run mid-campaign, then resumes it from the
// checkpoint via the same CLI path: the cancelled invocation must fail with
// a truncated report, and the resumed one must finish with the same report
// an uninterrupted run produces.
func TestInterruptResume(t *testing.T) {
	o := testOpts(40)
	o.progressEvery = 0

	var want bytes.Buffer
	if err := run(context.Background(), &want, new(bytes.Buffer), o); err != nil {
		t.Fatal(err)
	}

	o.checkpoint = filepath.Join(t.TempDir(), "cp.json")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	shards := 0
	// Cancel from the progress stream after two shards, as a SIGINT would.
	o.progressHook = func(campaign.Progress) {
		if shards++; shards == 2 {
			cancel()
		}
	}
	var out, errw bytes.Buffer
	err := run(ctx, &out, &errw, o)
	if err == nil {
		t.Fatal("interrupted run returned nil error (must exit non-zero)")
	}
	var trunc campaign.Report
	if jerr := json.Unmarshal(out.Bytes(), &trunc); jerr != nil {
		t.Fatalf("interrupted run wrote no truncated report: %v", jerr)
	}
	if !trunc.Truncated {
		t.Error("interrupted run's report not marked truncated")
	}
	if !strings.Contains(errw.String(), "resume") {
		t.Errorf("stderr does not mention resuming: %q", errw.String())
	}

	o.progressHook = nil
	var resumed, errw2 bytes.Buffer
	if err := run(context.Background(), &resumed, &errw2, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errw2.String(), "resuming from") {
		t.Errorf("resume did not load the checkpoint: %q", errw2.String())
	}
	if !bytes.Equal(resumed.Bytes(), want.Bytes()) {
		t.Error("resumed report differs from uninterrupted report")
	}
}
