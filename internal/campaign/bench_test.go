package campaign

import (
	"math/rand"
	"testing"

	"bba/internal/metrics"
)

// BenchmarkAccumMerge measures the campaign's merge path in isolation:
// folding 64 populated shard accumulator sets into a prefix in shard order
// — the per-shard cost every checkpoint fold and stripe merge pays.
func BenchmarkAccumMerge(b *testing.B) {
	const shards, perShard = 64, 1024
	names := []string{"Control", "BBA-2"}
	rng := rand.New(rand.NewSource(3))
	fleet := make([][]*GroupAccum, shards)
	key := uint64(0)
	for s := range fleet {
		fleet[s] = NewGroupAccums(names, 512)
		for i := 0; i < perShard; i++ {
			sess := metrics.Session{
				PlayHours:       0.1 + rng.Float64(),
				Rebuffers:       rng.Intn(4),
				Switches:        rng.Intn(20),
				AvgRateKbps:     500 + 3000*rng.Float64(),
				SteadyRateKbps:  500 + 3000*rng.Float64(),
				SteadyReached:   true,
				StartupRateKbps: 300 + 2000*rng.Float64(),
				QoE:             rng.Float64(),
			}
			for _, a := range fleet[s] {
				if err := a.AddSession(key, sess); err != nil {
					b.Fatal(err)
				}
				key++
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prefix := NewGroupAccums(names, 512)
		for _, shard := range fleet {
			if err := mergeAccumSets(prefix, shard); err != nil {
				b.Fatal(err)
			}
		}
	}
}
