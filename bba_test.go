package bba

import (
	"testing"
	"time"
)

func TestFacadeQuickstart(t *testing.T) {
	video, err := NewVBRTitle("movie", 450, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSession(SessionConfig{
		Algorithm:  NewBBA2(),
		Video:      video,
		Trace:      ConstantTrace(4*Mbps, time.Hour),
		WatchLimit: 10 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Played != 10*time.Minute {
		t.Errorf("played %v", res.Played)
	}
	if res.Rebuffers != 0 {
		t.Errorf("rebuffers = %d", res.Rebuffers)
	}
	if res.AvgRateKbps() < 1000 {
		t.Errorf("avg rate %.0f too low for a 4Mb/s link", res.AvgRateKbps())
	}
}

func TestFacadeConstructors(t *testing.T) {
	names := map[string]Algorithm{
		"BBA-0":       NewBBA0(),
		"BBA-1":       NewBBA1(),
		"BBA-2":       NewBBA2(),
		"BBA-Others":  NewBBAOthers(),
		"Control":     NewControl(),
		"Rmin Always": NewRminAlways(),
	}
	for want, a := range names {
		if a.Name() != want {
			t.Errorf("constructor for %q returned %q", want, a.Name())
		}
		byName, err := NewAlgorithm(want)
		if err != nil {
			t.Errorf("NewAlgorithm(%q): %v", want, err)
			continue
		}
		if byName.Name() != want {
			t.Errorf("NewAlgorithm(%q).Name() = %q", want, byName.Name())
		}
	}
	if _, err := NewAlgorithm("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestFacadeTraces(t *testing.T) {
	tr := StepTrace(5*Mbps, 350*Kbps, 25*time.Second, time.Minute)
	if tr.RateAt(0) != 5*Mbps || tr.RateAt(30*time.Second) != 350*Kbps {
		t.Error("step trace wrong")
	}
	v := VariableTrace(4*Mbps, 5.6, 10*time.Minute, 3)
	if v.Total() != 10*time.Minute {
		t.Errorf("variable trace length %v", v.Total())
	}
	if DefaultLadder().Min() != 235*Kbps {
		t.Error("ladder wrong")
	}
}

func TestFacadeRminPromotion(t *testing.T) {
	video, err := NewCBRTitle("cbr", 60)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSession(SessionConfig{
		Algorithm: NewRminAlways(),
		Video:     video,
		Trace:     ConstantTrace(10*Mbps, time.Hour),
		Rmin:      560 * Kbps,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Chunks {
		if c.Rate != 560*Kbps {
			t.Fatalf("chunk at %v, want promoted 560kb/s", c.Rate)
		}
	}
}

func TestFacadeExperimentTiny(t *testing.T) {
	out, err := Experiment(5, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Windows) != 6 {
		t.Errorf("groups = %d, want 6", len(out.Windows))
	}
}

func TestFacadeObservedTrace(t *testing.T) {
	video, err := NewCBRTitle("cbr", 120)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSession(SessionConfig{
		Algorithm: NewBBA2(),
		Video:     video,
		Trace:     StepTrace(5*Mbps, 350*Kbps, 25*time.Second, time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := ObservedTrace(res)
	if err != nil {
		t.Fatal(err)
	}
	// The counterfactual loop: the observed network is runnable again.
	again, err := RunSession(SessionConfig{
		Algorithm: NewRminAlways(),
		Video:     video,
		Trace:     tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if again.Rebuffers != 0 {
		t.Errorf("Rmin Always rebuffered %d times on the observed network", again.Rebuffers)
	}
}
