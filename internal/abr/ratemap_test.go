package abr

import (
	"testing"
	"testing/quick"
	"time"

	"bba/internal/media"
	"bba/internal/units"
)

func testMap() RateMap {
	// The BBA-0 deployment geometry: 90 s reservoir, 126 s cushion.
	return RateMap{
		Rmin:      235 * units.Kbps,
		Rmax:      5000 * units.Kbps,
		Reservoir: 90 * time.Second,
		Cushion:   126 * time.Second,
	}
}

func TestRateMapPinnedEnds(t *testing.T) {
	m := testMap()
	// f(0) = f(r) = Rmin and f(r+cu) = f(Bmax) = Rmax: the Section 3.1
	// pinning criterion.
	for _, b := range []time.Duration{0, time.Second, 90 * time.Second} {
		if got := m.Rate(b); got != m.Rmin {
			t.Errorf("Rate(%v) = %v, want Rmin", b, got)
		}
	}
	for _, b := range []time.Duration{216 * time.Second, 240 * time.Second, time.Hour} {
		if got := m.Rate(b); got != m.Rmax {
			t.Errorf("Rate(%v) = %v, want Rmax", b, got)
		}
	}
}

func TestRateMapMidpoint(t *testing.T) {
	m := testMap()
	mid := m.Reservoir + m.Cushion/2
	want := m.Rmin + (m.Rmax-m.Rmin)/2
	got := m.Rate(mid)
	if got < want-units.Kbps || got > want+units.Kbps {
		t.Errorf("Rate(midpoint) = %v, want ≈%v", got, want)
	}
}

func TestRateMapZeroCushion(t *testing.T) {
	m := RateMap{Rmin: units.Mbps, Rmax: 2 * units.Mbps, Reservoir: 10 * time.Second}
	if got := m.Rate(5 * time.Second); got != units.Mbps {
		t.Errorf("zero cushion below reservoir: %v", got)
	}
	if got := m.Rate(30 * time.Second); got != units.Mbps {
		t.Errorf("zero cushion should degrade to Rmin everywhere: %v", got)
	}
}

// Property: the map is monotone non-decreasing in B and always within
// [Rmin, Rmax] — the Section 3.1 criteria.
func TestQuickRateMapMonotone(t *testing.T) {
	m := testMap()
	f := func(aMs, bMs uint32) bool {
		a := time.Duration(aMs%300000) * time.Millisecond
		b := time.Duration(bMs%300000) * time.Millisecond
		if a > b {
			a, b = b, a
		}
		ra, rb := m.Rate(a), m.Rate(b)
		return ra <= rb && ra >= m.Rmin && rb <= m.Rmax
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInSafeArea(t *testing.T) {
	m := testMap()
	v := 4 * time.Second
	// Inside the reservoir: safe by convention.
	if !m.InSafeArea(50*time.Second, v) {
		t.Error("reservoir should be safe")
	}
	// Strictly applying V·f(B)/R_min ≤ B−r, a linear ramp leaving the
	// reservoir is risky in a narrow band just above r (any f with
	// f(r⁺) = R_min needs B−r ≥ V there); the paper's "stays in the safe
	// area" is approximate. Beyond that band the deployed geometry is
	// safe through the whole cushion.
	if m.InSafeArea(95*time.Second, v) {
		t.Error("band just above the reservoir should be risky under the strict bound")
	}
	for b := 102 * time.Second; b <= 240*time.Second; b += time.Second {
		if !m.InSafeArea(b, v) {
			t.Errorf("BBA-0 map unsafe at B=%v", b)
		}
	}
	// A counter-example: a map that jumps to Rmax right above a tiny
	// reservoir is risky there.
	risky := RateMap{Rmin: 235 * units.Kbps, Rmax: 5000 * units.Kbps,
		Reservoir: time.Second, Cushion: 2 * time.Second}
	if risky.InSafeArea(2*time.Second, v) {
		t.Error("steep map just above a 1s reservoir should be risky")
	}
}

func TestAlgorithm1FollowsMapRegions(t *testing.T) {
	m := testMap()
	l := media.DefaultLadder()
	// Below the reservoir: Rmin regardless of previous rate.
	if got := Algorithm1(m, l, len(l)-1, 30*time.Second); got != 0 {
		t.Errorf("below reservoir from top: %d, want 0", got)
	}
	// Above reservoir+cushion: Rmax regardless of previous rate.
	if got := Algorithm1(m, l, 0, 230*time.Second); got != len(l)-1 {
		t.Errorf("above cushion from bottom: %d, want top", got)
	}
	// First chunk with empty buffer: Rmin.
	if got := Algorithm1(m, l, -1, 0); got != 0 {
		t.Errorf("first chunk: %d, want 0", got)
	}
}

func TestAlgorithm1Hysteresis(t *testing.T) {
	m := testMap()
	l := media.DefaultLadder()
	// Find a buffer level whose map value sits strictly between two
	// adjacent rates, e.g. between 1050 and 1750 kb/s.
	var b time.Duration
	for probe := 91 * time.Second; probe < 216*time.Second; probe += time.Second {
		r := m.Rate(probe)
		if r > 1050*units.Kbps && r < 1750*units.Kbps {
			b = probe
			break
		}
	}
	if b == 0 {
		t.Fatal("no probe point found")
	}
	iMid := l.IndexOf(1050 * units.Kbps)
	// Staying: previous rate 1050, f(B) has not reached 1750 → stay.
	if got := Algorithm1(m, l, iMid, b); got != iMid {
		t.Errorf("should stick at 1050kb/s, got index %d", got)
	}
	// Also sticks at 1750 while f(B) is above its lower neighbour 1050.
	if got := Algorithm1(m, l, iMid+1, b); got != iMid+1 {
		t.Errorf("should stick at 1750kb/s, got index %d", got)
	}
	// From far below (560), f(B) ≥ Rate+ (750) → step up to the highest
	// rate below f(B), which is 1050.
	i560 := l.IndexOf(560 * units.Kbps)
	if got := Algorithm1(m, l, i560, b); got != iMid {
		t.Errorf("up-switch from 560: got index %d, want %d", got, iMid)
	}
	// From far above (3000), f(B) ≤ Rate− (2350) → step down to the
	// lowest rate above f(B), which is 1750.
	i3000 := l.IndexOf(3000 * units.Kbps)
	if got := Algorithm1(m, l, i3000, b); got != iMid+1 {
		t.Errorf("down-switch from 3000: got index %d, want %d", got, iMid+1)
	}
}

// Property: Algorithm 1 always returns a valid index, is monotone in buffer
// level for a fixed previous rate, and never "skips" hysteresis: if it
// switches up, the map value must have reached the next rate; if down, it
// must have fallen to the previous one.
func TestQuickAlgorithm1Valid(t *testing.T) {
	m := testMap()
	l := media.DefaultLadder()
	f := func(prevRaw int8, bMs uint32) bool {
		prev := int(prevRaw) % (len(l) + 2) // includes -1 and out-of-range
		b := time.Duration(bMs%300000) * time.Millisecond
		got := Algorithm1(m, l, prev, b)
		if got < 0 || got >= len(l) {
			return false
		}
		if prev >= 0 && prev < len(l) {
			fb := m.Rate(b)
			if got > prev && b < m.Reservoir+m.Cushion && fb < l[l.NextUp(prev)] {
				return false // up-switch without crossing the barrier
			}
			if got < prev && b > m.Reservoir && fb > l[l.NextDown(prev)] {
				return false // down-switch without crossing the barrier
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
