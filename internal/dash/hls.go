package dash

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"bba/internal/media"
	"bba/internal/units"
)

// HLS playlist support: alongside the MPD, the server can describe the
// title as an Apple HTTP Live Streaming master playlist (one variant per
// ladder rung) with per-variant media playlists enumerating the chunk
// URLs. Like the MPD, HLS carries no per-chunk byte sizes, so an
// HLS-driven client sees nominal encodes only; the JSON manifest remains
// the full-information source for the chunk map. The point of shipping
// both is interop: the chunk server speaks the two formats the streaming
// world actually uses.

// WriteMasterPlaylist renders the HLS master playlist for v: one variant
// stream per ladder rung, pointing at /playlist/{rate}.m3u8.
func WriteMasterPlaylist(w io.Writer, v *media.Video) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "#EXTM3U")
	fmt.Fprintln(bw, "#EXT-X-VERSION:3")
	for i, r := range v.Ladder {
		fmt.Fprintf(bw, "#EXT-X-STREAM-INF:BANDWIDTH=%d,CODECS=\"avc1.4d401f\"\n", int64(r))
		fmt.Fprintf(bw, "/playlist/%d.m3u8\n", i)
	}
	return bw.Flush()
}

// WriteMediaPlaylist renders the media playlist for one ladder rung:
// every chunk as an EXTINF entry addressing the shared /chunk URLs.
func WriteMediaPlaylist(w io.Writer, v *media.Video, rate int) error {
	if rate < 0 || rate >= len(v.Ladder) {
		return fmt.Errorf("dash: rate index %d out of range", rate)
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "#EXTM3U")
	fmt.Fprintln(bw, "#EXT-X-VERSION:3")
	fmt.Fprintf(bw, "#EXT-X-TARGETDURATION:%d\n", int(v.ChunkDuration.Seconds()+0.999))
	fmt.Fprintln(bw, "#EXT-X-MEDIA-SEQUENCE:0")
	fmt.Fprintln(bw, "#EXT-X-PLAYLIST-TYPE:VOD")
	secs := v.ChunkDuration.Seconds()
	for k := 0; k < v.NumChunks(); k++ {
		fmt.Fprintf(bw, "#EXTINF:%.3f,\n", secs)
		fmt.Fprintf(bw, "/chunk/%d/%d\n", rate, k)
	}
	fmt.Fprintln(bw, "#EXT-X-ENDLIST")
	return bw.Flush()
}

// MasterPlaylist is the parsed form of an HLS master playlist.
type MasterPlaylist struct {
	// Variants are the advertised streams in playlist order.
	Variants []Variant
}

// Variant is one EXT-X-STREAM-INF entry.
type Variant struct {
	Bandwidth units.BitRate
	URI       string
}

// Ladder returns the variants' bandwidths as a rate ladder (playlist
// order, which this server emits ascending).
func (m MasterPlaylist) Ladder() media.Ladder {
	var l media.Ladder
	for _, v := range m.Variants {
		l = append(l, v.Bandwidth)
	}
	return l
}

// ParseMasterPlaylist reads an HLS master playlist.
func ParseMasterPlaylist(r io.Reader) (MasterPlaylist, error) {
	var m MasterPlaylist
	sc := bufio.NewScanner(r)
	if !sc.Scan() || strings.TrimSpace(sc.Text()) != "#EXTM3U" {
		return m, fmt.Errorf("dash: not an m3u8 playlist")
	}
	var pending *Variant
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "#EXT-X-STREAM-INF:"):
			attrs := line[len("#EXT-X-STREAM-INF:"):]
			v := Variant{}
			for _, kv := range splitAttrs(attrs) {
				key, val, ok := strings.Cut(kv, "=")
				if !ok {
					continue
				}
				if key == "BANDWIDTH" {
					bw, err := strconv.ParseInt(val, 10, 64)
					if err != nil {
						return m, fmt.Errorf("dash: bad BANDWIDTH %q: %w", val, err)
					}
					v.Bandwidth = units.BitRate(bw)
				}
			}
			pending = &v
		case line == "" || strings.HasPrefix(line, "#"):
			// Other tags and blanks pass through.
		default:
			if pending != nil {
				pending.URI = line
				m.Variants = append(m.Variants, *pending)
				pending = nil
			}
		}
	}
	if err := sc.Err(); err != nil {
		return m, err
	}
	if len(m.Variants) == 0 {
		return m, fmt.Errorf("dash: master playlist has no variants")
	}
	return m, nil
}

// MediaPlaylist is the parsed form of a media playlist.
type MediaPlaylist struct {
	TargetDuration time.Duration
	SegmentURIs    []string
	SegmentSecs    []float64
	Ended          bool
}

// ParseMediaPlaylist reads an HLS media playlist.
func ParseMediaPlaylist(r io.Reader) (MediaPlaylist, error) {
	var m MediaPlaylist
	sc := bufio.NewScanner(r)
	if !sc.Scan() || strings.TrimSpace(sc.Text()) != "#EXTM3U" {
		return m, fmt.Errorf("dash: not an m3u8 playlist")
	}
	var pendingDur float64
	var havePending bool
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "#EXT-X-TARGETDURATION:"):
			secs, err := strconv.Atoi(line[len("#EXT-X-TARGETDURATION:"):])
			if err != nil {
				return m, fmt.Errorf("dash: bad target duration: %w", err)
			}
			m.TargetDuration = time.Duration(secs) * time.Second
		case strings.HasPrefix(line, "#EXTINF:"):
			spec := strings.TrimSuffix(line[len("#EXTINF:"):], ",")
			secs, err := strconv.ParseFloat(strings.Split(spec, ",")[0], 64)
			if err != nil {
				return m, fmt.Errorf("dash: bad EXTINF %q: %w", spec, err)
			}
			pendingDur = secs
			havePending = true
		case line == "#EXT-X-ENDLIST":
			m.Ended = true
		case line == "" || strings.HasPrefix(line, "#"):
		default:
			if havePending {
				m.SegmentURIs = append(m.SegmentURIs, line)
				m.SegmentSecs = append(m.SegmentSecs, pendingDur)
				havePending = false
			}
		}
	}
	if err := sc.Err(); err != nil {
		return m, err
	}
	if len(m.SegmentURIs) == 0 {
		return m, fmt.Errorf("dash: media playlist has no segments")
	}
	return m, nil
}

// splitAttrs splits an attribute list on commas outside quoted strings.
func splitAttrs(s string) []string {
	var out []string
	var cur strings.Builder
	inQuote := false
	for _, r := range s {
		switch {
		case r == '"':
			inQuote = !inQuote
			cur.WriteRune(r)
		case r == ',' && !inQuote:
			out = append(out, cur.String())
			cur.Reset()
		default:
			cur.WriteRune(r)
		}
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}
