// Command bbacampaign runs a large-scale streaming campaign: the paired A/B
// population at million-session counts with constant memory, deterministic
// sharding and kill-resume checkpointing.
//
// A campaign is split into fixed shards (shard-size paired sessions each).
// One process can run the whole campaign, the shard space can be striped
// across processes with -shards/-shard-of and the per-process checkpoints
// combined afterwards with -merge, or — with -worker -coord — the process
// joins a bbacoord coordinator that leases it shard ranges dynamically;
// every mode produces a final report byte-identical to a single-threaded
// run.
//
// Examples:
//
//	bbacampaign -sessions 170000 -faults -checkpoint cp.json -report report.json
//	bbacampaign -sessions 170000 -shards 4 -shard-of 2 -checkpoint cp2.json
//	bbacampaign -merge cp0.json,cp1.json,cp2.json,cp3.json -report report.json
//	bbacampaign -worker -coord http://host:8407 -batch
//
// SIGINT saves a final checkpoint, emits a truncated report (marked
// "truncated": true) and exits non-zero; re-running with the same flags and
// -checkpoint resumes without re-running or double-counting any completed
// shard. Progress — sessions/s, ETA and live per-group deltas — streams to
// stderr.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"bba/internal/abr"
	"bba/internal/abtest"
	"bba/internal/campaign"
	"bba/internal/collect"
	"bba/internal/coord"
	"bba/internal/faults"
)

type options struct {
	algos           string
	sessions        int
	shardSize       int
	days            int
	seed            int64
	faultSeed       int64
	faultsOn        bool
	batch           bool
	batchWidth      int
	cpuProfile      string
	memProfile      string
	workers         int
	sketch          int
	stripes         int
	stripe          int
	checkpoint      string
	checkpointEvery int
	merge           string
	report          string
	ship            string
	runID           string
	worker          bool
	coordURL        string
	workerName      string
	progressEvery   time.Duration
	// progressHook is a test seam: called with every progress snapshot in
	// addition to the stderr printer.
	progressHook func(campaign.Progress)
	// beforeShard is a test seam for worker mode: called before each leased
	// shard executes; an error abandons the worker mid-lease.
	beforeShard func(shard int) error
}

func main() {
	var o options
	flag.StringVar(&o.algos, "algos", "", "comma-separated experiment arms (default the paper's standard groups; part of the campaign identity); registered: "+strings.Join(abr.Names(), ", "))
	flag.IntVar(&o.sessions, "sessions", 10000, "paired session draws (each streamed once per group)")
	flag.IntVar(&o.shardSize, "shard-size", 1024, "paired sessions per shard (part of the campaign identity)")
	flag.IntVar(&o.days, "days", 3, "simulated calendar days")
	flag.Int64Var(&o.seed, "seed", 2014, "campaign seed")
	flag.Int64Var(&o.faultSeed, "fault-seed", 2014, "fault-weather seed (with -faults)")
	flag.BoolVar(&o.faultsOn, "faults", false, "run every session under the standard fault schedule")
	flag.BoolVar(&o.batch, "batch", false, "execute sessions through the batch kernel (byte-identical report, higher throughput)")
	flag.IntVar(&o.batchWidth, "batch-width", 0, "paired draws in flight per worker with -batch (default 8)")
	flag.StringVar(&o.cpuProfile, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&o.memProfile, "memprofile", "", "write an allocation profile to this file at exit")
	flag.IntVar(&o.workers, "workers", 0, "worker goroutines (default GOMAXPROCS)")
	flag.IntVar(&o.sketch, "sketch", 512, "quantile-sketch size per metric (part of the campaign identity)")
	flag.IntVar(&o.stripes, "shards", 1, "total process stripes the campaign is split across")
	flag.IntVar(&o.stripe, "shard-of", 0, "this process's stripe index in [0,-shards)")
	flag.StringVar(&o.checkpoint, "checkpoint", "", "checkpoint file path (written periodically and on exit; resumed from when present)")
	flag.IntVar(&o.checkpointEvery, "checkpoint-every", 8, "completed shards between checkpoint writes")
	flag.StringVar(&o.merge, "merge", "", "comma-separated stripe checkpoints to merge into a final report (runs nothing)")
	flag.StringVar(&o.report, "report", "", "final report path (default stdout)")
	flag.StringVar(&o.ship, "ship", "", "ship telemetry and shard results to this collector URL (e.g. http://host:8406); the remotely aggregated report is verified byte-for-byte against the local fold")
	flag.StringVar(&o.runID, "run-id", "", "run identifier at the collector (default campaign-<seed>; required with -worker -ship)")
	flag.BoolVar(&o.worker, "worker", false, "run as a fleet worker: lease shard ranges from a coordinator instead of running a local campaign")
	flag.StringVar(&o.coordURL, "coord", "", "coordinator URL for -worker (e.g. http://host:8407)")
	flag.StringVar(&o.workerName, "worker-name", "", "stable worker name for -worker (default host-pid)")
	flag.DurationVar(&o.progressEvery, "progress-every", 2*time.Second, "progress line interval on stderr (0 disables)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if err := run(ctx, os.Stdout, os.Stderr, o); err != nil {
		fmt.Fprintln(os.Stderr, "bbacampaign:", err)
		os.Exit(1)
	}
}

// validateFlags rejects invalid flag combinations up front with a single
// error enumerating every violation, instead of failing mid-run.
func validateFlags(o options) error {
	var bad []string
	if o.worker {
		if o.coordURL == "" {
			bad = append(bad, "-worker requires -coord (the coordinator URL)")
		}
		if o.merge != "" {
			bad = append(bad, "-worker cannot combine with -merge (the coordinator owns the fold; merging is for hand-striped runs)")
		}
		if o.checkpoint != "" {
			bad = append(bad, "-worker cannot combine with -checkpoint (resume state lives in the coordinator; pass -checkpoint to bbacoord)")
		}
		if o.stripes != 1 || o.stripe != 0 {
			bad = append(bad, "-worker cannot combine with -shards/-shard-of (the coordinator owns the shard space)")
		}
		if o.report != "" {
			bad = append(bad, "-worker writes no report; fetch it from the coordinator's /report")
		}
		if o.ship != "" && o.runID == "" {
			bad = append(bad, "-worker -ship requires an explicit -run-id (the campaign comes from the coordinator, so no campaign-<seed> default exists)")
		}
	} else if o.coordURL != "" {
		bad = append(bad, "-coord requires -worker")
	}
	if len(bad) > 0 {
		return fmt.Errorf("invalid flags:\n  - %s", strings.Join(bad, "\n  - "))
	}
	return nil
}

func run(ctx context.Context, out io.Writer, errw io.Writer, o options) error {
	if err := validateFlags(o); err != nil {
		return err
	}
	if o.ship != "" {
		if o.merge != "" {
			return errors.New("-ship and -merge are mutually exclusive: merging is local-only; ship each stripe instead")
		}
		if !o.worker && o.stripes != 1 {
			return errors.New("-ship covers the whole campaign from one process; drop -shards or merge stripe checkpoints locally")
		}
		if !strings.HasPrefix(o.ship, "http://") && !strings.HasPrefix(o.ship, "https://") {
			return fmt.Errorf("-ship requires an http(s) collector URL (the UDP lane is best-effort events only), got %q", o.ship)
		}
	}
	if o.merge != "" {
		return runMerge(out, o)
	}

	if o.cpuProfile != "" {
		f, err := os.Create(o.cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if o.memProfile != "" {
		defer func() {
			f, err := os.Create(o.memProfile)
			if err != nil {
				fmt.Fprintln(errw, "bbacampaign: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(errw, "bbacampaign: memprofile:", err)
			}
		}()
	}

	if o.worker {
		return runWorker(ctx, errw, o)
	}

	var groups []abtest.Group
	if o.algos != "" {
		var names []string
		for _, name := range strings.Split(o.algos, ",") {
			if name = strings.TrimSpace(name); name != "" {
				names = append(names, name)
			}
		}
		var err error
		if groups, err = abtest.Groups(names...); err != nil {
			return err
		}
	}

	cfg := campaign.Config{
		Groups:          groups,
		Seed:            o.seed,
		Sessions:        o.sessions,
		ShardSize:       o.shardSize,
		Days:            o.days,
		Batch:           o.batch,
		BatchWidth:      o.batchWidth,
		Parallelism:     o.workers,
		SketchSize:      o.sketch,
		Stripe:          o.stripe,
		Stripes:         o.stripes,
		CheckpointPath:  o.checkpoint,
		CheckpointEvery: o.checkpointEvery,
	}
	if o.faultsOn {
		fc := faults.DefaultScheduleConfig()
		cfg.Faults = &fc
		cfg.FaultSeed = o.faultSeed
	}
	if o.checkpoint != "" {
		if cp, err := campaign.LoadCheckpoint(o.checkpoint); err == nil {
			if o.ship != "" {
				return fmt.Errorf("cannot ship a resumed run: shards already in %s would never reach the collector; remove the checkpoint or drop -ship", o.checkpoint)
			}
			cfg.Resume = cp
			fmt.Fprintf(errw, "resuming from %s: %d shards (%d sessions) already recorded\n",
				o.checkpoint, cp.CompletedShards(), cp.SessionsDone())
		} else if !errors.Is(err, os.ErrNotExist) {
			return err
		}
	}
	if o.progressEvery > 0 {
		cfg.Progress = progressPrinter(errw, o.progressEvery)
	}
	if o.progressHook != nil {
		printer := cfg.Progress
		cfg.Progress = func(p campaign.Progress) {
			if printer != nil {
				printer(p)
			}
			o.progressHook(p)
		}
	}

	var shipper *collect.Shipper
	runID := o.runID
	if o.ship != "" {
		if runID == "" {
			runID = fmt.Sprintf("campaign-%d", o.seed)
		}
		spill, err := os.MkdirTemp("", "bbaship-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(spill)
		shipper, err = collect.NewShipper(collect.ShipperConfig{
			Addr:    o.ship,
			Run:     runID,
			Session: uint64(os.Getpid()),
			Queue:   collect.QueueConfig{SpillDir: spill},
			Retry:   collect.RetryPolicy{Seed: o.seed},
		})
		if err != nil {
			return err
		}
		defer shipper.Close()
		idJSON, err := json.Marshal(cfg.Identity())
		if err != nil {
			return err
		}
		if err := shipper.ShipRunStart(idJSON); err != nil {
			return err
		}
		fmt.Fprintf(errw, "shipping run %q to %s (session %d)\n", runID, o.ship, os.Getpid())
		cfg.Observer = shipper
		cfg.OnShard = func(shard int, accums []*campaign.GroupAccum) error {
			p, err := json.Marshal(campaign.ShardAccums{Shard: shard, Groups: accums})
			if err != nil {
				return err
			}
			return shipper.ShipShard(p)
		}
	}

	res, runErr := campaign.RunContext(ctx, cfg)
	if res != nil {
		printStats(errw, res.Stats)
	}
	if runErr != nil {
		// A cancelled run still has a resumable checkpoint and a best-effort
		// truncated report; anything else is a hard failure.
		if errors.Is(runErr, context.Canceled) && res != nil && res.Checkpoint != nil {
			if trunc, err := campaign.TruncatedReport(res.Checkpoint); err == nil {
				if err := writeReport(out, o.report, trunc); err != nil {
					return err
				}
			}
			if o.checkpoint != "" {
				fmt.Fprintf(errw, "interrupted: checkpoint saved to %s; rerun the same command to resume\n", o.checkpoint)
			}
			return fmt.Errorf("interrupted after %d shards: %w", res.Checkpoint.CompletedShards(), runErr)
		}
		return runErr
	}

	if res.Report == nil {
		// A stripe subset: the checkpoint is the product; the report comes
		// from -merge once every stripe has run.
		fmt.Fprintf(errw, "stripe %d/%d complete: %d shards in checkpoint; merge all stripes with -merge for the final report\n",
			o.stripe, o.stripes, res.Checkpoint.CompletedShards())
		if o.checkpoint == "" {
			return fmt.Errorf("stripe run without -checkpoint produces no output; pass -checkpoint")
		}
		return nil
	}
	if shipper != nil {
		return finishShipped(ctx, out, errw, o, shipper, runID, res.Report)
	}
	return writeReport(out, o.report, res.Report)
}

// finishShipped completes the run protocol — flush outstanding frames,
// announce run_end, flush again — then fetches the remotely aggregated
// report, verifies it byte-for-byte against the local fold and emits the
// remote bytes as the final report.
func finishShipped(ctx context.Context, out, errw io.Writer, o options, s *collect.Shipper, runID string, local *campaign.Report) error {
	if err := s.Flush(ctx); err != nil {
		return fmt.Errorf("flushing shipped frames: %w", err)
	}
	if err := s.ShipRunEnd(); err != nil {
		return err
	}
	if err := s.Flush(ctx); err != nil {
		return fmt.Errorf("flushing run_end: %w", err)
	}
	if err := s.Close(); err != nil {
		return err
	}
	ss := s.Stats()
	fmt.Fprintf(errw, "shipped %d frames (%d events, %d retries, %d spilled, %d dropped)\n",
		ss.FramesShipped, ss.Events, ss.Retries, ss.Queue.Spilled, ss.FramesDropped)

	remote, err := fetchReport(ctx, o.ship, runID)
	if err != nil {
		return err
	}
	var localBytes bytes.Buffer
	if err := local.WriteJSON(&localBytes); err != nil {
		return err
	}
	if !bytes.Equal(remote, localBytes.Bytes()) {
		return fmt.Errorf("remote report for run %q differs from the local fold — collector state is suspect (mixed runs under one id?)", runID)
	}
	fmt.Fprintln(errw, "remote aggregation verified: report byte-identical to the local fold")
	return writeReportBytes(out, o.report, remote)
}

// fetchReport polls the collector for the finished report. The run_end
// frame was acknowledged before this is called, so anything beyond a brief
// wait means the collector lost state.
func fetchReport(ctx context.Context, base, runID string) ([]byte, error) {
	url := strings.TrimSuffix(base, "/") + "/report/" + runID
	deadline := time.Now().Add(30 * time.Second)
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return nil, err
		}
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			var body bytes.Buffer
			_, rerr := body.ReadFrom(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK && rerr == nil {
				return body.Bytes(), nil
			}
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("collector report %s: %s: %s", url, resp.Status, strings.TrimSpace(body.String()))
			}
		} else if time.Now().After(deadline) {
			return nil, err
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
}

func writeReportBytes(out io.Writer, path string, b []byte) error {
	if path == "" {
		_, err := out.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// runWorker joins a coordinator and executes leased shard ranges until the
// campaign completes. The report is the coordinator's product; this
// process only prints its own execution stats. With -ship, every locally
// completed shard's accumulators are mirrored to a bbacollect collector
// over the frame lane in addition to the coordinator delivery.
func runWorker(ctx context.Context, errw io.Writer, o options) error {
	wcfg := coord.WorkerConfig{
		URL:         o.coordURL,
		Name:        o.workerName,
		Parallelism: o.workers,
		Batch:       o.batch,
		BatchWidth:  o.batchWidth,
		BeforeShard: o.beforeShard,
	}
	if o.progressEvery > 0 {
		wcfg.Progress = func(format string, args ...any) {
			fmt.Fprintf(errw, "worker: "+format+"\n", args...)
		}
	}

	var shipper *collect.Shipper
	if o.ship != "" {
		spill, err := os.MkdirTemp("", "bbaship-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(spill)
		shipper, err = collect.NewShipper(collect.ShipperConfig{
			Addr:    o.ship,
			Run:     o.runID,
			Session: uint64(os.Getpid()),
			Queue:   collect.QueueConfig{SpillDir: spill},
			Retry:   collect.RetryPolicy{Seed: int64(os.Getpid())},
		})
		if err != nil {
			return err
		}
		defer shipper.Close()
		wcfg.OnJoin = func(j coord.JoinResponse) error {
			idJSON, err := json.Marshal(j.Identity)
			if err != nil {
				return err
			}
			if err := shipper.ShipRunStart(idJSON); err != nil {
				return err
			}
			fmt.Fprintf(errw, "mirroring run %q to %s (session %d)\n", o.runID, o.ship, os.Getpid())
			return nil
		}
		wcfg.OnShard = func(shard int, accums []*campaign.GroupAccum) error {
			p, err := json.Marshal(campaign.ShardAccums{Shard: shard, Groups: accums})
			if err != nil {
				return err
			}
			return shipper.ShipShard(p)
		}
	}

	stats, runErr := coord.RunWorker(ctx, wcfg)
	printWorkerStats(errw, stats)
	if runErr != nil {
		return runErr
	}
	if shipper != nil {
		if err := shipper.Flush(ctx); err != nil {
			return fmt.Errorf("flushing shipped frames: %w", err)
		}
		if err := shipper.ShipRunEnd(); err != nil {
			return err
		}
		if err := shipper.Flush(ctx); err != nil {
			return fmt.Errorf("flushing run_end: %w", err)
		}
		if err := shipper.Close(); err != nil {
			return err
		}
		ss := shipper.Stats()
		fmt.Fprintf(errw, "mirrored %d frames (%d retries, %d spilled, %d dropped)\n",
			ss.FramesShipped, ss.Retries, ss.Queue.Spilled, ss.FramesDropped)
	}
	return nil
}

// printWorkerStats is the worker-mode twin of printStats: same
// sessions/s (engine=...) form, plus lease accounting.
func printWorkerStats(w io.Writer, s coord.WorkerStats) {
	if s.PlayerSessions == 0 {
		return
	}
	fmt.Fprintf(w, "worker: %d player sessions (%d paired, %d shards) in %v (%.0f sessions/s (engine=%s), %d leases, %d stolen, %d duplicate deliveries)\n",
		s.PlayerSessions, s.SessionsRun, s.ShardsRun, s.Elapsed.Round(time.Millisecond),
		s.SessionsPerSecond(), s.Engine, s.Leases, s.Stolen, s.Duplicates)
}

// runMerge combines stripe checkpoints into the final report.
func runMerge(out io.Writer, o options) error {
	var cps []*campaign.Checkpoint
	for _, path := range strings.Split(o.merge, ",") {
		cp, err := campaign.LoadCheckpoint(strings.TrimSpace(path))
		if err != nil {
			return err
		}
		cps = append(cps, cp)
	}
	merged, err := campaign.MergeCheckpoints(cps...)
	if err != nil {
		return err
	}
	rep, err := campaign.FinalReport(merged)
	if err != nil {
		return err
	}
	return writeReport(out, o.report, rep)
}

func writeReport(out io.Writer, path string, r *campaign.Report) error {
	if path == "" {
		return r.WriteJSON(out)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// progressPrinter returns a Progress callback that writes a throttled
// status line: shard and session counts, sessions/s, ETA and the live
// rebuffer-rate delta of each arm against the control.
func progressPrinter(w io.Writer, every time.Duration) func(campaign.Progress) {
	var last time.Duration
	return func(p campaign.Progress) {
		if p.Elapsed-last < every && p.SessionsDone < p.SessionsTotal {
			return
		}
		last = p.Elapsed
		fmt.Fprintf(w, "shard %d/%d  sessions %d/%d  %.0f/s  eta %v",
			p.ShardsDone, p.ShardsTotal, p.SessionsDone, p.SessionsTotal,
			p.SessionsPerSec, p.ETA.Round(time.Second))
		for i, g := range p.Groups {
			if i == 0 {
				fmt.Fprintf(w, "  [%s %.2f reb/hr", g.Name, g.RebufferRate)
				continue
			}
			fmt.Fprintf(w, " | %s %.2f", g.Name, g.RebufferRate)
			if g.VsControl > 0 {
				fmt.Fprintf(w, " (%.0f%%)", 100*g.VsControl)
			}
		}
		if len(p.Groups) > 0 {
			fmt.Fprint(w, "]")
		}
		fmt.Fprintln(w)
	}
}

func printStats(w io.Writer, s campaign.RunStats) {
	if s.PlayerSessions == 0 {
		return
	}
	fmt.Fprintf(w, "campaign: %d player sessions (%d paired) in %v (%.0f sessions/s (engine=%s), parallelism %d, peak pending %d shards)\n",
		s.PlayerSessions, s.SessionsRun, s.Elapsed.Round(time.Millisecond),
		s.SessionsPerSecond(), s.Engine, s.Parallelism, s.PeakPending)
	if s.Faults > 0 || s.Retries > 0 || s.Degradations > 0 || s.Failovers > 0 {
		fmt.Fprintf(w, "fault injection: %d faults, %d retries, %d degradations, %d failovers\n",
			s.Faults, s.Retries, s.Degradations, s.Failovers)
	}
}
