package abtest

import (
	"reflect"
	"testing"

	"bba/internal/metrics"
)

// TestStreamingAggregationMatchesRetained pins the -stream-agg contract:
// with an OnSession sink the run retains no raw sessions, yet streams the
// exact same sessions in the exact same deterministic order the retained
// path would have stored, and produces bit-identical Windows.
func TestStreamingAggregationMatchesRetained(t *testing.T) {
	cfg := Config{Seed: 99, Days: 1, SessionsPerWindow: 3, CatalogSize: 4}
	retained, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	streamed := make(map[string][]metrics.Session)
	scfg := cfg
	scfg.OnSession = func(group string, s metrics.Session) {
		streamed[group] = append(streamed[group], s)
	}
	out, err := Run(scfg)
	if err != nil {
		t.Fatal(err)
	}

	for g, want := range retained.Sessions {
		if len(out.Sessions[g]) != 0 {
			t.Errorf("group %q: streaming run retained %d sessions", g, len(out.Sessions[g]))
		}
		if !reflect.DeepEqual(streamed[g], want) {
			t.Errorf("group %q: streamed sessions differ from retained", g)
		}
		if !reflect.DeepEqual(out.Windows[g], retained.Windows[g]) {
			t.Errorf("group %q: streaming Windows differ from retained", g)
		}
	}

	// RetainSessions opts back into the raw path on top of the stream.
	scfg.RetainSessions = true
	streamed = make(map[string][]metrics.Session)
	both, err := Run(scfg)
	if err != nil {
		t.Fatal(err)
	}
	for g, want := range retained.Sessions {
		if !reflect.DeepEqual(both.Sessions[g], want) {
			t.Errorf("group %q: RetainSessions did not retain the raw sessions", g)
		}
	}
}

// TestStreamingOrderDeterministicAcrossParallelism pins that the OnSession
// stream is identical at any worker count, like the Observer stream.
func TestStreamingOrderDeterministicAcrossParallelism(t *testing.T) {
	collect := func(par int) map[string][]metrics.Session {
		got := make(map[string][]metrics.Session)
		_, err := Run(Config{
			Seed: 7, Days: 1, SessionsPerWindow: 2, CatalogSize: 4, Parallelism: par,
			OnSession: func(group string, s metrics.Session) {
				got[group] = append(got[group], s)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	if !reflect.DeepEqual(collect(1), collect(8)) {
		t.Error("OnSession stream differs across parallelism")
	}
}
