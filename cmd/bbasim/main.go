// Command bbasim simulates one streaming session in virtual time and
// prints its chunk-by-chunk timeline and quality metrics.
//
// Examples:
//
//	bbasim -alg BBA-2 -capacity 4000 -watch 10m
//	bbasim -alg Control -scenario step -watch 5m      # the Figure 4 drop
//	bbasim -alg BBA-1 -scenario variable -ratio 5.6   # a Figure 1 session
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"bba/internal/abr"
	"bba/internal/media"
	"bba/internal/player"
	"bba/internal/trace"
	"bba/internal/units"
)

func main() {
	var (
		algName  = flag.String("alg", "BBA-2", "algorithm: "+strings.Join(abr.Names(), ", "))
		capacity = flag.Int("capacity", 4000, "link capacity in kb/s (base rate for the variable scenario)")
		scenario = flag.String("scenario", "constant", "network scenario: constant, step, variable, outage")
		ratio    = flag.Float64("ratio", 5.6, "75th/25th percentile throughput ratio for the variable scenario")
		watch    = flag.Duration("watch", 10*time.Minute, "how long the viewer watches")
		chunks   = flag.Int("chunks", 1800, "title length in 4-second chunks")
		seed     = flag.Int64("seed", 1, "random seed for title and trace generation")
		rmin     = flag.Int("rmin", 0, "promoted minimum rate in kb/s (0 = full ladder)")
		traceCSV = flag.String("trace", "", "stream over a capacity trace from a CSV file (see cmd/tracegen) instead of a synthetic scenario")
		chunkCSV = flag.String("chunks-csv", "", "also write the per-chunk log to this CSV file")
		ladder   = flag.String("ladder", "", "custom encoding ladder, comma-separated kb/s values (default: the paper's 235…5000)")
		verbose  = flag.Bool("v", false, "print every chunk instead of one line per 30 seconds")
	)
	flag.Parse()

	if err := run(os.Stdout, *algName, *capacity, *scenario, *ratio, *watch, *chunks, *seed, *rmin, *traceCSV, *chunkCSV, *ladder, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "bbasim:", err)
		os.Exit(1)
	}
}

func run(out io.Writer, algName string, capacityKbps int, scenario string, ratio float64, watch time.Duration, chunks int, seed int64, rminKbps int, traceCSV, chunkCSV, ladderSpec string, verbose bool) error {
	alg, err := abr.New(algName)
	if err != nil {
		return err
	}
	ladder := media.DefaultLadder()
	if ladderSpec != "" {
		ladder, err = media.ParseLadder(ladderSpec)
		if err != nil {
			return err
		}
	}
	video, err := mkVideo(ladder, chunks, seed)
	if err != nil {
		return err
	}
	var tr *trace.Trace
	if traceCSV != "" {
		scenario = "file:" + traceCSV
		f, err := os.Open(traceCSV)
		if err != nil {
			return err
		}
		tr, err = trace.ReadCSV(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		base := units.BitRate(capacityKbps) * units.Kbps
		tr, err = mkTrace(scenario, base, ratio, watch, seed)
		if err != nil {
			return err
		}
	}

	res, err := player.Run(player.Config{
		Algorithm:  alg,
		Stream:     abr.NewStream(video, units.BitRate(rminKbps)*units.Kbps),
		Trace:      tr,
		WatchLimit: watch,
	})
	if err != nil {
		return err
	}

	if chunkCSV != "" {
		f, err := os.Create(chunkCSV)
		if err != nil {
			return err
		}
		if err := res.WriteChunkCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "time\tchunk\trate\tthroughput\tdownload\tbuffer")
	var nextPrint time.Duration
	for _, c := range res.Chunks {
		if !verbose && c.Start < nextPrint {
			continue
		}
		nextPrint = c.Start + 30*time.Second
		fmt.Fprintf(w, "%.0fs\t%d\t%v\t%v\t%.2fs\t%.0fs\n",
			c.Start.Seconds(), c.Index, c.Rate, c.Throughput, c.Download.Seconds(), c.BufferAfter.Seconds())
	}
	w.Flush()

	fmt.Fprintf(out, "\nsession summary (%s, %s scenario)\n", alg.Name(), scenario)
	fmt.Fprintf(out, "  played            %v\n", res.Played.Round(time.Second))
	fmt.Fprintf(out, "  join delay        %v\n", res.JoinDelay.Round(time.Millisecond))
	fmt.Fprintf(out, "  rebuffers         %d (%.2f per playhour, %.1fs frozen)\n",
		res.Rebuffers, res.RebuffersPerPlayhour(), res.StallTime.Seconds())
	fmt.Fprintf(out, "  average rate      %.0f kb/s\n", res.AvgRateKbps())
	fmt.Fprintf(out, "  steady-state rate %.0f kb/s (after the first two minutes)\n", res.SteadyAvgRateKbps())
	fmt.Fprintf(out, "  switches          %d (%.1f per playhour)\n", res.Switches, res.SwitchesPerPlayhour())
	if res.Incomplete {
		fmt.Fprintf(out, "  NOTE: the session could not complete (permanent outage)\n")
	}
	return nil
}

func mkVideo(ladder media.Ladder, chunks int, seed int64) (*media.Video, error) {
	return media.NewVBR(media.VBRConfig{
		Title:     "bbasim",
		Ladder:    ladder,
		NumChunks: chunks,
	}, newRand(seed))
}

func mkTrace(scenario string, base units.BitRate, ratio float64, watch time.Duration, seed int64) (*trace.Trace, error) {
	dur := watch + 15*time.Minute
	switch scenario {
	case "constant":
		return trace.Constant(base, dur), nil
	case "step":
		// The Figure 4 shape: collapse to 350 kb/s after 25 s.
		return trace.Step(base, 350*units.Kbps, 25*time.Second, dur), nil
	case "variable":
		return trace.Markov(trace.MarkovConfig{
			Base:     base,
			Sigma:    trace.SigmaForQuartileRatio(ratio),
			Duration: dur,
		}, newRand(seed+1)), nil
	case "outage":
		baseTrace := trace.Constant(base, dur)
		return trace.WithOutages(baseTrace, []trace.Outage{
			{Start: 2 * time.Minute, Duration: 25 * time.Second},
		})
	default:
		return nil, fmt.Errorf("unknown scenario %q", scenario)
	}
}
