package netem

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"bba/internal/trace"
	"bba/internal/units"
)

// fakeClock lets shaper tests run instantly: sleeping advances time.
type fakeClock struct {
	mu     sync.Mutex
	t      time.Time
	acc    time.Duration
	sleeps int
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(0, 0)} }

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) sleep(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
	c.acc += d
	c.sleeps++
}

func TestShaperDeliversTraceRate(t *testing.T) {
	clock := newFakeClock()
	// 1 MB/s (8 Mb/s).
	s := newShaperClock(trace.Constant(8*units.Mbps, time.Hour), clock.now, clock.sleep)
	// Consume 2 MB: should take ≈2 seconds of (fake) time.
	for i := 0; i < 128; i++ {
		s.Take(16 * 1024)
	}
	elapsed := clock.now().Sub(time.Unix(0, 0))
	want := time.Duration(float64(128*16*1024) / 1e6 * float64(time.Second))
	if elapsed < want*9/10 || elapsed > want*11/10 {
		t.Errorf("2MB over 1MB/s took %v of link time, want ≈%v", elapsed, want)
	}
}

func TestShaperFollowsRateChange(t *testing.T) {
	clock := newFakeClock()
	tr := trace.MustNew([]trace.Segment{
		{Duration: time.Second, Rate: 8 * units.Mbps}, // 1 MB in 1s
		{Duration: time.Hour, Rate: 800 * units.Kbps}, // then 100 kB/s
	})
	s := newShaperClock(tr, clock.now, clock.sleep)
	// 1 MB fits in the fast first second.
	s.Take(1_000_000)
	t1 := clock.now().Sub(time.Unix(0, 0))
	if t1 > 1100*time.Millisecond {
		t.Errorf("first MB took %v, want ≈1s", t1)
	}
	// The next 100 kB at 100 kB/s takes ≈1s more.
	s.Take(100_000)
	t2 := clock.now().Sub(time.Unix(0, 0))
	if d := t2 - t1; d < 800*time.Millisecond || d > 1300*time.Millisecond {
		t.Errorf("post-drop 100kB took %v, want ≈1s", d)
	}
}

// TestShaperBlackoutSegment pins Take's behavior across a zero-rate
// segment: a transfer issued as the link goes dark parks in bounded polls
// (no busy-wait, no division by the zero rate) and completes one segment
// later, as soon as restored capacity has delivered its bytes.
func TestShaperBlackoutSegment(t *testing.T) {
	clock := newFakeClock()
	tr := trace.MustNew([]trace.Segment{
		{Duration: time.Second, Rate: 8 * units.Mbps}, // 1 MB/s
		{Duration: 10 * time.Second, Rate: 0},         // blackout
		{Duration: time.Hour, Rate: 8 * units.Mbps},
	})
	s := newShaperClock(tr, clock.now, clock.sleep)

	// Drain the first segment so the next request lands in the dark.
	s.Take(1_000_000)
	clock.mu.Lock()
	clock.sleeps = 0
	clock.mu.Unlock()

	// 500 kB requested mid-blackout: 10s of darkness, then 0.5s of
	// delivery at 1 MB/s once the link returns.
	waited := s.Take(500_000)
	if waited < 10*time.Second || waited > 11*time.Second+500*time.Millisecond {
		t.Errorf("blackout Take waited %v, want ≈10.5s", waited)
	}
	clock.mu.Lock()
	sleeps := clock.sleeps
	clock.mu.Unlock()
	// The dark stretch is covered by 20ms bounded polls (≈500 of them),
	// not a busy spin of sub-millisecond naps and not one blind oversleep.
	if sleeps < 50 || sleeps > 1200 {
		t.Errorf("blackout Take slept %d times, want bounded polling (≈525)", sleeps)
	}
	if r := s.Rate(); r != 8*units.Mbps {
		t.Errorf("post-blackout rate %v, want 8Mbps", r)
	}
}

func TestShaperZeroAndNegative(t *testing.T) {
	s := NewShaper(trace.Constant(units.Mbps, time.Hour))
	if d := s.Take(0); d != 0 {
		t.Errorf("Take(0) waited %v", d)
	}
	if d := s.Take(-5); d != 0 {
		t.Errorf("Take(-5) waited %v", d)
	}
}

func TestShaperRate(t *testing.T) {
	s := NewShaper(trace.Constant(3*units.Mbps, time.Hour))
	if got := s.Rate(); got != 3*units.Mbps {
		t.Errorf("Rate before start = %v", got)
	}
}

func TestShapedConnThroughput(t *testing.T) {
	// Real sockets on loopback, shaped to 4 Mb/s: transferring 500 kB
	// must take roughly a second.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	const payload = 500_000
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		buf := bytes.Repeat([]byte("x"), payload)
		c.Write(buf)
	}()

	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	conn := NewConn(raw, NewShaper(trace.Constant(4*units.Mbps, time.Hour)))

	start := time.Now()
	n, err := io.Copy(io.Discard, conn)
	if err != nil {
		t.Fatal(err)
	}
	if n != payload {
		t.Fatalf("read %d bytes, want %d", n, payload)
	}
	elapsed := time.Since(start)
	want := 1 * time.Second // 500kB at 500kB/s
	if elapsed < want*7/10 || elapsed > want*15/10 {
		t.Errorf("shaped transfer took %v, want ≈%v", elapsed, want)
	}
}

func TestShapedListener(t *testing.T) {
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := NewListener(raw, trace.Constant(8*units.Mbps, time.Hour))
	defer ln.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		if _, ok := c.(*Conn); !ok {
			t.Error("accepted connection is not shaped")
		}
		io.Copy(io.Discard, c)
	}()

	c, err := net.Dial("tcp", raw.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c.Write([]byte("hello"))
	c.Close()
	<-done
}

func TestConnRTTDelaysFirstByte(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		buf := make([]byte, 16)
		// Echo two request/response exchanges.
		for i := 0; i < 2; i++ {
			n, err := c.Read(buf)
			if err != nil {
				return
			}
			c.Write(buf[:n])
		}
	}()

	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	const rtt = 80 * time.Millisecond
	conn := NewConnRTT(raw, NewShaper(trace.Constant(100*units.Mbps, time.Hour)), rtt)

	buf := make([]byte, 16)
	start := time.Now()
	for i := 0; i < 2; i++ {
		if _, err := conn.Write([]byte("ping")); err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Read(buf); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	// Two exchanges, one RTT charge each.
	if elapsed < 2*rtt || elapsed > 2*rtt+300*time.Millisecond {
		t.Errorf("two exchanges took %v, want ≈%v", elapsed, 2*rtt)
	}
}

func TestConnWithoutRTTDoesNotDelay(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		buf := make([]byte, 16)
		n, _ := c.Read(buf)
		c.Write(buf[:n])
	}()
	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	conn := NewConn(raw, NewShaper(trace.Constant(100*units.Mbps, time.Hour)))
	start := time.Now()
	conn.Write([]byte("ping"))
	conn.Read(make([]byte, 16))
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Errorf("unshaped exchange took %v", elapsed)
	}
}
