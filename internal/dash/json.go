package dash

import (
	"encoding/json"
	"io"
)

// jsonDecode decodes a single JSON document from r, rejecting unknown
// fields so manifest drift is caught early.
func jsonDecode(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}
