// Streaming, mergeable, constant-memory accumulators — the aggregation
// layer behind population-scale campaigns. The paper's A/B evidence covers
// millions of sessions; retaining raw per-session samples is O(sessions),
// so the campaign runner folds every session into a Welford moment
// accumulator plus a fixed-size mergeable quantile sketch instead.
//
// Determinism contract: merged results are defined as a left-to-right fold
// over fixed shard accumulators in shard-index order. Welford merging is
// deterministic but not exactly associative in floating point, so the fold
// order — never the worker count — defines the result. The quantile sketch
// IS exactly associative (bottom-k by hashed key is a set operation), so it
// is additionally invariant to merge grouping.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrNonFinite is returned when a sample contains NaN or ±Inf. sort.Float64s
// silently misorders NaN, which would corrupt every sort-based quantile, so
// non-finite inputs are rejected before any ordering happens.
var ErrNonFinite = errors.New("stats: non-finite sample")

// Welford is a constant-memory accumulator for count, mean and variance
// using Welford's online update, with min/max tracked alongside. Two
// accumulators merge with the Chan et al. parallel formula; merging shard
// accumulators in a fixed order reproduces a deterministic result at any
// worker count.
type Welford struct {
	N    int64   `json:"n"`
	Mean float64 `json:"mean"`
	// M2 is the sum of squared deviations from the running mean.
	M2  float64 `json:"m2"`
	Min float64 `json:"min"`
	Max float64 `json:"max"`
}

// Add folds one sample in. Non-finite samples are rejected with
// ErrNonFinite and leave the accumulator unchanged.
func (w *Welford) Add(x float64) error {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return ErrNonFinite
	}
	w.N++
	if w.N == 1 {
		w.Mean, w.Min, w.Max = x, x, x
		return nil
	}
	d := x - w.Mean
	w.Mean += d / float64(w.N)
	w.M2 += d * (x - w.Mean)
	if x < w.Min {
		w.Min = x
	}
	if x > w.Max {
		w.Max = x
	}
	return nil
}

// Merge folds another accumulator into w (Chan et al.). Merging in a fixed
// order is deterministic; merging in a different order may differ in the
// last bits, so campaign folds always run in shard-index order.
func (w *Welford) Merge(o Welford) {
	if o.N == 0 {
		return
	}
	if w.N == 0 {
		*w = o
		return
	}
	n := w.N + o.N
	d := o.Mean - w.Mean
	w.M2 += o.M2 + d*d*float64(w.N)*float64(o.N)/float64(n)
	w.Mean += d * float64(o.N) / float64(n)
	w.N = n
	if o.Min < w.Min {
		w.Min = o.Min
	}
	if o.Max > w.Max {
		w.Max = o.Max
	}
}

// Sum returns N·mean, the accumulated total.
func (w Welford) Sum() float64 { return w.Mean * float64(w.N) }

// Variance returns the unbiased (n−1) sample variance, 0 below two samples.
func (w Welford) Variance() float64 {
	if w.N < 2 {
		return 0
	}
	return w.M2 / float64(w.N-1)
}

// StdDev returns the sample standard deviation.
func (w Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// MeanCI95 returns the normal-approximation 95% confidence interval for the
// mean (mean ± 1.96·s/√n). Below two samples the interval collapses to the
// mean. For the session counts campaigns aggregate (thousands per arm) the
// normal approximation is the appropriate tool; small-sample runs should
// bootstrap instead.
func (w Welford) MeanCI95() (lo, hi float64) {
	if w.N < 2 {
		return w.Mean, w.Mean
	}
	half := 1.96 * w.StdDev() / math.Sqrt(float64(w.N))
	return w.Mean - half, w.Mean + half
}

// SketchEntry is one retained sample of a QuantileSketch: the sample value
// and the hash of its identity key, which decides retention.
type SketchEntry struct {
	Hash  uint64  `json:"h"`
	Value float64 `json:"v"`
}

// QuantileSketch is a fixed-size mergeable quantile estimator: it retains
// the K samples whose hashed identity keys are smallest (a bottom-k /
// KMV-style sketch). Because retention is a pure function of the key set,
// merging is exactly associative and commutative — the sketch of a sharded
// population is bit-identical to the sketch of the unsharded one — and the
// retained set is a uniform sample of the population, so quantiles estimate
// the true ones with error O(1/√K). While the sketch has seen at most K
// distinct keys it retains everything and its quantiles are exact (the
// property TestSketchExactUnderCapacity pins against Percentile).
//
// Keys must be unique per sample (the campaign uses the global session
// index); the hash is a bijective mix, so distinct keys never collide.
type QuantileSketch struct {
	K int `json:"k"`
	// Entries is canonical: sorted ascending by Hash.
	Entries []SketchEntry `json:"entries"`
	// Seen counts every accepted sample, retained or not.
	Seen int64 `json:"seen"`
}

// NewQuantileSketch returns a sketch retaining k samples (k ≥ 1).
func NewQuantileSketch(k int) QuantileSketch {
	if k < 1 {
		k = 1
	}
	return QuantileSketch{K: k}
}

// sketchMix is SplitMix64's finalizer: bijective, so distinct keys map to
// distinct hashes, and scrambled enough that bottom-k retention is an
// unbiased uniform sample even over sequential keys.
func sketchMix(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Add folds in one sample identified by key. Non-finite values are rejected
// with ErrNonFinite; duplicate keys are rejected too (they would break the
// set semantics merging relies on).
func (q *QuantileSketch) Add(x float64, key uint64) error {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return ErrNonFinite
	}
	if q.K < 1 {
		q.K = 1
	}
	h := sketchMix(key)
	i := sort.Search(len(q.Entries), func(i int) bool { return q.Entries[i].Hash >= h })
	if i < len(q.Entries) && q.Entries[i].Hash == h {
		return fmt.Errorf("stats: duplicate sketch key %d", key)
	}
	q.Seen++
	if len(q.Entries) == q.K && i == q.K {
		return nil // hash larger than everything retained: not in the bottom k
	}
	if len(q.Entries) < q.K {
		q.Entries = append(q.Entries, SketchEntry{})
	} else {
		// Full: the largest hash falls off the end.
		i = min(i, q.K-1)
	}
	copy(q.Entries[i+1:], q.Entries[i:])
	q.Entries[i] = SketchEntry{Hash: h, Value: x}
	return nil
}

// Merge unions another sketch into q, keeping the bottom K hashes. The two
// sketches must not share keys. The result is exactly the sketch a single
// accumulator would have produced over the union of both sample sets.
func (q *QuantileSketch) Merge(o QuantileSketch) error {
	if q.K < 1 {
		q.K = o.K
	}
	merged := make([]SketchEntry, 0, min(q.K, len(q.Entries)+len(o.Entries)))
	i, j := 0, 0
	for len(merged) < q.K && (i < len(q.Entries) || j < len(o.Entries)) {
		switch {
		case i == len(q.Entries):
			merged = append(merged, o.Entries[j])
			j++
		case j == len(o.Entries):
			merged = append(merged, q.Entries[i])
			i++
		case q.Entries[i].Hash < o.Entries[j].Hash:
			merged = append(merged, q.Entries[i])
			i++
		case q.Entries[i].Hash > o.Entries[j].Hash:
			merged = append(merged, o.Entries[j])
			j++
		default:
			return fmt.Errorf("stats: sketches share hash %d", q.Entries[i].Hash)
		}
	}
	q.Entries = merged
	q.Seen += o.Seen
	return nil
}

// Quantile returns the p-th percentile estimate (0 ≤ p ≤ 100). It is exact
// while the sketch has retained every sample seen. ErrNoData on an empty
// sketch.
func (q QuantileSketch) Quantile(p float64) (float64, error) {
	if len(q.Entries) == 0 {
		return 0, ErrNoData
	}
	vals := make([]float64, len(q.Entries))
	for i, e := range q.Entries {
		vals[i] = e.Value
	}
	return Percentile(vals, p)
}

// Exact reports whether the sketch still retains every sample it has seen,
// making its quantiles exact rather than estimates.
func (q QuantileSketch) Exact() bool { return int64(len(q.Entries)) == q.Seen }

// Dist is the per-metric streaming aggregate a campaign keeps per group:
// moments, extrema and a quantile sketch, with non-finite samples filtered
// out and counted explicitly rather than silently corrupting the fold.
type Dist struct {
	Moments Welford        `json:"moments"`
	Sketch  QuantileSketch `json:"sketch"`
	// NonFinite counts samples rejected for being NaN or ±Inf.
	NonFinite int64 `json:"non_finite,omitempty"`
}

// NewDist returns a Dist whose sketch retains k samples.
func NewDist(k int) Dist { return Dist{Sketch: NewQuantileSketch(k)} }

// Add folds in one sample identified by key (unique per sample, e.g. the
// global session index). Non-finite samples increment NonFinite and are
// otherwise ignored; the error reports them to callers that care.
func (d *Dist) Add(x float64, key uint64) error {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		d.NonFinite++
		return ErrNonFinite
	}
	if err := d.Moments.Add(x); err != nil {
		return err
	}
	return d.Sketch.Add(x, key)
}

// Merge folds another Dist into d. Folds must run in a fixed order for
// bit-identical results (see the package determinism contract).
func (d *Dist) Merge(o Dist) error {
	d.Moments.Merge(o.Moments)
	d.NonFinite += o.NonFinite
	return d.Sketch.Merge(o.Sketch)
}
