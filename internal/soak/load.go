package soak

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"bba/internal/stats"
)

// LoadConfig parameterizes a real-socket load ramp against one origin.
type LoadConfig struct {
	// URL is the origin base URL (required).
	URL string
	// Target is the highest concurrent client count to ramp to
	// (default 1000).
	Target int
	// Start is the first step's client count (default Step).
	Start int
	// Step is the client increment between steps (default 250).
	Step int
	// Dwell is how long each step drives load and measures
	// (default 1.5s).
	Dwell time.Duration
	// AbortErrorRate stops the ramp when a step's error fraction exceeds
	// it (default 0.05).
	AbortErrorRate float64
	// KneeFactor locates the knee: the first step whose p95 TTFB exceeds
	// KneeFactor times the first step's p95 (default 3).
	KneeFactor float64
	// Rate is the ladder rung each client requests (default 0, the
	// smallest chunks — the request-handling knee, not a memcpy test).
	Rate int
	// ChunkSpan is how many distinct chunk indices clients cycle through
	// (default 16).
	ChunkSpan int
	// Timeout bounds each request (default 5s).
	Timeout time.Duration
	// Logf, when non-nil, receives a line per completed step.
	Logf func(format string, args ...any)
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Target <= 0 {
		c.Target = 1000
	}
	if c.Step <= 0 {
		c.Step = 250
	}
	if c.Start <= 0 {
		c.Start = c.Step
	}
	if c.Dwell <= 0 {
		c.Dwell = 1500 * time.Millisecond
	}
	if c.AbortErrorRate <= 0 {
		c.AbortErrorRate = 0.05
	}
	if c.KneeFactor <= 0 {
		c.KneeFactor = 3
	}
	if c.ChunkSpan <= 0 {
		c.ChunkSpan = 16
	}
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Second
	}
	return c
}

// StepResult is one ramp step's measurement.
type StepResult struct {
	// Clients is the step's concurrent client count.
	Clients int `json:"clients"`
	// Requests and Errors count completed and failed requests during the
	// dwell; Bytes is the payload volume delivered.
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	Bytes    int64 `json:"bytes"`
	// DurationMS is the measured dwell.
	DurationMS float64 `json:"duration_ms"`
	// TTFB quantiles, milliseconds: request issue to first body byte.
	TTFBP50Ms float64 `json:"ttfb_p50_ms"`
	TTFBP95Ms float64 `json:"ttfb_p95_ms"`
	TTFBP99Ms float64 `json:"ttfb_p99_ms"`
	// RequestsPerSec and MBps are the step's aggregate service rate.
	RequestsPerSec float64 `json:"requests_per_sec"`
	MBps           float64 `json:"mbps"`
	// ErrorRate is Errors / (Requests + Errors).
	ErrorRate float64 `json:"error_rate"`
}

// LoadResult is a complete ramp.
type LoadResult struct {
	// URL is the origin that was loaded.
	URL string `json:"url"`
	// Steps are the ramp's measurements in order.
	Steps []StepResult `json:"steps"`
	// BaselineP95Ms is the first step's p95 TTFB — the reference the
	// knee is located against.
	BaselineP95Ms float64 `json:"baseline_p95_ms"`
	// KneeClients is the client count of the first step whose p95
	// exceeded KneeFactor x baseline (0: no knee inside the ramp).
	KneeClients int `json:"knee_clients"`
	// MaxClients is the largest client count that stayed inside the SLO
	// (error rate under the abort threshold and p95 under the knee
	// threshold).
	MaxClients int `json:"max_clients"`
	// Aborted reports the ramp stopped early on the error-rate guard.
	Aborted bool `json:"aborted"`
}

// RunLoad executes the step ramp: for each step it spawns the step's
// client count as goroutines — each with its own keep-alive transport,
// so each is a real TCP connection — that issue closed-loop chunk
// requests for the dwell, measuring TTFB per request into mergeable
// quantile sketches. Ramping stops at Target, or early when a step's
// error rate crosses the abort guard.
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadResult, error) {
	cfg = cfg.withDefaults()
	if cfg.URL == "" {
		return nil, fmt.Errorf("soak: load ramp needs a target URL")
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	res := &LoadResult{URL: cfg.URL}
	for clients := cfg.Start; clients <= cfg.Target; clients += cfg.Step {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		step, err := runStep(ctx, cfg, clients)
		if err != nil {
			return res, err
		}
		res.Steps = append(res.Steps, step)
		if len(res.Steps) == 1 {
			res.BaselineP95Ms = step.TTFBP95Ms
		}
		// The first step defines the reference; it cannot be its own knee.
		kneed := len(res.Steps) > 1 && res.BaselineP95Ms > 0 &&
			step.TTFBP95Ms > cfg.KneeFactor*res.BaselineP95Ms
		if kneed && res.KneeClients == 0 {
			res.KneeClients = clients
		}
		if !kneed && step.ErrorRate <= cfg.AbortErrorRate {
			res.MaxClients = clients
		}
		logf("load: %4d clients  %6.0f req/s  p50 %6.2fms  p95 %6.2fms  p99 %6.2fms  err %.3f",
			clients, step.RequestsPerSec, step.TTFBP50Ms, step.TTFBP95Ms, step.TTFBP99Ms, step.ErrorRate)
		if step.ErrorRate > cfg.AbortErrorRate {
			res.Aborted = true
			break
		}
	}
	return res, nil
}

// runStep drives one step: clients goroutines in a closed loop for the
// dwell, then merges their sketches.
func runStep(ctx context.Context, cfg LoadConfig, clients int) (StepResult, error) {
	var (
		requests, errors, bytesServed atomic.Int64
		mu                            sync.Mutex
		merged                        = stats.NewDist(512)
	)
	stepCtx, cancel := context.WithTimeout(ctx, cfg.Dwell)
	defer cancel()
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			transport := &http.Transport{MaxIdleConnsPerHost: 1}
			defer transport.CloseIdleConnections()
			client := &http.Client{Transport: transport, Timeout: cfg.Timeout}
			dist := stats.NewDist(512)
			var one [1]byte
			for seq := 0; ; seq++ {
				if stepCtx.Err() != nil {
					break
				}
				url := fmt.Sprintf("%s/chunk/%d/%d", cfg.URL, cfg.Rate, seq%cfg.ChunkSpan)
				req, err := http.NewRequestWithContext(stepCtx, http.MethodGet, url, nil)
				if err != nil {
					errors.Add(1)
					continue
				}
				issued := time.Now()
				resp, err := client.Do(req)
				if err != nil {
					if stepCtx.Err() != nil {
						break // dwell expired mid-request, not a server error
					}
					errors.Add(1)
					continue
				}
				_, err = io.ReadFull(resp.Body, one[:])
				ttfb := time.Since(issued)
				if err != nil || resp.StatusCode != http.StatusOK {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if stepCtx.Err() != nil {
						break
					}
					errors.Add(1)
					continue
				}
				n, err := io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if err != nil {
					if stepCtx.Err() != nil {
						break
					}
					errors.Add(1)
					continue
				}
				requests.Add(1)
				bytesServed.Add(n + 1)
				dist.Add(ttfb.Seconds()*1e3, uint64(worker)<<32|uint64(seq))
			}
			mu.Lock()
			merged.Merge(dist)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	step := StepResult{
		Clients:    clients,
		Requests:   requests.Load(),
		Errors:     errors.Load(),
		Bytes:      bytesServed.Load(),
		DurationMS: float64(elapsed.Milliseconds()),
	}
	if total := step.Requests + step.Errors; total > 0 {
		step.ErrorRate = float64(step.Errors) / float64(total)
	}
	if secs := elapsed.Seconds(); secs > 0 {
		step.RequestsPerSec = float64(step.Requests) / secs
		step.MBps = float64(step.Bytes) / secs / 1e6
	}
	if step.Requests > 0 {
		step.TTFBP50Ms = quantile(merged, 0.50)
		step.TTFBP95Ms = quantile(merged, 0.95)
		step.TTFBP99Ms = quantile(merged, 0.99)
	}
	return step, ctx.Err()
}

func quantile(d stats.Dist, p float64) float64 {
	v, err := d.Sketch.Quantile(p)
	if err != nil {
		return 0
	}
	return v
}
