package player

import (
	"testing"
	"time"

	"bba/internal/abr"
	"bba/internal/trace"
	"bba/internal/units"
)

func TestSeekJumpsAndFlushes(t *testing.T) {
	s := cbrStream(t, 900)
	res, err := Run(Config{
		Algorithm:  abr.NewBBA2(),
		Stream:     s,
		Trace:      trace.Constant(8*units.Mbps, time.Hour),
		WatchLimit: 8 * time.Minute,
		Seeks: []Seek{
			{AfterPlayed: 3 * time.Minute, ToChunk: 600},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeks) != 1 {
		t.Fatalf("executed %d seeks, want 1", len(res.Seeks))
	}
	if res.Seeks[0].ToChunk != 600 {
		t.Errorf("seek went to %d", res.Seeks[0].ToChunk)
	}
	if res.Seeks[0].JoinDelay <= 0 {
		t.Error("post-seek join delay not recorded")
	}
	// Playback continues to the watch limit across the seek.
	if res.Played != 8*time.Minute {
		t.Errorf("played %v, want 8m", res.Played)
	}
	// Chunks from the seek target were downloaded.
	seen := false
	for _, c := range res.Chunks {
		if c.Index >= 600 {
			seen = true
			break
		}
	}
	if !seen {
		t.Error("no chunks from the seek target")
	}
	// The flush and rebuild is not a rebuffer (it is join delay).
	if res.Rebuffers != 0 {
		t.Errorf("seek produced %d rebuffers", res.Rebuffers)
	}
}

func TestSeekReentersStartup(t *testing.T) {
	s := cbrStream(t, 900)
	alg := abr.NewBBA2()
	res, err := Run(Config{
		Algorithm:  alg,
		Stream:     s,
		Trace:      trace.Constant(8*units.Mbps, time.Hour),
		WatchLimit: 6 * time.Minute,
		Seeks:      []Seek{{AfterPlayed: 3 * time.Minute, ToChunk: 450}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The first chunk after the seek must be back at R_min: empty buffer,
	// fresh startup phase.
	for i := 1; i < len(res.Chunks); i++ {
		if res.Chunks[i].Index == 450 && res.Chunks[i-1].Index != 449 {
			if res.Chunks[i].RateIndex != 0 {
				t.Errorf("first post-seek chunk at index %d, want R_min", res.Chunks[i].RateIndex)
			}
			return
		}
	}
	t.Fatal("seek target chunk not found in the log")
}

func TestSeekOutOfRangeIgnored(t *testing.T) {
	s := cbrStream(t, 100)
	res, err := Run(Config{
		Algorithm:  abr.NewBBA0(),
		Stream:     s,
		Trace:      trace.Constant(4*units.Mbps, time.Hour),
		WatchLimit: 3 * time.Minute,
		Seeks: []Seek{
			{AfterPlayed: time.Minute, ToChunk: 5000}, // beyond the title
			{AfterPlayed: time.Minute, ToChunk: -3},   // nonsense
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeks) != 0 {
		t.Errorf("out-of-range seeks executed: %v", res.Seeks)
	}
	if res.Played != 3*time.Minute {
		t.Errorf("played %v", res.Played)
	}
}

func TestMultipleSeeks(t *testing.T) {
	s := cbrStream(t, 1800)
	res, err := Run(Config{
		Algorithm:  abr.NewBBAOthers(),
		Stream:     s,
		Trace:      trace.Constant(6*units.Mbps, 2*time.Hour),
		WatchLimit: 12 * time.Minute,
		Seeks: []Seek{
			{AfterPlayed: 3 * time.Minute, ToChunk: 500},
			{AfterPlayed: 6 * time.Minute, ToChunk: 1000},
			{AfterPlayed: 9 * time.Minute, ToChunk: 200}, // backward seek
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeks) != 3 {
		t.Fatalf("executed %d seeks, want 3", len(res.Seeks))
	}
	if res.Seeks[2].ToChunk != 200 {
		t.Error("backward seek not executed")
	}
	if res.Played != 12*time.Minute {
		t.Errorf("played %v", res.Played)
	}
	if res.Rebuffers != 0 {
		t.Errorf("%d rebuffers on a fast link", res.Rebuffers)
	}
}

// A session dominated by seeks spends most of its time in startup — the
// conclusion's "short video" regime, where BBA-2's estimation-assisted
// ramp earns clearly more rate than BBA-1's map-following.
func TestSeekHeavySessionFavorsBBA2(t *testing.T) {
	s := cbrStream(t, 1800)
	tr := trace.Constant(20*units.Mbps, 2*time.Hour)
	seeks := []Seek{
		{AfterPlayed: 2 * time.Minute, ToChunk: 400},
		{AfterPlayed: 4 * time.Minute, ToChunk: 800},
		{AfterPlayed: 6 * time.Minute, ToChunk: 1200},
	}
	run := func(a abr.Algorithm) float64 {
		res, err := Run(Config{
			Algorithm:  a,
			Stream:     s,
			Trace:      tr,
			WatchLimit: 8 * time.Minute,
			Seeks:      seeks,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.AvgRateKbps()
	}
	bba1 := run(abr.NewBBA1())
	bba2 := run(abr.NewBBA2())
	if bba2 <= bba1 {
		t.Errorf("seek-heavy session: BBA-2 %.0f not above BBA-1 %.0f", bba2, bba1)
	}
}
