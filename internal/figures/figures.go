// Package figures regenerates every figure of the paper's evaluation.
// Each generator returns a Figure — named series over a labelled axis plus
// computed notes comparing the reproduction against the paper's reported
// shape — and is wired to a benchmark in the repository root and to the
// abtest command.
//
// The A/B figures (7–9, 14–15, 17–20, 22–24) all derive from one weekend-
// scale experiment over the same paired population; the experiment runs
// once per scale and is cached, exactly as the paper's figures all read
// from the same deployment weekend.
package figures

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"bba/internal/abtest"
	"bba/internal/metrics"
)

// Scale selects the population size of the cached A/B experiment.
type Scale int

const (
	// Quick runs a reduced weekend (2 days × 80 sessions/window): a few
	// seconds, adequate for smoke checks.
	Quick Scale = iota
	// Full runs the reference weekend (3 days × 160 sessions/window)
	// used for EXPERIMENTS.md.
	Full
)

// ExperimentSeed fixes the reference experiment; change it to resample the
// population.
const ExperimentSeed = 2014

// Point is one X-labelled sample of a series.
type Point struct {
	X string
	Y float64
}

// Series is a named line in a figure.
type Series struct {
	Name   string
	Points []Point
}

// Figure is a reproduced table/plot: the series the paper's figure shows,
// plus notes stating the shape comparison.
type Figure struct {
	ID     string // e.g. "fig07b"
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// WriteTable renders the figure as an aligned text table followed by its
// notes.
func (f *Figure) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s — %s\n", strings.ToUpper(f.ID), f.Title); err != nil {
		return err
	}
	if len(f.Series) > 0 {
		fmt.Fprintf(w, "%-22s", f.XLabel)
		for _, s := range f.Series {
			fmt.Fprintf(w, "%16s", truncate(s.Name, 15))
		}
		fmt.Fprintln(w)
		for i := range longestSeries(f.Series).Points {
			fmt.Fprintf(w, "%-22s", f.Series[seriesWithPoint(f.Series, i)].Points[i].X)
			for _, s := range f.Series {
				if i < len(s.Points) {
					fmt.Fprintf(w, "%16.3f", s.Points[i].Y)
				} else {
					fmt.Fprintf(w, "%16s", "-")
				}
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "(Y axis: %s)\n", f.YLabel)
	}
	for _, n := range f.Notes {
		fmt.Fprintf(w, "  * %s\n", n)
	}
	return nil
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

func longestSeries(ss []Series) Series {
	best := ss[0]
	for _, s := range ss[1:] {
		if len(s.Points) > len(best.Points) {
			best = s
		}
	}
	return best
}

func seriesWithPoint(ss []Series, i int) int {
	for j, s := range ss {
		if i < len(s.Points) {
			return j
		}
	}
	return 0
}

var (
	expMu    sync.Mutex
	expCache = map[Scale]*abtest.Outcome{}
)

// ExperimentOutcome returns the cached weekend A/B experiment at the given
// scale, running it on first use.
func ExperimentOutcome(scale Scale) (*abtest.Outcome, error) {
	expMu.Lock()
	defer expMu.Unlock()
	if out, ok := expCache[scale]; ok {
		return out, nil
	}
	cfg := abtest.Config{Seed: ExperimentSeed, Days: 2, SessionsPerWindow: 80}
	if scale == Full {
		cfg.Days = 3
		cfg.SessionsPerWindow = 160
	}
	out, err := abtest.Run(cfg)
	if err != nil {
		return nil, err
	}
	expCache[scale] = out
	return out, nil
}

// windowPoints converts a per-window series into labelled points.
func windowPoints(ys []float64) []Point {
	pts := make([]Point, len(ys))
	for i, y := range ys {
		pts[i] = Point{X: metrics.WindowLabel(i), Y: y}
	}
	return pts
}

// peakAvg averages a per-window metric over the paper's peak windows,
// weighting by each window's play-hours.
func peakAvg(ws []metrics.Window, f func(metrics.Window) float64) float64 {
	var sum, hours float64
	for _, w := range ws {
		if !metrics.PeakWindows()[w.Index] {
			continue
		}
		sum += f(w) * w.PlayHours
		hours += w.PlayHours
	}
	if hours == 0 {
		return 0
	}
	return sum / hours
}

// offPeakAvg is peakAvg over the off-peak windows.
func offPeakAvg(ws []metrics.Window, f func(metrics.Window) float64) float64 {
	var sum, hours float64
	for _, w := range ws {
		if !metrics.OffPeakWindows()[w.Index] {
			continue
		}
		sum += f(w) * w.PlayHours
		hours += w.PlayHours
	}
	if hours == 0 {
		return 0
	}
	return sum / hours
}
