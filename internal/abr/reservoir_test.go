package abr

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"bba/internal/media"
)

func TestDynamicReservoirCBRClampsToMinimum(t *testing.T) {
	// On a CBR encode every R_min chunk downloads in exactly V seconds at
	// capacity R_min: the deficit is zero and the reservoir clamps to the
	// 8-second minimum.
	s := cbrStream(t)
	if got := DynamicReservoir(s, 0, 0); got != MinReservoir {
		t.Errorf("CBR reservoir = %v, want MinReservoir %v", got, MinReservoir)
	}
}

func TestDynamicReservoirBounds(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		s := vbrStream(t, seed)
		for k := 0; k < s.NumChunks(); k += 37 {
			r := DynamicReservoir(s, k, 0)
			if r < MinReservoir || r > MaxReservoir {
				t.Fatalf("seed %d chunk %d: reservoir %v outside [%v, %v]", seed, k, r, MinReservoir, MaxReservoir)
			}
		}
	}
}

func TestDynamicReservoirTracksSceneActivity(t *testing.T) {
	// Build a title that is quiet for its first half and busy for its
	// second half; the reservoir computed at the start of the busy part
	// must exceed the one computed at the start of the quiet part.
	ladder := media.DefaultLadder()
	n := 240
	quiet, err := media.NewVBR(media.VBRConfig{
		Ladder: ladder, NumChunks: n,
		SceneSigma: 0.01, MaxToAvg: 1.05, MinToAvg: 0.95,
	}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	// Forcing every chunk to at least 1.4× nominal (clamps above 1 defeat
	// mean normalization) models a sustained action set-piece: at
	// C = R_min each chunk adds a 0.4·V deficit, so the 480 s window
	// accumulates ≈190 s and the reservoir pins at the 140 s clamp.
	busy, err := media.NewVBR(media.VBRConfig{
		Ladder: ladder, NumChunks: n,
		SceneSigma: 0.8, MaxToAvg: 2, MinToAvg: 1.4,
	}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	rq := DynamicReservoir(NewStream(quiet, 0), 0, 0)
	rb := DynamicReservoir(NewStream(busy, 0), 0, 0)
	if rq != MinReservoir {
		t.Errorf("near-CBR reservoir = %v, want the minimum", rq)
	}
	if rb != MaxReservoir {
		t.Errorf("sustained-heavy title reservoir = %v, want the %v clamp", rb, MaxReservoir)
	}
}

func TestDynamicReservoirNearEndOfTitle(t *testing.T) {
	s := vbrStream(t, 5)
	// At the very last chunk there is nothing left to look ahead to.
	if got := DynamicReservoir(s, s.NumChunks()-1, 0); got < MinReservoir || got > MaxReservoir {
		t.Errorf("end-of-title reservoir = %v", got)
	}
	if got := DynamicReservoir(s, s.NumChunks()+100, 0); got != MinReservoir {
		t.Errorf("past-end reservoir = %v, want MinReservoir", got)
	}
}

func TestDynamicReservoirWindowDefault(t *testing.T) {
	s := vbrStream(t, 9)
	explicit := DynamicReservoir(s, 10, DefaultReservoirWindow)
	defaulted := DynamicReservoir(s, 10, 0)
	if explicit != defaulted {
		t.Errorf("window 0 should default to %v: got %v vs %v", DefaultReservoirWindow, defaulted, explicit)
	}
}

// Property: the reservoir is always within the paper's clamp and is
// monotone in the window length (a longer lookahead can only reveal a worse
// prefix).
func TestQuickReservoirWindowMonotone(t *testing.T) {
	s := vbrStream(t, 13)
	f := func(kRaw uint16, w1, w2 uint16) bool {
		k := int(kRaw) % s.NumChunks()
		a := time.Duration(w1%600+1) * time.Second
		b := time.Duration(w2%600+1) * time.Second
		if a > b {
			a, b = b, a
		}
		ra := DynamicReservoir(s, k, a)
		rb := DynamicReservoir(s, k, b)
		return ra <= rb && ra >= MinReservoir && rb <= MaxReservoir
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
