package figures

import (
	"context"
	"fmt"
	"io"
	"time"
)

// deviations records where the reproduction knowingly departs from the
// paper, kept with the generator so a regenerated EXPERIMENTS.md always
// carries it.
const deviations = `## Reading the comparison, and known deviations

Absolute numbers cannot match the paper: its substrate was the production
Netflix service over two 2013 weekends; ours is a synthetic population
calibrated to the paper's published variability statistics. The claims
checked here are the *shapes*: who wins, roughly by how much, and where.

1. **Rebuffer reductions run stronger than the paper's.** The paper
   reports 10-30% fewer rebuffers for the BBA family versus Control at
   peak; this reproduction lands at roughly 29-43%. Netflix's Control had
   five years of production tuning we cannot recover from a qualitative
   description; our Control (EWMA estimator, F(B) adjustment, panic floor,
   fast-down collapse detection) is competent but gives the buffer-based
   algorithms a somewhat larger win. Every ordering the paper reports
   holds: bound < BBA-1 < BBA-2 < Control, BBA-1 better than BBA-0,
   improvements concentrated at peak, off-peak statistically at the bound.

2. **Figures 15/17's small rate deltas flip sign.** The paper has Control
   50-120 kb/s above BBA-1 and roughly equal to BBA-2; here BBA-1/BBA-2
   end 50-120 kb/s above Control (2-4% of the average rate). Same cause as
   (1): in steady state our Control concedes a few percent of capacity to
   quantization and post-fade recovery that Netflix's did not. The
   startup-phase analysis matches the paper exactly (Control far above the
   buffer-based startup in every class), as do Figure 8's sign and
   magnitude and Figure 18's steady-state advantage for BBA-2.

3. **Figure 20's switch-rate gap is milder** (BBA-1/BBA-2 at ~1.1x Control
   versus the paper's larger multiple), and Figure 22's BBA-Others lands
   slightly *below* Control rather than indistinguishable. The directions
   — chunk map raises switching, smoothing removes it — reproduce.

4. **Rebuffer events are counted with an 8-second resume threshold**
   (playback restarts only once two chunks are buffered). Without it,
   capacity below R_min yields one rebuffer per chunk — an artifact no
   real player exhibits. The threshold applies identically to all groups.
`

// Entry names one reproducible experiment.
type Entry struct {
	// Name matches the benchmark suffix in the repository root, e.g.
	// "Fig07RebufferRateBBA0".
	Name string
	// Paper locates the artifact in the paper.
	Paper string
	// Gen produces the figure at a scale (ignored by single-session
	// generators).
	Gen func(Scale) (*Figure, error)
}

// All returns every reproduced figure, table statistic and ablation, in
// paper order followed by the ablations and extensions.
func All() []Entry {
	fixed := func(f func() (*Figure, error)) func(Scale) (*Figure, error) {
		return func(Scale) (*Figure, error) { return f() }
	}
	return []Entry{
		{"Fig01ThroughputVariability", "Figure 1", fixed(Fig01ThroughputVariability)},
		{"Sec2SessionVariability", "Sections 1–2 statistics", fixed(Sec2SessionVariability)},
		{"Fig04AggressiveRebuffer", "Figure 4", fixed(Fig04AggressiveRebuffer)},
		{"Fig07RebufferRateBBA0", "Figure 7(a,b)", Fig07RebufferRateBBA0},
		{"Fig08VideoRateBBA0", "Figure 8", Fig08VideoRateBBA0},
		{"Fig09SwitchRateBBA0", "Figure 9", Fig09SwitchRateBBA0},
		{"Fig10VBRChunkSizes", "Figure 10", fixed(Fig10VBRChunkSizes)},
		{"Fig12ReservoirCalculation", "Figure 12", fixed(Fig12Reservoir)},
		{"Fig14RebufferRateBBA1", "Figure 14(a,b)", Fig14RebufferRateBBA1},
		{"Fig15VideoRateBBA1", "Figure 15", Fig15VideoRateBBA1},
		{"Fig16StartupRamp", "Figure 16", fixed(Fig16StartupRamp)},
		{"Fig17VideoRateBBA2", "Figure 17", Fig17VideoRateBBA2},
		{"Fig18SteadyStateRate", "Figure 18", Fig18SteadyStateRate},
		{"Fig19RebufferRateBBA2", "Figure 19(a,b)", Fig19RebufferRateBBA2},
		{"Fig20SwitchRateChunkMap", "Figure 20", Fig20SwitchRateChunkMap},
		{"Fig21ChunkMapCrossings", "Figure 21", fixed(Fig21ChunkMapCrossings)},
		{"Fig22SwitchRateBBAOthers", "Figure 22", Fig22SwitchRateBBAOthers},
		{"Fig23VideoRateBBAOthers", "Figure 23", Fig23VideoRateBBAOthers},
		{"Fig24RebufferRateBBAOthers", "Figure 24(a,b)", Fig24RebufferRateBBAOthers},
		{"Sec4Significance", "Footnotes 4–5 p-values", Sec4Significance},
		{"AblationReservoir", "ablation (§5.1)", fixed(AblationReservoir)},
		{"AblationOutageProtection", "ablation (§7.1)", fixed(AblationOutageProtection)},
		{"AblationStartupThreshold", "ablation (§6)", fixed(AblationStartupThreshold)},
		{"AblationLookahead", "ablation (§7.2)", fixed(AblationLookahead)},
		{"SharedLinkFairness", "extension (§8)", fixed(SharedLinkFairness)},
		{"ShortVideoSessions", "extension (conclusion)", fixed(ShortVideoSessions)},
		{"SeekStartup", "extension (§6 seeks)", fixed(SeekStartup)},
		{"RelatedWorkComparison", "extension (§2.2/§8)", fixed(RelatedWorkComparison)},
		{"QoERanking", "extension (QoE, [7][11])", fixed(QoERanking)},
		{"OutageRobustness", "extension (§7.1 outages)", fixed(OutageRobustness)},
		{"BufferOccupancy", "extension (buffer dynamics)", fixed(BufferOccupancy)},
		{"ArenaMatrix", "extension (N-way arena)", ArenaMatrix},
	}
}

// Lookup returns the entry with the given name.
func Lookup(name string) (Entry, bool) {
	for _, e := range All() {
		if e.Name == name {
			return e, true
		}
	}
	return Entry{}, false
}

// WriteMarkdown renders every figure at the given scale as the body of
// EXPERIMENTS.md: one section per artifact with the measured series summary
// and the paper-comparison notes. Generation fans out across cores (see
// GenerateAll); the rendered order is always registry order.
func WriteMarkdown(w io.Writer, scale Scale) error {
	return WriteMarkdownContext(context.Background(), w, scale)
}

// WriteMarkdownContext is WriteMarkdown with cancellation.
func WriteMarkdownContext(ctx context.Context, w io.Writer, scale Scale) error {
	scaleName := "quick"
	if scale == Full {
		scaleName = "full (3 days × 160 sessions/window per group)"
	}
	generated := GenerateAll(ctx, scale)
	for _, g := range generated {
		if g.Err != nil {
			return fmt.Errorf("figures: %s: %w", g.Entry.Name, g.Err)
		}
	}
	fmt.Fprintf(w, "# EXPERIMENTS — paper vs. reproduction\n\n")
	fmt.Fprintf(w, "Generated by `go run ./cmd/abtest -experiments-md` at scale %q with seed %d on %s.\n",
		scaleName, ExperimentSeed, time.Now().UTC().Format("2006-01-02"))
	fmt.Fprintf(w, "Regenerate any single artifact with `go test -bench=Benchmark<Name> -benchtime=1x .`\n\n")
	fmt.Fprintf(w, "%s\n", deviations)
	for _, g := range generated {
		fmt.Fprintf(w, "## %s — %s\n\n", g.Entry.Paper, g.Fig.Title)
		fmt.Fprintf(w, "Bench target: `Benchmark%s`\n\n", g.Entry.Name)
		fmt.Fprintf(w, "```\n")
		if err := g.Fig.WriteTable(w); err != nil {
			return err
		}
		fmt.Fprintf(w, "```\n\n")
	}
	return nil
}
