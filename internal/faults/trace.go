package faults

import (
	"sort"
	"time"

	"bba/internal/trace"
)

// ApplyToTrace overlays the schedule's capacity faults — blackouts and
// collapses — onto base and returns the faulted trace. Blackouts force
// capacity to zero; collapses scale the base capacity (segment by segment,
// so a collapse over a varying trace stays proportional to it); where the
// two overlap the blackout wins. HTTP-path faults and latency spikes do
// not touch the trace — they are the injectors' business.
//
// Episodes extending past the base trace's explicit end are honoured by
// extending the final segment (the trace's persistence rule made
// explicit), so a schedule drawn over a longer horizon composes with any
// base.
func (s *Schedule) ApplyToTrace(base *trace.Trace) (*trace.Trace, error) {
	if s.Empty() {
		return base, nil
	}
	spans := s.capacitySpans()
	if len(spans) == 0 {
		return base, nil
	}

	// Extend the base so every span fits strictly inside it — one second
	// past the last span, so the rate that persists beyond the trace is
	// the restored base rate, not the tail of a fault.
	segs := base.Segments()
	total := base.Total()
	if end := spans[len(spans)-1].end; end >= total {
		segs[len(segs)-1].Duration += end - total + time.Second
		total = end + time.Second
	}
	extended, err := trace.New(segs)
	if err != nil {
		return nil, err
	}

	bounds := segBounds(extended)
	var ovs []trace.Override
	for _, sp := range spans {
		start, end := sp.start, sp.end
		if start >= total {
			continue
		}
		if end > total {
			end = total
		}
		if sp.factor == 0 {
			ovs = append(ovs, trace.Override{Start: start, Duration: end - start})
			continue
		}
		// A collapse scales whatever the base was doing, so it needs one
		// override per underlying segment it crosses.
		for cursor := start; cursor < end; {
			// The base rate next changes at the first segment boundary
			// strictly after cursor.
			i := sort.Search(len(bounds), func(i int) bool { return bounds[i] > cursor })
			segEnd := end
			if i < len(bounds) && bounds[i] < segEnd {
				segEnd = bounds[i]
			}
			ovs = append(ovs, trace.Override{
				Start:    cursor,
				Duration: segEnd - cursor,
				Rate:     extended.RateAt(cursor).Scale(sp.factor),
			})
			cursor = segEnd
		}
	}
	return trace.WithOverrides(extended, ovs)
}

// capacitySpan is a maximal interval with a uniform capacity factor < 1.
type capacitySpan struct {
	start, end time.Duration
	factor     float64
}

// capacitySpans flattens the (possibly overlapping) blackout and collapse
// episodes into disjoint spans, taking the minimum factor where they
// overlap.
func (s *Schedule) capacitySpans() []capacitySpan {
	type episode struct {
		start, end time.Duration
		factor     float64
	}
	var eps []episode
	for _, f := range s.faults {
		switch f.Kind {
		case Blackout:
			eps = append(eps, episode{f.Start, f.End(), 0})
		case Collapse:
			eps = append(eps, episode{f.Start, f.End(), f.Factor})
		}
	}
	if len(eps) == 0 {
		return nil
	}
	bounds := make([]time.Duration, 0, 2*len(eps))
	for _, e := range eps {
		bounds = append(bounds, e.start, e.end)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	var spans []capacitySpan
	for i := 0; i+1 < len(bounds); i++ {
		a, b := bounds[i], bounds[i+1]
		if a == b {
			continue
		}
		factor := 1.0
		for _, e := range eps {
			if e.start <= a && b <= e.end && e.factor < factor {
				factor = e.factor
			}
		}
		if factor >= 1 {
			continue
		}
		// Merge with the previous span when contiguous and same factor.
		if n := len(spans); n > 0 && spans[n-1].end == a && spans[n-1].factor == factor {
			spans[n-1].end = b
			continue
		}
		spans = append(spans, capacitySpan{a, b, factor})
	}
	return spans
}

// segBounds returns the start time of every segment of t, ascending.
func segBounds(t *trace.Trace) []time.Duration {
	segs := t.Segments()
	out := make([]time.Duration, len(segs))
	var at time.Duration
	for i, s := range segs {
		out[i] = at
		at += s.Duration
	}
	return out
}
