package collect

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bba/internal/telemetry"
)

// RetryPolicy caps the shipper's per-frame retry loop: exponential backoff
// from Base to Cap with seeded jitter, up to MaxAttempts tries.
type RetryPolicy struct {
	// MaxAttempts bounds tries per frame (default 10).
	MaxAttempts int
	// Base is the first backoff delay (default 50ms).
	Base time.Duration
	// Cap bounds a single backoff delay (default 2s).
	Cap time.Duration
	// Seed drives the jitter.
	Seed int64
}

func (r *RetryPolicy) applyDefaults() {
	if r.MaxAttempts <= 0 {
		r.MaxAttempts = 10
	}
	if r.Base <= 0 {
		r.Base = 50 * time.Millisecond
	}
	if r.Cap <= 0 {
		r.Cap = 2 * time.Second
	}
}

// backoff returns the jittered delay before attempt n (0-based).
func (r RetryPolicy) backoff(n int, rng *rand.Rand) time.Duration {
	d := r.Base << uint(n)
	if d <= 0 || d > r.Cap {
		d = r.Cap
	}
	// Jitter uniformly over [d/2, d): desynchronizes a fleet of shippers
	// hammering a recovering collector.
	return d/2 + time.Duration(rng.Int63n(int64(d/2)+1))
}

// ShipperConfig configures a Shipper.
type ShipperConfig struct {
	// Addr is the collector endpoint: "udp://host:port" for fire-and-
	// forget datagrams, or "http://host:port" (or https) for acknowledged
	// POSTs to /ingest. HTTP is required for exactly-once aggregation —
	// UDP has no acknowledgement, so lost event frames stay lost.
	Addr string
	// Run is the run id stamped on every frame (required, 1–255 bytes).
	Run string
	// Session distinguishes sender streams within a run; two processes
	// shipping one run must use different Session ids.
	Session uint64
	// BatchEvents seals an event frame after this many events
	// (default 64).
	BatchEvents int
	// FlushInterval seals partial event batches on a timer (default
	// 500ms; 0 keeps the default, negative disables the timer).
	FlushInterval time.Duration
	// Queue bounds the frame queue between batching and sending.
	Queue QueueConfig
	// Senders is the number of concurrent sender goroutines (default 1;
	// more senders pipeline retries but reorder arrival, which the
	// collector's dedup absorbs).
	Senders int
	// Retry caps the per-frame retry loop.
	Retry RetryPolicy
	// HTTPClient overrides the HTTP client — the seam tests use to route
	// shipping through faults.Transport and netem-shaped dials.
	HTTPClient *http.Client
}

// ShipperStats is a snapshot of shipper activity. EventsDropped and
// FramesDropped are the explicit loss account of the non-blocking hot
// path: when the pipeline has no capacity, events are counted out, never
// blocked on.
type ShipperStats struct {
	Events        int64
	EventsDropped int64
	FramesShipped int64
	FramesDropped int64
	SendErrors    int64
	Retries       int64
	Queue         QueueStats
}

// batchBytesCap seals a batch early so every frame fits comfortably in a
// UDP datagram.
const batchBytesCap = 56 << 10

// numBatchBuffers is the event-batch buffer pool size; when all buffers
// are in flight the hot path drops instead of blocking or allocating.
const numBatchBuffers = 4

// Shipper is the client half of the pipeline. Its OnEvent implements
// telemetry.Observer without blocking and — once its batch buffer has
// grown to steady state — without allocating: events append to a pooled
// buffer; full batches hand off to a framer goroutine that encodes and
// queues them; sender goroutines drain the queue with capped jittered
// retry, spilling to disk while the collector is unreachable.
//
// Shard aggregates and run control frames ride the reliable lane: they are
// never dropped (enqueue fails loudly instead) and Flush waits for their
// acknowledgement.
type Shipper struct {
	cfg   ShipperConfig
	trans transport
	q     *queue

	mu            sync.Mutex // guards cur, curEvents and the event counters
	cur           []byte
	curEvents     int
	events        int64
	eventsDropped int64

	free chan []byte
	full chan sealedBatch

	enqMu   sync.Mutex // serializes seq assignment with queue admission
	nextSeq uint64
	scratch []byte

	sealedPending atomic.Int64 // batches handed to the framer, not yet queued
	pending       atomic.Int64 // frames queued, not yet shipped or dropped

	framesDropped atomic.Int64
	shipped       atomic.Int64
	sendErrors    atomic.Int64
	retries       atomic.Int64

	fatalMu sync.Mutex
	fatal   error

	stopFlusher chan struct{}
	stopFramer  chan struct{}
	wg          sync.WaitGroup

	closeOnce sync.Once
	closeErr  error
}

type sealedBatch struct {
	buf    []byte
	events int
}

// NewShipper validates the config, connects the transport and starts the
// pipeline goroutines.
func NewShipper(cfg ShipperConfig) (*Shipper, error) {
	if len(cfg.Run) == 0 || len(cfg.Run) > 255 {
		return nil, fmt.Errorf("collect: run id length %d outside 1..255", len(cfg.Run))
	}
	if cfg.BatchEvents <= 0 {
		cfg.BatchEvents = 64
	}
	if cfg.FlushInterval == 0 {
		cfg.FlushInterval = 500 * time.Millisecond
	}
	if cfg.Senders <= 0 {
		cfg.Senders = 1
	}
	cfg.Retry.applyDefaults()
	trans, err := dialTransport(cfg)
	if err != nil {
		return nil, err
	}
	s := &Shipper{
		cfg:         cfg,
		trans:       trans,
		q:           newQueue(cfg.Queue),
		free:        make(chan []byte, numBatchBuffers),
		full:        make(chan sealedBatch, numBatchBuffers),
		stopFlusher: make(chan struct{}),
		stopFramer:  make(chan struct{}),
	}
	for i := 0; i < numBatchBuffers; i++ {
		s.free <- make([]byte, 0, 64<<10)
	}
	s.wg.Add(1)
	go s.framer()
	for i := 0; i < cfg.Senders; i++ {
		rng := rand.New(rand.NewSource(cfg.Retry.Seed + int64(i)*0x9E3779B9))
		s.wg.Add(1)
		go s.sender(rng)
	}
	if cfg.FlushInterval > 0 {
		s.wg.Add(1)
		go s.flusher()
	}
	return s, nil
}

// OnEvent implements telemetry.Observer: append the event to the current
// batch, sealing when full. It never blocks — with no buffer free the
// event is dropped and counted.
func (s *Shipper) OnEvent(e telemetry.Event) {
	s.mu.Lock()
	if s.cur == nil {
		select {
		case b := <-s.free:
			s.cur = b[:0]
		default:
			s.eventsDropped++
			s.mu.Unlock()
			return
		}
	}
	s.cur = telemetry.AppendJSONL(s.cur, e)
	s.curEvents++
	s.events++
	if s.curEvents >= s.cfg.BatchEvents || len(s.cur) >= batchBytesCap {
		s.sealLocked()
	}
	s.mu.Unlock()
}

// sealLocked hands the current batch to the framer. Caller holds mu.
func (s *Shipper) sealLocked() {
	if s.curEvents == 0 {
		return
	}
	s.sealedPending.Add(1)
	select {
	case s.full <- sealedBatch{buf: s.cur, events: s.curEvents}:
	default:
		// Framer backlogged; recycle the buffer and count the loss.
		s.sealedPending.Add(-1)
		s.eventsDropped += int64(s.curEvents)
		s.free <- s.cur
	}
	s.cur = nil
	s.curEvents = 0
}

// Seal closes the current partial batch so it ships without waiting for
// BatchEvents to fill.
func (s *Shipper) Seal() {
	s.mu.Lock()
	s.sealLocked()
	s.mu.Unlock()
}

// framer encodes sealed event batches into frames and queues them.
func (s *Shipper) framer() {
	defer s.wg.Done()
	for {
		select {
		case b := <-s.full:
			if _, err := s.enqueueFrame(PayloadEvents, b.buf, false); err != nil {
				s.setFatal(err)
			}
			s.free <- b.buf
			s.sealedPending.Add(-1)
		case <-s.stopFramer:
			// Drain anything sealed before the stop.
			for {
				select {
				case b := <-s.full:
					if _, err := s.enqueueFrame(PayloadEvents, b.buf, false); err != nil {
						s.setFatal(err)
					}
					s.free <- b.buf
					s.sealedPending.Add(-1)
				default:
					return
				}
			}
		}
	}
}

// flusher seals partial batches on a timer so low-rate event streams still
// ship promptly.
func (s *Shipper) flusher() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.FlushInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.Seal()
		case <-s.stopFlusher:
			return
		}
	}
}

// enqueueFrame assigns the next sequence number and queues one frame.
// Sequence numbers are consumed only by accepted frames: a dropped frame
// never leaves a permanent gap for the collector's dedup window to chase.
func (s *Shipper) enqueueFrame(kind PayloadKind, payload []byte, reliable bool) (bool, error) {
	s.enqMu.Lock()
	defer s.enqMu.Unlock()
	s.scratch = AppendFrame(s.scratch[:0], Frame{
		Run:     s.cfg.Run,
		Session: s.cfg.Session,
		Seq:     s.nextSeq,
		Kind:    kind,
		Payload: payload,
	})
	ok, err := s.q.Push(s.scratch, reliable)
	if err != nil {
		if reliable {
			return false, fmt.Errorf("collect: reliable frame rejected: %w", err)
		}
		return false, err
	}
	if !ok {
		s.framesDropped.Add(1)
		return false, nil
	}
	s.nextSeq++
	s.pending.Add(1)
	return true, nil
}

// ShipRunStart announces a run on the reliable lane; payload is typically
// a JSON campaign identity.
func (s *Shipper) ShipRunStart(payload []byte) error { return s.reliable(PayloadRunStart, payload) }

// ShipShard ships one completed shard's JSON accumulators on the reliable
// lane.
func (s *Shipper) ShipShard(payload []byte) error { return s.reliable(PayloadShard, payload) }

// ShipRunEnd marks the run complete. Call Flush first so every shard frame
// is acknowledged before the end marker can be.
func (s *Shipper) ShipRunEnd() error { return s.reliable(PayloadRunEnd, nil) }

func (s *Shipper) reliable(kind PayloadKind, payload []byte) error {
	if err := s.Err(); err != nil {
		return err
	}
	_, err := s.enqueueFrame(kind, payload, true)
	return err
}

// Flush seals the current batch and blocks until every queued frame has
// been shipped (acknowledged, for HTTP) or dropped, the context expires,
// or a reliable frame fails permanently.
func (s *Shipper) Flush(ctx context.Context) error {
	s.Seal()
	t := time.NewTicker(2 * time.Millisecond)
	defer t.Stop()
	for {
		if err := s.Err(); err != nil {
			return err
		}
		if s.sealedPending.Load() == 0 && s.pending.Load() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
	}
}

// Close flushes with a generous deadline, stops the pipeline and releases
// the transport. It returns the sticky error, if any. Close is idempotent;
// repeat calls return the first call's result.
func (s *Shipper) Close() error {
	s.closeOnce.Do(func() {
		if s.cfg.FlushInterval > 0 {
			close(s.stopFlusher)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		flushErr := s.Flush(ctx)
		cancel()
		close(s.stopFramer)
		s.q.Close()
		s.wg.Wait()
		s.trans.close()
		s.closeErr = flushErr
		if err := s.Err(); err != nil {
			s.closeErr = err
		}
	})
	return s.closeErr
}

// Err returns the sticky fatal error (a reliable frame that exhausted its
// retries, or a spill failure).
func (s *Shipper) Err() error {
	s.fatalMu.Lock()
	defer s.fatalMu.Unlock()
	return s.fatal
}

func (s *Shipper) setFatal(err error) {
	s.fatalMu.Lock()
	if s.fatal == nil {
		s.fatal = err
	}
	s.fatalMu.Unlock()
}

// Stats returns a snapshot of the shipper counters.
func (s *Shipper) Stats() ShipperStats {
	s.mu.Lock()
	events, eventsDropped := s.events, s.eventsDropped
	s.mu.Unlock()
	return ShipperStats{
		Events:        events,
		EventsDropped: eventsDropped,
		FramesShipped: s.shipped.Load(),
		FramesDropped: s.framesDropped.Load(),
		SendErrors:    s.sendErrors.Load(),
		Retries:       s.retries.Load(),
		Queue:         s.q.Stats(),
	}
}

// sender drains the queue, shipping each frame with capped jittered retry.
func (s *Shipper) sender(rng *rand.Rand) {
	defer s.wg.Done()
	for {
		frame, ok := s.q.Pop()
		if !ok {
			return
		}
		s.shipFrame(frame, rng)
		s.pending.Add(-1)
	}
}

// shipFrame pushes one frame through the transport. Exhausted retries drop
// the frame; for reliable kinds the drop is also a sticky fatal error.
func (s *Shipper) shipFrame(frame []byte, rng *rand.Rand) {
	var lastErr error
	for attempt := 0; attempt < s.cfg.Retry.MaxAttempts; attempt++ {
		if attempt > 0 {
			s.retries.Add(1)
			time.Sleep(s.cfg.Retry.backoff(attempt-1, rng))
		}
		err := s.trans.ship(frame)
		if err == nil {
			s.shipped.Add(1)
			return
		}
		s.sendErrors.Add(1)
		lastErr = err
		if errors.Is(err, errPermanent) {
			break
		}
	}
	s.framesDropped.Add(1)
	// The kind byte is at a fixed offset; reliable frames failing is fatal.
	if len(frame) > 3 && PayloadKind(frame[3]).Reliable() {
		s.setFatal(fmt.Errorf("collect: reliable frame lost after %d attempts: %w", s.cfg.Retry.MaxAttempts, lastErr))
	}
}

// errPermanent marks transport errors that retrying cannot fix (the
// collector rejected the frame as invalid).
var errPermanent = errors.New("collect: permanent send failure")

// transport ships encoded frames to a collector.
type transport interface {
	ship(frame []byte) error
	close() error
}

// dialTransport parses cfg.Addr into a transport.
func dialTransport(cfg ShipperConfig) (transport, error) {
	switch {
	case strings.HasPrefix(cfg.Addr, "udp://"):
		conn, err := net.Dial("udp", strings.TrimPrefix(cfg.Addr, "udp://"))
		if err != nil {
			return nil, fmt.Errorf("collect: dial %s: %w", cfg.Addr, err)
		}
		return &udpTransport{conn: conn}, nil
	case strings.HasPrefix(cfg.Addr, "http://"), strings.HasPrefix(cfg.Addr, "https://"):
		client := cfg.HTTPClient
		if client == nil {
			client = &http.Client{Timeout: 10 * time.Second}
		}
		return &httpTransport{url: strings.TrimSuffix(cfg.Addr, "/") + "/ingest", client: client}, nil
	}
	return nil, fmt.Errorf("collect: address %q must start with udp://, http:// or https://", cfg.Addr)
}

// udpTransport fires datagrams and forgets: no acknowledgement, so no
// retry signal — loss shows up only in the collector's stream gaps.
type udpTransport struct {
	mu   sync.Mutex
	conn net.Conn
}

func (t *udpTransport) ship(frame []byte) error {
	if len(frame) > 64<<10 {
		return fmt.Errorf("%w: frame %d bytes exceeds a datagram", errPermanent, len(frame))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	_, err := t.conn.Write(frame)
	return err
}

func (t *udpTransport) close() error { return t.conn.Close() }

// httpTransport POSTs frames to /ingest; 2xx acknowledges, 4xx is a
// permanent rejection, anything else (including transport errors) is
// retryable.
type httpTransport struct {
	url    string
	client *http.Client
}

func (t *httpTransport) ship(frame []byte) error {
	resp, err := t.client.Post(t.url, "application/octet-stream", bytes.NewReader(frame))
	if err != nil {
		return err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
	resp.Body.Close()
	switch {
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		return nil
	case resp.StatusCode >= 400 && resp.StatusCode < 500:
		return fmt.Errorf("%w: collector rejected frame: %s", errPermanent, resp.Status)
	default:
		return fmt.Errorf("collect: ship: %s", resp.Status)
	}
}

func (t *httpTransport) close() error {
	t.client.CloseIdleConnections()
	return nil
}
