package telemetry

import (
	"bufio"
	"io"
	"strconv"
	"sync"
)

// Journal writes every event as one JSON line. The encoding is a pure
// function of the event — fixed field order, integer nanoseconds and bits
// per second, no floats, no wall-clock — so identical event streams
// produce byte-identical journals. That property is what lets the tests
// assert "same seed ⇒ same journal", serially and under the parallel A/B
// harness.
//
// Journal is safe for concurrent use; errors are sticky and reported by
// Err and Flush.
type Journal struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	buf []byte
	err error
}

// NewJournal returns a Journal writing JSONL to w.
func NewJournal(w io.Writer) *Journal {
	return &Journal{bw: bufio.NewWriter(w), buf: make([]byte, 0, 256)}
}

// OnEvent implements Observer.
func (j *Journal) OnEvent(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	j.buf = appendEvent(j.buf[:0], e)
	_, j.err = j.bw.Write(j.buf)
}

// Flush flushes buffered lines to the underlying writer and returns the
// first error encountered so far.
func (j *Journal) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	j.err = j.bw.Flush()
	return j.err
}

// Err returns the sticky error, if any.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// AppendJSONL encodes e exactly as a Journal line (including the trailing
// newline), appending to dst. It is the journal's canonical encoding,
// exposed so tests and merge paths can reproduce it.
func AppendJSONL(dst []byte, e Event) []byte { return appendEvent(dst, e) }

// appendEvent renders one event as a JSON line. Every field is emitted
// every time: the few extra bytes buy an encoding with no omit-zero
// ambiguity to reason about when diffing journals.
func appendEvent(b []byte, e Event) []byte {
	b = append(b, `{"kind":"`...)
	b = append(b, e.Kind.String()...)
	b = append(b, `","session":`...)
	b = strconv.AppendQuote(b, e.Session)
	b = append(b, `,"at_ns":`...)
	b = strconv.AppendInt(b, int64(e.At), 10)
	b = append(b, `,"chunk":`...)
	b = strconv.AppendInt(b, int64(e.Chunk), 10)
	b = append(b, `,"rate_index":`...)
	b = strconv.AppendInt(b, int64(e.RateIndex), 10)
	b = append(b, `,"prev_rate_index":`...)
	b = strconv.AppendInt(b, int64(e.PrevRateIndex), 10)
	b = append(b, `,"rate_bps":`...)
	b = strconv.AppendInt(b, int64(e.Rate), 10)
	b = append(b, `,"bytes":`...)
	b = strconv.AppendInt(b, e.Bytes, 10)
	b = append(b, `,"duration_ns":`...)
	b = strconv.AppendInt(b, int64(e.Duration), 10)
	b = append(b, `,"throughput_bps":`...)
	b = strconv.AppendInt(b, int64(e.Throughput), 10)
	b = append(b, `,"buffer_ns":`...)
	b = strconv.AppendInt(b, int64(e.Buffer), 10)
	b = append(b, `,"played_ns":`...)
	b = strconv.AppendInt(b, int64(e.Played), 10)
	b = append(b, `,"reservoir_ns":`...)
	b = strconv.AppendInt(b, int64(e.Reservoir), 10)
	b = append(b, `,"protection_ns":`...)
	b = strconv.AppendInt(b, int64(e.Protection), 10)
	b = append(b, `,"label":`...)
	b = strconv.AppendQuote(b, e.Label)
	b = append(b, "}\n"...)
	return b
}
