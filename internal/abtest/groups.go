package abtest

import (
	"fmt"

	"bba/internal/abr"
)

// FactoryGroup adapts a per-session factory into an experiment arm. It is
// the one code path between the algorithm registry and every batch runner
// (A/B harness, campaigns, the arena): the factory builds a fresh state
// machine per session, and when the algorithm is CapacitySeeded the user's
// stored throughput history primes it — the production seeding previously
// hand-wired per group.
func FactoryGroup(name string, f abr.Factory) Group {
	return Group{Name: name, New: func(u User) abr.Algorithm {
		a := f()
		if cs, ok := a.(abr.CapacitySeeded); ok {
			cs.SeedCapacity(u.History)
		}
		return a
	}}
}

// GroupFor builds the arm for a registered algorithm name; unknown names
// return the registry's enumerating error.
func GroupFor(name string) (Group, error) {
	f, ok := abr.Lookup(name)
	if !ok {
		_, err := abr.New(name) // canonical unknown-name error
		return Group{}, err
	}
	return FactoryGroup(name, f), nil
}

// Groups builds arms for the named algorithms, in the given order. At least
// one name is required: an experiment with no arms is a configuration
// error, not an empty result.
func Groups(names ...string) ([]Group, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("abtest: no algorithm names given")
	}
	gs := make([]Group, len(names))
	for i, name := range names {
		g, err := GroupFor(name)
		if err != nil {
			return nil, err
		}
		gs[i] = g
	}
	return gs, nil
}
