package abr

import (
	"time"

	"bba/internal/media"
	"bba/internal/units"
)

// RateMap is the piecewise-linear f(B) of the paper's Figure 6: R_min
// within the reservoir, a linear ramp across the cushion, and R_max from
// the top of the cushion (the upper reservoir) onward.
//
// A RateMap satisfies the Section 3.1 criteria: it is continuous, strictly
// increasing on {B : R_min < f(B) < R_max}, and pinned with f(r) = R_min
// and f(r+cu) = R_max.
type RateMap struct {
	Rmin, Rmax units.BitRate
	Reservoir  time.Duration // r: f(B) = R_min for B ≤ r
	Cushion    time.Duration // cu: f(B) = R_max for B ≥ r+cu
}

// Rate evaluates the continuous map at buffer occupancy b.
func (m RateMap) Rate(b time.Duration) units.BitRate {
	if b <= m.Reservoir || m.Cushion <= 0 {
		return m.Rmin
	}
	if b >= m.Reservoir+m.Cushion {
		return m.Rmax
	}
	frac := float64(b-m.Reservoir) / float64(m.Cushion)
	return m.Rmin + units.BitRate(frac*float64(m.Rmax-m.Rmin))
}

// InSafeArea reports whether requesting a chunk of the map's suggested rate
// at occupancy b keeps the algorithm in the paper's "safe area": the chunk
// finishes downloading before the buffer falls below the reservoir even at
// the worst tolerated capacity, V·f(B)/R_min ≤ B − r.
func (m RateMap) InSafeArea(b, chunkDuration time.Duration) bool {
	if b <= m.Reservoir {
		// Inside the reservoir only R_min is requested; by convention
		// that is safe (the buffer grows whenever C ≥ R_min).
		return true
	}
	worstDownload := chunkDuration.Seconds() * float64(m.Rate(b)) / float64(m.Rmin)
	return units.SecondsToDuration(worstDownload) <= b-m.Reservoir
}

// Algorithm1 is the paper's Algorithm 1: map the continuous f(B) onto the
// discrete ladder with hysteresis. The rate stays at prev until f(B)
// crosses the next-higher rate (Rate+) or next-lower rate (Rate−); the
// buffer distance between adjacent rates is the natural cushion that makes
// the video rate "sticky".
//
// prev is the previous session-ladder index, or negative before the first
// chunk (which forces the map's direct suggestion, R_min on an empty
// buffer). The returned index is always valid for l.
func Algorithm1(m RateMap, l media.Ladder, prev int, b time.Duration) int {
	top := len(l) - 1
	if prev < 0 {
		// First request: no previous rate to stick to; follow the map.
		return l.HighestAtMost(m.Rate(b))
	}
	prev = l.Clamp(prev)

	ratePlus := l.Max()
	if prev != top {
		ratePlus = l[l.NextUp(prev)]
	}
	rateMinus := l.Min()
	if prev != 0 {
		rateMinus = l[l.NextDown(prev)]
	}

	f := m.Rate(b)
	switch {
	case b <= m.Reservoir:
		return 0
	case b >= m.Reservoir+m.Cushion:
		return top
	case f >= ratePlus:
		// Step up to max{R_i : R_i < f(B)}.
		return l.HighestBelow(f)
	case f <= rateMinus:
		// Step down to min{R_i : R_i > f(B)}.
		return l.LowestAbove(f)
	default:
		return prev
	}
}
