package stats

import (
	"errors"
	"math"
	"testing"
)

// Regression tests for the non-finite-input guard: sort.Float64s silently
// misorders NaN, so every sort-based statistic must reject NaN/±Inf with an
// explicit error instead of returning a silently corrupted quantile.

func badSamples() map[string][]float64 {
	return map[string][]float64{
		"nan":      {1, math.NaN(), 3, 4, 5},
		"plus-inf": {1, 2, math.Inf(1), 4, 5},
		"neg-inf":  {math.Inf(-1), 2, 3, 4, 5},
	}
}

func TestPercentileRejectsNonFinite(t *testing.T) {
	for name, xs := range badSamples() {
		if _, err := Percentile(xs, 50); !errors.Is(err, ErrNonFinite) {
			t.Errorf("%s: Percentile err = %v, want ErrNonFinite", name, err)
		}
		if _, err := Median(xs); !errors.Is(err, ErrNonFinite) {
			t.Errorf("%s: Median err = %v, want ErrNonFinite", name, err)
		}
		if _, err := QuartileRatio(xs); !errors.Is(err, ErrNonFinite) {
			t.Errorf("%s: QuartileRatio err = %v, want ErrNonFinite", name, err)
		}
		if _, err := MedianTo95Ratio(xs); !errors.Is(err, ErrNonFinite) {
			t.Errorf("%s: MedianTo95Ratio err = %v, want ErrNonFinite", name, err)
		}
		if _, err := Summarize(xs); !errors.Is(err, ErrNonFinite) {
			t.Errorf("%s: Summarize err = %v, want ErrNonFinite", name, err)
		}
	}
}

func TestWelchTTestRejectsNonFinite(t *testing.T) {
	good := []float64{1, 2, 3, 4}
	for name, xs := range badSamples() {
		if _, err := WelchTTest(xs, good); !errors.Is(err, ErrNonFinite) {
			t.Errorf("%s: WelchTTest(bad, good) err = %v, want ErrNonFinite", name, err)
		}
		if _, err := WelchTTest(good, xs); !errors.Is(err, ErrNonFinite) {
			t.Errorf("%s: WelchTTest(good, bad) err = %v, want ErrNonFinite", name, err)
		}
	}
}

func TestBootstrapRatioCIRejectsNonFinite(t *testing.T) {
	good := []float64{1, 2, 3, 4}
	for name, xs := range badSamples() {
		if _, _, err := BootstrapRatioCI(xs, good, 100, 0.9, 1); !errors.Is(err, ErrNonFinite) {
			t.Errorf("%s: BootstrapRatioCI err = %v, want ErrNonFinite", name, err)
		}
	}
}

// TestMeanPropagatesNonFinite pins Mean's documented contract: a non-finite
// sample surfaces as a non-finite mean — visible, never a silently wrong
// finite number (the failure mode the sort-based quantiles had).
func TestMeanPropagatesNonFinite(t *testing.T) {
	if m := Mean([]float64{1, math.NaN(), 3}); !math.IsNaN(m) {
		t.Errorf("Mean with NaN = %v, want NaN", m)
	}
	if m := Mean([]float64{1, math.Inf(1), 3}); !math.IsInf(m, 1) {
		t.Errorf("Mean with +Inf = %v, want +Inf", m)
	}
}

func TestDropNonFinite(t *testing.T) {
	xs := []float64{1, math.NaN(), 2, math.Inf(1), 3, math.Inf(-1)}
	kept, dropped := DropNonFinite(xs)
	if dropped != 3 || len(kept) != 3 {
		t.Fatalf("dropped %d kept %d", dropped, len(kept))
	}
	for i, want := range []float64{1, 2, 3} {
		if kept[i] != want {
			t.Errorf("kept[%d] = %v, want %v", i, kept[i], want)
		}
	}
	clean := []float64{1, 2}
	if kept, dropped := DropNonFinite(clean); dropped != 0 || &kept[0] != &clean[0] {
		t.Error("clean slice should be returned unchanged")
	}
}

func TestCheckFinite(t *testing.T) {
	if err := CheckFinite([]float64{1, 2}, []float64{3}); err != nil {
		t.Errorf("finite input rejected: %v", err)
	}
	if err := CheckFinite([]float64{1}, []float64{math.NaN()}); !errors.Is(err, ErrNonFinite) {
		t.Errorf("err = %v, want ErrNonFinite", err)
	}
}
