package abr

import (
	"time"
)

// BBA1 is the Section 5 algorithm: BBA0 adapted to variable-bitrate
// encodes. Two changes: the reservoir is recomputed before every decision
// from the sizes of upcoming chunks (Figure 12), and the rate map becomes a
// chunk map, so the barrier comparisons of Algorithm 1 are made against the
// sizes of the next upcoming chunk at the neighbouring rates.
//
// As deployed (§7.1), BBA-1 also accumulates *outage protection*: 400 ms of
// extra reservoir per downloaded chunk while the buffer is increasing and
// below 75% full, bounded at 80 s ("a typical amount of outage protection
// is 20–40 seconds at steady state"). The protection right-shifts the chunk
// map, so the buffer converges to a higher occupancy that can ride out a
// 20–30 s network outage.
type BBA1 struct {
	// ReservoirWindow is X in the Figure 12 calculation (default 480 s).
	ReservoirWindow time.Duration
	// RampEndFraction is where the map reaches Chunk_max, as a fraction
	// of B_max (the paper's 0.9).
	RampEndFraction float64
	// ProtectionPerChunk is the outage-protection accrual per downloaded
	// chunk (400 ms deployed; 0 disables the mechanism).
	ProtectionPerChunk time.Duration
	// MaxProtection bounds the accrued protection (80 s deployed).
	MaxProtection time.Duration
	// FixedReservoir, when positive, bypasses the Figure 12 calculation
	// and pins the reservoir — the ablation that isolates what the
	// dynamic reservoir buys over BBA-0's fixed 90 s choice.
	FixedReservoir time.Duration

	prev       int
	protection time.Duration
	lastBuffer time.Duration
	observed   bool
	lastRes    time.Duration
	haveRes    bool
	resPlan    *reservoirPlan
	plans      PlanSource
	shared     *TitlePlan
}

// UsePlans implements PlanConsumer: reservoir lookups go through shared
// per-title plans from src instead of a per-session deficit precompute.
func (b *BBA1) UsePlans(src PlanSource) {
	b.plans = src
	b.shared = nil
}

// NewBBA1 returns a BBA1 with the paper's deployed parameters.
func NewBBA1() *BBA1 {
	return &BBA1{
		ReservoirWindow:    DefaultReservoirWindow,
		RampEndFraction:    0.9,
		ProtectionPerChunk: 400 * time.Millisecond,
		MaxProtection:      80 * time.Second,
		prev:               -1,
	}
}

// Protection returns the currently accrued outage protection.
func (b *BBA1) Protection() time.Duration { return b.protection }

// LastReservoir implements ReservoirReporter: the effective reservoir
// (dynamic or fixed, plus outage protection) of the most recent chunk map.
func (b *BBA1) LastReservoir() (time.Duration, time.Duration, bool) {
	return b.lastRes, b.protection, b.haveRes
}

// observe updates the buffer trend and, when accrue is set, applies the
// §7.1 outage-protection rule for one downloaded chunk.
func (b *BBA1) observe(st State, accrue bool) {
	if accrue && b.observed && b.ProtectionPerChunk > 0 &&
		st.Buffer > b.lastBuffer && st.Buffer < time.Duration(0.75*float64(st.BufferMax)) {
		b.protection += b.ProtectionPerChunk
		if b.protection > b.MaxProtection {
			b.protection = b.MaxProtection
		}
	}
	b.lastBuffer = st.Buffer
	b.observed = true
}

// Name implements Algorithm.
func (b *BBA1) Name() string { return "BBA-1" }

// Map returns the chunk map for the decision at chunk k given the current
// buffer capacity: dynamic reservoir plus accrued outage protection,
// cushion up to RampEndFraction·B_max.
func (b *BBA1) Map(s Stream, k int, bufferMax time.Duration) ChunkMap {
	reservoir := b.FixedReservoir
	if reservoir <= 0 {
		reservoir = b.dynamicReservoir(s, k)
	}
	return b.mapWithReservoir(s, reservoir+b.protection, bufferMax)
}

// dynamicReservoir is DynamicReservoir through the session-cached deficit
// plan: identical results, amortized to one title-length precompute per
// session instead of a full lookahead scan per decision.
func (b *BBA1) dynamicReservoir(s Stream, k int) time.Duration {
	if tp := b.sharedPlan(s); tp != nil {
		return tp.Reservoir(k)
	}
	if !b.resPlan.matches(s) {
		b.resPlan = newReservoirPlan(s)
	}
	return b.resPlan.reservoir(k, b.ReservoirWindow)
}

// sharedPlan returns the shared per-title plan for s, fetching a fresh one
// from the plan source on a title or R_min change; nil without UsePlans.
// The fast path is a few compares — it runs several times per decision.
func (b *BBA1) sharedPlan(s Stream) *TitlePlan {
	tp := b.shared
	if tp != nil && tp.video == s.video && len(s.ladder) > 0 &&
		tp.rmin == s.ladder[0] && tp.window == b.ReservoirWindow {
		return tp
	}
	return b.sharedPlanSlow(s)
}

func (b *BBA1) sharedPlanSlow(s Stream) *TitlePlan {
	if b.plans == nil {
		return nil
	}
	if !b.shared.matches(s, b.ReservoirWindow) {
		b.shared = b.plans.TitlePlan(s, b.ReservoirWindow)
	}
	return b.shared
}

// chunkCol returns the shared plan's contiguous size column for a decision
// at chunk k, or nil without a plan source.
func (b *BBA1) chunkCol(s Stream, k int) []int64 {
	tp := b.sharedPlan(s)
	if tp == nil {
		return nil
	}
	return tp.column(k)
}

// algorithm1 dispatches the Algorithm 1 barrier rule through the shared
// plan's column when one is attached; choices are identical either way.
func (b *BBA1) algorithm1(m ChunkMap, s Stream, prev, k int, buf time.Duration) int {
	if col := b.chunkCol(s, k); col != nil {
		return algorithm1Col(m, col, prev, buf)
	}
	return Algorithm1Chunk(m, s, prev, k, buf)
}

func (b *BBA1) mapWithReservoir(s Stream, reservoir time.Duration, bufferMax time.Duration) ChunkMap {
	b.lastRes = reservoir
	b.haveRes = true
	cushion := time.Duration(b.RampEndFraction*float64(bufferMax)) - reservoir
	if cushion < time.Second {
		cushion = time.Second
	}
	var chunkMin, chunkMax int64
	if tp := b.sharedPlan(s); tp != nil {
		// The plan cached these very conversions at construction.
		chunkMin, chunkMax = tp.chunkMin, tp.chunkMax
	} else {
		l := s.Ladder()
		chunkMin = l.Min().BytesIn(s.ChunkDuration())
		chunkMax = l.Max().BytesIn(s.ChunkDuration())
	}
	return ChunkMap{
		ChunkMin:  chunkMin,
		ChunkMax:  chunkMax,
		Reservoir: reservoir,
		Cushion:   cushion,
	}
}

// Next implements Algorithm.
func (b *BBA1) Next(st State, s Stream) int {
	b.observe(st, true)
	m := b.Map(s, st.NextChunk, st.BufferMax)
	next := b.algorithm1(m, s, b.prev, st.NextChunk, st.Buffer)
	b.prev = next
	return next
}
