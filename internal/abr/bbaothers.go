package abr

import (
	"time"
)

// BBAOthers is the Section 7 algorithm. On top of BBA2's startup-plus-
// chunk-map core it adds the three production refinements the paper
// evaluates in its final experiment:
//
//  1. Lookahead smoothing (§7.2): an up-switch suggested by the chunk map
//     is taken only if it would survive the next several chunks — as many
//     as are currently buffered, up to 60 — so a single small chunk cannot
//     trigger a switch that the following large chunks immediately revert.
//     Decreases are never smoothed, to avoid extra rebuffer risk.
//  2. Right-shift-only reservoir (§7.2): the dynamic reservoir may grow
//     but never shrink, removing the map wobble that reservoir
//     recalculation causes. "Since the reservoir cannot be shrinked, the
//     reservoir grows faster than it needs to, letting us use the excess
//     for outage protection" — the ratchet excess is the §7.1 outage
//     protection, rather than the per-chunk accrual used in the BBA-1 and
//     BBA-2 deployments.
type BBAOthers struct {
	// MaxLookahead bounds the smoothing window in chunks (60 in the
	// paper: a full 240 s buffer of 4 s chunks).
	MaxLookahead int

	core          BBA2
	maxReservoir  time.Duration
	lastDynamic   time.Duration
	lastBuffer    time.Duration
	started       bool
	startupActive bool
}

// NewBBAOthers returns a BBAOthers with the paper's parameters.
func NewBBAOthers() *BBAOthers {
	b := &BBAOthers{
		MaxLookahead:  60,
		core:          *NewBBA2(),
		startupActive: true,
	}
	// The ratcheted reservoir replaces the per-chunk protection accrual.
	b.core.steady.ProtectionPerChunk = 0
	return b
}

// Name implements Algorithm.
func (b *BBAOthers) Name() string { return "BBA-Others" }

// UsePlans implements PlanConsumer, forwarding to the BBA2 core (and so
// to the BBA1 reservoir machinery this algorithm's ratchet reads).
func (b *BBAOthers) UsePlans(src PlanSource) { b.core.UsePlans(src) }

// Protection returns the current outage protection: the excess of the
// ratcheted reservoir over what the instantaneous Figure 12 calculation
// requires.
func (b *BBAOthers) Protection() time.Duration {
	if b.maxReservoir <= b.lastDynamic {
		return 0
	}
	return b.maxReservoir - b.lastDynamic
}

// EffectiveReservoir returns the reservoir the chunk map is currently
// shifted by: the right-shift-only (ratcheted) dynamic reservoir.
func (b *BBAOthers) EffectiveReservoir() time.Duration { return b.maxReservoir }

// LastReservoir implements ReservoirReporter: the ratcheted reservoir of
// the most recent chunk map, with the ratchet excess as protection.
func (b *BBAOthers) LastReservoir() (time.Duration, time.Duration, bool) {
	r, _, ok := b.core.steady.LastReservoir()
	return r, b.Protection(), ok
}

// Seeked implements SeekAware: re-enter startup; the reservoir ratchet is
// released because it tracked the upcoming chunks of the old position.
func (b *BBAOthers) Seeked() {
	b.startupActive = true
	b.core.Seeked()
	// The ratchet tracked the upcoming chunks of the old position;
	// release it and let the first post-seek decision re-initialize.
	b.maxReservoir = 0
	b.started = false
}

// Next implements Algorithm.
func (b *BBAOthers) Next(st State, s Stream) int {
	// Right-shift-only reservoir: the chunk map may move right, never
	// left. The clamp in DynamicReservoir bounds the ratchet at 140 s.
	reservoir := b.core.steady.dynamicReservoir(s, st.NextChunk)
	b.lastDynamic = reservoir
	if reservoir > b.maxReservoir {
		b.maxReservoir = reservoir
	}
	effective := b.maxReservoir

	if !b.started {
		b.started = true
		b.lastBuffer = st.Buffer
		// Delegate the very first decision to the core (returns R_min).
		return b.core.Next(st, s)
	}

	// Run the BBA2 core, but against the shifted, non-shrinking map. The
	// core's own dynamic reservoir is bypassed by computing the map here
	// and replaying its decision logic.
	m := b.core.steady.mapWithReservoir(s, effective, st.BufferMax)
	prev := b.core.prev
	mapSuggestion := b.core.steady.algorithm1(m, s, prev, st.NextChunk, st.Buffer)

	if b.startupActive {
		if st.Buffer < b.core.prevBuffer || mapSuggestion > prev {
			b.startupActive = false
		}
	}

	next := mapSuggestion
	if b.startupActive {
		next = prev
		if b.core.stepUpAllowed(st, s, m) {
			next = s.Ladder().NextUp(prev)
		}
	} else if next > prev && !b.upSwitchSurvivesLookahead(m, s, next, st) {
		// Smooth increases only (§7.2).
		next = prev
	}

	b.core.prevBuffer = st.Buffer
	b.core.prev = next
	b.core.steady.prev = next
	b.core.inStartup = b.startupActive
	b.lastBuffer = st.Buffer
	return next
}

// upSwitchSurvivesLookahead checks that stepping up to candidate would not
// soon be reverted: an up-switch triggered by one small chunk while the
// chunks behind it are big is the switch-and-switch-back pattern of
// Figure 21 that the smoothing exists to suppress. The window is the
// paper's — as many chunks as are currently buffered, at most 60 — and the
// revert test is against sustained pressure (the window's mean size at the
// next-lower rate crossing the map value), so a single large chunk does not
// permanently pin the rate down.
func (b *BBAOthers) upSwitchSurvivesLookahead(m ChunkMap, s Stream, candidate int, st State) bool {
	v := s.ChunkDuration()
	window := 1
	if v > 0 {
		window = int(st.Buffer / v)
	}
	if window < 1 {
		window = 1
	}
	if window > b.MaxLookahead {
		window = b.MaxLookahead
	}
	cap := m.MaxChunk(st.Buffer)
	below := s.Ladder().NextDown(candidate)
	var sum int64
	if tp := b.core.steady.sharedPlan(s); tp != nil {
		// Prefix sums make the window total two loads; integer addition
		// is associative, so the value is identical to the loop's.
		sum = tp.UpcomingSum(below, st.NextChunk, window)
	} else {
		for i := 0; i < window; i++ {
			sum += upcoming(s, below, st.NextChunk+i)
		}
	}
	return cap > sum/int64(window)
}
