package main

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bba/internal/telemetry"
)

func TestBuildServer(t *testing.T) {
	srv, video, err := buildServer(30, 4000, 1, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if video.NumChunks() != 30 {
		t.Errorf("chunks = %d", video.NumChunks())
	}
	if srv.Latency != 5*time.Millisecond {
		t.Errorf("latency = %v", srv.Latency)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/manifest.json")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("manifest status %s", resp.Status)
	}
	// Zero chunks falls back to the VBR default title length.
	_, v2, err := buildServer(0, 4000, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v2.NumChunks() != 1800 {
		t.Errorf("defaulted chunks = %d, want 1800", v2.NumChunks())
	}
}

func TestObservabilityEndpoints(t *testing.T) {
	srv, video, err := buildServer(20, 4000, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	prom := telemetry.NewProm("bba")
	srv.Observer = prom
	ts := httptest.NewServer(buildMux(srv, prom, video))
	defer ts.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, _ := get("/chunk/0/0"); code != http.StatusOK {
		t.Fatalf("chunk status %d", code)
	}
	if code, _ := get("/chunk/0/1"); code != http.StatusOK {
		t.Fatalf("chunk status %d", code)
	}

	code, body := get("/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	var health struct {
		Status   string `json:"status"`
		Chunks   int    `json:"chunks"`
		Requests int64  `json:"requests"`
	}
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatalf("healthz not JSON: %v\n%s", err, body)
	}
	if health.Status != "ok" || health.Chunks != 20 || health.Requests != 2 {
		t.Errorf("healthz = %+v", health)
	}

	code, body = get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	for _, want := range []string{
		"bba_chunks_requested_total 2",
		"bba_chunks_completed_total 2",
		"# TYPE bba_chunk_download_seconds histogram",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q\n%s", want, body)
		}
	}
}

func TestGracefulShutdown(t *testing.T) {
	// Grab a free port so run can bind it.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- run(ctx, addr, 10, 4000, 1, 0, false, 1) }()

	// Wait for the server to come up, then trigger shutdown.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never became healthy")
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
}
