// Package units defines the small number of physical quantities the BBA
// reproduction works in: bit rates, byte counts and durations of video.
//
// The whole system is driven by three relationships that the paper's
// Figure 2 and Figure 11 describe:
//
//   - a chunk of nominal rate R and duration V holds about R·V bits,
//   - downloading S bytes over a link of capacity C takes 8·S/C seconds,
//   - the playback buffer drains one second of video per second of real time.
//
// Keeping the conversions in one tested place avoids the classic
// bits-versus-bytes mistakes that would silently distort every experiment.
package units

import (
	"fmt"
	"math"
	"time"
)

// BitRate is a network or video bit rate in bits per second.
//
// Video rates in the paper are quoted in kb/s (e.g. the 235 kb/s to 5 Mb/s
// encoding ladder); link capacities range into tens of Mb/s.
type BitRate int64

// Convenient bit-rate units. These are decimal (networking) units:
// 1 Kbps = 1000 bit/s.
const (
	Bps  BitRate = 1
	Kbps         = 1000 * Bps
	Mbps         = 1000 * Kbps
	Gbps         = 1000 * Mbps
)

// String formats the rate with an adaptive unit, e.g. "235kb/s", "3.0Mb/s".
func (r BitRate) String() string {
	switch {
	case r < 0:
		return "-" + (-r).String()
	case r >= Gbps:
		return trimUnit(float64(r)/float64(Gbps), "Gb/s")
	case r >= Mbps:
		return trimUnit(float64(r)/float64(Mbps), "Mb/s")
	case r >= Kbps:
		return trimUnit(float64(r)/float64(Kbps), "kb/s")
	}
	return fmt.Sprintf("%db/s", int64(r))
}

func trimUnit(v float64, unit string) string {
	s := fmt.Sprintf("%.2f", v)
	for len(s) > 0 && s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	if len(s) > 0 && s[len(s)-1] == '.' {
		s = s[:len(s)-1]
	}
	return s + unit
}

// Kilobits reports the rate in kb/s as a float, the unit used throughout the
// paper's figures.
func (r BitRate) Kilobits() float64 { return float64(r) / float64(Kbps) }

// BytesIn reports how many bytes a stream at rate r produces in d.
// It rounds to the nearest byte.
func (r BitRate) BytesIn(d time.Duration) int64 {
	bits := float64(r) * d.Seconds()
	return int64(math.Round(bits / 8))
}

// DurationFor reports how long transferring n bytes takes at rate r.
// A non-positive rate yields an effectively infinite duration (the caller is
// expected to model outages explicitly with trace segments rather than rely
// on this value).
func (r BitRate) DurationFor(n int64) time.Duration {
	if n <= 0 {
		return 0
	}
	if r <= 0 {
		return math.MaxInt64
	}
	seconds := float64(n*8) / float64(r)
	return SecondsToDuration(seconds)
}

// Throughput reports the average rate achieved transferring n bytes in d.
func Throughput(n int64, d time.Duration) BitRate {
	if d <= 0 || n <= 0 {
		return 0
	}
	return BitRate(math.Round(float64(n*8) / d.Seconds()))
}

// SecondsToDuration converts a floating-point number of seconds to a
// time.Duration, saturating instead of overflowing for absurd inputs.
func SecondsToDuration(s float64) time.Duration {
	if math.IsInf(s, 1) || s > float64(math.MaxInt64)/float64(time.Second) {
		return math.MaxInt64
	}
	if s <= 0 {
		return 0
	}
	return time.Duration(s * float64(time.Second))
}

// Scale multiplies the rate by a dimensionless factor, rounding to the
// nearest bit per second. It is used for VBR activity factors and for the
// Control algorithm's F(B) adjustment.
func (r BitRate) Scale(f float64) BitRate {
	return BitRate(math.Round(float64(r) * f))
}

// Clamp limits r to the closed interval [lo, hi].
func (r BitRate) Clamp(lo, hi BitRate) BitRate {
	if r < lo {
		return lo
	}
	if r > hi {
		return hi
	}
	return r
}
