package player

import (
	"bytes"
	"context"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"bba/internal/abr"
	"bba/internal/media"
	"bba/internal/telemetry"
	"bba/internal/trace"
	"bba/internal/units"
)

func telemetryStream(t *testing.T, chunks int, seed int64) abr.Stream {
	t.Helper()
	video, err := media.NewVBR(media.VBRConfig{
		Title:     "telemetry",
		Ladder:    media.DefaultLadder(),
		NumChunks: chunks,
	}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return abr.NewStream(video, 0)
}

// rebufferConfig is a session guaranteed to rebuffer: capacity drops below
// the lowest ladder rate mid-session.
func rebufferConfig(t *testing.T, obs telemetry.Observer) Config {
	t.Helper()
	return Config{
		Algorithm: abr.NewBBA2(),
		Stream:    telemetryStream(t, 120, 7),
		Trace:     trace.Step(4*units.Mbps, 150*units.Kbps, time.Minute, 2*time.Hour),
		Observer:  obs,
	}
}

func TestJournalByteIdenticalAcrossRuns(t *testing.T) {
	var a, b bytes.Buffer
	for _, buf := range []*bytes.Buffer{&a, &b} {
		j := telemetry.NewJournal(buf)
		if _, err := Run(rebufferConfig(t, j)); err != nil {
			t.Fatal(err)
		}
		if err := j.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if a.Len() == 0 {
		t.Fatal("journal is empty")
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("same seed produced different journals")
	}
}

func TestObserverDoesNotPerturbResult(t *testing.T) {
	plain, err := Run(rebufferConfig(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	observed, err := Run(rebufferConfig(t, telemetry.NewRing(1<<14)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, observed) {
		t.Error("attaching an observer changed the session result")
	}
}

func TestEventOrderingAndRebufferBracketing(t *testing.T) {
	ring := telemetry.NewRing(1 << 14)
	res, err := Run(rebufferConfig(t, ring))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rebuffers == 0 {
		t.Fatal("scenario did not rebuffer; test is vacuous")
	}
	evs := ring.Events()
	if ring.Dropped() != 0 {
		t.Fatalf("ring dropped %d events; enlarge capacity", ring.Dropped())
	}
	if evs[0].Kind != telemetry.SessionStart {
		t.Errorf("first event is %v, want session_start", evs[0].Kind)
	}
	if evs[len(evs)-1].Kind != telemetry.SessionEnd {
		t.Errorf("last event is %v, want session_end", evs[len(evs)-1].Kind)
	}

	// Session clock never goes backwards.
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatalf("event %d (%v at %v) precedes event %d (%v at %v)",
				i, evs[i].Kind, evs[i].At, i-1, evs[i-1].Kind, evs[i-1].At)
		}
	}

	// Rebuffer starts bracket the result's count, alternating with ends.
	starts, ends := 0, 0
	open := false
	var stallTotal time.Duration
	for _, e := range evs {
		switch e.Kind {
		case telemetry.RebufferStart:
			if open {
				t.Fatal("rebuffer_start while a rebuffer is already open")
			}
			open = true
			starts++
		case telemetry.RebufferEnd:
			if !open {
				t.Fatal("rebuffer_end without a matching start")
			}
			open = false
			ends++
			stallTotal += e.Duration
		}
	}
	if starts != res.Rebuffers {
		t.Errorf("rebuffer_start events = %d, Result.Rebuffers = %d", starts, res.Rebuffers)
	}
	if !res.Incomplete && ends != starts {
		t.Errorf("rebuffer_end events = %d, want %d", ends, starts)
	}
	if !res.Incomplete && stallTotal != res.StallTime {
		t.Errorf("sum of rebuffer_end durations = %v, Result.StallTime = %v", stallTotal, res.StallTime)
	}

	// Chunk events agree with the chunk log.
	if n := countKind(evs, telemetry.ChunkComplete); n != len(res.Chunks) {
		t.Errorf("chunk_complete events = %d, chunk records = %d", n, len(res.Chunks))
	}
	if n := countKind(evs, telemetry.RateSwitch); n != res.Switches {
		t.Errorf("rate_switch events = %d, Result.Switches = %d", n, res.Switches)
	}
	if countKind(evs, telemetry.BufferSample) == 0 {
		t.Error("no buffer samples emitted")
	}
	// BBA-2 computes a dynamic reservoir, so updates must appear.
	if countKind(evs, telemetry.ReservoirUpdate) == 0 {
		t.Error("no reservoir updates emitted for BBA-2")
	}
}

func TestSeekEventEmitted(t *testing.T) {
	ring := telemetry.NewRing(1 << 14)
	cfg := Config{
		Algorithm: abr.NewBBA2(),
		Stream:    telemetryStream(t, 200, 3),
		Trace:     trace.Constant(4*units.Mbps, 2*time.Hour),
		Seeks:     []Seek{{AfterPlayed: 30 * time.Second, ToChunk: 150}},
		Observer:  ring,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeks) != 1 {
		t.Fatalf("seeks executed = %d, want 1", len(res.Seeks))
	}
	if n := countKind(ring.Events(), telemetry.Seek); n != 1 {
		t.Errorf("seek events = %d, want 1", n)
	}
}

func TestRunContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := Config{
		Algorithm: abr.NewBBA2(),
		Stream:    telemetryStream(t, 100, 1),
		Trace:     trace.Constant(4*units.Mbps, time.Hour),
	}
	if _, err := RunContext(ctx, cfg); err != context.Canceled {
		t.Errorf("cancelled run returned %v, want context.Canceled", err)
	}
	// A background context changes nothing.
	if _, err := RunContext(context.Background(), cfg); err != nil {
		t.Errorf("background-context run failed: %v", err)
	}
}

func countKind(evs []telemetry.Event, k telemetry.Kind) int {
	n := 0
	for _, e := range evs {
		if e.Kind == k {
			n++
		}
	}
	return n
}
