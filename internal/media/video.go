package media

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Video is a title encoded at every ladder rate, split into fixed-duration
// chunks. Chunk sizes are fixed at construction, so a Video is safe for
// concurrent use.
type Video struct {
	Title         string
	Ladder        Ladder
	ChunkDuration time.Duration // V in the paper; 4 s in the Netflix player
	sizes         [][]int64     // [rateIndex][chunkIndex] bytes
}

// DefaultChunkDuration is the paper's chunk length ("four seconds per chunk
// in our service").
const DefaultChunkDuration = 4 * time.Second

// NumChunks returns how many chunks the title has.
func (v *Video) NumChunks() int { return len(v.sizes[0]) }

// Duration returns the title's playback duration.
func (v *Video) Duration() time.Duration {
	return time.Duration(v.NumChunks()) * v.ChunkDuration
}

// ChunkSize returns the size in bytes of chunk k at ladder index rate.
// It panics on out-of-range arguments: indices always originate inside the
// library, so a violation is a programming error, not an input error.
func (v *Video) ChunkSize(rate, k int) int64 {
	if rate < 0 || rate >= len(v.sizes) || k < 0 || k >= len(v.sizes[rate]) {
		v.chunkRangePanic(rate, k)
	}
	return v.sizes[rate][k]
}

// chunkRangePanic keeps the panic formatting out of ChunkSize so the hot
// lookup stays inlinable.
func (v *Video) chunkRangePanic(rate, k int) {
	if rate < 0 || rate >= len(v.sizes) {
		panic(fmt.Sprintf("media: rate index %d out of range [0,%d)", rate, len(v.sizes)))
	}
	panic(fmt.Sprintf("media: chunk index %d out of range [0,%d)", k, len(v.sizes[rate])))
}

// NominalChunkSize returns the average chunk size V·R implied by the
// nominal rate — "Chunk_min and Chunk_max represent the average chunk size
// in R_min and R_max" in the paper's chunk-map construction.
func (v *Video) NominalChunkSize(rate int) int64 {
	return v.Ladder[rate].BytesIn(v.ChunkDuration)
}

// MeasuredAvgChunkSize returns the empirical mean chunk size at a rate.
func (v *Video) MeasuredAvgChunkSize(rate int) int64 {
	var sum int64
	for _, s := range v.sizes[rate] {
		sum += s
	}
	return sum / int64(len(v.sizes[rate]))
}

// MaxToAvgRatio returns the ratio of the largest chunk to the nominal
// average at a rate — the paper's "e", about 2 in their system.
func (v *Video) MaxToAvgRatio(rate int) float64 {
	var max int64
	for _, s := range v.sizes[rate] {
		if s > max {
			max = s
		}
	}
	return float64(max) / float64(v.NominalChunkSize(rate))
}

// ChunkSizes returns a copy of all chunk sizes at a rate, in bytes.
func (v *Video) ChunkSizes(rate int) []int64 {
	out := make([]int64, len(v.sizes[rate]))
	copy(out, v.sizes[rate])
	return out
}

// NewCBR builds a constant-bitrate title: every chunk at rate R has exactly
// V·R bytes. CBR is assumption 3 of the paper's Section 3 idealized model
// and is what BBA-0 was (implicitly) designed for.
func NewCBR(title string, ladder Ladder, chunkDuration time.Duration, numChunks int) (*Video, error) {
	if err := ladder.Validate(); err != nil {
		return nil, err
	}
	if chunkDuration <= 0 {
		return nil, fmt.Errorf("media: non-positive chunk duration %v", chunkDuration)
	}
	if numChunks <= 0 {
		return nil, fmt.Errorf("media: non-positive chunk count %d", numChunks)
	}
	v := &Video{Title: title, Ladder: ladder, ChunkDuration: chunkDuration}
	v.sizes = make([][]int64, len(ladder))
	for ri, r := range ladder {
		size := r.BytesIn(chunkDuration)
		row := make([]int64, numChunks)
		for k := range row {
			row[k] = size
		}
		v.sizes[ri] = row
	}
	return v, nil
}

// FromSizes builds a Video from an explicit chunk-size matrix indexed as
// sizes[rateIndex][chunkIndex]. It is how a client reconstructs a title
// from a manifest. The matrix is copied.
func FromSizes(title string, ladder Ladder, chunkDuration time.Duration, sizes [][]int64) (*Video, error) {
	if err := ladder.Validate(); err != nil {
		return nil, err
	}
	if chunkDuration <= 0 {
		return nil, fmt.Errorf("media: non-positive chunk duration %v", chunkDuration)
	}
	if len(sizes) != len(ladder) {
		return nil, fmt.Errorf("media: %d size rows for a %d-rate ladder", len(sizes), len(ladder))
	}
	if len(sizes[0]) == 0 {
		return nil, fmt.Errorf("media: no chunks")
	}
	v := &Video{Title: title, Ladder: ladder, ChunkDuration: chunkDuration}
	v.sizes = make([][]int64, len(sizes))
	for ri, row := range sizes {
		if len(row) != len(sizes[0]) {
			return nil, fmt.Errorf("media: rate %d has %d chunks, rate 0 has %d", ri, len(row), len(sizes[0]))
		}
		for k, s := range row {
			if s <= 0 {
				return nil, fmt.Errorf("media: rate %d chunk %d has non-positive size %d", ri, k, s)
			}
		}
		v.sizes[ri] = append([]int64(nil), row...)
	}
	return v, nil
}

// VBRConfig parameterizes the scene-based variable-bitrate model.
type VBRConfig struct {
	Title         string
	Ladder        Ladder
	ChunkDuration time.Duration // default DefaultChunkDuration
	NumChunks     int           // default 1800 (a two-hour title at 4 s chunks)

	// MeanSceneChunks is the average scene length in chunks; scene lengths
	// are geometric. Default 8 (about 30 s scenes).
	MeanSceneChunks float64
	// MeanSequenceChunks is the average length of a sequence — a run of
	// related scenes sharing a baseline activity (an action set-piece, a
	// quiet dialogue stretch, the opening credits). Default 45 (about
	// three minutes). Sequences are what make the Figure 12 reservoir
	// calculation matter: a sustained heavy sequence at R_min needs far
	// more reservoir than BBA-0's fixed 90 seconds anticipates.
	MeanSequenceChunks float64
	// SequenceSigma is the log-stddev of per-sequence baseline activity.
	// Default 0.35.
	SequenceSigma float64
	// MaxToAvg bounds the instantaneous-to-nominal rate ratio; the paper
	// measures e ≈ 2 (Figure 10). Default 2.
	MaxToAvg float64
	// MinToAvg bounds the quiet end (opening credits encode "very few
	// bits"). Default 0.25.
	MinToAvg float64
	// SceneSigma is the log-stddev of per-scene activity. Default 0.45,
	// which together with the clamps reproduces Figure 10's spread.
	SceneSigma float64
	// ChunkJitter is the relative stddev of per-chunk noise within a
	// scene. Default 0.2.
	ChunkJitter float64
}

func (c *VBRConfig) applyDefaults() {
	if c.ChunkDuration <= 0 {
		c.ChunkDuration = DefaultChunkDuration
	}
	if c.NumChunks <= 0 {
		c.NumChunks = 1800
	}
	if c.MeanSceneChunks <= 0 {
		c.MeanSceneChunks = 8
	}
	if c.MeanSequenceChunks <= 0 {
		c.MeanSequenceChunks = 45
	}
	if c.SequenceSigma <= 0 {
		c.SequenceSigma = 0.35
	}
	if c.MaxToAvg <= 0 {
		c.MaxToAvg = 2
	}
	if c.MinToAvg <= 0 {
		c.MinToAvg = 0.25
	}
	if c.SceneSigma <= 0 {
		c.SceneSigma = 0.45
	}
	if c.ChunkJitter <= 0 {
		c.ChunkJitter = 0.2
	}
}

// NewVBR builds a variable-bitrate title. The activity process (scenes and
// per-chunk jitter) is drawn once and shared across all ladder rates, then
// normalized so that each encode's mean chunk size equals its nominal V·R
// within rounding. The generator is deterministic given rng's state.
func NewVBR(cfg VBRConfig, rng *rand.Rand) (*Video, error) {
	cfg.applyDefaults()
	if err := cfg.Ladder.Validate(); err != nil {
		return nil, err
	}
	factors := sceneFactors(cfg, rng)
	v := &Video{Title: cfg.Title, Ladder: cfg.Ladder, ChunkDuration: cfg.ChunkDuration}
	v.sizes = make([][]int64, len(cfg.Ladder))
	for ri, r := range cfg.Ladder {
		nominal := float64(r.BytesIn(cfg.ChunkDuration))
		row := make([]int64, cfg.NumChunks)
		for k, f := range factors {
			size := int64(nominal * f)
			if size < 1 {
				size = 1
			}
			row[k] = size
		}
		v.sizes[ri] = row
	}
	return v, nil
}

// sceneFactors draws the shared activity process: a two-level model with
// per-sequence baseline activity (minutes) modulated by per-scene activity
// (tens of seconds) and per-chunk jitter, clamped to [MinToAvg, MaxToAvg]
// and renormalized to mean 1.
func sceneFactors(cfg VBRConfig, rng *rand.Rand) []float64 {
	factors := make([]float64, cfg.NumChunks)
	k := 0
	seqLeft := 0
	seqActivity := 1.0
	for k < cfg.NumChunks {
		if seqLeft <= 0 {
			seqLeft = geometric(cfg.MeanSequenceChunks, rng)
			seqActivity = math.Exp(cfg.SequenceSigma * rng.NormFloat64())
		}
		sceneLen := geometric(cfg.MeanSceneChunks, rng)
		activity := clamp(seqActivity*math.Exp(cfg.SceneSigma*rng.NormFloat64()), cfg.MinToAvg, cfg.MaxToAvg)
		for i := 0; i < sceneLen && k < cfg.NumChunks; i++ {
			jitter := 1 + cfg.ChunkJitter*rng.NormFloat64()
			if jitter < 0.5 {
				jitter = 0.5
			}
			factors[k] = clamp(activity*jitter, cfg.MinToAvg, cfg.MaxToAvg)
			k++
			seqLeft--
		}
	}
	// Renormalize to mean 1 so the nominal rate is the true average rate,
	// then reclamp: a second pass keeps both properties within tolerance.
	for pass := 0; pass < 2; pass++ {
		var sum float64
		for _, f := range factors {
			sum += f
		}
		mean := sum / float64(len(factors))
		for i := range factors {
			factors[i] = clamp(factors[i]/mean, cfg.MinToAvg, cfg.MaxToAvg)
		}
	}
	return factors
}

// geometric draws a geometric length with the given mean, at least 1 and
// at most 8× the mean.
func geometric(mean float64, rng *rand.Rand) int {
	n := 1
	p := 1 / mean
	for rng.Float64() > p && n < int(8*mean) {
		n++
	}
	return n
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
