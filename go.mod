module bba

go 1.22
