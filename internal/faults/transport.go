package faults

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Transport wraps an http.RoundTripper and applies a fault schedule to
// live requests from the client side: 503s are synthesized without
// contacting the server, latency spikes delay the round trip, stalled
// bodies and connection resets corrupt the response stream after it
// starts. Capacity faults (Blackout, Collapse) are not Transport's job —
// shaping bytes-per-second belongs to netem.Shaper via ApplyToTrace.
//
// The schedule's clock starts at the Transport's first request (or at an
// explicit Start). Which requests inside an episode fail is decided by
// hashing (seed, request sequence), so a given Transport replays the same
// fault pattern for the same request order.
type Transport struct {
	// Base performs real round trips; http.DefaultTransport when nil.
	Base http.RoundTripper
	// Schedule holds the episodes to apply; a nil or empty schedule makes
	// the Transport transparent.
	Schedule *Schedule
	// Seed drives per-request fault decisions.
	Seed int64
	// OnFault, when set, observes each injected fault with the request
	// sequence number.
	OnFault func(kind Kind, seq int64)

	// Sleep replaces time.Sleep for latency spikes and stalls (tests).
	Sleep func(time.Duration)
	// Now replaces time.Now (tests).
	Now func() time.Time

	seq     atomic.Int64
	startMu sync.Mutex
	start   time.Time
}

// Start pins the schedule clock's zero. Unset, it is the first request.
func (t *Transport) Start(at time.Time) {
	t.startMu.Lock()
	t.start = at
	t.startMu.Unlock()
}

func (t *Transport) now() time.Time {
	if t.Now != nil {
		return t.Now()
	}
	return time.Now()
}

func (t *Transport) sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	if t.Sleep != nil {
		t.Sleep(d)
		return
	}
	time.Sleep(d)
}

// elapsed returns the schedule-clock time of a request issued now.
func (t *Transport) elapsed() time.Duration {
	now := t.now()
	t.startMu.Lock()
	if t.start.IsZero() {
		t.start = now
	}
	start := t.start
	t.startMu.Unlock()
	return now.Sub(start)
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	if t.Schedule.Empty() {
		return base.RoundTrip(req)
	}
	seq := t.seq.Add(1) - 1
	at := t.elapsed()

	if f, ok := t.Schedule.Active(LatencySpike, at); ok {
		t.emit(LatencySpike, seq)
		t.sleep(f.Latency)
	}

	f, ok := t.Schedule.ActiveHTTP(at)
	if !ok || unitFloat(hash(mix64(uint64(t.Seed)), uint64(f.Kind), uint64(seq))) >= AttemptFailProb {
		return base.RoundTrip(req)
	}
	t.emit(f.Kind, seq)
	switch f.Kind {
	case ServerError:
		// Synthesized at the edge: the request never reaches the server.
		return &http.Response{
			Status:     "503 Service Unavailable",
			StatusCode: http.StatusServiceUnavailable,
			Proto:      "HTTP/1.1",
			ProtoMajor: 1,
			ProtoMinor: 1,
			Header:     http.Header{"Content-Type": {"text/plain"}},
			Body:       io.NopCloser(strings.NewReader("faults: injected 503\n")),
			Request:    req,
		}, nil
	case StallBody:
		resp, err := base.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		resp.Body = &faultBody{rc: resp.Body, stall: t.sleepFn(), limit: 1 << 10}
		return resp, nil
	case ConnReset:
		resp, err := base.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		resp.Body = &faultBody{rc: resp.Body, reset: true, limit: 1 << 10}
		return resp, nil
	}
	return base.RoundTrip(req)
}

func (t *Transport) emit(kind Kind, seq int64) {
	if t.OnFault != nil {
		t.OnFault(kind, seq)
	}
}

func (t *Transport) sleepFn() func(time.Duration) {
	if t.Sleep != nil {
		return t.Sleep
	}
	return time.Sleep
}

// ErrConnReset is the error an injected mid-download reset surfaces.
var ErrConnReset = fmt.Errorf("faults: injected connection reset")

// faultBody delivers up to limit bytes of the wrapped body, then either
// stalls (blocking reads for 30 s apiece so the caller's timeout fires) or
// resets (returning ErrConnReset).
type faultBody struct {
	rc    io.ReadCloser
	limit int64
	stall func(time.Duration)
	reset bool
	read  int64
}

func (b *faultBody) Read(p []byte) (int, error) {
	if b.read >= b.limit {
		if b.reset {
			return 0, ErrConnReset
		}
		// Slowloris: never deliver, never EOF — block until the caller's
		// deadline cancels the request.
		b.stall(30 * time.Second)
		return 0, nil
	}
	if rem := b.limit - b.read; int64(len(p)) > rem {
		p = p[:rem]
	}
	n, err := b.rc.Read(p)
	b.read += int64(n)
	return n, err
}

func (b *faultBody) Close() error { return b.rc.Close() }
