package player

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"bba/internal/abr"
	"bba/internal/media"
	"bba/internal/trace"
	"bba/internal/units"
)

func cbrStream(t testing.TB, chunks int) abr.Stream {
	t.Helper()
	v, err := media.NewCBR("cbr", media.DefaultLadder(), media.DefaultChunkDuration, chunks)
	if err != nil {
		t.Fatal(err)
	}
	return abr.NewStream(v, 0)
}

func vbrStream(t testing.TB, seed int64, chunks int) abr.Stream {
	t.Helper()
	v, err := media.NewVBR(media.VBRConfig{Ladder: media.DefaultLadder(), NumChunks: chunks}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return abr.NewStream(v, 0)
}

func TestRunValidation(t *testing.T) {
	s := cbrStream(t, 10)
	if _, err := Run(Config{Stream: s, Trace: trace.Constant(units.Mbps, time.Minute)}); err == nil {
		t.Error("nil algorithm accepted")
	}
	if _, err := Run(Config{Algorithm: abr.RminAlways{}, Stream: s}); err == nil {
		t.Error("nil trace accepted")
	}
}

func TestHappyPathNoRebuffers(t *testing.T) {
	s := cbrStream(t, 450) // 30 minutes
	res, err := Run(Config{
		Algorithm: abr.NewBBA2(),
		Stream:    s,
		Trace:     trace.Constant(10*units.Mbps, time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rebuffers != 0 || res.StallTime != 0 {
		t.Errorf("rebuffers=%d stall=%v on a 10Mb/s link", res.Rebuffers, res.StallTime)
	}
	if res.Played != s.Video().Duration() {
		t.Errorf("played %v, want full title %v", res.Played, s.Video().Duration())
	}
	if res.Incomplete {
		t.Error("marked incomplete")
	}
	// With capacity over R_max, the rate must reach and hold the top.
	last := res.Chunks[len(res.Chunks)-1]
	if last.Rate != s.Ladder().Max() {
		t.Errorf("final rate %v, want R_max", last.Rate)
	}
	// Wall time ≈ played time (buffer fills then the ON-OFF pattern
	// paces downloads at playback speed).
	if res.End < res.Played {
		t.Errorf("session ended at %v before playing %v", res.End, res.Played)
	}
}

func TestWatchLimit(t *testing.T) {
	s := cbrStream(t, 1800)
	limit := 10 * time.Minute
	res, err := Run(Config{
		Algorithm:  abr.NewBBA2(),
		Stream:     s,
		Trace:      trace.Constant(5*units.Mbps, time.Hour),
		WatchLimit: limit,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Played != limit {
		t.Errorf("played %v, want watch limit %v", res.Played, limit)
	}
	// Downloads should not have run far past the limit.
	maxChunks := int(limit/s.ChunkDuration()) + int(240/4) + 2
	if len(res.Chunks) > maxChunks {
		t.Errorf("downloaded %d chunks for a %v session", len(res.Chunks), limit)
	}
}

func TestJoinDelay(t *testing.T) {
	s := cbrStream(t, 30)
	// First chunk at R_min (235 kb/s, 117.5 kB) over 1 Mb/s: 0.94 s.
	res, err := Run(Config{
		Algorithm: abr.NewBBA0(),
		Stream:    s,
		Trace:     trace.Constant(units.Mbps, time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 940 * time.Millisecond
	if d := res.JoinDelay - want; d < -time.Millisecond || d > time.Millisecond {
		t.Errorf("join delay = %v, want ≈%v", res.JoinDelay, want)
	}
}

func TestRmaxAlwaysRebuffersOnSlowLink(t *testing.T) {
	s := cbrStream(t, 150)
	// R_max is 5 Mb/s; a 1 Mb/s link cannot sustain it.
	res, err := Run(Config{
		Algorithm: abr.RmaxAlways{},
		Stream:    s,
		Trace:     trace.Constant(units.Mbps, 2*time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rebuffers == 0 {
		t.Error("RmaxAlways on a slow link should rebuffer")
	}
	if res.StallTime == 0 {
		t.Error("no stall time recorded")
	}
}

func TestRminAlwaysNeverRebuffersAboveRmin(t *testing.T) {
	s := vbrStream(t, 3, 450)
	// Capacity always ≥ 2×R_min even while varying.
	tr := trace.Markov(trace.MarkovConfig{
		Base:     2 * units.Mbps,
		Sigma:    1.0,
		Duration: time.Hour,
		Floor:    2 * 235 * units.Kbps,
	}, rand.New(rand.NewSource(8)))
	res, err := Run(Config{Algorithm: abr.RminAlways{}, Stream: s, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rebuffers != 0 {
		t.Errorf("RminAlways rebuffered %d times with C ≥ 2·Rmin", res.Rebuffers)
	}
	if res.Switches != 0 {
		t.Errorf("RminAlways switched %d times", res.Switches)
	}
}

// The paper's Section 3 theorem: with a CBR encode and C(t) ≥ R_min at all
// times, a buffer-based algorithm never rebuffers.
func TestQuickNoUnnecessaryRebuffersBBA0(t *testing.T) {
	s := cbrStream(t, 450)
	f := func(seed int64) bool {
		tr := trace.Markov(trace.MarkovConfig{
			Base:     1500 * units.Kbps,
			Sigma:    1.3,
			Duration: time.Hour,
			Floor:    235 * units.Kbps, // C(t) ≥ R_min
		}, rand.New(rand.NewSource(seed)))
		res, err := Run(Config{Algorithm: abr.NewBBA0(), Stream: s, Trace: tr})
		if err != nil {
			return false
		}
		return res.Rebuffers == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// The VBR counterpart with BBA-1's dynamic reservoir. The theorem is exact
// only in the fluid limit: with finite chunks, a max-size chunk in flight
// while capacity sits exactly at R_min can graze the empty buffer for a
// moment (the reservoir is clamped at 140 s). So the property here is the
// deployable one: with C(t) ≥ R_min, stalls are negligible — under 2% of
// playback — rather than strictly zero.
func TestQuickNoUnnecessaryRebuffersBBA1(t *testing.T) {
	f := func(seed int64) bool {
		s := vbrStream(t, seed, 450)
		tr := trace.Markov(trace.MarkovConfig{
			Base:     1500 * units.Kbps,
			Sigma:    1.2,
			Duration: time.Hour,
			Floor:    235 * units.Kbps,
		}, rand.New(rand.NewSource(seed+1)))
		res, err := Run(Config{Algorithm: abr.NewBBA1(), Stream: s, Trace: tr})
		if err != nil {
			return false
		}
		return res.StallTime.Seconds() <= 0.02*res.Played.Seconds()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestTerminalOutageMarksIncomplete(t *testing.T) {
	s := cbrStream(t, 450)
	tr := trace.MustNew([]trace.Segment{
		{Duration: time.Minute, Rate: 3 * units.Mbps},
		{Duration: time.Second, Rate: 0}, // dead forever after
	})
	res, err := Run(Config{Algorithm: abr.NewBBA2(), Stream: s, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Incomplete {
		t.Error("session not marked incomplete")
	}
	if res.Rebuffers == 0 {
		t.Error("the permanent freeze should count as a rebuffer event")
	}
	// The viewer still watched everything that was buffered.
	if res.Played == 0 {
		t.Error("nothing played before the outage")
	}
}

func TestDeadLinkFromStart(t *testing.T) {
	s := cbrStream(t, 10)
	if _, err := Run(Config{
		Algorithm: abr.NewBBA0(),
		Stream:    s,
		Trace:     trace.Constant(0, time.Minute),
	}); err != ErrNoProgress {
		t.Errorf("err = %v, want ErrNoProgress", err)
	}
}

func TestMidSessionOutageWithRecovery(t *testing.T) {
	s := cbrStream(t, 450)
	base := trace.Constant(3*units.Mbps, time.Hour)
	tr, err := trace.WithOutages(base, []trace.Outage{{Start: 5 * time.Minute, Duration: 25 * time.Second}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Algorithm: abr.NewBBA2(), Stream: s, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	// A 25 s outage against a buffer that has had 5 minutes to fill:
	// playback should ride it out.
	if res.Rebuffers != 0 {
		t.Errorf("25s outage with a warm buffer caused %d rebuffers", res.Rebuffers)
	}
	if res.Incomplete {
		t.Error("marked incomplete despite recovery")
	}
}

func TestSwitchCounting(t *testing.T) {
	s := cbrStream(t, 60)
	res, err := Run(Config{
		Algorithm: abr.NewBBA2(),
		Stream:    s,
		Trace:     trace.Constant(10*units.Mbps, time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Count transitions in the log and compare.
	want := 0
	for i := 1; i < len(res.Chunks); i++ {
		if res.Chunks[i].RateIndex != res.Chunks[i-1].RateIndex {
			want++
		}
	}
	if res.Switches != want {
		t.Errorf("Switches = %d, log shows %d", res.Switches, want)
	}
	if res.Switches == 0 {
		t.Error("startup ramp should produce switches")
	}
}

func TestBBA2RampsFasterThanBBA1(t *testing.T) {
	// Figure 16: on a link comfortably above R_max, BBA-2 reaches the
	// steady-state rate much sooner than BBA-1.
	s := vbrStream(t, 5, 450)
	tr := trace.Constant(10*units.Mbps, time.Hour)
	limit := 8 * time.Minute

	r1, err := Run(Config{Algorithm: abr.NewBBA1(), Stream: s, Trace: tr, WatchLimit: limit})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(Config{Algorithm: abr.NewBBA2(), Stream: s, Trace: tr, WatchLimit: limit})
	if err != nil {
		t.Fatal(err)
	}
	if r2.StartupAvgRateKbps() <= r1.StartupAvgRateKbps() {
		t.Errorf("BBA-2 startup rate %.0f not above BBA-1 %.0f",
			r2.StartupAvgRateKbps(), r1.StartupAvgRateKbps())
	}
	// And the overall average benefits accordingly.
	if r2.AvgRateKbps() <= r1.AvgRateKbps() {
		t.Errorf("BBA-2 avg %.0f not above BBA-1 %.0f", r2.AvgRateKbps(), r1.AvgRateKbps())
	}
}

func TestSteadyStateMatchesCapacity(t *testing.T) {
	// Section 3.1: with R_min < C < R_max, the steady-state average rate
	// approaches the capacity (the buffer settles where f(B) = C).
	s := cbrStream(t, 1800)
	c := 1400 * units.Kbps
	res, err := Run(Config{
		Algorithm:  abr.NewBBA0(),
		Stream:     s,
		Trace:      trace.Constant(c, 3*time.Hour),
		WatchLimit: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rebuffers != 0 {
		t.Fatalf("rebuffered %d times at constant capacity above R_min", res.Rebuffers)
	}
	steady := res.SteadyAvgRateKbps()
	if steady < 0.75*c.Kilobits() || steady > 1.05*c.Kilobits() {
		t.Errorf("steady rate %.0f kb/s, want ≈ capacity %.0f kb/s", steady, c.Kilobits())
	}
}

func TestMetricsHelpers(t *testing.T) {
	r := &Result{Played: 2 * time.Hour, Rebuffers: 3, Switches: 10}
	if got := r.RebuffersPerPlayhour(); got != 1.5 {
		t.Errorf("RebuffersPerPlayhour = %v", got)
	}
	if got := r.SwitchesPerPlayhour(); got != 5 {
		t.Errorf("SwitchesPerPlayhour = %v", got)
	}
	empty := &Result{}
	if empty.RebuffersPerPlayhour() != 0 || empty.SwitchesPerPlayhour() != 0 || empty.AvgRateKbps() != 0 {
		t.Error("zero-play metrics should be 0")
	}
	if empty.StartupAvgRateKbps() != 0 || empty.SteadyAvgRateKbps() != 0 {
		t.Error("zero-chunk phase rates should be 0")
	}
}

func TestChunkRecordsConsistent(t *testing.T) {
	s := vbrStream(t, 9, 200)
	res, err := Run(Config{
		Algorithm: abr.NewBBAOthers(),
		Stream:    s,
		Trace:     trace.Constant(4*units.Mbps, time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	var prevStart time.Duration
	for i, c := range res.Chunks {
		if c.Index != i {
			t.Fatalf("chunk %d has index %d (no skips or repeats allowed)", i, c.Index)
		}
		if c.Bytes != s.ChunkSize(c.RateIndex, c.Index) {
			t.Fatalf("chunk %d bytes %d do not match the encode", i, c.Bytes)
		}
		if c.Start < prevStart {
			t.Fatalf("chunk %d starts before its predecessor", i)
		}
		if c.Download <= 0 || c.Throughput <= 0 {
			t.Fatalf("chunk %d has no download accounting", i)
		}
		if c.BufferAfter < 0 || c.BufferAfter > 240*time.Second {
			t.Fatalf("chunk %d buffer %v out of range", i, c.BufferAfter)
		}
		prevStart = c.Start
	}
}

func TestWriteChunkCSV(t *testing.T) {
	s := cbrStream(t, 30)
	res, err := Run(Config{
		Algorithm: abr.NewBBA0(),
		Stream:    s,
		Trace:     trace.Constant(4*units.Mbps, time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteChunkCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+len(res.Chunks) {
		t.Fatalf("CSV has %d lines, want %d", len(lines), 1+len(res.Chunks))
	}
	if !strings.HasPrefix(lines[0], "start_s,index,") {
		t.Errorf("header = %q", lines[0])
	}
	for _, line := range lines[1:] {
		if strings.Count(line, ",") != 6 {
			t.Fatalf("row %q malformed", line)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	s := vbrStream(t, 17, 450)
	tr := trace.Markov(trace.MarkovConfig{Base: 3 * units.Mbps, Sigma: 1.0, Duration: time.Hour}, rand.New(rand.NewSource(4)))
	run := func() *Result {
		res, err := Run(Config{Algorithm: abr.NewBBA2(), Stream: s, Trace: tr, WatchLimit: 15 * time.Minute})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Rebuffers != b.Rebuffers || a.Played != b.Played || a.Switches != b.Switches || len(a.Chunks) != len(b.Chunks) {
		t.Fatal("identical configs diverged")
	}
	for i := range a.Chunks {
		if a.Chunks[i] != b.Chunks[i] {
			t.Fatalf("chunk %d differs", i)
		}
	}
}
