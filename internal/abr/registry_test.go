package abr

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"bba/internal/units"
)

// TestRegistryRoundTrip pins the registry contract for every entry: the
// name constructs, the constructed algorithm reports the registered name,
// consecutive constructions are independent instances, and each entry's
// capability probes (SeekAware, ReservoirReporter, CapacitySeeded) behave
// when exercised.
func TestRegistryRoundTrip(t *testing.T) {
	names := Names()
	if len(names) < 10 {
		t.Fatalf("registry has %d entries, expected the full built-in set", len(names))
	}
	s := cbrStream(t)
	for _, name := range names {
		a, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if a.Name() != name {
			t.Errorf("New(%q).Name() = %q: registry key and Name() must agree", name, a.Name())
		}
		b, err := New(name)
		if err != nil {
			t.Fatalf("New(%q) second construction: %v", name, err)
		}
		// Stateful (pointer-typed) algorithms must come out as distinct
		// instances; the stateless value types (Rmin/Rmax Always) are
		// exempt — they carry nothing to share.
		if av, bv := reflect.ValueOf(a), reflect.ValueOf(b); av.Kind() == reflect.Pointer && av.Pointer() == bv.Pointer() {
			t.Errorf("New(%q) returned the same instance twice: factories must build fresh state machines", name)
		}

		// Exercise every capability the entry advertises; none may panic
		// or corrupt the next decision.
		if ca, ok := a.(CapacitySeeded); ok {
			ca.SeedCapacity(3 * units.Mbps)
		}
		if sa, ok := a.(SeekAware); ok {
			sa.Seeked()
		}
		got := a.Next(stateAt(30*time.Second, -1, 0), s)
		if got < 0 || got >= len(s.Ladder()) {
			t.Errorf("%s: first decision %d outside the ladder", name, got)
		}
		if rr, ok := a.(ReservoirReporter); ok {
			if res, prot, ok2 := rr.LastReservoir(); ok2 && (res < 0 || prot < 0) {
				t.Errorf("%s: negative reservoir report (%v, %v)", name, res, prot)
			}
		}
	}
}

// TestRegistryCapabilityCoverage pins which built-ins advertise which
// capabilities, so a refactor that silently drops an interface (and with it
// history seeding or seek handling) fails loudly.
func TestRegistryCapabilityCoverage(t *testing.T) {
	wantSeeded := map[string]bool{
		"Control": true, "PID": true, "ELASTIC": true,
		"SmoothThroughput": true, "Hybrid": true,
	}
	wantSeek := map[string]bool{"BBA-2": true, "BBA-Others": true}
	wantReservoir := map[string]bool{"BBA-1": true, "BBA-2": true, "BBA-Others": true}
	for _, name := range Names() {
		a, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := a.(CapacitySeeded); ok != wantSeeded[name] {
			t.Errorf("%s: CapacitySeeded = %v, want %v", name, ok, wantSeeded[name])
		}
		if _, ok := a.(SeekAware); ok != wantSeek[name] {
			t.Errorf("%s: SeekAware = %v, want %v", name, ok, wantSeek[name])
		}
		if _, ok := a.(ReservoirReporter); ok != wantReservoir[name] {
			t.Errorf("%s: ReservoirReporter = %v, want %v", name, ok, wantReservoir[name])
		}
	}
}

func TestRegistryUnknownName(t *testing.T) {
	_, err := New("no-such-algorithm")
	if err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	// The error must enumerate the registry so command-line help stays in
	// sync with what is selectable.
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("unknown-name error does not mention %q: %v", name, err)
		}
	}
}

func TestRegisterPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("duplicate", func() { Register("BBA-0", func() Algorithm { return NewBBA0() }) })
	mustPanic("empty name", func() { Register("", func() Algorithm { return NewBBA0() }) })
	mustPanic("nil factory", func() { Register("nil-factory", nil) })
}

// thirdParty is a registry test double honouring the Name()==key contract.
type thirdParty struct{ RminAlways }

func (thirdParty) Name() string { return "test-registry-third-party" }

func TestRegisterThirdParty(t *testing.T) {
	// Registration order is append-only, so a test-local registration is
	// observable but does not disturb the built-in prefix. (It stays for
	// the life of the test binary; it keeps the Name()==key contract so
	// later registry-walking tests still pass.)
	name := thirdParty{}.Name()
	if _, ok := Lookup(name); ok {
		t.Skipf("%q already registered (repeated run in one binary)", name)
	}
	Register(name, func() Algorithm { return thirdParty{} })
	if _, ok := Lookup(name); !ok {
		t.Fatalf("Lookup(%q) after Register: not found", name)
	}
	names := Names()
	if names[len(names)-1] != name {
		t.Errorf("new registration not last in Names(): %v", names)
	}
	a, err := New(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := a.(thirdParty); !ok {
		t.Errorf("New(%q) built %T", name, a)
	}
}

// FuzzNew exercises the registry lookup with arbitrary names: it must never
// panic, and must construct exactly the registered set.
func FuzzNew(f *testing.F) {
	for _, name := range Names() {
		f.Add(name)
	}
	f.Add("")
	f.Add("bba-0")
	f.Add("BBA-0 ")
	registered := map[string]bool{}
	for _, n := range Names() {
		registered[n] = true
	}
	f.Fuzz(func(t *testing.T, name string) {
		a, err := New(name)
		switch {
		case registered[name]:
			if err != nil {
				t.Fatalf("New(%q): %v", name, err)
			}
			if a.Name() != name {
				t.Fatalf("New(%q).Name() = %q", name, a.Name())
			}
		default:
			if err == nil {
				t.Fatalf("New(%q) accepted an unregistered name (built %s)", name, a.Name())
			}
		}
	})
}
