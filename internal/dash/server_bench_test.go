package dash

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"bba/internal/media"
)

// benchVideo builds the standard benchmark title once per benchmark.
func benchVideo(b *testing.B) *media.Video {
	b.Helper()
	v, err := media.NewVBR(media.VBRConfig{
		Title:         "bench",
		Ladder:        media.DefaultLadder(),
		ChunkDuration: time.Second,
		NumChunks:     120,
	}, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	return v
}

// discardWriter is a ResponseWriter that throws the body away — the
// handler cost alone, no socket, no recorder buffer growth.
type discardWriter struct{ h http.Header }

func (d *discardWriter) Header() http.Header {
	if d.h == nil {
		d.h = make(http.Header)
	}
	return d.h
}
func (d *discardWriter) Write(p []byte) (int, error) { return len(p), nil }
func (d *discardWriter) WriteHeader(int)             {}

// BenchmarkServeChunk measures the per-request cost of the chunk handler —
// the unit of work the load rig multiplies by thousands of concurrent
// clients. The load-mode before/after datapoint in BENCH_load.json tracks
// this number across server hardening changes.
func BenchmarkServeChunk(b *testing.B) {
	srv, err := NewServer(benchVideo(b))
	if err != nil {
		b.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodGet, "/chunk/0/3", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var w discardWriter
		srv.ServeHTTP(&w, req)
	}
}

// BenchmarkMasterPlaylist measures serving the HLS master playlist — a
// manifest-path request every HLS session opens with.
func BenchmarkMasterPlaylist(b *testing.B) {
	srv, err := NewServer(benchVideo(b))
	if err != nil {
		b.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodGet, "/master.m3u8", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var w discardWriter
		srv.ServeHTTP(&w, req)
	}
}

// BenchmarkMediaPlaylist measures serving one variant media playlist —
// re-rendered per request before the playlist cache, O(chunks) each time.
func BenchmarkMediaPlaylist(b *testing.B) {
	srv, err := NewServer(benchVideo(b))
	if err != nil {
		b.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodGet, "/playlist/0.m3u8", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var w discardWriter
		srv.ServeHTTP(&w, req)
	}
}
