package abr

import (
	"fmt"
	"strings"
	"sync"

	"bba/internal/units"
)

// The registry maps algorithm names — the experiment-group names used
// throughout the paper and the arena — to single-session factories. It
// replaces the hand-written name switch: commands, the facade, the A/B
// harness and the arena all enumerate Names() for help text and derive
// unknown-name errors from New, so a newly registered algorithm is
// immediately selectable everywhere without touching any of them.
var registry = struct {
	sync.RWMutex
	order     []string
	factories map[string]Factory
}{factories: map[string]Factory{}}

// Register adds a named algorithm factory. Names are the identity the whole
// stack keys on (experiment arms, arena entrants, flag values, report
// groups), so registering an empty name, a nil factory or a duplicate name
// is a programming error and panics. The factory's algorithms must report
// Name() equal to the registered name. Built-ins register in paper order at
// init; call Register from your own init (or before first use) to add an
// algorithm.
func Register(name string, f Factory) {
	if name == "" {
		panic("abr: Register with empty name")
	}
	if f == nil {
		panic(fmt.Sprintf("abr: Register %q with nil factory", name))
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.factories[name]; dup {
		panic(fmt.Sprintf("abr: algorithm %q registered twice", name))
	}
	registry.order = append(registry.order, name)
	registry.factories[name] = f
}

// Names returns every registered algorithm name in registration order
// (built-ins in paper order, then third-party registrations). The slice is
// a copy; callers may keep it.
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	return append([]string(nil), registry.order...)
}

// Lookup returns the factory registered under name.
func Lookup(name string) (Factory, bool) {
	registry.RLock()
	defer registry.RUnlock()
	f, ok := registry.factories[name]
	return f, ok
}

// New builds a fresh single-session algorithm by registered name. The
// unknown-name error enumerates the registry, so every command's error
// message stays in sync with what is actually selectable.
func New(name string) (Algorithm, error) {
	f, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("abr: unknown algorithm %q (registered: %s)", name, strings.Join(Names(), ", "))
	}
	return f(), nil
}

// CapacitySeeded is implemented by algorithms whose first decisions use a
// stored capacity estimate — production players seed their estimator with
// the user's throughput history. The A/B harness probes it when building an
// arm from a factory, so history seeding works for any registered
// algorithm without per-algorithm wiring.
type CapacitySeeded interface {
	// SeedCapacity installs the stored throughput history used before the
	// first chunk's measurement arrives.
	SeedCapacity(units.BitRate)
}

// Built-ins, in paper order: the production Control and the degenerate
// bounds, the four buffer-based algorithms, the related-work controllers,
// then the arena rivals.
func init() {
	Register("Control", func() Algorithm { return NewControl() })
	Register("Rmin Always", func() Algorithm { return RminAlways{} })
	Register("Rmax Always", func() Algorithm { return RmaxAlways{} })
	Register("BBA-0", func() Algorithm { return NewBBA0() })
	Register("BBA-1", func() Algorithm { return NewBBA1() })
	Register("BBA-2", func() Algorithm { return NewBBA2() })
	Register("BBA-Others", func() Algorithm { return NewBBAOthers() })
	Register("PID", func() Algorithm { return NewBufferTarget() })
	Register("ELASTIC", func() Algorithm { return NewElastic() })
	Register("BOLA", func() Algorithm { return NewBOLA() })
	Register("SmoothThroughput", func() Algorithm { return NewSmoothThroughput() })
	Register("Hybrid", func() Algorithm { return NewHybrid() })
}
