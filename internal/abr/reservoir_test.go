package abr

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"bba/internal/media"
)

func TestDynamicReservoirCBRClampsToMinimum(t *testing.T) {
	// On a CBR encode every R_min chunk downloads in exactly V seconds at
	// capacity R_min: the deficit is zero and the reservoir clamps to the
	// 8-second minimum.
	s := cbrStream(t)
	if got := DynamicReservoir(s, 0, 0); got != MinReservoir {
		t.Errorf("CBR reservoir = %v, want MinReservoir %v", got, MinReservoir)
	}
}

func TestDynamicReservoirBounds(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		s := vbrStream(t, seed)
		for k := 0; k < s.NumChunks(); k += 37 {
			r := DynamicReservoir(s, k, 0)
			if r < MinReservoir || r > MaxReservoir {
				t.Fatalf("seed %d chunk %d: reservoir %v outside [%v, %v]", seed, k, r, MinReservoir, MaxReservoir)
			}
		}
	}
}

func TestDynamicReservoirTracksSceneActivity(t *testing.T) {
	// Build a title that is quiet for its first half and busy for its
	// second half; the reservoir computed at the start of the busy part
	// must exceed the one computed at the start of the quiet part.
	ladder := media.DefaultLadder()
	n := 240
	quiet, err := media.NewVBR(media.VBRConfig{
		Ladder: ladder, NumChunks: n,
		SceneSigma: 0.01, MaxToAvg: 1.05, MinToAvg: 0.95,
	}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	// Forcing every chunk to at least 1.4× nominal (clamps above 1 defeat
	// mean normalization) models a sustained action set-piece: at
	// C = R_min each chunk adds a 0.4·V deficit, so the 480 s window
	// accumulates ≈190 s and the reservoir pins at the 140 s clamp.
	busy, err := media.NewVBR(media.VBRConfig{
		Ladder: ladder, NumChunks: n,
		SceneSigma: 0.8, MaxToAvg: 2, MinToAvg: 1.4,
	}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	rq := DynamicReservoir(NewStream(quiet, 0), 0, 0)
	rb := DynamicReservoir(NewStream(busy, 0), 0, 0)
	if rq != MinReservoir {
		t.Errorf("near-CBR reservoir = %v, want the minimum", rq)
	}
	if rb != MaxReservoir {
		t.Errorf("sustained-heavy title reservoir = %v, want the %v clamp", rb, MaxReservoir)
	}
}

func TestDynamicReservoirNearEndOfTitle(t *testing.T) {
	s := vbrStream(t, 5)
	// At the very last chunk there is nothing left to look ahead to.
	if got := DynamicReservoir(s, s.NumChunks()-1, 0); got < MinReservoir || got > MaxReservoir {
		t.Errorf("end-of-title reservoir = %v", got)
	}
	if got := DynamicReservoir(s, s.NumChunks()+100, 0); got != MinReservoir {
		t.Errorf("past-end reservoir = %v, want MinReservoir", got)
	}
}

func TestDynamicReservoirWindowDefault(t *testing.T) {
	s := vbrStream(t, 9)
	explicit := DynamicReservoir(s, 10, DefaultReservoirWindow)
	defaulted := DynamicReservoir(s, 10, 0)
	if explicit != defaulted {
		t.Errorf("window 0 should default to %v: got %v vs %v", DefaultReservoirWindow, defaulted, explicit)
	}
}

// TestReservoirPlanMatchesDynamicReservoir pins the hot-path cache: on
// randomized VBR titles (with and without R_min promotion), the per-session
// deficit plan returns the exact DynamicReservoir result for every chunk
// and a spread of windows. Bit-identical, not approximately equal — the
// plan accumulates the same terms in the same order.
func TestReservoirPlanMatchesDynamicReservoir(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		s := vbrStream(t, seed)
		if seed%2 == 1 {
			// Promote R_min so the plan must track the session ladder, not
			// the encode's full ladder.
			s = NewStream(s.Video(), s.Ladder()[1])
		}
		plan := newReservoirPlan(s)
		if !plan.matches(s) {
			t.Fatal("fresh plan does not match its own stream")
		}
		for k := 0; k < s.NumChunks(); k += 7 {
			for _, w := range []time.Duration{0, 30 * time.Second, DefaultReservoirWindow, 1200 * time.Second} {
				want := DynamicReservoir(s, k, w)
				if got := plan.reservoir(k, w); got != want {
					t.Fatalf("seed %d chunk %d window %v: plan %v, reference %v", seed, k, w, got, want)
				}
			}
		}
	}
}

// TestReservoirPlanRebindsOnStreamChange pins the guard: a BBA-1 instance
// asked about a different title or a different R_min promotion must rebuild
// its plan rather than reuse stale deficits.
func TestReservoirPlanRebindsOnStreamChange(t *testing.T) {
	a := vbrStream(t, 1)
	promoted := NewStream(a.Video(), a.Ladder()[2])
	b := NewBBA1()
	if got, want := b.dynamicReservoir(a, 10), DynamicReservoir(a, 10, b.ReservoirWindow); got != want {
		t.Fatalf("first stream: %v, want %v", got, want)
	}
	if got, want := b.dynamicReservoir(promoted, 10), DynamicReservoir(promoted, 10, b.ReservoirWindow); got != want {
		t.Fatalf("promoted stream: %v, want %v", got, want)
	}
	other := vbrStream(t, 2)
	if got, want := b.dynamicReservoir(other, 10), DynamicReservoir(other, 10, b.ReservoirWindow); got != want {
		t.Fatalf("second title: %v, want %v", got, want)
	}
}

// Property: the reservoir is always within the paper's clamp and is
// monotone in the window length (a longer lookahead can only reveal a worse
// prefix).
func TestQuickReservoirWindowMonotone(t *testing.T) {
	s := vbrStream(t, 13)
	f := func(kRaw uint16, w1, w2 uint16) bool {
		k := int(kRaw) % s.NumChunks()
		a := time.Duration(w1%600+1) * time.Second
		b := time.Duration(w2%600+1) * time.Second
		if a > b {
			a, b = b, a
		}
		ra := DynamicReservoir(s, k, a)
		rb := DynamicReservoir(s, k, b)
		return ra <= rb && ra >= MinReservoir && rb <= MaxReservoir
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
