package abtest

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"bba/internal/abr"
	"bba/internal/metrics"
)

// smallConfig keeps experiment tests fast while exercising every code path.
func smallConfig(seed int64) Config {
	return Config{Seed: seed, Days: 1, SessionsPerWindow: 4, CatalogSize: 6}
}

func TestRunProducesAllGroups(t *testing.T) {
	out, err := Run(smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"Control", "Rmin Always", "BBA-0", "BBA-1", "BBA-2", "BBA-Others"}
	for _, g := range want {
		ws, ok := out.Windows[g]
		if !ok {
			t.Fatalf("group %q missing", g)
		}
		if len(ws) != metrics.WindowsPerDay {
			t.Fatalf("group %q has %d windows", g, len(ws))
		}
		if len(out.Sessions[g]) != 12*4 {
			t.Fatalf("group %q has %d sessions, want 48", g, len(out.Sessions[g]))
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	for g := range a.Windows {
		for i := range a.Windows[g] {
			wa, wb := a.Windows[g][i], b.Windows[g][i]
			if wa.RebuffersPerPlayhour != wb.RebuffersPerPlayhour ||
				wa.AvgRateKbps != wb.AvgRateKbps ||
				wa.SwitchesPerPlayhour != wb.SwitchesPerPlayhour {
				t.Fatalf("group %s window %d differs between identical runs", g, i)
			}
		}
	}
}

func TestRunPairsSessionsAcrossGroups(t *testing.T) {
	out, err := Run(smallConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	// Paired design: every group plays the same (window, day) session
	// slots, so play-hours line up closely (identical watch limits; small
	// differences only from stall-truncated tails).
	var ctrl, bound float64
	for _, s := range out.Sessions["Control"] {
		ctrl += s.PlayHours
	}
	for _, s := range out.Sessions["Rmin Always"] {
		bound += s.PlayHours
	}
	if ctrl == 0 || bound == 0 {
		t.Fatal("no play hours accumulated")
	}
	ratio := ctrl / bound
	if ratio < 0.97 || ratio > 1.03 {
		t.Errorf("paired groups diverge in play hours: ratio %.3f", ratio)
	}
}

func TestRunCustomGroups(t *testing.T) {
	cfg := smallConfig(5)
	cfg.Groups = []Group{
		{Name: "only", New: func(User) abr.Algorithm { return abr.RminAlways{} }},
	}
	out, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Windows) != 1 {
		t.Fatalf("got %d groups", len(out.Windows))
	}
	for _, w := range out.Windows["only"] {
		if w.SwitchesPerPlayhour != 0 {
			t.Error("RminAlways switched")
		}
	}
}

// The paper's headline relationships, at reduced scale: the buffer-based
// algorithms rebuffer less than Control at peak while Rmin Always bounds
// everyone from below, and the degenerate baseline delivers the lowest
// rate. Uses a moderate population so the comparison is stable.
func TestRunHeadlineOrderings(t *testing.T) {
	if testing.Short() {
		t.Skip("moderate-scale experiment")
	}
	out, err := Run(Config{Seed: 42, Days: 2, SessionsPerWindow: 90})
	if err != nil {
		t.Fatal(err)
	}
	peak := func(g string) (rb, rate, sw float64) {
		var ph float64
		for _, w := range out.Windows[g] {
			if !metrics.PeakWindows()[w.Index] {
				continue
			}
			rb += w.RebuffersPerPlayhour * w.PlayHours
			rate += w.AvgRateKbps * w.PlayHours
			sw += w.SwitchesPerPlayhour * w.PlayHours
			ph += w.PlayHours
		}
		return rb / ph, rate / ph, sw / ph
	}
	ctrlRb, _, ctrlSw := peak("Control")
	boundRb, boundRate, _ := peak("Rmin Always")
	for _, g := range []string{"BBA-0", "BBA-1", "BBA-2", "BBA-Others"} {
		rb, rate, _ := peak(g)
		if rb >= ctrlRb {
			t.Errorf("%s peak rebuffer rate %.3f not below Control %.3f", g, rb, ctrlRb)
		}
		if rb < boundRb*0.8 {
			t.Errorf("%s peak rebuffer rate %.3f implausibly below the lower bound %.3f", g, rb, boundRb)
		}
		if rate <= boundRate {
			t.Errorf("%s rate %.0f not above the Rmin Always floor %.0f", g, rate, boundRate)
		}
	}
	// Figure 9: BBA-0 switches far less than Control.
	_, _, bba0Sw := peak("BBA-0")
	if bba0Sw >= 0.7*ctrlSw {
		t.Errorf("BBA-0 switch rate %.1f not well below Control %.1f", bba0Sw, ctrlSw)
	}
	// Figure 20: the chunk map makes BBA-1 switch more than Control.
	_, _, bba1Sw := peak("BBA-1")
	if bba1Sw <= ctrlSw {
		t.Errorf("BBA-1 switch rate %.1f not above Control %.1f", bba1Sw, ctrlSw)
	}
}

func TestRunContextCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, smallConfig(1))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunContextCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	cfg := smallConfig(3)
	cfg.Parallelism = 2
	cfg.Groups = []Group{{Name: "cancel-probe", New: func(User) abr.Algorithm {
		if calls.Add(1) == 4 {
			cancel()
		}
		return abr.NewBBA0()
	}}}
	_, err := RunContext(ctx, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Cancellation must stop the run before all 48 jobs have started; the
	// bound only catches a harness that ran to completion anyway.
	if calls.Load() >= 48 {
		t.Errorf("run completed all %d jobs despite cancellation", calls.Load())
	}
}

// TestRunFailsFastOnWorkerError pins the fail-fast satellite: a session
// error must abort the run without executing the remaining jobs.
func TestRunFailsFastOnWorkerError(t *testing.T) {
	var calls atomic.Int64
	cfg := Config{Seed: 9, Days: 2, SessionsPerWindow: 20, CatalogSize: 4, Parallelism: 2}
	cfg.Groups = []Group{{Name: "boom", New: func(User) abr.Algorithm {
		calls.Add(1)
		// A nil algorithm makes player.Run return an error immediately.
		return nil
	}}}
	_, err := Run(cfg)
	if err == nil {
		t.Fatal("run succeeded with a nil-algorithm factory")
	}
	if !strings.Contains(err.Error(), "nil algorithm") {
		t.Errorf("err = %v, want the player's nil-algorithm error", err)
	}
	total := int64(2 * metrics.WindowsPerDay * 20)
	if got := calls.Load(); got >= total {
		t.Errorf("all %d jobs ran despite an immediate error (want fail fast)", got)
	}
}

func TestRunReportsStats(t *testing.T) {
	out, err := Run(smallConfig(13))
	if err != nil {
		t.Fatal(err)
	}
	wantSessions := metrics.WindowsPerDay * 4 * len(StandardGroups())
	if out.Stats.Sessions != wantSessions {
		t.Errorf("Stats.Sessions = %d, want %d", out.Stats.Sessions, wantSessions)
	}
	if out.Stats.Elapsed <= 0 {
		t.Errorf("Stats.Elapsed = %v, want > 0", out.Stats.Elapsed)
	}
	if out.Stats.Parallelism <= 0 {
		t.Errorf("Stats.Parallelism = %d, want > 0", out.Stats.Parallelism)
	}
	if out.Stats.SessionsPerSecond() <= 0 {
		t.Errorf("SessionsPerSecond = %v, want > 0", out.Stats.SessionsPerSecond())
	}
}

func TestSignificanceRebuffers(t *testing.T) {
	out, err := Run(smallConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	// A group against itself: identical samples, p = 1.
	res, err := out.SignificanceRebuffers("BBA-1", "BBA-1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 1 {
		t.Errorf("self-comparison p = %v, want 1", res.P)
	}
	// Restricting to a window set must not error with enough sessions.
	if _, err := out.SignificanceRebuffers("Control", "Rmin Always", metrics.OffPeakWindows()); err != nil {
		t.Errorf("off-peak comparison failed: %v", err)
	}
}

func TestOutcomeWriteCSV(t *testing.T) {
	out, err := Run(smallConfig(21))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := out.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// Header + 6 groups × 12 windows.
	if len(lines) != 1+6*12 {
		t.Fatalf("CSV has %d lines, want %d", len(lines), 1+6*12)
	}
	if !strings.HasPrefix(lines[0], "group,window,") {
		t.Errorf("header = %q", lines[0])
	}
	// Rows are grouped and sorted by group name.
	if !strings.HasPrefix(lines[1], "BBA-0,0,") {
		t.Errorf("first row = %q, want BBA-0 window 0", lines[1])
	}
	for _, line := range lines[1:] {
		if got := strings.Count(line, ","); got != 9 {
			t.Fatalf("row %q has %d commas, want 9", line, got)
		}
	}
}
