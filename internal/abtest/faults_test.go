package abtest

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"bba/internal/faults"
	"bba/internal/telemetry"
)

// stormConfig is a deliberately hostile fault load so even short test
// sessions see every kind: roughly one episode of each kind every five
// minutes of session time.
func stormConfig() *faults.ScheduleConfig {
	cfg := faults.ScheduleConfig{
		Blackouts:     faults.EpisodeConfig{PerHour: 12, MinDuration: 5 * time.Second, MaxDuration: 20 * time.Second},
		Collapses:     faults.EpisodeConfig{PerHour: 12, MinDuration: 10 * time.Second, MaxDuration: 30 * time.Second},
		LatencySpikes: faults.EpisodeConfig{PerHour: 12, MinDuration: 10 * time.Second, MaxDuration: 30 * time.Second},
		ServerErrors:  faults.EpisodeConfig{PerHour: 12, MinDuration: 10 * time.Second, MaxDuration: 30 * time.Second},
		StallBodies:   faults.EpisodeConfig{PerHour: 6, MinDuration: 5 * time.Second, MaxDuration: 15 * time.Second},
		ConnResets:    faults.EpisodeConfig{PerHour: 6, MinDuration: 5 * time.Second, MaxDuration: 15 * time.Second},
		Horizon:       4 * time.Hour,
	}
	return &cfg
}

// faultJournal runs a small experiment under fault weather at the given
// parallelism and returns the journal bytes plus the outcome.
func faultJournal(t *testing.T, parallelism int) ([]byte, *Outcome) {
	t.Helper()
	var buf bytes.Buffer
	j := telemetry.NewJournal(&buf)
	out, err := Run(Config{
		Seed:              11,
		Days:              1,
		SessionsPerWindow: 2,
		CatalogSize:       4,
		Parallelism:       parallelism,
		Faults:            stormConfig(),
		FaultSeed:         7,
		Observer:          j,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), out
}

// TestFaultJournalDeterministic extends the harness determinism guarantee
// to fault weather: the same experiment seed and fault seed produce a
// byte-identical merged journal at any parallelism, fault events included.
// Run under -race it also proves the fault path adds no data races.
func TestFaultJournalDeterministic(t *testing.T) {
	serial, serialOut := faultJournal(t, 1)
	if len(serial) == 0 {
		t.Fatal("journal is empty")
	}
	parallel, parallelOut := faultJournal(t, 8)
	if !bytes.Equal(serial, parallel) {
		t.Error("fault journal differs between Parallelism=1 and Parallelism=8")
	}
	again, _ := faultJournal(t, 8)
	if !bytes.Equal(parallel, again) {
		t.Error("fault journal differs between identical parallel runs")
	}

	// The storm must actually have injected something, and both runs must
	// have seen the identical totals.
	if serialOut.Stats.Faults == 0 || serialOut.Stats.Retries == 0 {
		t.Fatalf("storm produced no fault activity: %+v", serialOut.Stats)
	}
	if serialOut.Stats.Faults != parallelOut.Stats.Faults ||
		serialOut.Stats.Retries != parallelOut.Stats.Retries ||
		serialOut.Stats.Degradations != parallelOut.Stats.Degradations {
		t.Errorf("fault totals differ across parallelism: %+v vs %+v", serialOut.Stats, parallelOut.Stats)
	}

	// Fault telemetry reaches the journal.
	text := string(serial)
	for _, want := range []string{`"kind":"fault_inject"`, `"kind":"chunk_retry"`} {
		if !strings.Contains(text, want) {
			t.Errorf("journal missing %s events", want)
		}
	}
}

// TestFaultWeatherIsPaired pins the paired design under faults: every
// group of one session must face the identical schedule, so per-session
// fault counts can only differ through the groups' own download timing,
// and a clean config must leave the harness byte-identical to one with
// no fault fields at all.
func TestFaultWeatherIsPaired(t *testing.T) {
	_, out := faultJournal(t, 4)
	for g, ss := range out.Sessions {
		var total int
		for _, s := range ss {
			total += s.Faults + s.Retries
		}
		if total == 0 {
			t.Errorf("group %s saw no fault activity under the storm", g)
		}
	}

	clean, err := Run(Config{Seed: 11, Days: 1, SessionsPerWindow: 2, CatalogSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if s := clean.Stats; s.Faults != 0 || s.Retries != 0 || s.Degradations != 0 || s.Failovers != 0 {
		t.Errorf("clean run reports fault activity: %+v", s)
	}
}
