// Fluid-limit theorems (Section 3.1): numerically verify, under the
// paper's idealized assumptions, that any admissible rate map avoids
// unnecessary rebuffering and matches the average capacity — and that the
// R_min-pinning hypothesis is load-bearing.
//
//	go run ./examples/fluid
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"bba/internal/fluid"
	"bba/internal/trace"
	"bba/internal/units"
)

func main() {
	const (
		rmin = 235 * units.Kbps
		rmax = 5000 * units.Kbps
	)
	// The canonical BBA-0-shaped map: R_min through a 20 s reservoir,
	// linear to R_max at 216 s.
	f := fluid.Linear(rmin, rmax, 20, 216)
	if err := fluid.Validate(f, rmin, rmax, 240); err != nil {
		log.Fatal(err)
	}
	fmt.Println("map admissible: continuous, increasing, pinned at both ends")

	// Theorem 1: wild variation but C(t) ≥ R_min → no rebuffer, ever.
	harsh := trace.Markov(trace.MarkovConfig{
		Base:     1200 * units.Kbps,
		Sigma:    trace.SigmaForQuartileRatio(5.6),
		Duration: 2 * time.Hour,
		Floor:    rmin,
	}, rand.New(rand.NewSource(1)))
	res, err := fluid.Integrate(fluid.Config{Map: f, Rmin: rmin, Rmax: rmax, Trace: harsh})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("theorem 1 (no unnecessary rebuffering): rebuffered = %v over 2 h of Figure 1-grade variation\n", res.Rebuffered)

	// Theorem 2: R_min < C < R_max → average rate ≈ average capacity.
	mid := trace.Markov(trace.MarkovConfig{
		Base:      2 * units.Mbps,
		Sigma:     0.5,
		MeanDwell: 20 * time.Second,
		Duration:  6 * time.Hour,
		Floor:     300 * units.Kbps,
		Ceiling:   4500 * units.Kbps,
	}, rand.New(rand.NewSource(2)))
	res, err = fluid.Integrate(fluid.Config{Map: f, Rmin: rmin, Rmax: rmax, Trace: mid})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("theorem 2 (rate maximization): avg selected %.0f kb/s vs avg capacity %.0f kb/s (%.1f%% apart)\n",
		res.AvgSelectedKbps, res.AvgCapacityKbps,
		100*(res.AvgCapacityKbps-res.AvgSelectedKbps)/res.AvgCapacityKbps)

	// The hypothesis matters: a map floored at 1.5 Mb/s (not pinned at
	// R_min) rebuffers on a 500 kb/s link even though C > R_min.
	notPinned := func(b float64) units.BitRate {
		v := f(b)
		if v < 1500*units.Kbps {
			return 1500 * units.Kbps
		}
		return v
	}
	res, err = fluid.Integrate(fluid.Config{
		Map:           notPinned,
		Rmin:          rmin,
		Rmax:          rmax,
		Trace:         trace.Constant(500*units.Kbps, time.Hour),
		InitialBuffer: 60,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("counter-example (map not pinned at R_min): rebuffered = %v at t = %v\n",
		res.Rebuffered, res.RebufferAt.Round(time.Second))
}
