package collect

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func popString(t *testing.T, q *queue) string {
	t.Helper()
	b, ok := q.Pop()
	if !ok {
		t.Fatalf("queue closed early")
	}
	return string(b)
}

func TestQueueFIFOMemory(t *testing.T) {
	q := newQueue(QueueConfig{MemFrames: 8})
	for i := 0; i < 5; i++ {
		if ok, err := q.Push([]byte(fmt.Sprintf("f%d", i)), false); !ok || err != nil {
			t.Fatalf("push %d: %v %v", i, ok, err)
		}
	}
	for i := 0; i < 5; i++ {
		if got := popString(t, q); got != fmt.Sprintf("f%d", i) {
			t.Fatalf("pop %d: %q", i, got)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("depth %d after drain", q.Len())
	}
}

func TestQueueDropNewestDefault(t *testing.T) {
	q := newQueue(QueueConfig{MemFrames: 2})
	q.Push([]byte("a"), false)
	q.Push([]byte("b"), false)
	if ok, err := q.Push([]byte("c"), false); ok || err != nil {
		t.Fatalf("overflow push accepted: %v %v", ok, err)
	}
	if s := q.Stats(); s.Dropped != 1 || s.Pushed != 2 {
		t.Fatalf("stats %+v", s)
	}
	if a, b := popString(t, q), popString(t, q); a != "a" || b != "b" {
		t.Fatalf("kept %q %q, want oldest", a, b)
	}
}

func TestQueueDropOldest(t *testing.T) {
	q := newQueue(QueueConfig{MemFrames: 2, DropOldest: true})
	q.Push([]byte("a"), false)
	q.Push([]byte("b"), false)
	if ok, err := q.Push([]byte("c"), false); !ok || err != nil {
		t.Fatalf("drop-oldest push refused: %v %v", ok, err)
	}
	if s := q.Stats(); s.Dropped != 1 || s.Depth != 2 {
		t.Fatalf("stats %+v", s)
	}
	if a, b := popString(t, q), popString(t, q); a != "b" || b != "c" {
		t.Fatalf("kept %q %q, want newest", a, b)
	}
}

func TestQueueReliableFull(t *testing.T) {
	q := newQueue(QueueConfig{MemFrames: 1})
	q.Push([]byte("a"), false)
	if _, err := q.Push([]byte("b"), true); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("reliable overflow: %v", err)
	}
	// Reliable frames are never silently dropped: the failure is an error,
	// not a Dropped increment.
	if s := q.Stats(); s.Dropped != 0 {
		t.Fatalf("reliable overflow counted as drop: %+v", s)
	}
}

func TestQueueSpillFIFO(t *testing.T) {
	dir := t.TempDir()
	q := newQueue(QueueConfig{MemFrames: 2, SpillDir: dir})
	for i := 0; i < 6; i++ {
		if ok, err := q.Push([]byte(fmt.Sprintf("f%d", i)), false); !ok || err != nil {
			t.Fatalf("push %d: %v %v", i, ok, err)
		}
	}
	if s := q.Stats(); s.Spilled != 4 || s.Depth != 6 || s.SpillBytes == 0 {
		t.Fatalf("stats %+v", s)
	}
	// Drain two, then push two more: the new frames must still come out
	// after the spilled ones — FIFO holds across the spill boundary.
	if a, b := popString(t, q), popString(t, q); a != "f0" || b != "f1" {
		t.Fatalf("popped %q %q", a, b)
	}
	q.Push([]byte("f6"), false)
	q.Push([]byte("f7"), false)
	for i := 2; i < 8; i++ {
		if got := popString(t, q); got != fmt.Sprintf("f%d", i) {
			t.Fatalf("pop %d: %q", i, got)
		}
	}
	if s := q.Stats(); s.Depth != 0 || s.SpillBytes != 0 {
		t.Fatalf("stats after drain %+v", s)
	}
	// Drained segments are removed from disk.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("%d spill files left after drain", len(ents))
	}
}

func TestQueueSpillCap(t *testing.T) {
	dir := t.TempDir()
	frame := make([]byte, 1024)
	q := newQueue(QueueConfig{MemFrames: 1, SpillDir: dir, MaxSpillBytes: 4096})
	q.Push(frame, false) // memory
	accepted := 1
	for i := 0; i < 10; i++ {
		if ok, _ := q.Push(frame, false); ok {
			accepted++
		}
	}
	// 1 in memory + ⌊4096/1028⌋ = 3 on disk.
	if accepted != 4 {
		t.Fatalf("accepted %d frames, want 4", accepted)
	}
	if s := q.Stats(); s.Dropped != 7 {
		t.Fatalf("stats %+v", s)
	}
	if _, err := q.Push(frame, true); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("reliable push into full spill: %v", err)
	}
}

func TestQueuePopBlocksUntilPush(t *testing.T) {
	q := newQueue(QueueConfig{})
	got := make(chan string, 1)
	go func() {
		b, ok := q.Pop()
		if !ok {
			got <- ""
			return
		}
		got <- string(b)
	}()
	time.Sleep(10 * time.Millisecond)
	q.Push([]byte("late"), false)
	select {
	case s := <-got:
		if s != "late" {
			t.Fatalf("got %q", s)
		}
	case <-time.After(2 * time.Second):
		t.Fatalf("Pop never woke")
	}
}

func TestQueueCloseDrains(t *testing.T) {
	q := newQueue(QueueConfig{})
	q.Push([]byte("a"), false)
	q.Close()
	if got := popString(t, q); got != "a" {
		t.Fatalf("got %q", got)
	}
	if _, ok := q.Pop(); ok {
		t.Fatalf("Pop after drain on closed queue")
	}
	if _, err := q.Push([]byte("b"), false); !errors.Is(err, errQueueClosed) {
		t.Fatalf("push after close: %v", err)
	}
}

func TestQueueDamagedSegment(t *testing.T) {
	dir := t.TempDir()
	q := newQueue(QueueConfig{MemFrames: 1, SpillDir: dir})
	q.Push([]byte("mem"), false)
	q.Push([]byte("disk0"), false) // segment 0
	// A frame too big to share segment 0 forces a rotation, sealing the
	// first segment so it can be corrupted independently.
	big := make([]byte, segMaxBytes)
	copy(big, "big")
	if ok, err := q.Push(big, false); !ok || err != nil {
		t.Fatalf("big push: %v %v", ok, err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) != 2 {
		t.Fatalf("spill files: %v %d", err, len(ents))
	}
	// Corrupt the older segment; its frame must be counted lost — the
	// queue moves on to the next segment instead of wedging.
	name := ents[0].Name()
	if ents[1].Name() < name {
		name = ents[1].Name()
	}
	if err := os.WriteFile(filepath.Join(dir, name), []byte{0xFF, 0xFF}, 0o644); err != nil {
		t.Fatal(err)
	}
	if got := popString(t, q); got != "mem" {
		t.Fatalf("got %q", got)
	}
	got, ok := q.Pop()
	if !ok || len(got) != segMaxBytes || string(got[:3]) != "big" {
		t.Fatalf("pop after damaged segment: ok=%v len=%d", ok, len(got))
	}
	if s := q.Stats(); s.Dropped != 1 {
		t.Fatalf("stats %+v, want damaged frame counted dropped", s)
	}
}

func TestQueueConcurrent(t *testing.T) {
	q := newQueue(QueueConfig{MemFrames: 64, SpillDir: t.TempDir()})
	const n = 2000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			for {
				if ok, err := q.Push([]byte{byte(i), byte(i >> 8)}, false); ok {
					break
				} else if err != nil {
					t.Errorf("push: %v", err)
					return
				}
				time.Sleep(time.Microsecond)
			}
		}
	}()
	seen := 0
	for seen < n {
		b, ok := q.Pop()
		if !ok {
			t.Fatalf("queue closed at %d", seen)
		}
		if got := int(b[0]) | int(b[1])<<8; got != seen {
			t.Fatalf("frame %d out of order: %d", seen, got)
		}
		seen++
	}
	wg.Wait()
	q.Close()
}

// TestQueueCloseRemovesSpill is the regression test for the leaked-spill
// bug: Close documented "spill segments left on disk are removed" but
// never removed them, leaking .q files on every shutdown with a disk
// backlog. Close must discard the disk backlog with honest accounting —
// frames counted Dropped, Depth and SpillBytes rewound — while in-memory
// frames stay poppable.
func TestQueueCloseRemovesSpill(t *testing.T) {
	dir := t.TempDir()
	q := newQueue(QueueConfig{MemFrames: 2, SpillDir: dir})
	for i := 0; i < 8; i++ {
		if ok, err := q.Push([]byte(fmt.Sprintf("f%d", i)), false); !ok || err != nil {
			t.Fatalf("push %d: %v %v", i, ok, err)
		}
	}
	if ents, _ := os.ReadDir(dir); len(ents) == 0 {
		t.Fatal("test setup: nothing spilled")
	}
	q.Close()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("%d spill files left after Close, want 0", len(ents))
	}
	s := q.Stats()
	if s.Dropped != 6 || s.Depth != 2 || s.SpillBytes != 0 {
		t.Fatalf("stats after Close %+v, want 6 dropped, depth 2, 0 spill bytes", s)
	}
	// The in-memory prefix still drains.
	if a, b := popString(t, q), popString(t, q); a != "f0" || b != "f1" {
		t.Fatalf("drained %q %q after Close", a, b)
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop returned a frame from the discarded disk backlog")
	}
	q.Close() // idempotent
}

// TestQueueDamagedSegmentAccounting extends the damaged-segment recovery
// test to the full ledger: the lost frames leave Depth and SpillBytes as
// well as entering Dropped, and the damaged file is removed from disk.
func TestQueueDamagedSegmentAccounting(t *testing.T) {
	dir := t.TempDir()
	q := newQueue(QueueConfig{MemFrames: 1, SpillDir: dir})
	q.Push([]byte("mem"), false)
	q.Push([]byte("d0"), false)
	q.Push([]byte("d1"), false) // same segment as d0
	big := make([]byte, segMaxBytes)
	copy(big, "big")
	if ok, err := q.Push(big, false); !ok || err != nil {
		t.Fatalf("big push: %v %v", ok, err)
	}
	before := q.Stats()
	if before.Depth != 4 {
		t.Fatalf("setup depth %d, want 4", before.Depth)
	}
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) != 2 {
		t.Fatalf("spill files: %v %d", err, len(ents))
	}
	oldest := ents[0].Name()
	if ents[1].Name() < oldest {
		oldest = ents[1].Name()
	}
	if err := os.Truncate(filepath.Join(dir, oldest), 3); err != nil {
		t.Fatal(err)
	}
	if got := popString(t, q); got != "mem" {
		t.Fatalf("got %q", got)
	}
	// Popping past the damaged segment recovers into the intact one.
	if got, ok := q.Pop(); !ok || string(got[:3]) != "big" {
		t.Fatalf("recovery pop: ok=%v", ok)
	}
	s := q.Stats()
	if s.Dropped != 2 {
		t.Fatalf("Dropped = %d, want 2 (both frames of the damaged segment)", s.Dropped)
	}
	if s.Depth != 0 || s.SpillBytes != 0 {
		t.Fatalf("Depth = %d SpillBytes = %d after drain, want 0/0", s.Depth, s.SpillBytes)
	}
	if ents, _ := os.ReadDir(dir); len(ents) != 0 {
		t.Fatalf("%d spill files left, want 0", len(ents))
	}
}

// TestQueueEvictOldestSegment pins whole-segment eviction accounting under
// DropOldest with a full spill: the evicted segment's frames all count as
// Dropped, Depth and SpillBytes rewind, and the file is gone.
func TestQueueEvictOldestSegment(t *testing.T) {
	dir := t.TempDir()
	frame := make([]byte, 1024)
	// Force a segment-level eviction: drain memory empty first so
	// evictOldest reaches for a segment.
	q2 := newQueue(QueueConfig{MemFrames: 1, SpillDir: dir, MaxSpillBytes: 2 * 1028, DropOldest: true})
	copy(frame, "g0")
	q2.Push(frame, false) // memory
	copy(frame, "g1")
	q2.Push(frame, false) // segment A
	copy(frame, "g2")
	q2.Push(frame, false) // segment A (full now)
	if got := popString(t, q2); string(got[:2]) != "g0" {
		t.Fatalf("popped %q", got[:2])
	}
	// Memory now empty, spill full. The next push must evict segment A
	// wholesale: both g1 and g2 dropped.
	copy(frame, "g3")
	if ok, err := q2.Push(frame, false); !ok || err != nil {
		t.Fatalf("segment-evicting push: %v %v", ok, err)
	}
	s2 := q2.Stats()
	if s2.Dropped != 2 {
		t.Fatalf("Dropped = %d, want 2 (whole evicted segment)", s2.Dropped)
	}
	if got := popString(t, q2); string(got[:2]) != "g3" {
		t.Fatalf("survivor %q, want g3", got[:2])
	}
	if s := q2.Stats(); s.Depth != 0 || s.SpillBytes != 0 {
		t.Fatalf("final stats %+v", s)
	}
}
