package soak

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bba/internal/telemetry"
)

// TestRunCycleClean drives one full cycle — real origin, real sockets,
// netem-shaped transports, real collector pipeline — with fault
// injection off, and demands a clean bill: every invariant that applies
// evaluated, zero violations, collector archive byte-identical.
func TestRunCycleClean(t *testing.T) {
	r := NewRunner(Config{
		Sessions:       4,
		Seed:           11,
		Watch:          2 * time.Second,
		ChunkMS:        250,
		ShapeKbps:      20000,
		Algorithms:     []string{"BBA-0", "Control", "BBA-2", "SmoothThroughput"},
		DisableFaults:  true,
		CollectorCheck: true,
		Logf:           t.Logf,
	})
	r.Metrics = NewMetrics()
	capture := &telemetry.Capture{}
	r.Observer = capture

	c, err := r.RunCycle(context.Background(), 0)
	if err != nil {
		t.Fatalf("RunCycle: %v", err)
	}
	if !c.Pass() {
		for _, v := range c.Violations {
			t.Errorf("violation: %s", v)
		}
		t.Fatal("cycle failed")
	}
	if got := c.Checks[InvTerminates]; got != 4 {
		t.Errorf("terminates checked %d times, want 4", got)
	}
	if got := c.Checks[InvCollectorAgreement]; got != 4 {
		t.Errorf("collector agreement checked %d times, want 4", got)
	}
	if got := c.Checks[InvFailoverConverges]; got != 0 {
		t.Errorf("failover checked %d times on a single-endpoint cycle, want 0", got)
	}
	for i := range c.Sessions {
		s := &c.Sessions[i]
		if s.Err != nil {
			t.Errorf("%s: session error %v", s.Session, s.Err)
		}
		if len(s.Events) == 0 {
			t.Errorf("%s: empty journal", s.Session)
		}
		if len(s.Archive) == 0 {
			t.Errorf("%s: empty collector archive", s.Session)
		}
		if s.Result == nil || s.Result.Played <= 0 {
			t.Errorf("%s: no video delivered", s.Session)
		}
	}

	// The runner journals its own verdicts in the session vocabulary.
	var last telemetry.Event
	for _, e := range capture.Events {
		last = e
	}
	if last.Kind != telemetry.SoakCycle || last.Label != "pass" {
		t.Errorf("expected a trailing pass soak_cycle event, got %+v", last)
	}

	// And the metrics endpoint reflects the cycle.
	rec := httptest.NewRecorder()
	r.Metrics.ServeHTTP(rec, nil)
	body := rec.Body.String()
	for _, want := range []string{
		"soak_cycles_total 1",
		"soak_cycle_failures_total 0",
		"soak_sessions_total 4",
		`soak_invariant_checks_total{invariant="terminates"} 4`,
		"soak_consecutive_cycle_failures 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	hrec := httptest.NewRecorder()
	r.Metrics.Healthz().ServeHTTP(hrec, nil)
	if hrec.Code != 200 || !strings.Contains(hrec.Body.String(), `"status":"ok"`) {
		t.Errorf("healthz = %d %q, want 200 ok", hrec.Code, hrec.Body.String())
	}
}

// TestRunCycleFaulted runs the full weather: primary origin with seeded
// HTTP faults, clean secondary for failover, client-side blackouts. The
// invariants must hold — retries bounded, failover converging back to
// the primary, no rebuffer above reservoir+slack.
func TestRunCycleFaulted(t *testing.T) {
	r := NewRunner(Config{
		Sessions:  3,
		Seed:      5,
		Watch:     5 * time.Second,
		ChunkMS:   250,
		ShapeKbps: 20000,
		Logf:      t.Logf,
	})
	c, err := r.RunCycle(context.Background(), 1)
	if err != nil {
		t.Fatalf("RunCycle: %v", err)
	}
	if !c.Pass() {
		for _, v := range c.Violations {
			t.Errorf("violation: %s", v)
		}
		t.Fatal("faulted cycle failed")
	}
	if got := c.Checks[InvFailoverConverges]; got != 3 {
		t.Errorf("failover checked %d times, want 3 (two endpoints per session)", got)
	}
	if got := c.Checks[InvTerminates]; got != 3 {
		t.Errorf("terminates checked %d times, want 3", got)
	}
}

// TestRunCountsFailures exercises the driver loop's verdict counting
// with a runner whose sessions cannot reach their origin.
func TestRunCountsFailures(t *testing.T) {
	// A base URL nothing listens on: every session errs, every cycle
	// fails, but the infrastructure is fine — Run reports counts.
	r := NewRunner(Config{
		Sessions:   2,
		Seed:       3,
		Watch:      time.Second,
		BaseURL:    "http://127.0.0.1:1",
		Algorithms: []string{"Control"},
	})
	r.Metrics = NewMetrics()
	failed, err := r.Run(context.Background(), 2, 0)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if failed != 2 {
		t.Fatalf("failed = %d, want 2", failed)
	}
	if r.Metrics.Healthy() {
		t.Error("metrics report healthy after consecutive failing cycles")
	}
	rec := httptest.NewRecorder()
	r.Metrics.Healthz().ServeHTTP(rec, nil)
	if rec.Code != 503 {
		t.Errorf("healthz = %d after failures, want 503", rec.Code)
	}
}

func TestRunUnboundedStopsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := NewRunner(Config{Sessions: 1, Watch: time.Second, BaseURL: "http://127.0.0.1:1"})
	failed, err := r.Run(ctx, 0, time.Hour)
	if err != nil {
		t.Fatalf("cancelled unbounded run must exit clean, got %v", err)
	}
	_ = failed
}

func TestMixDeterminism(t *testing.T) {
	if mix(1, 2) != mix(1, 2) {
		t.Fatal("mix is not deterministic")
	}
	if mix(1, 2) == mix(1, 3) || mix(1, 2) == mix(2, 2) {
		t.Fatal("mix collides on adjacent inputs")
	}
	if mix(7, 9) < 0 {
		t.Fatal("mix produced a negative seed")
	}
}

func TestProjectAndRender(t *testing.T) {
	events := []telemetry.Event{
		{Kind: telemetry.SessionStart, Session: "s"},
		{Kind: telemetry.BufferSample, Session: "s", Buffer: time.Second}, // timing: dropped
		{Kind: telemetry.ChunkRequest, Session: "s", Chunk: 0, RateIndex: 2, Rate: 1000, Bytes: 125},
		{Kind: telemetry.RateSwitch, Session: "s", Chunk: 1, RateIndex: 3, PrevRateIndex: 2},
		{Kind: telemetry.RebufferStart, Session: "s"}, // timing: dropped
		{Kind: telemetry.SessionEnd, Session: "s", Label: "done"},
	}
	p := Project(events)
	if len(p) != 4 {
		t.Fatalf("projected %d events, want 4: %v", len(p), p)
	}
	out := Render(p)
	if strings.Contains(out, "buffer_sample") || strings.Contains(out, "rebuffer") {
		t.Fatalf("projection kept a timing event:\n%s", out)
	}
	for _, want := range []string{
		"session_start s",
		"chunk_request s chunk=0 rate_index=2 prev=0 rate=1000 bytes=125",
		"rate_switch s chunk=1 rate_index=3 prev=2",
		`label="done"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered projection missing %q:\n%s", want, out)
		}
	}
	if Render(Project(events)) != out {
		t.Fatal("Render is not deterministic")
	}
}

func TestFilterSession(t *testing.T) {
	var archive []byte
	a := telemetry.Event{Kind: telemetry.SessionStart, Session: "c0.s1.A"}
	b := telemetry.Event{Kind: telemetry.SessionStart, Session: "c0.s11.A"} // superstring name
	archive = telemetry.AppendJSONL(archive, a)
	archive = telemetry.AppendJSONL(archive, b)
	archive = telemetry.AppendJSONL(archive, a)

	var want []byte
	want = telemetry.AppendJSONL(want, a)
	want = telemetry.AppendJSONL(want, a)
	if got := filterSession(archive, "c0.s1.A"); string(got) != string(want) {
		t.Fatalf("filterSession mixed sessions:\n got %q\nwant %q", got, want)
	}
}
