package abr

import (
	"time"

	"bba/internal/units"
)

// BufferTarget is a buffer-aware estimator algorithm in the style the
// paper's related work attributes to Tian and Liu [20]: "uses a buffer and
// a PID controller to compute the adjustment function applied to capacity
// estimates, balancing responsiveness and smoothness". The selected rate is
//
//	R = Ĉ · (1 + Kp·(B − B*)/B*)
//
// — proportional control that drives the buffer toward the set-point B*:
// above target it requests above the estimate (draining back), below
// target it under-requests (refilling). This is the "adjustment function"
// family of Figure 3 with F derived from a control law rather than a fixed
// curve.
type BufferTarget struct {
	// Alpha is the EWMA weight of the throughput estimator.
	Alpha float64
	// Target is the buffer set-point B*.
	Target time.Duration
	// Kp is the proportional gain.
	Kp float64
	// PanicBuffer floors the selection at R_min when nearly dry.
	PanicBuffer time.Duration
	// InitialEstimate seeds the estimator (stored history).
	InitialEstimate units.BitRate

	est  units.BitRate
	prev int
}

// NewBufferTarget returns the controller with set-point and gains typical
// of the published design (target 120 s, moderate gain).
func NewBufferTarget() *BufferTarget {
	return &BufferTarget{
		Alpha:       0.25,
		Target:      120 * time.Second,
		Kp:          0.6,
		PanicBuffer: 15 * time.Second,
		prev:        -1,
	}
}

// Name implements Algorithm.
func (c *BufferTarget) Name() string { return "PID" }

// SeedCapacity implements CapacitySeeded.
func (c *BufferTarget) SeedCapacity(r units.BitRate) { c.InitialEstimate = r }

// Next implements Algorithm.
func (c *BufferTarget) Next(st State, s Stream) int {
	l := s.Ladder()
	if st.LastThroughput > 0 {
		if c.est == 0 {
			c.est = st.LastThroughput
		} else {
			c.est = units.BitRate(float64(c.est)*(1-c.Alpha) + float64(st.LastThroughput)*c.Alpha)
		}
	} else if c.est == 0 {
		c.est = c.InitialEstimate
	}
	if c.est == 0 || (st.PrevIndex >= 0 && st.Buffer < c.PanicBuffer) {
		c.prev = 0
		return 0
	}
	err := (st.Buffer - c.Target).Seconds() / c.Target.Seconds()
	adj := 1 + c.Kp*err
	if adj < 0.1 {
		adj = 0.1
	}
	target := l.HighestAtMost(c.est.Scale(adj))
	c.prev = target
	return target
}

// Elastic is a harmonic-filter controller in the style the paper's related
// work attributes to ELASTIC [5]: "first measures the network capacity
// through a harmonic filter, then drives the buffer to a set-point through
// a controller". The harmonic mean of the last N per-chunk throughputs is
// deliberately pessimistic under variability (slow samples dominate), and
// an integral term trims the selection to hold the buffer at the
// set-point.
type Elastic struct {
	// Window is the harmonic-filter depth in samples.
	Window int
	// Target is the buffer set-point.
	Target time.Duration
	// Kp and Ki are the controller gains.
	Kp, Ki float64
	// PanicBuffer floors the selection at R_min when nearly dry.
	PanicBuffer time.Duration
	// InitialEstimate seeds the filter (stored history).
	InitialEstimate units.BitRate

	samples  []units.BitRate
	integral float64
	prev     int
}

// NewElastic returns the controller with the published shape: a 5-sample
// harmonic filter and a 120 s set-point.
func NewElastic() *Elastic {
	return &Elastic{
		Window:      5,
		Target:      120 * time.Second,
		Kp:          0.4,
		Ki:          0.01,
		PanicBuffer: 15 * time.Second,
		prev:        -1,
	}
}

// Name implements Algorithm.
func (c *Elastic) Name() string { return "ELASTIC" }

// SeedCapacity implements CapacitySeeded.
func (c *Elastic) SeedCapacity(r units.BitRate) { c.InitialEstimate = r }

// Next implements Algorithm.
func (c *Elastic) Next(st State, s Stream) int {
	l := s.Ladder()
	if st.LastThroughput > 0 {
		c.samples = append(c.samples, st.LastThroughput)
		if len(c.samples) > c.Window {
			c.samples = c.samples[1:]
		}
	}
	est := c.harmonic()
	if est == 0 {
		est = c.InitialEstimate
	}
	if est == 0 || (st.PrevIndex >= 0 && st.Buffer < c.PanicBuffer) {
		c.prev = 0
		return 0
	}
	err := (st.Buffer - c.Target).Seconds() / c.Target.Seconds()
	c.integral += err * s.ChunkDuration().Seconds()
	// Anti-windup: the integral term is bounded to one rung's worth of
	// adjustment.
	if c.integral > 30 {
		c.integral = 30
	}
	if c.integral < -30 {
		c.integral = -30
	}
	adj := 1 + c.Kp*err + c.Ki*c.integral
	if adj < 0.1 {
		adj = 0.1
	}
	target := l.HighestAtMost(est.Scale(adj))
	c.prev = target
	return target
}

// harmonic returns the harmonic mean of the sample window, 0 when empty.
func (c *Elastic) harmonic() units.BitRate {
	if len(c.samples) == 0 {
		return 0
	}
	var invSum float64
	for _, s := range c.samples {
		if s <= 0 {
			continue
		}
		invSum += 1 / float64(s)
	}
	if invSum == 0 {
		return 0
	}
	return units.BitRate(float64(len(c.samples)) / invSum)
}
