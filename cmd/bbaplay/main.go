// Command bbaplay streams a title from a dashserver over real HTTP,
// optionally through an emulated bandwidth-limited link, and reports the
// session's quality metrics.
//
// Example (with dashserver running):
//
//	bbaplay -url http://127.0.0.1:8404 -alg BBA-2 -watch 30s -shape 3000
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"bba/internal/abr"
	"bba/internal/dash"
	"bba/internal/media"
	"bba/internal/netem"
	"bba/internal/player"
	"bba/internal/replay"
	"bba/internal/telemetry"
	"bba/internal/trace"
	"bba/internal/units"
)

func main() {
	var (
		url     = flag.String("url", "http://127.0.0.1:8404", "dashserver base URL")
		algName = flag.String("alg", "BBA-2", "algorithm: "+strings.Join(abr.Names(), ", "))
		watch   = flag.Duration("watch", 30*time.Second, "how much video to watch (real time!)")
		shape   = flag.Int("shape", 0, "emulated downstream capacity in kb/s (0 = unshaped)")
		rmin    = flag.Int("rmin", 0, "promoted minimum rate in kb/s")
		useMPD  = flag.Bool("mpd", false, "drive the session from the standards /manifest.mpd (nominal chunk sizes) instead of the JSON manifest")
		whatIf  = flag.Bool("whatif", false, "after the session, replay every algorithm against the observed network and print the counterfactual comparison")
		journal = flag.String("journal", "", "write the session's telemetry events as JSONL to this file")
		quiet   = flag.Bool("q", false, "suppress per-chunk progress")
	)
	flag.Parse()

	if err := run(os.Stdout, *url, *algName, *watch, *shape, *rmin, *useMPD, *whatIf, *quiet, *journal); err != nil {
		fmt.Fprintln(os.Stderr, "bbaplay:", err)
		os.Exit(1)
	}
}

func run(out io.Writer, url, algName string, watch time.Duration, shapeKbps, rminKbps int, useMPD, whatIf, quiet bool, journalPath string) error {
	alg, err := abr.New(algName)
	if err != nil {
		return err
	}
	httpc := http.DefaultClient
	if shapeKbps > 0 {
		linkTrace := trace.Constant(units.BitRate(shapeKbps)*units.Kbps, 24*time.Hour)
		httpc = &http.Client{Transport: &http.Transport{
			DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
				c, err := (&net.Dialer{}).DialContext(ctx, network, addr)
				if err != nil {
					return nil, err
				}
				return netem.NewConn(c, netem.NewShaper(linkTrace)), nil
			},
		}}
	}

	cfg := dash.ClientConfig{
		BaseURL:    url,
		HTTPClient: httpc,
		Algorithm:  alg,
		Rmin:       units.BitRate(rminKbps) * units.Kbps,
		WatchLimit: watch,
		UseMPD:     useMPD,
	}
	if !quiet {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(out, format+"\n", args...)
		}
	}
	if journalPath != "" {
		f, err := os.Create(journalPath)
		if err != nil {
			return err
		}
		defer f.Close()
		j := telemetry.NewJournal(f)
		defer j.Flush()
		cfg.Observer = j
	}
	res, err := dash.Stream(context.Background(), cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "\nsession summary (%s over HTTP)\n", alg.Name())
	fmt.Fprintf(out, "  chunks            %d\n", len(res.Chunks))
	fmt.Fprintf(out, "  played            %v\n", res.Played.Round(time.Second))
	fmt.Fprintf(out, "  join delay        %v\n", res.JoinDelay.Round(time.Millisecond))
	fmt.Fprintf(out, "  rebuffers         %d (%.1fs frozen)\n", res.Rebuffers, res.StallTime.Seconds())
	fmt.Fprintf(out, "  average rate      %.0f kb/s\n", res.AvgRateKbps())
	fmt.Fprintf(out, "  switches          %d\n", res.Switches)

	if whatIf {
		if err := printWhatIf(out, res, watch, rminKbps); err != nil {
			return fmt.Errorf("what-if replay: %w", err)
		}
	}
	return nil
}

// printWhatIf replays the observed network against every algorithm in
// virtual time — the counterfactual comparison the paper's Figure 4 makes.
func printWhatIf(out io.Writer, original *player.Result, watch time.Duration, rminKbps int) error {
	tr, err := replay.TraceFromResult(original)
	if err != nil {
		return err
	}
	// Rebuild a stream shaped like the observed session: the recorded
	// chunks carry the actual sizes, so a nominal title of the observed
	// chunk count suffices for the counterfactual.
	video, err := media.NewVBR(media.VBRConfig{
		Title:         "whatif",
		Ladder:        media.DefaultLadder(),
		ChunkDuration: media.DefaultChunkDuration,
		NumChunks:     maxInt(len(original.Chunks), 2),
	}, rand.New(rand.NewSource(1)))
	if err != nil {
		return err
	}
	stream := abr.NewStream(video, units.BitRate(rminKbps)*units.Kbps)

	fmt.Fprintf(out, "\nwhat-if on the observed network (virtual-time replay)\n")
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "algorithm\tavg rate\trebuffers\tfrozen\tswitches")
	for _, name := range abr.Names() {
		alg, err := abr.New(name)
		if err != nil {
			return err
		}
		res, err := player.Run(player.Config{
			Algorithm:  alg,
			Stream:     stream,
			Trace:      tr,
			WatchLimit: watch,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s\t%.0f kb/s\t%d\t%.1fs\t%d\n",
			name, res.AvgRateKbps(), res.Rebuffers, res.StallTime.Seconds(), res.Switches)
	}
	return w.Flush()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
