// Package buffer implements playback-buffer accounting for a streaming
// video client.
//
// The buffer is the paper's central state variable. It is tracked in
// *seconds of video* (Section 2.1): every second of real time during
// playback removes one second of video, and each downloaded chunk adds V
// seconds. When the buffer runs dry mid-download, playback freezes — a
// rebuffer event — and resumes when the in-flight chunk lands. The paper's
// Figure 4 notes that "the buffer occupancy was not updated during
// rebuffering": draining is suspended while stalled, which is exactly how
// Advance accounts time here.
package buffer

import (
	"fmt"
	"time"
)

// Buffer tracks playback-buffer occupancy and the quality metrics derived
// from it. The zero value is not usable; construct with New. Buffer is not
// safe for concurrent use; a player owns one buffer.
type Buffer struct {
	level  time.Duration
	max    time.Duration
	resume time.Duration

	started   bool // first chunk has arrived; playback has begun
	stalled   bool // playback frozen waiting for enough buffered video
	played    time.Duration
	stallTime time.Duration
	rebuffers int
}

// DefaultMax is the playback-buffer capacity of the paper's test vehicle:
// "Netflix's browser-based player ... happens to have a 240 second playback
// buffer".
const DefaultMax = 240 * time.Second

// DefaultResume is the occupancy a stalled player waits for before
// restarting playback. Without it, capacity below the lowest video rate
// would produce one rebuffer event per chunk (play four seconds, starve,
// repeat); real players coalesce that into a single longer rebuffer.
const DefaultResume = 8 * time.Second

// New returns an empty buffer with capacity max and the default resume
// threshold. It panics if max is not positive: the capacity is a
// configuration constant, not runtime input.
func New(max time.Duration) *Buffer {
	if max <= 0 {
		panic(fmt.Sprintf("buffer: non-positive capacity %v", max))
	}
	return &Buffer{max: max, resume: DefaultResume}
}

// Reset returns the buffer to the empty just-constructed state with
// capacity max and the default resume threshold — New(max) semantics
// without the allocation. It lets a batch kernel keep buffers in flat
// per-lane storage and reuse them across sessions. Like New, it panics on
// a non-positive capacity.
func (b *Buffer) Reset(max time.Duration) {
	if max <= 0 {
		panic(fmt.Sprintf("buffer: non-positive capacity %v", max))
	}
	*b = Buffer{max: max, resume: DefaultResume}
}

// SetResume overrides the resume threshold; zero restarts playback on the
// first chunk after a stall.
func (b *Buffer) SetResume(d time.Duration) {
	if d < 0 {
		d = 0
	}
	b.resume = d
}

// Level returns the current occupancy in seconds of video.
func (b *Buffer) Level() time.Duration { return b.level }

// Max returns the buffer capacity B_max.
func (b *Buffer) Max() time.Duration { return b.max }

// Playing reports whether video is currently being rendered (playback has
// started and is not stalled).
func (b *Buffer) Playing() bool { return b.started && !b.stalled }

// Started reports whether the first chunk has arrived and playback begun.
func (b *Buffer) Started() bool { return b.started }

// Rebuffers returns the number of rebuffer events so far.
func (b *Buffer) Rebuffers() int { return b.rebuffers }

// StallTime returns total time spent frozen in rebuffer events.
func (b *Buffer) StallTime() time.Duration { return b.stallTime }

// Played returns total video time rendered to the viewer.
func (b *Buffer) Played() time.Duration { return b.played }

// Advance accounts for d of real time passing while the client waits (for a
// download or idling). If playback is active the buffer drains at unit rate;
// if it empties before d elapses, the remainder is a stall and a rebuffer
// event is recorded. Advance with non-positive d is a no-op.
func (b *Buffer) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	if !b.started {
		// Pre-playback (join) time is excluded from playback metrics,
		// matching the paper ("the startup phase does not refer to the
		// join delay").
		return
	}
	if b.stalled {
		b.stallTime += d
		return
	}
	if b.level >= d {
		b.level -= d
		b.played += d
		return
	}
	// Drained dry mid-interval: play what we had, stall for the rest.
	remaining := d - b.level
	b.played += b.level
	b.level = 0
	b.stalled = true
	b.rebuffers++
	b.stallTime += remaining
}

// AddChunk adds v seconds of video (one downloaded chunk). It starts
// playback on the first chunk; a stall in progress ends only once the
// occupancy reaches the resume threshold. Occupancy is clamped at capacity;
// the player is responsible for pausing requests when the buffer is full
// (the ON-OFF pattern of Section 8), so hitting the clamp indicates a
// scheduling bug upstream and is reported.
func (b *Buffer) AddChunk(v time.Duration) error {
	if v <= 0 {
		return fmt.Errorf("buffer: non-positive chunk duration %v", v)
	}
	prev := b.level
	b.level += v
	if b.level > b.max {
		b.level = b.max
	}
	b.started = true
	if b.stalled && b.level >= b.resume {
		b.stalled = false
	}
	if prev+v > b.max {
		return fmt.Errorf("buffer: overflow adding %v to %v/%v", v, prev, b.max)
	}
	return nil
}

// HasSpaceFor reports whether a chunk of duration v fits without clamping.
func (b *Buffer) HasSpaceFor(v time.Duration) bool { return b.level+v <= b.max }

// TimeUntilSpaceFor returns how long playback must drain before a chunk of
// duration v fits. It returns 0 when the chunk already fits and is only
// meaningful while playback is active.
func (b *Buffer) TimeUntilSpaceFor(v time.Duration) time.Duration {
	need := b.level + v - b.max
	if need < 0 {
		return 0
	}
	return need
}

// Resume force-ends a stall regardless of the resume threshold. The player
// uses it when no further downloads are coming (end of title), where
// holding out for the threshold would freeze forever.
func (b *Buffer) Resume() {
	if b.started {
		b.stalled = false
	}
}

// Flush discards all buffered video — a viewer seek. The wait for the
// first post-seek chunk is join delay, not a rebuffer, so playback state
// returns to not-started while the play/stall accounting persists.
func (b *Buffer) Flush() {
	b.level = 0
	b.started = false
	b.stalled = false
}

// DrainRemaining plays out whatever is left in the buffer (used at end of a
// session after the final chunk) and returns the time that took.
func (b *Buffer) DrainRemaining() time.Duration {
	if !b.started {
		return 0
	}
	d := b.level
	b.played += d
	b.level = 0
	return d
}
