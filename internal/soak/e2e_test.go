package soak

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"bba/internal/abr"
	"bba/internal/dash"
	"bba/internal/media"
	"bba/internal/netem"
	"bba/internal/telemetry"
	"bba/internal/trace"
	"bba/internal/units"
)

// e2eSessions is the concurrency the determinism test pins: at least
// eight simultaneous real-socket sessions against one origin.
const e2eSessions = 8

// e2eAlgorithms are the buffer-based and constant policies whose
// decisions are a pure function of the seeds — no throughput estimator
// whose input is the wall clock. BBA-0's reservoir (90s) dwarfs any
// buffer this short a session can build, so its rate choice is
// timing-independent too.
var e2eAlgorithms = []string{"Rmax Always", "BBA-0", "Rmin Always"}

// TestE2EConcurrentSessionDeterminism boots one dashserver origin and
// runs two identical waves of e2eSessions concurrent dash clients
// through netem-shaped connections, each session with its own derived
// seed and shaping rate. The timing-stripped decision projection of
// every session's journal must be byte-identical across waves: same
// seeds, same decisions, regardless of goroutine interleaving (the
// test's whole point under -race).
func TestE2EConcurrentSessionDeterminism(t *testing.T) {
	video, err := media.NewVBR(media.VBRConfig{
		Title:         "e2e",
		Ladder:        media.DefaultLadder(),
		ChunkDuration: 500 * time.Millisecond,
		NumChunks:     8,
	}, newRand(42))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := dash.NewServer(video)
	if err != nil {
		t.Fatal(err)
	}
	origin, err := dash.StartOrigin("127.0.0.1:0", srv, dash.OriginConfig{ShutdownGrace: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer origin.Close(context.Background())

	first := e2eWave(t, origin.URL())
	second := e2eWave(t, origin.URL())

	for i := range first {
		if first[i] != second[i] {
			t.Errorf("session %d projection diverged between waves:\n--- wave 1 ---\n%s--- wave 2 ---\n%s",
				i, first[i], second[i])
		}
		if n := strings.Count(first[i], "chunk_request"); n != 8 {
			t.Errorf("session %d requested %d chunks, want 8", i, n)
		}
		if !strings.Contains(first[i], "session_end") {
			t.Errorf("session %d projection has no session_end", i)
		}
	}
}

// e2eWave runs e2eSessions concurrent sessions and returns each one's
// rendered decision projection, indexed by session number.
func e2eWave(t *testing.T, url string) []string {
	t.Helper()
	renders := make([]string, e2eSessions)
	errs := make([]error, e2eSessions)
	var wg sync.WaitGroup
	for i := 0; i < e2eSessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			renders[i], errs[i] = e2eSession(url, i)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}
	return renders
}

// e2eSession drives one shaped real-HTTP session and returns its
// rendered projection. Everything that could vary — algorithm, seed,
// shaping rate, session label — derives from the session index alone.
func e2eSession(url string, i int) (string, error) {
	alg := e2eAlgorithms[i%len(e2eAlgorithms)]
	seed := mix(99, int64(i)+1)
	// Shape each session differently (20–32 Mb/s), all comfortably above
	// the top rung so pacing never starves a decision.
	shaped := trace.Constant(units.BitRate(20000+4000*(i%4))*units.Kbps, time.Minute)
	shaper := netem.NewShaper(shaped)
	transport := &http.Transport{
		DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
			c, err := (&net.Dialer{}).DialContext(ctx, network, addr)
			if err != nil {
				return nil, err
			}
			return netem.NewConn(c, shaper), nil
		},
		MaxIdleConnsPerHost: 2,
	}
	defer transport.CloseIdleConnections()
	algorithm, err := abr.New(alg)
	if err != nil {
		return "", err
	}
	capture := &telemetry.Capture{}
	_, err = dash.Stream(context.Background(), dash.ClientConfig{
		Endpoints:  []string{url},
		Fetch:      fetchPolicy(seed),
		HTTPClient: &http.Client{Transport: transport},
		Algorithm:  algorithm,
		Observer:   stamped{session: fmt.Sprintf("e2e.s%d.%s", i, alg), next: capture},
	})
	if err != nil {
		return "", err
	}
	return Render(Project(capture.Events)), nil
}
