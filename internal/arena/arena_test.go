package arena

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"bba/internal/campaign"
	"bba/internal/faults"
	"bba/internal/metrics"
	"bba/internal/telemetry"
)

func testConfig(sessions int) Config {
	fc := faults.DefaultScheduleConfig()
	return Config{
		Seed:        41,
		FaultSeed:   7,
		Faults:      &fc,
		Sessions:    sessions,
		ShardSize:   8,
		CatalogSize: 4,
		SketchSize:  64,
		Entrants:    []string{"BBA-2", "BOLA", "SmoothThroughput"},
	}
}

func reportBytes(t *testing.T, r *Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestArenaDeterminism pins the tentpole contract: the same seed produces a
// byte-identical N-way report — marginals AND pairwise matches — at any
// worker count, under fault weather. CI runs this under -race.
func TestArenaDeterminism(t *testing.T) {
	cfg := testConfig(28) // 4 shards, last one partial

	cfg.Parallelism = 1
	ref, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := reportBytes(t, ref)

	cfg.Parallelism = 8
	wide, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reportBytes(t, wide), want) {
		t.Error("8-worker arena report differs from single-worker report")
	}
}

// TestArenaReportShape checks the tournament wiring end to end: 3 entrants
// produce 3 pairings in canonical order, every pairing covers every draw,
// win counts are consistent, and the campaign marginals carry the entrants
// in order.
func TestArenaReportShape(t *testing.T) {
	cfg := testConfig(12)
	cfg.Parallelism = 2
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Schema != ReportSchema {
		t.Errorf("schema %q", r.Schema)
	}
	if len(r.Matches) != 3 {
		t.Fatalf("3 entrants produced %d pairings, want 3", len(r.Matches))
	}
	wantPairs := [][2]string{
		{"BBA-2", "BOLA"},
		{"BBA-2", "SmoothThroughput"},
		{"BOLA", "SmoothThroughput"},
	}
	for i, m := range r.Matches {
		if m.A != wantPairs[i][0] || m.B != wantPairs[i][1] {
			t.Errorf("pairing %d = %s vs %s, want %s vs %s", i, m.A, m.B, wantPairs[i][0], wantPairs[i][1])
		}
		if m.Sessions != 12 {
			t.Errorf("pairing %s vs %s covers %d draws, want 12", m.A, m.B, m.Sessions)
		}
		if m.WinsA+m.WinsB+m.Ties != m.Sessions {
			t.Errorf("pairing %s vs %s: wins %d + %d + ties %d != %d", m.A, m.B, m.WinsA, m.WinsB, m.Ties, m.Sessions)
		}
		if m.WinRateA < 0 || m.WinRateA > 1 {
			t.Errorf("win rate %f", m.WinRateA)
		}
		if m.DAvgRateKbps.N != m.Sessions {
			t.Errorf("rate delta covers %d of %d sessions", m.DAvgRateKbps.N, m.Sessions)
		}
		if m.DQoEPerPlayhour.CI95Lo > m.DQoEPerPlayhour.Mean || m.DQoEPerPlayhour.CI95Hi < m.DQoEPerPlayhour.Mean {
			t.Errorf("CI does not bracket the mean")
		}
	}
	if got := len(r.Campaign.Groups); got != 3 {
		t.Fatalf("campaign carries %d groups", got)
	}
	for i, g := range r.Campaign.Groups {
		if g.Name != cfg.Entrants[i] {
			t.Errorf("group %d = %q, want %q", i, g.Name, cfg.Entrants[i])
		}
	}

	var table bytes.Buffer
	if err := r.WriteTable(&table); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"BBA-2 vs BOLA", "head-to-head", "entrant"} {
		if !strings.Contains(table.String(), want) {
			t.Errorf("table missing %q:\n%s", want, table.String())
		}
	}
}

// TestArenaTelemetry: one arena_match event per pairing after the
// campaign's per-shard progress events.
func TestArenaTelemetry(t *testing.T) {
	cfg := testConfig(8)
	ring := telemetry.NewRing(64)
	cfg.Observer = ring
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	var matches []telemetry.Event
	for _, e := range ring.Events() {
		if e.Kind == telemetry.ArenaMatch {
			matches = append(matches, e)
		}
	}
	if len(matches) != 3 {
		t.Fatalf("%d arena_match events, want 3", len(matches))
	}
	if matches[0].Label != "BBA-2 vs BOLA" || matches[0].Bytes != 8 {
		t.Errorf("first match event = %+v", matches[0])
	}
}

func TestArenaConfigValidation(t *testing.T) {
	if _, err := Run(Config{Sessions: 4, Entrants: []string{"BBA-2"}}); err == nil {
		t.Error("single entrant accepted")
	}
	if _, err := Run(Config{Sessions: 4, Entrants: []string{"BBA-2", "BBA-2"}}); err == nil {
		t.Error("duplicate entrant accepted")
	}
	if _, err := Run(Config{Sessions: 4, Entrants: []string{"BBA-2", "no-such-algorithm"}}); err == nil {
		t.Error("unknown entrant accepted")
	}
	many := make([]string, maxEntrants+1)
	for i := range many {
		many[i] = "x"
	}
	if _, err := Run(Config{Sessions: 4, Entrants: many}); err == nil {
		t.Error("oversized field accepted")
	}
}

// TestMatchSetAccounting drives the accumulator directly with hand-built
// sessions and checks wins, ties and deltas.
func TestMatchSetAccounting(t *testing.T) {
	m := NewMatchSet([]string{"A", "B"}, 16)
	mk := func(qoe, rate float64, rebuf int) metrics.Session {
		return metrics.Session{PlayHours: 1, QoE: qoe, AvgRateKbps: rate, Rebuffers: rebuf}
	}
	sets := [][]metrics.Session{
		{mk(10, 2000, 0), mk(5, 1500, 2)}, // A wins
		{mk(3, 1000, 1), mk(7, 1800, 0)},  // B wins
		{mk(4, 1200, 1), mk(4, 1300, 1)},  // tie on QoE
	}
	for g, ms := range sets {
		if err := m.AddSessionSet(int64(g), ms); err != nil {
			t.Fatal(err)
		}
	}
	p := m.Pairs()[0]
	if p.Sessions != 3 || p.WinsA != 1 || p.WinsB != 1 || p.Ties != 1 {
		t.Errorf("accounting: %+v", p)
	}
	if got := p.DAvgRate.Moments.Mean; math.Abs(got-(500.0-800.0-100.0)/3) > 1e-9 {
		t.Errorf("mean rate delta = %v", got)
	}
	if got := p.DRebufRate.Moments.Mean; math.Abs(got-(-2.0+1.0+0.0)/3) > 1e-9 {
		t.Errorf("mean rebuffer delta = %v", got)
	}

	// Merge must preserve exact totals and reject foreign shapes.
	m2 := NewMatchSet([]string{"A", "B"}, 16)
	if err := m2.AddSessionSet(100, []metrics.Session{mk(1, 500, 0), mk(2, 600, 0)}); err != nil {
		t.Fatal(err)
	}
	if err := m.Merge(m2); err != nil {
		t.Fatal(err)
	}
	p = m.Pairs()[0]
	if p.Sessions != 4 || p.WinsB != 2 {
		t.Errorf("after merge: %+v", p)
	}
	if err := m.Merge(NewMatchSet([]string{"A", "B", "C"}, 16)); err == nil {
		t.Error("mismatched pair count accepted")
	}
	var notMatches campaign.Extra = fakeExtra{}
	if err := m.Merge(notMatches); err == nil {
		t.Error("foreign Extra type accepted")
	}
}

type fakeExtra struct{}

func (fakeExtra) AddSessionSet(int64, []metrics.Session) error { return nil }
func (fakeExtra) Merge(campaign.Extra) error                   { return nil }

// TestArenaExtraGuards: the campaign refuses extras on striped or resumed
// runs — the modes extras cannot survive.
func TestArenaExtraGuards(t *testing.T) {
	ccfg := campaign.Config{
		Sessions: 8,
		Stripes:  2,
		NewExtra: func() campaign.Extra { return NewMatchSet([]string{"A", "B"}, 16) },
	}
	if _, err := campaign.Run(ccfg); err == nil {
		t.Error("striped run with NewExtra accepted")
	}
}
