// Startup ramp (Figure 16): BBA-1 follows the chunk map and climbs only as
// the buffer grows; BBA-2's ΔB rule steps the rate up as soon as chunk
// downloads prove the capacity. This example prints both ramps side by
// side on the same fast link.
//
//	go run ./examples/startup
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"bba"
	"bba/internal/abr"
	"bba/internal/media"
	"bba/internal/player"
	"bba/internal/trace"
	"bba/internal/units"
)

func main() {
	// The network sustains far more than the title's top rate: the
	// steady-state rate is R_max and the only question is how fast each
	// algorithm gets there.
	ladder := media.DefaultLadder()[:8] // cap the title at 3 Mb/s
	video, err := media.NewCBR("startup-demo", ladder, media.DefaultChunkDuration, 450)
	if err != nil {
		log.Fatal(err)
	}
	link := trace.Constant(25*units.Mbps, time.Hour)

	ramp := func(alg bba.Algorithm) *player.Result {
		res, err := player.Run(player.Config{
			Algorithm:  alg,
			Stream:     abr.NewStream(video, 0),
			Trace:      link,
			WatchLimit: 5 * time.Minute,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	bba1 := ramp(bba.NewBBA1())
	bba2 := ramp(bba.NewBBA2())

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "chunk\tBBA-1 rate\tBBA-1 buffer\tBBA-2 rate\tBBA-2 buffer")
	for k := 0; k < 30 && k < len(bba1.Chunks) && k < len(bba2.Chunks); k++ {
		c1, c2 := bba1.Chunks[k], bba2.Chunks[k]
		fmt.Fprintf(w, "%d\t%v\t%.0fs\t%v\t%.0fs\n",
			k, c1.Rate, c1.BufferAfter.Seconds(), c2.Rate, c2.BufferAfter.Seconds())
	}
	w.Flush()

	fmt.Printf("\nfirst-minute average rate: BBA-1 %.0f kb/s, BBA-2 %.0f kb/s\n",
		bba1.StartupAvgRateKbps(), bba2.StartupAvgRateKbps())
	fmt.Println("BBA-2 steps up one rung per chunk while downloads run ≥8× faster than")
	fmt.Println("real time; BBA-1 waits for the buffer to climb the whole cushion")
}
