package telemetry

import "sync"

// Ring is a bounded in-memory event sink: the last capacity events are
// retained, older ones are dropped (and counted). It is the sink the
// event-ordering tests use, and doubles as a cheap flight recorder for
// long-running processes. Safe for concurrent use.
type Ring struct {
	mu      sync.Mutex
	events  []Event
	next    int
	full    bool
	dropped int64
}

// NewRing returns a ring retaining the last capacity events. It panics on
// non-positive capacity: the bound is a configuration constant.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		panic("telemetry: non-positive ring capacity")
	}
	return &Ring{events: make([]Event, capacity)}
}

// OnEvent implements Observer.
func (r *Ring) OnEvent(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		r.dropped++
	}
	r.events[r.next] = e
	r.next++
	if r.next == len(r.events) {
		r.next = 0
		r.full = true
	}
}

// Len returns the number of retained events.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.events)
	}
	return r.next
}

// Dropped returns how many events were evicted to stay within capacity.
func (r *Ring) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Events returns the retained events, oldest first.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]Event(nil), r.events[:r.next]...)
	}
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.next:]...)
	out = append(out, r.events[:r.next]...)
	return out
}

// CountKind returns how many retained events have kind k. It counts in
// place under the mutex — no copy of the retained buffer is made, so it is
// allocation-free and safe to call on every scrape of a large ring.
func (r *Ring) CountKind(k Kind) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	limit := r.next
	if r.full {
		limit = len(r.events)
	}
	n := 0
	for i := 0; i < limit; i++ {
		if r.events[i].Kind == k {
			n++
		}
	}
	return n
}
