package fluid

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"bba/internal/trace"
	"bba/internal/units"
)

const (
	rmin = 235 * units.Kbps
	rmax = 5000 * units.Kbps
)

// randomAdmissibleMap builds a random continuous, increasing map pinned at
// both ends: a piecewise-linear interpolation through sorted random knots.
func randomAdmissibleMap(rng *rand.Rand, maxBuffer float64) RateMapFunc {
	n := 3 + rng.Intn(6)
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		// Evenly spaced knots with mild jitter keep slopes bounded, so
		// Validate's continuity heuristic accepts every generated map.
		xs[i] = maxBuffer * (float64(i+1) + 0.5*rng.Float64() - 0.25) / float64(n+1)
		ys[i] = rng.Float64()
	}
	// Sorted ys over increasing xs is monotone.
	sortFloats(xs)
	sortFloats(ys)
	return func(b float64) units.BitRate {
		switch {
		case b <= 0:
			return rmin
		case b >= maxBuffer:
			return rmax
		}
		// Find the surrounding knots (with virtual endpoints).
		x0, y0 := 0.0, 0.0
		x1, y1 := maxBuffer, 1.0
		for i := 0; i < n; i++ {
			if xs[i] <= b && xs[i] > x0 {
				x0, y0 = xs[i], ys[i]
			}
			if xs[i] >= b && xs[i] < x1 {
				x1, y1 = xs[i], ys[i]
			}
		}
		frac := y0
		if x1 > x0 {
			frac = y0 + (y1-y0)*(b-x0)/(x1-x0)
		}
		return rmin + units.BitRate(frac*float64(rmax-rmin))
	}
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func TestValidateAcceptsLinear(t *testing.T) {
	f := Linear(rmin, rmax, 20, 216)
	if err := Validate(f, rmin, rmax, 240); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadMaps(t *testing.T) {
	cases := []struct {
		name string
		f    RateMapFunc
	}{
		{"not pinned at zero", func(b float64) units.BitRate { return rmax }},
		{"not pinned at max", func(b float64) units.BitRate { return rmin }},
		{"decreasing", func(b float64) units.BitRate {
			switch {
			case b <= 0:
				return rmin
			case b >= 240:
				return rmax
			case b < 120:
				return 3000 * units.Kbps
			default:
				return 1000 * units.Kbps
			}
		}},
		{"discontinuous", func(b float64) units.BitRate {
			switch {
			case b <= 0:
				return rmin
			case b < 120:
				return rmin
			default:
				return rmax
			}
		}},
		{"out of band", func(b float64) units.BitRate {
			switch {
			case b <= 0:
				return rmin
			case b >= 240:
				return rmax
			default:
				return 9000 * units.Kbps
			}
		}},
	}
	for _, c := range cases {
		if err := Validate(c.f, rmin, rmax, 240); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
}

func TestIntegrateValidation(t *testing.T) {
	if _, err := Integrate(Config{Trace: trace.Constant(units.Mbps, time.Minute)}); err == nil {
		t.Error("nil map accepted")
	}
	if _, err := Integrate(Config{Map: Linear(rmin, rmax, 20, 216), Rmin: rmin, Rmax: rmax}); err == nil {
		t.Error("nil trace accepted")
	}
}

// Theorem 1 for the canonical map: C(t) ≥ R_min everywhere → no rebuffer,
// even with capacity oscillating wildly.
func TestTheorem1Linear(t *testing.T) {
	tr := trace.Markov(trace.MarkovConfig{
		Base:     1200 * units.Kbps,
		Sigma:    1.4,
		Duration: 2 * time.Hour,
		Floor:    rmin,
	}, rand.New(rand.NewSource(9)))
	res, err := Integrate(Config{
		Map:   Linear(rmin, rmax, 20, 216),
		Rmin:  rmin,
		Rmax:  rmax,
		Trace: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rebuffered {
		t.Fatalf("fluid model rebuffered at %v with C ≥ R_min", res.RebufferAt)
	}
}

// Theorem 1, property form: ANY admissible map avoids rebuffering whenever
// C(t) ≥ R_min.
func TestQuickTheorem1AnyAdmissibleMap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomAdmissibleMap(rng, 240)
		if err := Validate(m, rmin, rmax, 240); err != nil {
			// The generator should only produce admissible maps.
			t.Fatalf("generator produced inadmissible map: %v", err)
		}
		tr := trace.Markov(trace.MarkovConfig{
			Base:     1000 * units.Kbps,
			Sigma:    1.2,
			Duration: time.Hour,
			Floor:    rmin,
		}, rng)
		res, err := Integrate(Config{Map: m, Rmin: rmin, Rmax: rmax, Trace: tr})
		if err != nil {
			return false
		}
		return !res.Rebuffered
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Theorem 2: with R_min < C(t) < R_max, the average selected rate matches
// the average capacity (after the buffer-filling transient).
func TestTheorem2RateMaximization(t *testing.T) {
	tr := trace.Markov(trace.MarkovConfig{
		Base:      2 * units.Mbps,
		Sigma:     0.5,
		MeanDwell: 20 * time.Second,
		Duration:  6 * time.Hour,
		Floor:     300 * units.Kbps,
		Ceiling:   4500 * units.Kbps,
	}, rand.New(rand.NewSource(4)))
	res, err := Integrate(Config{
		Map:   Linear(rmin, rmax, 20, 216),
		Rmin:  rmin,
		Rmax:  rmax,
		Trace: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rebuffered {
		t.Fatal("rebuffered with R_min < C < R_max")
	}
	rel := math.Abs(res.AvgSelectedKbps-res.AvgCapacityKbps) / res.AvgCapacityKbps
	if rel > 0.05 {
		t.Errorf("avg selected %.0f vs avg capacity %.0f: %.1f%% apart, want ≤5%%",
			res.AvgSelectedKbps, res.AvgCapacityKbps, 100*rel)
	}
}

// Theorem 2, property form over random admissible maps. Convergence speed
// depends on the map's shape, so the tolerance is looser than for the
// canonical map but the average must still track capacity.
func TestQuickTheorem2AnyAdmissibleMap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomAdmissibleMap(rng, 240)
		tr := trace.Markov(trace.MarkovConfig{
			Base:      2 * units.Mbps,
			Sigma:     0.4,
			MeanDwell: 30 * time.Second,
			Duration:  6 * time.Hour,
			Floor:     400 * units.Kbps,
			Ceiling:   4500 * units.Kbps,
		}, rng)
		res, err := Integrate(Config{Map: m, Rmin: rmin, Rmax: rmax, Trace: tr})
		if err != nil || res.Rebuffered {
			return false
		}
		rel := math.Abs(res.AvgSelectedKbps-res.AvgCapacityKbps) / res.AvgCapacityKbps
		return rel <= 0.10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// The counter-example direction: a map that is NOT pinned at R_min (it
// floors at a higher rate) CAN rebuffer even with C ≥ R_min — the
// hypothesis matters.
func TestTheorem1HypothesisNecessary(t *testing.T) {
	floor := 1500 * units.Kbps
	notPinned := func(b float64) units.BitRate {
		v := Linear(rmin, rmax, 20, 216)(b)
		if v < floor {
			return floor
		}
		return v
	}
	tr := trace.Constant(500*units.Kbps, time.Hour) // ≥ R_min but < the floor
	res, err := Integrate(Config{
		Map:           notPinned,
		Rmin:          rmin,
		Rmax:          rmax,
		Trace:         tr,
		InitialBuffer: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rebuffered {
		t.Error("un-pinned map avoided rebuffering; the counter-example should fail")
	}
}

// At capacity above R_max the buffer converges to full and the selected
// rate to R_max.
func TestConvergenceToRmax(t *testing.T) {
	res, err := Integrate(Config{
		Map:   Linear(rmin, rmax, 20, 216),
		Rmin:  rmin,
		Rmax:  rmax,
		Trace: trace.Constant(8*units.Mbps, time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalBuffer < 239 {
		t.Errorf("final buffer %.1f, want ≈240 (full)", res.FinalBuffer)
	}
}
