package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestGenerateKinds(t *testing.T) {
	for _, kind := range []string{"constant", "step", "markov"} {
		var out bytes.Buffer
		if err := run(&out, kind, 4000, 350, 25*time.Second, 3, time.Minute, 1, "", ""); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if !strings.Contains(out.String(), ",") {
			t.Errorf("%s produced no CSV rows", kind)
		}
	}
	var out bytes.Buffer
	if err := run(&out, "wormhole", 4000, 350, 0, 3, time.Minute, 1, "", ""); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestOutageOverlay(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, "constant", 4000, 0, 0, 0, 5*time.Minute, 1, "30s:10s", ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), ",0\n") {
		t.Error("no zero-rate segment in the output")
	}
	for _, bad := range []string{"30s", "abc:10s", "30s:abc"} {
		if err := run(&out, "constant", 4000, 0, 0, 0, time.Minute, 1, bad, ""); err == nil {
			t.Errorf("outage spec %q accepted", bad)
		}
	}
}

func TestStatsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "t.csv")
	var gen bytes.Buffer
	if err := run(&gen, "markov", 4000, 0, 0, 5.6, 10*time.Minute, 7, "", ""); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(file, gen.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(&out, "", 0, 0, 0, 0, 0, 0, "", file); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"duration", "75/25 ratio", "median/p95"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stats output missing %q", want)
		}
	}
	if err := run(&out, "", 0, 0, 0, 0, 0, 0, "", "/nonexistent.csv"); err == nil {
		t.Error("missing stats file accepted")
	}
}
