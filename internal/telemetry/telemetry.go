// Package telemetry is the structured session-event layer: every
// interesting moment of a streaming session — chunk requests and
// completions, rate switches, rebuffer start/end, buffer-level samples,
// reservoir updates, seeks — is emitted as a typed Event through a
// pluggable Observer.
//
// The design follows the instrumentation the paper's evidence chain is
// built on: per-session buffer trajectories, rebuffer events and rate
// switches, later aggregated into the two-hour windows of Figures 4–9.
// Production ABR studies (Yan et al. NSDI 2020, Licciardello et al.) rest
// on exactly this kind of per-event record.
//
// Emission is allocation-free on the fast path: Event is a flat value
// struct, and a nil Observer costs one branch per emission site. Sinks
// provided here:
//
//   - Journal — deterministic JSONL: same event stream ⇒ byte-identical
//     output, the property the determinism tests pin down.
//   - Ring — bounded in-memory buffer for tests and live inspection.
//   - Prom — Prometheus-text counters and histograms, servable over HTTP
//     (wired to /metrics on cmd/dashserver).
//   - Capture — unsynchronized per-worker recorder the A/B harness uses to
//     merge parallel sessions deterministically.
package telemetry

import (
	"time"

	"bba/internal/units"
)

// Kind identifies the type of a session event.
type Kind uint8

// The event taxonomy. SessionStart and SessionEnd bracket every session;
// the rest occur zero or more times in between in session-clock order.
const (
	// SessionStart is emitted once before the first request; Label
	// carries the algorithm name.
	SessionStart Kind = iota + 1
	// ChunkRequest is emitted when a chunk request is issued: Chunk,
	// RateIndex, Rate and the expected Bytes.
	ChunkRequest
	// ChunkComplete is emitted when the chunk lands: Duration is the
	// transfer time, Throughput the measured capacity, Buffer the
	// occupancy after the chunk is added.
	ChunkComplete
	// RateSwitch is emitted when the requested rate differs from the
	// previous chunk's: PrevRateIndex → RateIndex.
	RateSwitch
	// RebufferStart is emitted at the instant the buffer runs dry.
	// Label is "outage" when the session freezes permanently.
	RebufferStart
	// RebufferEnd is emitted when playback resumes; Duration is the
	// stall length of the event it closes.
	RebufferEnd
	// BufferSample is a buffer-occupancy sample taken at each decision
	// point: Buffer is B(t), Played the video delivered so far.
	BufferSample
	// ReservoirUpdate reports a change in a buffer-based algorithm's
	// effective reservoir (Reservoir) and outage protection (Protection).
	ReservoirUpdate
	// Seek is emitted when a viewer seek executes; Chunk is the target.
	Seek
	// SessionEnd closes the session: Played, Duration (total stall
	// time) and Chunk (number of chunks downloaded) summarize it.
	SessionEnd
	// FaultInject is emitted when an injected fault hits a chunk attempt:
	// Label carries the fault kind, Chunk the affected chunk, Duration the
	// time the failed attempt cost.
	FaultInject
	// ChunkRetry is emitted when the client re-attempts a chunk after a
	// failure: Chunk and RateIndex identify the retry, Duration the backoff
	// charged before it.
	ChunkRetry
	// Failover is emitted when the client switches endpoints: Label is the
	// endpoint switched to, PrevRateIndex/RateIndex carry the old/new
	// endpoint indices.
	Failover
	// Degrade is emitted when repeated chunk failure drops the session to
	// the minimum rate: PrevRateIndex → RateIndex, Bytes the shrunken
	// request size.
	Degrade
	// CampaignProgress is emitted by the campaign runner once per completed
	// shard: Chunk is the shard index, Bytes the paired sessions completed
	// so far, At the elapsed wall-clock time, Label the campaign name.
	CampaignProgress
	// ArenaMatch is emitted by the arena once per head-to-head pairing when
	// the tournament completes: Label is "A vs B", RateIndex/PrevRateIndex
	// the two entrants' indices, Chunk the pair index, Bytes the paired
	// sessions compared, At the elapsed wall-clock time.
	ArenaMatch
	// WorkerJoin is emitted by the campaign coordinator when a worker
	// registers: Label is the worker name, At the elapsed wall-clock time.
	WorkerJoin
	// LeaseGrant is emitted by the campaign coordinator when a shard-range
	// lease is issued: Label is the worker name (prefixed "steal:" for a
	// work-stealing re-lease of another worker's straggler tail), Chunk the
	// lease's first shard, Bytes the shard count, At the elapsed wall-clock
	// time.
	LeaseGrant
	// LeaseExpire is emitted by the campaign coordinator when a lease's TTL
	// lapses without completion: Label is the worker that held it, Chunk
	// the first re-issued shard (-1 when every shard had completed
	// elsewhere), Bytes the number of shards returned to the pending pool,
	// At the elapsed wall-clock time.
	LeaseExpire
	// SoakCycle is emitted by the soak daemon once per completed cycle:
	// Chunk is the cycle index, Bytes the sessions driven, Duration the
	// cycle's wall-clock time, Label "pass" or "fail", At the elapsed
	// daemon time.
	SoakCycle
	// SLOBreach is emitted by the soak daemon for every invariant a cycle
	// violates: Label is the invariant name, Session the offending session
	// (empty for cycle-level breaches), Chunk the cycle index, At the
	// elapsed daemon time.
	SLOBreach

	// numKinds is one past the last valid Kind. Keep it last: the
	// exhaustive round-trip test walks [SessionStart, numKinds) and fails
	// on any Kind added without a kindNames entry.
	numKinds
)

var kindNames = [...]string{
	SessionStart:     "session_start",
	ChunkRequest:     "chunk_request",
	ChunkComplete:    "chunk_complete",
	RateSwitch:       "rate_switch",
	RebufferStart:    "rebuffer_start",
	RebufferEnd:      "rebuffer_end",
	BufferSample:     "buffer_sample",
	ReservoirUpdate:  "reservoir_update",
	Seek:             "seek",
	SessionEnd:       "session_end",
	FaultInject:      "fault_inject",
	ChunkRetry:       "chunk_retry",
	Failover:         "failover",
	Degrade:          "degrade",
	CampaignProgress: "campaign_progress",
	ArenaMatch:       "arena_match",
	WorkerJoin:       "worker_join",
	LeaseGrant:       "lease_grant",
	LeaseExpire:      "lease_expire",
	SoakCycle:        "soak_cycle",
	SLOBreach:        "slo_breach",
}

// String returns the snake_case name used in the JSONL journal.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return "unknown"
}

// ParseKind maps a journal snake_case name back to its Kind. It returns
// false for names no Kind produces, including the "unknown" placeholder
// String falls back to.
func ParseKind(name string) (Kind, bool) {
	for k := SessionStart; k < numKinds; k++ {
		if kindNames[k] == name {
			return k, true
		}
	}
	return 0, false
}

// Event is one session event. It is a flat value struct — emitting one
// through an interface performs no heap allocation — and not every field is
// meaningful for every Kind; unused fields are zero (indices use -1 for
// "not applicable").
type Event struct {
	// Kind is the event type.
	Kind Kind
	// Session labels the session; empty for single-session runs. The
	// A/B harness stamps "d<day>.w<window>.s<index>.<group>".
	Session string
	// At is the session clock (virtual time in the simulator, wall time
	// since session start over HTTP).
	At time.Duration
	// Chunk is the chunk index the event concerns (-1 when n/a).
	Chunk int
	// RateIndex is the session-ladder index (-1 when n/a).
	RateIndex int
	// PrevRateIndex is the previous ladder index on a RateSwitch (-1
	// otherwise).
	PrevRateIndex int
	// Rate is the nominal bit rate of RateIndex.
	Rate units.BitRate
	// Bytes is the chunk size (expected on request, actual on complete).
	Bytes int64
	// Duration is the transfer time (ChunkComplete), stall length
	// (RebufferEnd) or total stall time (SessionEnd).
	Duration time.Duration
	// Throughput is the measured capacity during the transfer.
	Throughput units.BitRate
	// Buffer is the playback-buffer occupancy at the event.
	Buffer time.Duration
	// Played is the video time delivered to the viewer so far.
	Played time.Duration
	// Reservoir is the algorithm's effective reservoir (ReservoirUpdate).
	Reservoir time.Duration
	// Protection is the accrued outage protection (ReservoirUpdate).
	Protection time.Duration
	// Label carries the algorithm name (SessionStart/SessionEnd) or a
	// qualifier such as "outage" (RebufferStart).
	Label string
}

// Observer receives session events. Implementations used from a single
// session need not be safe for concurrent use; sinks shared across
// sessions (Prom, Journal, Ring) are internally synchronized.
type Observer interface {
	OnEvent(Event)
}

// Func adapts a function to the Observer interface.
type Func func(Event)

// OnEvent implements Observer.
func (f Func) OnEvent(e Event) { f(e) }

// Multi fans every event out to each non-nil observer in order. It
// returns nil when no usable observer remains, preserving the nil fast
// path.
func Multi(obs ...Observer) Observer {
	var live multi
	for _, o := range obs {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	default:
		return live
	}
}

type multi []Observer

func (m multi) OnEvent(e Event) {
	for _, o := range m {
		o.OnEvent(e)
	}
}

// Capture records every event into memory, stamping Session on events that
// do not already carry a label. It is deliberately unsynchronized: the A/B
// harness gives each worker-owned session its own Capture and merges them
// deterministically after the workers finish.
type Capture struct {
	// Session is stamped onto events whose Session field is empty.
	Session string
	// Events accumulates the stamped events in emission order.
	Events []Event
}

// OnEvent implements Observer.
func (c *Capture) OnEvent(e Event) {
	if e.Session == "" {
		e.Session = c.Session
	}
	c.Events = append(c.Events, e)
}
