package dash

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bba/internal/abr"
	"bba/internal/faults"
	"bba/internal/telemetry"
)

func TestEndpointSetSwitchesAfterRepeatedFailure(t *testing.T) {
	es := newEndpointSet([]string{"a", "b", "c"})
	if i, url := es.current(); i != 0 || url != "a" {
		t.Fatalf("fresh set starts at %d %q, want the primary", i, url)
	}
	if sw, _, _ := es.failure(); sw {
		t.Fatal("switched after one failure")
	}
	sw, from, to := es.failure()
	if !sw || from != 0 || to != 1 {
		t.Fatalf("second failure: switched=%v %d->%d, want 0->1", sw, from, to)
	}
	// Failures on the fallback drive it to the next alternative once it,
	// too, hits the threshold — but only if somewhere healthier exists.
	es.failure()
	sw, from, to = es.failure()
	if !sw || from != 1 || to != 2 {
		t.Fatalf("fallback exhausted: switched=%v %d->%d, want 1->2", sw, from, to)
	}
	// Any further switch must land on a strictly healthier endpoint —
	// never flap between equally dead ones.
	for i := 0; i < 10; i++ {
		if sw, fromI, toI := es.failure(); sw && es.scores[toI] <= es.scores[fromI] {
			t.Fatal("flapped to an endpoint no healthier than the current one")
		}
	}
}

func TestEndpointSetFailsBackToPrimary(t *testing.T) {
	es := newEndpointSet([]string{"a", "b"})
	es.failure()
	if sw, _, _ := es.failure(); !sw {
		t.Fatal("no switch at the threshold")
	}
	for i := 0; i < FailBackAfter-1; i++ {
		if sw, _, _ := es.success(); sw {
			t.Fatalf("failed back after only %d successes", i+1)
		}
	}
	sw, from, to := es.success()
	if !sw || from != 1 || to != 0 {
		t.Fatalf("fail-back: switched=%v %d->%d, want 1->0 after %d successes", sw, from, to, FailBackAfter)
	}
	if es.scores[0] != 0 {
		t.Fatalf("primary rejoined with score %d, want a clean 0", es.scores[0])
	}
}

func TestEndpointSetSingleEndpointNeverSwitches(t *testing.T) {
	es := newEndpointSet([]string{"only"})
	for i := 0; i < 20; i++ {
		if sw, _, _ := es.failure(); sw {
			t.Fatal("single-endpoint set switched")
		}
	}
}

func TestStreamFailsOverToHealthyEndpoint(t *testing.T) {
	video := testVideo(t, 10, 500*time.Millisecond)
	bad, err := NewServer(video)
	if err != nil {
		t.Fatal(err)
	}
	bad.FailChunk = func(rate, chunk int) bool { return true }
	good, err := NewServer(video)
	if err != nil {
		t.Fatal(err)
	}
	tsBad := httptest.NewServer(bad)
	defer tsBad.Close()
	tsGood := httptest.NewServer(good)
	defer tsGood.Close()

	var events []telemetry.Event
	res, err := Stream(context.Background(), ClientConfig{
		Endpoints: []string{tsBad.URL, tsGood.URL},
		Algorithm: abr.NewBBA0(),
		Fetch: FetchPolicy{
			MaxAttempts: 6,
			BackoffBase: time.Millisecond,
			BackoffCap:  5 * time.Millisecond,
		},
		Observer: telemetry.Func(func(e telemetry.Event) { events = append(events, e) }),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Incomplete {
		t.Fatal("session failed despite a healthy fallback endpoint")
	}
	if len(res.Chunks) != 10 {
		t.Fatalf("downloaded %d chunks, want 10", len(res.Chunks))
	}
	if res.Failovers == 0 {
		t.Fatal("no failover recorded against a dead primary")
	}
	if res.Retries == 0 {
		t.Fatal("no retries recorded against a dead primary")
	}
	// The first failover must target the healthy fallback; later ones may
	// be fail-back probes toward the (still dead) primary.
	var sawFailover, sawRetry bool
	for _, e := range events {
		switch e.Kind {
		case telemetry.Failover:
			if !sawFailover && e.Label != tsGood.URL {
				t.Errorf("first failover label %q, want the fallback URL %q", e.Label, tsGood.URL)
			}
			sawFailover = true
		case telemetry.ChunkRetry:
			sawRetry = true
		}
	}
	if !sawFailover || !sawRetry {
		t.Fatalf("telemetry missing failover=%v retry=%v", sawFailover, sawRetry)
	}
	if good.Requests() == 0 {
		t.Fatal("healthy endpoint never served a chunk")
	}
}

func TestStreamManifestFallsBackAcrossEndpoints(t *testing.T) {
	video := testVideo(t, 6, 500*time.Millisecond)
	srv, err := NewServer(video)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer dead.Close()

	res, err := Stream(context.Background(), ClientConfig{
		Endpoints: []string{dead.URL, ts.URL},
		Algorithm: abr.NewBBA0(),
		Fetch:     FetchPolicy{MaxAttempts: 4, BackoffBase: time.Millisecond, BackoffCap: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Chunks) != 6 {
		t.Fatalf("downloaded %d chunks, want 6", len(res.Chunks))
	}
}

func TestServerInjectorFaultMode(t *testing.T) {
	video := testVideo(t, 4, 500*time.Millisecond)
	srv, err := NewServer(video)
	if err != nil {
		t.Fatal(err)
	}
	prom := telemetry.NewProm("test")
	srv.Observer = prom
	srv.Injector = &faults.HTTPInjector{
		Schedule: faults.MustSchedule([]faults.Fault{
			{Kind: faults.ServerError, Start: 0, Duration: time.Hour},
		}),
		Seed: 9,
	}
	srv.Injector.Start(time.Now())
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var ok503, ok200 int
	for i := 0; i < 40; i++ {
		resp, err := http.Get(ts.URL + "/chunk/0/0")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusServiceUnavailable:
			ok503++
		case http.StatusOK:
			ok200++
		default:
			t.Fatalf("unexpected status %d", resp.StatusCode)
		}
	}
	if ok503 == 0 {
		t.Fatal("no 503s during a permanent server_error episode")
	}
	if ok200 == 0 {
		t.Fatal("no successes at p=0.9 over 40 requests")
	}
	var buf strings.Builder
	prom.WriteTo(&buf)
	if !strings.Contains(buf.String(), `test_faults_injected_total{kind="server_error"}`) {
		t.Fatal("/metrics missing the faults_injected_total counter")
	}
}

func TestServerInjectorConnReset(t *testing.T) {
	video := testVideo(t, 4, 500*time.Millisecond)
	srv, err := NewServer(video)
	if err != nil {
		t.Fatal(err)
	}
	srv.Injector = &faults.HTTPInjector{
		Schedule: faults.MustSchedule([]faults.Fault{
			{Kind: faults.ConnReset, Start: 0, Duration: time.Hour},
		}),
		Seed: 2,
	}
	srv.Injector.Start(time.Now())
	ts := httptest.NewServer(srv)
	defer ts.Close()

	sawReset := false
	for i := 0; i < 40 && !sawReset; i++ {
		resp, err := http.Get(ts.URL + "/chunk/0/0")
		if err != nil {
			// Reset before headers — also a valid observation.
			sawReset = true
			break
		}
		want := video.ChunkSize(0, 0)
		n, err := io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if err != nil || (resp.StatusCode == http.StatusOK && n < want) {
			sawReset = true
		}
	}
	if !sawReset {
		t.Fatal("no mid-download reset observed in 40 requests at p=0.9")
	}
}
