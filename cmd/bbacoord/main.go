// Command bbacoord is the campaign coordinator: the control-plane daemon
// that turns a fleet of bbacampaign worker processes into one
// deterministic campaign. It partitions the campaign's shard space into
// leases, hands them to workers over HTTP, re-issues shards whose leases
// expire (worker death), lets fast workers steal straggler tails, and
// folds completed shard accumulators exactly once through the campaign
// checkpoint — so the final report is byte-identical to a single-process
// run of the same seed, regardless of fleet size or churn.
//
// Endpoints:
//
//	POST /join /lease /heartbeat /complete   worker protocol (JSON)
//	GET  /report                             the final report once complete
//	GET  /metrics                            Prometheus-text counters
//	GET  /healthz                            liveness
//
// Example — one coordinator, three workers, any mix of machines:
//
//	bbacoord -sessions 1000000 -faults -checkpoint coord.json -report report.json &
//	bbacampaign -worker -coord http://host:8407 -batch   # × N
//
// The coordinator exits 0 once every shard is folded and the report is
// written. SIGINT/SIGTERM saves the checkpoint (with -checkpoint) and
// exits non-zero; restarting with the same flags resumes the fold without
// re-running completed shards.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"bba/internal/abr"
	"bba/internal/campaign"
	"bba/internal/coord"
)

type options struct {
	addr            string
	algos           string
	sessions        int
	shardSize       int
	days            int
	seed            int64
	faultSeed       int64
	faultsOn        bool
	sketch          int
	leaseShards     int
	leaseTTL        time.Duration
	sweepEvery      time.Duration
	checkpoint      string
	checkpointEvery int
	report          string
	drain           time.Duration
	progressEvery   time.Duration
	// ready is a test seam: receives the bound HTTP address once serving.
	ready chan<- string
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "127.0.0.1:8407", "HTTP listen address (worker protocol, report, metrics)")
	flag.StringVar(&o.algos, "algos", "", "comma-separated experiment arms (default the paper's standard groups; part of the campaign identity); registered: "+strings.Join(abr.Names(), ", "))
	flag.IntVar(&o.sessions, "sessions", 10000, "paired session draws (each streamed once per group)")
	flag.IntVar(&o.shardSize, "shard-size", 1024, "paired sessions per shard (part of the campaign identity)")
	flag.IntVar(&o.days, "days", 3, "simulated calendar days")
	flag.Int64Var(&o.seed, "seed", 2014, "campaign seed")
	flag.Int64Var(&o.faultSeed, "fault-seed", 2014, "fault-weather seed (with -faults)")
	flag.BoolVar(&o.faultsOn, "faults", false, "run every session under the standard fault schedule")
	flag.IntVar(&o.sketch, "sketch", 512, "quantile-sketch size per metric (part of the campaign identity)")
	flag.IntVar(&o.leaseShards, "lease-shards", coord.DefaultLeaseShards, "maximum shards per lease")
	flag.DurationVar(&o.leaseTTL, "lease-ttl", coord.DefaultLeaseTTL, "lease expiry without a heartbeat")
	flag.DurationVar(&o.sweepEvery, "sweep-every", time.Second, "background lease-expiry sweep interval")
	flag.StringVar(&o.checkpoint, "checkpoint", "", "checkpoint file path (written periodically and on exit; resumed from when present)")
	flag.IntVar(&o.checkpointEvery, "checkpoint-every", 8, "folded shards between checkpoint writes")
	flag.StringVar(&o.report, "report", "", "final report path (default stdout)")
	flag.DurationVar(&o.drain, "drain", 2*time.Second, "serve this long after completion so idle workers observe the campaign is done")
	flag.DurationVar(&o.progressEvery, "progress-every", 2*time.Second, "progress line interval on stderr (0 disables)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Stdout, os.Stderr, o); err != nil {
		fmt.Fprintln(os.Stderr, "bbacoord:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, out, errw io.Writer, o options) error {
	spec := coord.Spec{
		Seed:       o.seed,
		Sessions:   o.sessions,
		ShardSize:  o.shardSize,
		Days:       o.days,
		SketchSize: o.sketch,
		Faults:     o.faultsOn,
		FaultSeed:  o.faultSeed,
	}
	if o.algos != "" {
		for _, name := range strings.Split(o.algos, ",") {
			if name = strings.TrimSpace(name); name != "" {
				spec.Groups = append(spec.Groups, name)
			}
		}
	}

	ccfg := coord.Config{
		Spec:            spec,
		LeaseShards:     o.leaseShards,
		LeaseTTL:        o.leaseTTL,
		CheckpointPath:  o.checkpoint,
		CheckpointEvery: o.checkpointEvery,
	}
	if o.checkpoint != "" {
		if cp, err := campaign.LoadCheckpoint(o.checkpoint); err == nil {
			ccfg.Resume = cp
			fmt.Fprintf(errw, "resuming from %s: %d shards (%d sessions) already folded\n",
				o.checkpoint, cp.CompletedShards(), cp.SessionsDone())
		} else if !errors.Is(err, os.ErrNotExist) {
			return err
		}
	}
	c, err := coord.New(ccfg)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "coordinating on http://%s (/join, /lease, /heartbeat, /complete, /report, /metrics, /healthz)\n", ln.Addr())
	fmt.Fprintf(errw, "campaign: %d sessions in %d shards, lease %d shards / %v ttl\n",
		c.Identity().Sessions, c.Identity().Shards(), o.leaseShards, o.leaseTTL)
	if o.ready != nil {
		o.ready <- ln.Addr().String()
	}

	hs := &http.Server{Handler: c.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	// Background sweep keeps expiry moving while no worker is talking;
	// progress goes to stderr like bbacampaign's.
	ticker := time.NewTicker(o.sweepEvery)
	defer ticker.Stop()
	var progress *time.Ticker
	if o.progressEvery > 0 {
		progress = time.NewTicker(o.progressEvery)
		defer progress.Stop()
	} else {
		progress = time.NewTicker(time.Hour)
		progress.Stop()
	}

	start := time.Now()
	var runErr error
loop:
	for {
		select {
		case <-c.Done():
			break loop
		case <-ctx.Done():
			runErr = ctx.Err()
			break loop
		case err := <-errc:
			return err
		case <-ticker.C:
			c.Sweep()
		case <-progress.C:
			s := c.Stats()
			fmt.Fprintf(errw, "shards %d/%d done  %d pending  %d leased (%d leases, %d workers)  %d expired  %d stolen\n",
				s.ShardsDone, c.Identity().Shards(), s.ShardsPending, s.ShardsLeased,
				s.ActiveLeases, s.WorkersJoined, s.LeasesExpired, s.LeasesStolen)
		}
	}

	if runErr == nil && o.drain > 0 {
		// Workers cap their idle poll at one second; draining past that lets
		// every poller see a Complete lease response instead of a refused
		// connection.
		select {
		case <-time.After(o.drain):
		case <-ctx.Done():
		}
	}
	shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	shutdownErr := hs.Shutdown(shctx)

	s := c.Stats()
	fmt.Fprintf(errw, "coordinator: %d shards folded (%d duplicates absorbed) across %d workers, %d leases (%d stolen, %d expired, %d shards re-issued) in %v\n",
		s.Shards, s.ShardsDup, s.WorkersJoined, s.LeasesGranted, s.LeasesStolen, s.LeasesExpired, s.ShardsReissued,
		time.Since(start).Round(time.Millisecond))

	if runErr != nil {
		if o.checkpoint != "" {
			if err := c.Checkpoint(o.checkpoint); err != nil {
				return err
			}
			fmt.Fprintf(errw, "interrupted: checkpoint saved to %s (%d shards); rerun the same command to resume\n", o.checkpoint, s.ShardsDone)
		}
		return fmt.Errorf("interrupted with %d/%d shards folded: %w", s.ShardsDone, c.Identity().Shards(), runErr)
	}
	if shutdownErr != nil && !errors.Is(shutdownErr, context.DeadlineExceeded) {
		return shutdownErr
	}

	body, err := c.Report()
	if err != nil {
		return err
	}
	if o.report == "" {
		_, err = out.Write(body)
		return err
	}
	return os.WriteFile(o.report, body, 0o644)
}
