package collect

import (
	"net/http/httptest"
	"testing"
	"time"

	"bba/internal/telemetry"
)

// eventsPerBenchFrame is the batch size the ingest benchmarks assume;
// events/s = frames/s × eventsPerBenchFrame.
const eventsPerBenchFrame = 64

// BenchmarkCollectorIngest measures the collector's frame admission path —
// decode, checksum, dedup, event accounting — on pre-batched event frames.
// The acceptance bar (≥100k events/s) is checked end-to-end over loopback
// HTTP by cmd/bbabench's CollectorIngestTake; this benchmark isolates the
// in-process cost.
func BenchmarkCollectorIngest(b *testing.B) {
	c := NewCollector(CollectorConfig{})
	payload := eventsPayload(eventsPerBenchFrame)
	buf := make([]byte, 0, EncodedLen(5, len(payload)))
	b.SetBytes(int64(EncodedLen(5, len(payload))))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendFrame(buf[:0], Frame{Run: "bench", Session: 1, Seq: uint64(i), Kind: PayloadEvents, Payload: payload})
		if err := c.Ingest(buf); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)*eventsPerBenchFrame/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkShipperOnEvent measures the player-visible hot path with queue
// capacity available: it must not allocate.
func BenchmarkShipperOnEvent(b *testing.B) {
	collector := NewCollector(CollectorConfig{})
	srv := httptest.NewServer(collector.Handler())
	defer srv.Close()
	s, err := NewShipper(ShipperConfig{
		Addr: srv.URL, Run: "bench", Session: 1,
		BatchEvents: 64, FlushInterval: -1,
		Queue: QueueConfig{MemFrames: 1 << 16},
		Retry: RetryPolicy{MaxAttempts: 4, Base: time.Millisecond},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	ev := telemetry.Event{
		Kind: telemetry.BufferSample, Session: "d0.w0.s0.bench", Chunk: 1,
		RateIndex: 2, PrevRateIndex: -1, Buffer: 12 * time.Second, Label: "BBA-0",
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.OnEvent(ev)
	}
}
