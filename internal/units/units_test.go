package units

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestBitRateString(t *testing.T) {
	tests := []struct {
		r    BitRate
		want string
	}{
		{235 * Kbps, "235kb/s"},
		{3 * Mbps, "3Mb/s"},
		{1500 * Kbps, "1.5Mb/s"},
		{0, "0b/s"},
		{999, "999b/s"},
		{17 * Mbps, "17Mb/s"},
		{-560 * Kbps, "-560kb/s"},
		{2 * Gbps, "2Gb/s"},
	}
	for _, tt := range tests {
		if got := tt.r.String(); got != tt.want {
			t.Errorf("BitRate(%d).String() = %q, want %q", int64(tt.r), got, tt.want)
		}
	}
}

func TestBytesIn(t *testing.T) {
	// A 4-second chunk at 3 Mb/s is 1.5 MB — the paper's Figure 10 average.
	got := (3 * Mbps).BytesIn(4 * time.Second)
	if got != 1_500_000 {
		t.Fatalf("3Mb/s over 4s = %d bytes, want 1500000", got)
	}
	if n := BitRate(0).BytesIn(time.Second); n != 0 {
		t.Errorf("zero rate produced %d bytes", n)
	}
}

func TestDurationFor(t *testing.T) {
	d := (1 * Mbps).DurationFor(125_000) // 1 Mb
	if d != time.Second {
		t.Fatalf("1Mb over 1Mb/s = %v, want 1s", d)
	}
	if d := (5 * Mbps).DurationFor(0); d != 0 {
		t.Errorf("zero bytes took %v", d)
	}
	if d := BitRate(0).DurationFor(100); d != math.MaxInt64 {
		t.Errorf("zero rate should be infinite, got %v", d)
	}
	if d := BitRate(-1).DurationFor(100); d != math.MaxInt64 {
		t.Errorf("negative rate should be infinite, got %v", d)
	}
}

func TestThroughput(t *testing.T) {
	got := Throughput(1_500_000, 4*time.Second)
	if got != 3*Mbps {
		t.Fatalf("throughput = %v, want 3Mb/s", got)
	}
	if Throughput(100, 0) != 0 {
		t.Error("zero duration should report zero throughput")
	}
	if Throughput(0, time.Second) != 0 {
		t.Error("zero bytes should report zero throughput")
	}
}

func TestKilobits(t *testing.T) {
	if got := (235 * Kbps).Kilobits(); got != 235 {
		t.Fatalf("Kilobits = %v, want 235", got)
	}
}

func TestScaleAndClamp(t *testing.T) {
	if got := (1 * Mbps).Scale(1.5); got != 1500*Kbps {
		t.Errorf("Scale(1.5) = %v", got)
	}
	if got := (1 * Mbps).Scale(0); got != 0 {
		t.Errorf("Scale(0) = %v", got)
	}
	if got := (1 * Mbps).Clamp(2*Mbps, 3*Mbps); got != 2*Mbps {
		t.Errorf("Clamp low = %v", got)
	}
	if got := (5 * Mbps).Clamp(2*Mbps, 3*Mbps); got != 3*Mbps {
		t.Errorf("Clamp high = %v", got)
	}
	if got := (2500 * Kbps).Clamp(2*Mbps, 3*Mbps); got != 2500*Kbps {
		t.Errorf("Clamp inside = %v", got)
	}
}

func TestSecondsToDuration(t *testing.T) {
	if d := SecondsToDuration(1.5); d != 1500*time.Millisecond {
		t.Errorf("1.5s -> %v", d)
	}
	if d := SecondsToDuration(-3); d != 0 {
		t.Errorf("negative seconds -> %v, want 0", d)
	}
	if d := SecondsToDuration(math.Inf(1)); d != math.MaxInt64 {
		t.Errorf("+inf seconds -> %v, want max", d)
	}
	if d := SecondsToDuration(1e30); d != math.MaxInt64 {
		t.Errorf("huge seconds -> %v, want max", d)
	}
}

// Round-tripping bytes through a rate and back must be consistent: the time
// to download the bytes a rate produces in d must be d (within rounding).
func TestQuickRoundTrip(t *testing.T) {
	f := func(rateKbps uint16, ms uint16) bool {
		r := BitRate(rateKbps%10000+100) * Kbps
		d := time.Duration(ms%60000+1) * time.Millisecond
		n := r.BytesIn(d)
		back := r.DurationFor(n)
		diff := back - d
		if diff < 0 {
			diff = -diff
		}
		// One byte of rounding is at most 8 bits / rate seconds.
		tol := time.Duration(float64(8*time.Second)/float64(r)) + time.Microsecond
		return diff <= tol
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Throughput is the inverse of DurationFor within rounding.
func TestQuickThroughputInverse(t *testing.T) {
	f := func(rateKbps uint16, kb uint16) bool {
		r := BitRate(rateKbps%20000+50) * Kbps
		n := int64(kb%5000+1) * 1000
		d := r.DurationFor(n)
		got := Throughput(n, d)
		// Within 0.2% of the true rate.
		lo, hi := r.Scale(0.998), r.Scale(1.002)
		return got >= lo && got <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
