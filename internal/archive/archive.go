// Package archive is the collector's durable session store: an
// append-only write-ahead log fed by admitted event batches that compacts
// into immutable columnar blocks, plus a query layer that answers
// kind/session/time questions and computes rebuffer/rate/switch rollups
// straight off the encoded columns.
//
// The shape follows grafana/tempo's tempodb — WAL, then sealed blocks,
// per-column encoding and a footer index — scaled to this repo's needs.
// The paper's evidence chain is exactly this workload: millions of
// archived sessions interrogated after the fact (Figures 4–9 are all
// post-hoc scans over the fleet's event log), and Puffer (Yan et al.,
// NSDI 2020) showed the durable, queryable archive *is* the experiment
// platform.
//
// Layout under the store directory, one subdirectory per run (the run id
// path-escaped):
//
//	<dir>/<run>/000001.blk   immutable columnar blocks, in admission order
//	<dir>/<run>/000002.blk
//	<dir>/<run>/wal.q        the active WAL tail: CRC-framed JSONL batches
//
// Writes append to the WAL; once the WAL holds CompactEvents events (or
// CompactBytes bytes) it is rewritten as the next numbered block and
// truncated. Every byte is always in exactly one of the two forms, so
// Export — blocks in order, then the WAL tail — reproduces the admitted
// journal byte for byte, the losslessness contract the tests pin.
//
// Crash recovery: Open scans each run's WAL and truncates it at the first
// damaged record (a torn tail write loses only the un-acknowledged
// suffix), then appends after it. Blocks are immutable and self-verifying
// (CRC per column page, CRC'd footer), so they need no repair pass.
package archive

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// walName is the active WAL file inside a run directory.
const walName = "wal.q"

// ErrReadOnly reports a mutating call on a read-only store.
var ErrReadOnly = errors.New("archive: store is read-only")

// Config configures a Store.
type Config struct {
	// Dir is the store's root directory (required; created if missing).
	Dir string
	// CompactEvents seals the WAL into a block once it holds this many
	// events (default 65536).
	CompactEvents int
	// CompactBytes seals the WAL once it holds this many bytes
	// (default 16 MiB), whichever trips first.
	CompactBytes int64
}

func (c *Config) applyDefaults() {
	if c.CompactEvents <= 0 {
		c.CompactEvents = 1 << 16
	}
	if c.CompactBytes <= 0 {
		c.CompactBytes = 16 << 20
	}
}

// Store is the archive: Append feeds admitted event batches in, the query
// layer (Scan, Aggregate, Export) reads blocks plus the live WAL tail.
// Safe for concurrent use. Append implements the collector's Archiver
// seam, so a Store can be wired directly into collect.CollectorConfig.
type Store struct {
	cfg      Config
	readOnly bool

	mu   sync.Mutex
	runs map[string]*runArchive
}

// runArchive is one run's slice of the store.
type runArchive struct {
	dir     string
	run     string
	blocks  []string // block file paths, in block-sequence order
	nextSeq int
	wal     *os.File
	walBuf  *bufio.Writer
	events  int   // events in the WAL
	bytes   int64 // payload bytes in the WAL
}

// Open opens (creating if needed) a writable store rooted at cfg.Dir,
// repairing any torn WAL tails left by a crash.
func Open(cfg Config) (*Store, error) {
	cfg.applyDefaults()
	if cfg.Dir == "" {
		return nil, errors.New("archive: Config.Dir is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	return open(cfg, false)
}

// OpenReadOnly opens an existing store for querying without mutating it:
// no WAL repair, no appends — the form offline tools use on a directory a
// live collector may still own. Read views are rebuilt per query (runs
// and blocks re-listed, the WAL re-scanned), so data the writer sealed
// after Open still appears. The one caveat of reading a live directory
// without coordination: a compaction racing a query can transiently show
// the sealed tail twice (block renamed, WAL not yet truncated). Reads of
// a quiescent directory are exact.
func OpenReadOnly(dir string) (*Store, error) {
	cfg := Config{Dir: dir}
	cfg.applyDefaults()
	if _, err := os.Stat(dir); err != nil {
		return nil, err
	}
	return open(cfg, true)
}

func open(cfg Config, readOnly bool) (*Store, error) {
	s := &Store{cfg: cfg, readOnly: readOnly, runs: make(map[string]*runArchive)}
	if err := s.loadRunsLocked(); err != nil {
		return nil, err
	}
	return s, nil
}

// loadRunsLocked (re)scans the store directory and rebuilds s.runs. A
// writable store runs it once at Open — it owns the directory afterwards,
// so its in-memory state is authoritative. Read-only stores run it again
// per read view (see refreshLocked). Caller holds mu (or is Open, before
// the store escapes).
func (s *Store) loadRunsLocked() error {
	ents, err := os.ReadDir(s.cfg.Dir)
	if err != nil {
		return err
	}
	runs := make(map[string]*runArchive, len(ents))
	for _, ent := range ents {
		if !ent.IsDir() {
			continue
		}
		run, err := url.PathUnescape(ent.Name())
		if err != nil {
			continue // not a run directory this store wrote
		}
		ra, err := s.openRun(run, filepath.Join(s.cfg.Dir, ent.Name()))
		if err != nil {
			return fmt.Errorf("archive: run %q: %w", run, err)
		}
		runs[run] = ra
	}
	s.runs = runs
	return nil
}

// refreshLocked re-lists runs and block files from disk in read-only
// mode: the live writer that owns the directory may have added runs or
// sealed WAL bytes into new blocks since Open, and a block list frozen at
// Open would silently drop those events from every query. Writable stores
// skip it. Read-only openRun holds no file handles, so rebuilding leaks
// nothing. Caller holds mu.
func (s *Store) refreshLocked() error {
	if !s.readOnly {
		return nil
	}
	return s.loadRunsLocked()
}

// openRun loads one run directory: block list, then WAL scan/repair.
func (s *Store) openRun(run, dir string) (*runArchive, error) {
	ra := &runArchive{dir: dir, run: run}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, ent := range ents {
		name := ent.Name()
		var seq int
		if _, err := fmt.Sscanf(name, "%06d.blk", &seq); err != nil || fmt.Sprintf("%06d.blk", seq) != name {
			continue
		}
		ra.blocks = append(ra.blocks, filepath.Join(dir, name))
		if seq >= ra.nextSeq {
			ra.nextSeq = seq + 1
		}
	}
	sort.Strings(ra.blocks) // zero-padded names: lexical == numeric order
	if ra.nextSeq == 0 {
		ra.nextSeq = 1
	}

	walPath := filepath.Join(dir, walName)
	data, err := os.ReadFile(walPath)
	if errors.Is(err, os.ErrNotExist) {
		data = nil
	} else if err != nil {
		return nil, err
	}
	valid := scanWAL(data, func(payload []byte) {
		ra.events += bytes.Count(payload, []byte{'\n'})
		ra.bytes += int64(len(payload))
	})
	if s.readOnly {
		return ra, nil
	}
	f, err := os.OpenFile(walPath, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(valid); err != nil { // drop a torn tail, if any
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	ra.wal = f
	// walBuf only coalesces one record's three writes (header, payload,
	// CRC) into a single syscall; Append flushes it before returning, so
	// it never holds bytes the collector has already acknowledged.
	ra.walBuf = bufio.NewWriterSize(f, 64<<10)
	return ra, nil
}

// maxWALRecord bounds one framed WAL record's payload — the same bound
// scanWAL enforces on reopen. An Append past it would persist a record
// the next scan discards as a corrupt tail, silently losing an
// acknowledged batch, so it is refused up front instead.
const maxWALRecord = maxFooterLen

// WAL record framing: uvarint payload length, payload, uint32 LE CRC-32C
// over the payload. scanWAL walks records from the start, calling visit
// for each valid one, and returns the byte length of the valid prefix —
// everything after it is a torn or corrupt tail.
func scanWAL(data []byte, visit func(payload []byte)) int64 {
	var off int64
	for {
		l, sz := binary.Uvarint(data[off:])
		rem := int64(len(data)) - off - int64(sz)
		if sz <= 0 || l > uint64(maxWALRecord) || rem < int64(l)+4 {
			return off
		}
		start := off + int64(sz)
		payload := data[start : start+int64(l)]
		want := binary.LittleEndian.Uint32(data[start+int64(l):])
		if crc32.Checksum(payload, blockCRCTable) != want {
			return off
		}
		visit(payload)
		off = start + int64(l) + 4
	}
}

// runLocked returns (creating if needed) the named run's archive. Caller
// holds mu.
func (s *Store) runLocked(run string, create bool) (*runArchive, error) {
	if ra, ok := s.runs[run]; ok {
		return ra, nil
	}
	if !create {
		return nil, fmt.Errorf("archive: unknown run %q", run)
	}
	if s.readOnly {
		return nil, ErrReadOnly
	}
	dir := filepath.Join(s.cfg.Dir, url.PathEscape(run))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	ra, err := s.openRun(run, dir)
	if err != nil {
		return nil, err
	}
	s.runs[run] = ra
	return ra, nil
}

// Append archives one admitted event batch — whole journal JSONL lines,
// newline-terminated — for run. The batch is on the WAL file with the OS
// (not necessarily the platter) when Append returns nil: the framed
// record is flushed before returning, never parked in a userspace buffer,
// because a nil return is the collector's cue to ACK the frame and the
// shipper then drops its only other copy. A non-nil error means the batch
// was NOT archived and the caller must not acknowledge it upstream.
// Append does not retain batch.
func (s *Store) Append(run string, batch []byte) error {
	if len(batch) == 0 {
		return nil
	}
	if batch[len(batch)-1] != '\n' {
		return fmt.Errorf("archive: batch must be newline-terminated JSONL")
	}
	if len(batch) > maxWALRecord {
		return fmt.Errorf("archive: %d-byte batch exceeds the %d-byte WAL record limit", len(batch), maxWALRecord)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.readOnly {
		return ErrReadOnly
	}
	ra, err := s.runLocked(run, true)
	if err != nil {
		return err
	}
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(batch)))
	if _, err := ra.walBuf.Write(hdr[:n]); err != nil {
		return err
	}
	if _, err := ra.walBuf.Write(batch); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(batch, blockCRCTable))
	if _, err := ra.walBuf.Write(crc[:]); err != nil {
		return err
	}
	ra.events += bytes.Count(batch, []byte{'\n'})
	ra.bytes += int64(len(batch))
	if ra.events >= s.cfg.CompactEvents || ra.bytes >= s.cfg.CompactBytes {
		return s.compactLocked(ra) // flushes via walLinesLocked
	}
	return ra.walBuf.Flush()
}

// Compact seals run's WAL tail into a block now, regardless of thresholds
// — what a shutdown or an explicit flush-before-heavy-queries calls. A
// run with an empty WAL is a no-op.
func (s *Store) Compact(run string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.readOnly {
		return ErrReadOnly
	}
	ra, ok := s.runs[run]
	if !ok {
		return fmt.Errorf("archive: unknown run %q", run)
	}
	return s.compactLocked(ra)
}

// CompactAll seals every run's WAL tail.
func (s *Store) CompactAll() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.readOnly {
		return ErrReadOnly
	}
	for _, ra := range s.runs {
		if err := s.compactLocked(ra); err != nil {
			return err
		}
	}
	return nil
}

// compactLocked rewrites ra's WAL as the next numbered block, atomically
// (write temp, fsync, rename), then truncates the WAL. Caller holds mu.
func (s *Store) compactLocked(ra *runArchive) error {
	if ra.events == 0 {
		return nil
	}
	lines, err := ra.walLinesLocked()
	if err != nil {
		return err
	}
	blk, err := encodeBlock(ra.run, lines)
	if err != nil {
		return err
	}
	path := filepath.Join(ra.dir, fmt.Sprintf("%06d.blk", ra.nextSeq))
	tmp, err := os.CreateTemp(ra.dir, ".blk-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(blk); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp.Name(), path)
	}
	if err != nil {
		os.Remove(tmp.Name())
		return err
	}
	ra.nextSeq++
	ra.blocks = append(ra.blocks, path)
	// The block is durable; the WAL bytes are now redundant.
	if err := ra.wal.Truncate(0); err != nil {
		return err
	}
	if _, err := ra.wal.Seek(0, io.SeekStart); err != nil {
		return err
	}
	ra.walBuf.Reset(ra.wal)
	ra.events, ra.bytes = 0, 0
	return nil
}

// walLinesLocked flushes and re-reads ra's WAL, returning its journal
// lines in admission order. Re-scanning the file (rather than trusting
// counters) keeps read-only stores honest about a WAL a live writer may
// have appended to or truncated since Open; refreshLocked does the same
// for the block list. Caller holds mu.
func (ra *runArchive) walLinesLocked() ([][]byte, error) {
	if ra.wal != nil {
		if err := ra.walBuf.Flush(); err != nil {
			return nil, err
		}
	}
	data, err := os.ReadFile(filepath.Join(ra.dir, walName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	} else if err != nil {
		return nil, err
	}
	var lines [][]byte
	scanWAL(data, func(payload []byte) {
		for len(payload) > 0 {
			nl := bytes.IndexByte(payload, '\n')
			if nl < 0 {
				lines = append(lines, payload)
				return
			}
			lines = append(lines, payload[:nl+1])
			payload = payload[nl+1:]
		}
	})
	return lines, nil
}

// Runs returns the runs present, sorted. A read-only store re-lists the
// directory first (best effort — a racing writer can still win), so runs
// created since Open appear.
func (s *Store) Runs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.refreshLocked()
	runs := make([]string, 0, len(s.runs))
	for run := range s.runs {
		runs = append(runs, run)
	}
	sort.Strings(runs)
	return runs
}

// RunStats summarizes one run's storage.
type RunStats struct {
	Run        string `json:"run"`
	Blocks     int    `json:"blocks"`
	BlockBytes int64  `json:"block_bytes"`
	WALEvents  int    `json:"wal_events"`
	WALBytes   int64  `json:"wal_bytes"`
}

// Stats returns per-run storage stats, sorted by run. Like Runs, a
// read-only store refreshes its view of the directory first.
func (s *Store) Stats() []RunStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.refreshLocked()
	out := make([]RunStats, 0, len(s.runs))
	for run, ra := range s.runs {
		st := RunStats{Run: run, Blocks: len(ra.blocks), WALEvents: ra.events, WALBytes: ra.bytes}
		for _, p := range ra.blocks {
			if fi, err := os.Stat(p); err == nil {
				st.BlockBytes += fi.Size()
			}
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Run < out[j].Run })
	return out
}

// snapshot captures a run's read view: immutable block paths plus the WAL
// tail's lines (copied), consistent at one instant. Read-only stores
// re-list the directory first so blocks a live writer sealed — and runs
// it created — since Open are included rather than silently dropped.
func (s *Store) snapshot(run string) (blocks []string, walLines [][]byte, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.refreshLocked(); err != nil {
		return nil, nil, err
	}
	ra, ok := s.runs[run]
	if !ok {
		return nil, nil, fmt.Errorf("archive: unknown run %q", run)
	}
	lines, err := ra.walLinesLocked()
	if err != nil {
		return nil, nil, err
	}
	walLines = make([][]byte, len(lines))
	for i, l := range lines {
		walLines[i] = append([]byte(nil), l...)
	}
	return append([]string(nil), ra.blocks...), walLines, nil
}

// Export writes run's full archived journal — blocks in admission order,
// then the WAL tail — to w. The output is byte-identical to the
// concatenation of every batch Append accepted for the run.
func (s *Store) Export(run string, w io.Writer) error {
	blocks, walLines, err := s.snapshot(run)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(w, 256<<10)
	for _, path := range blocks {
		blk, err := readBlock(path)
		if err != nil {
			return err
		}
		if err := blk.Export(bw); err != nil {
			return err
		}
	}
	for _, line := range walLines {
		if _, err := bw.Write(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Close flushes every WAL buffer. Blocks need nothing: they are only ever
// complete or absent.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, ra := range s.runs {
		if ra.walBuf == nil {
			continue
		}
		if err := ra.walBuf.Flush(); err != nil && first == nil {
			first = err
		}
		if err := ra.wal.Close(); err != nil && first == nil {
			first = err
		}
		ra.wal, ra.walBuf = nil, nil
	}
	return first
}

// readBlock loads and decodes one block file.
func readBlock(path string) (*Block, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	blk, err := DecodeBlock(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", filepath.Base(path), err)
	}
	return blk, nil
}
