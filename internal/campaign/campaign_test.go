package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"path/filepath"
	"sync/atomic"
	"testing"

	"bba/internal/abtest"
	"bba/internal/faults"
	"bba/internal/telemetry"
)

// twoGroups keeps the test campaigns cheap while still exercising the
// paired multi-arm path.
func twoGroups() []abtest.Group {
	std := abtest.StandardGroups()
	return []abtest.Group{std[0], std[2]} // Control, BBA-0
}

func testConfig(sessions int) Config {
	fc := faults.DefaultScheduleConfig()
	return Config{
		Seed:        41,
		FaultSeed:   7,
		Faults:      &fc,
		Sessions:    sessions,
		ShardSize:   8,
		CatalogSize: 4,
		SketchSize:  64,
		Groups:      twoGroups(),
	}
}

func reportBytes(t *testing.T, r *Report) []byte {
	t.Helper()
	if r == nil {
		t.Fatal("nil report")
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestShardingDeterminism pins the campaign's central contract: the same
// identity produces byte-identical reports at any worker count and at any
// process split (stripes merged via checkpoints).
func TestShardingDeterminism(t *testing.T) {
	cfg := testConfig(52) // 7 shards, last one partial

	cfg.Parallelism = 1
	ref, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := reportBytes(t, ref.Report)

	cfg.Parallelism = 4
	wide, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reportBytes(t, wide.Report), want) {
		t.Error("4-worker report differs from single-worker report")
	}

	// Four separate striped processes, merged.
	var cps []*Checkpoint
	for stripe := 0; stripe < 4; stripe++ {
		scfg := cfg
		scfg.Stripe, scfg.Stripes = stripe, 4
		scfg.Parallelism = 2
		out, err := Run(scfg)
		if err != nil {
			t.Fatalf("stripe %d: %v", stripe, err)
		}
		if out.Report != nil {
			t.Fatalf("stripe %d produced a final report on its own", stripe)
		}
		cps = append(cps, out.Checkpoint)
	}
	merged, err := MergeCheckpoints(cps...)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := FinalReport(merged)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reportBytes(t, rep), want) {
		t.Error("merged 4-stripe report differs from unsharded report")
	}
}

// TestBatchReportByteIdentical pins the batch kernel's campaign contract:
// Config.Batch must produce byte-identical reports to scalar execution at
// any worker count — here 1 and 8 workers, under fault weather, with a
// non-default kernel width so the lane scheduler is genuinely exercised.
func TestBatchReportByteIdentical(t *testing.T) {
	cfg := testConfig(52) // 7 shards, last one partial
	cfg.Parallelism = 1
	ref, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := reportBytes(t, ref.Report)

	for _, par := range []int{1, 8} {
		bcfg := cfg
		bcfg.Batch = true
		bcfg.BatchWidth = 3
		bcfg.Parallelism = par
		var last Progress
		bcfg.Progress = func(p Progress) { last = p }
		out, err := Run(bcfg)
		if err != nil {
			t.Fatalf("batch run (%d workers): %v", par, err)
		}
		if !bytes.Equal(reportBytes(t, out.Report), want) {
			t.Errorf("batch report at %d workers differs from scalar report", par)
		}
		// Progress throughput counts kernel-retired sessions.
		if last.SessionsPerSec <= 0 {
			t.Errorf("batch run (%d workers): SessionsPerSec %v, want > 0", par, last.SessionsPerSec)
		}
		if last.SessionsDone != int64(cfg.Sessions) {
			t.Errorf("batch run (%d workers): SessionsDone %d, want %d", par, last.SessionsDone, cfg.Sessions)
		}
	}
}

// TestResumeNoDoubleCounting kills a campaign mid-run, resumes from its
// checkpoint, and requires the final report to be byte-identical to an
// uninterrupted run — shards are atomic, so nothing is lost or counted
// twice.
func TestResumeNoDoubleCounting(t *testing.T) {
	cfg := testConfig(48) // 6 shards
	cfg.Parallelism = 2
	cfg.CheckpointEvery = 1

	ref, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := reportBytes(t, ref.Report)

	path := filepath.Join(t.TempDir(), "cp.json")
	ctx, cancel := context.WithCancel(context.Background())
	kcfg := cfg
	kcfg.CheckpointPath = path
	var done atomic.Int32
	kcfg.Progress = func(p Progress) {
		if done.Add(1) == 3 { // kill after the third completed shard
			cancel()
		}
	}
	out, err := RunContext(ctx, kcfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
	if out == nil || out.Checkpoint == nil {
		t.Fatal("cancelled run returned no checkpoint")
	}
	if out.Report != nil {
		t.Error("cancelled run produced a final report")
	}

	cp, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	got := cp.CompletedShards()
	if got == 0 || got >= cfg.Sessions/cfg.ShardSize {
		t.Fatalf("checkpoint recorded %d shards; want a strict mid-run subset", got)
	}

	// A truncated report is available, and marked as such.
	trunc, err := TruncatedReport(cp)
	if err != nil {
		t.Fatal(err)
	}
	if !trunc.Truncated {
		t.Error("partial report not marked truncated")
	}
	if trunc.Sessions != cp.SessionsDone() {
		t.Errorf("truncated report covers %d sessions, checkpoint %d", trunc.Sessions, cp.SessionsDone())
	}

	rcfg := cfg
	rcfg.Resume = cp
	res, err := Run(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ShardsRun+got != 6 {
		t.Errorf("resume ran %d shards on top of %d recorded, want %d total", res.Stats.ShardsRun, got, 6)
	}
	if !bytes.Equal(reportBytes(t, res.Report), want) {
		t.Error("resumed report differs from uninterrupted report")
	}
}

// TestResumeRejectsForeignCheckpoint pins the identity guard: a checkpoint
// from a different campaign must not resume, and checkpoints from
// different campaigns must not merge.
func TestResumeRejectsForeignCheckpoint(t *testing.T) {
	cfg := testConfig(16)
	out, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.Seed++
	other.Resume = out.Checkpoint
	if _, err := Run(other); err == nil {
		t.Error("resume with mismatched identity succeeded")
	}
	o2, err := Run(Config{Seed: cfg.Seed + 1, Sessions: 16, ShardSize: 8, CatalogSize: 4, SketchSize: 64, Groups: twoGroups()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeCheckpoints(out.Checkpoint, o2.Checkpoint); err == nil {
		t.Error("merging checkpoints with different identities succeeded")
	}
	if _, err := MergeCheckpoints(out.Checkpoint, out.Checkpoint); err == nil {
		t.Error("merging overlapping checkpoints succeeded")
	}
}

// TestMemoryCeiling pins the constant-memory design: out-of-order shard
// retention stays within the merge window, and the serialized campaign
// state does not grow with session count once the sketches saturate.
func TestMemoryCeiling(t *testing.T) {
	small := testConfig(64)
	small.Faults = nil
	small.Parallelism = 4
	big := small
	big.Sessions = 4 * small.Sessions

	sizeOf := func(cfg Config) (int, RunStats) {
		out, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "cp.json")
		if err := out.Checkpoint.Save(path); err != nil {
			t.Fatal(err)
		}
		cp, err := LoadCheckpoint(path)
		if err != nil {
			t.Fatal(err)
		}
		if !cp.Complete() {
			t.Fatal("round-tripped checkpoint not complete")
		}
		data, err := json.Marshal(out.Checkpoint)
		if err != nil {
			t.Fatal(err)
		}
		return len(data), out.Stats
	}
	sSize, sStats := sizeOf(small)
	bSize, bStats := sizeOf(big)

	for _, st := range []RunStats{sStats, bStats} {
		if limit := 2 * st.Parallelism; st.PeakPending > limit {
			t.Errorf("PeakPending %d exceeds merge window %d", st.PeakPending, limit)
		}
	}
	// 4× the sessions must not grow the serialized state materially: the
	// sketches are fixed-size and everything else is O(groups).
	if float64(bSize) > 1.25*float64(sSize) {
		t.Errorf("checkpoint grew with session count: %d bytes at N=%d vs %d bytes at N=%d",
			bSize, big.Sessions, sSize, small.Sessions)
	}
}

// TestProgressAndTelemetry checks the per-shard progress stream: monotone
// session counts, a CampaignProgress event per shard, and live group
// deltas for every arm.
func TestProgressAndTelemetry(t *testing.T) {
	cfg := testConfig(24) // 3 shards
	cfg.Faults = nil
	cfg.Parallelism = 2
	ring := telemetry.NewRing(64)
	cfg.Observer = ring
	var snaps []Progress
	cfg.Progress = func(p Progress) { snaps = append(snaps, p) }

	out, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 3 {
		t.Fatalf("got %d progress snapshots, want 3", len(snaps))
	}
	last := snaps[len(snaps)-1]
	if last.SessionsDone != int64(cfg.Sessions) || last.SessionsTotal != int64(cfg.Sessions) {
		t.Errorf("final progress %d/%d, want %d/%d", last.SessionsDone, last.SessionsTotal, cfg.Sessions, cfg.Sessions)
	}
	if last.ShardsDone != 3 || last.ShardsTotal != 3 {
		t.Errorf("final progress shards %d/%d, want 3/3", last.ShardsDone, last.ShardsTotal)
	}
	if len(last.Groups) != 2 || last.Groups[0].Sessions != int64(cfg.Sessions) {
		t.Errorf("live group deltas incomplete: %+v", last.Groups)
	}
	for i := 1; i < len(snaps); i++ {
		if snaps[i].SessionsDone <= snaps[i-1].SessionsDone {
			t.Error("progress SessionsDone not monotone")
		}
	}
	if n := ring.CountKind(telemetry.CampaignProgress); n != 3 {
		t.Errorf("got %d CampaignProgress events, want 3", n)
	}
	if out.Report == nil || out.Report.Truncated {
		t.Error("complete run did not produce a final untruncated report")
	}
}
