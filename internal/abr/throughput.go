package abr

import (
	"time"

	"bba/internal/units"
)

// SmoothThroughput is the canonical capacity-rule rival: pick the highest
// ladder rate no greater than Safety times the harmonic mean of the last
// Window per-chunk throughputs. The harmonic mean is the standard smoothed
// estimator of the rate-selection literature (FESTIVE, and the throughput
// rule inside dash.js): it is deliberately pessimistic under variability,
// because slow samples dominate the mean, which is exactly the bias a
// capacity rule wants when the cost of over-estimating is a rebuffer.
//
// Unlike Control it has no buffer-dependent adjustment function at all —
// the buffer appears only as a panic floor — making it the cleanest
// pure-throughput arm for the arena: any quality gap against the
// buffer-based algorithms is attributable to the signal, not to tuning.
type SmoothThroughput struct {
	// Window is the harmonic-mean depth in samples.
	Window int
	// Safety discounts the estimate before the ladder lookup (0.9 keeps
	// 10% headroom, the conventional choice).
	Safety float64
	// PanicBuffer floors the selection at R_min when nearly dry.
	PanicBuffer time.Duration
	// InitialEstimate seeds the estimator (stored history).
	InitialEstimate units.BitRate

	samples []units.BitRate
}

// NewSmoothThroughput returns the rule with the conventional shape: a
// 5-sample harmonic window and a 0.9 safety factor.
func NewSmoothThroughput() *SmoothThroughput {
	return &SmoothThroughput{
		Window:      5,
		Safety:      0.9,
		PanicBuffer: 10 * time.Second,
	}
}

// Name implements Algorithm.
func (c *SmoothThroughput) Name() string { return "SmoothThroughput" }

// SeedCapacity implements CapacitySeeded.
func (c *SmoothThroughput) SeedCapacity(r units.BitRate) { c.InitialEstimate = r }

// Observe feeds one throughput sample into the window without making a
// decision; the Hybrid uses it to keep the estimator warm while BOLA is in
// charge.
func (c *SmoothThroughput) Observe(sample units.BitRate) {
	if sample <= 0 {
		return
	}
	c.samples = append(c.samples, sample)
	if len(c.samples) > c.Window {
		c.samples = c.samples[1:]
	}
}

// Estimate returns the discounted harmonic-mean estimate, falling back to
// the seeded history before the first sample. Zero means no information.
func (c *SmoothThroughput) Estimate() units.BitRate {
	est := c.harmonic()
	if est == 0 {
		est = c.InitialEstimate
	}
	return est.Scale(c.Safety)
}

// Next implements Algorithm.
func (c *SmoothThroughput) Next(st State, s Stream) int {
	c.Observe(st.LastThroughput)
	est := c.Estimate()
	if est == 0 || (st.PrevIndex >= 0 && st.Buffer < c.PanicBuffer) {
		return 0
	}
	return s.Ladder().HighestAtMost(est)
}

// harmonic returns the harmonic mean of the sample window, 0 when empty.
func (c *SmoothThroughput) harmonic() units.BitRate {
	if len(c.samples) == 0 {
		return 0
	}
	var invSum float64
	for _, s := range c.samples {
		invSum += 1 / float64(s)
	}
	return units.BitRate(float64(len(c.samples)) / invSum)
}
