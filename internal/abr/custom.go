package abr

import (
	"time"

	"bba/internal/units"
)

// Custom is a buffer-based algorithm over an arbitrary continuous rate map
// — the paper's Section 3 class in its full generality: "any curve f(B) on
// the plane within the feasible region defines a rate map". The discrete
// selection uses the same barrier hysteresis as Algorithm 1: stay at the
// previous rate until f(B) crosses the next-higher or next-lower ladder
// rate.
//
// Pair it with internal/fluid to check a candidate map against the
// Section 3.1 criteria before running it against real chunk dynamics.
type Custom struct {
	// Label is the reported algorithm name.
	Label string
	// F evaluates the continuous map at a buffer occupancy; BufferMax is
	// provided so maps can be expressed as fractions of the buffer.
	F func(buffer, bufferMax time.Duration) units.BitRate

	prev int
}

// NewCustom builds a Custom algorithm from a continuous map.
func NewCustom(label string, f func(buffer, bufferMax time.Duration) units.BitRate) *Custom {
	return &Custom{Label: label, F: f, prev: -1}
}

// Name implements Algorithm.
func (c *Custom) Name() string {
	if c.Label == "" {
		return "Custom"
	}
	return c.Label
}

// Next implements Algorithm.
func (c *Custom) Next(st State, s Stream) int {
	l := s.Ladder()
	f := c.F(st.Buffer, st.BufferMax).Clamp(l.Min(), l.Max())
	if c.prev < 0 {
		c.prev = l.HighestAtMost(f)
		return c.prev
	}
	prev := l.Clamp(c.prev)
	ratePlus := l.Max()
	if prev != len(l)-1 {
		ratePlus = l[l.NextUp(prev)]
	}
	rateMinus := l.Min()
	if prev != 0 {
		rateMinus = l[l.NextDown(prev)]
	}
	next := prev
	switch {
	case f >= ratePlus:
		next = l.HighestBelow(f)
		if next <= prev {
			next = l.NextUp(prev)
		}
	case f <= rateMinus:
		next = l.LowestAbove(f)
		if next >= prev {
			next = l.NextDown(prev)
		}
	}
	c.prev = next
	return next
}
