package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bba/internal/campaign"
	"bba/internal/coord"
)

func testDaemonOpts(sessions int, dir string) options {
	return options{
		addr:        "127.0.0.1:0",
		sessions:    sessions,
		shardSize:   8,
		days:        3,
		seed:        11,
		sketch:      64,
		leaseShards: 2,
		sweepEvery:  10 * time.Millisecond,
		drain:       50 * time.Millisecond,
		checkpoint:  filepath.Join(dir, "coord-cp.json"),
		report:      filepath.Join(dir, "report.json"),
	}
}

// wantReport computes the canonical single-process report for the daemon's
// campaign flags.
func wantReport(t *testing.T, o options) []byte {
	t.Helper()
	spec := coord.Spec{
		Seed:       o.seed,
		Sessions:   o.sessions,
		ShardSize:  o.shardSize,
		Days:       o.days,
		SketchSize: o.sketch,
		Faults:     o.faultsOn,
		FaultSeed:  o.faultSeed,
	}
	cfg, err := spec.CampaignConfig()
	if err != nil {
		t.Fatal(err)
	}
	out, err := campaign.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := out.Report.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDaemonEndToEnd boots the daemon on an ephemeral port, drives the
// campaign with an in-process worker, and checks the daemon exits zero
// with the report file byte-identical to a local run.
func TestDaemonEndToEnd(t *testing.T) {
	dir := t.TempDir()
	o := testDaemonOpts(24, dir)
	want := wantReport(t, o)

	ready := make(chan string, 1)
	o.ready = ready
	var out, errw bytes.Buffer
	done := make(chan error, 1)
	go func() { done <- run(context.Background(), &out, &errw, o) }()
	addr := <-ready

	if _, err := coord.RunWorker(context.Background(), coord.WorkerConfig{
		URL:         "http://" + addr,
		Name:        "daemon-test",
		Parallelism: 2,
		Poll:        5 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("daemon exited with error: %v\nstderr: %s", err, errw.String())
	}

	got, err := os.ReadFile(o.report)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("daemon report differs from local run")
	}
	if !strings.Contains(out.String(), "coordinating on http://") {
		t.Errorf("stdout missing listen line: %q", out.String())
	}
	if !strings.Contains(errw.String(), "shards folded") {
		t.Errorf("stderr missing coordinator summary: %q", errw.String())
	}
	// The completion checkpoint is on disk and resumable in principle.
	cp, err := campaign.LoadCheckpoint(o.checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	if !cp.Complete() {
		t.Error("daemon's final checkpoint incomplete")
	}
}

// TestDaemonInterruptResume kills the daemon mid-campaign and restarts it
// from its checkpoint: the interrupted invocation must exit non-zero with
// a saved checkpoint, and the resumed one must finish with the canonical
// report.
func TestDaemonInterruptResume(t *testing.T) {
	dir := t.TempDir()
	o := testDaemonOpts(48, dir)
	o.checkpointEvery = 1
	want := wantReport(t, o)

	ready := make(chan string, 1)
	o.ready = ready
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out, errw bytes.Buffer
	done := make(chan error, 1)
	go func() { done <- run(ctx, &out, &errw, o) }()
	addr := <-ready

	// Run one lease's worth of shards, then stop the daemon.
	client := &coord.Client{URL: "http://" + addr, Worker: "partial"}
	join, err := client.Join(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ccfg, err := join.Spec.CampaignConfig()
	if err != nil {
		t.Fatal(err)
	}
	runner, err := campaign.NewShardRunner(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	grant, err := client.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range grant.Shards {
		accums, err := runner.RunShard(context.Background(), s)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := client.Complete(context.Background(), grant.Lease, s, accums); err != nil {
			t.Fatal(err)
		}
	}
	cancel()
	if err := <-done; err == nil {
		t.Fatal("interrupted daemon exited zero")
	}
	if !strings.Contains(errw.String(), "checkpoint saved") {
		t.Errorf("interrupted daemon did not report the saved checkpoint: %q", errw.String())
	}

	// Restart with the same flags; a worker finishes the rest.
	ready2 := make(chan string, 1)
	o2 := o
	o2.ready = ready2
	var out2, errw2 bytes.Buffer
	done2 := make(chan error, 1)
	go func() { done2 <- run(context.Background(), &out2, &errw2, o2) }()
	addr2 := <-ready2
	if _, err := coord.RunWorker(context.Background(), coord.WorkerConfig{
		URL:         "http://" + addr2,
		Name:        "finisher",
		Parallelism: 2,
		Poll:        5 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	if err := <-done2; err != nil {
		t.Fatalf("resumed daemon exited with error: %v\nstderr: %s", err, errw2.String())
	}
	if !strings.Contains(errw2.String(), "resuming from") {
		t.Errorf("resumed daemon did not load the checkpoint: %q", errw2.String())
	}
	got, err := os.ReadFile(o.report)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("resumed daemon report differs from local run")
	}
}
