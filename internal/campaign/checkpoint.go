package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"

	"bba/internal/stats"
)

// CheckpointSchema identifies the checkpoint file format.
const CheckpointSchema = "bba-campaign-checkpoint/v1"

// Identity pins everything that determines a campaign's results. Two
// checkpoints are mergeable — and a checkpoint is resumable under a config —
// only when their identities are equal; mixing different identities would
// silently blend incompatible populations.
type Identity struct {
	Seed        int64    `json:"seed"`
	FaultSeed   int64    `json:"fault_seed,omitempty"`
	Faults      bool     `json:"faults,omitempty"`
	Sessions    int      `json:"sessions"`
	ShardSize   int      `json:"shard_size"`
	Days        int      `json:"days"`
	CatalogSize int      `json:"catalog_size"`
	SketchSize  int      `json:"sketch_size"`
	Groups      []string `json:"groups"`
}

// Shards returns the campaign's shard count: ⌈Sessions/ShardSize⌉. Shard s
// covers global paired-session indices [s·ShardSize, min((s+1)·ShardSize,
// Sessions)). The boundaries depend only on the identity — never on worker
// count or process split — which is what makes merged results bit-identical
// at any sharding.
func (id Identity) Shards() int {
	if id.Sessions <= 0 || id.ShardSize <= 0 {
		return 0
	}
	return (id.Sessions + id.ShardSize - 1) / id.ShardSize
}

// shardSessions returns how many paired sessions shard s covers.
func (id Identity) shardSessions(s int) int {
	lo := s * id.ShardSize
	hi := lo + id.ShardSize
	if hi > id.Sessions {
		hi = id.Sessions
	}
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// ShardAccums is one completed shard's per-group accumulators, the atomic
// unit of checkpointing: a shard is recorded only once fully complete, so a
// resume can never double-count sessions.
type ShardAccums struct {
	Shard  int           `json:"shard"`
	Groups []*GroupAccum `json:"groups"`
}

// Checkpoint is the resumable state of a campaign, written atomically as
// JSON. Prefix holds the in-order fold of shards [0, PrefixShards); Done
// holds completed shards beyond the prefix (out-of-order completions, or all
// completions of a stripe that doesn't own shard 0), sorted by shard index.
// fold() moves Done entries into the prefix as soon as they become
// contiguous, so a single-process run's checkpoint stays O(groups) while a
// stripe's checkpoint is O(completed shards) — exactly the state a merge
// needs.
type Checkpoint struct {
	Schema       string        `json:"schema"`
	Identity     Identity      `json:"identity"`
	PrefixShards int           `json:"prefix_shards"`
	Prefix       []*GroupAccum `json:"prefix,omitempty"`
	Done         []ShardAccums `json:"done,omitempty"`
}

// newCheckpoint returns an empty checkpoint for the identity.
func newCheckpoint(id Identity) *Checkpoint {
	return &Checkpoint{Schema: CheckpointSchema, Identity: id}
}

// NewCheckpoint returns an empty checkpoint for the identity. Exported for
// the collect subsystem, which seeds remote aggregation state with it and
// re-folds shipped shards through the same in-order path a local run uses —
// that shared fold is what makes the remote report byte-identical.
func NewCheckpoint(id Identity) *Checkpoint { return newCheckpoint(id) }

// Has reports whether shard s is already recorded.
func (c *Checkpoint) Has(s int) bool { return c.has(s) }

// Record stores a completed shard's accumulators and folds any newly
// contiguous prefix. Duplicates are an error — recording the same shard
// twice means double-counting. Record takes ownership of accums.
func (c *Checkpoint) Record(s int, accums []*GroupAccum) error { return c.record(s, accums) }

// has reports whether shard s is already recorded.
func (c *Checkpoint) has(s int) bool {
	if s < c.PrefixShards {
		return true
	}
	i := sort.Search(len(c.Done), func(i int) bool { return c.Done[i].Shard >= s })
	return i < len(c.Done) && c.Done[i].Shard == s
}

// record stores a completed shard's accumulators and folds any newly
// contiguous prefix. It returns an error on duplicates — a duplicate means
// double-counting, the exact bug checkpointing exists to prevent.
func (c *Checkpoint) record(s int, accums []*GroupAccum) error {
	if c.has(s) {
		return fmt.Errorf("campaign: shard %d recorded twice", s)
	}
	i := sort.Search(len(c.Done), func(i int) bool { return c.Done[i].Shard >= s })
	c.Done = append(c.Done, ShardAccums{})
	copy(c.Done[i+1:], c.Done[i:])
	c.Done[i] = ShardAccums{Shard: s, Groups: accums}
	return c.fold()
}

// fold merges Done entries into Prefix while they are contiguous with it.
// This is the single merge path — always left-to-right in shard-index order —
// so the folded state is bit-identical no matter which workers or processes
// computed the shards.
func (c *Checkpoint) fold() error {
	for len(c.Done) > 0 && c.Done[0].Shard == c.PrefixShards {
		if c.Prefix == nil {
			c.Prefix = c.Done[0].Groups
		} else if err := mergeAccumSets(c.Prefix, c.Done[0].Groups); err != nil {
			return err
		}
		c.PrefixShards++
		c.Done = c.Done[1:]
	}
	return nil
}

// pending returns how many completed shards are parked beyond the prefix.
func (c *Checkpoint) pending() int { return len(c.Done) }

// CompletedShards returns how many shards the checkpoint has recorded.
func (c *Checkpoint) CompletedShards() int { return c.PrefixShards + len(c.Done) }

// SessionsDone returns the paired sessions covered by recorded shards.
func (c *Checkpoint) SessionsDone() int64 {
	var n int64
	for s := 0; s < c.PrefixShards; s++ {
		n += int64(c.Identity.shardSessions(s))
	}
	for _, d := range c.Done {
		n += int64(c.Identity.shardSessions(d.Shard))
	}
	return n
}

// Complete reports whether every shard of the campaign is folded into the
// prefix.
func (c *Checkpoint) Complete() bool {
	return c.PrefixShards == c.Identity.Shards() && len(c.Done) == 0
}

// validate checks structural invariants after a load or merge.
func (c *Checkpoint) validate() error {
	if c.Schema != CheckpointSchema {
		return fmt.Errorf("campaign: checkpoint schema %q, want %q", c.Schema, CheckpointSchema)
	}
	if c.Identity.Shards() == 0 {
		return fmt.Errorf("campaign: checkpoint identity has no shards")
	}
	if c.PrefixShards > 0 && len(c.Prefix) != len(c.Identity.Groups) {
		return fmt.Errorf("campaign: checkpoint prefix has %d groups, identity %d", len(c.Prefix), len(c.Identity.Groups))
	}
	last := c.PrefixShards - 1
	for _, d := range c.Done {
		if d.Shard <= last {
			return fmt.Errorf("campaign: checkpoint shard %d out of order or duplicated", d.Shard)
		}
		if d.Shard >= c.Identity.Shards() {
			return fmt.Errorf("campaign: checkpoint shard %d beyond campaign's %d shards", d.Shard, c.Identity.Shards())
		}
		if len(d.Groups) != len(c.Identity.Groups) {
			return fmt.Errorf("campaign: checkpoint shard %d has %d groups, identity %d", d.Shard, len(d.Groups), len(c.Identity.Groups))
		}
		last = d.Shard
	}
	return nil
}

// Save writes the checkpoint atomically: marshal, write a temp file in the
// target directory, fsync, rename. A crash mid-save leaves the previous
// checkpoint intact.
func (c *Checkpoint) Save(path string) error {
	data, err := json.Marshal(c)
	if err != nil {
		return fmt.Errorf("campaign: marshal checkpoint: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".bbacampaign-*.tmp")
	if err != nil {
		return fmt.Errorf("campaign: checkpoint temp file: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("campaign: write checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("campaign: sync checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("campaign: close checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("campaign: publish checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint reads and validates a checkpoint file.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("campaign: read checkpoint: %w", err)
	}
	var c Checkpoint
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("campaign: parse checkpoint %s: %w", path, err)
	}
	if err := c.validate(); err != nil {
		return nil, fmt.Errorf("%w (%s)", err, path)
	}
	return &c, nil
}

// MergeCheckpoints combines checkpoints from a striped campaign (one per
// process) into a single checkpoint. All inputs must share an identity and
// cover disjoint shards; the merged prefix is re-folded in shard-index
// order, so the result is bit-identical to an unsharded run over the same
// identity.
func MergeCheckpoints(cs ...*Checkpoint) (*Checkpoint, error) {
	if len(cs) == 0 {
		return nil, fmt.Errorf("campaign: no checkpoints to merge")
	}
	id := cs[0].Identity
	out := newCheckpoint(id)
	for _, c := range cs {
		if err := c.validate(); err != nil {
			return nil, err
		}
		if !reflect.DeepEqual(c.Identity, id) {
			return nil, fmt.Errorf("campaign: checkpoint identities differ; refusing to merge")
		}
	}
	// Collect every recorded shard, reject overlaps, then fold ascending.
	type entry struct {
		shard  int
		groups []*GroupAccum
		prefix *Checkpoint // non-nil when the entry is a folded prefix
	}
	var entries []entry
	for _, c := range cs {
		if c.PrefixShards > 0 {
			entries = append(entries, entry{shard: 0, prefix: c})
		}
		for _, d := range c.Done {
			entries = append(entries, entry{shard: d.Shard, groups: d.Groups})
		}
	}
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].shard < entries[j].shard })
	for _, e := range entries {
		if e.prefix != nil {
			// A folded prefix covers shards [0, PrefixShards) as one unit;
			// it can only merge when out's prefix is still empty (two
			// overlapping prefixes would double-count shard 0).
			if out.PrefixShards != 0 {
				return nil, fmt.Errorf("campaign: checkpoints overlap at shard 0")
			}
			out.PrefixShards = e.prefix.PrefixShards
			out.Prefix = cloneAccums(e.prefix.Prefix)
			continue
		}
		if out.has(e.shard) {
			return nil, fmt.Errorf("campaign: checkpoints overlap at shard %d", e.shard)
		}
		if err := out.record(e.shard, cloneAccums(e.groups)); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// cloneAccums deep-copies a shard's accumulators so merging never aliases
// the source checkpoint's state.
func cloneAccums(src []*GroupAccum) []*GroupAccum {
	out := make([]*GroupAccum, len(src))
	for i, a := range src {
		cp := *a
		cp.RebufferRate.Sketch.Entries = append([]stats.SketchEntry(nil), a.RebufferRate.Sketch.Entries...)
		cp.AvgRate.Sketch.Entries = append([]stats.SketchEntry(nil), a.AvgRate.Sketch.Entries...)
		cp.SteadyRate.Sketch.Entries = append([]stats.SketchEntry(nil), a.SteadyRate.Sketch.Entries...)
		cp.SwitchRate.Sketch.Entries = append([]stats.SketchEntry(nil), a.SwitchRate.Sketch.Entries...)
		cp.StartupRate.Sketch.Entries = append([]stats.SketchEntry(nil), a.StartupRate.Sketch.Entries...)
		cp.QoERate.Sketch.Entries = append([]stats.SketchEntry(nil), a.QoERate.Sketch.Entries...)
		out[i] = &cp
	}
	return out
}
