// Command bbacollect is the fleet collection daemon: it ingests telemetry
// frames shipped by bbacampaign (or any internal/collect Shipper) over
// HTTP POST and/or UDP, deduplicates them per (run, session) stream, folds
// shard accumulators into campaign checkpoints exactly once, and serves
// the finished report.
//
// Endpoints:
//
//	POST /ingest        one frame per request body
//	GET  /report/{run}  the aggregated report: 404 unknown run, 409 while
//	                    shards are outstanding, 200 once complete
//	GET  /metrics       Prometheus-text counters
//	GET  /healthz       liveness; degrades (503) on archive failure
//	GET  /runs          archived runs and storage stats (-store only)
//	GET  /query         archived events or rollups (-store only)
//	GET  /tail          live stream of admitted event batches as JSONL
//
// Two archive forms, combinable:
//
//	-archive FILE   append admitted event batches as flat journal JSONL
//	-store DIR      columnar archive (internal/archive): WAL + immutable
//	                blocks, queryable via /query and offline via bbaquery
//
// Either way, archiving gates acknowledgement: an event frame whose batch
// cannot be persisted is NACKed for retry, never silently dropped, and
// the first failure sticks until restart. SIGINT/SIGTERM drains in-flight
// ingests, flushes the archive and exits.
//
// Example:
//
//	bbacollect -addr 127.0.0.1:8406 -udp 127.0.0.1:8406 -store fleet.archive &
//	bbacampaign -sessions 20000 -ship http://127.0.0.1:8406
//	curl 'http://127.0.0.1:8406/query?run=run-11&group=BBA-0&agg=1'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bba/internal/archive"
	"bba/internal/collect"
)

type options struct {
	addr        string
	udp         string
	archive     string
	store       string
	dedupWindow int
	grace       time.Duration
	// ready is a test seam: when non-nil it receives the bound HTTP
	// address once the daemon is serving, then the UDP address if -udp
	// was given.
	ready chan<- string
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "127.0.0.1:8406", "HTTP listen address (ingest, reports, metrics)")
	flag.StringVar(&o.udp, "udp", "", "UDP listen address for the fire-and-forget event lane (default off)")
	flag.StringVar(&o.archive, "archive", "", "append admitted event batches to this journal JSONL file")
	flag.StringVar(&o.store, "store", "", "columnar archive directory (enables /query and /runs)")
	flag.IntVar(&o.dedupWindow, "dedup-window", collect.DefaultDedupWindow, "per-stream out-of-order admission window, in frames")
	flag.DurationVar(&o.grace, "grace", 5*time.Second, "drain deadline for in-flight ingests on shutdown")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Stdout, os.Stderr, o); err != nil {
		fmt.Fprintln(os.Stderr, "bbacollect:", err)
		os.Exit(1)
	}
}

// teeArchiver fans each admitted batch to every archiver; the first error
// wins, and the collector's sticky NACK handles the rest.
type teeArchiver []collect.Archiver

func (t teeArchiver) Append(run string, batch []byte) error {
	for _, a := range t {
		if err := a.Append(run, batch); err != nil {
			return err
		}
	}
	return nil
}

// run serves until ctx is cancelled, then drains and flushes the archive.
func run(ctx context.Context, out, errw io.Writer, o options) error {
	var archivers teeArchiver
	var flush func() error
	if o.archive != "" {
		f, err := os.OpenFile(o.archive, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		// The file is written directly, never through a userspace buffer:
		// Append returning nil is what lets the collector ACK the frame
		// (and the shipper drop its copy), so the batch must be with the
		// OS by then — a buffered batch dies with the process.
		archivers = append(archivers, collect.WriterArchiver{W: f})
		flush = f.Close
	}
	var store *archive.Store
	if o.store != "" {
		var err error
		store, err = archive.Open(archive.Config{Dir: o.store})
		if err != nil {
			return err
		}
		archivers = append(archivers, store)
	}

	cfg := collect.CollectorConfig{DedupWindow: o.dedupWindow}
	if len(archivers) > 0 {
		cfg.Archive = archivers
	}
	c := collect.NewCollector(cfg)

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	var pc net.PacketConn
	if o.udp != "" {
		pc, err = net.ListenPacket("udp", o.udp)
		if err != nil {
			ln.Close()
			return err
		}
		go c.ServeUDP(pc)
	}

	mux := http.NewServeMux()
	mux.Handle("/", c.Handler())
	mux.HandleFunc("/tail", tailHandler(c))
	if store != nil {
		archive.QueryHandler{Store: store}.Register(mux)
	}

	fmt.Fprintf(out, "collecting on http://%s (/ingest, /report/{run}, /metrics, /healthz, /tail)\n", ln.Addr())
	if store != nil {
		fmt.Fprintf(out, "columnar store at %s (/query, /runs)\n", o.store)
	}
	if pc != nil {
		fmt.Fprintf(out, "udp event lane on %s\n", pc.LocalAddr())
	}
	if o.ready != nil {
		o.ready <- ln.Addr().String()
		if pc != nil {
			o.ready <- pc.LocalAddr().String()
		}
	}

	hs := &http.Server{Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		if pc != nil {
			pc.Close()
		}
		return err
	case <-ctx.Done():
	}

	// Drain: stop accepting, finish in-flight ingests, then close the
	// archive. Every acknowledged frame is already with the OS
	// (persistence gates the ACK); what remains is sealing the columnar
	// WAL tails into blocks for offline readers.
	fmt.Fprintln(errw, "bbacollect: shutting down")
	if pc != nil {
		pc.Close()
	}
	shctx, cancel := context.WithTimeout(context.Background(), o.grace)
	defer cancel()
	shutdownErr := hs.Shutdown(shctx)
	if flush != nil {
		if err := flush(); err != nil {
			return err
		}
	}
	if store != nil {
		// Seal the WAL tails into blocks so offline readers get columnar
		// data, then flush.
		if err := store.CompactAll(); err != nil {
			return err
		}
		if err := store.Close(); err != nil {
			return err
		}
	}
	printStats(errw, c.Stats())
	if shutdownErr != nil && !errors.Is(shutdownErr, context.DeadlineExceeded) {
		return shutdownErr
	}
	return nil
}

// tailHandler streams admitted event batches to the client as journal
// JSONL, flushing per batch — `curl /tail?run=r` is a live fleet log. A
// client that cannot keep up misses batches (the subscription buffer
// drops) rather than stalling ingest.
func tailHandler(c *collect.Collector) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		runFilter := r.FormValue("run")
		fl, ok := w.(http.Flusher)
		if !ok {
			http.Error(w, "streaming unsupported", http.StatusInternalServerError)
			return
		}
		ch, cancel := c.Subscribe(256)
		defer cancel()
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		fl.Flush()
		for {
			select {
			case msg, ok := <-ch:
				if !ok {
					return
				}
				if runFilter != "" && msg.Run != runFilter {
					continue
				}
				if _, err := w.Write(msg.Payload); err != nil {
					return
				}
				fl.Flush()
			case <-r.Context().Done():
				return
			}
		}
	}
}

// printStats summarizes the daemon's lifetime on shutdown.
func printStats(w io.Writer, s collect.CollectorStats) {
	var frames int64
	for _, n := range s.Frames {
		frames += n
	}
	fmt.Fprintf(w, "collected: %d frames (%d events, %d shards) across %d runs (%d ended, %d streams); %d duplicates, %d bad, %d retried\n",
		frames, s.Events, s.Shards, s.Runs, s.RunsEnded, s.Streams,
		s.FramesDup, s.FramesBad, s.FramesRetry)
	if s.ArchiveErrors > 0 {
		fmt.Fprintf(w, "ARCHIVE DEGRADED: %d event frames NACKed unpersisted\n", s.ArchiveErrors)
	}
}
