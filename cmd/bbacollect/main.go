// Command bbacollect is the fleet collection daemon: it ingests telemetry
// frames shipped by bbacampaign (or any internal/collect Shipper) over
// HTTP POST and/or UDP, deduplicates them per (run, session) stream, folds
// shard accumulators into campaign checkpoints exactly once, and serves
// the finished report.
//
// Endpoints:
//
//	POST /ingest        one frame per request body
//	GET  /report/{run}  the aggregated report once the run has ended
//	GET  /metrics       Prometheus-text counters
//	GET  /healthz       liveness
//
// An optional -archive file receives every admitted event batch as
// telemetry journal JSONL — the fleet's raw event log, duplicates already
// removed. SIGINT/SIGTERM drains in-flight ingests, flushes the archive
// and exits.
//
// Example:
//
//	bbacollect -addr 127.0.0.1:8406 -udp 127.0.0.1:8406 -archive fleet.jsonl &
//	bbacampaign -sessions 20000 -ship http://127.0.0.1:8406
//	curl http://127.0.0.1:8406/metrics
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bba/internal/collect"
)

type options struct {
	addr        string
	udp         string
	archive     string
	dedupWindow int
	grace       time.Duration
	// ready is a test seam: when non-nil it receives the bound HTTP
	// address once the daemon is serving, then the UDP address if -udp
	// was given.
	ready chan<- string
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "127.0.0.1:8406", "HTTP listen address (ingest, reports, metrics)")
	flag.StringVar(&o.udp, "udp", "", "UDP listen address for the fire-and-forget event lane (default off)")
	flag.StringVar(&o.archive, "archive", "", "append admitted event batches to this journal JSONL file")
	flag.IntVar(&o.dedupWindow, "dedup-window", collect.DefaultDedupWindow, "per-stream out-of-order admission window, in frames")
	flag.DurationVar(&o.grace, "grace", 5*time.Second, "drain deadline for in-flight ingests on shutdown")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Stdout, os.Stderr, o); err != nil {
		fmt.Fprintln(os.Stderr, "bbacollect:", err)
		os.Exit(1)
	}
}

// run serves until ctx is cancelled, then drains and flushes the archive.
func run(ctx context.Context, out, errw io.Writer, o options) error {
	var archive io.Writer
	var flush func() error
	if o.archive != "" {
		f, err := os.OpenFile(o.archive, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		bw := bufio.NewWriter(f)
		archive = bw
		flush = func() error {
			if err := bw.Flush(); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}
	}

	c := collect.NewCollector(collect.CollectorConfig{
		DedupWindow: o.dedupWindow,
		Archive:     archive,
	})

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	var pc net.PacketConn
	if o.udp != "" {
		pc, err = net.ListenPacket("udp", o.udp)
		if err != nil {
			ln.Close()
			return err
		}
		go c.ServeUDP(pc)
	}

	fmt.Fprintf(out, "collecting on http://%s (/ingest, /report/{run}, /metrics, /healthz)\n", ln.Addr())
	if pc != nil {
		fmt.Fprintf(out, "udp event lane on %s\n", pc.LocalAddr())
	}
	if o.ready != nil {
		o.ready <- ln.Addr().String()
		if pc != nil {
			o.ready <- pc.LocalAddr().String()
		}
	}

	hs := &http.Server{Handler: c.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		if pc != nil {
			pc.Close()
		}
		return err
	case <-ctx.Done():
	}

	// Drain: stop accepting, finish in-flight ingests, then flush the
	// archive so every acknowledged frame is on disk.
	fmt.Fprintln(errw, "bbacollect: shutting down")
	if pc != nil {
		pc.Close()
	}
	shctx, cancel := context.WithTimeout(context.Background(), o.grace)
	defer cancel()
	shutdownErr := hs.Shutdown(shctx)
	if flush != nil {
		if err := flush(); err != nil {
			return err
		}
	}
	printStats(errw, c.Stats())
	if shutdownErr != nil && !errors.Is(shutdownErr, context.DeadlineExceeded) {
		return shutdownErr
	}
	return nil
}

// printStats summarizes the daemon's lifetime on shutdown.
func printStats(w io.Writer, s collect.CollectorStats) {
	var frames int64
	for _, n := range s.Frames {
		frames += n
	}
	fmt.Fprintf(w, "collected: %d frames (%d events, %d shards) across %d runs (%d ended, %d streams); %d duplicates, %d bad, %d retried\n",
		frames, s.Events, s.Shards, s.Runs, s.RunsEnded, s.Streams,
		s.FramesDup, s.FramesBad, s.FramesRetry)
}
