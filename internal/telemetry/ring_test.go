package telemetry

import "testing"

// TestCountKindAllocFree pins the O(1)-allocation contract: counting a kind
// must not copy the retained buffer (the old implementation went through
// Events(), cloning every retained event per call).
func TestCountKindAllocFree(t *testing.T) {
	r := NewRing(4096)
	for i := 0; i < 6000; i++ { // wrap the ring so the full path is covered
		k := ChunkRequest
		if i%3 == 0 {
			k = RebufferStart
		}
		r.OnEvent(Event{Kind: k, Chunk: i})
	}
	allocs := testing.AllocsPerRun(100, func() {
		r.CountKind(RebufferStart)
	})
	if allocs != 0 {
		t.Errorf("CountKind allocates %.1f per call, want 0", allocs)
	}
}

// TestCountKindWrapped cross-checks the in-place count against Events() on
// both a partially filled and a wrapped ring.
func TestCountKindWrapped(t *testing.T) {
	for _, total := range []int{5, 23} { // capacity 16: one short, one wrapped
		r := NewRing(16)
		for i := 0; i < total; i++ {
			k := ChunkComplete
			if i%4 == 0 {
				k = RateSwitch
			}
			r.OnEvent(Event{Kind: k})
		}
		want := 0
		for _, e := range r.Events() {
			if e.Kind == RateSwitch {
				want++
			}
		}
		if got := r.CountKind(RateSwitch); got != want {
			t.Errorf("total=%d: CountKind = %d, Events scan = %d", total, got, want)
		}
	}
}
