package dash

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"
)

// OriginConfig configures the serving shell around a chunk Server.
type OriginConfig struct {
	// Metrics, when non-nil, is served at /metrics (wire a
	// *telemetry.Prom that is also the Server's Observer).
	Metrics http.Handler
	// MaxConns caps the connections the origin serves concurrently
	// (0 = unbounded). Excess dials queue in the kernel accept backlog
	// instead of each spawning a serving goroutine — the bound that keeps
	// an overloaded origin degrading by queueing rather than by
	// collapsing. See DESIGN §14 for the load-ramp evidence.
	MaxConns int
	// ShutdownGrace bounds how long Close waits for in-flight chunk
	// downloads before closing their connections (default 5 s).
	ShutdownGrace time.Duration
}

// Origin is a bound, serving dash origin: the chunk Server plus /metrics
// and /healthz on one listener. It is the Serve-style entry point both
// cmd/dashserver and the soak rig boot instances through — ask for
// address ":0" and read the bound address back from Addr, so parallel
// instances never race on a port.
type Origin struct {
	// Server is the underlying chunk server (fault injection, observer
	// and latency knobs live there).
	Server *Server

	cfg  OriginConfig
	ln   net.Listener
	hs   *http.Server
	addr string

	done     chan struct{}
	serveErr error
}

// StartOrigin binds addr (host:port; port 0 picks a free port) and serves
// srv plus the observability endpoints on it in a background goroutine.
func StartOrigin(addr string, srv *Server, cfg OriginConfig) (*Origin, error) {
	if srv == nil {
		return nil, fmt.Errorf("dash: StartOrigin with nil server")
	}
	if cfg.ShutdownGrace <= 0 {
		cfg.ShutdownGrace = 5 * time.Second
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	if cfg.MaxConns > 0 {
		ln = &limitListener{Listener: ln, sem: make(chan struct{}, cfg.MaxConns)}
	}
	o := &Origin{
		Server: srv,
		cfg:    cfg,
		ln:     ln,
		addr:   ln.Addr().String(),
		done:   make(chan struct{}),
	}
	o.hs = &http.Server{Handler: o.mux()}
	go func() {
		if err := o.hs.Serve(ln); err != nil && err != http.ErrServerClosed {
			o.serveErr = err
		}
		close(o.done)
	}()
	return o, nil
}

// Addr returns the bound listen address (host:port), with the real port
// when the origin was started on ":0".
func (o *Origin) Addr() string { return o.addr }

// URL returns the origin's base URL, the form ClientConfig endpoints take.
func (o *Origin) URL() string { return "http://" + o.addr }

// Done is closed when the serve loop exits; Err reports why (nil for a
// clean shutdown).
func (o *Origin) Done() <-chan struct{} { return o.done }

// Err returns the serve loop's terminal error. Only valid after Done is
// closed.
func (o *Origin) Err() error { return o.serveErr }

// Close shuts the origin down gracefully, draining in-flight downloads up
// to the configured grace (bounded further by ctx), and returns the serve
// loop's error, if any.
func (o *Origin) Close(ctx context.Context) error {
	shctx, cancel := context.WithTimeout(ctx, o.cfg.ShutdownGrace)
	defer cancel()
	err := o.hs.Shutdown(shctx)
	<-o.done
	if o.serveErr != nil {
		return o.serveErr
	}
	return err
}

// mux mounts the chunk server alongside the observability endpoints.
func (o *Origin) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/", o.Server)
	if o.cfg.Metrics != nil {
		mux.Handle("/metrics", o.cfg.Metrics)
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		v := o.Server.Video()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"status":   "ok",
			"title":    v.Title,
			"chunks":   v.NumChunks(),
			"requests": o.Server.Requests(),
		})
	})
	return mux
}

// limitListener bounds concurrently-open accepted connections with a
// semaphore acquired before each Accept and released when the accepted
// connection closes. The same shape as x/net/netutil's LimitListener,
// inlined because the container carries no external modules.
type limitListener struct {
	net.Listener
	sem chan struct{}
}

func (l *limitListener) Accept() (net.Conn, error) {
	l.sem <- struct{}{}
	c, err := l.Listener.Accept()
	if err != nil {
		<-l.sem
		return nil, err
	}
	return &limitConn{Conn: c, sem: l.sem}, nil
}

type limitConn struct {
	net.Conn
	sem  chan struct{}
	once sync.Once
}

func (c *limitConn) Close() error {
	err := c.Conn.Close()
	c.once.Do(func() { <-c.sem })
	return err
}
