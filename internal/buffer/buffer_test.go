package buffer

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestNewPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) did not panic")
		}
	}()
	New(0)
}

func TestPlaybackStartsOnFirstChunk(t *testing.T) {
	b := New(DefaultMax)
	if b.Started() || b.Playing() {
		t.Error("fresh buffer should not be playing")
	}
	// Join delay: time before the first chunk does not count as played or
	// stalled.
	b.Advance(5 * time.Second)
	if b.Played() != 0 || b.StallTime() != 0 || b.Rebuffers() != 0 {
		t.Error("pre-playback time was accounted")
	}
	if err := b.AddChunk(4 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !b.Playing() {
		t.Error("playback should start with the first chunk")
	}
	if b.Level() != 4*time.Second {
		t.Errorf("level = %v", b.Level())
	}
}

func TestDrainAndPlay(t *testing.T) {
	b := New(DefaultMax)
	must(t, b.AddChunk(8*time.Second))
	b.Advance(3 * time.Second)
	if b.Level() != 5*time.Second {
		t.Errorf("level = %v, want 5s", b.Level())
	}
	if b.Played() != 3*time.Second {
		t.Errorf("played = %v, want 3s", b.Played())
	}
	if b.Rebuffers() != 0 {
		t.Errorf("rebuffers = %d", b.Rebuffers())
	}
}

func TestRebufferEvent(t *testing.T) {
	b := New(DefaultMax)
	b.SetResume(0) // classic semantics: resume on first arrival
	must(t, b.AddChunk(4*time.Second))
	// A 10s download against a 4s buffer: 4s played, 6s stalled.
	b.Advance(10 * time.Second)
	if b.Rebuffers() != 1 {
		t.Fatalf("rebuffers = %d, want 1", b.Rebuffers())
	}
	if b.StallTime() != 6*time.Second {
		t.Errorf("stall = %v, want 6s", b.StallTime())
	}
	if b.Played() != 4*time.Second {
		t.Errorf("played = %v, want 4s", b.Played())
	}
	if b.Playing() {
		t.Error("should be stalled")
	}
	// Stall continues across further waiting without double-counting the
	// event.
	b.Advance(5 * time.Second)
	if b.Rebuffers() != 1 {
		t.Errorf("rebuffers = %d after continued stall, want 1", b.Rebuffers())
	}
	if b.StallTime() != 11*time.Second {
		t.Errorf("stall = %v, want 11s", b.StallTime())
	}
	// Chunk arrival ends the stall.
	must(t, b.AddChunk(4*time.Second))
	if !b.Playing() {
		t.Error("arrival should resume playback")
	}
	// A later dry spell is a distinct event.
	b.Advance(10 * time.Second)
	if b.Rebuffers() != 2 {
		t.Errorf("rebuffers = %d, want 2", b.Rebuffers())
	}
}

func TestExactDrainIsNotARebuffer(t *testing.T) {
	b := New(DefaultMax)
	must(t, b.AddChunk(4*time.Second))
	// Chunk arrives exactly as the buffer empties: no stall, no event.
	b.Advance(4 * time.Second)
	if b.Rebuffers() != 0 {
		t.Errorf("rebuffers = %d, want 0 on exact drain", b.Rebuffers())
	}
	if b.Level() != 0 {
		t.Errorf("level = %v", b.Level())
	}
	must(t, b.AddChunk(4*time.Second))
	if !b.Playing() {
		t.Error("should be playing")
	}
}

func TestResumeThresholdCoalescesStalls(t *testing.T) {
	// With capacity below the lowest video rate a player without a resume
	// threshold would record one rebuffer per chunk; the threshold
	// coalesces the starvation into a single longer event.
	b := New(DefaultMax) // default resume: 8 s (two chunks)
	must(t, b.AddChunk(4*time.Second))
	b.Advance(10 * time.Second) // starve: stall begins
	if b.Rebuffers() != 1 {
		t.Fatalf("rebuffers = %d", b.Rebuffers())
	}
	// One chunk arrives but is below the threshold: still stalled, and
	// critically NOT a new rebuffer event.
	must(t, b.AddChunk(4*time.Second))
	if b.Playing() {
		t.Error("resumed below the threshold")
	}
	b.Advance(10 * time.Second)
	if b.Rebuffers() != 1 {
		t.Errorf("rebuffers = %d, want the same single event", b.Rebuffers())
	}
	// The second chunk reaches 8 s: playback resumes.
	must(t, b.AddChunk(4*time.Second))
	if !b.Playing() {
		t.Error("did not resume at the threshold")
	}
	// All starvation time was accounted to the one event.
	if b.StallTime() != 16*time.Second {
		t.Errorf("stall = %v, want 16s", b.StallTime())
	}
}

func TestResume(t *testing.T) {
	b := New(DefaultMax)
	must(t, b.AddChunk(4*time.Second))
	b.Advance(10 * time.Second)
	must(t, b.AddChunk(4*time.Second)) // below threshold: still stalled
	b.Resume()
	if !b.Playing() {
		t.Error("Resume did not end the stall")
	}
	// Resume on a never-started buffer is a no-op.
	fresh := New(DefaultMax)
	fresh.Resume()
	if fresh.Playing() {
		t.Error("Resume started playback without any chunk")
	}
}

func TestSetResumeClampsNegative(t *testing.T) {
	b := New(DefaultMax)
	b.SetResume(-time.Second)
	must(t, b.AddChunk(4*time.Second))
	b.Advance(10 * time.Second)
	must(t, b.AddChunk(4*time.Second))
	if !b.Playing() {
		t.Error("zero threshold should resume on first arrival")
	}
}

func TestAddChunkValidation(t *testing.T) {
	b := New(DefaultMax)
	if err := b.AddChunk(0); err == nil {
		t.Error("zero-duration chunk accepted")
	}
	if err := b.AddChunk(-time.Second); err == nil {
		t.Error("negative chunk accepted")
	}
}

func TestOverflowClampsAndReports(t *testing.T) {
	b := New(10 * time.Second)
	must(t, b.AddChunk(8*time.Second))
	err := b.AddChunk(4 * time.Second)
	if err == nil {
		t.Fatal("overflow not reported")
	}
	if b.Level() != 10*time.Second {
		t.Errorf("level = %v, want clamped 10s", b.Level())
	}
}

func TestSpaceQueries(t *testing.T) {
	b := New(10 * time.Second)
	must(t, b.AddChunk(8*time.Second))
	if !b.HasSpaceFor(2 * time.Second) {
		t.Error("2s should fit")
	}
	if b.HasSpaceFor(3 * time.Second) {
		t.Error("3s should not fit")
	}
	if got := b.TimeUntilSpaceFor(4 * time.Second); got != 2*time.Second {
		t.Errorf("TimeUntilSpaceFor(4s) = %v, want 2s", got)
	}
	if got := b.TimeUntilSpaceFor(time.Second); got != 0 {
		t.Errorf("TimeUntilSpaceFor(1s) = %v, want 0", got)
	}
}

func TestDrainRemaining(t *testing.T) {
	b := New(DefaultMax)
	must(t, b.AddChunk(4*time.Second))
	must(t, b.AddChunk(4*time.Second))
	b.Advance(time.Second)
	if got := b.DrainRemaining(); got != 7*time.Second {
		t.Errorf("DrainRemaining = %v, want 7s", got)
	}
	if b.Level() != 0 {
		t.Errorf("level = %v", b.Level())
	}
	if b.Played() != 8*time.Second {
		t.Errorf("played = %v, want 8s", b.Played())
	}
	// Without playback having started, there is nothing to drain.
	if got := New(DefaultMax).DrainRemaining(); got != 0 {
		t.Errorf("fresh DrainRemaining = %v", got)
	}
}

func TestAdvanceNonPositive(t *testing.T) {
	b := New(DefaultMax)
	must(t, b.AddChunk(4*time.Second))
	b.Advance(0)
	b.Advance(-time.Second)
	if b.Level() != 4*time.Second || b.Played() != 0 {
		t.Error("non-positive Advance changed state")
	}
}

// Property: accounting conserves time. For any sequence of operations,
// played + stalled equals total advanced time after playback start, and the
// level never goes negative or above capacity.
func TestQuickConservation(t *testing.T) {
	f := func(seed int64, steps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		b := New(DefaultMax)
		var advanced time.Duration
		must := func(err error) {} // overflow errors irrelevant here
		_ = must
		for i := 0; i < int(steps%60)+5; i++ {
			if rng.Intn(2) == 0 {
				d := time.Duration(rng.Intn(10000)) * time.Millisecond
				if b.Started() {
					advanced += d
				}
				b.Advance(d)
			} else if b.HasSpaceFor(4 * time.Second) {
				_ = b.AddChunk(4 * time.Second)
			}
			if b.Level() < 0 || b.Level() > b.Max() {
				return false
			}
		}
		return b.Played()+b.StallTime() == advanced
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: rebuffer events only occur when the buffer actually runs dry:
// as long as every Advance is shorter than the current level, no event
// fires.
func TestQuickNoSpuriousRebuffers(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := New(DefaultMax)
		_ = b.AddChunk(4 * time.Second)
		for i := 0; i < 50; i++ {
			// Always advance strictly less than the level.
			max := b.Level() - time.Millisecond
			if max > 0 {
				b.Advance(time.Duration(rng.Int63n(int64(max))))
			}
			if b.HasSpaceFor(4 * time.Second) {
				_ = b.AddChunk(4 * time.Second)
			}
		}
		return b.Rebuffers() == 0 && b.StallTime() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
