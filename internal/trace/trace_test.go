package trace

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"bba/internal/stats"
	"bba/internal/units"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err != ErrEmpty {
		t.Errorf("empty: err = %v, want ErrEmpty", err)
	}
	if _, err := New([]Segment{{Duration: 0, Rate: units.Mbps}}); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := New([]Segment{{Duration: time.Second, Rate: -1}}); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := New([]Segment{{Duration: time.Second, Rate: 0}}); err != nil {
		t.Error("zero rate (outage) should be valid")
	}
}

func TestNewCopiesInput(t *testing.T) {
	segs := []Segment{{Duration: time.Second, Rate: units.Mbps}}
	tr := MustNew(segs)
	segs[0].Rate = 5 * units.Mbps
	if tr.RateAt(0) != units.Mbps {
		t.Error("trace aliases caller's slice")
	}
}

func TestRateAt(t *testing.T) {
	tr := MustNew([]Segment{
		{Duration: 10 * time.Second, Rate: 5 * units.Mbps},
		{Duration: 20 * time.Second, Rate: 1 * units.Mbps},
	})
	cases := []struct {
		at   time.Duration
		want units.BitRate
	}{
		{-time.Second, 5 * units.Mbps},
		{0, 5 * units.Mbps},
		{9*time.Second + 999*time.Millisecond, 5 * units.Mbps},
		{10 * time.Second, 1 * units.Mbps},
		{29 * time.Second, 1 * units.Mbps},
		{1000 * time.Second, 1 * units.Mbps}, // persists past the end
	}
	for _, c := range cases {
		if got := tr.RateAt(c.at); got != c.want {
			t.Errorf("RateAt(%v) = %v, want %v", c.at, got, c.want)
		}
	}
}

func TestBytesBetween(t *testing.T) {
	tr := MustNew([]Segment{
		{Duration: 10 * time.Second, Rate: 8 * units.Mbps}, // 1 MB/s
		{Duration: 10 * time.Second, Rate: 4 * units.Mbps}, // 0.5 MB/s
	})
	cases := []struct {
		from, to time.Duration
		want     int64
	}{
		{0, 10 * time.Second, 10_000_000},
		{0, 20 * time.Second, 15_000_000},
		{5 * time.Second, 15 * time.Second, 7_500_000},
		{10 * time.Second, 30 * time.Second, 10_000_000}, // last segment persists
		{5 * time.Second, 5 * time.Second, 0},
		{10 * time.Second, 5 * time.Second, 0},
		{-5 * time.Second, 5 * time.Second, 5_000_000},
	}
	for _, c := range cases {
		if got := tr.BytesBetween(c.from, c.to); got != c.want {
			t.Errorf("BytesBetween(%v,%v) = %d, want %d", c.from, c.to, got, c.want)
		}
	}
}

func TestDownloadTime(t *testing.T) {
	tr := MustNew([]Segment{
		{Duration: 4 * time.Second, Rate: 2 * units.Mbps},
		{Duration: 10 * time.Second, Rate: 8 * units.Mbps},
	})
	// 1 MB starting at t=0: first 4s deliver 1 Mb/s·... — 2Mb/s·4s = 1 MB
	// exactly, so the download completes exactly at 4s.
	d, ok := tr.DownloadTime(0, 1_000_000)
	if !ok || d != 4*time.Second {
		t.Errorf("DownloadTime = %v, %v; want 4s, true", d, ok)
	}
	// Spanning into the second segment: 2 MB total, 1 MB in first 4s, the
	// second MB at 1 MB/s takes 1s.
	d, ok = tr.DownloadTime(0, 2_000_000)
	if !ok || d != 5*time.Second {
		t.Errorf("DownloadTime = %v, %v; want 5s, true", d, ok)
	}
	// Starting mid-trace.
	d, ok = tr.DownloadTime(4*time.Second, 1_000_000)
	if !ok || d != time.Second {
		t.Errorf("DownloadTime mid = %v, %v; want 1s, true", d, ok)
	}
	// Zero bytes.
	if d, ok := tr.DownloadTime(0, 0); !ok || d != 0 {
		t.Errorf("zero bytes = %v, %v", d, ok)
	}
}

func TestDownloadTimeTerminalOutage(t *testing.T) {
	tr := MustNew([]Segment{
		{Duration: time.Second, Rate: units.Mbps},
		{Duration: time.Second, Rate: 0},
	})
	// 1 Mb fits in the first second exactly.
	if _, ok := tr.DownloadTime(0, 125_000); !ok {
		t.Error("first-segment transfer should complete")
	}
	// One byte more can never complete: final segment is a dead link.
	if _, ok := tr.DownloadTime(0, 125_001); ok {
		t.Error("transfer through terminal outage should not complete")
	}
}

func TestDownloadTimeMidOutageRecovers(t *testing.T) {
	tr := MustNew([]Segment{
		{Duration: time.Second, Rate: 0},
		{Duration: 10 * time.Second, Rate: units.Mbps},
	})
	d, ok := tr.DownloadTime(0, 125_000)
	if !ok || d != 2*time.Second {
		t.Errorf("download through outage = %v, %v; want 2s", d, ok)
	}
}

func TestStep(t *testing.T) {
	tr := Step(5*units.Mbps, 350*units.Kbps, 25*time.Second, 300*time.Second)
	if got := tr.RateAt(10 * time.Second); got != 5*units.Mbps {
		t.Errorf("before step: %v", got)
	}
	if got := tr.RateAt(30 * time.Second); got != 350*units.Kbps {
		t.Errorf("after step: %v", got)
	}
	if tr.Total() != 300*time.Second {
		t.Errorf("total = %v", tr.Total())
	}
	// Degenerate step positions.
	if got := Step(units.Mbps, 2*units.Mbps, 0, time.Minute).RateAt(0); got != 2*units.Mbps {
		t.Errorf("step at 0: %v", got)
	}
	if got := Step(units.Mbps, 2*units.Mbps, time.Hour, time.Minute).RateAt(0); got != units.Mbps {
		t.Errorf("step beyond end: %v", got)
	}
}

func TestMarkovVariabilityCalibration(t *testing.T) {
	// Sigma chosen for a 75/25 ratio of 5.6 must produce a sampled ratio in
	// that ballpark (wide tolerance: finite sample).
	sigma := SigmaForQuartileRatio(5.6)
	rng := rand.New(rand.NewSource(42))
	tr := Markov(MarkovConfig{
		Base:     4 * units.Mbps,
		Sigma:    sigma,
		Duration: 4 * time.Hour,
	}, rng)
	ratio, err := stats.QuartileRatio(tr.Rates(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if ratio < 3.0 || ratio > 10.0 {
		t.Errorf("quartile ratio = %v, want within [3, 10] around 5.6", ratio)
	}
}

func TestMarkovStable(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := Markov(MarkovConfig{Base: 4 * units.Mbps, Sigma: 0, Duration: time.Hour}, rng)
	ratio, err := stats.QuartileRatio(tr.Rates(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if ratio != 1 {
		t.Errorf("sigma=0 ratio = %v, want 1", ratio)
	}
}

func TestMarkovDeterministic(t *testing.T) {
	a := Markov(MarkovConfig{Base: 4 * units.Mbps, Sigma: 1, Duration: time.Hour}, rand.New(rand.NewSource(9)))
	b := Markov(MarkovConfig{Base: 4 * units.Mbps, Sigma: 1, Duration: time.Hour}, rand.New(rand.NewSource(9)))
	sa, sb := a.Segments(), b.Segments()
	if len(sa) != len(sb) {
		t.Fatalf("lengths differ: %d vs %d", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("segment %d differs: %v vs %v", i, sa[i], sb[i])
		}
	}
}

func TestMarkovDefaults(t *testing.T) {
	tr := Markov(MarkovConfig{}, rand.New(rand.NewSource(2)))
	if tr.Total() != time.Hour {
		t.Errorf("default duration = %v, want 1h", tr.Total())
	}
	for _, s := range tr.Segments() {
		if s.Rate < 64*units.Kbps {
			t.Errorf("rate %v below default floor", s.Rate)
		}
	}
}

func TestWithOutages(t *testing.T) {
	base := Constant(5*units.Mbps, 60*time.Second)
	tr, err := WithOutages(base, []Outage{
		{Start: 10 * time.Second, Duration: 20 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.RateAt(5 * time.Second); got != 5*units.Mbps {
		t.Errorf("before outage: %v", got)
	}
	if got := tr.RateAt(15 * time.Second); got != 0 {
		t.Errorf("during outage: %v", got)
	}
	if got := tr.RateAt(35 * time.Second); got != 5*units.Mbps {
		t.Errorf("after outage: %v", got)
	}
	if tr.Total() != 60*time.Second {
		t.Errorf("total = %v", tr.Total())
	}
}

func TestWithOutagesValidation(t *testing.T) {
	base := Constant(units.Mbps, time.Minute)
	if _, err := WithOutages(base, []Outage{{Start: 0, Duration: 0}}); err == nil {
		t.Error("zero-duration outage accepted")
	}
	if _, err := WithOutages(base, []Outage{
		{Start: 0, Duration: 10 * time.Second},
		{Start: 5 * time.Second, Duration: time.Second},
	}); err == nil {
		t.Error("overlapping outages accepted")
	}
	if _, err := WithOutages(base, []Outage{{Start: 2 * time.Minute, Duration: time.Second}}); err == nil {
		t.Error("outage past trace end accepted")
	}
}

func TestWithOutagesPreservesByteIntegral(t *testing.T) {
	base := MustNew([]Segment{
		{Duration: 30 * time.Second, Rate: 2 * units.Mbps},
		{Duration: 30 * time.Second, Rate: 6 * units.Mbps},
	})
	tr, err := WithOutages(base, []Outage{{Start: 20 * time.Second, Duration: 20 * time.Second}})
	if err != nil {
		t.Fatal(err)
	}
	// Bytes outside the outage must match the base trace.
	if got, want := tr.BytesBetween(0, 20*time.Second), base.BytesBetween(0, 20*time.Second); got != want {
		t.Errorf("pre-outage bytes = %d, want %d", got, want)
	}
	if got, want := tr.BytesBetween(40*time.Second, 60*time.Second), base.BytesBetween(40*time.Second, 60*time.Second); got != want {
		t.Errorf("post-outage bytes = %d, want %d", got, want)
	}
	if got := tr.BytesBetween(20*time.Second, 40*time.Second); got != 0 {
		t.Errorf("outage bytes = %d, want 0", got)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	orig := MustNew([]Segment{
		{Duration: 1500 * time.Millisecond, Rate: 5 * units.Mbps},
		{Duration: 30 * time.Second, Rate: 0},
		{Duration: time.Minute, Rate: 235 * units.Kbps},
	})
	var buf bytes.Buffer
	if err := orig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sa, sb := orig.Segments(), back.Segments()
	if len(sa) != len(sb) {
		t.Fatalf("segment count: %d vs %d", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i].Rate != sb[i].Rate {
			t.Errorf("segment %d rate: %v vs %v", i, sa[i].Rate, sb[i].Rate)
		}
		dd := sa[i].Duration - sb[i].Duration
		if dd < -time.Microsecond || dd > time.Microsecond {
			t.Errorf("segment %d duration: %v vs %v", i, sa[i].Duration, sb[i].Duration)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"1.0",             // too few fields
		"1.0,2,3",         // too many fields
		"abc,1000",        // bad duration
		"1.0,notanumber",  // bad rate
		"",                // empty -> ErrEmpty
		"# only comments", // comments only -> ErrEmpty
	}
	for _, in := range cases {
		if _, err := ReadCSV(bytes.NewBufferString(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
	// Comments and blanks are skipped.
	tr, err := ReadCSV(bytes.NewBufferString("# header\n\n2.0,1000000\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.RateAt(0) != units.BitRate(1_000_000) {
		t.Errorf("rate = %v", tr.RateAt(0))
	}
}

func TestScale(t *testing.T) {
	tr := Constant(2*units.Mbps, time.Minute).Scale(0.5)
	if got := tr.RateAt(0); got != units.Mbps {
		t.Errorf("scaled rate = %v", got)
	}
}

// Property: DownloadTime and BytesBetween are consistent — the bytes
// deliverable in the returned window equal (within rounding) the requested
// transfer size.
func TestQuickDownloadConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(seed int64, kb uint16, startMs uint16) bool {
		tr := Markov(MarkovConfig{
			Base:     3 * units.Mbps,
			Sigma:    1.0,
			Duration: 2 * time.Minute,
		}, rand.New(rand.NewSource(seed)))
		n := int64(kb%4000+1) * 1000
		start := time.Duration(startMs) * time.Millisecond
		d, ok := tr.DownloadTime(start, n)
		if !ok {
			return false // Markov floor guarantees completion
		}
		got := tr.BytesBetween(start, start+d)
		diff := got - n
		if diff < 0 {
			diff = -diff
		}
		// Rounding slack: one rate transition of up to 100 Mb/s over the
		// nanosecond quantization plus integer byte truncations.
		return diff <= 64
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: BytesBetween is additive over adjacent intervals.
func TestQuickBytesAdditive(t *testing.T) {
	f := func(seed int64, aMs, bMs, cMs uint16) bool {
		tr := Markov(MarkovConfig{
			Base:     2 * units.Mbps,
			Sigma:    1.2,
			Duration: time.Minute,
		}, rand.New(rand.NewSource(seed)))
		ts := []time.Duration{
			time.Duration(aMs) * time.Millisecond,
			time.Duration(bMs) * time.Millisecond,
			time.Duration(cMs) * time.Millisecond,
		}
		if ts[0] > ts[1] {
			ts[0], ts[1] = ts[1], ts[0]
		}
		if ts[1] > ts[2] {
			ts[1], ts[2] = ts[2], ts[1]
		}
		if ts[0] > ts[1] {
			ts[0], ts[1] = ts[1], ts[0]
		}
		whole := tr.BytesBetween(ts[0], ts[2])
		split := tr.BytesBetween(ts[0], ts[1]) + tr.BytesBetween(ts[1], ts[2])
		diff := whole - split
		if diff < 0 {
			diff = -diff
		}
		return diff <= 2 // integer truncation at the split point
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestConcat(t *testing.T) {
	a := Constant(units.Mbps, 10*time.Second)
	b := Constant(2*units.Mbps, 10*time.Second)
	tr, err := Concat(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Total() != 20*time.Second {
		t.Errorf("total = %v", tr.Total())
	}
	if tr.RateAt(5*time.Second) != units.Mbps || tr.RateAt(15*time.Second) != 2*units.Mbps {
		t.Error("concat order wrong")
	}
	if _, err := Concat(); err != ErrEmpty {
		t.Errorf("empty concat err = %v", err)
	}
}

func TestRepeat(t *testing.T) {
	base := MustNew([]Segment{
		{Duration: time.Second, Rate: units.Mbps},
		{Duration: time.Second, Rate: 2 * units.Mbps},
	})
	tr, err := base.Repeat(3)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Total() != 6*time.Second {
		t.Errorf("total = %v", tr.Total())
	}
	// Period 2: the pattern tiles.
	for _, at := range []time.Duration{0, 2 * time.Second, 4 * time.Second} {
		if tr.RateAt(at) != units.Mbps {
			t.Errorf("RateAt(%v) = %v", at, tr.RateAt(at))
		}
		if tr.RateAt(at+time.Second) != 2*units.Mbps {
			t.Errorf("RateAt(%v) = %v", at+time.Second, tr.RateAt(at+time.Second))
		}
	}
	if _, err := base.Repeat(0); err == nil {
		t.Error("repeat 0 accepted")
	}
}

func TestSlice(t *testing.T) {
	base := MustNew([]Segment{
		{Duration: 10 * time.Second, Rate: units.Mbps},
		{Duration: 10 * time.Second, Rate: 2 * units.Mbps},
		{Duration: 10 * time.Second, Rate: 3 * units.Mbps},
	})
	tr, err := base.Slice(5*time.Second, 25*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Total() != 20*time.Second {
		t.Errorf("total = %v", tr.Total())
	}
	if tr.RateAt(0) != units.Mbps || tr.RateAt(10*time.Second) != 2*units.Mbps || tr.RateAt(19*time.Second) != 3*units.Mbps {
		t.Error("slice contents wrong")
	}
	// Slicing past the end extends the final rate.
	ext, err := base.Slice(25*time.Second, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if ext.Total() != 35*time.Second || ext.RateAt(30*time.Second) != 3*units.Mbps {
		t.Errorf("extended slice: total %v rate %v", ext.Total(), ext.RateAt(30*time.Second))
	}
	for _, bad := range [][2]time.Duration{{-time.Second, time.Second}, {5 * time.Second, 5 * time.Second}, {40 * time.Second, 50 * time.Second}} {
		if _, err := base.Slice(bad[0], bad[1]); err == nil {
			t.Errorf("slice [%v,%v) accepted", bad[0], bad[1])
		}
	}
}

// Slicing then integrating equals integrating the original over the
// shifted window.
func TestQuickSliceConsistent(t *testing.T) {
	f := func(seed int64, aMs, bMs uint16) bool {
		tr := Markov(MarkovConfig{Base: 2 * units.Mbps, Sigma: 1, Duration: time.Minute}, rand.New(rand.NewSource(seed)))
		from := time.Duration(aMs%30000) * time.Millisecond
		length := time.Duration(bMs%20000+1000) * time.Millisecond
		sub, err := tr.Slice(from, from+length)
		if err != nil {
			return false
		}
		want := tr.BytesBetween(from, from+length)
		got := sub.BytesBetween(0, length)
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		return diff <= 16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
