package coord

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
)

// Handler returns the coordinator's HTTP interface:
//
//	POST /join       register a worker; returns the campaign spec
//	POST /lease      acquire a shard-range lease
//	POST /heartbeat  extend held leases
//	POST /complete   deliver one finished shard's accumulators
//	GET  /report     the finalized campaign report (409 until complete)
//	GET  /metrics    Prometheus text exposition
//	GET  /healthz    liveness JSON
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/join", post(c, func(req JoinRequest) (JoinResponse, error) { return c.Join(req) }))
	mux.HandleFunc("/lease", post(c, func(req LeaseRequest) (LeaseResponse, error) { return c.Acquire(req) }))
	mux.HandleFunc("/heartbeat", post(c, func(req HeartbeatRequest) (HeartbeatResponse, error) { return c.Heartbeat(req) }))
	mux.HandleFunc("/complete", post(c, func(req CompleteRequest) (CompleteResponse, error) { return c.Complete(req) }))
	mux.HandleFunc("/report", c.handleReport)
	mux.HandleFunc("/metrics", c.handleMetrics)
	mux.HandleFunc("/healthz", c.handleHealthz)
	return mux
}

// maxBody bounds request bodies; a shard completion carries six quantile
// sketches per group, far under this.
const maxBody = 16 << 20

// post adapts a typed request/response exchange to an HTTP handler.
func post[Req, Resp any](c *Coordinator, f func(Req) (Resp, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req Req
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody)).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp, err := f(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(resp)
	}
}

func (c *Coordinator) handleReport(w http.ResponseWriter, _ *http.Request) {
	body, err := c.Report()
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s := c.Stats()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"status":         "ok",
		"workers":        s.WorkersJoined,
		"shards_done":    s.ShardsDone,
		"shards_pending": s.ShardsPending,
		"shards_leased":  s.ShardsLeased,
		"complete":       s.Complete,
	})
}

// handleMetrics writes Prometheus text exposition by hand, the same
// stdlib-only approach as telemetry.Prom and the collect daemon.
func (c *Coordinator) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s := c.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b bytes.Buffer
	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("bba_coord_workers_joined_total", "Workers that have registered.", s.WorkersJoined)
	counter("bba_coord_leases_granted_total", "Shard-range leases issued (including steals).", s.LeasesGranted)
	counter("bba_coord_leases_stolen_total", "Work-stealing re-leases of straggler tails.", s.LeasesStolen)
	counter("bba_coord_leases_expired_total", "Leases that lapsed without completion.", s.LeasesExpired)
	counter("bba_coord_shards_reissued_total", "Shards returned to pending by lease expiry.", s.ShardsReissued)
	counter("bba_coord_shards_completed_total", "Shard completions folded exactly once.", s.Shards)
	counter("bba_coord_shards_duplicate_total", "Duplicate shard completions absorbed as no-ops.", s.ShardsDup)
	gauge("bba_coord_shards_pending", "Shards awaiting a lease.", int64(s.ShardsPending))
	gauge("bba_coord_shards_leased", "Shards under at least one live lease.", int64(s.ShardsLeased))
	gauge("bba_coord_shards_done", "Shards folded into the checkpoint.", int64(s.ShardsDone))
	gauge("bba_coord_leases_active", "Live leases.", int64(s.ActiveLeases))
	w.Write(b.Bytes())
}
