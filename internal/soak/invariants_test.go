package soak

import (
	"errors"
	"strings"
	"testing"
	"time"

	"bba/internal/dash"
	"bba/internal/player"
	"bba/internal/telemetry"
)

// rec builds a baseline session record the tests then distort.
func rec(events ...telemetry.Event) *SessionRecord {
	return &SessionRecord{
		Session:       "c0.s0.test",
		Algorithm:     "test",
		Events:        events,
		Result:        &player.Result{},
		Endpoints:     1,
		MaxAttempts:   6,
		ChunkDuration: 500 * time.Millisecond,
		ChunkTimeout:  2 * time.Second,
	}
}

func ev(kind telemetry.Kind) telemetry.Event {
	return telemetry.Event{Kind: kind, Session: "c0.s0.test"}
}

func hasViolation(t *testing.T, vs []Violation, inv, detail string) {
	t.Helper()
	for _, v := range vs {
		if v.Invariant == inv && strings.Contains(v.Detail, detail) {
			return
		}
	}
	t.Fatalf("no %s violation containing %q in %v", inv, detail, vs)
}

func hasCheck(checked []string, inv string) bool {
	for _, c := range checked {
		if c == inv {
			return true
		}
	}
	return false
}

func TestCheckSessionCleanPass(t *testing.T) {
	r := rec(ev(telemetry.SessionStart), ev(telemetry.ChunkRequest), ev(telemetry.SessionEnd))
	vs, checked := CheckSession(r)
	if len(vs) != 0 {
		t.Fatalf("clean session violated: %v", vs)
	}
	for _, want := range []string{InvTerminates, InvDegradeTerminates} {
		if !hasCheck(checked, want) {
			t.Errorf("%s not checked; checked=%v", want, checked)
		}
	}
	// Single endpoint, no reservoir reports, collector off: those
	// invariants must not count as evaluated.
	for _, skip := range []string{InvNoRebufferAboveReservoir, InvFailoverConverges, InvCollectorAgreement} {
		if hasCheck(checked, skip) {
			t.Errorf("%s checked on a session it cannot apply to", skip)
		}
	}
}

func TestTerminates(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*SessionRecord)
		detail string
	}{
		{"hard error", func(r *SessionRecord) { r.Err = errors.New("boom") }, "session error"},
		{"empty journal", func(r *SessionRecord) { r.Events = nil }, "no events"},
		{"missing start", func(r *SessionRecord) { r.Events = r.Events[1:] }, "does not open"},
		{"missing end", func(r *SessionRecord) { r.Events = r.Events[:len(r.Events)-1] }, "not session_end"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := rec(ev(telemetry.SessionStart), ev(telemetry.ChunkRequest), ev(telemetry.SessionEnd))
			tc.mutate(r)
			vs, checked := CheckSession(r)
			if !hasCheck(checked, InvTerminates) {
				t.Fatal("terminates not checked")
			}
			hasViolation(t, vs, InvTerminates, tc.detail)
		})
	}
}

func TestDegradeBoundsRetries(t *testing.T) {
	r := rec(ev(telemetry.SessionStart), ev(telemetry.SessionEnd))
	r.MaxAttempts = 3 // budget: 2 retries per chunk
	retry := ev(telemetry.ChunkRetry)
	retry.Chunk = 4
	r.Events = []telemetry.Event{ev(telemetry.SessionStart), retry, retry, retry, ev(telemetry.SessionEnd)}
	vs, _ := CheckSession(r)
	hasViolation(t, vs, InvDegradeTerminates, "retried 3 times, budget 2")

	// Exactly at budget: fine.
	r.Events = []telemetry.Event{ev(telemetry.SessionStart), retry, retry, ev(telemetry.SessionEnd)}
	if vs, _ := CheckSession(r); len(vs) != 0 {
		t.Fatalf("within-budget retries violated: %v", vs)
	}
}

func TestDegradeIncompleteNeedsOutageMarker(t *testing.T) {
	r := rec(ev(telemetry.SessionStart), ev(telemetry.SessionEnd))
	r.Result = &player.Result{Incomplete: true}
	vs, _ := CheckSession(r)
	hasViolation(t, vs, InvDegradeTerminates, "no outage rebuffer marker")

	marker := ev(telemetry.RebufferStart)
	marker.Label = "outage"
	r.Events = []telemetry.Event{ev(telemetry.SessionStart), marker, ev(telemetry.SessionEnd)}
	if vs, _ := CheckSession(r); len(vs) != 0 {
		t.Fatalf("marked incomplete session violated: %v", vs)
	}
}

func TestReservoirInvariant(t *testing.T) {
	reservoir := ev(telemetry.ReservoirUpdate)
	reservoir.Reservoir = time.Second
	sample := ev(telemetry.BufferSample)
	sample.Buffer = 10 * time.Second
	stall := ev(telemetry.RebufferStart)
	stall.Chunk = 5

	// Buffer far above reservoir+slack when the stall begins: breach.
	r := rec(ev(telemetry.SessionStart), reservoir, sample, stall, ev(telemetry.SessionEnd))
	vs, checked := CheckSession(r)
	if !hasCheck(checked, InvNoRebufferAboveReservoir) {
		t.Fatal("reservoir invariant not checked despite a reservoir report")
	}
	hasViolation(t, vs, InvNoRebufferAboveReservoir, "above reservoir")

	// The same stall on a chunk that needed retries is the degrade
	// path's business, not the reservoir claim's.
	retry := ev(telemetry.ChunkRetry)
	retry.Chunk = 5
	r.Events = []telemetry.Event{ev(telemetry.SessionStart), reservoir, sample, retry, stall, ev(telemetry.SessionEnd)}
	if vs, _ := CheckSession(r); len(vs) != 0 {
		t.Fatalf("retried-chunk stall violated: %v", vs)
	}

	// An outage-labelled stall is exempt too.
	outage := stall
	outage.Label = "outage"
	r.Events = []telemetry.Event{ev(telemetry.SessionStart), reservoir, sample, outage, ev(telemetry.SessionEnd)}
	if vs, _ := CheckSession(r); len(vs) != 0 {
		t.Fatalf("outage stall violated: %v", vs)
	}

	// Low buffer at stall time: the paper permits it.
	low := ev(telemetry.BufferSample)
	low.Buffer = 200 * time.Millisecond
	r.Events = []telemetry.Event{ev(telemetry.SessionStart), reservoir, low, stall, ev(telemetry.SessionEnd)}
	if vs, _ := CheckSession(r); len(vs) != 0 {
		t.Fatalf("low-buffer stall violated: %v", vs)
	}

	// No reservoir report at all (estimator algorithms): not applicable.
	r.Events = []telemetry.Event{ev(telemetry.SessionStart), sample, stall, ev(telemetry.SessionEnd)}
	vs, checked = CheckSession(r)
	if hasCheck(checked, InvNoRebufferAboveReservoir) {
		t.Fatal("reservoir invariant checked without a reservoir report")
	}
	if len(vs) != 0 {
		t.Fatalf("unexpected violations: %v", vs)
	}
}

func TestFailoverConverges(t *testing.T) {
	away := ev(telemetry.Failover)
	away.RateIndex = 1
	back := ev(telemetry.Failover)
	back.RateIndex = 0

	r := rec(ev(telemetry.SessionStart), away, ev(telemetry.SessionEnd))
	r.Endpoints = 2
	r.TailChunks = dash.FailBackAfter
	vs, checked := CheckSession(r)
	if !hasCheck(checked, InvFailoverConverges) {
		t.Fatal("failover invariant not checked on a multi-endpoint session")
	}
	hasViolation(t, vs, InvFailoverConverges, "ended on endpoint 1")

	// A tail too short for a full fail-back streak makes convergence
	// undecidable: the same non-converged journal is not checked at all.
	r.TailChunks = dash.FailBackAfter - 1
	vs, checked = CheckSession(r)
	if hasCheck(checked, InvFailoverConverges) {
		t.Fatalf("failover invariant checked with tail %d < %d", r.TailChunks, dash.FailBackAfter)
	}
	if len(vs) != 0 {
		t.Fatalf("undecidable-tail session violated: %v", vs)
	}
	r.TailChunks = dash.FailBackAfter

	r.Events = []telemetry.Event{ev(telemetry.SessionStart), away, back, ev(telemetry.SessionEnd)}
	if vs, _ := CheckSession(r); len(vs) != 0 {
		t.Fatalf("converged session violated: %v", vs)
	}

	// No failover at all converges vacuously.
	r.Events = []telemetry.Event{ev(telemetry.SessionStart), ev(telemetry.SessionEnd)}
	if vs, _ := CheckSession(r); len(vs) != 0 {
		t.Fatalf("failover-free session violated: %v", vs)
	}
}

func TestCollectorAgreement(t *testing.T) {
	events := []telemetry.Event{ev(telemetry.SessionStart), ev(telemetry.ChunkRequest), ev(telemetry.SessionEnd)}
	var archived []byte
	for _, e := range events {
		archived = telemetry.AppendJSONL(archived, e)
	}

	r := rec(events...)
	r.Archive = archived
	vs, checked := CheckSession(r)
	if !hasCheck(checked, InvCollectorAgreement) {
		t.Fatal("collector invariant not checked despite an archive")
	}
	if len(vs) != 0 {
		t.Fatalf("byte-identical archive violated: %v", vs)
	}

	r.Archive = archived[:len(archived)-2]
	vs, _ = CheckSession(r)
	hasViolation(t, vs, InvCollectorAgreement, "!= local journal")

	r.Archive = archived
	r.Dropped = 3
	vs, _ = CheckSession(r)
	hasViolation(t, vs, InvCollectorAgreement, "dropped 3")
}

func TestInvariantNamesCoverChecks(t *testing.T) {
	names := InvariantNames()
	if len(names) != 5 {
		t.Fatalf("expected 5 invariants, got %v", names)
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate invariant name %q", n)
		}
		seen[n] = true
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Invariant: InvTerminates, Session: "c1.s2.BBA-1", Detail: "no events captured"}
	if got := v.String(); got != "terminates: c1.s2.BBA-1: no events captured" {
		t.Fatalf("String() = %q", got)
	}
}
