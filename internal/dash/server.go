// Package dash is the HTTP streaming substrate: a chunk server and a
// streaming client that exercise the ABR algorithms over a real HTTP path —
// TCP connections, HTTP requests, measured per-chunk downloads — instead of
// the virtual-time simulator. It mirrors the production setup the paper
// describes: "the client requests chunks of video from the server", each
// chunk a separate HTTP object, with the player measuring "how fast chunks
// arrive to estimate capacity".
//
// The server publishes a JSON manifest (ladder, chunk duration and the full
// per-chunk size matrix, which BBA-1's reservoir and chunk map need), a
// standards-shaped MPEG-DASH MPD at /manifest.mpd for interop, and serves
// deterministic filler bytes for every (rate, chunk) pair. Fault injection —
// added latency and per-chunk failures — supports testing the client's
// error handling.
package dash

import (
	"bytes"
	"encoding/json"
	"encoding/xml"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"bba/internal/faults"
	"bba/internal/media"
	"bba/internal/telemetry"
	"bba/internal/units"
)

// Manifest is the JSON document describing a title.
type Manifest struct {
	Title           string  `json:"title"`
	ChunkDurationMS int64   `json:"chunkDurationMs"`
	LadderBps       []int64 `json:"ladderBps"`
	NumChunks       int     `json:"numChunks"`
	// SizesBytes is indexed [rateIndex][chunkIndex].
	SizesBytes [][]int64 `json:"sizesBytes"`
}

// ManifestFor builds the manifest describing v.
func ManifestFor(v *media.Video) Manifest {
	m := Manifest{
		Title:           v.Title,
		ChunkDurationMS: v.ChunkDuration.Milliseconds(),
		NumChunks:       v.NumChunks(),
	}
	for _, r := range v.Ladder {
		m.LadderBps = append(m.LadderBps, int64(r))
	}
	for ri := range v.Ladder {
		m.SizesBytes = append(m.SizesBytes, v.ChunkSizes(ri))
	}
	return m
}

// Video reconstructs the media.Video the manifest describes.
func (m Manifest) Video() (*media.Video, error) {
	ladder := make(media.Ladder, len(m.LadderBps))
	for i, bps := range m.LadderBps {
		ladder[i] = units.BitRate(bps)
	}
	return media.FromSizes(m.Title, ladder, time.Duration(m.ChunkDurationMS)*time.Millisecond, m.SizesBytes)
}

// Server serves one title over HTTP:
//
//	GET /manifest.json                 full-information manifest
//	GET /manifest.mpd                  MPEG-DASH MPD
//	GET /master.m3u8                   HLS master playlist
//	GET /playlist/{rateIndex}.m3u8     HLS media playlist
//	GET /chunk/{rateIndex}/{chunkIndex}
//
// It implements http.Handler and is safe for concurrent use. Every
// manifest-shaped document (JSON, MPD, HLS master and media playlists) is
// rendered once at construction: the title is immutable, so re-rendering
// per request only burns CPU under load — the O(chunks) media-playlist
// render was the first bottleneck the load ramp exposed.
type Server struct {
	video     *media.Video
	manifest  []byte
	mpd       []byte
	master    []byte
	playlists [][]byte // per-rate media playlists, rendered once

	// Latency is added before each chunk response (first-byte delay).
	Latency time.Duration
	// FailChunk, when non-nil, makes matching chunk requests fail with
	// a 503 — fault injection for client retry tests.
	FailChunk func(rate, chunk int) bool
	// Injector, when non-nil, puts the server in fault-injecting mode:
	// chunk requests inside scheduled episodes suffer 503s, stalled
	// bodies, mid-download aborts and added first-byte latency, as the
	// injector decides.
	Injector *faults.HTTPInjector
	// Observer, when non-nil, receives server-side telemetry: a
	// ChunkRequest when a chunk request arrives and a ChunkComplete when
	// its body has been written (At is time since server start). Wire a
	// telemetry.Prom here to feed a /metrics endpoint.
	Observer telemetry.Observer

	start    time.Time
	requests atomic.Int64
}

// NewServer builds a Server for v.
func NewServer(v *media.Video) (*Server, error) {
	raw, err := json.Marshal(ManifestFor(v))
	if err != nil {
		return nil, err
	}
	mpd, err := xml.MarshalIndent(MPDFor(v), "", "  ")
	if err != nil {
		return nil, err
	}
	var master bytes.Buffer
	if err := WriteMasterPlaylist(&master, v); err != nil {
		return nil, err
	}
	playlists := make([][]byte, len(v.Ladder))
	for ri := range v.Ladder {
		var pl bytes.Buffer
		if err := WriteMediaPlaylist(&pl, v, ri); err != nil {
			return nil, err
		}
		playlists[ri] = pl.Bytes()
	}
	return &Server{
		video:     v,
		manifest:  raw,
		mpd:       append([]byte(xml.Header), mpd...),
		master:    master.Bytes(),
		playlists: playlists,
		start:     time.Now(),
	}, nil
}

// Requests returns the number of chunk requests served (including injected
// failures).
func (s *Server) Requests() int64 { return s.requests.Load() }

// Video returns the title the server serves.
func (s *Server) Video() *media.Video { return s.video }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/manifest.json":
		w.Header().Set("Content-Type", "application/json")
		w.Write(s.manifest)
	case r.URL.Path == "/manifest.mpd":
		w.Header().Set("Content-Type", "application/dash+xml")
		w.Write(s.mpd)
	case r.URL.Path == "/master.m3u8":
		w.Header().Set("Content-Type", "application/vnd.apple.mpegurl")
		w.Write(s.master)
	case strings.HasPrefix(r.URL.Path, "/playlist/"):
		s.serveMediaPlaylist(w, r)
	case strings.HasPrefix(r.URL.Path, "/chunk/"):
		s.serveChunk(w, r)
	default:
		http.NotFound(w, r)
	}
}

// serveMediaPlaylist serves /playlist/{rate}.m3u8.
func (s *Server) serveMediaPlaylist(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimSuffix(strings.TrimPrefix(r.URL.Path, "/playlist/"), ".m3u8")
	rate, err := strconv.Atoi(name)
	if err != nil || rate < 0 || rate >= len(s.video.Ladder) {
		http.Error(w, "unknown variant", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/vnd.apple.mpegurl")
	w.Write(s.playlists[rate])
}

func (s *Server) serveChunk(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	parts := strings.Split(strings.TrimPrefix(r.URL.Path, "/chunk/"), "/")
	if len(parts) != 2 {
		http.Error(w, "want /chunk/{rate}/{index}", http.StatusBadRequest)
		return
	}
	rate, err1 := strconv.Atoi(parts[0])
	chunk, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil ||
		rate < 0 || rate >= len(s.video.Ladder) ||
		chunk < 0 || chunk >= s.video.NumChunks() {
		http.Error(w, "chunk out of range", http.StatusNotFound)
		return
	}
	if s.FailChunk != nil && s.FailChunk(rate, chunk) {
		http.Error(w, "injected failure", http.StatusServiceUnavailable)
		return
	}
	if s.Latency > 0 {
		time.Sleep(s.Latency)
	}
	size := s.video.ChunkSize(rate, chunk)
	if s.Injector != nil {
		latency, kind, fault := s.Injector.Request()
		if latency > 0 {
			time.Sleep(latency)
		}
		if fault {
			s.observeFault(kind, rate, chunk, size)
			switch kind {
			case faults.ServerError:
				http.Error(w, "injected failure", http.StatusServiceUnavailable)
				return
			case faults.StallBody, faults.ConnReset:
				// Deliver a partial body, then hang (slowloris) or tear the
				// connection down mid-download.
				w.Header().Set("Content-Type", "video/mp4")
				w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
				partial := size / 4
				if partial > 64<<10 {
					partial = 64 << 10
				}
				writeFiller(w, partial)
				if f, ok := w.(http.Flusher); ok {
					f.Flush()
				}
				if kind == faults.ConnReset {
					panic(http.ErrAbortHandler)
				}
				time.Sleep(s.Injector.Stall())
				return
			}
		}
	}
	if s.Observer != nil {
		s.Observer.OnEvent(telemetry.Event{
			Kind: telemetry.ChunkRequest, At: time.Since(s.start),
			Chunk: chunk, RateIndex: rate, PrevRateIndex: -1,
			Rate: s.video.Ladder[rate], Bytes: size,
		})
	}
	served := time.Now()
	w.Header().Set("Content-Type", "video/mp4")
	w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
	writeFiller(w, size)
	if s.Observer != nil {
		s.Observer.OnEvent(telemetry.Event{
			Kind: telemetry.ChunkComplete, At: time.Since(s.start),
			Chunk: chunk, RateIndex: rate, PrevRateIndex: -1,
			Rate: s.video.Ladder[rate], Bytes: size,
			Duration: time.Since(served),
		})
	}
}

// observeFault reports an injected fault through the server's Observer.
func (s *Server) observeFault(kind faults.Kind, rate, chunk int, size int64) {
	if s.Observer == nil {
		return
	}
	s.Observer.OnEvent(telemetry.Event{
		Kind: telemetry.FaultInject, At: time.Since(s.start),
		Chunk: chunk, RateIndex: rate, PrevRateIndex: -1,
		Rate: s.video.Ladder[rate], Bytes: size, Label: kind.String(),
	})
}

// fillerBlock is the shared read-only source every chunk body is streamed
// from. Allocating and refilling a 32 KiB block per request was the other
// load-ramp bottleneck: at thousands of concurrent clients the per-request
// allocation dominated the handler and kept the GC busy. The block is
// written by exactly one goroutine (package init) and only read afterwards.
var fillerBlock = func() []byte {
	block := make([]byte, 32*1024)
	for i := range block {
		block[i] = byte('A' + i%26)
	}
	return block
}()

// writeFiller streams size bytes of deterministic filler.
func writeFiller(w http.ResponseWriter, size int64) {
	for size > 0 {
		n := int64(len(fillerBlock))
		if n > size {
			n = size
		}
		if _, err := w.Write(fillerBlock[:n]); err != nil {
			return
		}
		size -= n
	}
}
