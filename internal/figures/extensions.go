package figures

import (
	"fmt"
	"math"
	"time"

	"bba/internal/abr"
	"bba/internal/abtest"
	"bba/internal/media"
	"bba/internal/player"
	"bba/internal/qoe"
	"bba/internal/stats"
	"bba/internal/trace"
	"bba/internal/units"
)

// ShortVideoSessions tests the conclusion's prediction: "in any setting
// where the startup phase is a significant fraction of the overall video
// playback, estimation may be valuable (e.g., for short videos)". It runs
// paired populations at several session lengths and reports the average-
// rate gap of the pure buffer-based BBA-1 versus the estimation-assisted
// BBA-2 and the estimator Control: the shorter the sessions, the bigger
// BBA-1's deficit.
func ShortVideoSessions() (*Figure, error) {
	fig := &Figure{
		ID:     "ext-shortvideo",
		Title:  "Extension (conclusion): the startup penalty versus session length",
		XLabel: "median session length",
		YLabel: "average-rate deficit of BBA-1 (kb/s)",
	}
	vsBBA2 := Series{Name: "BBA2−BBA1"}
	vsCtl := Series{Name: "Ctl−BBA1"}
	groups := []abtest.Group{
		{Name: "Control", New: func(u abtest.User) abr.Algorithm {
			c := abr.NewControl()
			c.InitialEstimate = u.History
			return c
		}},
		{Name: "BBA-1", New: func(abtest.User) abr.Algorithm { return abr.NewBBA1() }},
		{Name: "BBA-2", New: func(abtest.User) abr.Algorithm { return abr.NewBBA2() }},
	}
	avgRate := func(out *abtest.Outcome, g string) float64 {
		var sum, hours float64
		for _, w := range out.Windows[g] {
			sum += w.AvgRateKbps * w.PlayHours
			hours += w.PlayHours
		}
		if hours == 0 {
			return 0
		}
		return sum / hours
	}
	for _, mean := range []time.Duration{6 * time.Minute, 12 * time.Minute, 25 * time.Minute, 50 * time.Minute} {
		out, err := abtest.Run(abtest.Config{
			Seed:              ExperimentSeed + 13,
			Days:              1,
			SessionsPerWindow: 50,
			Groups:            groups,
			Population:        abtest.PopulationConfig{MeanWatch: mean},
		})
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("%dm", int(mean.Minutes()))
		d2 := avgRate(out, "BBA-2") - avgRate(out, "BBA-1")
		dc := avgRate(out, "Control") - avgRate(out, "BBA-1")
		vsBBA2.Points = append(vsBBA2.Points, Point{X: label, Y: d2})
		vsCtl.Points = append(vsCtl.Points, Point{X: label, Y: dc})
	}
	fig.Series = []Series{vsBBA2, vsCtl}
	first, last := vsBBA2.Points[0].Y, vsBBA2.Points[len(vsBBA2.Points)-1].Y
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("BBA-2's advantage over BBA-1 shrinks from %.0f kb/s at 6-minute sessions to %.0f kb/s at 50-minute sessions", first, last),
		"paper's conclusion: the shorter the playback, the larger the share of the startup phase — and the more the capacity-estimated ramp is worth",
	)
	return fig, nil
}

// QoERanking folds the paper's three separately-reported axes — video
// rate, rebuffering and switching — into the linear QoE score the
// follow-on literature uses, and ranks every algorithm on one paired
// peak-hour population.
func QoERanking() (*Figure, error) {
	catalog, err := media.NewCatalog(24, media.DefaultLadder(), ExperimentSeed)
	if err != nil {
		return nil, err
	}
	algs := []struct {
		name string
		mk   func(abtest.User) abr.Algorithm
	}{
		{"Control", func(u abtest.User) abr.Algorithm {
			c := abr.NewControl()
			c.InitialEstimate = u.History
			return c
		}},
		{"Rmin Always", func(abtest.User) abr.Algorithm { return abr.RminAlways{} }},
		{"BBA-0", func(abtest.User) abr.Algorithm { return abr.NewBBA0() }},
		{"BBA-1", func(abtest.User) abr.Algorithm { return abr.NewBBA1() }},
		{"BBA-2", func(abtest.User) abr.Algorithm { return abr.NewBBA2() }},
		{"BBA-Others", func(abtest.User) abr.Algorithm { return abr.NewBBAOthers() }},
		{"PID", func(u abtest.User) abr.Algorithm {
			c := abr.NewBufferTarget()
			c.InitialEstimate = u.History
			return c
		}},
		{"ELASTIC", func(u abtest.User) abr.Algorithm {
			c := abr.NewElastic()
			c.InitialEstimate = u.History
			return c
		}},
	}
	weights := qoe.Default()
	const sessions = 250
	totals := make([]float64, len(algs))
	var hours float64
	for i := 0; i < sessions; i++ {
		rng := abtest.SessionRNG(ExperimentSeed+29, 0, 0, i)
		u := abtest.DrawUser(abtest.PopulationConfig{}, 0, 0, rng) // peak window
		stream := abr.NewStream(u.Pick(catalog), u.Rmin)
		for ai, a := range algs {
			res, err := player.Run(player.Config{
				Algorithm:  a.mk(u),
				Stream:     stream,
				Trace:      u.Trace,
				WatchLimit: u.WatchTime,
			})
			if err != nil {
				return nil, err
			}
			totals[ai] += qoe.Score(res, weights).QoE
			if ai == 0 {
				hours += res.PlayHours()
			}
		}
	}
	fig := &Figure{
		ID:     "ext-qoe",
		Title:  "Extension: linear QoE ranking at peak (quality − 5·stall − |Δquality|)",
		XLabel: "algorithm",
		YLabel: "QoE per playhour",
	}
	s := Series{Name: "QoE/h"}
	best, bestV := "", math.Inf(-1)
	for ai, a := range algs {
		v := totals[ai] / hours
		s.Points = append(s.Points, Point{X: a.name, Y: v})
		if v > bestV {
			best, bestV = a.name, v
		}
	}
	fig.Series = []Series{s}
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("best composite QoE at peak: %s (%.0f per playhour)", best, bestV),
		"every buffer-based algorithm outscores the Control; note how a fixed stall weight can still let a rate-aggressive controller edge ahead despite several times the rebuffer rate — the composite understates the paper's primary concern",
	)
	return fig, nil
}

// RelatedWorkComparison runs the buffer-aware estimator controllers the
// paper's related work discusses — a Tian-and-Liu-style buffer-target PID
// [20] and an ELASTIC-style harmonic-filter controller [5] — against BBA-2
// and the Control, on the same paired weekend population.
func RelatedWorkComparison() (*Figure, error) {
	groups := []abtest.Group{
		{Name: "Control", New: func(u abtest.User) abr.Algorithm {
			c := abr.NewControl()
			c.InitialEstimate = u.History
			return c
		}},
		{Name: "BBA-2", New: func(abtest.User) abr.Algorithm { return abr.NewBBA2() }},
		{Name: "PID", New: func(u abtest.User) abr.Algorithm {
			c := abr.NewBufferTarget()
			c.InitialEstimate = u.History
			return c
		}},
		{Name: "ELASTIC", New: func(u abtest.User) abr.Algorithm {
			c := abr.NewElastic()
			c.InitialEstimate = u.History
			return c
		}},
	}
	out, err := ablationExperiment("relatedwork", groups)
	if err != nil {
		return nil, err
	}
	names := []string{"Control", "BBA-2", "PID", "ELASTIC"}
	fig := summaryFigure("ext-relatedwork",
		"Extension (§2.2/§8): buffer-aware estimator controllers vs the buffer-based approach",
		out, names,
		"paper's framing: prior work adjusts capacity estimates with the buffer; BBA inverts the design — the buffer picks the rate, estimation assists only at startup")
	return fig, nil
}

// BufferOccupancy shows where each algorithm's buffer actually lives in
// steady state — the mechanism behind every safety difference the A/B
// figures measure. Rmin Always pins the buffer at the top; Control
// oscillates high; the chunk-mapped BBA algorithms settle mid-cushion,
// lifted by their outage protection.
func BufferOccupancy() (*Figure, error) {
	catalog, err := media.NewCatalog(24, media.DefaultLadder(), ExperimentSeed)
	if err != nil {
		return nil, err
	}
	algs := []struct {
		name string
		mk   func(abtest.User) abr.Algorithm
	}{
		{"Rmin Always", func(abtest.User) abr.Algorithm { return abr.RminAlways{} }},
		{"Control", func(u abtest.User) abr.Algorithm {
			c := abr.NewControl()
			c.InitialEstimate = u.History
			return c
		}},
		{"BBA-0", func(abtest.User) abr.Algorithm { return abr.NewBBA0() }},
		{"BBA-1", func(abtest.User) abr.Algorithm { return abr.NewBBA1() }},
		{"BBA-2", func(abtest.User) abr.Algorithm { return abr.NewBBA2() }},
		{"BBA-Others", func(abtest.User) abr.Algorithm { return abr.NewBBAOthers() }},
	}
	fig := &Figure{
		ID:     "ext-buffer",
		Title:  "Extension: steady-state buffer occupancy by algorithm (peak population)",
		XLabel: "algorithm",
		YLabel: "buffer seconds (percentiles over steady-state chunks)",
	}
	p25s := Series{Name: "p25"}
	p50s := Series{Name: "median"}
	p75s := Series{Name: "p75"}
	const sessions = 120
	for _, a := range algs {
		var levels []float64
		for i := 0; i < sessions; i++ {
			rng := abtest.SessionRNG(ExperimentSeed+31, 0, 0, i)
			u := abtest.DrawUser(abtest.PopulationConfig{}, 0, 0, rng)
			stream := abr.NewStream(u.Pick(catalog), u.Rmin)
			res, err := player.Run(player.Config{
				Algorithm:  a.mk(u),
				Stream:     stream,
				Trace:      u.Trace,
				WatchLimit: u.WatchTime,
			})
			if err != nil {
				return nil, err
			}
			for _, c := range res.Chunks {
				if c.Start >= 2*time.Minute { // steady state per Fig. 18
					levels = append(levels, c.BufferAfter.Seconds())
				}
			}
		}
		p25, err := stats.Percentile(levels, 25)
		if err != nil {
			return nil, err
		}
		p50, _ := stats.Percentile(levels, 50)
		p75, _ := stats.Percentile(levels, 75)
		p25s.Points = append(p25s.Points, Point{X: a.name, Y: p25})
		p50s.Points = append(p50s.Points, Point{X: a.name, Y: p50})
		p75s.Points = append(p75s.Points, Point{X: a.name, Y: p75})
		fig.Notes = append(fig.Notes, fmt.Sprintf("%-11s buffer p25/median/p75 = %.0f / %.0f / %.0f s",
			a.name, p25, p50, p75))
	}
	fig.Series = []Series{p25s, p50s, p75s}
	fig.Notes = append(fig.Notes,
		"the buffer level entering a fade is what decides survival: the bound keeps the full 240 s, the chunk-mapped algorithms hold the reservoir-plus-cushion equilibrium the §7.1 protection raises",
	)
	return fig, nil
}

// SeekStartup exercises the other startup trigger the paper names —
// "seeking to a new point" — with sessions that seek every two minutes on
// a fast link: every seek flushes the buffer and re-enters startup, so the
// estimation-assisted ramp compounds.
func SeekStartup() (*Figure, error) {
	ladder := media.DefaultLadder()[:8]
	video, err := media.NewCBR("seek-demo", ladder, media.DefaultChunkDuration, 1800)
	if err != nil {
		return nil, err
	}
	stream := abr.NewStream(video, 0)
	tr := trace.Constant(25*units.Mbps, 2*time.Hour)
	seeks := []player.Seek{
		{AfterPlayed: 2 * time.Minute, ToChunk: 400},
		{AfterPlayed: 4 * time.Minute, ToChunk: 800},
		{AfterPlayed: 6 * time.Minute, ToChunk: 1200},
		{AfterPlayed: 8 * time.Minute, ToChunk: 1600},
	}

	fig := &Figure{
		ID:     "ext-seek",
		Title:  "Extension (§6): seek-heavy viewing re-enters the startup phase",
		XLabel: "algorithm",
		YLabel: "average video rate (kb/s), 10-minute session with 4 seeks",
	}
	s := Series{Name: "avg rate"}
	for _, mk := range []func() abr.Algorithm{
		func() abr.Algorithm { return abr.NewBBA1() },
		func() abr.Algorithm { return abr.NewBBA2() },
		func() abr.Algorithm { return abr.NewBBAOthers() },
	} {
		alg := mk()
		res, err := player.Run(player.Config{
			Algorithm:  alg,
			Stream:     stream,
			Trace:      tr,
			WatchLimit: 10 * time.Minute,
			Seeks:      seeks,
		})
		if err != nil {
			return nil, err
		}
		s.Points = append(s.Points, Point{X: alg.Name(), Y: res.AvgRateKbps()})
		fig.Notes = append(fig.Notes, fmt.Sprintf("%-10s %.0f kb/s over %d executed seeks, %d rebuffers",
			alg.Name(), res.AvgRateKbps(), len(res.Seeks), res.Rebuffers))
	}
	fig.Series = []Series{s}
	fig.Notes = append(fig.Notes,
		"each seek flushes the buffer; BBA-2's ΔB ramp recovers the steady rate within seconds while BBA-1 re-climbs the cushion",
	)
	return fig, nil
}
