// Outage protection (Section 7.1), rebuilt on the fault-injection
// subsystem: one seeded fault schedule — a total link blackout, a 5xx
// burst and a latency spike — is applied to the capacity trace AND to the
// request path, then BBA-2 (per-chunk outage-protection accrual) and
// BBA-Others (right-shift-only reservoir) are compared against plain
// map-following through the identical weather.
//
//	go run ./examples/outage
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"bba"
	"bba/internal/abr"
	"bba/internal/faults"
	"bba/internal/player"
	"bba/internal/trace"
	"bba/internal/units"
)

func main() {
	video, err := bba.NewVBRTitle("outage-demo", 900, 3)
	if err != nil {
		log.Fatal(err)
	}

	// One declarative schedule drives everything. The paper's motivating
	// outages are 20–30 s; the blackout is stretched to 145 s so the
	// difference in accumulated protection is visible — it outlasts the
	// unprotected buffer but not the protected one. The 5xx burst and the
	// latency spike exercise the retry path on top.
	sched := faults.MustSchedule([]faults.Fault{
		{Kind: faults.ServerError, Start: 3 * time.Minute, Duration: 20 * time.Second},
		{Kind: faults.LatencySpike, Start: 5 * time.Minute, Duration: 30 * time.Second, Latency: 800 * time.Millisecond},
		{Kind: faults.Blackout, Start: 8 * time.Minute, Duration: 145 * time.Second},
	})

	// Capacity faults (the blackout) reshape the trace; request-path
	// faults (the burst, the spike) are injected per attempt.
	base := trace.Constant(2500*units.Kbps, time.Hour)
	link, err := sched.ApplyToTrace(base)
	if err != nil {
		log.Fatal(err)
	}
	inj := faults.NewSessionInjector(sched, 7)

	// A variant of BBA-1 with the protection accrual disabled isolates
	// what the Section 7 mechanisms buy.
	runs := []struct {
		name string
		alg  bba.Algorithm
	}{
		{"BBA-1 (no protection)", func() bba.Algorithm {
			a := abr.NewBBA1()
			a.ProtectionPerChunk = 0
			return a
		}()},
		{"BBA-1", bba.NewBBA1()},
		{"BBA-2", bba.NewBBA2()},
		{"BBA-Others", bba.NewBBAOthers()},
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "algorithm\trebuffers\tfrozen\tavg rate\tfaults\tretries\tbuffer@outage")
	for _, r := range runs {
		res, err := player.Run(player.Config{
			Algorithm:  r.alg,
			Stream:     abr.NewStream(video, 0),
			Trace:      link,
			WatchLimit: 15 * time.Minute,
			Injector:   inj,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%s\t%d\t%.1fs\t%.0f kb/s\t%d\t%d\t%.0fs\n",
			r.name, res.Rebuffers, res.StallTime.Seconds(), res.AvgRateKbps(),
			res.Faults, res.Retries, bufferAtOutage(res, 8*time.Minute))
	}
	w.Flush()
	fmt.Println("\nthe Section 7 mechanisms converge the buffer higher, so an outage that")
	fmt.Println("freezes the unprotected player drains protection instead; the injected")
	fmt.Println("5xx burst and latency spike cost every player a few deterministic retries")
}

// bufferAtOutage reports the buffer level after the last chunk that
// completed before the outage hit.
func bufferAtOutage(res *player.Result, at time.Duration) float64 {
	var level time.Duration
	for _, c := range res.Chunks {
		if c.Start+c.Download > at {
			break
		}
		level = c.BufferAfter
	}
	return level.Seconds()
}
