package coord

import (
	"fmt"
	"time"

	"bba/internal/abtest"
	"bba/internal/campaign"
	"bba/internal/faults"
)

// Spec is the campaign description the coordinator hands every worker on
// join — the JSON-portable subset of campaign.Config that pins the
// campaign identity. Execution knobs (engine, parallelism, widths) are
// deliberately absent: they are per-worker choices that never change the
// result, which is exactly why a mixed fleet of scalar and batch workers
// still folds to one byte-identical report.
type Spec struct {
	// Name labels the run (default "campaign").
	Name string `json:"name,omitempty"`
	// Seed makes the campaign deterministic.
	Seed int64 `json:"seed"`
	// Sessions is the number of paired session draws.
	Sessions int `json:"sessions"`
	// ShardSize is the paired sessions per shard (part of the identity).
	ShardSize int `json:"shard_size,omitempty"`
	// Days is the simulated calendar depth.
	Days int `json:"days,omitempty"`
	// CatalogSize is the number of titles.
	CatalogSize int `json:"catalog_size,omitempty"`
	// SketchSize is each metric sketch's retained-sample capacity.
	SketchSize int `json:"sketch_size,omitempty"`
	// Groups are the experiment arms by registered algorithm name; empty
	// means the paper's standard groups.
	Groups []string `json:"groups,omitempty"`
	// Faults runs every session under the standard fault schedule.
	Faults bool `json:"faults,omitempty"`
	// FaultSeed seeds the fault weather (with Faults).
	FaultSeed int64 `json:"fault_seed,omitempty"`
}

// CampaignConfig resolves the spec into a runnable campaign.Config — the
// same construction cmd/bbacampaign performs from its flags, so a worker
// executing the spec and a local run of the same flags share one identity.
func (s Spec) CampaignConfig() (campaign.Config, error) {
	cfg := campaign.Config{
		Name:        s.Name,
		Seed:        s.Seed,
		Sessions:    s.Sessions,
		ShardSize:   s.ShardSize,
		Days:        s.Days,
		CatalogSize: s.CatalogSize,
		SketchSize:  s.SketchSize,
	}
	if len(s.Groups) > 0 {
		groups, err := abtest.Groups(s.Groups...)
		if err != nil {
			return campaign.Config{}, err
		}
		cfg.Groups = groups
	}
	if s.Faults {
		fc := faults.DefaultScheduleConfig()
		cfg.Faults = &fc
		cfg.FaultSeed = s.FaultSeed
	}
	return cfg, nil
}

// Identity returns the campaign identity the spec pins.
func (s Spec) Identity() (campaign.Identity, error) {
	cfg, err := s.CampaignConfig()
	if err != nil {
		return campaign.Identity{}, err
	}
	id := cfg.Identity()
	if id.Shards() == 0 {
		return campaign.Identity{}, fmt.Errorf("coord: spec describes no shards (sessions %d, shard size %d)", s.Sessions, s.ShardSize)
	}
	return id, nil
}

// Wire messages. Every endpoint takes and returns JSON; durations travel
// as milliseconds so the protocol has no dependence on Go's duration
// encoding.

// JoinRequest registers a worker with the coordinator.
type JoinRequest struct {
	// Worker names the worker; it must be stable across the worker's
	// requests (leases are owned by name) and unique within the fleet.
	Worker string `json:"worker"`
}

// JoinResponse hands the worker everything it needs to execute leases.
type JoinResponse struct {
	Spec     Spec              `json:"spec"`
	Identity campaign.Identity `json:"identity"`
	// LeaseTTLMillis is the lease expiry interval; workers heartbeat at a
	// fraction of it.
	LeaseTTLMillis int64 `json:"lease_ttl_millis"`
	// LeaseShards is the maximum shards per lease.
	LeaseShards int `json:"lease_shards"`
}

// TTL returns the lease TTL as a duration.
func (j JoinResponse) TTL() time.Duration { return time.Duration(j.LeaseTTLMillis) * time.Millisecond }

// LeaseRequest asks for a shard-range lease.
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// LeaseResponse grants a lease (possibly empty while stragglers hold the
// remaining shards) or reports the campaign complete.
type LeaseResponse struct {
	// Lease identifies the grant in heartbeats and completions; zero when
	// no shards were granted.
	Lease uint64 `json:"lease,omitempty"`
	// Shards are the granted shard indices, ascending.
	Shards []int `json:"shards,omitempty"`
	// Stolen marks a work-stealing re-lease of shards another worker still
	// holds: first completion wins, the loser's fold is a no-op.
	Stolen bool `json:"stolen,omitempty"`
	// Complete reports that every shard of the campaign is folded; the
	// worker should exit.
	Complete bool `json:"complete,omitempty"`
	// ExpiresMillis is the grant's TTL.
	ExpiresMillis int64 `json:"expires_millis,omitempty"`
}

// HeartbeatRequest extends the worker's outstanding leases.
type HeartbeatRequest struct {
	Worker string   `json:"worker"`
	Leases []uint64 `json:"leases,omitempty"`
}

// HeartbeatResponse lists which leases were extended; a lease missing from
// Extended has expired (its shards may already be re-leased) and the
// worker should abandon it.
type HeartbeatResponse struct {
	Extended []uint64 `json:"extended,omitempty"`
	// Complete mirrors LeaseResponse.Complete so idle workers learn the
	// campaign finished without another lease round-trip.
	Complete bool `json:"complete,omitempty"`
}

// CompleteRequest delivers one finished shard's accumulators under a lease.
type CompleteRequest struct {
	Worker string `json:"worker"`
	Lease  uint64 `json:"lease"`
	// Shard and Groups are the campaign.ShardAccums payload — the same
	// shape the collect lane ships.
	Shard  int                    `json:"shard"`
	Groups []*campaign.GroupAccum `json:"groups"`
}

// CompleteResponse acknowledges a shard completion.
type CompleteResponse struct {
	// Duplicate reports the shard was already folded (delivered by another
	// lease holder, or a retry); the fold was a no-op.
	Duplicate bool `json:"duplicate,omitempty"`
	// Complete reports the campaign is now fully folded.
	Complete bool `json:"complete,omitempty"`
}
