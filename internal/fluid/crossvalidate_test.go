package fluid

// Cross-validation between the fluid model and the discrete chunk engine:
// the same admissible map, run through both, must agree on the steady-state
// behaviour. This ties the theory package to the simulator the experiments
// use — if either drifts, this test catches it.

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"bba/internal/abr"
	"bba/internal/media"
	"bba/internal/player"
	"bba/internal/trace"
	"bba/internal/units"
)

func TestFluidMatchesDiscreteEngine(t *testing.T) {
	const (
		reservoir = 20.0
		rampEnd   = 216.0
	)
	f := Linear(rmin, rmax, reservoir, rampEnd)

	// The same map as a discrete algorithm.
	discrete := abr.NewCustom("xval", func(b, _ time.Duration) units.BitRate {
		return f(b.Seconds())
	})

	tr := trace.Markov(trace.MarkovConfig{
		Base:      2 * units.Mbps,
		Sigma:     0.5,
		MeanDwell: 20 * time.Second,
		Duration:  4 * time.Hour,
		Floor:     300 * units.Kbps,
		Ceiling:   4500 * units.Kbps,
	}, rand.New(rand.NewSource(14)))

	fluidRes, err := Integrate(Config{Map: f, Rmin: rmin, Rmax: rmax, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}

	video, err := media.NewCBR("xval", media.DefaultLadder(), media.DefaultChunkDuration, 3600)
	if err != nil {
		t.Fatal(err)
	}
	discreteRes, err := player.Run(player.Config{
		Algorithm:  discrete,
		Stream:     abr.NewStream(video, 0),
		Trace:      tr,
		WatchLimit: 4 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Agreement criteria: both rebuffer-free (C ≥ 300 kb/s > R_min), and
	// long-run average rates within 10% of each other (the discrete
	// engine quantizes to the ladder and pays a startup transient).
	if fluidRes.Rebuffered {
		t.Error("fluid model rebuffered")
	}
	if discreteRes.Rebuffers != 0 {
		t.Errorf("discrete engine rebuffered %d times", discreteRes.Rebuffers)
	}
	fluidRate := fluidRes.AvgSelectedKbps
	discreteRate := discreteRes.AvgRateKbps()
	if rel := math.Abs(fluidRate-discreteRate) / fluidRate; rel > 0.10 {
		t.Errorf("fluid avg %.0f vs discrete avg %.0f kb/s: %.1f%% apart, want ≤10%%",
			fluidRate, discreteRate, 100*rel)
	}
}
