package figures

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"bba/internal/metrics"
)

func TestAllGeneratorsProduceOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full figure suite")
	}
	for _, e := range All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			fig, err := e.Gen(Quick)
			if err != nil {
				t.Fatal(err)
			}
			if fig.ID == "" || fig.Title == "" {
				t.Error("figure missing identity")
			}
			if len(fig.Series) == 0 {
				t.Error("figure has no series")
			}
			for _, s := range fig.Series {
				if len(s.Points) == 0 {
					t.Errorf("series %q empty", s.Name)
				}
			}
			if len(fig.Notes) == 0 {
				t.Error("figure has no paper-comparison notes")
			}
			var buf bytes.Buffer
			if err := fig.WriteTable(&buf); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(buf.String(), strings.ToUpper(fig.ID)) {
				t.Error("rendered table missing figure id")
			}
		})
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("Fig10VBRChunkSizes"); !ok {
		t.Error("known figure not found")
	}
	if _, ok := Lookup("Fig99Nothing"); ok {
		t.Error("unknown figure found")
	}
}

func TestExperimentOutcomeCached(t *testing.T) {
	a, err := ExperimentOutcome(Quick)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ExperimentOutcome(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("experiment not cached")
	}
}

// The paper's headline shape, asserted at Quick scale on the exact cached
// experiment every A/B figure reads from: at peak, every buffer-based
// algorithm rebuffers less than Control and more than (or near) the bound.
func TestHeadlineShape(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the weekend experiment")
	}
	out, err := ExperimentOutcome(Quick)
	if err != nil {
		t.Fatal(err)
	}
	rb := func(g string) float64 {
		return peakAvg(out.Windows[g], func(w metrics.Window) float64 { return w.RebuffersPerPlayhour })
	}
	ctrl := rb("Control")
	bound := rb("Rmin Always")
	if ctrl <= bound {
		t.Fatalf("Control %.3f not above the bound %.3f", ctrl, bound)
	}
	for _, g := range []string{"BBA-0", "BBA-1", "BBA-2", "BBA-Others"} {
		v := rb(g)
		if v >= ctrl {
			t.Errorf("%s peak rebuffer rate %.3f not below Control %.3f", g, v, ctrl)
		}
		if v < bound*0.7 {
			t.Errorf("%s peak rebuffer rate %.3f implausibly below the bound %.3f", g, v, bound)
		}
	}
}

// TestGenerateAll pins the parallel path: every figure comes back in
// registry order with no errors, and the A/B figures all read the one
// single-flight experiment.
func TestGenerateAll(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full figure suite")
	}
	generated := GenerateAll(context.Background(), Quick)
	entries := All()
	if len(generated) != len(entries) {
		t.Fatalf("got %d generated figures, want %d", len(generated), len(entries))
	}
	for i, g := range generated {
		if g.Entry.Name != entries[i].Name {
			t.Errorf("slot %d holds %q, want %q (order must be registry order)", i, g.Entry.Name, entries[i].Name)
		}
		if g.Err != nil {
			t.Errorf("%s: %v", g.Entry.Name, g.Err)
		} else if g.Fig == nil || len(g.Fig.Series) == 0 {
			t.Errorf("%s: empty figure", g.Entry.Name)
		}
	}
	stats, ok := ExperimentStats(Quick)
	if !ok {
		t.Fatal("shared experiment did not run")
	}
	if stats.Sessions == 0 || stats.Elapsed <= 0 {
		t.Errorf("stats = %+v, want populated", stats)
	}
}

func TestGenerateAllCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, g := range GenerateAll(ctx, Quick) {
		// Figures served from a pre-canceled context must either have been
		// cached already (fine) or report the cancellation.
		if g.Err != nil && !errors.Is(g.Err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", g.Entry.Name, g.Err)
		}
	}
}

func TestWriteMarkdownQuickSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("renders every figure")
	}
	var buf bytes.Buffer
	if err := WriteMarkdown(&buf, Quick); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 7(a,b)", "Figure 18", "BenchmarkFig16StartupRamp", "ablation"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q", want)
		}
	}
}
