package bba_test

import (
	"fmt"
	"log"
	"time"

	"bba"
)

// The basic loop: build a title, pick a network, stream a session.
func ExampleRunSession() {
	video, err := bba.NewCBRTitle("example", 450)
	if err != nil {
		log.Fatal(err)
	}
	result, err := bba.RunSession(bba.SessionConfig{
		Algorithm:  bba.NewBBA2(),
		Video:      video,
		Trace:      bba.ConstantTrace(4*bba.Mbps, time.Hour),
		WatchLimit: 10 * time.Minute,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rebuffers: %d\n", result.Rebuffers)
	fmt.Printf("played: %v\n", result.Played)
	// Output:
	// rebuffers: 0
	// played: 10m0s
}

// The Figure 4 counterfactual: an aggressive session freezes; the same
// observed network under a buffer-based algorithm does not.
func ExampleObservedTrace() {
	video, err := bba.NewCBRTitle("example", 450)
	if err != nil {
		log.Fatal(err)
	}
	// Live through a capacity collapse with the degenerate top-rate
	// policy — guaranteed to freeze.
	original, err := bba.RunSession(bba.SessionConfig{
		Algorithm:  mustAlg("Rmax Always"),
		Video:      video,
		Trace:      bba.StepTrace(5*bba.Mbps, 350*bba.Kbps, 25*time.Second, time.Hour),
		WatchLimit: 5 * time.Minute,
	})
	if err != nil {
		log.Fatal(err)
	}
	observed, err := bba.ObservedTrace(original)
	if err != nil {
		log.Fatal(err)
	}
	// Replay what BBA-0 would have done on that same network.
	counterfactual, err := bba.RunSession(bba.SessionConfig{
		Algorithm:  bba.NewBBA0(),
		Video:      video,
		Trace:      observed,
		WatchLimit: 5 * time.Minute,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("original froze: %v\n", original.StallTime > 0)
	fmt.Printf("counterfactual rebuffers: %d\n", counterfactual.Rebuffers)
	// Output:
	// original froze: true
	// counterfactual rebuffers: 0
}

func mustAlg(name string) bba.Algorithm {
	a, err := bba.NewAlgorithm(name)
	if err != nil {
		log.Fatal(err)
	}
	return a
}
