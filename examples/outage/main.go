// Outage protection (Section 7.1): compare BBA-2 (per-chunk outage
// protection accrual) and BBA-Others (right-shift-only reservoir) against
// plain map-following when the network disappears completely for 30
// seconds mid-session.
//
//	go run ./examples/outage
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"bba"
	"bba/internal/abr"
	"bba/internal/player"
	"bba/internal/trace"
	"bba/internal/units"
)

func main() {
	video, err := bba.NewVBRTitle("outage-demo", 900, 3)
	if err != nil {
		log.Fatal(err)
	}

	// A modest 2.5 Mb/s link with a total outage eight minutes
	// in. The paper's motivating outages are 20–30 s; this one is stretched
	// to 145 s so the difference in accumulated protection is visible —
	// the outage outlasts the unprotected buffer but not the protected one.
	base := trace.Constant(2500*units.Kbps, time.Hour)
	link, err := trace.WithOutages(base, []trace.Outage{
		{Start: 8 * time.Minute, Duration: 145 * time.Second},
	})
	if err != nil {
		log.Fatal(err)
	}

	// A variant of BBA-1 with the protection accrual disabled isolates
	// what the Section 7 mechanisms buy.
	runs := []struct {
		name string
		alg  bba.Algorithm
	}{
		{"BBA-1 (no protection)", func() bba.Algorithm {
			a := abr.NewBBA1()
			a.ProtectionPerChunk = 0
			return a
		}()},
		{"BBA-1", bba.NewBBA1()},
		{"BBA-2", bba.NewBBA2()},
		{"BBA-Others", bba.NewBBAOthers()},
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "algorithm\trebuffers\tfrozen\tavg rate\tbuffer@outage")
	for _, r := range runs {
		res, err := bba.RunSession(bba.SessionConfig{
			Algorithm:  r.alg,
			Video:      video,
			Trace:      link,
			WatchLimit: 15 * time.Minute,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%s\t%d\t%.1fs\t%.0f kb/s\t%.0fs\n",
			r.name, res.Rebuffers, res.StallTime.Seconds(), res.AvgRateKbps(),
			bufferAtOutage(res, 8*time.Minute))
	}
	w.Flush()
	fmt.Println("\nthe Section 7 mechanisms converge the buffer higher, so an outage that")
	fmt.Println("freezes the unprotected player drains protection instead")
}

// bufferAtOutage reports the buffer level after the last chunk that
// completed before the outage hit.
func bufferAtOutage(res *player.Result, at time.Duration) float64 {
	var level time.Duration
	for _, c := range res.Chunks {
		if c.Start+c.Download > at {
			break
		}
		level = c.BufferAfter
	}
	return level.Seconds()
}
