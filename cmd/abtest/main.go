// Command abtest runs the weekend-scale A/B experiment and regenerates the
// paper's figures as text tables.
//
// Examples:
//
//	abtest                       # every figure, quick scale
//	abtest -fig Fig18SteadyStateRate
//	abtest -scale full -experiments-md > EXPERIMENTS.md
//	abtest -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"bba/internal/figures"
)

func main() {
	var (
		scaleName = flag.String("scale", "quick", "experiment scale: quick or full")
		figName   = flag.String("fig", "", "regenerate a single figure by name (see -list)")
		list      = flag.Bool("list", false, "list every reproducible figure and exit")
		mdOut     = flag.Bool("experiments-md", false, "emit the EXPERIMENTS.md body to stdout")
		csvOut    = flag.Bool("csv", false, "emit the weekend experiment's per-window aggregates as CSV")
	)
	flag.Parse()

	if err := run(os.Stdout, *scaleName, *figName, *list, *mdOut, *csvOut); err != nil {
		fmt.Fprintln(os.Stderr, "abtest:", err)
		os.Exit(1)
	}
}

func run(out io.Writer, scaleName, figName string, list, mdOut, csvOut bool) error {
	var scale figures.Scale
	switch scaleName {
	case "quick":
		scale = figures.Quick
	case "full":
		scale = figures.Full
	default:
		return fmt.Errorf("unknown scale %q (want quick or full)", scaleName)
	}

	if list {
		for _, e := range figures.All() {
			fmt.Fprintf(out, "%-28s %s\n", e.Name, e.Paper)
		}
		return nil
	}

	if mdOut {
		return figures.WriteMarkdown(out, scale)
	}

	if csvOut {
		o, err := figures.ExperimentOutcome(scale)
		if err != nil {
			return err
		}
		return o.WriteCSV(out)
	}

	if figName != "" {
		entry, ok := figures.Lookup(figName)
		if !ok {
			return fmt.Errorf("unknown figure %q (try -list)", figName)
		}
		fig, err := entry.Gen(scale)
		if err != nil {
			return err
		}
		return fig.WriteTable(out)
	}

	for _, e := range figures.All() {
		fig, err := e.Gen(scale)
		if err != nil {
			return fmt.Errorf("%s: %w", e.Name, err)
		}
		if err := fig.WriteTable(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	return nil
}
