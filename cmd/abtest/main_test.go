package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, "quick", "", true, false, false); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Fig07RebufferRateBBA0", "Figure 18", "SharedLinkFairness"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("list missing %q", want)
		}
	}
}

func TestSingleFigure(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, "quick", "Fig10VBRChunkSizes", false, false, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "max-to-average ratio") {
		t.Error("figure notes missing")
	}
}

func TestBadInputs(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, "enormous", "", false, false, false); err == nil {
		t.Error("unknown scale accepted")
	}
	if err := run(&out, "quick", "Fig99", false, false, false); err == nil {
		t.Error("unknown figure accepted")
	}
}
