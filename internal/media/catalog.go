package media

import (
	"fmt"
	"math/rand"
)

// Catalog is a fixed set of titles sessions draw from. Building the
// catalogue once and sharing it across experiment groups mirrors the paper's
// setup, where all test groups stream the same production library.
type Catalog struct {
	videos []*Video
}

// NewCatalog generates n VBR titles on the given ladder, deterministically
// from seed. Title lengths vary from about 20 minutes to 2 hours, roughly
// the range between an episode and a film.
func NewCatalog(n int, ladder Ladder, seed int64) (*Catalog, error) {
	if n <= 0 {
		return nil, fmt.Errorf("media: catalogue needs at least one title, got %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	c := &Catalog{videos: make([]*Video, n)}
	for i := range c.videos {
		// 300–1800 chunks of 4 s: 20 min – 2 h.
		numChunks := 300 + rng.Intn(1501)
		v, err := NewVBR(VBRConfig{
			Title:     fmt.Sprintf("title-%03d", i),
			Ladder:    ladder,
			NumChunks: numChunks,
		}, rng)
		if err != nil {
			return nil, err
		}
		c.videos[i] = v
	}
	return c, nil
}

// Len returns the number of titles.
func (c *Catalog) Len() int { return len(c.videos) }

// Pick returns title i modulo the catalogue size, so any non-negative
// draw maps to a title.
func (c *Catalog) Pick(i int) *Video {
	if i < 0 {
		i = -i
	}
	return c.videos[i%len(c.videos)]
}
