package collect

import "errors"

// ErrDedupWindow reports a frame too far ahead of its stream's contiguous
// prefix to track exactly. The collector surfaces it as a retryable
// rejection (HTTP 503): the shipper's bounded in-flight set keeps live
// streams well inside the window, so hitting it means frames were lost and
// will be retried — admitting the far-ahead frame instead would force the
// dedup state to either grow without bound or forget, and forgetting is
// how double-counting starts.
var ErrDedupWindow = errors.New("collect: frame beyond dedup window")

// stream is the exactly-once admission state of one (run, session) sender
// stream: every seq below next has been admitted, and parked holds the
// out-of-order admitted seqs above it. Memory is bounded by the window —
// the stream never forgets an admitted seq that a duplicate could replay.
type stream struct {
	next   uint64
	parked map[uint64]struct{}
}

// admit decides frame seq's fate exactly once per key: (true, nil) the
// first time a seq is offered, (false, nil) for every replay, and
// (false, ErrDedupWindow) when admitting would exceed the parked window.
// Callers must only call admit after the frame is otherwise valid — an
// admitted seq is spent even if downstream processing fails, which is why
// the collector validates payloads before admission.
func (s *stream) admit(seq uint64, window int) (bool, error) {
	if seq < s.next {
		return false, nil
	}
	if _, ok := s.parked[seq]; ok {
		return false, nil
	}
	if seq != s.next && len(s.parked) >= window {
		return false, ErrDedupWindow
	}
	if seq == s.next {
		s.next++
		s.foldParked()
		return true, nil
	}
	if s.parked == nil {
		s.parked = make(map[uint64]struct{})
	}
	s.parked[seq] = struct{}{}
	return true, nil
}

// admitSlide is the lossy-lane variant used for best-effort event frames:
// it never rejects, instead sliding the window forward when a gap grows
// stale. A frame lost in flight (UDP, or an HTTP batch dropped after
// exhausted retries) leaves a permanent gap; strict admission would park
// behind it forever. Sliding gives the gap up — duplicates older than the
// slide are still recognized as long as they arrive within the window, so
// event delivery is at-most-once within the window and the gap is honest,
// counted loss rather than silent double-counting. Reliable kinds never
// ride this path: their retry-until-ack loop cannot leave gaps.
func (s *stream) admitSlide(seq uint64, window int) bool {
	if seq < s.next {
		return false
	}
	if _, ok := s.parked[seq]; ok {
		return false
	}
	if seq == s.next {
		s.next++
		s.foldParked()
		return true
	}
	if s.parked == nil {
		s.parked = make(map[uint64]struct{})
	}
	s.parked[seq] = struct{}{}
	if len(s.parked) > window {
		// Abandon the oldest gap: jump next to the smallest parked seq and
		// fold from there. Everything below is conceded lost.
		min := seq
		for p := range s.parked {
			if p < min {
				min = p
			}
		}
		s.next = min
		s.foldParked()
	}
	return true
}

// freshSlide reports whether admitSlide(seq, ...) would admit seq as
// fresh, without changing any state. The collector uses it to order
// side effects before admission: archive the batch only if the frame is
// fresh, then spend the seq — a failed archive write must leave the seq
// unspent so the retry is not mistaken for a duplicate.
func (s *stream) freshSlide(seq uint64) bool {
	if seq < s.next {
		return false
	}
	_, parked := s.parked[seq]
	return !parked
}

// foldParked folds the parked run contiguous with next.
func (s *stream) foldParked() {
	for len(s.parked) > 0 {
		if _, ok := s.parked[s.next]; !ok {
			return
		}
		delete(s.parked, s.next)
		s.next++
	}
}

// pending returns how many admitted seqs sit beyond the contiguous prefix.
func (s *stream) pending() int { return len(s.parked) }
