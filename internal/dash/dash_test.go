package dash

import (
	"context"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bba/internal/abr"
	"bba/internal/media"
	"bba/internal/netem"
	"bba/internal/trace"
	"bba/internal/units"
)

func testVideo(t testing.TB, chunks int, v time.Duration) *media.Video {
	t.Helper()
	vid, err := media.NewVBR(media.VBRConfig{
		Title:         "e2e",
		Ladder:        media.DefaultLadder(),
		ChunkDuration: v,
		NumChunks:     chunks,
	}, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	return vid
}

func TestManifestRoundTrip(t *testing.T) {
	orig := testVideo(t, 20, media.DefaultChunkDuration)
	m := ManifestFor(orig)
	back, err := m.Video()
	if err != nil {
		t.Fatal(err)
	}
	if back.NumChunks() != orig.NumChunks() || back.ChunkDuration != orig.ChunkDuration {
		t.Fatal("shape lost in round trip")
	}
	for ri := range orig.Ladder {
		if back.Ladder[ri] != orig.Ladder[ri] {
			t.Fatalf("ladder rate %d differs", ri)
		}
		for k := 0; k < orig.NumChunks(); k++ {
			if back.ChunkSize(ri, k) != orig.ChunkSize(ri, k) {
				t.Fatalf("size (%d,%d) differs", ri, k)
			}
		}
	}
}

func TestServerServesManifestAndChunks(t *testing.T) {
	video := testVideo(t, 10, media.DefaultChunkDuration)
	srv, err := NewServer(video)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/manifest.json")
	if err != nil {
		t.Fatal(err)
	}
	var m Manifest
	if err := jsonDecode(resp.Body, &m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if m.NumChunks != 10 || len(m.LadderBps) != len(video.Ladder) {
		t.Fatalf("manifest shape: %+v", m)
	}

	// A chunk's body length must match the advertised size.
	resp, err = http.Get(ts.URL + "/chunk/3/5")
	if err != nil {
		t.Fatal(err)
	}
	n, _ := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if n != video.ChunkSize(3, 5) {
		t.Errorf("chunk body %d bytes, want %d", n, video.ChunkSize(3, 5))
	}

	// Out-of-range and malformed requests 404/400 without panicking.
	for _, path := range []string{"/chunk/99/0", "/chunk/0/999", "/chunk/x/y", "/chunk/1", "/nope"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Errorf("path %q unexpectedly succeeded", path)
		}
	}
	if srv.Requests() == 0 {
		t.Error("request counter did not move")
	}
}

func TestStreamEndToEnd(t *testing.T) {
	// Short chunks keep the real-time session fast: 24 × 500 ms = 12 s of
	// video over a fast loopback link completes in well under a second of
	// wall time (downloads are quick, the buffer never fills).
	video := testVideo(t, 24, 500*time.Millisecond)
	srv, err := NewServer(video)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	res, err := Stream(context.Background(), ClientConfig{
		BaseURL:   ts.URL,
		Algorithm: abr.NewBBA2(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Chunks) != 24 {
		t.Fatalf("downloaded %d chunks, want 24", len(res.Chunks))
	}
	if res.Played != 12*time.Second {
		t.Errorf("played %v, want 12s", res.Played)
	}
	if res.Rebuffers != 0 {
		t.Errorf("rebuffers = %d on loopback", res.Rebuffers)
	}
	// On an unconstrained link the rate must climb off R_min.
	last := res.Chunks[len(res.Chunks)-1]
	if last.RateIndex == 0 {
		t.Error("rate never climbed on a fast link")
	}
}

func TestStreamThroughShapedLink(t *testing.T) {
	// End-to-end through a 2 Mb/s shaped connection: the client must
	// settle near the ladder rung the link supports, not at R_max.
	video := testVideo(t, 16, 500*time.Millisecond)
	srv, err := NewServer(video)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	linkTrace := trace.Constant(2*units.Mbps, time.Hour)
	transport := &http.Transport{
		DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
			c, err := (&net.Dialer{}).DialContext(ctx, network, addr)
			if err != nil {
				return nil, err
			}
			return netem.NewConn(c, netem.NewShaper(linkTrace)), nil
		},
	}
	res, err := Stream(context.Background(), ClientConfig{
		BaseURL:    ts.URL,
		HTTPClient: &http.Client{Transport: transport},
		Algorithm:  abr.NewBBA2(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Measured throughput on downloads must reflect the shaping: no chunk
	// can have seen much more than 2 Mb/s.
	for _, c := range res.Chunks {
		if c.Throughput > 4*units.Mbps {
			t.Errorf("chunk %d measured %v through a 2Mb/s link", c.Index, c.Throughput)
		}
	}
}

func TestStreamRetriesTransientFailures(t *testing.T) {
	video := testVideo(t, 8, 500*time.Millisecond)
	srv, err := NewServer(video)
	if err != nil {
		t.Fatal(err)
	}
	// Chunk 3 fails on its first attempt only.
	failed := false
	srv.FailChunk = func(rate, chunk int) bool {
		if chunk == 3 && !failed {
			failed = true
			return true
		}
		return false
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	res, err := Stream(context.Background(), ClientConfig{
		BaseURL:   ts.URL,
		Algorithm: abr.NewBBA0(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Incomplete {
		t.Error("transient failure should have been retried")
	}
	if len(res.Chunks) != 8 {
		t.Errorf("downloaded %d chunks, want 8", len(res.Chunks))
	}
}

func TestStreamGivesUpAfterPersistentFailures(t *testing.T) {
	video := testVideo(t, 8, 500*time.Millisecond)
	srv, err := NewServer(video)
	if err != nil {
		t.Fatal(err)
	}
	srv.FailChunk = func(rate, chunk int) bool { return chunk == 2 }
	ts := httptest.NewServer(srv)
	defer ts.Close()

	res, err := Stream(context.Background(), ClientConfig{
		BaseURL:    ts.URL,
		Algorithm:  abr.NewBBA0(),
		MaxRetries: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Incomplete {
		t.Error("persistent failure should mark the session incomplete")
	}
	if len(res.Chunks) != 2 {
		t.Errorf("downloaded %d chunks before the dead chunk, want 2", len(res.Chunks))
	}
}

func TestStreamWatchLimit(t *testing.T) {
	video := testVideo(t, 40, 500*time.Millisecond)
	srv, err := NewServer(video)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	limit := 5 * time.Second
	res, err := Stream(context.Background(), ClientConfig{
		BaseURL:    ts.URL,
		Algorithm:  abr.NewBBA2(),
		WatchLimit: limit,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Played != limit {
		t.Errorf("played %v, want %v", res.Played, limit)
	}
}

func TestStreamContextCancellation(t *testing.T) {
	video := testVideo(t, 40, 500*time.Millisecond)
	srv, err := NewServer(video)
	if err != nil {
		t.Fatal(err)
	}
	srv.Latency = 50 * time.Millisecond
	ts := httptest.NewServer(srv)
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Millisecond)
	defer cancel()
	_, err = Stream(ctx, ClientConfig{BaseURL: ts.URL, Algorithm: abr.NewBBA0()})
	if err == nil {
		t.Fatal("cancelled stream returned no error")
	}
}

func TestStreamBadBaseURL(t *testing.T) {
	_, err := Stream(context.Background(), ClientConfig{
		BaseURL:   "http://127.0.0.1:1", // nothing listens here
		Algorithm: abr.NewBBA0(),
	})
	if err == nil || !strings.Contains(err.Error(), "manifest") {
		t.Errorf("err = %v, want manifest fetch failure", err)
	}
	if _, err := Stream(context.Background(), ClientConfig{BaseURL: "x"}); err == nil {
		t.Error("nil algorithm accepted")
	}
}

func TestStreamRminPromotion(t *testing.T) {
	video := testVideo(t, 8, 500*time.Millisecond)
	srv, err := NewServer(video)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	res, err := Stream(context.Background(), ClientConfig{
		BaseURL:   ts.URL,
		Algorithm: abr.RminAlways{},
		Rmin:      560 * units.Kbps,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Chunks {
		if c.Rate != 560*units.Kbps {
			t.Fatalf("chunk %d at %v, want promoted R_min 560kb/s", c.Index, c.Rate)
		}
	}
}
