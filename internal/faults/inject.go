package faults

import (
	"time"
)

// mix64 is the SplitMix64 finalizer — the same mixer the A/B harness uses
// to derive per-session RNGs, reused here so fault decisions are pure
// functions of their coordinates.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// hash folds the seed and coordinates into a uniform 64-bit value.
func hash(seed uint64, coords ...uint64) uint64 {
	x := seed
	for _, v := range coords {
		x += (v + 1) * 0x9E3779B97F4A7C15
		x = mix64(x)
	}
	return x
}

// unitFloat maps a hash to [0, 1).
func unitFloat(h uint64) float64 {
	return float64(h>>11) / (1 << 53)
}

// Backoff returns the capped exponential backoff before retry attempt
// (attempt ≥ 1), with deterministic jitter: the base delay doubles per
// attempt up to cap, then ±25% jitter derived from hash(seed, chunk,
// attempt) is applied. No wall-clock or shared RNG is read, so retry
// timing — and therefore every journal built on it — is reproducible.
func Backoff(base, cap time.Duration, seed uint64, chunk, attempt int) time.Duration {
	if base <= 0 || attempt <= 0 {
		return 0
	}
	d := base
	for i := 1; i < attempt && d < cap; i++ {
		d *= 2
	}
	if cap > 0 && d > cap {
		d = cap
	}
	// Jitter in [0.75, 1.25): desynchronizes retry herds without
	// sacrificing determinism.
	j := 0.75 + 0.5*unitFloat(hash(seed, uint64(chunk), uint64(attempt), 0x9e37))
	return time.Duration(float64(d) * j)
}

// AttemptFailProb is the probability a chunk attempt fails while an
// HTTP-path episode is active. It is deliberately below 1 so a retry
// inside the episode can still succeed occasionally — bursts in the wild
// are lossy, not absolute.
const AttemptFailProb = 0.9

// SessionInjector makes per-chunk fault decisions for the virtual-time
// player. It is stateless: every decision is a pure function of (seed,
// chunk, attempt) and the schedule, so a shared injector is safe for
// concurrent paired sessions and identical coordinates always reproduce
// identical fault histories.
type SessionInjector struct {
	sched *Schedule
	seed  uint64

	// StallTimeout is the virtual cost of an attempt lost to a stalled
	// body — the client waits its per-chunk timeout (default 8 s).
	StallTimeout time.Duration
	// ErrorDelay is the virtual cost of a 503 round trip (default 250 ms).
	ErrorDelay time.Duration
	// ResetDelay is the virtual cost of a mid-download reset (default 1 s:
	// part of the chunk transferred, then the teardown).
	ResetDelay time.Duration
}

// NewSessionInjector builds an injector for the schedule, deterministic in
// seed.
func NewSessionInjector(s *Schedule, seed int64) *SessionInjector {
	return &SessionInjector{
		sched:        s,
		seed:         mix64(uint64(seed)),
		StallTimeout: 8 * time.Second,
		ErrorDelay:   250 * time.Millisecond,
		ResetDelay:   time.Second,
	}
}

// ChunkFault decides whether attempt (0-based) of chunk fails at session
// time now. It returns the fault's telemetry label, the virtual time the
// failure costs, and whether the attempt failed. It implements the
// player's injector hook.
func (in *SessionInjector) ChunkFault(now time.Duration, chunk, attempt int) (label string, delay time.Duration, failed bool) {
	if in == nil || in.sched.Empty() {
		return "", 0, false
	}
	f, ok := in.sched.ActiveHTTP(now)
	if !ok {
		return "", 0, false
	}
	if unitFloat(hash(in.seed, uint64(f.Kind), uint64(chunk), uint64(attempt))) >= AttemptFailProb {
		return "", 0, false
	}
	switch f.Kind {
	case ServerError:
		return f.Kind.String(), in.ErrorDelay, true
	case StallBody:
		return f.Kind.String(), in.StallTimeout, true
	case ConnReset:
		return f.Kind.String(), in.ResetDelay, true
	}
	return "", 0, false
}

// RequestLatency returns the extra first-byte delay a request issued at
// session time now pays under an active latency spike. It implements the
// player's latency hook.
func (in *SessionInjector) RequestLatency(now time.Duration) time.Duration {
	if in == nil || in.sched.Empty() {
		return 0
	}
	if f, ok := in.sched.Active(LatencySpike, now); ok {
		return f.Latency
	}
	return 0
}

// Schedule returns the schedule the injector draws decisions from.
func (in *SessionInjector) Schedule() *Schedule { return in.sched }
