package abr

import (
	"testing"
	"time"

	"bba/internal/units"
)

func TestBufferTargetControlDirection(t *testing.T) {
	s := cbrStream(t)
	// Same estimate, three buffer positions: below / at / above target.
	pick := func(buf time.Duration) int {
		c := NewBufferTarget()
		c.InitialEstimate = 3 * units.Mbps
		st := stateAt(buf, 3, 5)
		st.PrevIndex = 3
		return c.Next(st, s)
	}
	below := pick(40 * time.Second)
	at := pick(120 * time.Second)
	above := pick(220 * time.Second)
	if !(below < at && at < above) {
		t.Errorf("controller not monotone in buffer error: %d, %d, %d", below, at, above)
	}
	// At the set-point the adjustment is 1: pick = HighestAtMost(Ĉ).
	if want := s.Ladder().HighestAtMost(3 * units.Mbps); at != want {
		t.Errorf("at-target pick = %d, want %d", at, want)
	}
}

func TestBufferTargetPanic(t *testing.T) {
	s := cbrStream(t)
	c := NewBufferTarget()
	c.InitialEstimate = 5 * units.Mbps
	st := stateAt(5*time.Second, 7, 3)
	if got := c.Next(st, s); got != 0 {
		t.Errorf("panic pick = %d, want R_min", got)
	}
}

func TestBufferTargetNoInformation(t *testing.T) {
	s := cbrStream(t)
	if got := NewBufferTarget().Next(stateAt(0, -1, 0), s); got != 0 {
		t.Errorf("uninformed pick = %d", got)
	}
}

func TestElasticHarmonicFilterIsPessimistic(t *testing.T) {
	s := cbrStream(t)
	c := NewElastic()
	// Four fast samples and one slow one: the harmonic mean must sit far
	// below the arithmetic mean.
	feeds := []units.BitRate{5 * units.Mbps, 5 * units.Mbps, 5 * units.Mbps, 5 * units.Mbps, 500 * units.Kbps}
	for i, tp := range feeds {
		st := stateAt(120*time.Second, 3, i)
		st.LastThroughput = tp
		c.Next(st, s)
	}
	h := c.harmonic()
	if h > 2*units.Mbps {
		t.Errorf("harmonic mean %v not pessimistic (arithmetic would be ≈4.1Mb/s)", h)
	}
	if h < 500*units.Kbps {
		t.Errorf("harmonic mean %v below the slowest sample", h)
	}
}

func TestElasticWindowSlides(t *testing.T) {
	s := cbrStream(t)
	c := NewElastic()
	for i := 0; i < 20; i++ {
		st := stateAt(120*time.Second, 3, i)
		st.LastThroughput = units.BitRate(i+1) * units.Mbps
		c.Next(st, s)
	}
	if len(c.samples) != c.Window {
		t.Errorf("window holds %d samples, want %d", len(c.samples), c.Window)
	}
	// Only the last 5 samples (16..20 Mb/s) remain: harmonic ≈ 17.8 Mb/s.
	if h := c.harmonic(); h < 16*units.Mbps || h > 20*units.Mbps {
		t.Errorf("harmonic over the window = %v", h)
	}
}

func TestElasticIntegralAntiWindup(t *testing.T) {
	s := cbrStream(t)
	c := NewElastic()
	c.InitialEstimate = 3 * units.Mbps
	// Hold the buffer far above target for many decisions: the integral
	// must saturate, not grow without bound.
	for i := 0; i < 500; i++ {
		st := stateAt(235*time.Second, 5, i)
		st.LastThroughput = 3 * units.Mbps
		c.Next(st, s)
	}
	if c.integral > 30 || c.integral < -30 {
		t.Errorf("integral wound up to %v", c.integral)
	}
}

func TestElasticPanic(t *testing.T) {
	s := cbrStream(t)
	c := NewElastic()
	c.InitialEstimate = 5 * units.Mbps
	st := stateAt(5*time.Second, 7, 3)
	if got := c.Next(st, s); got != 0 {
		t.Errorf("panic pick = %d", got)
	}
}

func TestRelatedByName(t *testing.T) {
	for _, name := range []string{"PID", "ELASTIC"} {
		a, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if a.Name() != name {
			t.Errorf("Name() = %q, want %q", a.Name(), name)
		}
	}
}
