package telemetry

import "testing"

// TestKindNamesExhaustive walks every declared Kind and fails if one was
// added to the taxonomy without a journal name, with a colliding name, or
// without a ParseKind round-trip. This is the guard that keeps journals
// self-describing: an event whose Kind stringifies to "unknown" can never
// be written by a correct emitter.
func TestKindNamesExhaustive(t *testing.T) {
	seen := make(map[string]Kind, int(numKinds))
	for k := SessionStart; k < numKinds; k++ {
		name := k.String()
		if name == "unknown" || name == "" {
			t.Errorf("Kind %d has no entry in kindNames; add its journal name", uint8(k))
			continue
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("Kind %d and %d share the name %q", uint8(prev), uint8(k), name)
		}
		seen[name] = k
		back, ok := ParseKind(name)
		if !ok || back != k {
			t.Errorf("ParseKind(%q) = %d, %v; want %d, true", name, uint8(back), ok, uint8(k))
		}
	}
	if len(seen) != int(numKinds-SessionStart) {
		t.Errorf("%d named kinds for %d declared", len(seen), numKinds-SessionStart)
	}
}

// TestKindOutOfRange pins the behavior outside the taxonomy: the zero
// Kind, the sentinel and arbitrary bytes all stringify to "unknown", and
// no name parses to them.
func TestKindOutOfRange(t *testing.T) {
	for _, k := range []Kind{0, numKinds, numKinds + 1, 255} {
		if s := k.String(); s != "unknown" {
			t.Errorf("Kind(%d).String() = %q, want unknown", uint8(k), s)
		}
	}
	if k, ok := ParseKind("unknown"); ok {
		t.Errorf("ParseKind(unknown) resolved to %d", uint8(k))
	}
	if _, ok := ParseKind("not_an_event"); ok {
		t.Error("ParseKind accepted an undeclared name")
	}
}
