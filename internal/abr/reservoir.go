package abr

import (
	"time"

	"bba/internal/units"
)

// ReservoirBounds are the paper's practical clamp: "we bound the size of
// reservoir to be between 8 seconds to 140 seconds".
const (
	MinReservoir = 8 * time.Second
	MaxReservoir = 140 * time.Second
)

// DefaultReservoirWindow is X in the Section 5.1 calculation: "we set X as
// twice of the buffer size, i.e., 480 seconds".
const DefaultReservoirWindow = 480 * time.Second

// DynamicReservoir implements the Figure 12 calculation. Looking ahead over
// the next window of playback from chunk k, it assumes capacity exactly
// R_min and sums, chunk by chunk at rate R_min, the buffer the client will
// consume (ChunkSize/R_min seconds of download) minus the buffer it
// resupplies (V seconds per chunk). The reservoir must cover the worst
// prefix of that deficit — for a static scene the running sum goes negative
// (tiny chunks download faster than real time) and for an action scene it
// can exceed half the buffer, exactly as the paper describes. The result is
// clamped to [MinReservoir, MaxReservoir].
func DynamicReservoir(s Stream, k int, window time.Duration) time.Duration {
	if window <= 0 {
		window = DefaultReservoirWindow
	}
	v := s.ChunkDuration()
	rmin := s.Ladder().Min()
	chunks := int(window / v)
	var running, worst float64 // seconds of buffer deficit
	for i := 0; i < chunks; i++ {
		idx := k + i
		if idx >= s.NumChunks() {
			break
		}
		size := s.ChunkSize(0, idx)
		downloadSecs := float64(size*8) / float64(rmin)
		running += downloadSecs - v.Seconds()
		if running > worst {
			worst = running
		}
	}
	r := units.SecondsToDuration(worst)
	if r < MinReservoir {
		return MinReservoir
	}
	if r > MaxReservoir {
		return MaxReservoir
	}
	return r
}
