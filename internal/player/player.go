// Package player is the chunk-granularity playback engine: it drives an
// ABR algorithm against a capacity trace and a video title, reproducing the
// client model of the paper's Figures 2 and 11.
//
// The engine runs in virtual time. The client requests one chunk at a time
// (it "cannot cancel an ongoing video chunk download"), observes how long
// the download took, lets the playback buffer drain meanwhile, and asks the
// algorithm for the next rate only when the chunk completes. When the
// buffer fills, the client idles until there is space before requesting
// again — the ON-OFF pattern discussed in Section 8. When it empties
// mid-download, playback freezes: a rebuffer event.
//
// Because everything is driven by download-completion arithmetic over the
// trace integral, thousands of multi-hour sessions simulate in milliseconds
// while remaining observationally identical to a wall-clock player.
package player

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"bba/internal/abr"
	"bba/internal/buffer"
	"bba/internal/faults"
	"bba/internal/telemetry"
	"bba/internal/trace"
	"bba/internal/units"
)

// Config describes one streaming session.
type Config struct {
	// Algorithm is the rate-selection algorithm; a fresh per-session
	// instance (algorithms are stateful).
	Algorithm abr.Algorithm
	// Stream is the session's view of the title (possibly with a
	// promoted R_min).
	Stream abr.Stream
	// Trace is the capacity process the downloads run against.
	Trace *trace.Trace
	// BufferMax is the playback buffer capacity; 0 means the paper's
	// 240 s browser-player buffer.
	BufferMax time.Duration
	// WatchLimit stops the session after this much video has been
	// delivered to the viewer; 0 watches the whole title.
	WatchLimit time.Duration
	// ResumeThreshold is the occupancy a stalled player waits for before
	// restarting playback; 0 means buffer.DefaultResume, negative means
	// resume on the first chunk.
	ResumeThreshold time.Duration
	// Seeks are viewer seeks, in ascending AfterPlayed order: once that
	// much video has been delivered, the buffer is flushed and the next
	// request jumps to ToChunk. Startup-capable algorithms re-enter
	// their startup phase (abr.SeekAware).
	Seeks []Seek
	// Observer, when non-nil, receives the session's telemetry events
	// in session-clock order. A nil observer costs nothing: no event
	// values are built and no buffer state is polled.
	Observer telemetry.Observer
	// Injector, when non-nil, subjects each chunk download attempt to
	// injected faults. Failed attempts are retried with deterministic
	// capped-exponential backoff; when the per-rate budget runs out the
	// session degrades to the lowest rate and shrinks the request instead
	// of aborting. A nil injector costs nothing: the download path is the
	// uninstrumented one.
	Injector FaultInjector
	// Retry tunes the retry/degradation policy; the zero value means
	// defaults (budget 3, backoff 200 ms doubling to a 5 s cap).
	Retry RetryPolicy
}

// FaultInjector decides per-attempt chunk failures and per-request latency
// for a session under injected faults. *faults.SessionInjector satisfies
// it. Implementations must be pure functions of their arguments so
// sessions stay deterministic and replayable.
type FaultInjector interface {
	// ChunkFault reports whether this attempt (0-based) at chunk fails at
	// session time now, the telemetry label of the fault, and the virtual
	// time the failed attempt costs.
	ChunkFault(now time.Duration, chunk, attempt int) (label string, delay time.Duration, failed bool)
	// RequestLatency is the extra first-byte delay a request issued at
	// session time now pays (latency spikes).
	RequestLatency(now time.Duration) time.Duration
}

// RetryPolicy bounds the player's chunk-retry behaviour under faults.
type RetryPolicy struct {
	// Budget is how many failed attempts at the current rate trigger
	// degradation to the lowest rate (default 3). At the lowest rate the
	// player keeps retrying: every attempt advances the session clock, so
	// it always outlives a finite fault episode.
	Budget int
	// BackoffBase and BackoffCap bound the exponential backoff between
	// attempts (defaults 200 ms and 5 s).
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// Seed drives the deterministic backoff jitter.
	Seed int64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Budget <= 0 {
		p.Budget = 3
	}
	if p.BackoffBase <= 0 {
		p.BackoffBase = 200 * time.Millisecond
	}
	if p.BackoffCap <= 0 {
		p.BackoffCap = 5 * time.Second
	}
	return p
}

// Seek is one viewer seek.
type Seek struct {
	// AfterPlayed triggers the seek once this much video has played.
	AfterPlayed time.Duration
	// ToChunk is the chunk index playback jumps to.
	ToChunk int
}

// SeekRecord logs an executed seek.
type SeekRecord struct {
	// At is the session clock when the seek happened.
	At time.Duration
	// ToChunk is where playback jumped.
	ToChunk int
	// JoinDelay is the wait for the first post-seek chunk.
	JoinDelay time.Duration
}

// ChunkRecord logs one downloaded chunk.
type ChunkRecord struct {
	Index       int           // chunk index within the title
	RateIndex   int           // session-ladder index it was fetched at
	Rate        units.BitRate // nominal rate of that ladder entry
	Bytes       int64         // actual chunk size
	Start       time.Duration // session clock when the request was issued
	Download    time.Duration // transfer duration
	Throughput  units.BitRate // measured capacity during the transfer
	BufferAfter time.Duration // buffer occupancy right after arrival
}

// Result is the complete outcome of one session.
type Result struct {
	Algorithm string
	Chunks    []ChunkRecord

	// JoinDelay is the time to the first chunk (excluded from playback
	// metrics, as in the paper).
	JoinDelay time.Duration
	// Played is total video time delivered to the viewer.
	Played time.Duration
	// Rebuffers is the number of rebuffer events.
	Rebuffers int
	// StallTime is the total time playback was frozen.
	StallTime time.Duration
	// Switches is the number of video-rate changes between consecutive
	// chunks.
	Switches int
	// Incomplete marks a session whose download could never finish
	// (the trace ended in a permanent outage).
	Incomplete bool
	// Faults counts injected faults that hit chunk attempts.
	Faults int
	// Retries counts chunk re-attempts after injected failures.
	Retries int
	// Degradations counts drops to the lowest rate under repeated failure.
	Degradations int
	// Failovers counts endpoint switches (HTTP client sessions only).
	Failovers int
	// Seeks logs the viewer seeks that executed.
	Seeks []SeekRecord
	// End is the session clock when the session finished.
	End time.Duration
}

// ErrNoProgress is returned when the first chunk can never download (the
// trace is a dead link from the start).
var ErrNoProgress = errors.New("player: download cannot make progress")

// Run simulates the session to completion and returns its Result.
func Run(cfg Config) (*Result, error) { return run(nil, cfg) }

// RunContext is Run with cancellation: the context is checked once per
// chunk, so multi-hour (or million-session) simulations stop promptly when
// the caller cancels. A nil context behaves like Run.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	return run(ctx, cfg)
}

func run(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.Algorithm == nil {
		return nil, errors.New("player: nil algorithm")
	}
	if cfg.Trace == nil {
		return nil, errors.New("player: nil trace")
	}
	bufMax := cfg.BufferMax
	if bufMax <= 0 {
		bufMax = buffer.DefaultMax
	}
	s := cfg.Stream
	v := s.ChunkDuration()
	ladder := s.Ladder()

	buf := buffer.New(bufMax)
	if cfg.ResumeThreshold != 0 {
		buf.SetResume(cfg.ResumeThreshold)
	}
	// The session clock only moves forward, so one trace cursor serves the
	// whole session: each download resumes the segment walk where the last
	// one finished instead of re-searching the trace.
	link := cfg.Trace.Cursor()
	res := &Result{
		Algorithm: cfg.Algorithm.Name(),
		Chunks:    make([]ChunkRecord, 0, chunkCapacity(s, v, cfg.WatchLimit)),
	}
	var (
		now       time.Duration
		prevIdx   = -1
		lastTP    units.BitRate
		lastDl    time.Duration
		lastBytes int64
	)

	// Telemetry state. Everything here is only touched when obs != nil,
	// keeping the nil path identical to the uninstrumented engine.
	obs := cfg.Observer
	var (
		stallBase     time.Duration // buf.StallTime() when the open rebuffer began
		lastReservoir = time.Duration(-1)
		reporter      abr.ReservoirReporter
	)
	if obs != nil {
		reporter, _ = cfg.Algorithm.(abr.ReservoirReporter)
		obs.OnEvent(telemetry.Event{
			Kind: telemetry.SessionStart, Chunk: -1, RateIndex: -1,
			PrevRateIndex: -1, Label: res.Algorithm,
		})
	}

	// Fault state. Only built when an injector is configured, so the
	// nil-injector hot path stays byte-for-byte the uninstrumented engine.
	inj := cfg.Injector
	var (
		rp           RetryPolicy
		faultAdvance func(d time.Duration, chunk int)
	)
	if inj != nil {
		rp = cfg.Retry.withDefaults()
		// Advance the session clock through a failed attempt or backoff:
		// the buffer keeps draining, and a drain-to-empty is a real
		// rebuffer with the same telemetry as one during a download.
		faultAdvance = func(d time.Duration, chunk int) {
			if d <= 0 {
				return
			}
			preLevel, preStall, preRebuf := buf.Level(), buf.StallTime(), buf.Rebuffers()
			buf.Advance(d)
			now += d
			if obs != nil && buf.Rebuffers() > preRebuf {
				stallBase = preStall
				obs.OnEvent(telemetry.Event{
					Kind: telemetry.RebufferStart, At: now - d + preLevel,
					Chunk: chunk, RateIndex: -1, PrevRateIndex: -1,
				})
			}
		}
	}

	seeks := cfg.Seeks
	justSought := false
	for k := 0; k < s.NumChunks(); k++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		// Execute a pending seek once enough video has been delivered.
		if len(seeks) > 0 && buf.Played() >= seeks[0].AfterPlayed {
			target := seeks[0].ToChunk
			seeks = seeks[1:]
			if target >= 0 && target < s.NumChunks() {
				buf.Flush()
				if sa, ok := cfg.Algorithm.(abr.SeekAware); ok {
					sa.Seeked()
				}
				res.Seeks = append(res.Seeks, SeekRecord{At: now, ToChunk: target})
				k = target
				justSought = true
				if obs != nil {
					obs.OnEvent(telemetry.Event{
						Kind: telemetry.Seek, At: now, Chunk: target,
						RateIndex: -1, PrevRateIndex: -1, Played: buf.Played(),
					})
				}
			}
		}
		// Stop requesting once the buffer already holds everything the
		// viewer will watch — unless a seek is still pending, which will
		// discard that buffer.
		if len(seeks) == 0 && cfg.WatchLimit > 0 && buf.Played()+buf.Level() >= cfg.WatchLimit {
			break
		}

		// ON-OFF: wait for space before the next request.
		if !buf.HasSpaceFor(v) {
			wait := buf.TimeUntilSpaceFor(v)
			buf.Advance(wait)
			now += wait
		}

		st := abr.State{
			Now:            now,
			Buffer:         buf.Level(),
			BufferMax:      bufMax,
			PrevIndex:      prevIdx,
			NextChunk:      k,
			LastThroughput: lastTP,
			LastDownload:   lastDl,
			LastChunkBytes: lastBytes,
		}
		idx := ladder.Clamp(cfg.Algorithm.Next(st, s))
		bytes := s.ChunkSize(idx, k)
		if obs != nil {
			obs.OnEvent(telemetry.Event{
				Kind: telemetry.BufferSample, At: now, Chunk: k,
				RateIndex: -1, PrevRateIndex: -1,
				Buffer: buf.Level(), Played: buf.Played(),
			})
			if reporter != nil {
				if r, p, ok := reporter.LastReservoir(); ok && r != lastReservoir {
					lastReservoir = r
					obs.OnEvent(telemetry.Event{
						Kind: telemetry.ReservoirUpdate, At: now, Chunk: k,
						RateIndex: -1, PrevRateIndex: -1,
						Reservoir: r, Protection: p, Buffer: buf.Level(),
					})
				}
			}
			if prevIdx >= 0 && idx != prevIdx {
				obs.OnEvent(telemetry.Event{
					Kind: telemetry.RateSwitch, At: now, Chunk: k,
					RateIndex: idx, PrevRateIndex: prevIdx,
					Rate: ladder[idx], Buffer: buf.Level(),
				})
			}
			obs.OnEvent(telemetry.Event{
				Kind: telemetry.ChunkRequest, At: now, Chunk: k,
				RateIndex: idx, PrevRateIndex: -1,
				Rate: ladder[idx], Bytes: bytes, Buffer: buf.Level(),
			})
		}

		if inj != nil {
			// Resilience loop: each attempt pays any active latency spike,
			// may fail to an injected fault (costing its virtual delay plus
			// a deterministic backoff), and after Budget failures at the
			// chosen rate the session degrades to the lowest rung with a
			// shrunken request rather than aborting. The loop always
			// terminates: every failed attempt advances the clock by at
			// least the backoff, so a finite episode is always outlived.
			attempt, budgetUsed := 0, 0
			degraded := false
			for {
				faultAdvance(inj.RequestLatency(now), k)
				label, cost, failed := inj.ChunkFault(now, k, attempt)
				if !failed {
					break
				}
				res.Faults++
				if obs != nil {
					obs.OnEvent(telemetry.Event{
						Kind: telemetry.FaultInject, At: now, Chunk: k,
						RateIndex: idx, PrevRateIndex: -1,
						Duration: cost, Label: label,
					})
				}
				attempt++
				budgetUsed++
				backoff := faults.Backoff(rp.BackoffBase, rp.BackoffCap, uint64(rp.Seed), k, attempt)
				faultAdvance(cost+backoff, k)
				res.Retries++
				if obs != nil {
					obs.OnEvent(telemetry.Event{
						Kind: telemetry.ChunkRetry, At: now, Chunk: k,
						RateIndex: idx, PrevRateIndex: -1, Duration: backoff,
					})
				}
				if budgetUsed >= rp.Budget && !degraded && idx > 0 {
					degraded = true
					budgetUsed = 0
					res.Degradations++
					prevReq := idx
					idx = 0
					bytes = s.ChunkSize(0, k)
					if obs != nil {
						obs.OnEvent(telemetry.Event{
							Kind: telemetry.Degrade, At: now, Chunk: k,
							RateIndex: 0, PrevRateIndex: prevReq,
							Rate: ladder[0], Bytes: bytes, Buffer: buf.Level(),
						})
						obs.OnEvent(telemetry.Event{
							Kind: telemetry.ChunkRequest, At: now, Chunk: k,
							RateIndex: 0, PrevRateIndex: -1,
							Rate: ladder[0], Bytes: bytes, Buffer: buf.Level(),
						})
					}
				}
			}
		}

		dl, ok := link.DownloadTime(now, bytes)
		if !ok {
			// Permanent outage: playback drains whatever is buffered
			// and freezes forever.
			if k == 0 {
				return nil, ErrNoProgress
			}
			res.Incomplete = true
			res.Rebuffers++
			if obs != nil {
				obs.OnEvent(telemetry.Event{
					Kind: telemetry.RebufferStart, At: now + buf.Level(),
					Chunk: k, RateIndex: -1, PrevRateIndex: -1,
					Label: "outage",
				})
			}
			break
		}

		var preLevel, preStall time.Duration
		var preRebuf int
		if obs != nil {
			preLevel, preStall, preRebuf = buf.Level(), buf.StallTime(), buf.Rebuffers()
		}
		buf.Advance(dl)
		now += dl
		if obs != nil && buf.Rebuffers() > preRebuf {
			// The stall began the instant the buffer drained mid-download.
			stallBase = preStall
			obs.OnEvent(telemetry.Event{
				Kind: telemetry.RebufferStart, At: now - dl + preLevel,
				Chunk: k, RateIndex: -1, PrevRateIndex: -1,
			})
		}
		if k == 0 {
			res.JoinDelay = now
		}
		if justSought {
			res.Seeks[len(res.Seeks)-1].JoinDelay = dl
			justSought = false
		}
		stalled := buf.Started() && !buf.Playing()
		// Overflow is impossible here because of the ON-OFF wait; an
		// error would indicate an engine bug, so surface it loudly.
		if err := buf.AddChunk(v); err != nil {
			return nil, err
		}

		if prevIdx >= 0 && idx != prevIdx {
			res.Switches++
		}
		lastTP = units.Throughput(bytes, dl)
		lastDl = dl
		lastBytes = bytes
		res.Chunks = append(res.Chunks, ChunkRecord{
			Index:       k,
			RateIndex:   idx,
			Rate:        ladder[idx],
			Bytes:       bytes,
			Start:       now - dl,
			Download:    dl,
			Throughput:  lastTP,
			BufferAfter: buf.Level(),
		})
		prevIdx = idx
		if obs != nil {
			if stalled && buf.Playing() {
				obs.OnEvent(telemetry.Event{
					Kind: telemetry.RebufferEnd, At: now, Chunk: k,
					RateIndex: -1, PrevRateIndex: -1,
					Duration: buf.StallTime() - stallBase, Buffer: buf.Level(),
				})
			}
			obs.OnEvent(telemetry.Event{
				Kind: telemetry.ChunkComplete, At: now, Chunk: k,
				RateIndex: idx, PrevRateIndex: -1,
				Rate: ladder[idx], Bytes: bytes, Duration: dl,
				Throughput: lastTP, Buffer: buf.Level(), Played: buf.Played(),
			})
		}
	}

	// Play out the tail of the buffer (up to the watch limit). For an
	// incomplete session this is the video the viewer still sees before
	// the permanent freeze. With no further downloads coming, a pending
	// stall ends now rather than waiting for the resume threshold.
	if obs != nil && !res.Incomplete && buf.Started() && !buf.Playing() {
		obs.OnEvent(telemetry.Event{
			Kind: telemetry.RebufferEnd, At: now, Chunk: -1,
			RateIndex: -1, PrevRateIndex: -1,
			Duration: buf.StallTime() - stallBase, Buffer: buf.Level(),
		})
	}
	buf.Resume()
	remaining := buf.Level()
	if cfg.WatchLimit > 0 {
		if left := cfg.WatchLimit - buf.Played(); left < remaining {
			remaining = left
		}
	}
	if remaining > 0 {
		buf.Advance(remaining)
		now += remaining
	}

	res.Played = buf.Played()
	res.Rebuffers += buf.Rebuffers()
	res.StallTime += buf.StallTime()
	res.End = now
	if obs != nil {
		obs.OnEvent(telemetry.Event{
			Kind: telemetry.SessionEnd, At: res.End, Chunk: len(res.Chunks),
			RateIndex: -1, PrevRateIndex: -1,
			Duration: res.StallTime, Played: res.Played, Label: res.Algorithm,
		})
	}
	return res, nil
}

// chunkCapacity sizes the Result.Chunks preallocation: the title length,
// tightened by the watch limit when one applies. A couple of extra slots
// absorb the chunks a stall-truncated or seek-shifted session downloads
// beyond the limit; the hint only avoids growth reallocations, correctness
// never depends on it.
func chunkCapacity(s abr.Stream, v time.Duration, watchLimit time.Duration) int {
	n := s.NumChunks()
	if watchLimit > 0 && v > 0 {
		if byLimit := int(watchLimit/v) + 2; byLimit < n {
			n = byLimit
		}
	}
	return n
}

// WriteChunkCSV emits the per-chunk log as CSV
// ("start_s,index,rate_kbps,bytes,download_s,throughput_kbps,buffer_s"),
// the raw series behind the time-series figures.
func (r *Result) WriteChunkCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "start_s,index,rate_kbps,bytes,download_s,throughput_kbps,buffer_s"); err != nil {
		return err
	}
	for _, c := range r.Chunks {
		if _, err := fmt.Fprintf(bw, "%.3f,%d,%.0f,%d,%.3f,%.0f,%.3f\n",
			c.Start.Seconds(), c.Index, c.Rate.Kilobits(), c.Bytes,
			c.Download.Seconds(), c.Throughput.Kilobits(), c.BufferAfter.Seconds()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// PlayHours returns the played time in hours.
func (r *Result) PlayHours() float64 { return r.Played.Hours() }

// RebuffersPerPlayhour is the paper's headline metric.
func (r *Result) RebuffersPerPlayhour() float64 {
	h := r.PlayHours()
	if h == 0 {
		return 0
	}
	return float64(r.Rebuffers) / h
}

// SwitchesPerPlayhour is the video-switching-rate metric of Figures 9, 20
// and 22.
func (r *Result) SwitchesPerPlayhour() float64 {
	h := r.PlayHours()
	if h == 0 {
		return 0
	}
	return float64(r.Switches) / h
}

// AvgRateKbps is the delivered average video rate: each chunk contributes
// its nominal rate weighted by its fixed playback duration.
func (r *Result) AvgRateKbps() float64 {
	if len(r.Chunks) == 0 {
		return 0
	}
	var sum float64
	for _, c := range r.Chunks {
		sum += c.Rate.Kilobits()
	}
	return sum / float64(len(r.Chunks))
}

// SteadyAvgRateKbps is the average video rate excluding the session's first
// two minutes — the paper's Figure 18 approximation of steady state. It
// returns 0 when the session never reaches steady state.
func (r *Result) SteadyAvgRateKbps() float64 {
	return r.avgRateAfter(2 * time.Minute)
}

// StartupAvgRateKbps is the average rate over the first minute, the metric
// behind "the BBA-1 algorithm achieves 700kb/s less than the Control" in
// the first 60 seconds.
func (r *Result) StartupAvgRateKbps() float64 {
	var sum float64
	n := 0
	for _, c := range r.Chunks {
		if c.Start >= time.Minute {
			break
		}
		sum += c.Rate.Kilobits()
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func (r *Result) avgRateAfter(cutoff time.Duration) float64 {
	var sum float64
	n := 0
	for _, c := range r.Chunks {
		if c.Start < cutoff {
			continue
		}
		sum += c.Rate.Kilobits()
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
