// Package batch is the campaign execution kernel: it advances many
// streaming sessions concurrently through flat, reusable lane state
// instead of running one player session at a time to completion.
//
// The kernel owns no simulation arithmetic. Every lane is a
// player.Session — the same step engine the scalar path drives — so a
// batch-executed campaign is byte-identical to a scalar one; the kernel
// only changes *when* each session's next chunk is simulated and what
// gets amortized across sessions:
//
//   - Lane state (buffer occupancy, trace cursor, rate/stall/switch/play
//     counters) lives value-embedded in a flat lane array plus parallel
//     bookkeeping slices, allocated once per Runner and reused for every
//     session the Runner ever executes — steady state allocates nothing
//     for lane state.
//   - Per-title reservoir plans (abr.TitlePlan) are built once per
//     (title, R_min) a shard draws and shared read-only by every lane
//     playing that title, via the Runner's abr.PlanCache.
//   - Sessions run with player.Config.SkipChunkRecords: campaigns never
//     read Result.Chunks, and dropping the per-chunk log removes the
//     scalar path's dominant allocation.
//   - The cancellation check happens once per kernel round (one chunk
//     per active lane) instead of once per chunk.
//
// A Runner is not safe for concurrent use; each campaign worker owns one
// and keeps it across shards, so plan and lane reuse spans a worker's
// whole share of the campaign.
package batch

import (
	"context"
	"fmt"

	"bba/internal/abr"
	"bba/internal/abtest"
	"bba/internal/faults"
	"bba/internal/media"
	"bba/internal/metrics"
	"bba/internal/player"
)

// Draw identifies one paired session for the kernel: the already-drawn
// user, the title it picked, and the draw's fault seed.
type Draw struct {
	User  abtest.User
	Video *media.Video
	Fseed int64 // ignored when the Runner has no fault config
}

// Config parameterizes a Runner.
type Config struct {
	// Groups are the experiment arms, exactly as in the scalar harness:
	// each draw is streamed once per group under identical inputs.
	Groups []abtest.Group
	// Faults, when non-nil, applies per-draw fault weather exactly as
	// abtest.PlayUser does.
	Faults *faults.ScheduleConfig
	// Width is the number of paired draws in flight (default 8). The
	// lane count is Width × len(Groups). More width amortizes stalls on
	// long sessions; memory grows with the traces of in-flight draws.
	Width int
	// OnRetire, when non-nil, is called once per retired player session,
	// from RunShard's goroutine. Campaign progress counts sessions the
	// kernel has actually finished through this hook.
	OnRetire func()
}

// DefaultWidth is the paired-draw concurrency used when Config.Width is
// unset.
const DefaultWidth = 8

// Runner executes shards of paired sessions through reusable lanes.
type Runner struct {
	cfg   Config
	plans *abr.PlanCache

	// Lane state: sessions is the flat lane array (player state embedded
	// by value); laneSlot and laneGroup are its parallel bookkeeping
	// slices. active holds the lane ids currently advancing, idle the
	// rest.
	sessions  []player.Session
	laneSlot  []int
	laneGroup []int
	active    []int
	idle      []int

	// Draw slots: one per in-flight paired draw. A slot keeps the shared
	// env alive and collects the per-group metrics until the draw folds.
	slots     []drawSlot
	freeSlots []int
}

type drawSlot struct {
	off int
	env abtest.SessionEnv
	// remaining counts the draw's lanes still running; the draw is
	// complete when it reaches zero.
	remaining int
	ms        []metrics.Session
}

// NewRunner builds a Runner for cfg.
func NewRunner(cfg Config) *Runner {
	if cfg.Width <= 0 {
		cfg.Width = DefaultWidth
	}
	groups := len(cfg.Groups)
	lanes := cfg.Width * groups
	r := &Runner{
		cfg:       cfg,
		plans:     abr.NewPlanCache(),
		sessions:  make([]player.Session, lanes),
		laneSlot:  make([]int, lanes),
		laneGroup: make([]int, lanes),
		active:    make([]int, 0, lanes),
		idle:      make([]int, 0, lanes),
		slots:     make([]drawSlot, cfg.Width),
		freeSlots: make([]int, 0, cfg.Width),
	}
	for lane := lanes - 1; lane >= 0; lane-- {
		r.idle = append(r.idle, lane)
	}
	for s := cfg.Width - 1; s >= 0; s-- {
		r.slots[s].ms = make([]metrics.Session, groups)
		r.freeSlots = append(r.freeSlots, s)
	}
	return r
}

// RunShard executes n paired draws. draw(off) supplies the draw for each
// offset in [0, n); it is called in ascending offset order, at most Width
// draws ahead of the fold. fold(off, ms) receives one metrics.Session per
// group, in group order, and is called exactly once per offset in
// ascending offset order — the same fold discipline as the scalar shard
// loop, which is what keeps campaign reports byte-identical. fold must
// not retain ms; the backing array is reused.
//
// An error from draw, fold, or any session aborts the shard. The context
// is checked once per kernel round.
func (r *Runner) RunShard(ctx context.Context, n int, draw func(off int) (Draw, error), fold func(off int, ms []metrics.Session) error) error {
	if len(r.active) != 0 {
		return fmt.Errorf("batch: Runner reused while a shard is in flight")
	}
	// parked maps a completed draw's offset to its slot until the fold
	// catches up; slots stay claimed while parked, so in-flight plus
	// parked draws never exceed Width.
	parked := make(map[int]int, r.cfg.Width)
	nextOff, foldNext := 0, 0

	flush := func() error {
		for {
			s, ok := parked[foldNext]
			if !ok {
				return nil
			}
			delete(parked, foldNext)
			if err := fold(foldNext, r.slots[s].ms); err != nil {
				return err
			}
			r.freeSlots = append(r.freeSlots, s)
			foldNext++
		}
	}
	fail := func(err error) error {
		// Abandon every in-flight lane so the Runner is reusable.
		r.active = r.active[:0]
		r.idle = r.idle[:0]
		for lane := len(r.sessions) - 1; lane >= 0; lane-- {
			r.idle = append(r.idle, lane)
		}
		r.freeSlots = r.freeSlots[:0]
		for s := len(r.slots) - 1; s >= 0; s-- {
			r.freeSlots = append(r.freeSlots, s)
		}
		return err
	}

	for foldNext < n {
		if err := ctx.Err(); err != nil {
			return fail(err)
		}
		// Refill: start draws while slots (and therefore lanes) are free.
		for len(r.freeSlots) > 0 && nextOff < n {
			d, err := draw(nextOff)
			if err != nil {
				return fail(err)
			}
			env, err := abtest.NewSessionEnv(d.User, d.Video, r.cfg.Faults, d.Fseed)
			if err != nil {
				return fail(fmt.Errorf("batch: draw %d: %w", nextOff, err))
			}
			s := r.freeSlots[len(r.freeSlots)-1]
			r.freeSlots = r.freeSlots[:len(r.freeSlots)-1]
			slot := &r.slots[s]
			slot.off = nextOff
			slot.env = env
			slot.remaining = len(r.cfg.Groups)
			for gi, g := range r.cfg.Groups {
				lane := r.idle[len(r.idle)-1]
				r.idle = r.idle[:len(r.idle)-1]
				pc := slot.env.PlayerConfig(g)
				pc.SkipChunkRecords = true
				if pl, ok := pc.Algorithm.(abr.PlanConsumer); ok {
					pl.UsePlans(r.plans)
				}
				if err := r.sessions[lane].Start(pc); err != nil {
					return fail(fmt.Errorf("batch: draw %d group %s: %w", nextOff, g.Name, err))
				}
				r.laneSlot[lane] = s
				r.laneGroup[lane] = gi
				r.active = append(r.active, lane)
			}
			nextOff++
		}

		// One kernel round: advance every active lane by one chunk,
		// retiring lanes as their sessions finish.
		for i := 0; i < len(r.active); {
			lane := r.active[i]
			done, err := r.sessions[lane].Step()
			if err != nil {
				s := &r.slots[r.laneSlot[lane]]
				g := r.cfg.Groups[r.laneGroup[lane]]
				return fail(fmt.Errorf("batch: draw %d group %s: %w", s.off, g.Name, err))
			}
			if !done {
				i++
				continue
			}
			si := r.laneSlot[lane]
			slot := &r.slots[si]
			gi := r.laneGroup[lane]
			u := slot.env.User
			slot.ms[gi] = metrics.FromResult(r.sessions[lane].Result(), u.Window, u.Day)
			if r.cfg.OnRetire != nil {
				r.cfg.OnRetire()
			}
			// Swap-remove keeps the active set dense.
			r.active[i] = r.active[len(r.active)-1]
			r.active = r.active[:len(r.active)-1]
			r.idle = append(r.idle, lane)
			slot.remaining--
			if slot.remaining == 0 {
				parked[slot.off] = si
				if err := flush(); err != nil {
					return fail(err)
				}
			}
		}
	}
	return nil
}
