// Command bbarena runs an N-way paired tournament between registered ABR
// algorithms: every entrant streams the same (user, trace, fault-weather)
// draw for every seed, and each unordered pair reports head-to-head win
// counts and paired-delta confidence intervals alongside the ordinary
// per-entrant marginals. The report is byte-identical at any -workers.
//
// Examples:
//
//	bbarena                                   # default field, table to stdout
//	bbarena -algos 'BBA-2,BOLA,SmoothThroughput' -sessions 5000 -faults
//	bbarena -algos all -sessions 2000 -json -report arena.json
//	bbarena -list
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"time"

	"bba/internal/abr"
	"bba/internal/arena"
	"bba/internal/campaign"
	"bba/internal/faults"
)

type options struct {
	algos     string
	sessions  int
	shardSize int
	days      int
	seed      int64
	faultSeed int64
	faultsOn  bool
	workers   int
	sketch    int
	jsonOut   bool
	report    string
	list      bool
	progress  time.Duration
}

// defaultField is the tournament run without -algos: the paper's champion
// against its strongest estimator-based rivals.
var defaultField = []string{"Control", "BBA-2", "BOLA", "SmoothThroughput", "Hybrid"}

func main() {
	var o options
	flag.StringVar(&o.algos, "algos", "", "comma-separated entrants, or 'all'; registered: "+strings.Join(abr.Names(), ", "))
	flag.IntVar(&o.sessions, "sessions", 2000, "paired draws (each streamed once per entrant)")
	flag.IntVar(&o.shardSize, "shard-size", 1024, "paired draws per shard (part of the tournament identity)")
	flag.IntVar(&o.days, "days", 3, "simulated calendar days")
	flag.Int64Var(&o.seed, "seed", 2014, "tournament seed")
	flag.Int64Var(&o.faultSeed, "fault-seed", 2014, "fault-weather seed (with -faults)")
	flag.BoolVar(&o.faultsOn, "faults", false, "run every draw under the standard fault schedule")
	flag.IntVar(&o.workers, "workers", 0, "worker goroutines (default GOMAXPROCS; never affects report bytes)")
	flag.IntVar(&o.sketch, "sketch", 512, "quantile-sketch size per metric")
	flag.BoolVar(&o.jsonOut, "json", false, "emit the full JSON report instead of the table")
	flag.StringVar(&o.report, "report", "", "output path (default stdout)")
	flag.BoolVar(&o.list, "list", false, "list registered algorithms and exit")
	flag.DurationVar(&o.progress, "progress-every", 2*time.Second, "progress line interval on stderr (0 disables)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if err := run(ctx, os.Stdout, os.Stderr, o); err != nil {
		fmt.Fprintln(os.Stderr, "bbarena:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, out, errw io.Writer, o options) error {
	if o.list {
		for _, n := range abr.Names() {
			fmt.Fprintln(out, n)
		}
		return nil
	}

	entrants, err := parseEntrants(o.algos)
	if err != nil {
		return err
	}

	cfg := arena.Config{
		Seed:        o.seed,
		Sessions:    o.sessions,
		Entrants:    entrants,
		ShardSize:   o.shardSize,
		Days:        o.days,
		Parallelism: o.workers,
		SketchSize:  o.sketch,
	}
	if o.faultsOn {
		fc := faults.DefaultScheduleConfig()
		cfg.Faults = &fc
		cfg.FaultSeed = o.faultSeed
	}
	if o.progress > 0 {
		cfg.Progress = progressPrinter(errw, o.progress)
	}

	r, err := arena.RunContext(ctx, cfg)
	if err != nil {
		return err
	}

	w := out
	if o.report != "" {
		f, err := os.Create(o.report)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if o.jsonOut {
		return r.WriteJSON(w)
	}
	return r.WriteTable(w)
}

// parseEntrants resolves -algos: empty means the default field, "all" the
// whole registry, otherwise a comma-separated list of registered names.
func parseEntrants(algos string) ([]string, error) {
	switch algos {
	case "":
		return defaultField, nil
	case "all":
		return abr.Names(), nil
	}
	var entrants []string
	for _, name := range strings.Split(algos, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, err := abr.New(name); err != nil {
			return nil, err
		}
		entrants = append(entrants, name)
	}
	return entrants, nil
}

func progressPrinter(w io.Writer, every time.Duration) func(campaign.Progress) {
	var last time.Duration
	return func(p campaign.Progress) {
		if p.Elapsed-last < every && p.SessionsDone < p.SessionsTotal {
			return
		}
		last = p.Elapsed
		fmt.Fprintf(w, "shard %d/%d  draws %d/%d  %.0f/s  eta %v\n",
			p.ShardsDone, p.ShardsTotal, p.SessionsDone, p.SessionsTotal,
			p.SessionsPerSec, p.ETA.Round(time.Second))
	}
}
