package collect

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"bba/internal/telemetry"
)

func testEvent(i int) telemetry.Event {
	return telemetry.Event{
		Kind: telemetry.BufferSample, Session: "d0.w0.s0.test", Chunk: i,
		RateIndex: 2, PrevRateIndex: -1, Buffer: 12 * time.Second,
		Played: time.Duration(i) * 4 * time.Second, Label: "BBA-0",
	}
}

func newTestShipper(t *testing.T, addr string, mut func(*ShipperConfig)) *Shipper {
	t.Helper()
	cfg := ShipperConfig{
		Addr: addr, Run: "ship-test", Session: 1,
		BatchEvents: 2, FlushInterval: -1,
		Retry: RetryPolicy{MaxAttempts: 10, Base: time.Millisecond, Cap: 4 * time.Millisecond, Seed: 3},
	}
	if mut != nil {
		mut(&cfg)
	}
	s, err := NewShipper(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestShipperBatchesAndShips(t *testing.T) {
	c := NewCollector(CollectorConfig{})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	s := newTestShipper(t, srv.URL, nil)
	for i := 0; i < 5; i++ {
		s.OnEvent(testEvent(i))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Flush(ctx); err != nil {
		t.Fatalf("flush: %v", err)
	}
	cs := c.Stats()
	// 5 events at BatchEvents=2: two full frames plus the partial the
	// flush sealed.
	if cs.Events != 5 || cs.Frames["events"] != 3 {
		t.Fatalf("collector stats %+v", cs)
	}
	ss := s.Stats()
	if ss.Events != 5 || ss.EventsDropped != 0 || ss.FramesShipped != 3 || ss.FramesDropped != 0 {
		t.Fatalf("shipper stats %+v", ss)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func TestShipperRetriesUntilAck(t *testing.T) {
	c := NewCollector(CollectorConfig{})
	inner := c.Handler()
	var n atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Two of every three ingest attempts fail before reaching the
		// collector — injected loss the retry loop must ride out.
		if r.URL.Path == "/ingest" && n.Add(1)%3 != 0 {
			http.Error(w, "injected", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	s := newTestShipper(t, srv.URL, nil)
	for i := 0; i < 4; i++ {
		s.OnEvent(testEvent(i))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := s.Flush(ctx); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if cs := c.Stats(); cs.Events != 4 {
		t.Fatalf("collector stats %+v", cs)
	}
	if ss := s.Stats(); ss.Retries == 0 || ss.FramesDropped != 0 {
		t.Fatalf("shipper stats %+v, want retries and no drops", ss)
	}
	s.Close()
}

func TestShipperReliableExhaustionIsFatal(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	s := newTestShipper(t, srv.URL, func(c *ShipperConfig) {
		c.Retry.MaxAttempts = 2
	})
	if err := s.ShipRunEnd(); err != nil {
		t.Fatalf("enqueue: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Flush(ctx); err == nil {
		t.Fatalf("reliable frame lost without error")
	}
	if err := s.Err(); err == nil {
		t.Fatalf("no sticky error after reliable loss")
	}
	s.Close()
}

func TestShipperPermanentRejection(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "never", http.StatusBadRequest)
	}))
	defer srv.Close()

	s := newTestShipper(t, srv.URL, nil)
	s.OnEvent(testEvent(0))
	s.OnEvent(testEvent(1))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Flush(ctx); err != nil {
		t.Fatalf("flush: %v", err)
	}
	ss := s.Stats()
	// A 4xx is not retried: one attempt, explicit drop.
	if ss.FramesDropped != 1 || ss.Retries != 0 || ss.SendErrors != 1 {
		t.Fatalf("shipper stats %+v", ss)
	}
	s.Close()
}

func TestShipperSpillsWhileCollectorDown(t *testing.T) {
	c := NewCollector(CollectorConfig{})
	inner := c.Handler()
	var up atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !up.Load() {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	s := newTestShipper(t, srv.URL, func(cfg *ShipperConfig) {
		cfg.BatchEvents = 1
		cfg.Queue = QueueConfig{MemFrames: 2, SpillDir: t.TempDir()}
		cfg.Retry = RetryPolicy{MaxAttempts: 1 << 20, Base: time.Millisecond, Cap: 4 * time.Millisecond}
	})
	// Emit 30 events, re-offering any the non-blocking hot path refuses
	// while the framer recycles batch buffers (a tight loop outruns the
	// small buffer pool by design; a player emits at session pace).
	for i := 0; i < 30; i++ {
		for {
			before := s.Stats().Events
			s.OnEvent(testEvent(i))
			if s.Stats().Events > before {
				break
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	// With the collector down the sender blocks retrying the head frame;
	// the backlog overflows memory onto disk instead of dropping.
	deadline := time.Now().Add(10 * time.Second)
	for s.Stats().Queue.Spilled == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no spill while collector down: %+v", s.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	up.Store(true)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := s.Flush(ctx); err != nil {
		t.Fatalf("flush after recovery: %v", err)
	}
	// Recovery drains the spill completely: every accepted event arrives.
	if cs := c.Stats(); cs.Events != 30 {
		t.Fatalf("collector got %d events, want 30", cs.Events)
	}
	if ss := s.Stats(); ss.FramesDropped != 0 {
		t.Fatalf("shipper dropped frames during spill: %+v", ss)
	}
	s.Close()
}

func TestShipperUDP(t *testing.T) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	c := NewCollector(CollectorConfig{})
	go c.ServeUDP(pc)

	s := newTestShipper(t, "udp://"+pc.LocalAddr().String(), func(cfg *ShipperConfig) {
		cfg.BatchEvents = 10
	})
	for i := 0; i < 3; i++ {
		s.OnEvent(testEvent(i))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Flush(ctx); err != nil {
		t.Fatalf("flush: %v", err)
	}
	// UDP is fire-and-forget: the flush only guarantees the datagram left;
	// poll the collector for arrival (loopback, so loss is not expected).
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Events != 3 {
		if time.Now().After(deadline) {
			t.Fatalf("collector got %d events over UDP, want 3", c.Stats().Events)
		}
		time.Sleep(2 * time.Millisecond)
	}
	s.Close()
}

func TestShipperOnEventZeroAlloc(t *testing.T) {
	c := NewCollector(CollectorConfig{})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	// A batch size larger than the test's event count keeps the framer and
	// senders idle: the measurement isolates the player-visible hot path.
	s := newTestShipper(t, srv.URL, func(cfg *ShipperConfig) {
		cfg.BatchEvents = 1 << 20
	})
	defer s.Close()
	ev := testEvent(7)
	if allocs := testing.AllocsPerRun(100, func() { s.OnEvent(ev) }); allocs != 0 {
		t.Fatalf("OnEvent allocates %.1f per call on the hot path, want 0", allocs)
	}
	if ss := s.Stats(); ss.EventsDropped != 0 {
		t.Fatalf("events dropped with queue capacity available: %+v", ss)
	}
}

func TestShipperBadAddr(t *testing.T) {
	if _, err := NewShipper(ShipperConfig{Addr: "gopher://x", Run: "r"}); err == nil {
		t.Fatalf("bad scheme accepted")
	}
	if _, err := NewShipper(ShipperConfig{Addr: "udp://127.0.0.1:9", Run: ""}); err == nil {
		t.Fatalf("empty run id accepted")
	}
}
