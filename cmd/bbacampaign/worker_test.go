package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bba/internal/coord"
)

// TestValidateFlags pins the -worker flag-combination contract: every
// violation is rejected up front, and multiple violations surface in one
// enumerated error.
func TestValidateFlags(t *testing.T) {
	worker := func(mutate func(*options)) options {
		o := testOpts(8)
		o.worker = true
		o.coordURL = "http://127.0.0.1:1"
		if mutate != nil {
			mutate(&o)
		}
		return o
	}
	cases := []struct {
		name string
		o    options
		want []string // substrings the error must carry; empty = valid
	}{
		{"plain run", testOpts(8), nil},
		{"worker ok", worker(nil), nil},
		{"worker without coord", worker(func(o *options) { o.coordURL = "" }), []string{"-worker requires -coord"}},
		{"coord without worker", func() options {
			o := testOpts(8)
			o.coordURL = "http://127.0.0.1:1"
			return o
		}(), []string{"-coord requires -worker"}},
		{"worker with merge", worker(func(o *options) { o.merge = "cp.json" }), []string{"-merge"}},
		{"worker with checkpoint", worker(func(o *options) { o.checkpoint = "cp.json" }), []string{"-checkpoint"}},
		{"worker with stripes", worker(func(o *options) { o.stripes = 2 }), []string{"-shards"}},
		{"worker with report", worker(func(o *options) { o.report = "r.json" }), []string{"/report"}},
		{"worker ship without run-id", worker(func(o *options) { o.ship = "http://127.0.0.1:1" }), []string{"-run-id"}},
		{"worker ship with run-id", worker(func(o *options) {
			o.ship = "http://127.0.0.1:1"
			o.runID = "fleet-1"
		}), nil},
		{"everything wrong at once", worker(func(o *options) {
			o.coordURL = ""
			o.merge = "cp.json"
			o.checkpoint = "cp.json"
			o.stripes = 2
			o.report = "r.json"
			o.ship = "http://127.0.0.1:1"
		}), []string{"-worker requires -coord", "-merge", "-checkpoint", "-shards", "/report", "-run-id"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateFlags(tc.o)
			if len(tc.want) == 0 {
				if err != nil {
					t.Fatalf("valid combination rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatal("invalid combination accepted")
			}
			for _, w := range tc.want {
				if !strings.Contains(err.Error(), w) {
					t.Errorf("error missing %q:\n%v", w, err)
				}
			}
		})
	}
}

// TestWorkerMode runs the CLI in -worker mode against an in-process
// coordinator: the worker prints its lease/throughput stats, writes no
// report of its own, and the coordinator's report is byte-identical to the
// plain CLI run of the same campaign.
func TestWorkerMode(t *testing.T) {
	base := testOpts(24)
	base.progressEvery = 0
	var want bytes.Buffer
	if err := run(context.Background(), &want, new(bytes.Buffer), base); err != nil {
		t.Fatal(err)
	}

	c, err := coord.New(coord.Config{
		Spec: coord.Spec{
			Seed:       base.seed,
			Sessions:   base.sessions,
			ShardSize:  base.shardSize,
			Days:       base.days,
			SketchSize: base.sketch,
		},
		LeaseShards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	o := testOpts(24)
	o.worker = true
	o.coordURL = srv.URL
	o.workerName = "cli-worker"
	o.progressEvery = time.Nanosecond
	var out, errw bytes.Buffer
	if err := run(context.Background(), &out, &errw, o); err != nil {
		t.Fatalf("worker run: %v\nstderr: %s", err, errw.String())
	}
	if out.Len() != 0 {
		t.Errorf("worker wrote to stdout (the report is the coordinator's): %q", out.String())
	}
	for _, s := range []string{"worker: joined", "lease", "sessions/s (engine=scalar)"} {
		if !strings.Contains(errw.String(), s) {
			t.Errorf("worker stderr missing %q: %q", s, errw.String())
		}
	}

	select {
	case <-c.Done():
	default:
		t.Fatal("coordinator incomplete after CLI worker exit")
	}
	got, err := c.Report()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Error("fleet report differs from plain CLI run")
	}
}

// TestEngineLabel pins the unified throughput summary: both engines report
// sessions/s with an engine= label naming the path that actually ran.
func TestEngineLabel(t *testing.T) {
	for _, batch := range []bool{false, true} {
		o := testOpts(16)
		o.progressEvery = 0
		o.batch = batch
		want := "(engine=scalar)"
		if batch {
			want = "(engine=batch)"
		}
		var out, errw bytes.Buffer
		if err := run(context.Background(), &out, &errw, o); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(errw.String(), "sessions/s "+want) {
			t.Errorf("batch=%v summary missing %q: %q", batch, want, errw.String())
		}
	}
}
