package arena

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"bba/internal/abtest"
	"bba/internal/campaign"
	"bba/internal/faults"
	"bba/internal/media"
	"bba/internal/stats"
	"bba/internal/telemetry"
)

// Config describes one tournament. The zero value plus Entrants is a
// runnable clean arena.
type Config struct {
	// Name labels progress and telemetry (default "arena").
	Name string
	// Seed makes the tournament deterministic.
	Seed int64
	// Sessions is the number of paired draws; every draw is streamed once
	// per entrant (default 1000).
	Sessions int
	// Entrants are registered algorithm names (abr.Names()), 2–23 of them;
	// every unordered pair becomes a head-to-head match.
	Entrants []string
	// Population tunes the synthetic user population.
	Population abtest.PopulationConfig
	// CatalogSize is the number of titles (default 24).
	CatalogSize int
	// Ladder is the encoding ladder (default media.DefaultLadder).
	Ladder media.Ladder
	// Parallelism bounds worker goroutines (default GOMAXPROCS). It never
	// affects report bytes.
	Parallelism int
	// Faults, when non-nil, runs every draw under per-session fault
	// weather; all entrants of a draw share the identical schedule.
	Faults *faults.ScheduleConfig
	// FaultSeed seeds the fault schedules independently of Seed.
	FaultSeed int64
	// ShardSize and SketchSize pass through to the campaign identity
	// (defaults 1024 and 512).
	ShardSize  int
	SketchSize int
	// Days is the simulated calendar depth (default 3).
	Days int
	// Observer, when non-nil, receives the campaign's per-shard
	// CampaignProgress events plus one ArenaMatch event per pairing when
	// the tournament completes.
	Observer telemetry.Observer
	// Progress, when non-nil, receives the campaign's per-shard progress.
	Progress func(campaign.Progress)
}

// Run executes the tournament. See RunContext.
func Run(cfg Config) (*Report, error) { return RunContext(context.Background(), cfg) }

// RunContext runs the tournament with cancellation: every entrant streams
// every drawn session, the campaign layer folds per-entrant marginals and
// the MatchSet folds pairwise deltas, both in shard-index order, so the
// report is byte-identical at any Parallelism.
func RunContext(ctx context.Context, cfg Config) (*Report, error) {
	if len(cfg.Entrants) < 2 {
		return nil, fmt.Errorf("arena: %d entrants; a tournament needs at least 2", len(cfg.Entrants))
	}
	if len(cfg.Entrants) > maxEntrants {
		return nil, fmt.Errorf("arena: %d entrants exceeds the maximum %d", len(cfg.Entrants), maxEntrants)
	}
	seen := map[string]bool{}
	for _, e := range cfg.Entrants {
		if seen[e] {
			return nil, fmt.Errorf("arena: entrant %q listed twice", e)
		}
		seen[e] = true
	}
	groups, err := abtest.Groups(cfg.Entrants...)
	if err != nil {
		return nil, err
	}
	if cfg.Name == "" {
		cfg.Name = "arena"
	}
	sketch := cfg.SketchSize
	if sketch <= 0 {
		sketch = 512
	}

	start := time.Now()
	ccfg := campaign.Config{
		Name:        cfg.Name,
		Seed:        cfg.Seed,
		Sessions:    cfg.Sessions,
		ShardSize:   cfg.ShardSize,
		Days:        cfg.Days,
		Groups:      groups,
		Population:  cfg.Population,
		CatalogSize: cfg.CatalogSize,
		Ladder:      cfg.Ladder,
		Parallelism: cfg.Parallelism,
		Faults:      cfg.Faults,
		FaultSeed:   cfg.FaultSeed,
		SketchSize:  sketch,
		Observer:    cfg.Observer,
		Progress:    cfg.Progress,
		NewExtra: func() campaign.Extra {
			return NewMatchSet(cfg.Entrants, sketch)
		},
	}
	out, err := campaign.RunContext(ctx, ccfg)
	if err != nil {
		return nil, err
	}
	matches := out.Extra.(*MatchSet)
	r := buildReport(cfg.Entrants, out.Report, matches)

	if cfg.Observer != nil {
		elapsed := time.Since(start)
		index := map[string]int{}
		for i, e := range cfg.Entrants {
			index[e] = i
		}
		for pi, m := range r.Matches {
			cfg.Observer.OnEvent(telemetry.Event{
				Kind:          telemetry.ArenaMatch,
				At:            elapsed,
				Chunk:         pi,
				RateIndex:     index[m.A],
				PrevRateIndex: index[m.B],
				Bytes:         m.Sessions,
				Label:         m.A + " vs " + m.B,
			})
		}
	}
	return r, nil
}

// ReportSchema identifies the arena report file format.
const ReportSchema = "bba-arena-report/v1"

// Delta summarizes one paired-delta distribution with a 95% CI on its mean
// — the head-to-head evidence a pairing reports. A CI excluding zero is a
// significant difference at that level.
type Delta struct {
	campaign.MetricSummary
	CI95Lo float64 `json:"ci95_lo"`
	CI95Hi float64 `json:"ci95_hi"`
}

// Significant reports whether the delta's CI excludes zero.
func (d Delta) Significant() bool {
	return (d.CI95Lo > 0 && d.CI95Hi > 0) || (d.CI95Lo < 0 && d.CI95Hi < 0)
}

// MatchReport is one pairing's final head-to-head result; deltas are A−B.
type MatchReport struct {
	A        string `json:"a"`
	B        string `json:"b"`
	Sessions int64  `json:"sessions"`
	WinsA    int64  `json:"wins_a"`
	WinsB    int64  `json:"wins_b"`
	Ties     int64  `json:"ties"`
	// WinRateA is WinsA over decided sessions (ties excluded); 0.5 when
	// nothing was decided.
	WinRateA           float64 `json:"win_rate_a"`
	DQoEPerPlayhour    Delta   `json:"d_qoe_per_playhour"`
	DRebufferRate      Delta   `json:"d_rebuffer_rate"`
	DAvgRateKbps       Delta   `json:"d_avg_rate_kbps"`
	DSwitchesPerPlayhr Delta   `json:"d_switches_per_playhour"`
	DStartupRateKbps   Delta   `json:"d_startup_rate_kbps"`
}

// Report is the tournament's final aggregate: the per-entrant marginals
// (ordinary campaign GroupReports) plus every pairing's head-to-head
// deltas. Its JSON bytes are independent of worker count.
type Report struct {
	Schema   string           `json:"schema"`
	Entrants []string         `json:"entrants"`
	Campaign *campaign.Report `json:"campaign"`
	Matches  []MatchReport    `json:"matches"`
}

func buildReport(entrants []string, cr *campaign.Report, m *MatchSet) *Report {
	r := &Report{
		Schema:   ReportSchema,
		Entrants: entrants,
		Campaign: cr,
	}
	for _, p := range m.Pairs() {
		mr := MatchReport{
			A:        p.A,
			B:        p.B,
			Sessions: p.Sessions,
			WinsA:    p.WinsA,
			WinsB:    p.WinsB,
			Ties:     p.Ties,
			WinRateA: 0.5,

			DQoEPerPlayhour:    delta(p.DQoERate),
			DRebufferRate:      delta(p.DRebufRate),
			DAvgRateKbps:       delta(p.DAvgRate),
			DSwitchesPerPlayhr: delta(p.DSwitchRate),
			DStartupRateKbps:   delta(p.DStartupRate),
		}
		if decided := p.WinsA + p.WinsB; decided > 0 {
			mr.WinRateA = float64(p.WinsA) / float64(decided)
		}
		r.Matches = append(r.Matches, mr)
	}
	return r
}

func delta(d stats.Dist) Delta {
	out := Delta{MetricSummary: campaign.SummarizeDist(d)}
	out.CI95Lo, out.CI95Hi = d.Moments.MeanCI95()
	return out
}

// WriteJSON writes the report as indented JSON with a fixed field order —
// the byte form the determinism test compares.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteTable writes the human-readable tournament summary: per-entrant
// marginals, then each pairing's head-to-head deltas with CIs. A trailing
// "*" marks a delta whose 95% CI excludes zero.
func (r *Report) WriteTable(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "arena: %d entrants, %d paired draws\n\n", len(r.Entrants), r.Campaign.Sessions)

	tw := tabwriter.NewWriter(bw, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "entrant\tsessions\trebuf/hr\tavg kb/s\tswitch/hr\tqoe/hr")
	for _, g := range r.Campaign.Groups {
		fmt.Fprintf(tw, "%s\t%d\t%.3f\t%.0f\t%.1f\t%.1f\n",
			g.Name, g.Sessions, g.RebufferRatePooled, g.AvgRateKbps.Mean,
			g.SwitchesPerPlayhour.Mean, g.QoEPerPlayhour.Mean)
	}
	tw.Flush()

	fmt.Fprintf(bw, "\nhead-to-head (A−B deltas, mean [95%% CI], * = CI excludes 0)\n")
	tw = tabwriter.NewWriter(bw, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "match\twins A−B (ties)\tΔqoe/hr\tΔrebuf/hr\tΔkb/s\tΔswitch/hr")
	for _, m := range r.Matches {
		fmt.Fprintf(tw, "%s vs %s\t%d−%d (%d)\t%s\t%s\t%s\t%s\n",
			m.A, m.B, m.WinsA, m.WinsB, m.Ties,
			fmtDelta(m.DQoEPerPlayhour, "%.2f"),
			fmtDelta(m.DRebufferRate, "%.3f"),
			fmtDelta(m.DAvgRateKbps, "%.0f"),
			fmtDelta(m.DSwitchesPerPlayhr, "%.1f"))
	}
	tw.Flush()
	return bw.Flush()
}

func fmtDelta(d Delta, format string) string {
	s := fmt.Sprintf(format+" ["+format+", "+format+"]", d.Mean, d.CI95Lo, d.CI95Hi)
	if d.Significant() {
		s += "*"
	}
	return s
}
