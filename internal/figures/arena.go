package figures

import (
	"fmt"

	"bba/internal/arena"
	"bba/internal/faults"
)

// arenaField is the tournament the extension datapoint runs: the paper's
// production-tuned estimator Control and its champion BBA-2 against the
// strongest follow-on rivals — BOLA (Lyapunov buffer control), a smoothed
// throughput rule, and the dash.js-style hybrid of the two.
var arenaField = []string{"Control", "BBA-2", "BOLA", "SmoothThroughput", "Hybrid"}

// ArenaMatrix runs the N-way paired tournament under fault weather and
// renders the head-to-head win-rate matrix: every entrant streams the same
// (user, trace, fault-weather) draws, so each cell is a pure algorithm
// effect with common-random-numbers variance cancellation.
func ArenaMatrix(scale Scale) (*Figure, error) {
	sessions := 160
	if scale == Full {
		sessions = 640
	}
	fc := faults.DefaultScheduleConfig()
	r, err := arena.Run(arena.Config{
		Name:      "arena-matrix",
		Seed:      ExperimentSeed + 37,
		FaultSeed: ExperimentSeed + 37,
		Faults:    &fc,
		Sessions:  sessions,
		ShardSize: 64,
		Entrants:  arenaField,
	})
	if err != nil {
		return nil, err
	}

	fig := &Figure{
		ID:     "ext-arena",
		Title:  "Extension (arena): QoE win rate of column entrant vs row opponent",
		XLabel: "opponent",
		YLabel: "win rate of the column entrant (ties split)",
	}
	// winRate[a][b] = share of paired draws entrant a beats entrant b on
	// session QoE, ties counted half.
	winRate := map[string]map[string]float64{}
	for _, name := range r.Entrants {
		winRate[name] = map[string]float64{}
	}
	for _, m := range r.Matches {
		if m.Sessions == 0 {
			continue
		}
		wa := (float64(m.WinsA) + float64(m.Ties)/2) / float64(m.Sessions)
		winRate[m.A][m.B] = wa
		winRate[m.B][m.A] = 1 - wa
	}
	// Every series carries every column (self is the 0.500 diagonal) so the
	// rendered rows align into a square matrix.
	for _, row := range r.Entrants {
		s := Series{Name: row}
		for _, col := range r.Entrants {
			y := 0.5
			if col != row {
				y = winRate[row][col]
			}
			s.Points = append(s.Points, Point{X: "vs " + col, Y: y})
		}
		fig.Series = append(fig.Series, s)
	}

	for _, m := range r.Matches {
		if !m.DQoEPerPlayhour.Significant() {
			continue
		}
		lead, trail := m.A, m.B
		d, lo, hi := m.DQoEPerPlayhour.Mean, m.DQoEPerPlayhour.CI95Lo, m.DQoEPerPlayhour.CI95Hi
		if d < 0 {
			lead, trail = m.B, m.A
			d, lo, hi = -d, -hi, -lo
		}
		fig.Notes = append(fig.Notes, fmt.Sprintf(
			"%s beats %s by %.0f QoE/playhour [%.0f, %.0f] (95%% CI excludes 0)",
			lead, trail, d, lo, hi))
	}
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("every entrant played the same %d (user, trace, fault-weather) draws; cells are pure algorithm effects", sessions),
		"report bytes are worker-count independent — the determinism CI pins this under -race",
	)
	return fig, nil
}
