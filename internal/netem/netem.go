// Package netem shapes real network connections to follow a capacity
// trace, so the HTTP streaming substrate exercises the same end-to-end
// path a production client does — TCP sockets, HTTP requests, chunk
// downloads — while the available bandwidth varies exactly like the
// simulator's virtual links.
//
// The shaper is a token bucket refilled at the trace's instantaneous rate.
// Reads (or writes) consume tokens; when the bucket runs dry the operation
// sleeps until enough tokens accumulate. Shaping reads on the client side
// of a connection emulates a bandwidth-limited downstream path.
package netem

import (
	"net"
	"sync"
	"time"

	"bba/internal/trace"
	"bba/internal/units"
)

// Shaper rations bytes according to a capacity trace. It is safe for
// concurrent use; concurrent consumers share the link's capacity.
type Shaper struct {
	tr    *trace.Trace
	start time.Time
	now   func() time.Time
	sleep func(time.Duration)

	mu       sync.Mutex
	consumed int64 // bytes granted so far
}

// NewShaper returns a shaper that follows tr, with t=0 anchored at the
// first Take call.
func NewShaper(tr *trace.Trace) *Shaper {
	return &Shaper{tr: tr, now: time.Now, sleep: time.Sleep}
}

// newShaperClock is a test hook: inject a fake clock.
func newShaperClock(tr *trace.Trace, now func() time.Time, sleep func(time.Duration)) *Shaper {
	return &Shaper{tr: tr, now: now, sleep: sleep}
}

// Take blocks until n bytes of link capacity are available and consumes
// them. It returns the time it waited. Take of a non-positive count
// returns immediately.
//
// Zero-rate (blackout) segments are first-class: while the trace delivers
// nothing there is no finite completion estimate to sleep for, so Take
// parks in bounded 20ms polls — no busy-wait and no division by the zero
// rate — and wakes within one poll of capacity returning. A transfer
// issued mid-blackout completes as soon as the following segment has
// delivered its bytes, the way a stalled TCP stream resumes.
func (s *Shaper) Take(n int) time.Duration {
	if n <= 0 {
		return 0
	}
	s.mu.Lock()
	if s.start.IsZero() {
		s.start = s.now()
	}
	// Budget: bytes the trace has delivered from t=0 to now must cover
	// consumed+n; otherwise wait until the trace catches up.
	target := s.consumed + int64(n)
	s.consumed = target
	start := s.start
	s.mu.Unlock()

	var waited time.Duration
	for {
		elapsed := s.now().Sub(start)
		if s.tr.BytesBetween(0, elapsed) >= target {
			return waited
		}
		// Estimate the remaining wait from the current rate; poll in
		// small steps to track rate changes.
		rate := s.tr.RateAt(elapsed)
		missing := target - s.tr.BytesBetween(0, elapsed)
		var d time.Duration
		if rate > 0 {
			d = rate.DurationFor(missing)
		} else {
			d = 20 * time.Millisecond
		}
		if d > 50*time.Millisecond {
			d = 50 * time.Millisecond
		}
		if d < time.Millisecond {
			d = time.Millisecond
		}
		s.sleep(d)
		waited += d
	}
}

// Rate reports the trace capacity at the shaper's current session time.
func (s *Shaper) Rate() units.BitRate {
	s.mu.Lock()
	start := s.start
	s.mu.Unlock()
	if start.IsZero() {
		return s.tr.RateAt(0)
	}
	return s.tr.RateAt(s.now().Sub(start))
}

// Conn wraps a net.Conn, shaping the read side through a Shaper. Writes
// pass through unshaped (requests are tiny compared to video chunks).
type Conn struct {
	net.Conn
	shaper    *Shaper
	chunkSize int
	rtt       time.Duration
	wrote     bool
	mu        sync.Mutex
}

// NewConn wraps c with read-side shaping. Multiple Conns may share one
// Shaper to model a shared bottleneck.
func NewConn(c net.Conn, s *Shaper) *Conn {
	return &Conn{Conn: c, shaper: s, chunkSize: 16 * 1024}
}

// NewConnRTT additionally delays the first read after every write by rtt,
// emulating the request–response round trip a chunk fetch pays before its
// first byte arrives.
func NewConnRTT(c net.Conn, s *Shaper, rtt time.Duration) *Conn {
	cc := NewConn(c, s)
	cc.rtt = rtt
	return cc
}

// Write implements net.Conn, marking the request boundary for RTT
// emulation.
func (c *Conn) Write(p []byte) (int, error) {
	if c.rtt > 0 {
		c.mu.Lock()
		c.wrote = true
		c.mu.Unlock()
	}
	return c.Conn.Write(p)
}

// Read reads up to the shaping granularity and charges the bytes actually
// read against the link before returning them, so sustained reads observe
// the trace's rate.
func (c *Conn) Read(p []byte) (int, error) {
	if c.rtt > 0 {
		c.mu.Lock()
		pending := c.wrote
		c.wrote = false
		c.mu.Unlock()
		if pending {
			time.Sleep(c.rtt)
		}
	}
	if len(p) > c.chunkSize {
		p = p[:c.chunkSize]
	}
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.shaper.Take(n)
	}
	return n, err
}

// Listener wraps a net.Listener so every accepted connection is shaped by
// a per-connection shaper built from the same trace (each client gets its
// own bandwidth profile, as in the per-session A/B model).
type Listener struct {
	net.Listener
	tr *trace.Trace
}

// NewListener shapes all connections accepted from l with tr.
func NewListener(l net.Listener, tr *trace.Trace) *Listener {
	return &Listener{Listener: l, tr: tr}
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return NewConn(c, NewShaper(l.tr)), nil
}
