package telemetry

import (
	"bytes"
	"testing"
	"time"

	"bba/internal/units"
)

// TestParseJSONLRoundTrip walks every Kind with adversarial field values —
// negatives, quotes, unicode, newlines in labels — and requires the exact
// inverse property ParseJSONL promises: parse(encode(e)) == e and
// encode(parse(line)) == line.
func TestParseJSONLRoundTrip(t *testing.T) {
	labels := []string{"", "BBA-0", `quo"ted`, "uni·code", "new\nline", `back\slash`}
	for k := SessionStart; k < numKinds; k++ {
		for i, label := range labels {
			e := Event{
				Kind:    k,
				Session: "d1.w2.s3.g" + label,
				At:      time.Duration(int64(i)*7919 - 3),
				Chunk:   i - 1, RateIndex: -1, PrevRateIndex: 4,
				Rate: units.BitRate(2850 * 1000 * int64(i)), Bytes: -9,
				Duration:   time.Duration(i) * time.Millisecond,
				Throughput: 17 * units.Mbps, Buffer: 240 * time.Second,
				Played: time.Hour, Reservoir: 90 * time.Second,
				Protection: -time.Second, Label: label,
			}
			line := AppendJSONL(nil, e)
			got, ok := ParseJSONL(line)
			if !ok {
				t.Fatalf("kind %v label %q: ParseJSONL rejected its own encoding %q", k, label, line)
			}
			if got != e {
				t.Fatalf("kind %v: round trip drifted:\n got %+v\nwant %+v", k, got, e)
			}
			if re := AppendJSONL(nil, got); !bytes.Equal(re, line) {
				t.Fatalf("kind %v: re-encode differs:\n got %q\nwant %q", k, re, line)
			}
		}
	}
}

// TestParseJSONLStrict pins the rejections: anything that is not the
// canonical byte encoding must come back ok=false, because the archive
// uses ok as the "safe to store as columns" signal.
func TestParseJSONLStrict(t *testing.T) {
	canonical := string(AppendJSONL(nil, Event{Kind: BufferSample, Session: "s", Chunk: 1, RateIndex: -1, PrevRateIndex: -1}))
	bad := []string{
		"",
		"{}\n",
		"not json\n",
		canonical[:len(canonical)-1], // missing newline
		canonical + " ",              // trailing bytes
		`{"kind":"no_such_kind"` + canonical[15:],       // unknown kind
		"{\"kind\": \"buffer_sample\"" + "}\n",          // whitespace
		`{"session":"s","kind":"buffer_sample"}` + "\n", // reordered
	}
	for _, line := range bad {
		if e, ok := ParseJSONL([]byte(line)); ok {
			t.Errorf("ParseJSONL accepted non-canonical %q as %+v", line, e)
		}
	}
	// Non-canonical integers re-encode differently; they must be rejected.
	leadingZero := []byte(canonical)
	leadingZero = bytes.Replace(leadingZero, []byte(`"chunk":1`), []byte(`"chunk":01`), 1)
	if _, ok := ParseJSONL(leadingZero); ok {
		t.Error("ParseJSONL accepted a leading-zero integer")
	}
}

// TestIntColumnsMatchJournal locks the IntColumns table to the journal
// encoding: setting each column to a distinct sentinel and re-reading it
// through Get must agree, and the table's names in order must be exactly
// the integer keys appendEvent emits.
func TestIntColumnsMatchJournal(t *testing.T) {
	var e Event
	cols := IntColumns()
	for i, c := range cols {
		c.Set(&e, int64(1000+i))
	}
	for i, c := range cols {
		if got := c.Get(&e); got != int64(1000+i) {
			t.Errorf("column %s: Get after Set = %d, want %d", c.Name, got, 1000+i)
		}
	}
	// Extract the integer keys from a rendered line in order.
	line := AppendJSONL(nil, e)
	idx := 0
	for _, c := range cols {
		key := []byte(`,"` + c.Name + `":`)
		at := bytes.Index(line[idx:], key)
		if at < 0 {
			t.Fatalf("journal line missing key %q in order: %q", c.Name, line)
		}
		idx += at + len(key)
	}
}

func TestGroupOfSession(t *testing.T) {
	for in, want := range map[string]string{
		"d0.w3.s5.BBA-0": "BBA-0",
		"solo":           "solo",
		"":               "",
		"a.":             "",
	} {
		if got := GroupOfSession(in); got != want {
			t.Errorf("GroupOfSession(%q) = %q, want %q", in, got, want)
		}
	}
}
