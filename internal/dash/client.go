package dash

import (
	"context"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"bba/internal/abr"
	"bba/internal/buffer"
	"bba/internal/faults"
	"bba/internal/media"
	"bba/internal/player"
	"bba/internal/telemetry"
	"bba/internal/units"
)

// ClientConfig describes one HTTP streaming session.
type ClientConfig struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Endpoints is the ordered server-root list for multi-endpoint
	// failover; the first entry is the primary. When empty, BaseURL is
	// the single endpoint. The client health-scores each endpoint,
	// abandons one after repeated failures, and fails back to the
	// primary once the fallback has proven itself.
	Endpoints []string
	// Fetch bounds per-chunk fetching: attempt timeout, backoff and the
	// attempt budget. The zero value means defaults; a legacy MaxRetries
	// sets the budget when Fetch.MaxAttempts is unset.
	Fetch FetchPolicy
	// HTTPClient performs the requests; nil means http.DefaultClient.
	// Shape its transport (see internal/netem) to emulate a constrained
	// downstream path.
	HTTPClient *http.Client
	// Algorithm selects rates; a fresh per-session instance.
	Algorithm abr.Algorithm
	// Rmin applies the paper's footnote-3 promotion to this session.
	Rmin units.BitRate
	// BufferMax is the playback buffer capacity (default 240 s).
	BufferMax time.Duration
	// WatchLimit stops after this much delivered video; 0 plays the
	// whole title.
	WatchLimit time.Duration
	// MaxRetries bounds per-chunk retry attempts on transport or server
	// errors. Deprecated: use Fetch.MaxAttempts; kept as its fallback.
	MaxRetries int
	// UseMPD fetches the standards-shaped /manifest.mpd instead of the
	// JSON manifest. An MPD carries no per-chunk sizes, so the client
	// models every chunk at its nominal V·R size — the paper's situation
	// before the Section 5 chunk map, and the reason the native manifest
	// carries the size matrix.
	UseMPD bool
	// UseHLS drives the session from the HLS playlists (/master.m3u8 and
	// the variant media playlists). Like the MPD it carries no sizes, so
	// the client models nominal encodes. Mutually exclusive with UseMPD.
	UseHLS bool
	// Logf, when non-nil, receives per-chunk progress lines.
	Logf func(format string, args ...any)
	// Observer, when non-nil, receives the session's telemetry events
	// (wall-clock At, measured from session start). Nil costs nothing.
	Observer telemetry.Observer
}

// ErrChunkFailed reports a chunk that could not be fetched within the retry
// budget.
var ErrChunkFailed = errors.New("dash: chunk fetch failed")

// Stream runs a real-time HTTP streaming session: it fetches the manifest,
// then downloads chunks one at a time — choosing each rate with the
// configured algorithm, pacing requests against the playback buffer exactly
// like the simulator's player, but over the wall clock and a real HTTP
// connection. It returns the same Result type as the virtual-time player,
// so all metrics helpers apply.
func Stream(ctx context.Context, cfg ClientConfig) (*player.Result, error) {
	if cfg.Algorithm == nil {
		return nil, errors.New("dash: nil algorithm")
	}
	httpc := cfg.HTTPClient
	if httpc == nil {
		httpc = http.DefaultClient
	}
	bufMax := cfg.BufferMax
	if bufMax <= 0 {
		bufMax = buffer.DefaultMax
	}
	endpoints := cfg.Endpoints
	if len(endpoints) == 0 {
		if cfg.BaseURL == "" {
			return nil, errors.New("dash: no endpoints")
		}
		endpoints = []string{cfg.BaseURL}
	}
	fp := cfg.Fetch.withDefaults(cfg.MaxRetries)
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	var video *media.Video
	switch {
	case cfg.UseMPD && cfg.UseHLS:
		return nil, errors.New("dash: UseMPD and UseHLS are mutually exclusive")
	case cfg.UseMPD:
		mpd, err := tryEndpoints(endpoints, func(base string) (MPD, error) {
			return fetchMPD(ctx, httpc, base)
		})
		if err != nil {
			return nil, err
		}
		video, err = videoFromMPD(mpd)
		if err != nil {
			return nil, fmt.Errorf("dash: bad MPD: %w", err)
		}
	case cfg.UseHLS:
		var err error
		video, err = tryEndpoints(endpoints, func(base string) (*media.Video, error) {
			return videoFromHLS(ctx, httpc, base)
		})
		if err != nil {
			return nil, err
		}
	default:
		manifest, err := tryEndpoints(endpoints, func(base string) (Manifest, error) {
			return fetchManifest(ctx, httpc, base)
		})
		if err != nil {
			return nil, err
		}
		video, err = manifest.Video()
		if err != nil {
			return nil, fmt.Errorf("dash: bad manifest: %w", err)
		}
	}
	stream := abr.NewStream(video, cfg.Rmin)
	ladder := stream.Ladder()
	v := stream.ChunkDuration()

	buf := buffer.New(bufMax)
	// A stalled session refills through add-only steps of v, and the
	// ON-OFF loop stops adding above bufMax-v — so a resume threshold
	// past that point can never be reached: the session would sit stalled
	// forever, filling the buffer until AddChunk overflows. Clamp the
	// default so every stall can end. (With the default 240s buffer this
	// is a no-op; it matters for small soak/test buffers.)
	if resume := bufMax - v; resume < buffer.DefaultResume {
		if resume < 0 {
			resume = 0
		}
		buf.SetResume(resume)
	}
	res := &player.Result{Algorithm: cfg.Algorithm.Name()}
	sessionStart := time.Now()
	var (
		prevIdx   = -1
		lastTP    units.BitRate
		lastDl    time.Duration
		lastBytes int64
	)

	obs := cfg.Observer
	var (
		stallBase     time.Duration
		lastReservoir = time.Duration(-1)
		reporter      abr.ReservoirReporter
	)
	if obs != nil {
		reporter, _ = cfg.Algorithm.(abr.ReservoirReporter)
		obs.OnEvent(telemetry.Event{
			Kind: telemetry.SessionStart, Chunk: -1, RateIndex: -1,
			PrevRateIndex: -1, Label: res.Algorithm,
		})
	}

	f := &fetcher{
		c:  httpc,
		es: newEndpointSet(endpoints),
		fp: fp,
		onRetry: func(k, attempt int, backoff time.Duration) {
			res.Retries++
			if obs != nil {
				obs.OnEvent(telemetry.Event{
					Kind: telemetry.ChunkRetry, At: time.Since(sessionStart),
					Chunk: k, RateIndex: -1, PrevRateIndex: -1, Duration: backoff,
				})
			}
		},
		onFailover: func(from, to int, url string) {
			res.Failovers++
			logf("failover: endpoint %d -> %d (%s)", from, to, url)
			if obs != nil {
				obs.OnEvent(telemetry.Event{
					Kind: telemetry.Failover, At: time.Since(sessionStart),
					Chunk: -1, RateIndex: to, PrevRateIndex: from, Label: url,
				})
			}
		},
	}

	for k := 0; k < stream.NumChunks(); k++ {
		if cfg.WatchLimit > 0 && buf.Played()+buf.Level() >= cfg.WatchLimit {
			break
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}

		// ON-OFF pacing.
		if !buf.HasSpaceFor(v) {
			wait := buf.TimeUntilSpaceFor(v)
			time.Sleep(wait)
			buf.Advance(wait)
		}

		now := time.Since(sessionStart)
		st := abr.State{
			Now:            now,
			Buffer:         buf.Level(),
			BufferMax:      bufMax,
			PrevIndex:      prevIdx,
			NextChunk:      k,
			LastThroughput: lastTP,
			LastDownload:   lastDl,
			LastChunkBytes: lastBytes,
		}
		idx := ladder.Clamp(cfg.Algorithm.Next(st, stream))
		if obs != nil {
			obs.OnEvent(telemetry.Event{
				Kind: telemetry.BufferSample, At: now, Chunk: k,
				RateIndex: -1, PrevRateIndex: -1,
				Buffer: buf.Level(), Played: buf.Played(),
			})
			if reporter != nil {
				if r, p, ok := reporter.LastReservoir(); ok && r != lastReservoir {
					lastReservoir = r
					obs.OnEvent(telemetry.Event{
						Kind: telemetry.ReservoirUpdate, At: now, Chunk: k,
						RateIndex: -1, PrevRateIndex: -1,
						Reservoir: r, Protection: p, Buffer: buf.Level(),
					})
				}
			}
			if prevIdx >= 0 && idx != prevIdx {
				obs.OnEvent(telemetry.Event{
					Kind: telemetry.RateSwitch, At: now, Chunk: k,
					RateIndex: idx, PrevRateIndex: prevIdx,
					Rate: ladder[idx], Buffer: buf.Level(),
				})
			}
			obs.OnEvent(telemetry.Event{
				Kind: telemetry.ChunkRequest, At: now, Chunk: k,
				RateIndex: idx, PrevRateIndex: -1,
				Rate: ladder[idx], Bytes: stream.ChunkSize(idx, k),
				Buffer: buf.Level(),
			})
		}

		start := time.Now()
		n, err := f.fetchChunk(ctx, stream.VideoIndex(idx), k)
		dl := time.Since(start)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			res.Incomplete = true
			res.Rebuffers++
			if obs != nil {
				obs.OnEvent(telemetry.Event{
					Kind: telemetry.RebufferStart, At: time.Since(sessionStart) + buf.Level(),
					Chunk: k, RateIndex: -1, PrevRateIndex: -1, Label: "outage",
				})
			}
			break
		}
		var preLevel, preStall time.Duration
		var preRebuf int
		if obs != nil {
			preLevel, preStall, preRebuf = buf.Level(), buf.StallTime(), buf.Rebuffers()
		}
		buf.Advance(dl)
		if obs != nil && buf.Rebuffers() > preRebuf {
			stallBase = preStall
			obs.OnEvent(telemetry.Event{
				Kind: telemetry.RebufferStart, At: time.Since(sessionStart) - dl + preLevel,
				Chunk: k, RateIndex: -1, PrevRateIndex: -1,
			})
		}
		if k == 0 {
			res.JoinDelay = time.Since(sessionStart)
		}
		stalled := buf.Started() && !buf.Playing()
		if err := buf.AddChunk(v); err != nil {
			return nil, err
		}

		if prevIdx >= 0 && idx != prevIdx {
			res.Switches++
		}
		lastTP = units.Throughput(n, dl)
		lastDl = dl
		lastBytes = n
		res.Chunks = append(res.Chunks, player.ChunkRecord{
			Index:       k,
			RateIndex:   idx,
			Rate:        ladder[idx],
			Bytes:       n,
			Start:       time.Since(sessionStart) - dl,
			Download:    dl,
			Throughput:  lastTP,
			BufferAfter: buf.Level(),
		})
		prevIdx = idx
		if obs != nil {
			at := time.Since(sessionStart)
			if stalled && buf.Playing() {
				obs.OnEvent(telemetry.Event{
					Kind: telemetry.RebufferEnd, At: at, Chunk: k,
					RateIndex: -1, PrevRateIndex: -1,
					Duration: buf.StallTime() - stallBase, Buffer: buf.Level(),
				})
			}
			obs.OnEvent(telemetry.Event{
				Kind: telemetry.ChunkComplete, At: at, Chunk: k,
				RateIndex: idx, PrevRateIndex: -1,
				Rate: ladder[idx], Bytes: n, Duration: dl,
				Throughput: lastTP, Buffer: buf.Level(), Played: buf.Played(),
			})
		}
		logf("chunk %d: rate=%v bytes=%d dl=%v buffer=%v", k, ladder[idx], n, dl.Round(time.Millisecond), buf.Level().Round(100*time.Millisecond))
	}

	// Account the buffered tail as watched; no need to sleep through it.
	if obs != nil && !res.Incomplete && buf.Started() && !buf.Playing() {
		obs.OnEvent(telemetry.Event{
			Kind: telemetry.RebufferEnd, At: time.Since(sessionStart), Chunk: -1,
			RateIndex: -1, PrevRateIndex: -1,
			Duration: buf.StallTime() - stallBase, Buffer: buf.Level(),
		})
	}
	buf.Resume()
	remaining := buf.Level()
	if cfg.WatchLimit > 0 {
		if left := cfg.WatchLimit - buf.Played(); left < remaining {
			remaining = left
		}
	}
	if remaining > 0 {
		buf.Advance(remaining)
	}

	res.Played = buf.Played()
	res.Rebuffers += buf.Rebuffers()
	res.StallTime += buf.StallTime()
	res.End = time.Since(sessionStart)
	if obs != nil {
		obs.OnEvent(telemetry.Event{
			Kind: telemetry.SessionEnd, At: res.End, Chunk: len(res.Chunks),
			RateIndex: -1, PrevRateIndex: -1,
			Duration: res.StallTime, Played: res.Played, Label: res.Algorithm,
		})
	}
	return res, nil
}

// fetchMPD retrieves and parses the standards manifest.
func fetchMPD(ctx context.Context, c *http.Client, base string) (MPD, error) {
	var m MPD
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/manifest.mpd", nil)
	if err != nil {
		return m, err
	}
	resp, err := c.Do(req)
	if err != nil {
		return m, fmt.Errorf("dash: MPD fetch: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return m, fmt.Errorf("dash: MPD fetch: status %s", resp.Status)
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return m, err
	}
	if err := xml.Unmarshal(raw, &m); err != nil {
		return m, fmt.Errorf("dash: MPD parse: %w", err)
	}
	return m, nil
}

// videoFromHLS reconstructs a nominal-size title from the HLS playlists:
// the master supplies the ladder, the first variant's media playlist the
// segment count and duration. Segments are then addressed through the same
// /chunk/{rate}/{index} convention the playlists point at.
func videoFromHLS(ctx context.Context, c *http.Client, base string) (*media.Video, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/master.m3u8", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.Do(req)
	if err != nil {
		return nil, fmt.Errorf("dash: master playlist fetch: %w", err)
	}
	master, err := ParseMasterPlaylist(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("dash: master playlist fetch: status %s", resp.Status)
	}
	ladder := master.Ladder()
	if err := ladder.Validate(); err != nil {
		return nil, fmt.Errorf("dash: HLS ladder: %w", err)
	}

	req, err = http.NewRequestWithContext(ctx, http.MethodGet, base+master.Variants[0].URI, nil)
	if err != nil {
		return nil, err
	}
	resp, err = c.Do(req)
	if err != nil {
		return nil, fmt.Errorf("dash: media playlist fetch: %w", err)
	}
	pl, err := ParseMediaPlaylist(io.LimitReader(resp.Body, 8<<20))
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if len(pl.SegmentSecs) == 0 || pl.SegmentSecs[0] <= 0 {
		return nil, fmt.Errorf("dash: media playlist has no usable segment durations")
	}
	v := units.SecondsToDuration(pl.SegmentSecs[0])
	return media.NewCBR("hls", ladder, v, len(pl.SegmentURIs))
}

// videoFromMPD reconstructs a nominal-size (CBR-shaped) title from the MPD.
func videoFromMPD(m MPD) (*media.Video, error) {
	ladder := m.Ladder()
	if err := ladder.Validate(); err != nil {
		return nil, err
	}
	v := m.ChunkDuration()
	if v <= 0 {
		return nil, fmt.Errorf("dash: MPD has no usable segment duration")
	}
	total, err := m.Duration()
	if err != nil {
		return nil, err
	}
	chunks := int(total / v)
	if chunks <= 0 {
		return nil, fmt.Errorf("dash: MPD presentation shorter than one segment")
	}
	return media.NewCBR("mpd", ladder, v, chunks)
}

func fetchManifest(ctx context.Context, c *http.Client, base string) (Manifest, error) {
	var m Manifest
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/manifest.json", nil)
	if err != nil {
		return m, err
	}
	resp, err := c.Do(req)
	if err != nil {
		return m, fmt.Errorf("dash: manifest fetch: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return m, fmt.Errorf("dash: manifest fetch: status %s", resp.Status)
	}
	if err := jsonDecode(resp.Body, &m); err != nil {
		return m, fmt.Errorf("dash: manifest decode: %w", err)
	}
	return m, nil
}

// tryEndpoints runs fetch against each endpoint in preference order until
// one succeeds.
func tryEndpoints[T any](endpoints []string, fetch func(base string) (T, error)) (T, error) {
	var zero T
	var lastErr error
	for _, base := range endpoints {
		v, err := fetch(base)
		if err == nil {
			return v, nil
		}
		lastErr = err
	}
	return zero, lastErr
}

// fetcher downloads chunks under a FetchPolicy with endpoint failover.
type fetcher struct {
	c          *http.Client
	es         *endpointSet
	fp         FetchPolicy
	onRetry    func(k, attempt int, backoff time.Duration)
	onFailover func(from, to int, url string)
}

// fetchChunk downloads one chunk, retrying with deterministic backoff and
// failing over between endpoints, and returns the byte count.
func (f *fetcher) fetchChunk(ctx context.Context, rate, k int) (int64, error) {
	var lastErr error
	for attempt := 0; attempt < f.fp.MaxAttempts; attempt++ {
		if attempt > 0 {
			backoff := faults.Backoff(f.fp.BackoffBase, f.fp.BackoffCap, uint64(f.fp.JitterSeed), k, attempt)
			if f.onRetry != nil {
				f.onRetry(k, attempt, backoff)
			}
			select {
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-time.After(backoff):
			}
		}
		_, base := f.es.current()
		n, err := f.try(ctx, base, rate, k)
		if err == nil {
			if switched, from, to := f.es.success(); switched && f.onFailover != nil {
				f.onFailover(from, to, f.es.urls[to])
			}
			return n, nil
		}
		if ctx.Err() != nil {
			return 0, ctx.Err()
		}
		lastErr = err
		if switched, from, to := f.es.failure(); switched && f.onFailover != nil {
			f.onFailover(from, to, f.es.urls[to])
		}
	}
	return 0, fmt.Errorf("%w: chunk %d/%d after %d attempts: %v", ErrChunkFailed, rate, k, f.fp.MaxAttempts, lastErr)
}

// try performs a single attempt against base under the per-chunk timeout.
func (f *fetcher) try(ctx context.Context, base string, rate, k int) (int64, error) {
	if f.fp.ChunkTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, f.fp.ChunkTimeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, fmt.Sprintf("%s/chunk/%d/%d", base, rate, k), nil)
	if err != nil {
		return 0, err
	}
	resp, err := f.c.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("status %s", resp.Status)
	}
	n, err := io.Copy(io.Discard, resp.Body)
	if err != nil {
		return 0, err
	}
	return n, nil
}
