package coord

import (
	"bytes"
	"context"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"bba/internal/campaign"
	"bba/internal/telemetry"
)

// testSpec is a cheap two-arm campaign under fault weather — the same
// shape the campaign package's own determinism tests use.
func testSpec(sessions int) Spec {
	return Spec{
		Seed:        41,
		FaultSeed:   7,
		Faults:      true,
		Sessions:    sessions,
		ShardSize:   8,
		CatalogSize: 4,
		SketchSize:  64,
		Groups:      []string{"Control", "BBA-0"},
	}
}

// localReport runs the spec as a plain single-process campaign and returns
// the canonical report bytes every fleet topology must reproduce.
func localReport(t *testing.T, spec Spec) []byte {
	t.Helper()
	cfg, err := spec.CampaignConfig()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallelism = 1
	out, err := campaign.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := out.Report.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// newRunner builds a ShardRunner for the spec.
func newRunner(t *testing.T, spec Spec) *campaign.ShardRunner {
	t.Helper()
	cfg, err := spec.CampaignConfig()
	if err != nil {
		t.Fatal(err)
	}
	r, err := campaign.NewShardRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// complete executes shard s and delivers it to the coordinator.
func complete(t *testing.T, c *Coordinator, r *campaign.ShardRunner, worker string, lease uint64, s int) CompleteResponse {
	t.Helper()
	accums, err := r.RunShard(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Complete(CompleteRequest{Worker: worker, Lease: lease, Shard: s, Groups: accums})
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// fakeClock drives lease expiry deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1700000000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestLeaseExpiryReissue pins the liveness path: a worker that takes a
// lease and dies has its shards re-issued after the TTL — the observer
// sees lease_expire then a lease_grant covering the same shards — and the
// final report is byte-identical to a local run.
func TestLeaseExpiryReissue(t *testing.T) {
	spec := testSpec(52) // 7 shards, last one partial
	want := localReport(t, spec)
	clock := newFakeClock()
	ring := telemetry.NewRing(256)
	c, err := New(Config{
		Spec:        spec,
		LeaseShards: 3,
		LeaseTTL:    10 * time.Second,
		Observer:    ring,
		Now:         clock.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Join(JoinRequest{Worker: "doomed"}); err != nil {
		t.Fatal(err)
	}

	// The doomed worker takes the first lease and is never heard from again.
	doomed, err := c.Acquire(LeaseRequest{Worker: "doomed"})
	if err != nil {
		t.Fatal(err)
	}
	if len(doomed.Shards) != 3 || doomed.Shards[0] != 0 {
		t.Fatalf("first lease got shards %v, want [0 1 2]", doomed.Shards)
	}

	// Within the TTL its shards are NOT re-issued: the survivor gets the
	// next range instead.
	r := newRunner(t, spec)
	grant, err := c.Acquire(LeaseRequest{Worker: "survivor"})
	if err != nil {
		t.Fatal(err)
	}
	if len(grant.Shards) == 0 || grant.Shards[0] == 0 {
		t.Fatalf("second lease got shards %v, want the next pending range", grant.Shards)
	}
	for _, s := range grant.Shards {
		complete(t, c, r, "survivor", grant.Lease, s)
	}

	// Past the TTL the doomed lease expires and its shards re-issue.
	clock.Advance(11 * time.Second)
	reissued := map[int]bool{}
	for {
		g, err := c.Acquire(LeaseRequest{Worker: "survivor"})
		if err != nil {
			t.Fatal(err)
		}
		if g.Complete {
			break
		}
		if len(g.Shards) == 0 {
			t.Fatal("coordinator had nothing to grant but campaign incomplete")
		}
		for _, s := range g.Shards {
			if s < 3 {
				reissued[s] = true
			}
			complete(t, c, r, "survivor", g.Lease, s)
		}
	}
	if len(reissued) != 3 {
		t.Errorf("re-issued shards %v, want all of the doomed lease's [0 1 2]", reissued)
	}

	// The observer saw the expiry before the re-grant.
	events := ring.Events()
	expireAt, regrantAt := -1, -1
	for i, e := range events {
		switch e.Kind {
		case telemetry.LeaseExpire:
			if expireAt < 0 {
				expireAt = i
				if e.Label != "doomed" || e.Bytes != 3 || e.Chunk != 0 {
					t.Errorf("lease_expire event %+v, want worker doomed, 3 shards from 0", e)
				}
			}
		case telemetry.LeaseGrant:
			if expireAt >= 0 && regrantAt < 0 && e.Chunk == 0 {
				regrantAt = i
			}
		}
	}
	if expireAt < 0 || regrantAt < 0 || regrantAt < expireAt {
		t.Errorf("no lease_expire → re-grant sequence observed (expire at %d, re-grant at %d)", expireAt, regrantAt)
	}
	if s := c.Stats(); s.LeasesExpired != 1 || s.ShardsReissued != 3 {
		t.Errorf("stats %+v, want 1 expiry re-issuing 3 shards", s)
	}

	got, err := c.Report()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("report after expiry/re-issue differs from local run")
	}
}

// TestDuplicateCompletionNoOp pins exactly-once folding: delivering the
// same shard twice (a retry, or a stolen shard's loser) is absorbed as a
// no-op via the checkpoint's identity guard, and the report still matches
// the local fold — no double-counted shards.
func TestDuplicateCompletionNoOp(t *testing.T) {
	spec := testSpec(24) // 3 shards
	want := localReport(t, spec)
	c, err := New(Config{Spec: spec, LeaseShards: 8})
	if err != nil {
		t.Fatal(err)
	}
	r := newRunner(t, spec)
	grant, err := c.Acquire(LeaseRequest{Worker: "w"})
	if err != nil {
		t.Fatal(err)
	}
	if len(grant.Shards) != 3 {
		t.Fatalf("got shards %v, want all 3", grant.Shards)
	}
	for _, s := range grant.Shards {
		if resp := complete(t, c, r, "w", grant.Lease, s); resp.Duplicate {
			t.Errorf("first delivery of shard %d marked duplicate", s)
		}
	}
	// Deliver shard 1 again, recomputed from scratch as a retrying worker
	// would after a lost ack.
	if resp := complete(t, c, r, "w", grant.Lease, 1); !resp.Duplicate {
		t.Error("second delivery of shard 1 not marked duplicate")
	}
	s := c.Stats()
	if s.Shards != 3 || s.ShardsDup != 1 {
		t.Errorf("stats %+v, want 3 folds and 1 duplicate", s)
	}
	got, err := c.Report()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("report after duplicate delivery differs from local run")
	}
	if got2, _ := c.Report(); !bytes.Equal(got, got2) {
		t.Error("report not stable across calls")
	}
}

// TestWorkStealing pins the straggler path: when the pending pool drains,
// a fast worker is granted a stolen lease over another worker's remaining
// shards, first completion wins, and the report is unchanged.
func TestWorkStealing(t *testing.T) {
	spec := testSpec(40) // 5 shards
	want := localReport(t, spec)
	ring := telemetry.NewRing(64)
	c, err := New(Config{Spec: spec, LeaseShards: 8, Observer: ring})
	if err != nil {
		t.Fatal(err)
	}
	r := newRunner(t, spec)

	slow, err := c.Acquire(LeaseRequest{Worker: "slow"})
	if err != nil {
		t.Fatal(err)
	}
	if len(slow.Shards) != 5 {
		t.Fatalf("slow worker got %v, want all 5 shards", slow.Shards)
	}
	// The slow worker finishes two shards, then stalls.
	complete(t, c, r, "slow", slow.Lease, 0)
	complete(t, c, r, "slow", slow.Lease, 1)

	fast, err := c.Acquire(LeaseRequest{Worker: "fast"})
	if err != nil {
		t.Fatal(err)
	}
	if !fast.Stolen {
		t.Fatalf("fast worker's grant not marked stolen: %+v", fast)
	}
	if len(fast.Shards) != 3 || fast.Shards[0] != 2 {
		t.Fatalf("stolen lease covers %v, want [2 3 4]", fast.Shards)
	}
	// A second thief finds nothing single-leased to steal.
	if g, _ := c.Acquire(LeaseRequest{Worker: "third"}); len(g.Shards) != 0 || g.Complete {
		t.Errorf("second thief got %+v, want empty non-complete grant", g)
	}

	// The race: fast completes 2 and 3; slow limps in with 2 (duplicate)
	// and 4 (still counts — leases are liveness, not correctness).
	complete(t, c, r, "fast", fast.Lease, 2)
	complete(t, c, r, "fast", fast.Lease, 3)
	if resp := complete(t, c, r, "slow", slow.Lease, 2); !resp.Duplicate {
		t.Error("slow worker's late shard 2 not marked duplicate")
	}
	if resp := complete(t, c, r, "slow", slow.Lease, 4); resp.Duplicate || !resp.Complete {
		t.Errorf("slow worker's shard 4: %+v, want fresh and campaign-completing", resp)
	}

	s := c.Stats()
	if s.LeasesStolen != 1 || s.Shards != 5 || s.ShardsDup != 1 {
		t.Errorf("stats %+v, want 1 steal, 5 folds, 1 duplicate", s)
	}
	got, err := c.Report()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("report after work stealing differs from local run")
	}
}

// TestCoordinatorRestart pins crash-resume: a coordinator killed mid-run
// restarts from its checkpoint, leases only the missing shards, and the
// finished report is byte-identical to the local run.
func TestCoordinatorRestart(t *testing.T) {
	spec := testSpec(48) // 6 shards
	want := localReport(t, spec)
	path := filepath.Join(t.TempDir(), "coord.json")

	first, err := New(Config{Spec: spec, LeaseShards: 2, CheckpointPath: path, CheckpointEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := newRunner(t, spec)
	grant, err := first.Acquire(LeaseRequest{Worker: "w"})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range grant.Shards {
		complete(t, first, r, "w", grant.Lease, s)
	}
	// The coordinator "crashes" here; a new one resumes from disk.
	cp, err := campaign.LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if cp.CompletedShards() != 2 {
		t.Fatalf("checkpoint recorded %d shards, want 2", cp.CompletedShards())
	}

	second, err := New(Config{Spec: spec, LeaseShards: 8, Resume: cp, CheckpointPath: path, CheckpointEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := second.Acquire(LeaseRequest{Worker: "w"})
	if err != nil {
		t.Fatal(err)
	}
	if len(g2.Shards) != 4 || g2.Shards[0] != 2 {
		t.Fatalf("resumed coordinator leased %v, want the 4 missing shards from 2", g2.Shards)
	}
	for _, s := range g2.Shards {
		complete(t, second, r, "w", g2.Lease, s)
	}
	select {
	case <-second.Done():
	default:
		t.Fatal("resumed coordinator not complete after the missing shards")
	}
	got, err := second.Report()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("restarted coordinator's report differs from local run")
	}

	// A checkpoint from a different campaign must not resume.
	other := testSpec(48)
	other.Seed++
	if _, err := New(Config{Spec: other, Resume: cp}); err == nil {
		t.Error("resume with mismatched identity succeeded")
	}
}

// TestHeartbeatExtendsLease pins the renewal path: heartbeats keep a lease
// alive past its nominal TTL, and a heartbeat for an expired lease reports
// it dropped.
func TestHeartbeatExtendsLease(t *testing.T) {
	spec := testSpec(16)
	clock := newFakeClock()
	c, err := New(Config{Spec: spec, LeaseShards: 1, LeaseTTL: 10 * time.Second, Now: clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	g, err := c.Acquire(LeaseRequest{Worker: "w"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		clock.Advance(6 * time.Second)
		hb, err := c.Heartbeat(HeartbeatRequest{Worker: "w", Leases: []uint64{g.Lease}})
		if err != nil {
			t.Fatal(err)
		}
		if len(hb.Extended) != 1 {
			t.Fatalf("heartbeat %d did not extend the lease", i)
		}
	}
	// Another worker heartbeating someone else's lease must not extend it.
	if hb, _ := c.Heartbeat(HeartbeatRequest{Worker: "thief", Leases: []uint64{g.Lease}}); len(hb.Extended) != 0 {
		t.Error("foreign heartbeat extended the lease")
	}
	clock.Advance(11 * time.Second)
	hb, err := c.Heartbeat(HeartbeatRequest{Worker: "w", Leases: []uint64{g.Lease}})
	if err != nil {
		t.Fatal(err)
	}
	if len(hb.Extended) != 0 {
		t.Error("heartbeat extended an expired lease")
	}
	if s := c.Stats(); s.LeasesExpired != 1 {
		t.Errorf("stats %+v, want the lease expired", s)
	}
}
