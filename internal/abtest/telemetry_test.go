package abtest

import (
	"bytes"
	"strings"
	"testing"

	"bba/internal/telemetry"
)

// journalExperiment runs a small experiment with the given parallelism,
// journaling every session's telemetry, and returns the journal bytes.
func journalExperiment(t *testing.T, parallelism int) []byte {
	t.Helper()
	var buf bytes.Buffer
	j := telemetry.NewJournal(&buf)
	_, err := Run(Config{
		Seed:              11,
		Days:              1,
		SessionsPerWindow: 2,
		CatalogSize:       4,
		Parallelism:       parallelism,
		Observer:          j,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestParallelJournalDeterministic is the harness-level determinism
// guarantee: the merged event journal is byte-identical across runs and
// across worker counts. Run under -race it also proves the capture/merge
// path is data-race free.
func TestParallelJournalDeterministic(t *testing.T) {
	serial := journalExperiment(t, 1)
	if len(serial) == 0 {
		t.Fatal("journal is empty")
	}
	parallel := journalExperiment(t, 8)
	if !bytes.Equal(serial, parallel) {
		t.Error("journal differs between Parallelism=1 and Parallelism=8")
	}
	again := journalExperiment(t, 8)
	if !bytes.Equal(parallel, again) {
		t.Error("journal differs between identical parallel runs")
	}

	// Sessions are stamped with their experiment coordinates.
	text := string(serial)
	for _, want := range []string{
		`"session":"d0.w00.s000.Control"`,
		`"session":"d0.w00.s000.BBA-2"`,
		`"session":"d0.w11.s001.BBA-Others"`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("journal missing events for %s", want)
		}
	}
	// Group order within a session set is preserved by the merge.
	ctrl := strings.Index(text, `"session":"d0.w00.s000.Control"`)
	bba0 := strings.Index(text, `"session":"d0.w00.s000.BBA-0"`)
	if ctrl == -1 || bba0 == -1 || ctrl > bba0 {
		t.Error("merged journal is not in group order")
	}
}

// TestNilObserverSkipsCapture pins the fast path: without an observer the
// harness must not allocate capture state.
func TestNilObserverSkipsCapture(t *testing.T) {
	out, err := Run(Config{
		Seed:              11,
		Days:              1,
		SessionsPerWindow: 1,
		CatalogSize:       4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Sessions) == 0 {
		t.Fatal("no sessions")
	}
}
