package main

import (
	"context"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"bba/internal/coord"
)

// coordBench measures fleet-mode campaign throughput: a coordinator plus
// in-process workers over real HTTP, every shard leased, executed and
// folded through the exactly-once checkpoint. The reported sessions/s is
// fleet-wide player-session throughput, so the delta against
// ScalarSessions is the control-plane overhead per session — the lease
// round-trips, JSON accumulator shipping and fold serialization.
func coordBench(quick bool) func(b *testing.B) {
	sessions, workers := 512, 2
	if quick {
		sessions = 96
	}
	return func(b *testing.B) {
		spec := coord.Spec{
			Seed:        17,
			Sessions:    sessions,
			ShardSize:   64,
			CatalogSize: 8,
			SketchSize:  256,
		}
		names := []string{"bench-a", "bench-b", "bench-c", "bench-d"}
		var players atomic.Int64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			players.Store(0)
			c, err := coord.New(coord.Config{Spec: spec, LeaseShards: 2})
			if err != nil {
				b.Fatal(err)
			}
			srv := httptest.NewServer(c.Handler())
			errc := make(chan error, workers)
			for w := 0; w < workers; w++ {
				go func(w int) {
					stats, err := coord.RunWorker(context.Background(), coord.WorkerConfig{
						URL:         srv.URL,
						Name:        names[w],
						Parallelism: 1,
						Poll:        time.Millisecond,
					})
					players.Add(stats.PlayerSessions)
					errc <- err
				}(w)
			}
			for w := 0; w < workers; w++ {
				if err := <-errc; err != nil {
					b.Fatal(err)
				}
			}
			srv.Close()
			select {
			case <-c.Done():
			default:
				b.Fatal("campaign incomplete")
			}
		}
		b.StopTimer()
		if secs := b.Elapsed().Seconds(); secs > 0 {
			b.ReportMetric(float64(players.Load())*float64(b.N)/secs, "sessions/s")
		}
	}
}
