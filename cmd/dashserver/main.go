// Command dashserver serves a synthetic VBR title over HTTP for the
// bbaplay client (or any HTTP client): a JSON manifest at /manifest.json
// and chunk bodies at /chunk/{rate}/{index}.
//
// Example:
//
//	dashserver -addr 127.0.0.1:8404 -chunks 900 &
//	bbaplay -url http://127.0.0.1:8404 -alg BBA-2 -watch 30s
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"time"

	"bba/internal/dash"
	"bba/internal/media"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:8404", "listen address")
		chunks  = flag.Int("chunks", 900, "title length in chunks")
		chunkMS = flag.Int("chunk-ms", 4000, "chunk duration in milliseconds")
		seed    = flag.Int64("seed", 1, "seed for the synthetic title")
		latency = flag.Duration("latency", 0, "added first-byte latency per chunk")
	)
	flag.Parse()

	if err := run(*addr, *chunks, *chunkMS, *seed, *latency); err != nil {
		fmt.Fprintln(os.Stderr, "dashserver:", err)
		os.Exit(1)
	}
}

func run(addr string, chunks, chunkMS int, seed int64, latency time.Duration) error {
	srv, video, err := buildServer(chunks, chunkMS, seed, latency)
	if err != nil {
		return err
	}
	fmt.Printf("serving %q (%d chunks of %v, ladder %v–%v) on http://%s\n",
		video.Title, video.NumChunks(), video.ChunkDuration,
		video.Ladder.Min(), video.Ladder.Max(), addr)
	return http.ListenAndServe(addr, srv)
}

// buildServer constructs the synthetic title and its HTTP handler.
func buildServer(chunks, chunkMS int, seed int64, latency time.Duration) (*dash.Server, *media.Video, error) {
	video, err := media.NewVBR(media.VBRConfig{
		Title:         "dashserver",
		Ladder:        media.DefaultLadder(),
		ChunkDuration: time.Duration(chunkMS) * time.Millisecond,
		NumChunks:     chunks,
	}, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, nil, err
	}
	srv, err := dash.NewServer(video)
	if err != nil {
		return nil, nil, err
	}
	srv.Latency = latency
	return srv, video, nil
}
