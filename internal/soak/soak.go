// Package soak is the continuous-verification layer: a daemon that
// exercises the whole streaming stack — dashserver origins, netem-shaped
// real-socket sessions, seeded fault weather, the collection pipeline —
// cycle after cycle, and checks paper-level invariants on the journals
// each cycle produces. Where the test suite asks "does this function
// behave", the soak rig asks "does the assembled system keep its
// promises while it runs": no rebuffer while the buffer sits above the
// algorithm's reservoir, endpoint failover converging back to the
// primary once it heals, bounded retry on the degrade path, and the
// collector's archive byte-agreeing with the local journals it was fed.
//
// The same package carries the load rig (see load.go): a step-ramp of
// concurrent real-socket clients against one origin that measures
// per-chunk TTFB and throughput distributions per step and locates the
// knee where the origin stops scaling.
package soak

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"bba/internal/abr"
	"bba/internal/collect"
	"bba/internal/dash"
	"bba/internal/faults"
	"bba/internal/media"
	"bba/internal/netem"
	"bba/internal/player"
	"bba/internal/telemetry"
	"bba/internal/trace"
	"bba/internal/units"
)

// Config parameterizes the soak runner. The zero value is usable: every
// field has a default chosen so one cycle exercises fault injection,
// failover, shaped links and the collector cross-check in about ten
// seconds of wall clock.
type Config struct {
	// Sessions is the number of concurrent shaped client sessions per
	// cycle (default 6).
	Sessions int
	// Seed is the master seed; every cycle's fault schedules, session
	// seeds and title draw derive from (Seed, cycle), so a failing cycle
	// is reproducible by number.
	Seed int64
	// Watch bounds each session's delivered video (default 12s). The
	// playback buffer is capped at a quarter of it, so ON-OFF pacing
	// stretches every session over most of the watch window — the wall
	// time the fault schedule plays out against.
	Watch time.Duration
	// ChunkMS is the title's chunk duration in milliseconds (default 500).
	ChunkMS int
	// ShapeKbps is each session's constant downstream capacity before
	// client-side blackouts are composed onto it (default 4000).
	ShapeKbps int
	// Algorithms are rotated across the cycle's sessions (registry names;
	// default a mix of buffer-based and estimator algorithms).
	Algorithms []string
	// BaseURL targets an already-running origin instead of booting a
	// primary/secondary pair in-process. Fault injection and failover are
	// origin-side concerns, so both are disabled in this mode.
	BaseURL string
	// DisableFaults turns off origin-side fault injection (and the
	// secondary origin that exists to absorb failover). Client-side
	// blackouts still apply.
	DisableFaults bool
	// CollectorCheck ships every session's events through a real
	// internal/collect pipeline (loopback HTTP) and cross-checks the
	// collector's archive byte-for-byte against the local journals.
	CollectorCheck bool
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Sessions <= 0 {
		c.Sessions = 6
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Watch <= 0 {
		c.Watch = 12 * time.Second
	}
	if c.ChunkMS <= 0 {
		c.ChunkMS = 500
	}
	if c.ShapeKbps <= 0 {
		c.ShapeKbps = 4000
	}
	if len(c.Algorithms) == 0 {
		c.Algorithms = []string{"BBA-1", "BBA-2", "Control", "SmoothThroughput", "BBA-Others", "BOLA"}
	}
	return c
}

// chunkDuration returns the configured chunk duration.
func (c Config) chunkDuration() time.Duration {
	return time.Duration(c.ChunkMS) * time.Millisecond
}

// fetchPolicy is the tight retry envelope soak sessions run under: fast
// enough that a fault-window chunk resolves within a couple of seconds,
// generous enough (six attempts across two endpoints) that a clean
// secondary always rescues the chunk.
func fetchPolicy(seed int64) dash.FetchPolicy {
	return dash.FetchPolicy{
		ChunkTimeout: 2 * time.Second,
		MaxAttempts:  6,
		BackoffBase:  50 * time.Millisecond,
		BackoffCap:   400 * time.Millisecond,
		JitterSeed:   seed,
	}
}

// SessionRecord is one session's complete account: its captured journal,
// the player result, and the schedule facts the invariant checks need.
type SessionRecord struct {
	// Session is the journal label, "c<cycle>.s<index>.<algorithm>".
	Session string
	// Seed is the session's derived seed.
	Seed int64
	// Algorithm is the registry name the session ran.
	Algorithm string
	// Events is the session's captured journal, in emission order.
	Events []telemetry.Event
	// Result is the player result (nil when Err is non-nil).
	Result *player.Result
	// Err is a hard session error (manifest unreachable, context
	// cancelled); chunk-level failure is not an error, it shows up as
	// Result.Incomplete.
	Err error
	// Endpoints is how many origins the session could fail over across.
	Endpoints int
	// TailChunks is how many chunk fetches the session had left after
	// the fault horizon closed (the last 3/4 of the watch window). The
	// failover invariant is only decidable when this leaves room for a
	// full fail-back streak (dash.FailBackAfter successes).
	TailChunks int
	// MaxAttempts is the per-chunk attempt budget the session ran under.
	MaxAttempts int
	// OutageBudget is the total client-side blackout time scheduled for
	// the session; the rebuffer invariant's slack grows with it.
	OutageBudget time.Duration
	// ChunkDuration is the title's chunk duration.
	ChunkDuration time.Duration
	// ChunkTimeout is the per-attempt timeout; a zero-retry download can
	// never have taken longer than this.
	ChunkTimeout time.Duration
	// Archive is the collector's archived JSONL for this session (nil
	// when the collector check is off); Dropped counts events the
	// shipper's hot path lost.
	Archive []byte
	// Dropped counts shipper-side event and frame loss; any loss fails
	// the collector-agreement invariant.
	Dropped int64
}

// Cycle is one completed soak cycle.
type Cycle struct {
	// Index is the cycle number.
	Index int
	// Sessions are the cycle's session records, in session order.
	Sessions []SessionRecord
	// Violations are every invariant breach the cycle's journals show.
	Violations []Violation
	// Checks counts invariant evaluations by name (a session that cannot
	// be checked against an invariant — single endpoint, no reservoir
	// events — does not count as a check).
	Checks map[string]int
	// Duration is the cycle's wall-clock time.
	Duration time.Duration
}

// Pass reports whether the cycle completed with zero violations.
func (c *Cycle) Pass() bool { return len(c.Violations) == 0 }

// Runner executes soak cycles. Create one with NewRunner and drive it
// with RunCycle (one cycle) or Run (a bounded or unbounded sequence).
type Runner struct {
	cfg   Config
	start time.Time

	// Observer, when non-nil, receives a SoakCycle event per completed
	// cycle and an SLOBreach event per violation — the daemon's own
	// journal, in the same event vocabulary as the sessions it drives.
	Observer telemetry.Observer
	// Metrics, when non-nil, accumulates SLO counters per cycle.
	Metrics *Metrics
}

// NewRunner returns a Runner for cfg with defaults applied.
func NewRunner(cfg Config) *Runner {
	return &Runner{cfg: cfg.withDefaults(), start: time.Now()}
}

// Config returns the runner's effective (defaulted) configuration.
func (r *Runner) Config() Config { return r.cfg }

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// mix folds vals into seed with splitmix64 steps — the derivation every
// per-cycle and per-session seed uses.
func mix(seed int64, vals ...int64) int64 {
	z := uint64(seed)
	for _, v := range vals {
		z ^= uint64(v) * 0x9E3779B97F4A7C15
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		z ^= z >> 31
	}
	return int64(z &^ (1 << 63))
}

// originFaultConfig draws the primary origin's HTTP-path fault weather
// for one cycle: 5xx bursts, stalled bodies, connection resets and
// latency spikes, all confined to the first quarter of the watch window
// so every session has time to fail over AND fail back before it ends.
func originFaultConfig(watch time.Duration) faults.ScheduleConfig {
	window := watch / 4
	perHour := func(n float64) float64 { return n / window.Hours() }
	return faults.ScheduleConfig{
		Horizon:       window,
		ServerErrors:  faults.EpisodeConfig{PerHour: perHour(2), MinDuration: 300 * time.Millisecond, MaxDuration: 700 * time.Millisecond},
		StallBodies:   faults.EpisodeConfig{PerHour: perHour(1), MinDuration: 300 * time.Millisecond, MaxDuration: 600 * time.Millisecond},
		ConnResets:    faults.EpisodeConfig{PerHour: perHour(1), MinDuration: 200 * time.Millisecond, MaxDuration: 500 * time.Millisecond},
		LatencySpikes: faults.EpisodeConfig{PerHour: perHour(1), MinDuration: 300 * time.Millisecond, MaxDuration: 600 * time.Millisecond},
		LatencyMin:    50 * time.Millisecond,
		LatencyMax:    150 * time.Millisecond,
	}
}

// blackoutConfig draws a session's client-side capacity blackouts over
// the whole watch window.
func blackoutConfig(watch time.Duration) faults.ScheduleConfig {
	return faults.ScheduleConfig{
		Horizon:   watch,
		Blackouts: faults.EpisodeConfig{PerHour: 2 / watch.Hours(), MinDuration: 300 * time.Millisecond, MaxDuration: 800 * time.Millisecond},
	}
}

// RunCycle executes one soak cycle: boot (or target) the origins, drive
// the configured sessions concurrently through shaped connections under
// the cycle's seeded fault schedules, then check every invariant on the
// captured journals. The returned Cycle holds the verdicts; the error is
// reserved for infrastructure failure (a port that will not bind, a
// cancelled context), never for invariant breaches.
func (r *Runner) RunCycle(ctx context.Context, cycle int) (*Cycle, error) {
	cfg := r.cfg
	cycleSeed := mix(cfg.Seed, int64(cycle))
	cycleStart := time.Now()
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	endpoints, shutdown, err := r.bootOrigins(cycle, cycleSeed)
	if err != nil {
		return nil, err
	}
	defer shutdown()

	// Optional collector pipeline on loopback HTTP.
	var (
		archive  syncBuffer
		shippers []*collect.Shipper
		colStop  func()
	)
	colAddr := ""
	if cfg.CollectorCheck {
		colAddr, colStop, err = startCollector(&archive)
		if err != nil {
			return nil, err
		}
		defer func() {
			if colStop != nil {
				colStop()
			}
		}()
	}

	records := make([]SessionRecord, cfg.Sessions)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Sessions; i++ {
		alg := cfg.Algorithms[i%len(cfg.Algorithms)]
		seed := mix(cycleSeed, int64(i)+1)
		name := fmt.Sprintf("c%d.s%d.%s", cycle, i, alg)
		rec := &records[i]
		rec.Session = name
		rec.Seed = seed
		rec.Algorithm = alg

		var shipper *collect.Shipper
		if cfg.CollectorCheck {
			shipper, err = collect.NewShipper(collect.ShipperConfig{
				Addr:          "http://" + colAddr,
				Run:           fmt.Sprintf("soak-c%d", cycle),
				Session:       uint64(i + 1),
				FlushInterval: -1, // sealed explicitly at session end
				Retry:         collect.RetryPolicy{Seed: seed},
			})
			if err != nil {
				return nil, err
			}
			shippers = append(shippers, shipper)
		}

		wg.Add(1)
		go func() {
			defer wg.Done()
			r.runSession(ctx, rec, endpoints, shipper)
		}()
	}
	wg.Wait()

	if cfg.CollectorCheck {
		for i, s := range shippers {
			s.Seal()
			if err := s.Close(); err != nil {
				records[i].Dropped++ // a lost reliable lane counts as loss
			}
			st := s.Stats()
			records[i].Dropped += st.EventsDropped + st.FramesDropped
		}
		colStop()
		colStop = nil
		archived := archive.bytes()
		for i := range records {
			records[i].Archive = filterSession(archived, records[i].Session)
		}
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}

	c := &Cycle{
		Index:    cycle,
		Sessions: records,
		Checks:   make(map[string]int),
		Duration: time.Since(cycleStart),
	}
	for i := range records {
		vs, checked := CheckSession(&records[i])
		c.Violations = append(c.Violations, vs...)
		for _, name := range checked {
			c.Checks[name]++
		}
	}
	r.observeCycle(c)
	for _, v := range c.Violations {
		logf("cycle %d: VIOLATION %s", cycle, v)
	}
	logf("cycle %d: %d sessions, %d violations in %v", cycle, len(records), len(c.Violations), c.Duration.Round(10*time.Millisecond))
	return c, nil
}

// bootOrigins starts the cycle's primary (fault-injecting) and secondary
// (clean) origins, or returns the external BaseURL when one is set.
func (r *Runner) bootOrigins(cycle int, cycleSeed int64) (endpoints []string, shutdown func(), err error) {
	cfg := r.cfg
	if cfg.BaseURL != "" {
		return []string{cfg.BaseURL}, func() {}, nil
	}
	video, err := media.NewVBR(media.VBRConfig{
		Title:         fmt.Sprintf("soak-c%d", cycle),
		Ladder:        media.DefaultLadder(),
		ChunkDuration: cfg.chunkDuration(),
		NumChunks:     int(cfg.Watch/cfg.chunkDuration()) * 2,
	}, newRand(cycleSeed))
	if err != nil {
		return nil, nil, err
	}
	primary, err := dash.NewServer(video)
	if err != nil {
		return nil, nil, err
	}
	if !cfg.DisableFaults {
		sched := faults.GenerateSeeded(originFaultConfig(cfg.Watch), cycleSeed)
		primary.Injector = &faults.HTTPInjector{
			Schedule:   sched,
			Seed:       cycleSeed,
			StallSleep: 2 * time.Second,
		}
		primary.Injector.Start(time.Now())
	}
	origins := make([]*dash.Origin, 0, 2)
	o, err := dash.StartOrigin("127.0.0.1:0", primary, dash.OriginConfig{ShutdownGrace: 3 * time.Second})
	if err != nil {
		return nil, nil, err
	}
	origins = append(origins, o)
	endpoints = []string{o.URL()}
	if !cfg.DisableFaults {
		secondary, err := dash.NewServer(video)
		if err == nil {
			var o2 *dash.Origin
			o2, err = dash.StartOrigin("127.0.0.1:0", secondary, dash.OriginConfig{ShutdownGrace: 3 * time.Second})
			if err == nil {
				origins = append(origins, o2)
				endpoints = append(endpoints, o2.URL())
			}
		}
		if err != nil {
			o.Close(context.Background())
			return nil, nil, err
		}
	}
	return endpoints, func() {
		for _, o := range origins {
			o.Close(context.Background())
		}
	}, nil
}

// runSession drives one shaped, fault-weathered session and fills rec.
func (r *Runner) runSession(ctx context.Context, rec *SessionRecord, endpoints []string, shipper *collect.Shipper) {
	cfg := r.cfg
	fp := fetchPolicy(rec.Seed)
	rec.Endpoints = len(endpoints)
	rec.MaxAttempts = fp.MaxAttempts
	rec.ChunkDuration = cfg.chunkDuration()
	rec.ChunkTimeout = fp.ChunkTimeout
	rec.TailChunks = int((cfg.Watch - cfg.Watch/4) / cfg.chunkDuration())

	// The session's downstream path: a constant link with seeded
	// blackouts composed onto it, shaped at the socket.
	base := trace.Constant(units.BitRate(cfg.ShapeKbps)*units.Kbps, 4*cfg.Watch+time.Minute)
	blackouts := faults.GenerateSeeded(blackoutConfig(cfg.Watch), rec.Seed)
	for _, f := range blackouts.Faults() {
		rec.OutageBudget += f.Duration
	}
	shaped, err := blackouts.ApplyToTrace(base)
	if err != nil {
		rec.Err = err
		return
	}
	shaper := netem.NewShaper(shaped)
	transport := &http.Transport{
		DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
			c, err := (&net.Dialer{}).DialContext(ctx, network, addr)
			if err != nil {
				return nil, err
			}
			return netem.NewConn(c, shaper), nil
		},
		MaxIdleConnsPerHost: 2,
	}
	defer transport.CloseIdleConnections()

	algorithm, err := abr.New(rec.Algorithm)
	if err != nil {
		rec.Err = err
		return
	}
	capture := &telemetry.Capture{}
	var obs telemetry.Observer = capture
	if shipper != nil {
		obs = telemetry.Multi(capture, shipper)
	}
	// A quarter of the watch window, floored at two chunks so the ON-OFF
	// loop always has room to operate even under tiny test windows.
	bufMax := cfg.Watch / 4
	if floor := 2 * cfg.chunkDuration(); bufMax < floor {
		bufMax = floor
	}
	rec.Result, rec.Err = dash.Stream(ctx, dash.ClientConfig{
		Endpoints:  endpoints,
		Fetch:      fp,
		HTTPClient: &http.Client{Transport: transport},
		Algorithm:  algorithm,
		BufferMax:  bufMax,
		WatchLimit: cfg.Watch,
		Observer:   stamped{session: rec.Session, next: obs},
	})
	rec.Events = capture.Events
}

// observeCycle reports a finished cycle to the runner's Observer and
// Metrics.
func (r *Runner) observeCycle(c *Cycle) {
	if r.Metrics != nil {
		r.Metrics.ObserveCycle(c)
	}
	if r.Observer == nil {
		return
	}
	label := "pass"
	if !c.Pass() {
		label = "fail"
	}
	at := time.Since(r.start)
	for _, v := range c.Violations {
		r.Observer.OnEvent(telemetry.Event{
			Kind: telemetry.SLOBreach, At: at, Chunk: c.Index,
			RateIndex: -1, PrevRateIndex: -1,
			Session: v.Session, Label: v.Invariant,
		})
	}
	r.Observer.OnEvent(telemetry.Event{
		Kind: telemetry.SoakCycle, At: at, Chunk: c.Index,
		RateIndex: -1, PrevRateIndex: -1,
		Bytes: int64(len(c.Sessions)), Duration: c.Duration, Label: label,
	})
}

// Run executes cycles sequentially until the count is reached (cycles
// <= 0 means run until ctx is cancelled), pausing interval between
// them. It returns the number of failed cycles; the error reports
// infrastructure failure or context cancellation (a cancelled unbounded
// run returns failed, nil — that is the daemon's normal exit).
func (r *Runner) Run(ctx context.Context, cycles int, interval time.Duration) (failed int, err error) {
	for i := 0; cycles <= 0 || i < cycles; i++ {
		c, err := r.RunCycle(ctx, i)
		if err != nil {
			if cycles <= 0 && ctx.Err() != nil {
				return failed, nil
			}
			return failed, err
		}
		if !c.Pass() {
			failed++
		}
		if interval > 0 && (cycles <= 0 || i+1 < cycles) {
			select {
			case <-ctx.Done():
				if cycles <= 0 {
					return failed, nil
				}
				return failed, ctx.Err()
			case <-time.After(interval):
			}
		}
	}
	return failed, nil
}

// stamped stamps the session label onto every event BEFORE fan-out, so
// the local capture and the shipped copy carry identical bytes — the
// precondition of the collector-agreement invariant.
type stamped struct {
	session string
	next    telemetry.Observer
}

func (s stamped) OnEvent(e telemetry.Event) {
	if e.Session == "" {
		e.Session = s.session
	}
	s.next.OnEvent(e)
}

// syncBuffer is an archiver sink safe for use as the collector's archive
// writer and for reading after the collector stops.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}

// startCollector boots a real collector on loopback HTTP, archiving every
// admitted event batch into sink.
func startCollector(sink *syncBuffer) (addr string, stop func(), err error) {
	col := collect.NewCollector(collect.CollectorConfig{Archive: collect.WriterArchiver{W: sink}})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{Handler: col.Handler()}
	go hs.Serve(ln)
	var once sync.Once
	return ln.Addr().String(), func() {
		once.Do(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			hs.Shutdown(ctx)
			cancel()
		})
	}, nil
}

// filterSession extracts the archive's JSONL lines belonging to one
// session, preserving their exact bytes and admitted order. Line format
// is the canonical journal encoding, so the session field is a fixed
// early key and a quoted exact match cannot collide across sessions.
func filterSession(archive []byte, session string) []byte {
	needle := []byte(`"session":` + strconv.Quote(session))
	var out []byte
	for len(archive) > 0 {
		nl := bytes.IndexByte(archive, '\n')
		var line []byte
		if nl < 0 {
			line, archive = archive, nil
		} else {
			line, archive = archive[:nl+1], archive[nl+1:]
		}
		if bytes.Contains(line, needle) {
			out = append(out, line...)
		}
	}
	return out
}
