package abr

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"bba/internal/media"
	"bba/internal/units"
)

// cbrStream returns a CBR stream where chunk sizes equal nominal sizes, so
// chunk-map behaviour must coincide with rate-map behaviour.
func cbrStream(t testing.TB) Stream {
	t.Helper()
	v, err := media.NewCBR("cbr", media.DefaultLadder(), media.DefaultChunkDuration, 600)
	if err != nil {
		t.Fatal(err)
	}
	return NewStream(v, 0)
}

func vbrStream(t testing.TB, seed int64) Stream {
	t.Helper()
	v, err := media.NewVBR(media.VBRConfig{Ladder: media.DefaultLadder(), NumChunks: 600}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return NewStream(v, 0)
}

func testChunkMap(s Stream) ChunkMap {
	l := s.Ladder()
	return ChunkMap{
		ChunkMin:  l.Min().BytesIn(s.ChunkDuration()),
		ChunkMax:  l.Max().BytesIn(s.ChunkDuration()),
		Reservoir: 90 * time.Second,
		Cushion:   126 * time.Second,
	}
}

func TestChunkMapEndpoints(t *testing.T) {
	s := cbrStream(t)
	m := testChunkMap(s)
	if got := m.MaxChunk(0); got != m.ChunkMin {
		t.Errorf("MaxChunk(0) = %d, want ChunkMin %d", got, m.ChunkMin)
	}
	if got := m.MaxChunk(90 * time.Second); got != m.ChunkMin {
		t.Errorf("MaxChunk(reservoir) = %d, want ChunkMin", got)
	}
	if got := m.MaxChunk(216 * time.Second); got != m.ChunkMax {
		t.Errorf("MaxChunk(ramp end) = %d, want ChunkMax %d", got, m.ChunkMax)
	}
	if got := m.MaxChunk(10 * time.Hour); got != m.ChunkMax {
		t.Errorf("MaxChunk(huge) = %d, want ChunkMax", got)
	}
}

// Property: the chunk map is monotone in buffer occupancy.
func TestQuickChunkMapMonotone(t *testing.T) {
	s := cbrStream(t)
	m := testChunkMap(s)
	f := func(aMs, bMs uint32) bool {
		a := time.Duration(aMs%300000) * time.Millisecond
		b := time.Duration(bMs%300000) * time.Millisecond
		if a > b {
			a, b = b, a
		}
		return m.MaxChunk(a) <= m.MaxChunk(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAlgorithm1ChunkMatchesRateMapOnCBR(t *testing.T) {
	// On a CBR encode, chunk sizes are exactly V·R, so the chunk-map
	// algorithm must agree with the rate-map algorithm at every buffer
	// level and previous rate.
	s := cbrStream(t)
	cm := testChunkMap(s)
	rm := RateMap{
		Rmin:      s.Ladder().Min(),
		Rmax:      s.Ladder().Max(),
		Reservoir: cm.Reservoir,
		Cushion:   cm.Cushion,
	}
	for prev := -1; prev < len(s.Ladder()); prev++ {
		for b := time.Duration(0); b <= 240*time.Second; b += 3 * time.Second {
			got := Algorithm1Chunk(cm, s, prev, 10, b)
			want := Algorithm1(rm, s.Ladder(), prev, b)
			if got != want {
				t.Fatalf("prev=%d B=%v: chunk-map chose %d, rate-map %d", prev, b, got, want)
			}
		}
	}
}

func TestAlgorithm1ChunkRegions(t *testing.T) {
	s := vbrStream(t, 1)
	m := testChunkMap(s)
	top := len(s.Ladder()) - 1
	if got := Algorithm1Chunk(m, s, top, 5, 30*time.Second); got != 0 {
		t.Errorf("below reservoir: %d, want 0", got)
	}
	if got := Algorithm1Chunk(m, s, 0, 5, 230*time.Second); got != top {
		t.Errorf("above cushion: %d, want top", got)
	}
	if got := Algorithm1Chunk(m, s, -1, 0, 0); got != 0 {
		t.Errorf("first chunk on empty buffer: %d, want 0", got)
	}
}

func TestAlgorithm1ChunkVariableSizesCauseSwitches(t *testing.T) {
	// The Figure 21 phenomenon: with a fixed buffer level and map, VBR
	// chunk-size variation alone flips the selected rate over time.
	s := vbrStream(t, 7)
	m := testChunkMap(s)
	b := 150 * time.Second // mid-cushion
	prev := 5
	switches := 0
	cur := prev
	for k := 0; k < 300; k++ {
		next := Algorithm1Chunk(m, s, cur, k, b)
		if next != cur {
			switches++
			cur = next
		}
	}
	if switches == 0 {
		t.Error("VBR chunk variation should cause rate switches at constant buffer level")
	}
}

func TestAlgorithm1ChunkEndOfTitleClamp(t *testing.T) {
	s := vbrStream(t, 3)
	m := testChunkMap(s)
	// Decisions at and beyond the final chunk index must not panic and
	// must return valid indices.
	for _, k := range []int{s.NumChunks() - 1, s.NumChunks(), s.NumChunks() + 10} {
		got := Algorithm1Chunk(m, s, 4, k, 150*time.Second)
		if got < 0 || got >= len(s.Ladder()) {
			t.Errorf("k=%d: invalid index %d", k, got)
		}
	}
}

// Property: Algorithm1Chunk always returns a valid index, and respects the
// reservoir/upper-reservoir regions.
func TestQuickAlgorithm1ChunkValid(t *testing.T) {
	s := vbrStream(t, 11)
	m := testChunkMap(s)
	f := func(prevRaw int8, kRaw uint16, bMs uint32) bool {
		prev := int(prevRaw)%(len(s.Ladder())+2) - 1
		k := int(kRaw) % (s.NumChunks() + 5)
		b := time.Duration(bMs%300000) * time.Millisecond
		got := Algorithm1Chunk(m, s, prev, k, b)
		if got < 0 || got >= len(s.Ladder()) {
			return false
		}
		if prev >= 0 {
			if b <= m.Reservoir && got != 0 {
				return false
			}
			if b >= m.Reservoir+m.Cushion && got != len(s.Ladder())-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamPromotion(t *testing.T) {
	v, err := media.NewCBR("x", media.DefaultLadder(), media.DefaultChunkDuration, 10)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStream(v, 560*units.Kbps)
	if s.Ladder().Min() != 560*units.Kbps {
		t.Errorf("promoted Rmin = %v", s.Ladder().Min())
	}
	// Session index 0 must map to the 560 kb/s encode.
	want := (560 * units.Kbps).BytesIn(media.DefaultChunkDuration)
	if got := s.ChunkSize(0, 0); got != want {
		t.Errorf("ChunkSize(0,0) = %d, want %d", got, want)
	}
	if s.VideoIndex(0) != 2 {
		t.Errorf("VideoIndex(0) = %d, want 2", s.VideoIndex(0))
	}
	if s.NominalChunkSize(0) != want {
		t.Errorf("NominalChunkSize(0) = %d, want %d", s.NominalChunkSize(0), want)
	}
}
