package soak

import (
	"bytes"
	"fmt"
	"time"

	"bba/internal/dash"
	"bba/internal/telemetry"
)

// The invariant names, as they appear in Violation.Invariant, the
// soak_invariant_* metric labels and SLOBreach event labels.
const (
	// InvTerminates: every session's journal is properly bracketed — it
	// opens with SessionStart, closes with SessionEnd, and the session
	// returned no hard error. A session that hangs, panics or tears down
	// without its closing event breaks the daemon's most basic promise.
	InvTerminates = "terminates"
	// InvNoRebufferAboveReservoir: the paper's central claim, checked on
	// live journals. A capacity-driven rebuffer (one whose chunk needed
	// no retries — fault-path stalls are the bounded-retry invariant's
	// business) must not begin while the buffer sits above the
	// algorithm's last reported reservoir plus the cycle's slack. The
	// slack covers everything physics permits without an algorithm bug:
	// the session's total scheduled blackout time, one chunk duration,
	// and the per-attempt timeout that bounds any zero-retry download.
	InvNoRebufferAboveReservoir = "no_rebuffer_above_reservoir"
	// InvFailoverConverges: a session that failed over must converge back
	// to the primary endpoint (index 0) by session end — the fault window
	// closes early in the cycle precisely so the fail-back streak has
	// room to complete. Checked only when the fault-free tail holds at
	// least dash.FailBackAfter chunk fetches; shorter windows cannot
	// decide convergence.
	InvFailoverConverges = "failover_converges"
	// InvDegradeTerminates: the degrade path is bounded. No chunk may
	// accumulate more retries than the attempt budget allows, and a
	// session that gives up (Incomplete) must have marked the give-up
	// with an outage rebuffer — degraded sessions end, they do not spin.
	InvDegradeTerminates = "degrade_terminates"
	// InvCollectorAgreement: what the collector archived for the session
	// byte-equals the locally captured journal, with zero shipper-side
	// loss — the fleet-collection pipeline neither drops nor distorts.
	InvCollectorAgreement = "collector_agreement"
)

// InvariantNames lists every invariant in reporting order.
func InvariantNames() []string {
	return []string{
		InvTerminates,
		InvNoRebufferAboveReservoir,
		InvFailoverConverges,
		InvDegradeTerminates,
		InvCollectorAgreement,
	}
}

// Violation is one invariant breach in one session's journal.
type Violation struct {
	// Invariant is the Inv* name.
	Invariant string
	// Session is the offending session's label.
	Session string
	// Detail explains the breach.
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: %s: %s", v.Invariant, v.Session, v.Detail)
}

// CheckSession evaluates every applicable invariant against one session
// record. It returns the violations found and the names of the
// invariants that were actually evaluated (an invariant that does not
// apply — single endpoint, no reservoir reports, collector check off —
// is neither checked nor violated).
func CheckSession(rec *SessionRecord) (violations []Violation, checked []string) {
	add := func(inv, detail string) {
		violations = append(violations, Violation{Invariant: inv, Session: rec.Session, Detail: detail})
	}

	checked = append(checked, InvTerminates)
	switch {
	case rec.Err != nil:
		add(InvTerminates, fmt.Sprintf("session error: %v", rec.Err))
	case len(rec.Events) == 0:
		add(InvTerminates, "no events captured")
	case rec.Events[0].Kind != telemetry.SessionStart:
		add(InvTerminates, "journal does not open with session_start")
	case rec.Events[len(rec.Events)-1].Kind != telemetry.SessionEnd:
		add(InvTerminates, fmt.Sprintf("journal ends with %s, not session_end", rec.Events[len(rec.Events)-1].Kind))
	}

	if len(rec.Events) > 0 {
		checked = append(checked, InvDegradeTerminates)
		violations = append(violations, checkDegrade(rec)...)

		if vs, applied := checkReservoir(rec); applied {
			checked = append(checked, InvNoRebufferAboveReservoir)
			violations = append(violations, vs...)
		}
	}

	// Convergence is only decidable when the fault-free tail could hold a
	// complete fail-back streak: a failover at the very end of the fault
	// horizon still needs dash.FailBackAfter successful fetches to return
	// to the primary. In tighter windows a session parked on the
	// secondary is not wrong, just unfinished, so the invariant does not
	// bind.
	if rec.Endpoints > 1 && rec.TailChunks >= dash.FailBackAfter {
		checked = append(checked, InvFailoverConverges)
		violations = append(violations, checkFailover(rec)...)
	}

	if rec.Archive != nil || rec.Dropped > 0 {
		checked = append(checked, InvCollectorAgreement)
		violations = append(violations, checkCollector(rec)...)
	}
	return violations, checked
}

// checkDegrade bounds the retry/degrade path: per-chunk retries within
// the attempt budget, and an Incomplete session explicitly marked with
// an outage rebuffer.
func checkDegrade(rec *SessionRecord) (violations []Violation) {
	retries := make(map[int]int)
	sawOutage := false
	for _, e := range rec.Events {
		switch e.Kind {
		case telemetry.ChunkRetry:
			retries[e.Chunk]++
		case telemetry.RebufferStart:
			if e.Label == "outage" {
				sawOutage = true
			}
		}
	}
	budget := rec.MaxAttempts - 1
	if budget <= 0 {
		budget = 1
	}
	for chunk, n := range retries {
		if n > budget {
			violations = append(violations, Violation{
				Invariant: InvDegradeTerminates, Session: rec.Session,
				Detail: fmt.Sprintf("chunk %d retried %d times, budget %d", chunk, n, budget),
			})
		}
	}
	if rec.Result != nil && rec.Result.Incomplete && !sawOutage {
		violations = append(violations, Violation{
			Invariant: InvDegradeTerminates, Session: rec.Session,
			Detail: "incomplete session has no outage rebuffer marker",
		})
	}
	return violations
}

// checkReservoir walks the journal asserting the paper's claim on every
// capacity-driven rebuffer. applied is false when the session never
// reported a reservoir (estimator algorithms), in which case the
// invariant does not bind.
func checkReservoir(rec *SessionRecord) (violations []Violation, applied bool) {
	slack := rec.OutageBudget + rec.ChunkDuration + rec.ChunkTimeout
	retried := make(map[int]bool)
	for _, e := range rec.Events {
		if e.Kind == telemetry.ChunkRetry {
			retried[e.Chunk] = true
		}
	}
	var (
		reservoir     time.Duration
		haveReservoir bool
		lastBuffer    time.Duration
	)
	for _, e := range rec.Events {
		switch e.Kind {
		case telemetry.ReservoirUpdate:
			reservoir = e.Reservoir
			haveReservoir = true
			applied = true
		case telemetry.BufferSample:
			lastBuffer = e.Buffer
		case telemetry.RebufferStart:
			if e.Label == "outage" || !haveReservoir || retried[e.Chunk] {
				// Outages and fault-path stalls are the degrade
				// invariant's domain; before the first reservoir report
				// there is no claim to check.
				continue
			}
			if lastBuffer > reservoir+slack {
				violations = append(violations, Violation{
					Invariant: InvNoRebufferAboveReservoir, Session: rec.Session,
					Detail: fmt.Sprintf("rebuffer at chunk %d with buffer %v above reservoir %v + slack %v",
						e.Chunk, lastBuffer, reservoir, slack),
				})
			}
		}
	}
	return violations, applied
}

// checkFailover asserts convergence: the last endpoint switch of a
// multi-endpoint session lands back on the primary.
func checkFailover(rec *SessionRecord) (violations []Violation) {
	last := -1
	for _, e := range rec.Events {
		if e.Kind == telemetry.Failover {
			last = e.RateIndex // Failover carries endpoint indices in the rate fields
		}
	}
	if last > 0 {
		violations = append(violations, Violation{
			Invariant: InvFailoverConverges, Session: rec.Session,
			Detail: fmt.Sprintf("session ended on endpoint %d, not the primary", last),
		})
	}
	return violations
}

// checkCollector re-encodes the local capture with the canonical journal
// encoding and demands the collector's archive for the session be
// byte-identical, with zero shipper loss.
func checkCollector(rec *SessionRecord) (violations []Violation) {
	if rec.Dropped > 0 {
		violations = append(violations, Violation{
			Invariant: InvCollectorAgreement, Session: rec.Session,
			Detail: fmt.Sprintf("shipper dropped %d events/frames", rec.Dropped),
		})
		return violations
	}
	var local []byte
	for _, e := range rec.Events {
		local = telemetry.AppendJSONL(local, e)
	}
	if !bytes.Equal(local, rec.Archive) {
		violations = append(violations, Violation{
			Invariant: InvCollectorAgreement, Session: rec.Session,
			Detail: fmt.Sprintf("archive (%d bytes) != local journal (%d bytes)", len(rec.Archive), len(local)),
		})
	}
	return violations
}
